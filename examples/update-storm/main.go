// Update-storm: replay a burst of BGP updates (the paper motivates 35K
// messages/second peaks) through the CLUE and CLPL update pipelines and
// compare their TTF breakdowns — the §IV/§V.C experiment in miniature.
package main

import (
	"fmt"
	"log"

	"clue/internal/fibgen"
	"clue/internal/tracegen"
	"clue/internal/trie"
	"clue/internal/update"
)

const (
	tableSize = 20000
	messages  = 30000
	caches    = 4
	cacheSize = 1024
)

func main() {
	fibCLUE, err := fibgen.Generate(fibgen.Config{Seed: 7, Routes: tableSize})
	if err != nil {
		log.Fatal(err)
	}
	fibCLPL := fibCLUE.Clone()
	stream, err := buildStream(fibCLUE)
	if err != nil {
		log.Fatal(err)
	}

	cluePipe, err := update.NewCLUEPipeline(fibCLUE, caches, cacheSize, update.DefaultCosts())
	if err != nil {
		log.Fatal(err)
	}
	clplPipe, err := update.NewCLPLPipeline(fibCLPL, caches, cacheSize, update.DefaultCosts())
	if err != nil {
		log.Fatal(err)
	}

	// Warm the redundancy stores with Zipf traffic so invalidations hit
	// real content.
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(cluePipe.Updater().Table().Routes()),
		tracegen.TrafficConfig{Seed: 7},
	)
	if err != nil {
		log.Fatal(err)
	}
	warm := traffic.NextN(50000)
	cluePipe.Warm(warm)
	clplPipe.Warm(warm)

	clueTTF, err := update.Replay(cluePipe, stream)
	if err != nil {
		log.Fatal(err)
	}
	clplTTF, err := update.Replay(clplPipe, stream)
	if err != nil {
		log.Fatal(err)
	}
	cs, ps := update.Summarise(clueTTF), update.Summarise(clplTTF)

	fmt.Printf("replayed %d updates through both pipelines\n\n", messages)
	fmt.Printf("%-22s %12s %12s %9s\n", "mean per message", "CLUE", "CLPL", "CLPL/CLUE")
	row := func(name string, c, p float64) {
		ratio := 0.0
		if c > 0 {
			ratio = p / c
		}
		fmt.Printf("%-22s %10.1fns %10.1fns %8.1fx\n", name, c, p, ratio)
	}
	row("TTF1 (trie)", cs.Mean.Trie, ps.Mean.Trie)
	row("TTF2 (TCAM)", cs.Mean.TCAM, ps.Mean.TCAM)
	row("TTF3 (DRed)", cs.Mean.DRed, ps.Mean.DRed)
	row("TTF2+TTF3", cs.Mean.TCAM+cs.Mean.DRed, ps.Mean.TCAM+ps.Mean.DRed)
	row("total", cs.Mean.Total(), ps.Mean.Total())

	budget := 1e9 / 35000.0 // ns available per message at the peak rate
	fmt.Printf("\nat the paper's 35K updates/second peak, each message has %.0fns;\n", budget)
	fmt.Printf("CLUE's data-plane share (TTF2+TTF3 = %.0fns) uses %.1f%% of it,\n",
		cs.Mean.TCAM+cs.Mean.DRed, 100*(cs.Mean.TCAM+cs.Mean.DRed)/budget)
	fmt.Printf("CLPL's (%.0fns) uses %.1f%%.\n",
		ps.Mean.TCAM+ps.Mean.DRed, 100*(ps.Mean.TCAM+ps.Mean.DRed)/budget)
}

// buildStream makes a flap-heavy update trace against a snapshot of the
// table (the generator churns its own copy, leaving fib untouched for
// the pipelines).
func buildStream(fib *trie.Trie) ([]tracegen.Update, error) {
	gen, err := tracegen.NewUpdateGen(fib.Clone(), tracegen.UpdateConfig{
		Seed:          7,
		Messages:      messages,
		WithdrawFrac:  0.30,
		NewPrefixFrac: 0.55,
	})
	if err != nil {
		return nil, err
	}
	return gen.NextN(messages), nil
}
