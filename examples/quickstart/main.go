// Quickstart: build a small FIB, stand up a CLUE system, look up
// addresses, apply routing updates and read the TTF costs.
package main

import (
	"fmt"
	"log"

	"clue"
)

func main() {
	// A toy FIB with the paper's Figure 2 structure: a covering route
	// whose inner child owns a different next hop, plus some siblings.
	routes := []clue.Route{
		{Prefix: clue.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: clue.MustParsePrefix("10.32.0.0/11"), NextHop: 2},
		{Prefix: clue.MustParsePrefix("172.16.0.0/12"), NextHop: 3},
		{Prefix: clue.MustParsePrefix("172.16.0.0/16"), NextHop: 3}, // redundant: vanishes
		{Prefix: clue.MustParsePrefix("192.168.0.0/17"), NextHop: 4},
		{Prefix: clue.MustParsePrefix("192.168.128.0/17"), NextHop: 4}, // merges with its sibling
		{Prefix: clue.MustParsePrefix("198.51.100.0/24"), NextHop: 5},
		{Prefix: clue.MustParsePrefix("203.0.113.0/24"), NextHop: 6},
		{Prefix: clue.MustParsePrefix("8.8.8.0/24"), NextHop: 7},
		{Prefix: clue.MustParsePrefix("9.9.9.0/24"), NextHop: 8},
		{Prefix: clue.MustParsePrefix("1.1.1.0/24"), NextHop: 9},
		{Prefix: clue.MustParsePrefix("2.2.2.0/24"), NextHop: 10},
	}

	// Stage 1 — compression only: the optimal non-overlapping table.
	table, st := clue.Compress(routes)
	fmt.Printf("compressed %d routes to %d disjoint prefixes (%.0f%%):\n",
		st.Original, st.Compressed, 100*st.Ratio())
	for _, r := range table.Routes() {
		fmt.Printf("  %-18s -> %d\n", r.Prefix, r.NextHop)
	}

	// Stage 2 — the full system: 2 TCAMs, 4 range buckets.
	sys, err := clue.New(routes, clue.Config{TCAMs: 2, Buckets: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range []string{"10.1.2.3", "10.40.0.1", "192.168.200.1", "4.4.4.4"} {
		addr := clue.MustParseAddr(a)
		if hop, ok := sys.Lookup(addr); ok {
			fmt.Printf("lookup %-15s -> next hop %d\n", a, hop)
		} else {
			fmt.Printf("lookup %-15s -> no route\n", a)
		}
	}

	// Stage 3 — incremental updates with TTF accounting.
	ttf, err := sys.Announce(clue.MustParsePrefix("10.64.0.0/10"), 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("announce 10.64.0.0/10: TTF1=%.0fns TTF2=%.0fns TTF3=%.0fns (total %.0fns)\n",
		ttf.Trie, ttf.TCAM, ttf.DRed, ttf.Total())
	hop, _ := sys.Lookup(clue.MustParseAddr("10.65.0.1"))
	fmt.Printf("lookup 10.65.0.1 now -> next hop %d\n", hop)

	ttf, err = sys.Withdraw(clue.MustParsePrefix("10.64.0.0/10"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("withdraw: total TTF %.0fns; table back to %d entries\n", ttf.Total(), sys.TableLen())
}
