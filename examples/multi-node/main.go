// Multi-node: the replicated deployment in one process — a collector
// streams a seeded BGP-style update trace over real localhost TCP to
// two follower replicas, each applying it to its own serve runtime
// through the writer pipeline. Mid-stream, one replica's link is cut
// and redialled so the resume path runs for real. At the end the
// convergence guarantee is checked the same way the protocol checks it
// continuously: the canonical compressed tables of both replicas hash
// identically to the collector's.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"clue/internal/feed"
	"clue/internal/fibgen"
	"clue/internal/onrtc"
	"clue/internal/serve"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

const (
	tableSize = 8000
	updates   = 2000
	batchSize = 8
)

func main() {
	fib, err := fibgen.Generate(fibgen.Config{Seed: 2024, Routes: tableSize})
	if err != nil {
		log.Fatal(err)
	}

	coll, err := feed.NewCollector(feed.CollectorConfig{
		BaseRoutes: fib.Routes(),
		Window:     64,
		HashEvery:  16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coll.Close()
	addr, err := coll.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector: %d routes, feeding on %s\n", tableSize, addr)

	follower := func(name string) (*feed.Follower, *feed.RuntimeApplier) {
		app := feed.NewRuntimeApplier(serve.Config{Workers: 2})
		fl, err := feed.NewFollower(feed.FollowerConfig{
			Dial: func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr.String(), time.Second)
			},
			Applier: app,
		})
		if err != nil {
			log.Fatal(err)
		}
		for app.Runtime() == nil {
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("replica %s: bootstrapped from snapshot, %d compressed routes\n",
			name, rtRoutes(app))
		return fl, app
	}
	flA, appA := follower("A")
	defer flA.Close()
	flB, appB := follower("B")
	defer flB.Close()

	// A seeded, self-consistent update trace — the same generator the
	// benchmarks and the chaos harness replay.
	gen, err := tracegen.NewUpdateGen(fib.Clone(), tracegen.UpdateConfig{Seed: 2024, Messages: updates})
	if err != nil {
		log.Fatal(err)
	}
	recs := tracegen.Records(gen.NextN(updates))

	// Stream in lockstep with the replicas (a real collector tails a
	// live feed; replaying a file full-speed would just outrun the
	// replay window). A third of the way in, cut replica A's link: it
	// reconnects with backoff and resumes from its last acked sequence
	// — no snapshot needed while the window still covers the gap.
	cutAt := len(recs) / batchSize / 3
	var last uint64
	for nb, i := 0, 0; i < len(recs); nb, i = nb+1, i+batchSize {
		end := min(i+batchSize, len(recs))
		if last, err = coll.Apply(recs[i:end]); err != nil {
			log.Fatal(err)
		}
		if err := flB.WaitSeq(last, 30*time.Second); err != nil {
			log.Fatal(err)
		}
		// Leave A disconnected for a few batches so the resume has a
		// real gap to replay, then wait for it to catch back up.
		if nb < cutAt || nb > cutAt+4 {
			if err := flA.WaitSeq(last, 30*time.Second); err != nil {
				log.Fatal(err)
			}
		}
		if nb == cutAt {
			flA.BreakConn()
			fmt.Printf("link cut: replica A dropped at seq %d\n", last)
		}
	}

	// The proof: both replicas' published snapshots hold byte-for-byte
	// the canonical compressed form of the collector's mirror.
	want := feed.CanonicalHash(onrtc.Compress(trie.FromRoutes(coll.Routes())).Routes())
	hashA := feed.CanonicalHash(appA.CanonicalRoutes())
	hashB := feed.CanonicalHash(appB.CanonicalRoutes())
	fmt.Printf("\ncanonical table hash: collector %016x, A %016x, B %016x\n", want, hashA, hashB)
	if hashA != want || hashB != want {
		log.Fatal("replicas diverged")
	}

	sA, sB := flA.Stats(), flB.Stats()
	fmt.Printf("replica A: %d batches, %d resumes, %d snapshot loads, %d hash checks (%d mismatches)\n",
		sA.Batches, sA.Resumes, sA.SnapshotLoads, sA.HashChecks, sA.HashMismatches)
	fmt.Printf("replica B: %d batches, %d resumes, %d snapshot loads, %d hash checks (%d mismatches)\n",
		sB.Batches, sB.Resumes, sB.SnapshotLoads, sB.HashChecks, sB.HashMismatches)
	if sA.Resumes == 0 {
		log.Fatal("replica A reconnected without exercising the resume path")
	}
	fmt.Println("\nconverged: two replicas, one canonical table")
}

func rtRoutes(app *feed.RuntimeApplier) int {
	return len(app.CanonicalRoutes())
}
