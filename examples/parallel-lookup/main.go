// Parallel-lookup: reproduce the paper's worst-case load-balancing
// scenario (§V.D) on a realistic synthetic table — the 8 hottest of 32
// buckets all mapped to TCAM 1 — and watch the Dynamic Redundancy
// mechanism flatten the load while holding the speedup above the
// theoretical bound t = (N-1)h + 1.
package main

import (
	"fmt"
	"log"
	"sort"

	"clue/internal/engine"
	"clue/internal/fibgen"
	"clue/internal/onrtc"
	"clue/internal/tracegen"
)

const (
	tableSize = 30000
	tcams     = 4
	buckets   = 32
	warmup    = 100000
	measured  = 500000
)

func main() {
	fib, err := fibgen.Generate(fibgen.Config{Seed: 2024, Routes: tableSize})
	if err != nil {
		log.Fatal(err)
	}
	table := onrtc.Compress(fib)
	fmt.Printf("table: %d routes compressed to %d (%.0f%%)\n",
		fib.Len(), table.Len(), 100*float64(table.Len())/float64(fib.Len()))

	// Offline phase: measure per-bucket traffic and build the
	// worst-case mapping (hottest buckets together).
	_, index, err := engine.BucketIndex(table, buckets)
	if err != nil {
		log.Fatal(err)
	}
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(table.Routes()),
		tracegen.TrafficConfig{Seed: 2024},
	)
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]int64, buckets)
	for i := 0; i < warmup; i++ {
		counts[index.Lookup(traffic.Next())]++
	}
	order := make([]int, buckets)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	mapping := make([]int, buckets)
	for rank, b := range order {
		mapping[b] = rank / (buckets / tcams)
	}
	fmt.Println("\nworst-case mapping (hottest 8 buckets -> TCAM 1):")
	for t := 0; t < tcams; t++ {
		var pct float64
		for b, m := range mapping {
			if m == t {
				pct += 100 * float64(counts[b]) / float64(warmup)
			}
		}
		fmt.Printf("  tcam %d offered %6.2f%% of traffic\n", t+1, pct)
	}

	// Cycle-accurate run with the paper's parameters.
	sys, err := engine.NewCLUESystem(table, tcams, buckets, mapping)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(sys, engine.Config{}) // FIFO 256, DRed 1024, 4 clk
	if err != nil {
		log.Fatal(err)
	}
	eng.Run(traffic.Next, warmup)
	eng.ResetStats()
	for i := 0; i < measured; i++ {
		eng.Step(traffic.Next(), true)
	}
	st := eng.Stats()

	h := st.HitRate()
	t := st.SpeedupFactor(eng.Config().LookupClocks)
	fmt.Printf("\nafter %d packets:\n", measured)
	fmt.Printf("  dred hit rate h = %.4f\n", h)
	fmt.Printf("  speedup factor t = %.3f  (worst-case bound (N-1)h+1 = %.3f)\n",
		t, float64(tcams-1)*h+1)
	fmt.Println("  served load per TCAM (balanced):")
	var sum int64
	for _, v := range st.PerTCAMServed {
		sum += v
	}
	for i, v := range st.PerTCAMServed {
		fmt.Printf("    tcam %d: %6.2f%%\n", i+1, 100*float64(v)/float64(sum))
	}
	if t < float64(tcams-1)*h+1-0.05 {
		log.Fatalf("speedup fell below the theoretical bound")
	}
	fmt.Println("\nthe bound t >= (N-1)h + 1 holds, as Figure 16 predicts")
}
