// Compression: compress the 12 Table I router profiles with ONRTC and
// report per-router sizes and the average ratio — Figure 8 in miniature.
// Pass -scale 1 for full-size (~400K-route) tables.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"clue"
	"clue/internal/fibgen"
)

func main() {
	scale := flag.Int("scale", 20, "divide the 2011 table sizes by this factor (1 = full size)")
	flag.Parse()

	routers, err := fibgen.ScaleRouters(*scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-7s %-22s %9s %11s %7s %12s %9s\n",
		"router", "location", "original", "compressed", "ratio", "leaf-pushed", "time")
	sumRatio := 0.0
	for _, r := range routers {
		fib, err := fibgen.Generate(r.Config())
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		_, st := clue.Compress(fib.Routes())
		elapsed := time.Since(start)
		fmt.Printf("%-7s %-22s %9d %11d %6.1f%% %12d %9s\n",
			r.ID, r.Location, st.Original, st.Compressed, 100*st.Ratio(),
			st.LeafPushed, elapsed.Round(time.Millisecond))
		sumRatio += st.Ratio()
	}
	fmt.Printf("\naverage compression ratio: %.1f%% (paper: ≈71%%)\n",
		100*sumRatio/float64(len(routers)))
}
