// Full-router: the complete CLUE system under simultaneous load — Zipf
// traffic through the cycle engine while a BGP update storm churns the
// table through the control plane, with a mid-run rebalance. This is the
// integration the paper argues for: compression, lookup and update
// working as one system rather than three isolated mechanisms.
package main

import (
	"fmt"
	"log"

	"clue"
	"clue/internal/fibgen"
	"clue/internal/tracegen"
)

const (
	tableSize   = 15000
	phaseClocks = 120000
	updatesPerK = 10 // update messages per 1000 clocks
)

func main() {
	fib, err := fibgen.Generate(fibgen.Config{Seed: 99, Routes: tableSize})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := clue.New(fib.Routes(), clue.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router up: %d FIB routes -> %d TCAM entries (%.0f%%), %d chips\n",
		sys.FIBLen(), sys.TableLen(), 100*sys.CompressionRatio(), sys.TCAMs())

	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(fib.Routes()),
		tracegen.TrafficConfig{Seed: 99, Repeat: 0.3},
	)
	if err != nil {
		log.Fatal(err)
	}
	updates, err := tracegen.NewUpdateGen(fib.Clone(), tracegen.UpdateConfig{
		Seed: 99, Messages: phaseClocks, WithdrawFrac: 0.3, NewPrefixFrac: 0.55,
	})
	if err != nil {
		log.Fatal(err)
	}
	// refFib mirrors every applied update so the final consistency check
	// compares the data plane against the true control-plane state.
	refFib := fib.Clone()

	phase := func(name string, withUpdates bool) {
		eng := sys.Engine()
		eng.ResetStats()
		applied, errs := 0, 0
		var totalTTF clue.TTF
		for c := 0; c < phaseClocks; c++ {
			eng.Step(traffic.Next(), true)
			if withUpdates && (c*updatesPerK)/1000 > applied {
				applied++
				u := updates.Next()
				var ttf clue.TTF
				var err error
				if u.Kind == tracegen.Withdraw {
					ttf, err = sys.Withdraw(u.Prefix)
					refFib.Delete(u.Prefix, nil)
				} else {
					ttf, err = sys.Announce(u.Prefix, u.Hop)
					refFib.Insert(u.Prefix, u.Hop, nil)
				}
				if err != nil {
					errs++
					continue
				}
				totalTTF = totalTTF.Add(ttf)
			}
		}
		st := eng.Stats()
		fmt.Printf("\n%s:\n", name)
		fmt.Printf("  throughput %.4f pkt/clk, mean latency %.1f clk, dred hit rate %.3f\n",
			st.Throughput(), st.MeanLatency(), st.HitRate())
		if withUpdates {
			mean := totalTTF.Scale(1 / float64(applied))
			fmt.Printf("  %d updates applied (mean TTF %.0f ns: trie %.0f + tcam %.0f + dred %.0f), %d errors\n",
				applied, mean.Total(), mean.Trie, mean.TCAM, mean.DRed, errs)
			fmt.Printf("  table now %d entries (FIB %d)\n", sys.TableLen(), sys.FIBLen())
		}
	}

	phase("phase 1: traffic only", false)
	phase("phase 2: traffic + update storm", true)

	rep, err := sys.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrebalance: %d entries reloaded, max chip occupancy %d -> %d\n",
		rep.Entries, rep.MaxBefore, rep.MaxAfter)

	phase("phase 3: traffic after rebalance", false)

	// End-to-end consistency: the data plane must agree with the true
	// control-plane state on every probe, including withdrawn space.
	probes := traffic.NextN(20000)
	wrong := 0
	for _, a := range probes {
		want, _ := refFib.Lookup(a, nil)
		got, ok := sys.Lookup(a)
		if !ok {
			got = clue.NoRoute
		}
		if got != want {
			wrong++
		}
	}
	fmt.Printf("\nconsistency: %d/%d probe lookups agree with the control plane\n", len(probes)-wrong, len(probes))
	if wrong > 0 {
		log.Fatal("data plane diverged from control plane")
	}
}
