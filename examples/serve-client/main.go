// Serve-client: exercise the concurrent forwarding service in-process —
// the software analog of the paper's line card under live load. A pool
// of client goroutines streams skewed lookup traffic through the
// partition workers while others push a burst of BGP-style announces and
// withdraws through the single-writer update path, then the exported
// metrics show the paper's quantities: per-update Time-To-Fresh
// (TTF1/TTF2/TTF3), writer batching, and the divert/cache behaviour of
// the Dynamic-Redundancy-style load balancer.
package main

import (
	"fmt"
	"log"
	"sync"

	"clue/internal/fibgen"
	"clue/internal/serve"
	"clue/internal/tracegen"
)

const (
	tableSize  = 20000
	lookupers  = 8
	submitters = 4
	messages   = 2000  // update burst, split across submitters
	lookups    = 40000 // per lookuper goroutine
)

func main() {
	fib, err := fibgen.Generate(fibgen.Config{Seed: 2024, Routes: tableSize})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := serve.New(fib.Routes(), serve.Config{QueueDepth: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	snap := rt.Snapshot()
	fmt.Printf("service up: %d routes compressed to %d, %d workers, snapshot v%d\n",
		tableSize, snap.Len(), snap.Workers(), snap.Version)

	// Update burst: a deterministic announce/withdraw stream, pushed
	// concurrently by several submitters while lookups are in flight.
	gen, err := tracegen.NewUpdateGen(fib, tracegen.UpdateConfig{Seed: 2024, Messages: messages})
	if err != nil {
		log.Fatal(err)
	}
	stream := gen.NextN(messages)

	var wg sync.WaitGroup
	for i := 0; i < lookupers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			traffic, err := tracegen.NewTraffic(
				tracegen.PrefixesFromRoutes(rt.Snapshot().Routes()),
				tracegen.TrafficConfig{Seed: seed},
			)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < lookups; i++ {
				if _, err := rt.Dispatch(traffic.Next()); err != nil {
					log.Fatal(err)
				}
			}
		}(int64(i + 1))
	}
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(ops []tracegen.Update) {
			defer wg.Done()
			for _, u := range ops {
				var err error
				if u.Kind == tracegen.Announce {
					_, err = rt.Announce(u.Prefix, u.Hop)
				} else {
					_, err = rt.Withdraw(u.Prefix)
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		}(stream[i*messages/submitters : (i+1)*messages/submitters])
	}
	wg.Wait()

	st := rt.Stats()
	if got := st.Announces + st.Withdraws; got != messages {
		log.Fatalf("applied %d updates, want %d", got, messages)
	}
	if st.UpdateErrors != 0 {
		log.Fatalf("%d update errors", st.UpdateErrors)
	}

	mean := st.MeanTTF()
	fmt.Printf("\nafter %d lookups and %d updates:\n", st.Dispatched, messages)
	fmt.Printf("  snapshot v%d, %d routes, %d snapshot swaps (mean batch %.1f ops)\n",
		st.SnapshotVersion, st.Routes, st.Batches, st.MeanBatch())
	fmt.Printf("  mean TTF per update: trie %.0f ns + tcam %.0f ns + dred %.0f ns = %.0f ns\n",
		mean.Trie, mean.TCAM, mean.DRed, mean.Total())
	fmt.Printf("  divert rate %.2f%% (%d diverted, %d blocked), cache hit rate %.2f%%\n",
		100*st.DivertRate(), st.Diverted, st.OverflowBlocked, 100*st.CacheHitRate())
	fmt.Println("  served load per worker:")
	for i, v := range st.WorkerServed {
		fmt.Printf("    worker %d: %6.2f%%\n", i+1, 100*float64(v)/float64(st.Dispatched))
	}
	fmt.Println("\nreads never locked; every announce was visible when it returned")
}
