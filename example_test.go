package clue_test

import (
	"fmt"

	"clue"
)

// ExampleCompress demonstrates the compression stage alone: redundant
// more-specifics collapse and same-hop siblings merge, leaving a
// disjoint table.
func ExampleCompress() {
	routes := []clue.Route{
		{Prefix: clue.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: clue.MustParsePrefix("10.1.0.0/16"), NextHop: 1},      // redundant
		{Prefix: clue.MustParsePrefix("192.168.0.0/17"), NextHop: 2},   // merges
		{Prefix: clue.MustParsePrefix("192.168.128.0/17"), NextHop: 2}, // with this
	}
	table, st := clue.Compress(routes)
	fmt.Printf("%d -> %d entries\n", st.Original, st.Compressed)
	for _, r := range table.Routes() {
		fmt.Println(r)
	}
	// Output:
	// 4 -> 2 entries
	// 10.0.0.0/8 -> 1
	// 192.168.0.0/16 -> 2
}

// ExampleTable_Lookup shows single-match lookup over a compressed table:
// a different-hop specific splits its cover, preserving LPM semantics
// without any longest-prefix tie-break at lookup time.
func ExampleTable_Lookup() {
	routes := []clue.Route{
		{Prefix: clue.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: clue.MustParsePrefix("10.128.0.0/9"), NextHop: 2},
	}
	table, _ := clue.Compress(routes)
	for _, s := range []string{"10.1.2.3", "10.200.0.1", "11.0.0.1"} {
		hop, ok := table.Lookup(clue.MustParseAddr(s))
		fmt.Println(s, hop, ok)
	}
	// Output:
	// 10.1.2.3 1 true
	// 10.200.0.1 2 true
	// 11.0.0.1 0 false
}
