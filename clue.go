// Package clue is a Go implementation of CLUE — routing table
// Compression, fast parallel Lookup and fast incremental UpdatE for
// TCAM-based forwarding engines (Yang et al., ICDCS 2012).
//
// The package bundles three coupled mechanisms:
//
//   - ONRTC compression: the optimal non-overlapping representation of a
//     routing table (≈71 % of the original size on realistic tables),
//     which removes the priority encoder, the update domino effect and
//     partition redundancy in one stroke.
//   - A parallel lookup engine: the compressed table is split into even
//     range partitions over N TCAM chips; bursty traffic is absorbed by
//     per-chip Dynamic Redundancy (DRed) caches with the reduced-
//     redundancy fill rule (DRed i never stores TCAM i's prefixes).
//   - An incremental update pipeline: announce/withdraw messages flow
//     through trie, TCAMs and DReds with O(1) TCAM movement per
//     operation, reported as a TTF (Time-To-Fresh) breakdown.
//
// # Quick start
//
//	routes := []clue.Route{
//	    {Prefix: clue.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
//	    {Prefix: clue.MustParsePrefix("10.1.0.0/16"), NextHop: 2},
//	    // ... the rest of the FIB ...
//	}
//	sys, err := clue.New(routes, clue.Config{})
//	if err != nil { ... }
//	hop, ok := sys.Lookup(clue.MustParseAddr("10.1.2.3"))
//	ttf, err := sys.Announce(clue.MustParsePrefix("192.0.2.0/24"), 7)
//
// For a standalone compressed table without the engine, use Compress.
// The cmd/clue-bench binary and the repository's bench suite regenerate
// every table and figure of the paper's evaluation; see EXPERIMENTS.md.
package clue

import (
	"clue/internal/core"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/trie"
	"clue/internal/update"
)

// Addr is an IPv4 address in host byte order.
type Addr = ip.Addr

// Prefix is an IPv4 CIDR prefix with canonical (masked) bits.
type Prefix = ip.Prefix

// NextHop identifies a forwarding next hop; 0 (NoRoute) means absent.
type NextHop = ip.NextHop

// NoRoute is the absent next hop.
const NoRoute = ip.NoRoute

// Route is one FIB entry.
type Route = ip.Route

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) { return ip.ParseAddr(s) }

// MustParseAddr is ParseAddr for trusted literals; panics on error.
func MustParseAddr(s string) Addr { return ip.MustParseAddr(s) }

// ParsePrefix parses CIDR notation, rejecting stray host bits.
func ParsePrefix(s string) (Prefix, error) { return ip.ParsePrefix(s) }

// MustParsePrefix is ParsePrefix for trusted literals; panics on error.
func MustParsePrefix(s string) Prefix { return ip.MustParsePrefix(s) }

// Config parameterises a System; zero values take the paper's defaults
// (4 TCAMs, 8 buckets per TCAM, FIFO 256, DRed 1024, 4 clocks/lookup).
type Config = core.Config

// System is a complete CLUE forwarding engine: compressed table, N-TCAM
// parallel lookup with dynamic redundancy, and the incremental update
// pipeline.
type System = core.System

// TTF is an update's Time-To-Fresh breakdown in nanoseconds: Trie (TTF1,
// control plane), TCAM (TTF2) and DRed (TTF3).
type TTF = update.TTF

// CostModel prices update operations (TCAM access, SRAM access).
type CostModel = update.CostModel

// DefaultCosts returns the paper-calibrated cost model (24 ns per TCAM
// access, from the CYNSE70256).
func DefaultCosts() CostModel { return update.DefaultCosts() }

// RebalanceReport summarises a System.Rebalance maintenance run.
type RebalanceReport = core.RebalanceReport

// New builds a CLUE system from the original (possibly overlapping) FIB.
func New(routes []Route, cfg Config) (*System, error) {
	return core.New(routes, cfg)
}

// CompressionStats reports table sizes around an ONRTC run.
type CompressionStats = onrtc.Stats

// Table is a standalone ONRTC-compressed, non-overlapping routing table
// supporting single-match lookup.
type Table struct {
	inner *onrtc.Table
}

// Compress builds the optimal non-overlapping table for the given routes
// and reports size statistics. Use it when only the compression stage is
// needed (e.g. to shrink a table for a single TCAM).
func Compress(routes []Route) (*Table, CompressionStats) {
	t, st := onrtc.CompressWithStats(trie.FromRoutes(routes))
	return &Table{inner: t}, st
}

// Len returns the compressed entry count.
func (t *Table) Len() int { return t.inner.Len() }

// Routes lists the compressed entries in ascending address order.
func (t *Table) Routes() []Route { return t.inner.Routes() }

// Lookup resolves addr. At most one compressed prefix matches, so no
// longest-prefix tie-break (priority encoder) is involved.
func (t *Table) Lookup(addr Addr) (NextHop, bool) {
	hop, _ := t.inner.Lookup(addr, nil)
	return hop, hop != NoRoute
}
