package serve

import (
	"errors"
	"fmt"
	"sync"
)

// WorkerState is the health of one partition worker. The state machine
// is Healthy → Draining → Failed → Healthy (RecoverWorker); panics jump
// straight to Failed.
type WorkerState int32

const (
	// WorkerHealthy accepts new lookups and owns a home range.
	WorkerHealthy WorkerState = iota
	// WorkerDraining accepts no new lookups but still serves its queued
	// backlog — the transitional state while FailWorker re-homes its
	// range onto the survivors.
	WorkerDraining
	// WorkerFailed is out of service: no home range, no new lookups. A
	// failed worker's goroutine stays parked on its (now quiet) queue so
	// RecoverWorker can bring it back without respawning anything.
	WorkerFailed
)

// String names the state for stats and logs.
func (s WorkerState) String() string {
	switch s {
	case WorkerHealthy:
		return "healthy"
	case WorkerDraining:
		return "draining"
	case WorkerFailed:
		return "failed"
	}
	return fmt.Sprintf("WorkerState(%d)", int32(s))
}

// ErrUnknownWorker reports a worker id outside [0, Workers).
var ErrUnknownWorker = errors.New("serve: unknown worker")

// ErrWorkerState reports a fail/recover call against a worker whose
// current state does not allow the transition (double-fail,
// recover-when-healthy, failing the last healthy worker).
var ErrWorkerState = errors.New("serve: invalid worker state transition")

// ErrNoHealthyWorkers is returned by the dispatch paths when every
// partition worker is failed or draining — the only condition under
// which worker-path forwarding stops. The snapshot path (Lookup /
// LookupBatch) keeps answering regardless.
var ErrNoHealthyWorkers = errors.New("serve: no healthy workers")

// ErrEnqueueTimeout is returned by the dispatch paths when every
// eligible worker queue stayed full for the whole retry/timeout budget
// (Config.EnqueueRetries / Config.EnqueueTimeout).
var ErrEnqueueTimeout = errors.New("serve: enqueue timed out, all eligible worker queues full")

// FailWorker takes worker id out of service: the worker is marked
// draining immediately (no new lookups are routed to it, its queued
// backlog still completes), its home range is re-split exactly evenly
// across the surviving workers — the disjoint table makes the recut a
// pure boundary move with no priority reordering — and the re-homed
// snapshot is published before FailWorker returns, after which the
// worker is failed. Survivor caches are flushed with the new snapshot
// so no DRed-analog entry from the old partition map goes stale.
//
// Failing the last healthy worker is refused (ErrWorkerState): operator
// action never stops forwarding. Only a panic can take the last worker
// down.
func (r *Runtime) FailWorker(id int) error {
	if id < 0 || id >= len(r.workers) {
		return fmt.Errorf("%w: %d (have %d)", ErrUnknownWorker, id, len(r.workers))
	}
	if r.healthyCount() <= 1 && r.workers[id].healthy() {
		return fmt.Errorf("%w: worker %d is the last healthy worker", ErrWorkerState, id)
	}
	w := r.workers[id]
	if !w.state.CompareAndSwap(int32(WorkerHealthy), int32(WorkerDraining)) {
		return fmt.Errorf("%w: worker %d is %s, not healthy", ErrWorkerState, id, WorkerState(w.state.Load()))
	}
	err := r.submitCtl()
	// Even if the runtime closed under us the worker must not linger in
	// draining, or a later RecoverWorker could never see a legal state.
	w.state.Store(int32(WorkerFailed))
	return err
}

// RecoverWorker returns a failed worker to service: its state flips to
// healthy and the next published snapshot re-homes the partition bounds
// to include it again. The rehome snapshot flushes every worker cache,
// which also clears whatever the recovered worker cached before it
// failed. RecoverWorker returns after the recut snapshot is published.
func (r *Runtime) RecoverWorker(id int) error {
	if id < 0 || id >= len(r.workers) {
		return fmt.Errorf("%w: %d (have %d)", ErrUnknownWorker, id, len(r.workers))
	}
	w := r.workers[id]
	if !w.state.CompareAndSwap(int32(WorkerFailed), int32(WorkerHealthy)) {
		return fmt.Errorf("%w: worker %d is %s, not failed", ErrWorkerState, id, WorkerState(w.state.Load()))
	}
	return r.submitCtl()
}

// WorkerStates returns each worker's current health state.
func (r *Runtime) WorkerStates() []WorkerState {
	out := make([]WorkerState, len(r.workers))
	for i, w := range r.workers {
		out[i] = WorkerState(w.state.Load())
	}
	return out
}

// healthyCount counts workers currently accepting new lookups.
func (r *Runtime) healthyCount() int {
	n := 0
	for _, w := range r.workers {
		if w.healthy() {
			n++
		}
	}
	return n
}

// submitCtl queues a control op that forces the writer to publish a
// re-homed snapshot (fresh partition bounds from the current health
// states, caches flushed) and waits for the publication.
func (r *Runtime) submitCtl() error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.closed.Load() {
		return ErrClosed
	}
	op := updateOp{ctl: true, done: make(chan opResult, 1)}
	r.updates <- op
	<-op.done
	return nil
}

// FlushCaches publishes a fresh snapshot recut from the current worker
// health states with every worker's DRed-analog cache flushed, and
// returns once the publication is live. It is the operator / test hook
// for forcing a snapshot swap without a route change — the same
// control publication FailWorker and RecoverWorker ride — so stale
// cache suspicion can be cleared (and the oracle's flush/swap lifecycle
// commands exercised) without taking a worker out of service.
func (r *Runtime) FlushCaches() error { return r.submitCtl() }

// failAfterPanic is the panic-recovery path out of worker.run: the
// worker is forced straight to failed and a rehome publication is
// requested without blocking the (recovering) worker goroutine. If the
// update queue is full the next writer batch re-homes anyway — every
// snapshot publication reads the live health states — and the enqueue
// health checks already route new lookups away.
func (r *Runtime) failAfterPanic(w *worker) {
	w.state.Store(int32(WorkerFailed))
	r.m.workerPanics.Add(1)
	if r.closed.Load() {
		return
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.closed.Load() {
		return
	}
	select {
	case r.updates <- updateOp{ctl: true, done: make(chan opResult, 1)}:
	default:
	}
}

// StallWorker wedges worker id: its goroutine parks on the returned
// release func's channel, so its queue stops draining and fills up.
// This is the chaos/test hook for a stuck partition — it drives the
// divert, retry and timeout paths deterministically. The stall occupies
// one queue slot; release is idempotent.
func (r *Runtime) StallWorker(id int) (release func(), err error) {
	if id < 0 || id >= len(r.workers) {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrUnknownWorker, id, len(r.workers))
	}
	if r.closed.Load() {
		return nil, ErrClosed
	}
	ch := make(chan struct{})
	select {
	case r.workers[id].queue <- lookupReq{stall: ch}:
	default:
		return nil, fmt.Errorf("serve: worker %d queue full, cannot inject stall", id)
	}
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }, nil
}

// PoisonWorker makes worker id panic on its next dequeue — the
// chaos/test hook for the panic-recovery path in worker.run. The panic
// is recovered, the worker goes straight to failed and its range is
// re-homed; the goroutine survives for a later RecoverWorker.
func (r *Runtime) PoisonWorker(id int) error {
	if id < 0 || id >= len(r.workers) {
		return fmt.Errorf("%w: %d (have %d)", ErrUnknownWorker, id, len(r.workers))
	}
	if r.closed.Load() {
		return ErrClosed
	}
	select {
	case r.workers[id].queue <- lookupReq{poison: true}:
		return nil
	default:
		return fmt.Errorf("serve: worker %d queue full, cannot inject poison", id)
	}
}
