package serve

import (
	"math/rand"
	"testing"

	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/trie"
)

// FuzzSnapshotIndex is the differential test for the lookup fast path:
// over random FIBs and random addresses, the stride-indexed
// Snapshot.Lookup, the full-binary-search Snapshot.LookupBinary and the
// compressed trie's onrtc.Table.Lookup must give identical answers. The
// raw bytes decode to 5-byte (address, prefix-length) records; probe
// addresses come from the seeded RNG plus every route boundary.
func FuzzSnapshotIndex(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{10, 0, 0, 0, 8, 192, 168, 0, 0, 16})
	// Default route plus nested lengths around the 16-bit stride.
	f.Add(int64(3), []byte{
		0, 0, 0, 0, 0,
		10, 0, 0, 0, 7,
		10, 128, 0, 0, 9,
		10, 129, 0, 0, 16,
		10, 129, 3, 0, 24,
		10, 129, 3, 7, 32,
	})
	// A /1 next to deep host routes — the spanning-route extremes.
	f.Add(int64(4), []byte{128, 0, 0, 0, 1, 127, 255, 255, 255, 32, 0, 0, 0, 0, 2})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 5*2048 {
			raw = raw[:5*2048]
		}
		fib := trie.New()
		for i := 0; i+5 <= len(raw); i += 5 {
			a := ip.Addr(uint32(raw[i])<<24 | uint32(raw[i+1])<<16 | uint32(raw[i+2])<<8 | uint32(raw[i+3]))
			p, err := ip.NewPrefix(a, int(raw[i+4])%33)
			if err != nil {
				t.Fatal(err)
			}
			fib.Insert(p, ip.NextHop(i/5%14+1), nil)
		}
		table := onrtc.Compress(fib)
		routes := table.Routes()
		snap := newSnapshot(1, routes, 4, nil)
		if !snap.Indexed() && len(routes) > 0 {
			// Force the indexed path for tables below the size gate, so
			// the fuzzer always exercises the stride index.
			snap.index = buildStrideIndex(routes)
		}

		probes := make([]ip.Addr, 0, 4*len(routes)+64)
		for _, r := range routes {
			probes = append(probes, r.Prefix.First(), r.Prefix.Last())
			if f := r.Prefix.First(); f > 0 {
				probes = append(probes, f-1)
			}
			if l := r.Prefix.Last(); l < ip.Addr(^uint32(0)) {
				probes = append(probes, l+1)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 64; i++ {
			probes = append(probes, ip.Addr(rng.Uint32()))
		}

		for _, a := range probes {
			hopI, pfxI, okI := snap.Lookup(a)
			hopB, pfxB, okB := snap.LookupBinary(a)
			hopT, pfxT := table.Lookup(a, nil)
			okT := hopT != ip.NoRoute
			if okI != okB || okI != okT {
				t.Fatalf("lookup(%s): indexed found=%v, binary found=%v, table found=%v",
					a, okI, okB, okT)
			}
			if okI && (hopI != hopB || hopI != hopT || pfxI != pfxB || pfxI != pfxT) {
				t.Fatalf("lookup(%s): indexed %d/%s, binary %d/%s, table %d/%s",
					a, hopI, pfxI, hopB, pfxB, hopT, pfxT)
			}
		}
	})
}
