package serve

import (
	"math/rand"
	"testing"

	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/trie"
)

// FuzzSnapshotIndex is the differential test for the lookup fast path:
// over random FIBs and random addresses, the stride-indexed
// Snapshot.Lookup, the full-binary-search Snapshot.LookupBinary and the
// compressed trie's onrtc.Table.Lookup must give identical answers. The
// raw bytes decode to 5-byte (address, prefix-length) records; probe
// addresses come from the seeded RNG plus every route boundary.
//
// The records are also replayed in two halves to fuzz the incremental
// index path: the first half's index is patched into the full table
// with patchIndexInto (the writer's small-batch route), and the result
// must be cut-for-cut identical to an index built from scratch —
// including the relative cuts of every sub-array both sides promoted —
// and answer every probe like the reference engines do.
func FuzzSnapshotIndex(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{10, 0, 0, 0, 8, 192, 168, 0, 0, 16})
	// Default route plus nested lengths around the 16-bit stride.
	f.Add(int64(3), []byte{
		0, 0, 0, 0, 0,
		10, 0, 0, 0, 7,
		10, 128, 0, 0, 9,
		10, 129, 0, 0, 16,
		10, 129, 3, 0, 24,
		10, 129, 3, 7, 32,
	})
	// A /1 next to deep host routes — the spanning-route extremes.
	f.Add(int64(4), []byte{128, 0, 0, 0, 1, 127, 255, 255, 255, 32, 0, 0, 0, 0, 2})
	// Host routes piling into one /24 split across the halves, so the
	// patch path crosses the sub-array promotion threshold; the trailing
	// /16 forces compression-driven deletes on top of the inserts.
	f.Add(int64(5), []byte{
		10, 1, 1, 1, 32,
		10, 1, 1, 2, 32,
		10, 1, 1, 3, 32,
		10, 1, 1, 4, 32,
		10, 1, 1, 9, 32,
		10, 1, 0, 0, 16,
	})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 5*2048 {
			raw = raw[:5*2048]
		}
		insert := func(fib *trie.Trie, i int) {
			a := ip.Addr(uint32(raw[i])<<24 | uint32(raw[i+1])<<16 | uint32(raw[i+2])<<8 | uint32(raw[i+3]))
			p, err := ip.NewPrefix(a, int(raw[i+4])%33)
			if err != nil {
				t.Fatal(err)
			}
			fib.Insert(p, ip.NextHop(i/5%14+1), nil)
		}
		fib := trie.New()
		half := (len(raw) / 5 / 2) * 5
		for i := 0; i+5 <= half; i += 5 {
			insert(fib, i)
		}
		routes1 := onrtc.Compress(fib).Routes()
		for i := half; i+5 <= len(raw); i += 5 {
			insert(fib, i)
		}
		table := onrtc.Compress(fib)
		routes := table.Routes()
		snap := newSnapshot(1, routes, 4, nil)
		if !snap.Indexed() && len(routes) > 0 {
			// Force the indexed path for tables below the size gate, so
			// the fuzzer always exercises the stride index.
			snap.index = buildIndexInto(snap.ar, snap.rng)
		}

		// Patch path: diff the two compressed tables by prefix (a route
		// is "the same" iff its prefix survived — hop changes are not
		// structural), then patch the half-table's index forward.
		var snapP *Snapshot
		if len(routes) > 0 {
			var insLast, delLast []ip.Addr
			i, j := 0, 0
			for i < len(routes1) || j < len(routes) {
				switch {
				case j == len(routes) || (i < len(routes1) && routes1[i].Prefix.First() < routes[j].Prefix.First()):
					delLast = append(delLast, routes1[i].Prefix.Last())
					i++
				case i == len(routes1) || routes[j].Prefix.First() < routes1[i].Prefix.First():
					insLast = append(insLast, routes[j].Prefix.Last())
					j++
				default:
					if routes1[i].Prefix != routes[j].Prefix {
						delLast = append(delLast, routes1[i].Prefix.Last())
						insLast = append(insLast, routes[j].Prefix.Last())
					}
					i++
					j++
				}
			}
			snap1 := newSnapshot(1, routes1, 4, nil)
			if snap1.index.empty() {
				snap1.index = buildIndexInto(snap1.ar, snap1.rng)
			}
			ar2 := newArena(len(routes))
			rng2, hop2 := ar2.routeSlabs(len(routes))
			fillSlabs(rng2, hop2, routes)
			snapP = shellOnArena(ar2, 2, 4, nil, nil, nil, false)
			snapP.index = patchIndexInto(ar2, snap1.index, rng2, insLast, delLast, len(routes))

			// A patched index must be cut-for-cut the index a full
			// rebuild produces...
			for b := 0; b <= strideBuckets; b++ {
				if got, want := l1Cut(snapP.index.l1[b]), l1Cut(snap.index.l1[b]); got != want {
					t.Fatalf("patched cut[%d] = %d, rebuilt = %d (%d ins, %d del)",
						b, got, want, len(insLast), len(delLast))
				}
			}
			// ...and where both promoted a bucket, the relative
			// sub-cuts must agree entry for entry. (The promoted SETS
			// may differ: the patch path promotes lazily and keeps
			// inherited promotions a rebuild would not make.)
			for b := 0; b < strideBuckets; b++ {
				rp, rf := snapP.index.l1[b]>>32, snap.index.l1[b]>>32
				if rp == 0 || rf == 0 {
					continue
				}
				sp := snapP.index.subs[(rp-1)<<subBits : rp<<subBits]
				sf := snap.index.subs[(rf-1)<<subBits : rf<<subBits]
				for k := range sp {
					if sp[k] != sf[k] {
						t.Fatalf("bucket %d sub[%d]: patched %d, rebuilt %d", b, k, sp[k], sf[k])
					}
				}
			}
		}

		probes := make([]ip.Addr, 0, 4*len(routes)+64)
		for _, r := range routes {
			probes = append(probes, r.Prefix.First(), r.Prefix.Last())
			if f := r.Prefix.First(); f > 0 {
				probes = append(probes, f-1)
			}
			if l := r.Prefix.Last(); l < ip.Addr(^uint32(0)) {
				probes = append(probes, l+1)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 64; i++ {
			probes = append(probes, ip.Addr(rng.Uint32()))
		}

		var batchP []LookupResult
		if snapP != nil {
			batchP = snapP.LookupBatch(probes, nil)
		}
		for pi, a := range probes {
			hopI, pfxI, okI := snap.Lookup(a)
			hopB, pfxB, okB := snap.LookupBinary(a)
			hopT, pfxT := table.Lookup(a, nil)
			okT := hopT != ip.NoRoute
			if okI != okB || okI != okT {
				t.Fatalf("lookup(%s): indexed found=%v, binary found=%v, table found=%v",
					a, okI, okB, okT)
			}
			if okI && (hopI != hopB || hopI != hopT || pfxI != pfxB || pfxI != pfxT) {
				t.Fatalf("lookup(%s): indexed %d/%s, binary %d/%s, table %d/%s",
					a, hopI, pfxI, hopB, pfxB, hopT, pfxT)
			}
			if snapP != nil {
				hopP, pfxP, okP := snapP.Lookup(a)
				if okP != okT || (okP && (hopP != hopT || pfxP != pfxT)) {
					t.Fatalf("lookup(%s): patched-index %d/%s/%v, table %d/%s/%v",
						a, hopP, pfxP, okP, hopT, pfxT, okT)
				}
				if r := batchP[pi]; r.Found != okT || (okT && (r.Hop != hopT || r.Prefix != pfxT)) {
					t.Fatalf("batch lookup(%s): patched-index %d/%s/%v, table %d/%s/%v",
						a, r.Hop, r.Prefix, r.Found, hopT, pfxT, okT)
				}
			}
		}
	})
}
