package serve

import (
	"runtime"
	"sync/atomic"
)

// Epoch-based snapshot reclamation (DESIGN.md §12).
//
// Snapshots used to be garbage for the GC to find: every writer batch
// copied the full route table into fresh allocations and dropped the old
// ones. Arena-backed snapshots invert that — the writer wants to recycle
// a retired snapshot's arena the moment no reader can still be looking
// at it, without making readers take locks or reference-count on the
// (sub-10ns) lookup path.
//
// The protocol is the classic two-phase epoch scheme:
//
//   - Readers *pin* before loading the snapshot pointer and *unpin*
//     when done: claim a striped slot (cache-line padded, CAS from a
//     hashed start so unrelated goroutines rarely share a line) and
//     store the current global epoch in it, tagged active.
//   - The writer, having replaced snapshot v, advances the global epoch
//     and remembers v with the epoch during which it was current. All
//     atomics are sequentially consistent, so any reader that pins a
//     later epoch is guaranteed to load v's successor: once every
//     active slot carries a strictly newer epoch, no reader can still
//     hold v and its arena is safe to reuse.
//
// Pins are short (one lookup or one batch), so reclamation lag is
// bounded by the longest in-flight read, not by reader count.

const cacheLine = 64

// epochSlot is one reader registration cell. state is 0 when free,
// otherwise (epoch<<1)|1. The padding keeps each slot on its own cache
// line so two concurrent readers never false-share.
type epochSlot struct {
	state atomic.Uint64
	_     [cacheLine - 8]byte
}

// epochs is the reclamation clock: a global epoch counter advanced by
// the single writer, plus the striped reader slots.
type epochs struct {
	global atomic.Uint64
	_      [cacheLine - 8]byte
	slots  []epochSlot
	mask   uint64
}

// newEpochs sizes the slot array to comfortably exceed the number of
// goroutines that can simultaneously hold a pin while running (a pinned
// goroutine that gets preempted keeps its slot, so leave headroom).
func newEpochs() *epochs {
	n := 1
	for n < 8*runtime.GOMAXPROCS(0) || n < 64 {
		n <<= 1
	}
	e := &epochs{slots: make([]epochSlot, n), mask: uint64(n - 1)}
	e.global.Store(1)
	return e
}

// enter claims a slot and pins the current epoch in it. h seeds the
// slot choice (any cheap per-caller value — a worker id, a counter);
// collisions fall through to linear probing. If every slot is pinned
// (only possible when pinned goroutines were preempted), yield so they
// can run and unpin instead of livelocking a busy CPU.
func (e *epochs) enter(h uint64) *epochSlot {
	tag := e.global.Load()<<1 | 1
	h *= 0x9e3779b97f4a7c15 // Fibonacci spread of dense seeds
	for i := uint64(0); ; i++ {
		s := &e.slots[(h+i)&e.mask]
		if s.state.Load() == 0 && s.state.CompareAndSwap(0, tag) {
			return s
		}
		if i != 0 && i&e.mask == 0 {
			runtime.Gosched()
		}
	}
}

// exit releases the pin.
func (s *epochSlot) exit() { s.state.Store(0) }

// advance moves the global clock forward one epoch (writer only) and
// returns the new value. A snapshot replaced immediately before an
// advance call was current during epoch advance()-1.
func (e *epochs) advance() uint64 { return e.global.Add(1) }

// safeBefore reports whether every active reader has pinned an epoch
// strictly newer than epoch — i.e. no reader can still hold a snapshot
// that was retired at the end of that epoch. Conservative by design: a
// reader that pinned a stale epoch value merely delays reclamation.
func (e *epochs) safeBefore(epoch uint64) bool {
	for i := range e.slots {
		st := e.slots[i].state.Load()
		if st != 0 && st>>1 <= epoch {
			return false
		}
	}
	return true
}
