package serve

import (
	"runtime"
	"sort"
	"sync"

	"clue/internal/ip"
)

// The stride index is the software analog of a line card's DIR-24-8
// pipeline, shaped for the disjoint ONRTC output: because compressed
// routes are non-overlapping and sorted, a bucket's candidates form one
// contiguous slice of the route table, so both index levels are flat
// arrays of cut points — no pointers, no per-node headers.
//
//   - Level 1 is a 2^16-entry array over the top strideBits of the
//     address. Each entry packs the bucket's cut (count of routes lying
//     entirely below the bucket) with a tag: 0 for a leaf bucket
//     (candidates are scanned directly), or a 1-based reference into
//     the second-level slab for a promoted bucket.
//   - Level 2 is a slab of 256-entry sub-arrays, one per hot bucket
//     (route count >= subPromoteMin), carrying the same cut-point
//     semantics at /24 granularity. A promoted lookup is two dependent
//     loads — l1 entry, then sub-array cut — landing on a candidate
//     range that is almost always a single route.
const (
	// strideBits is the width of the first-level index: 2^16 buckets,
	// each covering a /16 of the address space.
	strideBits    = 16
	strideShift   = ip.AddrBits - strideBits
	strideBuckets = 1 << strideBits

	// subBits is the width of a second-level sub-array: 256 entries,
	// each covering a /24 of a promoted bucket.
	subBits    = 8
	subShift   = strideShift - subBits
	subEntries = 1 << subBits

	// subPromoteMin is the bucket route count at which a second-level
	// sub-array pays for itself. Promoting aggressively — any bucket
	// with two or more routes — keeps nearly every probe window at one
	// or two entries, which measures ~15% faster than promoting at five
	// on skewed traffic; the price is index memory (surfaced through
	// Stats.IndexBytes) since each promoted bucket carries a 512 B
	// sub-array.
	subPromoteMin = 2

	// subSpare is the promotion headroom (in sub-arrays) a rebuild
	// leaves in the slab so in-place index patches can promote buckets
	// that turn hot without forcing a full rebuild.
	subSpare = 64

	// subPatchPromoteMax bounds how many buckets one index patch may
	// promote, keeping the patch cost proportional to the batch.
	subPatchPromoteMax = 16

	// strideMinRoutes gates index construction: below this table size a
	// plain binary search already fits in a couple of cache lines and
	// the 512 KiB first level is not worth carrying on every snapshot.
	strideMinRoutes = 256

	// strideScanMax bounds the linear candidate scan; leaf buckets (or
	// pathological /24 sub-buckets) packed with more long prefixes than
	// this fall back to a binary search bounded to the bucket.
	strideScanMax = 8

	// stridePatchMax caps how many structural table changes a snapshot
	// swap may patch through the previous index before a fresh parallel
	// rebuild is cheaper.
	stridePatchMax = 4096

	// strideBuildChunk is the bucket range below which the first-level
	// fill stays single-threaded: spawning the worker pool only pays
	// off once the merge walk dominates goroutine startup.
	strideBuildChunk = 1 << 13
)

// strideIndex is the two-level lookup structure. Both slices are views
// into the owning snapshot's arena. l1[b] packs subRef<<32 | cut where
// cut is the index of the first route whose last address reaches bucket
// b and subRef is 0 (leaf) or 1+i for the sub-array at subs[i*256:].
// l1[strideBuckets] is the table length. subs carries the same cut
// semantics at /24 granularity, stored as 16-bit offsets RELATIVE to
// the owning bucket's l1 cut: a sub-bucket's cut is cut + sub[j], its
// end cut is cut + sub[j+1], or the next l1 cut for the last
// sub-bucket. Relative entries count only routes inside the bucket
// (at most 65280 can lie below the last /24, so uint16 never
// overflows), and — crucially for fast updates — they are invariant
// under route shifts outside the bucket, so an index patch can carry
// every untouched sub-array over with one bulk copy.
type strideIndex struct {
	l1   []uint64
	subs []uint16
}

// empty reports whether the snapshot carries no index (small tables).
func (ix strideIndex) empty() bool { return ix.l1 == nil }

// subCount returns the number of promoted buckets.
func (ix strideIndex) subCount() int { return len(ix.subs) / subEntries }

// bytes is the index's memory footprint.
func (ix strideIndex) bytes() int { return len(ix.l1)*8 + len(ix.subs)*2 }

// cut extracts the route cut from a level-1 entry.
func l1Cut(e uint64) uint32 { return uint32(e) }

// rngLast / rngFirst unpack a snapshot's packed route range.
func rngFirst(e uint64) uint32 { return uint32(e) }
func rngLast(e uint64) uint32  { return uint32(e >> 32) }

// buildIndexInto computes the two-level index over the packed route
// ranges from scratch into ar's index slabs. The first-level fill is
// parallelized across bucket ranges; disjointness makes the routes'
// last addresses ascending, so each worker binary-searches its first
// cut and then linearly merges routes and buckets. Hot buckets then get
// second-level sub-arrays, filled in parallel the same way.
func buildIndexInto(ar *arena, rng []uint64) strideIndex {
	l1 := ar.ensureL1()
	workers := runtime.GOMAXPROCS(0)
	if workers > strideBuckets/strideBuildChunk {
		workers = strideBuckets / strideBuildChunk
	}
	if workers <= 1 {
		fillL1Range(l1, rng, 0, strideBuckets)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			b0 := w * strideBuckets / workers
			b1 := (w + 1) * strideBuckets / workers
			wg.Add(1)
			go func(b0, b1 int) {
				defer wg.Done()
				fillL1Range(l1, rng, b0, b1)
			}(b0, b1)
		}
		wg.Wait()
	}
	l1[strideBuckets] = uint64(len(rng))

	// Promotion pass: tag hot buckets with 1-based sub-array refs. The
	// serial scan is cheap (one branch per bucket); the sub-array fills
	// it schedules run in parallel below.
	hot := 0
	for b := 0; b < strideBuckets; b++ {
		if l1Cut(l1[b+1])-l1Cut(l1[b]) >= subPromoteMin {
			hot++
			l1[b] |= uint64(hot) << 32
		}
	}
	ix := strideIndex{l1: l1}
	if hot == 0 {
		ar.subs = ar.subs[:0]
		return ix
	}
	subs := ar.ensureSubs(hot * subEntries)
	if workers <= 1 || hot < 64 {
		fillSubRange(l1, subs, rng, 0, strideBuckets)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			b0 := w * strideBuckets / workers
			b1 := (w + 1) * strideBuckets / workers
			wg.Add(1)
			go func(b0, b1 int) {
				defer wg.Done()
				fillSubRange(l1, subs, rng, b0, b1)
			}(b0, b1)
		}
		wg.Wait()
	}
	ix.subs = subs
	return ix
}

// fillL1Range fills the first-level cuts for buckets [b0, b1).
func fillL1Range(l1 []uint64, rng []uint64, b0, b1 int) {
	first := uint32(b0) << strideShift
	r := sort.Search(len(rng), func(i int) bool {
		return rngLast(rng[i]) >= first
	})
	for b := b0; b < b1; b++ {
		bf := uint32(b) << strideShift
		for r < len(rng) && rngLast(rng[r]) < bf {
			r++
		}
		l1[b] = uint64(uint32(r))
	}
}

// fillSubRange fills the sub-arrays of every promoted bucket in
// [b0, b1): the same cut-point merge as the first level, at /24
// granularity, starting from the bucket's own cut.
func fillSubRange(l1 []uint64, subs []uint16, rng []uint64, b0, b1 int) {
	for b := b0; b < b1; b++ {
		ref := l1[b] >> 32
		if ref == 0 {
			continue
		}
		fillSubArray(subs[(ref-1)<<subBits:ref<<subBits], rng, uint32(b), l1Cut(l1[b]))
	}
}

// fillSubArray fills one 256-entry sub-array for bucket b, whose first
// candidate route sits at cut. Entries are offsets relative to cut.
func fillSubArray(sub []uint16, rng []uint64, b, cut uint32) {
	r := int(cut)
	base := b << strideShift
	for j := 0; j < subEntries; j++ {
		sf := base | uint32(j)<<subShift
		for r < len(rng) && rngLast(rng[r]) < sf {
			r++
		}
		sub[j] = uint16(r - int(cut))
	}
}

// patchIndexInto derives the index for the post-batch route table from
// the previous snapshot's index plus the (ascending) last addresses of
// the routes the batch inserted and deleted, writing into ar's slabs —
// O(buckets + slab copy) with no table walk, regardless of table size.
// Cut semantics make the first level a counting merge: every cut grows
// by the inserts below its address and shrinks by the deletes below it.
// Sub-arrays are bucket-relative, so only buckets the batch actually
// touched need their sub-array recomputed — every other promoted
// bucket's entries are bit-identical and ride along in one bulk copy.
// Buckets that turned hot are promoted into the slab's spare capacity,
// bounded per patch.
func patchIndexInto(ar *arena, prev strideIndex, rng []uint64, insLast, delLast []ip.Addr, total int) strideIndex {
	prevSubs := prev.subCount()
	l1 := ar.ensureL1()
	subs := ar.ensureSubs(prevSubs * subEntries)
	copy(subs, prev.subs)

	// Buckets before the batch's first op keep identical entries — bulk
	// copy. Buckets after its last op shift by the constant insert/delete
	// difference — bulk add. Only the bucket range the ops actually span
	// runs the counting merge (and possible sub-array recomputes).
	first := uint64(1) << 32
	if len(insLast) > 0 {
		first = uint64(insLast[0])
	}
	if len(delLast) > 0 && uint64(delLast[0]) < first {
		first = uint64(delLast[0])
	}
	b := int(first >> strideShift)
	if b > strideBuckets {
		b = strideBuckets
	}
	copy(l1[:b], prev.l1[:b])
	ii, di := 0, 0
	for ; b < strideBuckets && (ii < len(insLast) || di < len(delLast)); b++ {
		bf := ip.Addr(uint32(b) << strideShift)
		for ii < len(insLast) && insLast[ii] < bf {
			ii++
		}
		for di < len(delLast) && delLast[di] < bf {
			di++
		}
		e := prev.l1[b]
		cut := l1Cut(e) + uint32(ii) - uint32(di)
		ref := e >> 32
		l1[b] = ref<<32 | uint64(cut)
		if ref == 0 {
			continue
		}
		// Promoted bucket: its relative sub-cuts only change when the
		// batch adds or removes a route ending inside the bucket; the
		// wholesale copy above already carried the untouched ones.
		nf := uint64(bf) + 1<<strideShift
		if (ii < len(insLast) && uint64(insLast[ii]) < nf) ||
			(di < len(delLast) && uint64(delLast[di]) < nf) {
			fillSubArray(subs[(ref-1)<<subBits:ref<<subBits], rng, uint32(b), cut)
		}
	}
	if delta := uint32(len(insLast)) - uint32(len(delLast)); delta == 0 {
		copy(l1[b:strideBuckets], prev.l1[b:strideBuckets])
	} else {
		for ; b < strideBuckets; b++ {
			e := prev.l1[b]
			l1[b] = e>>32<<32 | uint64(l1Cut(e)+delta)
		}
	}
	l1[strideBuckets] = uint64(uint32(total))
	ix := strideIndex{l1: l1, subs: subs}

	// Promote buckets the batch pushed over the threshold, bounded per
	// patch and by slab spare capacity. Inserts are the only way a
	// bucket grows, so only their buckets need checking.
	promoted := 0
	nextRef := uint64(prevSubs)
	for i := 0; i < len(insLast) && promoted < subPatchPromoteMax; i++ {
		b := uint32(insLast[i]) >> strideShift
		e := l1[b]
		if e>>32 != 0 {
			continue
		}
		if l1Cut(l1[b+1])-l1Cut(e) < subPromoteMin {
			continue
		}
		if ar.subCap() < int(nextRef)+1 {
			break
		}
		nextRef++
		subs = ar.ensureSubs(int(nextRef) * subEntries)
		fillSubArray(subs[(nextRef-1)<<subBits:nextRef<<subBits], rng, b, l1Cut(e))
		l1[b] = e | nextRef<<32
		promoted++
	}
	ix.subs = subs
	return ix
}
