package serve

import (
	"runtime"
	"sort"
	"sync"

	"clue/internal/ip"
)

// The stride index is the software analog of a line card's DIR-24-8 /
// poptrie first stage: a flat array over the top strideBits of the
// address that narrows every lookup to the handful of compressed routes
// intersecting that bucket. Because the ONRTC output is disjoint and
// sorted, a bucket's candidates form one contiguous slice of the route
// table, so the whole first level is a single []uint32 of cut points.
const (
	// strideBits is the width of the first-level index: 2^16 buckets,
	// each covering a /16 of the address space.
	strideBits    = 16
	strideShift   = ip.AddrBits - strideBits
	strideBuckets = 1 << strideBits

	// strideMinRoutes gates index construction: below this table size a
	// plain binary search already fits in a couple of cache lines and the
	// 256 KiB index is not worth carrying on every snapshot.
	strideMinRoutes = 256

	// strideScanMax bounds the linear candidate scan; buckets packed with
	// more long prefixes than this fall back to a bounded binary search.
	strideScanMax = 8

	// stridePatchMax caps how many structural table changes a snapshot
	// swap may patch through the previous index before a fresh parallel
	// rebuild is cheaper.
	stridePatchMax = 4096

	// strideBuildChunk is the bucket range below which buildStrideIndex
	// stays single-threaded: spawning the worker pool only pays off once
	// the merge walk dominates goroutine startup.
	strideBuildChunk = 1 << 13
)

// strideIndex maps the top strideBits of an address to the start of its
// candidate range in the sorted route slice. idx[b] is the index of the
// first route whose last address reaches bucket b (equivalently: the
// count of routes lying entirely below the bucket); idx[strideBuckets]
// is the table length. A bucket's candidates are routes[idx[b]:idx[b+1]]
// plus at most one short prefix spanning past the bucket at idx[b+1].
type strideIndex []uint32

// buildStrideIndex computes the index over a sorted disjoint route table
// from scratch, parallelized across bucket ranges with a worker pool so
// snapshot swaps stay cheap under update storms. Disjointness makes the
// routes' last addresses ascending too, so each worker binary-searches
// its first cut and then linearly merges routes and buckets.
func buildStrideIndex(routes []ip.Route) strideIndex {
	idx := make(strideIndex, strideBuckets+1)
	workers := runtime.GOMAXPROCS(0)
	if workers > strideBuckets/strideBuildChunk {
		workers = strideBuckets / strideBuildChunk
	}
	if workers <= 1 {
		fillStrideRange(idx, routes, 0, strideBuckets)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			b0 := w * strideBuckets / workers
			b1 := (w + 1) * strideBuckets / workers
			wg.Add(1)
			go func(b0, b1 int) {
				defer wg.Done()
				fillStrideRange(idx, routes, b0, b1)
			}(b0, b1)
		}
		wg.Wait()
	}
	idx[strideBuckets] = uint32(len(routes))
	return idx
}

// fillStrideRange fills idx for buckets [b0, b1).
func fillStrideRange(idx strideIndex, routes []ip.Route, b0, b1 int) {
	first := ip.Addr(uint32(b0) << strideShift)
	r := sort.Search(len(routes), func(i int) bool {
		return routes[i].Prefix.Last() >= first
	})
	for b := b0; b < b1; b++ {
		bf := ip.Addr(uint32(b) << strideShift)
		for r < len(routes) && routes[r].Prefix.Last() < bf {
			r++
		}
		idx[b] = uint32(r)
	}
}

// patchStrideIndex derives the index for the post-batch route table from
// the previous snapshot's index plus the (ascending) last addresses of
// the routes the batch inserted and deleted. idx[b] counts the routes
// entirely below bucket b, so the new value is exactly the old one plus
// the inserts below the bucket minus the deletes below it — O(buckets)
// with no table walk, regardless of table size.
func patchStrideIndex(prev strideIndex, insLast, delLast []ip.Addr, total int) strideIndex {
	idx := make(strideIndex, strideBuckets+1)
	ii, di := 0, 0
	for b := 0; b < strideBuckets; b++ {
		bf := ip.Addr(uint32(b) << strideShift)
		for ii < len(insLast) && insLast[ii] < bf {
			ii++
		}
		for di < len(delLast) && delLast[di] < bf {
			di++
		}
		idx[b] = prev[b] + uint32(ii) - uint32(di)
	}
	idx[strideBuckets] = uint32(total)
	return idx
}
