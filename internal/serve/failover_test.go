package serve

import (
	"errors"
	"testing"
	"time"

	"clue/internal/ip"
)

// TestEnqueueFallbackReachesAnyHealthyWorker is the regression for the
// dispatch fallback cascade: with the home worker down and the
// locality-preferred divert target's queue full, the any-healthy
// fallback must still place the request on a healthy worker with queue
// space — even one leastLoaded skips for having an empty home range and
// a cold cache. Before the fix the fallback arm was nested so it only
// ran when leastLoaded found no target at all, so this exact state sent
// dispatches into the retry loop until ErrEnqueueTimeout while worker 2
// sat idle; on the pre-fix code this test fails with a timeout error.
func TestEnqueueFallbackReachesAnyHealthyWorker(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("192.168.0.0/16"), NextHop: 2},
	}
	rt, err := New(routes, Config{
		Workers:        3,
		QueueDepth:     1,
		EnqueueRetries: 2,
		EnqueueTimeout: 40 * time.Millisecond,
		System:         SystemConfig{TCAMs: 2, Buckets: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// 2 routes over 3 workers: worker 2 has a zero-width home range and a
	// cold cache, so leastLoaded never offers it as a divert target.
	snap := rt.Snapshot()
	if snap.emptyHome(0) || snap.emptyHome(1) || !snap.emptyHome(2) {
		t.Fatalf("partition shape: empty=%v", snap.empty)
	}

	// Fail worker 0's state directly — no FailWorker, so no rehome: the
	// snapshot still homes its range to worker 0, exactly the window
	// between a panic and the rehome publication.
	rt.workers[0].state.Store(int32(WorkerFailed))

	// Wedge worker 1, the only leastLoaded-eligible divert target: park
	// its goroutine on a stall and fill its 1-deep queue.
	stall := make(chan struct{})
	defer close(stall)
	rt.workers[1].queue <- lookupReq{stall: stall}
	rt.workers[1].queue <- lookupReq{stall: stall}

	a := ip.MustParseAddr("10.1.2.3")
	if home := snap.Home(a); home != 0 {
		t.Fatalf("probe homed to %d, want 0", home)
	}
	done := make(chan Result, 1)
	if err := rt.enqueue(lookupReq{addr: a, home: 0, done: done}); err != nil {
		t.Fatalf("enqueue with home down and divert target full: %v (want fallback to worker 2)", err)
	}
	res := <-done
	if res.Worker != 2 || !res.Diverted {
		t.Fatalf("served by worker %d (diverted=%v), want fallback to worker 2", res.Worker, res.Diverted)
	}
	if !res.Found || res.Hop != 1 {
		t.Fatalf("fallback answer wrong: %+v", res)
	}
	if st := rt.Stats(); st.EnqueueTimeouts != 0 {
		t.Fatalf("fallback took the timeout path: %d timeouts", st.EnqueueTimeouts)
	}

	// With every worker out of service the same state must degrade to
	// ErrNoHealthyWorkers, not a timeout.
	rt.workers[1].state.Store(int32(WorkerFailed))
	rt.workers[2].state.Store(int32(WorkerFailed))
	err = rt.enqueue(lookupReq{addr: a, home: 0, done: done})
	if !errors.Is(err, ErrNoHealthyWorkers) {
		t.Fatalf("enqueue with all workers down = %v, want ErrNoHealthyWorkers", err)
	}
	// Restore health so Close's drain finds sane states.
	for _, w := range rt.workers {
		w.state.Store(int32(WorkerHealthy))
	}
}

// TestSnapshotHomeNeverReturnsEmptyWorker pins the Snapshot.Home
// contract from its doc comment: workers with empty home ranges — down
// workers excluded from the recut, or surplus workers on tiny tables —
// are never returned while any non-empty worker exists. The down-worker-0
// rows are the regression shape: worker 0 inherits the first survivor's
// start, so the index search can land on it.
func TestSnapshotHomeNeverReturnsEmptyWorker(t *testing.T) {
	_, routes := testRoutes(t, 500, 61)
	probes := []ip.Addr{
		0,
		ip.MustParseAddr("10.0.0.1"),
		ip.MustParseAddr("128.0.0.1"),
		routes[0].Prefix.First(),
		routes[len(routes)/2].Prefix.First(),
		routes[len(routes)-1].Prefix.First(),
		ip.Addr(^uint32(0)), // the max address hits the trailing sentinel
	}
	cases := []struct {
		name    string
		workers int
		routes  []ip.Route
		down    []bool
	}{
		{"all healthy", 4, routes, nil},
		{"worker 0 down", 4, routes, []bool{true, false, false, false}},
		{"workers 0 and 1 down", 4, routes, []bool{true, true, false, false}},
		{"only worker 3 up", 4, routes, []bool{true, true, true, false}},
		{"middle worker down", 4, routes, []bool{false, false, true, false}},
		{"last worker down", 4, routes, []bool{false, false, false, true}},
		{"worker 0 down, tiny table", 4, routes[:2], []bool{true, false, false, false}},
		{"worker 0 down, empty table", 4, nil, []bool{true, false, false, false}},
		{"surplus workers, tiny table", 8, routes[:3], nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := snapshotShell(1, tc.routes, tc.workers, nil, tc.down, nil)
			for _, a := range probes {
				h := s.Home(a)
				if h < 0 || h >= tc.workers {
					t.Fatalf("Home(%s) = %d out of range", a, h)
				}
				if s.empty[h] {
					t.Errorf("Home(%s) = %d, an empty-range worker (empty=%v starts=%v)",
						a, h, s.empty, s.starts)
				}
				if tc.down != nil && tc.down[h] {
					t.Errorf("Home(%s) = %d, a down worker", a, h)
				}
			}
		})
	}
}

// TestSnapshotHomeWalksUpOffEmptyWorkerZero unit-tests the defensive
// walk-up branch with a hand-built snapshot whose worker 0 is empty yet
// owns the lowest start — the shape the doc comment promises to route
// around even though snapshotShell's inheritance invariant makes it
// unreachable through the constructors.
func TestSnapshotHomeWalksUpOffEmptyWorkerZero(t *testing.T) {
	s := &Snapshot{
		starts: []ip.Addr{0, 100, 200},
		empty:  []bool{true, false, false},
	}
	cases := []struct {
		addr ip.Addr
		want int
	}{
		{0, 1},   // lands on empty worker 0, must walk up to 1
		{99, 1},  // same: anything below starts[1]
		{100, 1}, // worker 1's own range
		{250, 2}, // worker 2's range
	}
	for _, tc := range cases {
		if got := s.Home(tc.addr); got != tc.want {
			t.Errorf("Home(%d) = %d, want %d", tc.addr, got, tc.want)
		}
	}
}

// TestAnswerAfterPanicSingle drives worker.handle with a poisoned
// single request and checks the recovery contract: the dispatcher still
// gets the correct answer (computed from the bare snapshot), the worker
// is marked failed, and the panic is accounted exactly once.
func TestAnswerAfterPanicSingle(t *testing.T) {
	fib, routes := testRoutes(t, 2000, 62)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	w := rt.workers[1]
	a := routes[len(routes)/2].Prefix.First()
	done := make(chan Result, 1)
	w.handle(lookupReq{addr: a, home: 1, done: done, poison: true})

	res := <-done
	want, _ := fib.Lookup(a, nil)
	if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
		t.Fatalf("post-panic answer %+v, want hop %d", res, want)
	}
	if res.Worker != 1 || res.Home != 1 || res.Diverted {
		t.Fatalf("post-panic provenance wrong: %+v", res)
	}
	if res.Version == 0 {
		t.Fatalf("post-panic result carries no snapshot version: %+v", res)
	}
	if got := WorkerState(w.state.Load()); got != WorkerFailed {
		t.Fatalf("worker state after panic = %v, want failed", got)
	}
	st := rt.Stats()
	if st.WorkerPanics != 1 {
		t.Fatalf("worker panics = %d, want 1", st.WorkerPanics)
	}

	// The runtime stays serviceable: dispatches route around the failed
	// worker and the answers stay correct.
	for i := 0; i < 200; i++ {
		a := routes[i%len(routes)].Prefix.First()
		res, err := rt.Dispatch(a)
		if err != nil {
			t.Fatalf("Dispatch after panic: %v", err)
		}
		if res.Worker == 1 {
			t.Fatalf("dispatch served by failed worker: %+v", res)
		}
		want, _ := fib.Lookup(a, nil)
		if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
			t.Fatalf("Dispatch(%s) after panic = %+v, want %d", a, res, want)
		}
	}
}

// TestAnswerAfterPanicBatch is the batch-request variant: a poisoned
// batch must still fill every out slot from the snapshot and send the
// single completion sentinel the dispatcher is waiting on.
func TestAnswerAfterPanicBatch(t *testing.T) {
	fib, routes := testRoutes(t, 2000, 63)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	w := rt.workers[0]
	batch := make([]ip.Addr, 64)
	for i := range batch {
		batch[i] = routes[(i*31)%len(routes)].Prefix.First()
	}
	out := make([]Result, len(batch))
	done := make(chan Result, 1)
	w.handle(lookupReq{home: 0, batch: batch, out: out, done: done, poison: true, diverted: true})

	<-done // the sentinel: without it the dispatcher would hang
	for i, a := range batch {
		want, _ := fib.Lookup(a, nil)
		if out[i].Found != (want != ip.NoRoute) || (out[i].Found && out[i].Hop != want) {
			t.Fatalf("post-panic batch[%d] = %+v, want hop %d", i, out[i], want)
		}
		if out[i].Worker != 0 || out[i].Home != 0 || !out[i].Diverted {
			t.Fatalf("post-panic batch[%d] provenance wrong: %+v", i, out[i])
		}
	}
	if got := WorkerState(w.state.Load()); got != WorkerFailed {
		t.Fatalf("worker state after batch panic = %v, want failed", got)
	}
	if st := rt.Stats(); st.WorkerPanics != 1 {
		t.Fatalf("worker panics = %d, want 1", st.WorkerPanics)
	}
}
