// Package serve turns the single-threaded CLUE system into a concurrent
// forwarding service — the software analog of the paper's line card.
//
// The design maps the paper's hardware onto Go concurrency primitives:
//
//   - The compressed table is published as an immutable Snapshot behind
//     an atomic.Pointer (RCU style). Readers never lock, never retry and
//     never observe a half-applied update; the disjoint table means a
//     snapshot lookup is one binary search with no priority tie-break.
//   - A single writer goroutine plays the control plane: it drains a
//     bounded channel of announce/withdraw ops, applies them in batches
//     through the core pipeline (trie → TCAM diff → DRed) and atomically
//     swaps in the next snapshot, recording per-batch TTF1/TTF2/TTF3.
//   - N partition worker goroutines mirror the N TCAM chips. The range
//     index (Snapshot.Home) dispatches each lookup to its home worker
//     over a bounded queue; a full queue diverts the lookup to the
//     least-loaded worker, whose DRed-analog cache absorbs it — the
//     paper's adaptive load balancer as real goroutines and channels.
package serve

import (
	"sort"

	"clue/internal/ip"
)

// Snapshot is an immutable view of the compressed forwarding table plus
// the range index that assigns addresses to partition workers. All
// methods are safe for unlimited concurrent use; nothing in a published
// snapshot is ever mutated.
type Snapshot struct {
	// Version increases by one per writer batch; version 1 is the
	// snapshot built at startup.
	Version uint64
	// routes is the compressed table in ascending address order. The
	// table is disjoint, so ranges are non-overlapping and strictly
	// ascending — lookup is a binary search with at most one match.
	routes []ip.Route
	// starts[i] is the first address partition worker i is home to
	// (starts[0] is always 0), the software Indexing Logic.
	starts []ip.Addr
	// stale lists the compressed prefixes deleted or modified by the
	// batch that produced this snapshot. Workers one version behind use
	// it to fix their caches with targeted invalidations instead of a
	// full flush.
	stale []ip.Prefix
}

// newSnapshot builds a snapshot over routes (which must be sorted
// ascending and disjoint — the order core.CompressedRoutes guarantees).
// The snapshot takes ownership of both slices.
func newSnapshot(version uint64, routes []ip.Route, workers int, stale []ip.Prefix) *Snapshot {
	s := &Snapshot{Version: version, routes: routes, stale: stale}
	// Even count split, exactly like partition.CLUE: cut points double
	// as the range index. Fewer routes than workers leaves the tail
	// workers with empty (zero-width) home ranges.
	s.starts = make([]ip.Addr, workers)
	for i := 1; i < workers; i++ {
		cut := i * len(routes) / workers
		if cut < len(routes) {
			s.starts[i] = routes[cut].Prefix.First()
		} else {
			s.starts[i] = ip.Addr(^uint32(0))
		}
	}
	return s
}

// Len returns the compressed entry count.
func (s *Snapshot) Len() int { return len(s.routes) }

// Workers returns the partition count the range index dispatches over.
func (s *Snapshot) Workers() int { return len(s.starts) }

// Lookup resolves addr against the snapshot: a single binary search over
// the disjoint ranges. It is lock-free and allocation-free.
func (s *Snapshot) Lookup(addr ip.Addr) (ip.NextHop, ip.Prefix, bool) {
	i := sort.Search(len(s.routes), func(i int) bool {
		return s.routes[i].Prefix.First() > addr
	}) - 1
	if i >= 0 && s.routes[i].Prefix.Contains(addr) {
		return s.routes[i].NextHop, s.routes[i].Prefix, true
	}
	return ip.NoRoute, ip.Prefix{}, false
}

// Home returns the partition worker responsible for addr.
func (s *Snapshot) Home(addr ip.Addr) int {
	i := sort.Search(len(s.starts), func(i int) bool {
		return s.starts[i] > addr
	}) - 1
	if i < 0 {
		return 0
	}
	return i
}

// Routes returns a copy of the snapshot's compressed table (diagnostics
// and tests; the copy keeps the snapshot immutable).
func (s *Snapshot) Routes() []ip.Route {
	out := make([]ip.Route, len(s.routes))
	copy(out, s.routes)
	return out
}
