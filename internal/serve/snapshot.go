// Package serve turns the single-threaded CLUE system into a concurrent
// forwarding service — the software analog of the paper's line card.
//
// The design maps the paper's hardware onto Go concurrency primitives:
//
//   - The compressed table is published as an immutable Snapshot behind
//     an atomic.Pointer (RCU style). Readers never lock, never retry and
//     never observe a half-applied update; the disjoint table means a
//     snapshot lookup is one stride-index load plus a scan of a handful
//     of candidate routes, with no priority tie-break.
//   - A single writer goroutine plays the control plane: it drains a
//     bounded channel of announce/withdraw ops, applies them in batches
//     through the core pipeline (trie → TCAM diff → DRed) and atomically
//     swaps in the next snapshot, recording per-batch TTF1/TTF2/TTF3.
//   - N partition worker goroutines mirror the N TCAM chips. The range
//     index (Snapshot.Home) dispatches each lookup to its home worker
//     over a bounded queue; a full queue diverts the lookup to the
//     least-loaded worker, whose DRed-analog cache absorbs it — the
//     paper's adaptive load balancer as real goroutines and channels.
package serve

import (
	"sort"

	"clue/internal/ip"
)

// Snapshot is an immutable view of the compressed forwarding table plus
// the range index that assigns addresses to partition workers. All
// methods are safe for unlimited concurrent use; nothing in a published
// snapshot is ever mutated.
type Snapshot struct {
	// Version increases by one per writer batch; version 1 is the
	// snapshot built at startup.
	Version uint64
	// routes is the compressed table in ascending address order. The
	// table is disjoint, so ranges are non-overlapping and strictly
	// ascending — lookup matches at most one route.
	routes []ip.Route
	// index is the DIR-24-8-style first-level stride index over routes;
	// nil for tables below strideMinRoutes, where Lookup falls back to
	// the full binary search.
	index strideIndex
	// starts[i] is the first address partition worker i is home to
	// (starts[0] is always 0), the software Indexing Logic.
	starts []ip.Addr
	// empty[i] marks workers whose home range is zero-width (more
	// workers than routes). Home never returns them and the load
	// balancer will not divert to them while their caches are cold.
	empty []bool
	// stale lists the compressed prefixes deleted or modified by the
	// batch that produced this snapshot. Workers one version behind use
	// it to fix their caches with targeted invalidations instead of a
	// full flush.
	stale []ip.Prefix
	// flushCaches forces every worker to reset its DRed-analog cache on
	// this snapshot instead of taking the targeted-invalidation shortcut.
	// Set on re-homed snapshots: the partition bounds moved, so cached
	// foreign prefixes may now be home prefixes (and vice versa) and the
	// stale list cannot describe the change.
	flushCaches bool
}

// LookupResult is one answer of a Snapshot.LookupBatch call.
type LookupResult struct {
	Hop    ip.NextHop
	Prefix ip.Prefix
	Found  bool
}

// newSnapshot builds a snapshot over routes (which must be sorted
// ascending and disjoint — the order core.CompressedRoutes guarantees),
// including a fresh stride index for tables above strideMinRoutes. The
// snapshot takes ownership of both slices.
func newSnapshot(version uint64, routes []ip.Route, workers int, stale []ip.Prefix) *Snapshot {
	s := snapshotShell(version, routes, workers, stale, nil)
	if len(routes) >= strideMinRoutes {
		s.index = buildStrideIndex(routes)
	}
	return s
}

// newSnapshotFrom builds the successor of prev after a writer batch.
// When the batch made few structural changes (the usual case under an
// update storm) the previous snapshot's stride index is patched in
// O(buckets) instead of rebuilt from the table; insLast and delLast must
// be the ascending last addresses of the routes the batch inserted into
// and deleted from prev's table. down marks workers excluded from the
// partition recut (nil when all are healthy); flush marks the snapshot
// as cache-flushing (set for re-homed publications).
func newSnapshotFrom(prev *Snapshot, version uint64, routes []ip.Route, workers int, stale []ip.Prefix, insLast, delLast []ip.Addr, down []bool, flush bool) *Snapshot {
	s := snapshotShell(version, routes, workers, stale, down)
	s.flushCaches = flush
	switch {
	case len(routes) < strideMinRoutes:
		// Small table: binary-search fallback needs no index.
	case prev != nil && prev.index != nil && len(insLast)+len(delLast) == 0:
		// Pure control publication (re-home, health change): the table is
		// untouched, so the immutable index is shared as-is — a re-home
		// costs partition cut points only, never an index copy.
		s.index = prev.index
	case prev != nil && prev.index != nil && len(insLast)+len(delLast) <= stridePatchMax:
		s.index = patchStrideIndex(prev.index, insLast, delLast, len(routes))
	default:
		s.index = buildStrideIndex(routes)
	}
	return s
}

// snapshotShell builds everything but the stride index: the route table
// and the partition range index with its cut points. down (nil when all
// workers are healthy) excludes failed/draining workers from the recut:
// their ranges are re-split exactly evenly across the survivors — the
// disjoint table makes this a pure boundary move, no reordering.
func snapshotShell(version uint64, routes []ip.Route, workers int, stale []ip.Prefix, down []bool) *Snapshot {
	s := &Snapshot{Version: version, routes: routes, stale: stale}
	// Even count split, exactly like partition.CLUE: cut points double as
	// the range index. With fewer routes than eligible workers the cuts
	// would collapse onto each other, so the split runs over min(active,
	// routes) partitions and the rest are marked empty — they get no home
	// range and no home traffic.
	s.starts = make([]ip.Addr, workers)
	s.empty = make([]bool, workers)
	active := make([]int, 0, workers)
	for i := 0; i < workers; i++ {
		s.empty[i] = true
		if down == nil || !down[i] {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		// Every worker is down (reachable only when panics took out the
		// last one). Keep worker 0 as nominal home so Home stays total;
		// the dispatch-path health checks reject new work anyway.
		active = append(active, 0)
	}
	parts := len(active)
	if len(routes) < parts {
		parts = len(routes)
	}
	for j := 0; j < parts; j++ {
		// parts <= len(routes) makes successive cuts strictly increasing,
		// so every active worker owns a non-empty route range.
		w := active[j]
		s.empty[w] = false
		if j > 0 {
			s.starts[w] = routes[j*len(routes)/parts].Prefix.First()
		}
	}
	if parts == 0 {
		// Empty table: the first active worker is the nominal home.
		s.empty[active[0]] = false
	}
	// Empty workers inherit their successor's start so starts stays
	// monotone and Home's search can never land inside a zero-width
	// range; trailing ones get the max-address sentinel.
	next := ip.Addr(^uint32(0))
	for i := workers - 1; i >= 0; i-- {
		if s.empty[i] {
			s.starts[i] = next
		} else {
			next = s.starts[i]
		}
	}
	return s
}

// Len returns the compressed entry count.
func (s *Snapshot) Len() int { return len(s.routes) }

// Workers returns the partition count the range index dispatches over.
func (s *Snapshot) Workers() int { return len(s.starts) }

// Indexed reports whether the snapshot carries the stride index (large
// tables) or serves Lookup through the binary-search fallback.
func (s *Snapshot) Indexed() bool { return s.index != nil }

// Lookup resolves addr against the snapshot. With the stride index the
// common case is one indexed load plus a scan of the few routes whose
// ranges intersect addr's /16 bucket; buckets packed with long prefixes
// degrade to a binary search bounded to the bucket, and small tables
// fall back to the full binary search. It is lock-free and
// allocation-free.
func (s *Snapshot) Lookup(addr ip.Addr) (ip.NextHop, ip.Prefix, bool) {
	if s.index == nil {
		return s.LookupBinary(addr)
	}
	b := uint32(addr) >> strideShift
	lo := int(s.index[b])
	hi := int(s.index[b+1])
	if hi < len(s.routes) {
		// A short prefix spanning past the bucket boundary sits at
		// index[b+1]; at most one exists, and the scan's First() guard
		// excludes it when it actually starts beyond addr.
		hi++
	}
	// Routes below lo end before the bucket starts, so the answer — the
	// last route with First() <= addr — lives in [lo, hi) or nowhere.
	if hi-lo > strideScanMax {
		i, j := lo, hi
		for i < j {
			mid := int(uint(i+j) >> 1)
			if s.routes[mid].Prefix.First() <= addr {
				i = mid + 1
			} else {
				j = mid
			}
		}
		if i > lo {
			if r := &s.routes[i-1]; r.Prefix.Contains(addr) {
				return r.NextHop, r.Prefix, true
			}
		}
		return ip.NoRoute, ip.Prefix{}, false
	}
	for k := hi - 1; k >= lo; k-- {
		if r := &s.routes[k]; r.Prefix.First() <= addr {
			if r.Prefix.Contains(addr) {
				return r.NextHop, r.Prefix, true
			}
			return ip.NoRoute, ip.Prefix{}, false
		}
	}
	return ip.NoRoute, ip.Prefix{}, false
}

// LookupBinary resolves addr with a full binary search over the table —
// the pre-index reference path, kept as the small-table fallback and as
// the oracle for the differential tests and benchmarks.
func (s *Snapshot) LookupBinary(addr ip.Addr) (ip.NextHop, ip.Prefix, bool) {
	i := sort.Search(len(s.routes), func(i int) bool {
		return s.routes[i].Prefix.First() > addr
	}) - 1
	if i >= 0 && s.routes[i].Prefix.Contains(addr) {
		return s.routes[i].NextHop, s.routes[i].Prefix, true
	}
	return ip.NoRoute, ip.Prefix{}, false
}

// LookupBatch resolves addrs against this one snapshot, amortizing the
// snapshot load across the batch. Results are written into out (reused
// when its capacity suffices) and returned in input order.
func (s *Snapshot) LookupBatch(addrs []ip.Addr, out []LookupResult) []LookupResult {
	if cap(out) < len(addrs) {
		out = make([]LookupResult, len(addrs))
	} else {
		out = out[:len(addrs)]
	}
	for i, a := range addrs {
		hop, pfx, ok := s.Lookup(a)
		out[i] = LookupResult{Hop: hop, Prefix: pfx, Found: ok}
	}
	return out
}

// Home returns the partition worker responsible for addr. Workers with
// empty home ranges (down workers, or surplus workers on tiny tables)
// are never returned as long as the snapshot has any non-empty worker —
// which snapshotShell guarantees by construction.
func (s *Snapshot) Home(addr ip.Addr) int {
	i := sort.Search(len(s.starts), func(i int) bool {
		return s.starts[i] > addr
	}) - 1
	if i < 0 {
		i = 0
	}
	// The search can land on an empty worker (its start is inherited from
	// its successor, or the max-address sentinel for trailing empties):
	// walk down to the owning worker. Walking down can bottom out on an
	// empty worker 0 — a down worker 0 inherits the first survivor's
	// start — so walk up to the first non-empty worker in that case
	// instead of handing a down worker its old traffic back.
	for i > 0 && s.empty[i] {
		i--
	}
	if s.empty[i] {
		for j := i + 1; j < len(s.empty); j++ {
			if !s.empty[j] {
				return j
			}
		}
	}
	return i
}

// emptyHome reports whether worker i's home range is zero-width.
func (s *Snapshot) emptyHome(i int) bool {
	return i < len(s.empty) && s.empty[i]
}

// Routes returns a copy of the snapshot's compressed table (diagnostics
// and tests; the copy keeps the snapshot immutable).
func (s *Snapshot) Routes() []ip.Route {
	out := make([]ip.Route, len(s.routes))
	copy(out, s.routes)
	return out
}
