// Package serve turns the single-threaded CLUE system into a concurrent
// forwarding service — the software analog of the paper's line card.
//
// The design maps the paper's hardware onto Go concurrency primitives:
//
//   - The compressed table is published as an immutable Snapshot behind
//     an atomic.Pointer (RCU style). Readers never lock, never retry and
//     never observe a half-applied update; the disjoint table means a
//     snapshot lookup is at most two dependent index loads plus a probe
//     of a handful of candidate routes, with no priority tie-break.
//   - A single writer goroutine plays the control plane: it drains a
//     bounded channel of announce/withdraw ops, applies them in batches
//     through the core pipeline (trie → TCAM diff → DRed) and atomically
//     swaps in the next snapshot, recording per-batch TTF1/TTF2/TTF3.
//     Snapshot bulk data lives in per-snapshot arenas recycled through
//     epoch-based reclamation (epoch.go), so steady-state publication
//     allocates almost nothing.
//   - N partition worker goroutines mirror the N TCAM chips. The range
//     index (Snapshot.Home) dispatches each lookup to its home worker
//     over a bounded queue; a full queue diverts the lookup to the
//     least-loaded worker, whose DRed-analog cache absorbs it — the
//     paper's adaptive load balancer as real goroutines and channels.
package serve

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"clue/internal/ip"
)

// Snapshot is an immutable view of the compressed forwarding table plus
// the range index that assigns addresses to partition workers. All
// methods are safe for unlimited concurrent use. The one sanctioned
// mutation is the writer's in-place next-hop patch (atomic stores into
// hop, matched by atomic loads here): a reader sees either the old or
// the new hop, both of which were the published answer at some instant
// during its lookup.
type Snapshot struct {
	// Version increases by one per writer batch; version 1 is the
	// snapshot built at startup.
	Version uint64
	// ar owns the slabs below. Snapshots published by a hop-only patch
	// share their predecessor's arena; the writer recycles an arena only
	// once every snapshot on it is retired and epoch-reclaimed.
	ar *arena
	// rng is the compressed table as packed ranges last<<32|first, in
	// ascending address order. The table is disjoint, so ranges are
	// non-overlapping and both bounds are strictly ascending — lookup
	// matches at most one route, and the full Route is reconstructible
	// from the range (a disjoint range of 2^k addresses at a 2^k-aligned
	// start is exactly one prefix).
	rng []uint64
	// hop holds the next hops, parallel to rng. Accessed with atomic
	// u32 loads/stores to make the writer's in-place patches sound.
	hop []uint32
	// index is the two-level DIR-24-8 index over rng; empty for tables
	// below strideMinRoutes, where Lookup falls back to binary search.
	index strideIndex
	// starts[i] is the first address partition worker i is home to
	// (starts[0] is always 0), the software Indexing Logic.
	starts []ip.Addr
	// empty[i] marks workers whose home range is zero-width (more
	// workers than routes). Home never returns them and the load
	// balancer will not divert to them while their caches are cold.
	empty []bool
	// stale lists the compressed prefixes deleted or modified by the
	// batch that produced this snapshot. Workers one version behind use
	// it to fix their caches with targeted invalidations instead of a
	// full flush.
	stale []ip.Prefix
	// flushCaches forces every worker to reset its DRed-analog cache on
	// this snapshot instead of taking the targeted-invalidation shortcut.
	// Set on re-homed snapshots: the partition bounds moved, so cached
	// foreign prefixes may now be home prefixes (and vice versa) and the
	// stale list cannot describe the change.
	flushCaches bool
	// hashVal/hashKnown cache CanonicalHash: the digest is O(routes), so
	// it is computed on first demand and memoised per snapshot (hashVal
	// is published before hashKnown; a racing second computation writes
	// the same value).
	hashVal   atomic.Uint64
	hashKnown atomic.Bool
}

// LookupResult is one answer of a Snapshot.LookupBatch call.
type LookupResult struct {
	Hop    ip.NextHop
	Prefix ip.Prefix
	Found  bool
}

// packRange packs a prefix into the snapshot's range representation.
func packRange(p ip.Prefix) uint64 {
	return uint64(uint32(p.Last()))<<32 | uint64(uint32(p.First()))
}

// rngRoutePrefix reconstructs the prefix from a packed range: the span
// is a power of two, so the length falls out of its trailing zeros (a
// full-space span wraps to 0, whose 32 trailing zeros give the default
// route).
func rngRoutePrefix(e uint64) ip.Prefix {
	f := rngFirst(e)
	return ip.Prefix{Bits: ip.Addr(f), Len: uint8(ip.AddrBits - bits.TrailingZeros32(rngLast(e)-f+1))}
}

// fillSlabs scatters a sorted []ip.Route into the struct-of-arrays
// slabs.
func fillSlabs(rng []uint64, hop []uint32, routes []ip.Route) {
	for i := range routes {
		rng[i] = packRange(routes[i].Prefix)
		hop[i] = uint32(routes[i].NextHop)
	}
}

// newSnapshot builds a snapshot over routes (which must be sorted
// ascending and disjoint — the order core.CompressedRoutes guarantees)
// on a fresh arena, including the two-level index for tables above
// strideMinRoutes.
func newSnapshot(version uint64, routes []ip.Route, workers int, stale []ip.Prefix) *Snapshot {
	s := snapshotShell(version, routes, workers, stale, nil, nil)
	if len(routes) >= strideMinRoutes {
		s.index = buildIndexInto(s.ar, s.rng)
	}
	return s
}

// newSnapshotFrom builds the successor of prev after a batch, for
// callers outside the writer's arena-recycling loop (tests, ad-hoc
// construction). When the batch made few structural changes the
// previous snapshot's index is patched in O(buckets) instead of rebuilt
// from the table; insLast and delLast must be the ascending last
// addresses of the routes the batch inserted into and deleted from
// prev's table. down marks workers excluded from the partition recut
// (nil when all are healthy); plan carries rebalancer-proposed cut
// addresses (nil for the even count split); flush marks the snapshot
// as cache-flushing (set for re-homed publications).
func newSnapshotFrom(prev *Snapshot, version uint64, routes []ip.Route, workers int, stale []ip.Prefix, insLast, delLast []ip.Addr, down []bool, plan []ip.Addr, flush bool) *Snapshot {
	s := snapshotShell(version, routes, workers, stale, down, plan)
	s.flushCaches = flush
	switch {
	case len(routes) < strideMinRoutes:
		// Small table: binary-search fallback needs no index.
	case prev != nil && !prev.index.empty() && len(insLast)+len(delLast) == 0:
		// Pure control publication (re-home, hop change): table positions
		// are untouched, so the index is shared as-is — a re-home costs
		// partition cut points only, never an index copy.
		s.index = prev.index
	case prev != nil && !prev.index.empty() && len(insLast)+len(delLast) <= stridePatchMax:
		s.index = patchIndexInto(s.ar, prev.index, s.rng, insLast, delLast, len(routes))
	default:
		s.index = buildIndexInto(s.ar, s.rng)
	}
	return s
}

// snapshotShell builds everything but the index: a fresh arena holding
// the struct-of-arrays table, and the partition range index with its
// cut points.
func snapshotShell(version uint64, routes []ip.Route, workers int, stale []ip.Prefix, down []bool, plan []ip.Addr) *Snapshot {
	ar := newArena(len(routes))
	rng, hop := ar.routeSlabs(len(routes))
	fillSlabs(rng, hop, routes)
	return shellOnArena(ar, version, workers, stale, down, plan, false)
}

// shellOnArena builds a snapshot over ar's already-filled route slabs:
// the writer's entry point, so a recycled arena never takes the
// []ip.Route detour. down (nil when all workers are healthy) excludes
// failed/draining workers from the recut: their ranges are re-split
// exactly evenly across the survivors — the disjoint table makes this a
// pure boundary move, no reordering. plan, when non-nil, carries the
// rebalancer's weighted cut addresses (see cutPartitions).
func shellOnArena(ar *arena, version uint64, workers int, stale []ip.Prefix, down []bool, plan []ip.Addr, flush bool) *Snapshot {
	s := &Snapshot{Version: version, ar: ar, rng: ar.rng, hop: ar.hop, stale: stale, flushCaches: flush}
	s.cutPartitions(workers, down, plan)
	return s
}

// clonePatched builds the successor of s for a publication that changed
// no table positions (hop-only batches, re-homes): the arena and index
// are shared outright and only the snapshot shell — version, stale
// list, partition cuts — is new.
func (s *Snapshot) clonePatched(version uint64, workers int, stale []ip.Prefix, down []bool, plan []ip.Addr, flush bool) *Snapshot {
	n := &Snapshot{Version: version, ar: s.ar, rng: s.rng, hop: s.hop, index: s.index, stale: stale, flushCaches: flush}
	n.cutPartitions(workers, down, plan)
	return n
}

// cutPartitions computes the partition range index over the snapshot's
// route slab. Even count split, exactly like partition.CLUE: cut points
// double as the range index. With fewer routes than eligible workers
// the cuts would collapse onto each other, so the split runs over
// min(active, routes) partitions and the rest are marked empty — they
// get no home range and no home traffic.
//
// plan, when usable, overrides the even split with the rebalancer's
// weighted cut addresses: each planned start is snapped to the first
// route at or past it and clamped so cuts stay strictly increasing
// with at least one route per worker. The plan is ignored — falling
// back to the even split — whenever any worker is down, the plan's
// shape does not match the worker count, or the table has fewer routes
// than workers: degraded and degenerate states keep the hardened even
// recut semantics, and the rebalancer re-proposes once they clear.
func (s *Snapshot) cutPartitions(workers int, down []bool, plan []ip.Addr) {
	if down == nil && len(plan) == workers && s.cutPlanned(workers, plan) {
		return
	}
	s.starts = make([]ip.Addr, workers)
	s.empty = make([]bool, workers)
	active := make([]int, 0, workers)
	for i := 0; i < workers; i++ {
		s.empty[i] = true
		if down == nil || !down[i] {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		// Every worker is down (reachable only when panics took out the
		// last one). Keep worker 0 as nominal home so Home stays total;
		// the dispatch-path health checks reject new work anyway.
		active = append(active, 0)
	}
	parts := len(active)
	if len(s.rng) < parts {
		parts = len(s.rng)
	}
	for j := 0; j < parts; j++ {
		// parts <= len(rng) makes successive cuts strictly increasing,
		// so every active worker owns a non-empty route range.
		w := active[j]
		s.empty[w] = false
		if j > 0 {
			s.starts[w] = ip.Addr(rngFirst(s.rng[j*len(s.rng)/parts]))
		}
	}
	if parts == 0 {
		// Empty table: the first active worker is the nominal home.
		s.empty[active[0]] = false
	}
	// Empty workers inherit their successor's start so starts stays
	// monotone and Home's search can never land inside a zero-width
	// range; trailing ones get the max-address sentinel.
	next := ip.Addr(^uint32(0))
	for i := workers - 1; i >= 0; i-- {
		if s.empty[i] {
			s.starts[i] = next
		} else {
			next = s.starts[i]
		}
	}
}

// cutPlanned installs a rebalancer cut plan: plan[j] is worker j's
// intended partition start address. Each planned start is snapped to
// the first route beginning at or past it and clamped into
// [prev+1, len(rng)-(workers-1-j)], so the realized cuts are strictly
// increasing and every worker keeps at least one route even when route
// churn since the plan was computed has shifted or removed the planned
// boundaries. Returns false when the table cannot give each worker a
// route — the caller falls back to the even count split.
func (s *Snapshot) cutPlanned(workers int, plan []ip.Addr) bool {
	m := len(s.rng)
	if m < workers {
		return false
	}
	s.starts = make([]ip.Addr, workers)
	s.empty = make([]bool, workers)
	prev := 0
	for j := 1; j < workers; j++ {
		want := uint32(plan[j])
		idx := sort.Search(m, func(i int) bool { return rngFirst(s.rng[i]) >= want })
		if min := prev + 1; idx < min {
			idx = min
		}
		if max := m - (workers - 1 - j); idx > max {
			idx = max
		}
		s.starts[j] = ip.Addr(rngFirst(s.rng[idx]))
		prev = idx
	}
	return true
}

// FNV-1a 64 parameters (hash/fnv's, inlined so the digest loop runs
// over the packed slabs with zero allocation).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// CanonicalHash digests the compressed table: FNV-1a 64 over each
// route's (bits, length, next hop) in table order, byte-compatible with
// feed.CanonicalHash over Routes(). Two tables converged to the same
// canonical compression hash identically, so the digest is the
// convergence check the scenario lab and the feed protocol share. The
// value is computed on first call and cached on the snapshot; while the
// writer is still patching next hops in place (only ever on snapshots
// that never escaped through Runtime.Snapshot()) a concurrent digest is
// advisory — re-read the hash from the latest snapshot once the update
// stream quiesces for an exact answer.
func (s *Snapshot) CanonicalHash() uint64 {
	if s.hashKnown.Load() {
		return s.hashVal.Load()
	}
	h := uint64(fnvOffset64)
	byte1a := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	u32 := func(v uint32) {
		byte1a(byte(v >> 24))
		byte1a(byte(v >> 16))
		byte1a(byte(v >> 8))
		byte1a(byte(v))
	}
	for i, e := range s.rng {
		p := rngRoutePrefix(e)
		u32(uint32(p.Bits))
		byte1a(p.Len)
		u32(atomic.LoadUint32(&s.hop[i]))
	}
	s.hashVal.Store(h)
	s.hashKnown.Store(true)
	return h
}

// Len returns the compressed entry count.
func (s *Snapshot) Len() int { return len(s.rng) }

// Workers returns the partition count the range index dispatches over.
func (s *Snapshot) Workers() int { return len(s.starts) }

// Indexed reports whether the snapshot carries the stride index (large
// tables) or serves Lookup through the binary-search fallback.
func (s *Snapshot) Indexed() bool { return !s.index.empty() }

// IndexBytes returns the memory footprint of the two-level index.
func (s *Snapshot) IndexBytes() int { return s.index.bytes() }

// SubArrays returns the number of hot buckets carrying a second-level
// sub-array.
func (s *Snapshot) SubArrays() int { return s.index.subCount() }

// HeapBytes approximates the snapshot's heap footprint: the arena slabs
// plus the partition and stale side arrays.
func (s *Snapshot) HeapBytes() int {
	return s.ar.bytes() + len(s.starts)*4 + len(s.empty) + len(s.stale)*8
}

// route materializes entry k (whose packed range is e) as a hit.
func (s *Snapshot) route(k int, e uint64) (ip.NextHop, ip.Prefix, bool) {
	return ip.NextHop(atomic.LoadUint32(&s.hop[k])), rngRoutePrefix(e), true
}

// Lookup resolves addr against the snapshot. With the index the common
// case is one first-level load — or two dependent loads through a hot
// bucket's sub-array — plus a probe of the one or two routes whose
// ranges intersect the bucket; degenerate buckets fall back to a binary
// search bounded to the bucket, and small tables to the full binary
// search. It is lock-free and allocation-free.
func (s *Snapshot) Lookup(addr ip.Addr) (ip.NextHop, ip.Prefix, bool) {
	if s.index.empty() {
		return s.LookupBinary(addr)
	}
	a := uint32(addr)
	b := a >> strideShift
	e := s.index.l1[b]
	cut := l1Cut(e)
	var lo, hi int
	if ref := e >> 32; ref != 0 {
		// Hot bucket: the /24 sub-array narrows the candidates to (almost
		// always) a single route. Entries are offsets from the bucket's
		// own cut; the sub-bucket's end cut is the next sub-entry, and
		// the last sub-bucket's is the next bucket's cut.
		off := (ref - 1) << subBits
		j := uint64(a >> subShift & (subEntries - 1))
		lo = int(cut + uint32(s.index.subs[off+j]))
		if j == subEntries-1 {
			hi = int(l1Cut(s.index.l1[b+1]))
		} else {
			hi = int(cut + uint32(s.index.subs[off+j+1]))
		}
	} else {
		lo = int(cut)
		hi = int(l1Cut(s.index.l1[b+1]))
	}
	if hi < len(s.rng) {
		// A short prefix spanning past the bucket boundary sits exactly at
		// the end cut; at most one exists, and the probe's first-address
		// guard excludes it when it actually starts beyond addr.
		hi++
	}
	// Routes below lo end before the bucket starts, so the answer — the
	// last route with first <= addr — lives in [lo, hi) or nowhere.
	if hi-lo > strideScanMax {
		i, j := lo, hi
		for i < j {
			mid := int(uint(i+j) >> 1)
			if rngFirst(s.rng[mid]) <= a {
				i = mid + 1
			} else {
				j = mid
			}
		}
		if i > lo {
			if e := s.rng[i-1]; rngLast(e) >= a {
				return s.route(i-1, e)
			}
		}
		return ip.NoRoute, ip.Prefix{}, false
	}
	for k := hi - 1; k >= lo; k-- {
		e := s.rng[k]
		if rngFirst(e) <= a {
			if rngLast(e) >= a {
				return s.route(k, e)
			}
			return ip.NoRoute, ip.Prefix{}, false
		}
	}
	return ip.NoRoute, ip.Prefix{}, false
}

// LookupBinary resolves addr with a full binary search over the table —
// the pre-index reference path, kept as the small-table fallback and as
// the oracle for the differential tests and benchmarks.
func (s *Snapshot) LookupBinary(addr ip.Addr) (ip.NextHop, ip.Prefix, bool) {
	a := uint32(addr)
	i := sort.Search(len(s.rng), func(i int) bool {
		return rngFirst(s.rng[i]) > a
	}) - 1
	if i >= 0 {
		if e := s.rng[i]; rngLast(e) >= a {
			return s.route(i, e)
		}
	}
	return ip.NoRoute, ip.Prefix{}, false
}

// batchSortMin is the batch size at which LookupBatch bucket-sorts the
// keys by top-16 stride and probes in the staged multi-pass layout.
// Sorting only pays once the batch is big enough that neighboring keys
// actually share index and slab cache lines: at typical batch sizes a
// few hundred keys scatter across tens of thousands of /16 buckets, so
// the two radix passes and the scratch traffic cost more than the
// misses they avoid, and the plain per-key probe — whose short
// iterations the out-of-order engine already overlaps — wins.
const batchSortMin = 1024

// lookupSortScratch holds LookupBatch's radix-sort buffers, pooled
// across calls so the batch path stays allocation-free.
type lookupSortScratch struct {
	a, b []uint64
}

var lookupSortPool = sync.Pool{New: func() any { return new(lookupSortScratch) }}

// leafSubs backs the branchless pass-2 sub-array read for snapshots with
// no promoted buckets at all: leaf keys read block 0 and mask the value
// away, so any 256-entry block serves.
var leafSubs [subEntries]uint16

// radixPass distributes src into dst by the byte at shift, stable.
func radixPass(src, dst []uint64, shift uint) {
	var cnt [256]int32
	for _, v := range src {
		cnt[v>>shift&0xff]++
	}
	off := int32(0)
	for i := range cnt {
		c := cnt[i]
		cnt[i] = off
		off += c
	}
	for _, v := range src {
		j := v >> shift & 0xff
		dst[cnt[j]] = v
		cnt[j]++
	}
}

// LookupBatch resolves addrs against this one snapshot, amortizing the
// snapshot load across the batch. Results are written into out (reused
// when its capacity suffices) and returned in input order. Batches of
// batchSortMin or more addresses are first bucket-sorted by their
// top-16 stride (two LSD radix passes over packed addr|position keys),
// so the probes walk the index and the route slab in address order —
// neighboring lookups share cache lines instead of striding randomly
// across the table — and the answers scatter back through the carried
// positions.
func (s *Snapshot) LookupBatch(addrs []ip.Addr, out []LookupResult) []LookupResult {
	if cap(out) < len(addrs) {
		out = make([]LookupResult, len(addrs))
	} else {
		out = out[:len(addrs)]
	}
	if len(addrs) < batchSortMin || s.index.empty() {
		for i, a := range addrs {
			hop, pfx, ok := s.Lookup(a)
			out[i] = LookupResult{Hop: hop, Prefix: pfx, Found: ok}
		}
		return out
	}
	sc := lookupSortPool.Get().(*lookupSortScratch)
	n := len(addrs)
	if cap(sc.a) < n {
		sc.a = make([]uint64, n)
		sc.b = make([]uint64, n)
	}
	ka, kb := sc.a[:n], sc.b[:n]
	for i, a := range addrs {
		ka[i] = uint64(a)<<32 | uint64(uint32(i))
	}
	radixPass(ka, kb, 32+strideShift)         // addr bits 16-23: low stride byte
	radixPass(kb, ka, 32+strideShift+subBits) // addr bits 24-31: high stride byte

	// The sorted probe runs in three passes rather than one Lookup call
	// per key, keeping each pass's accesses in sorted order so big
	// batches sweep the index and slabs monotonically.

	// Pass 1: first-level entries. kb[i] receives l1[stride(i)].
	l1 := s.index.l1
	for i, v := range ka {
		kb[i] = l1[v>>(32+strideShift)]
	}
	// Pass 2: resolve each key's candidate window [lo, hi) — through the
	// /24 sub-array for hot buckets — and pack it back into kb. The
	// hot/leaf choice is a data-dependent coin flip across keys, so it is
	// computed with masks instead of a branch: leaf keys read the dummy
	// block (off = 0) and mask the value away, sparing a mispredict per
	// key. Only the j == 255 wrap (1/256 of keys) stays a branch.
	subs := s.index.subs
	if len(subs) == 0 {
		subs = leafSubs[:]
	}
	for i, v := range ka {
		e := kb[i]
		a := uint32(v >> 32)
		b := a >> strideShift
		cut := l1Cut(e)
		nxt := l1Cut(l1[b+1])
		r := e >> 32
		hot := (r | (0 - r)) >> 63   // 1 when promoted
		m := uint32(0) - uint32(hot) // all-ones when promoted
		off := (r - hot) << subBits  // (ref-1)*256, or 0 for leaf keys
		j := uint64(a>>subShift) & (subEntries - 1)
		lo := cut + m&uint32(subs[off+j]) // rel offsets: leaf keys add 0
		var hi uint32
		if j == subEntries-1 {
			hi = nxt
		} else {
			hi = m&(cut+uint32(subs[off+j+1])) | ^m&nxt
		}
		kb[i] = uint64(hi)<<32 | uint64(lo)
	}
	// Pass 3: probe the route slab and scatter answers to input order.
	// Disjointness makes the probe branch-free: at most one route in the
	// whole table covers a given address, so scanning a fixed window of
	// strideScanMax entries around [lo, hi) cannot produce a false match
	// — entries outside the true window fail the cover test by
	// construction. The fixed trip count and mask-accumulated match
	// replace the early-exit scan whose exit position mispredicted on
	// almost every key.
	rng := s.rng
	nr := len(rng)
	for i, v := range ka {
		w := kb[i]
		lo, hi := int(uint32(w)), int(uint32(w>>32))
		if hi < nr {
			hi++ // spanning-route guard, as in Lookup
		}
		a := uint32(v >> 32)
		res := LookupResult{}
		if hi-lo <= strideScanMax {
			for k := hi - 1; k >= lo; k-- {
				e := rng[k]
				if rngFirst(e) <= a {
					if rngLast(e) >= a {
						res.Hop, res.Prefix, res.Found = s.route(k, e)
					}
					break
				}
			}
		} else {
			res.Hop, res.Prefix, res.Found = s.Lookup(ip.Addr(a))
		}
		out[uint32(v)] = res
	}
	lookupSortPool.Put(sc)
	return out
}

// Home returns the partition worker responsible for addr. Workers with
// empty home ranges (down workers, or surplus workers on tiny tables)
// are never returned as long as the snapshot has any non-empty worker —
// which cutPartitions guarantees by construction.
func (s *Snapshot) Home(addr ip.Addr) int {
	i := sort.Search(len(s.starts), func(i int) bool {
		return s.starts[i] > addr
	}) - 1
	if i < 0 {
		i = 0
	}
	// The search can land on an empty worker (its start is inherited from
	// its successor, or the max-address sentinel for trailing empties):
	// walk down to the owning worker. Walking down can bottom out on an
	// empty worker 0 — a down worker 0 inherits the first survivor's
	// start — so walk up to the first non-empty worker in that case
	// instead of handing a down worker its old traffic back.
	for i > 0 && s.empty[i] {
		i--
	}
	if s.empty[i] {
		for j := i + 1; j < len(s.empty); j++ {
			if !s.empty[j] {
				return j
			}
		}
	}
	return i
}

// emptyHome reports whether worker i's home range is zero-width.
func (s *Snapshot) emptyHome(i int) bool {
	return i < len(s.empty) && s.empty[i]
}

// Routes materializes the snapshot's compressed table as []ip.Route
// (diagnostics and tests; the copy keeps the snapshot immutable).
func (s *Snapshot) Routes() []ip.Route {
	out := make([]ip.Route, len(s.rng))
	for i, e := range s.rng {
		out[i] = ip.Route{Prefix: rngRoutePrefix(e), NextHop: ip.NextHop(atomic.LoadUint32(&s.hop[i]))}
	}
	return out
}
