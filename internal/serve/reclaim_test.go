package serve

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"clue/internal/ip"
)

// TestEpochReclamationUnderChurn hammers the lock-free read side from
// several goroutines — single lookups, batches, and escaped Snapshot()
// handles — while the writer replays structural withdraw/announce churn
// fast enough that retired arenas are recycled underneath them. Run
// under -race (as CI does) this is the proof of the epoch protocol's
// memory ordering: the reader's slot CAS on enter and release on exit
// must establish happens-before edges with the writer's recycle-time
// slab writes, or the detector flags the replay.
func TestEpochReclamationUnderChurn(t *testing.T) {
	fib, routes := testRoutes(t, 3000, 77)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			batch := make([]ip.Addr, 64)
			var out []LookupResult
			for !stop.Load() {
				switch rnd.Intn(8) {
				case 0:
					for i := range batch {
						batch[i] = ip.Addr(rnd.Uint32())
					}
					out, _ = rt.LookupBatch(batch, out)
				case 1:
					// Escaped handle: it pins an epoch only while being
					// taken, then must stay readable indefinitely even
					// after the writer has moved many versions ahead.
					s := rt.Snapshot()
					s.Lookup(ip.Addr(rnd.Uint32()))
				default:
					rt.Lookup(ip.Addr(rnd.Uint32()))
				}
			}
		}(int64(g))
	}

	iters := 300
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		r := routes[(i*37)%len(routes)]
		if _, err := rt.Withdraw(r.Prefix); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Announce(r.Prefix, r.NextHop); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	st := rt.Stats()
	if st.ArenasRecycled == 0 {
		t.Error("structural churn recycled no arenas — epoch reclamation never fired")
	}
	// Every withdrawn route was re-announced, so the served table must
	// match the untouched FIB again.
	rnd := rand.New(rand.NewSource(78))
	for i := 0; i < 2000; i++ {
		a := ip.Addr(rnd.Uint32())
		want, _ := fib.Lookup(a, nil)
		hop, _, ok := rt.Lookup(a)
		if ok != (want != ip.NoRoute) || (ok && hop != want) {
			t.Fatalf("after churn: Lookup(%s) = %d,%v want %d", a, hop, ok, want)
		}
	}
}

// TestWriterSteadyStateAllocs guards the writer path's allocation
// behavior. Before the arena rework every structural publish allocated
// a fresh 2^16+1-entry stride index (512 KiB) plus a copy of the route
// table; with the recycling pool warm, a steady stream of single-route
// batches must reuse those slabs and stay orders of magnitude below
// that. The bound is loose enough for the update pipeline's own small
// allocations (per-op completion channels, diff scratch) and tight
// enough that reintroducing a per-batch index or table copy trips it.
func TestWriterSteadyStateAllocs(t *testing.T) {
	_, routes := testRoutes(t, 5000, 99)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	churn := func(pairs int) {
		for i := 0; i < pairs; i++ {
			r := routes[(i*13)%len(routes)]
			if _, err := rt.Withdraw(r.Prefix); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Announce(r.Prefix, r.NextHop); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn(25) // warm the arena pool and writer scratch
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const pairs = 200
	churn(pairs)
	runtime.ReadMemStats(&after)
	per := (after.TotalAlloc - before.TotalAlloc) / (2 * pairs)
	t.Logf("writer steady state: %d B/update", per)
	if per > 32<<10 {
		t.Errorf("writer path allocates %d B/update in steady state; want < 32 KiB (index or table slabs not reused?)", per)
	}
}

// TestWriterDeaggregationAllocs holds the same per-update allocation
// bound under a route-leak-shaped storm: a flood of fresh /24s that
// grows the table well past its boot size (every op structural, the
// arena must regrow), then the full retraction. Growth regrow is
// amortised by the arena headroom and retired slabs come back through
// the recycling pool, so a second leak cycle must stay in the same
// steady-state budget as benign churn — a writer that copies the index
// or reallocates slabs per batch while bloated trips this long before
// it trips the benign-churn guard.
func TestWriterDeaggregationAllocs(t *testing.T) {
	fib, routes := testRoutes(t, 5000, 99)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// The leak: fresh /24s (absent from the FIB) across a few /16 spans.
	var leak []ip.Prefix
	for b := 0; len(leak) < 400; b++ {
		p := ip.MustPrefix(ip.Addr(uint32(60+b)<<24|uint32(b%3)<<16|uint32(len(leak)%256)<<8), 24)
		if fib.Get(p, nil) == ip.NoRoute {
			leak = append(leak, p)
		}
	}
	cycle := func(ps []ip.Prefix) {
		for _, p := range ps {
			if _, err := rt.Announce(p, 3); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range ps {
			if _, err := rt.Withdraw(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := rt.Snapshot().Len()
	cycle(leak) // warm the pool at leak-bloated sizes
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	cycle(leak)
	runtime.ReadMemStats(&after)
	per := (after.TotalAlloc - before.TotalAlloc) / uint64(2*len(leak))
	t.Logf("deaggregation storm: %d B/update over %d leaked /24s", per, len(leak))
	if per > 32<<10 {
		t.Errorf("writer path allocates %d B/update under deaggregation; want < 32 KiB", per)
	}
	st := rt.Stats()
	if st.PeakRoutes < int64(base+len(leak)*9/10) {
		t.Errorf("peak-routes high-water mark %d did not track the leak (base %d, leak %d)", st.PeakRoutes, base, len(leak))
	}
	if got := rt.Snapshot().Len(); got != base {
		t.Errorf("table did not return to %d routes after retraction: %d", base, got)
	}
}
