package serve

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"clue/internal/ip"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// tracegenFIB builds a private trie copy for the update generator, so the
// generator's view churns independently of the runtime under test.
func tracegenFIB(t testing.TB, routes []ip.Route) *trie.Trie {
	t.Helper()
	return trie.FromRoutes(routes)
}

func TestRuntimeLookupAndDispatchMatchFIB(t *testing.T) {
	fib, routes := testRoutes(t, 4000, 21)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		a := ip.Addr(rng.Uint32())
		want, _ := fib.Lookup(a, nil)
		hop, _, ok := rt.Lookup(a)
		if ok != (want != ip.NoRoute) || (ok && hop != want) {
			t.Fatalf("Lookup(%s) = %d,%v want %d", a, hop, ok, want)
		}
		res, err := rt.Dispatch(a)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
			t.Fatalf("Dispatch(%s) = %+v want %d", a, res, want)
		}
	}
	st := rt.Stats()
	if st.Dispatched != 5000 {
		t.Fatalf("dispatched = %d", st.Dispatched)
	}
	var served int64
	for _, v := range st.WorkerServed {
		served += v
	}
	if served != st.Dispatched {
		t.Fatalf("served %d != dispatched %d", served, st.Dispatched)
	}
}

func TestAnnounceVisibleWhenReturned(t *testing.T) {
	_, routes := testRoutes(t, 2000, 22)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	p := ip.MustParsePrefix("203.0.113.0/24")
	a := ip.MustParseAddr("203.0.113.7")
	before, _, _ := rt.Lookup(a)
	v0 := rt.Snapshot().Version

	ttf, err := rt.Announce(p, 99)
	if err != nil {
		t.Fatal(err)
	}
	if ttf.Total() <= 0 {
		t.Fatalf("announce TTF = %+v, want positive", ttf)
	}
	if hop, _, ok := rt.Lookup(a); !ok || hop != 99 {
		t.Fatalf("lookup after announce = %d,%v want 99", hop, ok)
	}
	if res, err := rt.Dispatch(a); err != nil || !res.Found || res.Hop != 99 {
		t.Fatalf("dispatch after announce = %+v, %v", res, err)
	}
	if v := rt.Snapshot().Version; v <= v0 {
		t.Fatalf("snapshot version %d not advanced past %d", v, v0)
	}

	if _, err := rt.Withdraw(p); err != nil {
		t.Fatal(err)
	}
	after, _, _ := rt.Lookup(a)
	if after != before {
		t.Fatalf("lookup after withdraw = %d, want pre-announce %d", after, before)
	}
}

func TestWithdrawAbsentPrefixNoop(t *testing.T) {
	_, routes := testRoutes(t, 1000, 23)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Withdraw(ip.MustParsePrefix("198.51.100.0/28")); err != nil {
		t.Fatalf("withdraw of absent prefix: %v", err)
	}
	if st := rt.Stats(); st.UpdateErrors != 0 {
		t.Fatalf("update errors = %d", st.UpdateErrors)
	}
}

func TestAnnounceRejectsZeroHop(t *testing.T) {
	_, routes := testRoutes(t, 1000, 24)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Announce(ip.MustParsePrefix("10.9.0.0/16"), ip.NoRoute); err == nil {
		t.Fatal("zero next hop accepted")
	}
	if st := rt.Stats(); st.UpdateErrors != 1 {
		t.Fatalf("update errors = %d, want 1", st.UpdateErrors)
	}
}

func TestDispatchDivertsOffFullQueue(t *testing.T) {
	fib, routes := testRoutes(t, 3000, 25)
	rt, err := New(routes, Config{QueueDepth: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Stall worker 0 and fill its 1-deep queue, so any lookup homed to it
	// must take the divert path. The stall is released by the deferred
	// close before rt.Close drains the workers.
	stall := make(chan struct{})
	defer close(stall)
	rt.workers[0].queue <- lookupReq{stall: stall} // worker 0 now blocked
	rt.workers[0].queue <- lookupReq{stall: stall} // queue now full

	a := routes[0].Prefix.First()
	if home := rt.Snapshot().Home(a); home != 0 {
		t.Fatalf("probe homed to %d, want 0", home)
	}
	want, _ := fib.Lookup(a, nil)

	res, err := rt.Dispatch(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverted || res.Worker == 0 || res.Home != 0 {
		t.Fatalf("expected divert off worker 0, got %+v", res)
	}
	if res.CacheHit {
		t.Fatalf("first divert cannot be a cache hit: %+v", res)
	}
	if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
		t.Fatalf("diverted answer %+v, want hop %d", res, want)
	}

	// The serving worker cached the foreign prefix (reduced-redundancy
	// fill), so a repeat divert of the same flow hits the cache.
	res2, err := rt.Dispatch(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Diverted || !res2.CacheHit || res2.Hop != res.Hop {
		t.Fatalf("expected cached divert, got %+v", res2)
	}

	st := rt.Stats()
	if st.Diverted != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("divert accounting: %+v", st)
	}
}

func TestUpdateBatching(t *testing.T) {
	_, routes := testRoutes(t, 3000, 26)
	rt, err := New(routes, Config{BatchMax: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	gen, err := tracegen.NewUpdateGen(tracegenFIB(t, routes), tracegen.UpdateConfig{Seed: 26, Messages: 2000})
	if err != nil {
		t.Fatal(err)
	}
	stream := gen.NextN(2000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(part []tracegen.Update) {
			defer wg.Done()
			for _, u := range part {
				switch u.Kind {
				case tracegen.Announce:
					rt.Announce(u.Prefix, u.Hop)
				case tracegen.Withdraw:
					rt.Withdraw(u.Prefix)
				}
			}
		}(stream[g*250 : (g+1)*250])
	}
	wg.Wait()
	st := rt.Stats()
	if got := st.Announces + st.Withdraws; got != 2000 {
		t.Fatalf("applied %d updates, want 2000", got)
	}
	if st.BatchOps != 2000 || st.Batches == 0 || st.Batches > 2000 {
		t.Fatalf("batch accounting: %+v", st)
	}
	if st.TTFTotals.Total() <= 0 {
		t.Fatalf("no TTF recorded: %+v", st.TTFTotals)
	}
	// No-op batches (all ops compressed away) skip publication, so only
	// the batches that changed the table advanced the version.
	if st.SnapshotVersion != 1+uint64(st.Batches-st.NoopBatches) {
		t.Fatalf("version %d != 1+(batches %d - noop %d)", st.SnapshotVersion, st.Batches, st.NoopBatches)
	}
	// The published snapshot must equal the writer-owned table exactly.
	want := rt.sys.CompressedRoutes()
	got := rt.Snapshot().Routes()
	if len(want) != len(got) {
		t.Fatalf("snapshot has %d routes, system %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("snapshot[%d] = %v, system %v", i, got[i], want[i])
		}
	}
}

func TestDispatchBatchMatchesFIB(t *testing.T) {
	fib, routes := testRoutes(t, 4000, 51)
	rt, err := New(routes, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rng := rand.New(rand.NewSource(51))
	addrs := make([]ip.Addr, 1000)
	for i := range addrs {
		addrs[i] = ip.Addr(rng.Uint32())
	}
	out, err := rt.DispatchBatch(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(addrs) {
		t.Fatalf("batch returned %d results for %d addrs", len(out), len(addrs))
	}
	for i, a := range addrs {
		want, _ := fib.Lookup(a, nil)
		if out[i].Found != (want != ip.NoRoute) || (out[i].Found && out[i].Hop != want) {
			t.Fatalf("batch[%d] (%s) = %+v, want hop %d", i, a, out[i], want)
		}
		if out[i].Home != rt.Snapshot().Home(a) {
			t.Fatalf("batch[%d] home = %d, want %d", i, out[i].Home, rt.Snapshot().Home(a))
		}
		if !out[i].Diverted && out[i].Worker != out[i].Home {
			t.Fatalf("batch[%d] served by %d, home %d, not diverted", i, out[i].Worker, out[i].Home)
		}
	}
	st := rt.Stats()
	if st.Dispatched != 1000 || st.DispatchBatches != 1 {
		t.Fatalf("batch accounting: dispatched %d, batches %d", st.Dispatched, st.DispatchBatches)
	}
	var served int64
	for _, v := range st.WorkerServed {
		served += v
	}
	if served != 1000 {
		t.Fatalf("workers served %d, want 1000", served)
	}
	// Second call reuses the caller's result slice.
	out2, err := rt.DispatchBatch(addrs[:64], out)
	if err != nil {
		t.Fatal(err)
	}
	if &out2[0] != &out[0] || len(out2) != 64 {
		t.Fatal("DispatchBatch did not reuse the output slice")
	}
	if empty, err := rt.DispatchBatch(nil, nil); err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %v", empty, err)
	}
}

func TestRuntimeLookupBatch(t *testing.T) {
	fib, routes := testRoutes(t, 3000, 52)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rng := rand.New(rand.NewSource(52))
	addrs := make([]ip.Addr, 500)
	for i := range addrs {
		addrs[i] = ip.Addr(rng.Uint32())
	}
	out, version := rt.LookupBatch(addrs, nil)
	if version != rt.Snapshot().Version {
		t.Fatalf("batch version %d, snapshot %d", version, rt.Snapshot().Version)
	}
	for i, a := range addrs {
		want, _ := fib.Lookup(a, nil)
		if out[i].Found != (want != ip.NoRoute) || (out[i].Found && out[i].Hop != want) {
			t.Fatalf("batch[%d] (%s) = %+v, want hop %d", i, a, out[i], want)
		}
	}
	if st := rt.Stats(); st.SnapshotLookups != 500 {
		t.Fatalf("snapshot lookups = %d, want 500", st.SnapshotLookups)
	}
}

// TestTinyTableDivertSkipsEmptyWorkers is the regression for the load
// balancer on tables smaller than the worker count: with 2 routes and 4
// workers, workers 2 and 3 have zero-width home ranges and cold caches,
// so a divert off worker 0's full queue must land on worker 1 — never on
// a worker that can contribute neither locality nor cached answers.
func TestTinyTableDivertSkipsEmptyWorkers(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("192.168.0.0/16"), NextHop: 2},
	}
	rt, err := New(routes, Config{
		Workers:    4,
		QueueDepth: 1,
		System:     SystemConfig{TCAMs: 2, Buckets: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	snap := rt.Snapshot()
	if snap.Len() != 2 {
		t.Fatalf("compressed table has %d entries, want 2", snap.Len())
	}
	if !snap.emptyHome(2) || !snap.emptyHome(3) {
		t.Fatalf("workers 2/3 not marked empty: %v", snap.empty)
	}

	// Stall worker 0 and fill its 1-deep queue, so a lookup homed to it
	// must take the divert path.
	stall := make(chan struct{})
	defer close(stall)
	rt.workers[0].queue <- lookupReq{stall: stall}
	rt.workers[0].queue <- lookupReq{stall: stall}

	a := ip.MustParseAddr("10.1.2.3")
	if home := snap.Home(a); home != 0 {
		t.Fatalf("probe homed to %d, want 0", home)
	}
	for i := 0; i < 16; i++ {
		res, err := rt.Dispatch(a)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Diverted {
			t.Fatalf("dispatch %d not diverted: %+v", i, res)
		}
		if res.Worker != 1 {
			t.Fatalf("dispatch %d diverted to worker %d (empty range, cold cache), want 1", i, res.Worker)
		}
		if !res.Found || res.Hop != 1 {
			t.Fatalf("dispatch %d wrong answer: %+v", i, res)
		}
	}
	if ll := rt.leastLoaded(0); ll != 1 {
		t.Fatalf("leastLoaded(0) = %d, want 1", ll)
	}
}

// TestSnapshotIndexPatchedUnderChurn runs update batches through the
// writer and checks that the incrementally-patched stride index equals a
// from-scratch rebuild of the final table — the compounding-error
// regression for the patch path.
func TestSnapshotIndexPatchedUnderChurn(t *testing.T) {
	_, routes := testRoutes(t, 3000, 53)
	rt, err := New(routes, Config{BatchMax: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	gen, err := tracegen.NewUpdateGen(tracegenFIB(t, routes), tracegen.UpdateConfig{
		Seed: 53, Messages: 3000, WithdrawFrac: 0.35, NewPrefixFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stream := gen.NextN(3000)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(part []tracegen.Update) {
			defer wg.Done()
			for _, u := range part {
				switch u.Kind {
				case tracegen.Announce:
					rt.Announce(u.Prefix, u.Hop)
				case tracegen.Withdraw:
					rt.Withdraw(u.Prefix)
				}
			}
		}(stream[g*500 : (g+1)*500])
	}
	wg.Wait()
	snap := rt.Snapshot()
	if snap.Version == 1 {
		t.Fatal("no batches applied")
	}
	if !snap.Indexed() {
		t.Fatalf("snapshot lost its stride index at %d routes", snap.Len())
	}
	_, want := indexOver(snap.Routes())
	for b := 0; b <= strideBuckets; b++ {
		if l1Cut(snap.index.l1[b]) != l1Cut(want.l1[b]) {
			t.Fatalf("after churn: patched cut[%#x] = %d, rebuild %d", b, l1Cut(snap.index.l1[b]), l1Cut(want.l1[b]))
		}
	}
}

func TestCloseRejectsAndIsIdempotent(t *testing.T) {
	_, routes := testRoutes(t, 1000, 27)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close() // idempotent
	if _, err := rt.Dispatch(ip.MustParseAddr("10.0.0.1")); err != ErrClosed {
		t.Fatalf("Dispatch after close: %v", err)
	}
	if _, err := rt.Announce(ip.MustParsePrefix("10.0.0.0/24"), 1); err != ErrClosed {
		t.Fatalf("Announce after close: %v", err)
	}
	if _, err := rt.Withdraw(ip.MustParsePrefix("10.0.0.0/24")); err != ErrClosed {
		t.Fatalf("Withdraw after close: %v", err)
	}
	// The last snapshot stays readable — RCU readers are never cut off.
	if _, _, ok := rt.Lookup(ip.MustParseAddr("0.0.0.0")); ok {
		// Either answer is fine; this just must not panic.
		_ = ok
	}
}

func TestStatsPrometheusRendering(t *testing.T) {
	_, routes := testRoutes(t, 1000, 28)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Lookup(ip.MustParseAddr("10.0.0.1"))
	rt.Dispatch(ip.MustParseAddr("10.0.0.2"))
	rt.Announce(ip.MustParsePrefix("203.0.113.0/24"), 5)
	var sb strings.Builder
	if err := rt.Stats().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"clue_serve_snapshot_version 2",
		"clue_serve_snapshot_lookups_total 1",
		"clue_serve_dispatched_total 1",
		"clue_serve_announces_total 1",
		"clue_serve_ttf_tcam_ns_total",
		"clue_serve_update_noop_batches_total 0",
		`clue_serve_worker_served_total{worker="0"}`,
		"entered the bounded retry loop (counted once, on the first retry)",
		// Native histogram series: TYPE line, at least one cumulative
		// bucket, the +Inf closing bucket, and sum/count. TTF histograms
		// are fed by the announce above; dispatch/lookup histograms may
		// be empty here (sampled), but their series still render.
		"# TYPE clue_serve_ttf_tcam_latency_ns histogram",
		`clue_serve_ttf_tcam_latency_ns_bucket{le="+Inf"} 1`,
		"clue_serve_ttf_tcam_latency_ns_count 1",
		"clue_serve_ttf_tcam_latency_ns_sum",
		"# TYPE clue_serve_snapshot_lookup_latency_ns histogram",
		"# TYPE clue_serve_dispatch_home_latency_ns histogram",
		"# TYPE clue_serve_dispatch_diverted_latency_ns histogram",
		"# TYPE clue_serve_dispatch_cache_hit_latency_ns histogram",
		"# TYPE clue_serve_dispatch_batch_latency_ns histogram",
		"# TYPE clue_serve_snapshot_swap_latency_ns histogram",
		"# TYPE clue_serve_queue_depth histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "blocked with all queues full") {
		t.Error("stale overflow_blocked HELP text still present")
	}
}
