package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"clue/internal/update"
)

// atomicFloat is a float64 accumulator with atomic loads/stores. Only the
// writer goroutine adds to it (load-add-store without CAS is safe under a
// single writer); any goroutine may read it.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) { f.bits.Store(math.Float64bits(f.load() + v)) }
func (f *atomicFloat) set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// metrics is the runtime's live counter set. Lookup-path counters are
// bumped by dispatchers and workers (plain atomic adds); update-path and
// TTF counters are bumped only by the writer goroutine.
type metrics struct {
	snapshotLookups atomic.Int64
	dispatched      atomic.Int64
	dispatchBatches atomic.Int64
	diverted        atomic.Int64
	overflowBlocked atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	cacheFlushes    atomic.Int64
	cacheInvalid    atomic.Int64

	rehomes         atomic.Int64
	enqueueRetries  atomic.Int64
	enqueueTimeouts atomic.Int64
	workerPanics    atomic.Int64

	// Rebalancer counters (bumped under rebalanceMu, read anywhere).
	// rebalanceImbBefore/After are last-observed gauges, hence set not
	// add.
	rebalances         atomic.Int64
	rebalanceSkips     atomic.Int64
	rebalanceMoved     atomic.Int64
	sketchSamples      atomic.Int64
	rebalanceImbBefore atomicFloat
	rebalanceImbAfter  atomicFloat

	announces    atomic.Int64
	withdraws    atomic.Int64
	updateErrors atomic.Int64
	batches      atomic.Int64
	noopBatches  atomic.Int64
	batchOps     atomic.Int64

	// Storm high-water marks: the largest compressed table published
	// (route-leak bloat), the deepest update-queue backlog observed at
	// submit time, and the largest writer batch coalesced. peakRoutes
	// and peakBatchOps are writer-owned; peakPending is raced by every
	// submitter, hence the CAS max.
	peakRoutes   atomic.Int64
	peakPending  atomic.Int64
	peakBatchOps atomic.Int64

	// Arena/epoch bookkeeping (writer-owned adds).
	inPlacePatches atomic.Int64
	indexPatches   atomic.Int64
	indexRebuilds  atomic.Int64
	arenasRecycled atomic.Int64

	ttfTrie atomicFloat
	ttfTCAM atomicFloat
	ttfDRed atomicFloat
	swapNs  atomicFloat

	// dispatchTick drives the single-dispatch latency sampling decision;
	// queueTick the enqueue-time queue-depth sampling decision.
	dispatchTick atomic.Int64
	queueTick    atomic.Int64

	// Latency histograms. Dispatch end-to-end latency is sharded by home
	// worker and split by outcome path; queue depth is sharded by the
	// worker whose queue accepted the request. The snapshot-lookup
	// histogram is a single shard — its recorders are already thinned by
	// sampling — and the TTF/swap histograms are writer-owned.
	lookupLat        *latencyHist
	dispatchHome     *latencyHist
	dispatchDivert   *latencyHist
	dispatchCacheHit *latencyHist
	dispatchBatchLat *latencyHist
	ttf1Lat          *latencyHist
	ttf2Lat          *latencyHist
	ttf3Lat          *latencyHist
	swapLat          *latencyHist
	queueDepth       *latencyHist
}

// initHistograms sizes the latency histograms for a runtime with the
// given worker count. Called once from New, before any recorder runs.
func (m *metrics) initHistograms(workers int) {
	m.lookupLat = newLatencyHist(1)
	m.dispatchHome = newLatencyHist(workers)
	m.dispatchDivert = newLatencyHist(workers)
	m.dispatchCacheHit = newLatencyHist(workers)
	m.dispatchBatchLat = newLatencyHist(1)
	m.ttf1Lat = newLatencyHist(1)
	m.ttf2Lat = newLatencyHist(1)
	m.ttf3Lat = newLatencyHist(1)
	m.swapLat = newLatencyHist(1)
	m.queueDepth = newLatencyHist(workers)
}

// LatencyStats bundles the runtime's latency (and queue-depth)
// distributions: the paper's evaluation quantities — per-packet lookup
// delay, the TTF1/TTF2/TTF3 update breakdown — as live percentiles
// instead of totals. All values are nanoseconds except QueueDepth,
// whose "ns" fields are queue entries.
type LatencyStats struct {
	// SnapshotLookup is the sampled RCU read-side lookup latency
	// (Runtime.Lookup; one in lookupSampleMask+1 calls is timed).
	SnapshotLookup LatencySummary `json:"snapshot_lookup"`
	// DispatchHome/DispatchDiverted/DispatchCacheHit split sampled
	// single-dispatch end-to-end latency (enqueue to answer) by outcome:
	// served at the home worker, diverted and answered from the
	// snapshot, diverted and answered from the serving worker's
	// DRed-analog cache.
	DispatchHome     LatencySummary `json:"dispatch_home"`
	DispatchDiverted LatencySummary `json:"dispatch_diverted"`
	DispatchCacheHit LatencySummary `json:"dispatch_cache_hit"`
	// DispatchBatch is whole-call DispatchBatch latency (every call).
	DispatchBatch LatencySummary `json:"dispatch_batch"`
	// TTFTrie/TTFTCAM/TTFDRed are the per-op TTF1/TTF2/TTF3
	// distributions; SnapshotSwap the per-publication batch apply+swap
	// wall time.
	TTFTrie      LatencySummary `json:"ttf_trie"`
	TTFTCAM      LatencySummary `json:"ttf_tcam"`
	TTFDRed      LatencySummary `json:"ttf_dred"`
	SnapshotSwap LatencySummary `json:"snapshot_swap"`
	// QueueDepth is the sampled depth of the accepting worker's queue at
	// enqueue time (entries, not nanoseconds).
	QueueDepth LatencySummary `json:"queue_depth"`
}

// DispatchP99Ns returns the worst p99 across the three dispatch outcome
// paths — the single number the chaos harness bounds during
// kill/recover storms.
func (l LatencyStats) DispatchP99Ns() float64 {
	p := l.DispatchHome.P99
	if l.DispatchDiverted.P99 > p {
		p = l.DispatchDiverted.P99
	}
	if l.DispatchCacheHit.P99 > p {
		p = l.DispatchCacheHit.P99
	}
	return p
}

// Stats is a point-in-time export of the runtime's metrics, safe to
// serialise (all exported fields, JSON-friendly types).
type Stats struct {
	// SnapshotVersion and Routes describe the currently published
	// snapshot; Workers the partition worker count.
	SnapshotVersion uint64 `json:"snapshot_version"`
	Routes          int    `json:"routes"`
	// Indexed reports whether the published snapshot carries the stride
	// index (false only for tables below the index threshold).
	Indexed bool `json:"indexed"`
	Workers int  `json:"workers"`
	// IndexBytes is the published snapshot's two-level index footprint;
	// IndexSubArrays the number of hot buckets promoted to second-level
	// sub-arrays; SnapshotHeapBytes the snapshot's arena slab footprint
	// (route ranges, next hops and both index levels).
	IndexBytes        int `json:"index_bytes"`
	IndexSubArrays    int `json:"index_sub_arrays"`
	SnapshotHeapBytes int `json:"snapshot_heap_bytes"`
	// Epoch is the reclamation clock; EpochLag how many epochs the oldest
	// retired-but-unreclaimed snapshot trails it (0 = fully reclaimed);
	// RetiredSnapshots the retired list length at export time.
	Epoch            uint64 `json:"epoch"`
	EpochLag         uint64 `json:"epoch_lag"`
	RetiredSnapshots int    `json:"retired_snapshots"`

	// SnapshotLookups counts direct (RCU read-side) lookups, including
	// addresses resolved through LookupBatch; Dispatched counts lookups
	// routed through the partition workers, including addresses inside
	// DispatchBatch calls. DispatchBatches counts the batch calls
	// themselves.
	SnapshotLookups int64 `json:"snapshot_lookups"`
	Dispatched      int64 `json:"dispatched"`
	DispatchBatches int64 `json:"dispatch_batches"`
	// Diverted counts dispatches whose home queue was full and that were
	// redirected to the least-loaded worker; OverflowBlocked counts
	// dispatches that found every eligible queue full and entered the
	// bounded retry loop (each dispatch is counted once, on its first
	// retry — since the bounded-retry change no dispatch ever blocks
	// indefinitely).
	Diverted        int64 `json:"diverted"`
	OverflowBlocked int64 `json:"overflow_blocked"`
	// CacheHits/CacheMisses count diverted lookups served from / missing
	// the serving worker's DRed-analog cache. CacheFlushes counts full
	// cache resets after multi-version snapshot jumps; CacheInvalidations
	// counts targeted stale-prefix removals.
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	CacheFlushes       int64 `json:"cache_flushes"`
	CacheInvalidations int64 `json:"cache_invalidations"`
	// WorkerServed is the per-worker served-lookup count.
	WorkerServed []int64 `json:"worker_served"`
	// WorkerHealth is each worker's health state ("healthy", "draining",
	// "failed"); FailedWorkers counts the ones not currently healthy —
	// non-zero means the runtime is in degraded mode.
	WorkerHealth  []string `json:"worker_health"`
	FailedWorkers int      `json:"failed_workers"`
	// Rehomes counts published snapshots that recut the partition bounds
	// after a worker health change; EnqueueRetries the backoff retries on
	// the dispatch path, EnqueueTimeouts the dispatches whose whole
	// retry/timeout budget expired; WorkerPanics the panics recovered
	// inside worker goroutines.
	Rehomes         int64 `json:"rehomes"`
	EnqueueRetries  int64 `json:"enqueue_retries"`
	EnqueueTimeouts int64 `json:"enqueue_timeouts"`
	WorkerPanics    int64 `json:"worker_panics"`
	// Rebalance describes the load-aware repartitioning loop (see
	// RebalanceStats).
	Rebalance RebalanceStats `json:"rebalance"`

	// Announces/Withdraws count applied update ops; UpdateErrors the ops
	// that failed in the pipeline. Batches/BatchOps describe writer
	// batching (BatchOps/Batches = mean batch size). NoopBatches counts
	// batches that changed nothing (all-error ops, withdraw-of-absent)
	// and therefore published no new snapshot. PendingUpdates is the
	// update-queue backlog at export time.
	Announces      int64 `json:"announces"`
	Withdraws      int64 `json:"withdraws"`
	UpdateErrors   int64 `json:"update_errors"`
	Batches        int64 `json:"batches"`
	NoopBatches    int64 `json:"noop_batches"`
	BatchOps       int64 `json:"batch_ops"`
	PendingUpdates int   `json:"pending_updates"`
	// TableHash is the published snapshot's canonical-table digest
	// (Snapshot.CanonicalHash): two runtimes serving the same routes
	// report the same hash, which is how the scenario lab and feed
	// replicas prove convergence after a storm.
	TableHash uint64 `json:"table_hash"`
	// PeakRoutes/PeakPendingUpdates/PeakBatchOps are storm high-water
	// marks over the runtime's life: the largest table published (a
	// route-leak bloats this far above the steady state), the deepest
	// update backlog seen at submit time, and the largest writer batch.
	PeakRoutes         int64 `json:"peak_routes"`
	PeakPendingUpdates int64 `json:"peak_pending_updates"`
	PeakBatchOps       int64 `json:"peak_batch_ops"`
	// InPlacePatches counts publications that patched next hops into the
	// live arena instead of copying the table; IndexPatches/IndexRebuilds
	// split structural publications by whether the two-level index was
	// patched from its predecessor or rebuilt from the table;
	// ArenasRecycled counts retired arenas returned to the writer's pool
	// by epoch reclamation.
	InPlacePatches int64 `json:"in_place_patches"`
	IndexPatches   int64 `json:"index_patches"`
	IndexRebuilds  int64 `json:"index_rebuilds"`
	ArenasRecycled int64 `json:"arenas_recycled"`

	// TTFTotals accumulates the paper's per-update Time-To-Fresh
	// breakdown (ns) across all applied ops; SwapNs the wall time spent
	// building and publishing snapshots.
	TTFTotals update.TTF `json:"ttf_totals_ns"`
	SwapNs    float64    `json:"swap_ns"`

	// Latency carries the distributional view of the same pipeline:
	// p50/p90/p99/max summaries (with sparse power-of-two buckets) for
	// snapshot lookups, dispatch outcomes, TTF1/2/3 and snapshot swaps,
	// plus sampled queue depths.
	Latency LatencyStats `json:"latency"`
}

// DivertRate returns diverted/dispatched.
func (s Stats) DivertRate() float64 {
	if s.Dispatched == 0 {
		return 0
	}
	return float64(s.Diverted) / float64(s.Dispatched)
}

// CacheHitRate returns hits/(hits+misses) on the divert path.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// MeanBatch returns the mean ops per writer batch.
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchOps) / float64(s.Batches)
}

// MeanTTF returns the mean per-update TTF breakdown.
func (s Stats) MeanTTF() update.TTF {
	n := s.Announces + s.Withdraws
	if n == 0 {
		return update.TTF{}
	}
	return s.TTFTotals.Scale(1 / float64(n))
}

// WritePrometheus renders the stats in the Prometheus text exposition
// format (counters and gauges only — no client library dependency).
func (s Stats) WritePrometheus(w io.Writer) error {
	var err error
	emit := func(name, typ, help string, v float64) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	emit("clue_serve_snapshot_version", "gauge", "Version of the published lookup snapshot.", float64(s.SnapshotVersion))
	emit("clue_serve_snapshot_routes", "gauge", "Compressed routes in the published snapshot.", float64(s.Routes))
	emit("clue_serve_workers", "gauge", "Partition worker goroutines.", float64(s.Workers))
	emit("clue_serve_index_bytes", "gauge", "Two-level stride index footprint of the published snapshot.", float64(s.IndexBytes))
	emit("clue_serve_index_sub_arrays", "gauge", "Hot buckets promoted to second-level sub-arrays.", float64(s.IndexSubArrays))
	emit("clue_serve_snapshot_heap_bytes", "gauge", "Arena slab footprint of the published snapshot.", float64(s.SnapshotHeapBytes))
	emit("clue_serve_epoch", "gauge", "Reclamation epoch clock.", float64(s.Epoch))
	emit("clue_serve_epoch_lag", "gauge", "Epochs the oldest unreclaimed snapshot trails the clock.", float64(s.EpochLag))
	emit("clue_serve_retired_snapshots", "gauge", "Snapshots retired and awaiting epoch reclamation.", float64(s.RetiredSnapshots))
	emit("clue_serve_snapshot_lookups_total", "counter", "Direct RCU snapshot lookups.", float64(s.SnapshotLookups))
	emit("clue_serve_dispatched_total", "counter", "Lookups dispatched to partition workers.", float64(s.Dispatched))
	emit("clue_serve_dispatch_batches_total", "counter", "DispatchBatch calls served.", float64(s.DispatchBatches))
	emit("clue_serve_diverted_total", "counter", "Dispatches diverted off a full home queue.", float64(s.Diverted))
	emit("clue_serve_overflow_blocked_total", "counter", "Dispatches that found every eligible queue full and entered the bounded retry loop (counted once, on the first retry).", float64(s.OverflowBlocked))
	emit("clue_serve_cache_hits_total", "counter", "Diverted lookups served from a worker cache.", float64(s.CacheHits))
	emit("clue_serve_cache_misses_total", "counter", "Diverted lookups missing the worker cache.", float64(s.CacheMisses))
	emit("clue_serve_cache_flushes_total", "counter", "Worker cache flushes after snapshot jumps.", float64(s.CacheFlushes))
	emit("clue_serve_cache_invalidations_total", "counter", "Targeted worker cache invalidations.", float64(s.CacheInvalidations))
	emit("clue_serve_failed_workers", "gauge", "Workers currently draining or failed (non-zero = degraded mode).", float64(s.FailedWorkers))
	emit("clue_serve_rehomes_total", "counter", "Snapshots published with recut partition bounds.", float64(s.Rehomes))
	emit("clue_serve_enqueue_retries_total", "counter", "Dispatch enqueue backoff retries.", float64(s.EnqueueRetries))
	emit("clue_serve_enqueue_timeouts_total", "counter", "Dispatches whose enqueue retry/timeout budget expired.", float64(s.EnqueueTimeouts))
	emit("clue_serve_worker_panics_total", "counter", "Panics recovered inside worker goroutines.", float64(s.WorkerPanics))
	emit("clue_serve_rebalance_recuts_total", "counter", "Weighted recuts published by the rebalancer.", float64(s.Rebalance.Recuts))
	emit("clue_serve_rebalance_skips_total", "counter", "Rebalance passes that published nothing (hysteresis, no signal, degraded).", float64(s.Rebalance.Skips))
	emit("clue_serve_rebalance_moved_routes_total", "counter", "Routes re-homed by weighted recuts.", float64(s.Rebalance.MovedRoutes))
	emit("clue_serve_rebalance_sketch_samples_total", "counter", "Traffic-sketch samples drained by the rebalancer.", float64(s.Rebalance.SketchSamples))
	emit("clue_serve_rebalance_imbalance_before", "gauge", "Traffic imbalance (max partition weight / mean) at the last rebalance pass, before the carve.", s.Rebalance.LastImbalanceBefore)
	emit("clue_serve_rebalance_imbalance_after", "gauge", "Projected traffic imbalance after the last published recut.", s.Rebalance.LastImbalanceAfter)
	emit("clue_serve_announces_total", "counter", "Announce ops applied.", float64(s.Announces))
	emit("clue_serve_withdraws_total", "counter", "Withdraw ops applied.", float64(s.Withdraws))
	emit("clue_serve_update_errors_total", "counter", "Update ops that failed in the pipeline.", float64(s.UpdateErrors))
	emit("clue_serve_update_batches_total", "counter", "Writer batches applied.", float64(s.Batches))
	emit("clue_serve_update_noop_batches_total", "counter", "Writer batches that changed nothing and published no snapshot.", float64(s.NoopBatches))
	emit("clue_serve_update_batch_ops_total", "counter", "Update ops across all batches.", float64(s.BatchOps))
	emit("clue_serve_update_pending", "gauge", "Update ops queued and not yet applied.", float64(s.PendingUpdates))
	emit("clue_serve_snapshot_routes_peak", "gauge", "Largest compressed table ever published (route-leak bloat high-water mark).", float64(s.PeakRoutes))
	emit("clue_serve_update_pending_peak", "gauge", "Deepest update-queue backlog observed at submit time.", float64(s.PeakPendingUpdates))
	emit("clue_serve_update_batch_ops_peak", "gauge", "Largest writer batch coalesced from the update queue.", float64(s.PeakBatchOps))
	emit("clue_serve_in_place_patches_total", "counter", "Publications that patched next hops into the live arena without copying the table.", float64(s.InPlacePatches))
	emit("clue_serve_index_patches_total", "counter", "Structural publications whose index was patched from its predecessor.", float64(s.IndexPatches))
	emit("clue_serve_index_rebuilds_total", "counter", "Structural publications whose index was rebuilt from the table.", float64(s.IndexRebuilds))
	emit("clue_serve_arenas_recycled_total", "counter", "Retired arenas returned to the writer pool by epoch reclamation.", float64(s.ArenasRecycled))
	emit("clue_serve_ttf_trie_ns_total", "counter", "TTF1 (control-plane trie) nanoseconds.", s.TTFTotals.Trie)
	emit("clue_serve_ttf_tcam_ns_total", "counter", "TTF2 (TCAM maintenance) nanoseconds.", s.TTFTotals.TCAM)
	emit("clue_serve_ttf_dred_ns_total", "counter", "TTF3 (redundancy maintenance) nanoseconds.", s.TTFTotals.DRed)
	emit("clue_serve_snapshot_swap_ns_total", "counter", "Wall time building and publishing snapshots.", s.SwapNs)
	if err != nil {
		return err
	}
	for i, v := range s.WorkerServed {
		if _, err = fmt.Fprintf(w, "clue_serve_worker_served_total{worker=\"%d\"} %d\n", i, v); err != nil {
			return err
		}
	}
	for i, h := range s.WorkerHealth {
		healthy := 0
		if h == WorkerHealthy.String() {
			healthy = 1
		}
		if _, err = fmt.Fprintf(w, "clue_serve_worker_healthy{worker=\"%d\",state=\"%s\"} %d\n", i, h, healthy); err != nil {
			return err
		}
	}
	// The 64-bit digest does not survive a float64 gauge, so it rides in
	// a label (info-style metric): converged replicas expose identical
	// hash labels.
	if _, err = fmt.Fprintf(w, "# HELP clue_serve_table_hash Canonical compressed-table digest of the published snapshot (in the hash label).\n# TYPE clue_serve_table_hash gauge\nclue_serve_table_hash{hash=\"%016x\"} 1\n", s.TableHash); err != nil {
		return err
	}
	for _, hs := range []struct {
		name, help string
		sum        LatencySummary
	}{
		{"clue_serve_snapshot_lookup_latency_ns", "Sampled RCU snapshot lookup latency.", s.Latency.SnapshotLookup},
		{"clue_serve_dispatch_home_latency_ns", "Sampled end-to-end latency of dispatches served at their home worker.", s.Latency.DispatchHome},
		{"clue_serve_dispatch_diverted_latency_ns", "Sampled end-to-end latency of diverted dispatches answered from the snapshot.", s.Latency.DispatchDiverted},
		{"clue_serve_dispatch_cache_hit_latency_ns", "Sampled end-to-end latency of diverted dispatches answered from a worker cache.", s.Latency.DispatchCacheHit},
		{"clue_serve_dispatch_batch_latency_ns", "Whole-call DispatchBatch latency.", s.Latency.DispatchBatch},
		{"clue_serve_ttf_trie_latency_ns", "Per-op TTF1 (control-plane trie) distribution.", s.Latency.TTFTrie},
		{"clue_serve_ttf_tcam_latency_ns", "Per-op TTF2 (TCAM maintenance) distribution.", s.Latency.TTFTCAM},
		{"clue_serve_ttf_dred_latency_ns", "Per-op TTF3 (redundancy maintenance) distribution.", s.Latency.TTFDRed},
		{"clue_serve_snapshot_swap_latency_ns", "Per-publication batch apply and snapshot swap wall time.", s.Latency.SnapshotSwap},
		{"clue_serve_queue_depth", "Sampled worker queue depth at enqueue time (entries).", s.Latency.QueueDepth},
	} {
		if err = writePrometheusHistogram(w, hs.name, hs.help, hs.sum); err != nil {
			return err
		}
	}
	return nil
}

// writePrometheusHistogram renders one merged latency histogram in the
// text exposition format: cumulative le buckets over the populated
// power-of-two bounds, then the conventional _sum and _count series.
func writePrometheusHistogram(w io.Writer, name, help string, s LatencySummary) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	cum := uint64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b.Le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		name, s.Count, name, s.Sum, name, s.Count)
	return err
}
