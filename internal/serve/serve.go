package serve

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clue/internal/core"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/tracegen"
	"clue/internal/update"
)

// ErrClosed is returned by Dispatch/Announce/Withdraw after Close.
// (Lookup keeps answering from the last published snapshot — RCU readers
// are never cut off.)
var ErrClosed = errors.New("serve: runtime closed")

// SystemConfig aliases the underlying core system's Config, so service
// callers configure TCAM/bucket/DRed parameters without importing
// internal/core themselves.
type SystemConfig = core.Config

// Config parameterises a Runtime. Zero values take serving defaults.
type Config struct {
	// Workers is the number of partition worker goroutines (default: the
	// underlying system's TCAM count, i.e. 4).
	Workers int
	// QueueDepth bounds each worker's request queue (default 256, the
	// paper's FIFO depth). A full home queue diverts to the least-loaded
	// worker.
	QueueDepth int
	// UpdateQueue bounds the announce/withdraw channel (default 1024);
	// submitters block when the writer falls behind.
	UpdateQueue int
	// BatchMax caps how many queued ops the writer coalesces into one
	// snapshot swap (default 64).
	BatchMax int
	// CacheSize is each worker's DRed-analog cache capacity (default
	// 1024, the paper's DRed size; 0 keeps the struct but caches nothing).
	CacheSize int
	// EnqueueTimeout bounds how long a dispatch may wait for any
	// eligible worker queue to accept it before failing with
	// ErrEnqueueTimeout (default 1s). Together with EnqueueRetries it
	// turns a wedged worker from a forever-block into a bounded error.
	EnqueueTimeout time.Duration
	// EnqueueRetries caps the backoff rounds a dispatch attempts within
	// EnqueueTimeout (default 32).
	EnqueueRetries int
	// ServicePace, when positive, holds each worker busy for this long
	// per address served — the software stand-in for a TCAM chip's fixed
	// service rate. With a pace set, a partition genuinely has capacity
	// 1/pace, so overload experiments (the rebalance comparison, the
	// scenario lab) see load-dependent queue growth instead of
	// scheduler-noise-driven diverts. 0 (the default) serves as fast as
	// the host allows.
	ServicePace time.Duration
	// Rebalance configures the load-aware repartitioning loop (see
	// RebalanceConfig; the zero value leaves periodic rebalancing off,
	// with manual Runtime.Rebalance calls still available).
	Rebalance RebalanceConfig
	// System configures the underlying core.System.
	System core.Config
}

// validate rejects configurations withDefaults would silently accept:
// negative sizes have no meaning and used to fall through to the
// channel/make calls with confusing panics.
func (c Config) validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Workers", c.Workers},
		{"QueueDepth", c.QueueDepth},
		{"UpdateQueue", c.UpdateQueue},
		{"BatchMax", c.BatchMax},
		{"CacheSize", c.CacheSize},
		{"EnqueueRetries", c.EnqueueRetries},
	} {
		if f.v < 0 {
			return fmt.Errorf("serve: Config.%s must be >= 0 (0 means default), got %d", f.name, f.v)
		}
	}
	if c.EnqueueTimeout < 0 {
		return fmt.Errorf("serve: Config.EnqueueTimeout must be >= 0 (0 means default), got %v", c.EnqueueTimeout)
	}
	if c.ServicePace < 0 {
		return fmt.Errorf("serve: Config.ServicePace must be >= 0 (0 means unpaced), got %v", c.ServicePace)
	}
	return c.Rebalance.validate()
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		if c.System.TCAMs != 0 {
			c.Workers = c.System.TCAMs
		} else {
			c.Workers = 4
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.UpdateQueue == 0 {
		c.UpdateQueue = 1024
	}
	if c.BatchMax == 0 {
		c.BatchMax = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.EnqueueTimeout == 0 {
		c.EnqueueTimeout = time.Second
	}
	if c.EnqueueRetries == 0 {
		c.EnqueueRetries = 32
	}
	c.Rebalance = c.Rebalance.withDefaults()
	return c
}

// enqueue backoff bounds: the first retry sleeps enqueueBackoffMin and
// each round doubles up to enqueueBackoffMax, re-checking worker health
// every round so a recovery or divert target opening up is picked up
// quickly.
const (
	enqueueBackoffMin = 20 * time.Microsecond
	enqueueBackoffMax = 5 * time.Millisecond
)

// Latency sampling masks (sample when counter & mask == 0). Snapshot
// lookups are ~20ns, so timing every one would more than double the hot
// path; 1/128 sampling keeps the added cost well under the 5% overhead
// budget while still collecting thousands of samples per second at
// realistic rates. Dispatches are ~3 orders of magnitude slower, so a
// denser 1/8 sample is safe; queue depths are read on the enqueue fast
// path and sampled 1/32.
const (
	lookupSampleMask   = 127
	dispatchSampleMask = 7
	queueSampleMask    = 31
)

// updateOp is one queued announce/withdraw with its completion channel.
// ctl ops carry no route change: they force the writer to publish a
// re-homed snapshot from the current worker health states. A ctl op may
// additionally carry a rebalancer cut plan, which the writer installs
// as its persistent plan before publishing.
type updateOp struct {
	kind tracegen.UpdateKind
	pfx  ip.Prefix
	hop  ip.NextHop
	ctl  bool
	plan []ip.Addr
	done chan opResult
}

type opResult struct {
	ttf update.TTF
	err error
}

// writerScratch holds the writer goroutine's reusable per-batch buffers.
// All of them are owned exclusively by the writer; anything a published
// snapshot must keep (the stale list) is copied out at exact size so the
// scratch capacity survives the batch.
type writerScratch struct {
	batch   []updateOp
	results []opResult
	stale   []ip.Prefix
	// insLast/delLast collect the last addresses of routes the batch
	// inserted into / deleted from the sorted mirror; sorted, they feed
	// the stride-index patch on the next snapshot.
	insLast []ip.Addr
	delLast []ip.Addr
	// hopPatches records next-hop changes to existing table positions.
	// The positions are only meaningful when the batch made no structural
	// change (no inserts or deletes shifting them) — exactly the case
	// where the writer patches hops into the live arena in place instead
	// of copying the table.
	hopPatches []hopPatch
	// down is the per-publication worker health mask (true = out of
	// service), read fresh from the worker states for every snapshot.
	down []bool
}

// hopPatch is one in-place next-hop change: table position -> new hop.
type hopPatch struct {
	pos int32
	hop uint32
}

// retiredSnap is a snapshot replaced by a newer publication, remembered
// with the epoch during which it was last current. Once every reader has
// pinned a strictly newer epoch the snapshot is unreachable and its
// arena reference can be dropped.
type retiredSnap struct {
	snap  *Snapshot
	epoch uint64
}

// arenaPoolMax bounds the writer's free-arena pool. Two arenas cover the
// steady-state ping-pong between the current and the just-retired
// snapshot; a couple more absorb reclamation lag under reader bursts.
const arenaPoolMax = 3

// Runtime is the concurrent forwarding service around a core.System.
//
// Reads are RCU-style: the compressed table lives in an immutable
// Snapshot behind an atomic pointer, so Lookup and the partition workers
// never take a lock and never block updates. Writes are single-writer:
// one goroutine owns the core.System (satisfying its concurrency
// contract), drains the bounded update queue in batches, applies each op
// through the full trie → TCAM → DRed pipeline with TTF accounting, and
// publishes the next snapshot with one atomic store.
type Runtime struct {
	cfg Config
	sys *core.System // owned by the writer goroutine after New
	// table is the writer's sorted mirror of the compressed table,
	// maintained incrementally from diff ops so a snapshot swap is a
	// memcpy instead of a full trie walk — the O(1)-update property of
	// the paper carried through to snapshot publication.
	table   []ip.Route
	ws      writerScratch
	snap    atomic.Pointer[Snapshot]
	updates chan updateOp
	workers []*worker
	m       metrics

	// ep is the epoch clock readers pin around snapshot access; arenas is
	// the writer's free pool of reclaimed arenas; retired the FIFO of
	// replaced snapshots awaiting epoch safety. arenas/retired are
	// writer-owned.
	ep      *epochs
	arenas  []*arena
	retired []retiredSnap
	// retiredLen/oldestEpoch mirror the retired list for Stats readers.
	retiredLen  atomic.Int64
	oldestEpoch atomic.Uint64
	// pinSeed spreads Snapshot() callers across epoch slots.
	pinSeed atomic.Uint64

	// cutPlan is the writer's persistent weighted cut plan (nil until the
	// rebalancer publishes one): every publication re-applies it, so the
	// weighted boundaries survive route churn between recuts. Writer-owned
	// after installation via a ctl op.
	cutPlan []ip.Addr

	// rb is the rebalancer's aggregate state (decayed traffic weights and
	// carve scratch), guarded by rebalanceMu so the periodic loop and
	// manual Rebalance calls serialize.
	rebalanceMu   sync.Mutex
	rb            rebalanceState
	rebalanceStop chan struct{}
	rebalanceWG   sync.WaitGroup

	inflight   atomic.Int64
	closed     atomic.Bool
	closeOnce  sync.Once
	writerDone chan struct{}
	workersWG  sync.WaitGroup
}

// New compresses routes, builds the underlying core.System, publishes
// snapshot version 1 and starts the writer and worker goroutines.
func New(routes []ip.Route, cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("serve: Workers must be >= 1, got %d", cfg.Workers)
	}
	sys, err := core.New(routes, cfg.System)
	if err != nil {
		return nil, err
	}
	base := sys.CompressedRoutes()
	// Headroom on the sorted mirror keeps the insert fast path from
	// reallocating for the first batches of an update storm.
	table := make([]ip.Route, len(base), len(base)+len(base)/8+64)
	copy(table, base)
	r := &Runtime{
		cfg:   cfg,
		sys:   sys,
		table: table,
		ws: writerScratch{
			batch:   make([]updateOp, 0, cfg.BatchMax),
			results: make([]opResult, 0, cfg.BatchMax),
		},
		updates:    make(chan updateOp, cfg.UpdateQueue),
		writerDone: make(chan struct{}),
	}
	r.ep = newEpochs()
	r.m.initHistograms(cfg.Workers)
	r.m.peakRoutes.Store(int64(len(base)))
	first := newSnapshot(1, sys.CompressedRoutes(), cfg.Workers, nil)
	first.ar.refs = 1
	r.snap.Store(first)
	r.workers = make([]*worker, cfg.Workers)
	for i := range r.workers {
		r.workers[i] = newWorker(i, r)
		r.workers[i].cacheVersion = 1
		r.workersWG.Add(1)
		go r.workers[i].run()
	}
	go r.writer()
	if cfg.Rebalance.Interval > 0 {
		r.rebalanceStop = make(chan struct{})
		r.rebalanceWG.Add(1)
		go r.rebalancer()
	}
	return r, nil
}

// Snapshot returns the current published snapshot — the RCU read-side
// handle. Callers can hold it across many lookups; its table positions
// never change under them (next hops may advance in place, each read
// returning a value that was published at some instant). Handing out
// the handle marks its arena escaped: the writer stops patching it in
// place and never recycles it, leaving reclamation to the GC. The pin
// around the load closes the race with a concurrent recycle decision —
// either the writer sees the pin and defers, or this load is ordered
// after the next publication and returns the newer snapshot.
func (r *Runtime) Snapshot() *Snapshot {
	slot := r.ep.enter(r.pinSeed.Add(1))
	s := r.snap.Load()
	s.ar.escaped.Store(true)
	slot.exit()
	return s
}

// Version returns the currently published snapshot version without
// escaping the snapshot (unlike Snapshot, this leaves the writer's
// in-place patch and arena recycling paths available).
func (r *Runtime) Version() uint64 { return r.snap.Load().Version }

// TableHash returns the published snapshot's canonical-table digest
// (Snapshot.CanonicalHash) without escaping the snapshot's arena. With
// no update in flight the value is exact, so polling it against an
// independently computed expectation is the scenario lab's
// time-to-converge probe.
func (r *Runtime) TableHash() uint64 {
	slot := r.ep.enter(r.pinSeed.Add(1))
	h := r.snap.Load().CanonicalHash()
	slot.exit()
	return h
}

// Lookup resolves addr on the snapshot path: an epoch pin, one atomic
// load plus one two-level indexed probe, no locks, regardless of
// concurrent updates. One in lookupSampleMask+1 calls is timed into the
// snapshot-lookup latency histogram; the sampling decision and the
// epoch-slot seed both ride the counter bump the untimed path pays
// anyway.
func (r *Runtime) Lookup(addr ip.Addr) (ip.NextHop, ip.Prefix, bool) {
	tick := r.m.snapshotLookups.Add(1)
	slot := r.ep.enter(uint64(tick))
	var start time.Time
	sampled := tick&lookupSampleMask == 0
	if sampled {
		start = time.Now()
	}
	hop, pfx, ok := r.snap.Load().Lookup(addr)
	slot.exit()
	if sampled {
		r.m.lookupLat.record(0, time.Since(start).Nanoseconds())
	}
	return hop, pfx, ok
}

// LookupBatch resolves addrs on the snapshot path with one epoch pin
// and one atomic load for the whole batch. Results are appended into
// out (reused when its capacity suffices) and returned with the
// answering snapshot's version.
func (r *Runtime) LookupBatch(addrs []ip.Addr, out []LookupResult) ([]LookupResult, uint64) {
	tick := r.m.snapshotLookups.Add(int64(len(addrs)))
	slot := r.ep.enter(uint64(tick))
	snap := r.snap.Load()
	out = snap.LookupBatch(addrs, out)
	slot.exit()
	return out, snap.Version
}

// Dispatch routes the lookup to its home partition worker over a bounded
// queue, mirroring the paper's Indexing Logic. A full home queue — or a
// failed/draining home worker — diverts the request to the least-loaded
// healthy worker (Adaptive Load Balancing Logic), where the worker's
// DRed-analog cache may answer it. Dispatch blocks until the request is
// served, bounded by the enqueue retry/timeout budget: a wedged runtime
// yields ErrEnqueueTimeout (or ErrNoHealthyWorkers), never a hang.
func (r *Runtime) Dispatch(addr ip.Addr) (Result, error) {
	if r.closed.Load() {
		return Result{}, ErrClosed
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.closed.Load() {
		return Result{}, ErrClosed
	}
	// Sampled end-to-end timing (enqueue to answer), classified by
	// outcome path once the result is back.
	var start time.Time
	sampled := r.m.dispatchTick.Add(1)&dispatchSampleMask == 0
	if sampled {
		start = time.Now()
	}
	home := r.snap.Load().Home(addr)
	done := getDone()
	if err := r.enqueue(lookupReq{addr: addr, home: home, done: done}); err != nil {
		putDone(done) // never enqueued, so the channel is clean
		return Result{}, err
	}
	r.m.dispatched.Add(1)
	res := <-done
	putDone(done)
	if sampled {
		ns := time.Since(start).Nanoseconds()
		switch {
		case res.CacheHit:
			r.m.dispatchCacheHit.record(res.Worker, ns)
		case res.Diverted:
			r.m.dispatchDivert.record(res.Worker, ns)
		default:
			r.m.dispatchHome.record(res.Worker, ns)
		}
	}
	return res, nil
}

// batchScratch holds one DispatchBatch call's reusable buffers, pooled
// across calls.
type batchScratch struct {
	homes   []int32
	counts  []int32
	offs    []int32
	ordered []ip.Addr
	perm    []int32
	res     []Result
	dones   []chan Result
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) size(workers, n int) {
	if cap(sc.counts) < workers {
		sc.counts = make([]int32, workers)
		sc.offs = make([]int32, workers)
		sc.dones = make([]chan Result, workers)
	}
	sc.counts = sc.counts[:workers]
	sc.offs = sc.offs[:workers]
	sc.dones = sc.dones[:workers]
	if cap(sc.homes) < n {
		sc.homes = make([]int32, n)
		sc.ordered = make([]ip.Addr, n)
		sc.perm = make([]int32, n)
		sc.res = make([]Result, n)
	}
	sc.homes = sc.homes[:n]
	sc.ordered = sc.ordered[:n]
	sc.perm = sc.perm[:n]
	sc.res = sc.res[:n]
}

// DispatchBatch routes a batch of lookups through the partition workers
// with one queue operation per worker: the addresses are grouped by home
// partition (a counting sort — improving worker-side cache locality and
// amortizing queue traffic), each group is served against a single
// snapshot load, and the results are scattered back into input order.
// Groups whose home queue is full divert whole to the least-loaded
// worker, like single dispatches. Results are written into out (reused
// when its capacity suffices).
func (r *Runtime) DispatchBatch(addrs []ip.Addr, out []Result) ([]Result, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.closed.Load() {
		return nil, ErrClosed
	}
	n := len(addrs)
	if cap(out) < n {
		out = make([]Result, n)
	} else {
		out = out[:n]
	}
	if n == 0 {
		return out, nil
	}
	start := time.Now() // whole-call latency, µs-scale: timed unsampled
	snap := r.snap.Load()
	nw := len(r.workers)
	sc := batchPool.Get().(*batchScratch)
	sc.size(nw, n)
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	for i, a := range addrs {
		h := int32(snap.Home(a))
		sc.homes[i] = h
		sc.counts[h]++
	}
	off := int32(0)
	for h := 0; h < nw; h++ {
		sc.offs[h] = off
		off += sc.counts[h]
	}
	for i, a := range addrs {
		h := sc.homes[i]
		j := sc.offs[h]
		sc.ordered[j] = a
		sc.perm[j] = int32(i)
		sc.offs[h] = j + 1
	}
	pending := 0
	var enqErr error
	for h := 0; h < nw; h++ {
		cnt := sc.counts[h]
		if cnt == 0 {
			continue
		}
		end := sc.offs[h] // advanced to the group's end by the scatter pass
		done := getDone()
		err := r.enqueue(lookupReq{
			home:  h,
			batch: sc.ordered[end-cnt : end],
			out:   sc.res[end-cnt : end],
			done:  done,
		})
		if err != nil {
			putDone(done) // this group never enqueued; its channel is clean
			enqErr = err
			break
		}
		sc.dones[pending] = done
		pending++
	}
	// Drain every enqueued group even when a later group failed:
	// returning a done channel to the pool with a send still pending
	// would poison an unrelated future dispatch.
	for i := 0; i < pending; i++ {
		<-sc.dones[i]
		putDone(sc.dones[i])
	}
	if enqErr != nil {
		batchPool.Put(sc)
		return nil, enqErr
	}
	r.m.dispatched.Add(int64(n))
	r.m.dispatchBatches.Add(1)
	for j := 0; j < n; j++ {
		out[sc.perm[j]] = sc.res[j]
	}
	batchPool.Put(sc)
	r.m.dispatchBatchLat.record(0, time.Since(start).Nanoseconds())
	return out, nil
}

// enqueue places req on its home worker's queue, diverting to the
// least-loaded healthy worker when the home queue is full or the home
// worker is out of service (the Adaptive Load Balancing Logic, extended
// with health awareness). When the home worker is down and the
// preferred divert target cannot accept either, any healthy worker with
// queue space serves as a last-resort target. Instead of blocking
// forever on a wedged queue, full queues are retried with exponential
// backoff bounded by Config.EnqueueRetries and Config.EnqueueTimeout;
// worker health is re-read every round so failures and recoveries take
// effect mid-wait.
func (r *Runtime) enqueue(req lookupReq) error {
	weight := int64(1)
	if req.batch != nil {
		weight = int64(len(req.batch))
	}
	var deadline time.Time
	backoff := enqueueBackoffMin
	for attempt := 0; ; attempt++ {
		home := req.home
		homeHealthy := r.workers[home].healthy()
		if homeHealthy && r.trySend(home, req, false, weight) {
			return nil
		}
		// Home full or out of service: divert to the least-loaded
		// healthy worker.
		if target := r.leastLoaded(home); target != home && r.trySend(target, req, true, weight) {
			return nil
		}
		if !homeHealthy {
			// Home is down and the locality-preferred divert target (if
			// any) could not accept. leastLoaded skips empty-range
			// cold-cache workers, so before backing off — and before
			// declaring the runtime dead — fall back to ANY healthy worker
			// with queue space. (This arm used to be reachable only when
			// leastLoaded found no target at all, so a full divert queue
			// sent dispatches into the retry loop while a healthy worker
			// sat idle.)
			anyHealthy := false
			for i, w := range r.workers {
				if i == home || !w.healthy() {
					continue
				}
				anyHealthy = true
				if r.trySend(i, req, true, weight) {
					return nil
				}
			}
			if !anyHealthy {
				return ErrNoHealthyWorkers
			}
		}
		// Every eligible queue is full: bounded backoff, not a block.
		now := time.Now()
		if attempt == 0 {
			deadline = now.Add(r.cfg.EnqueueTimeout)
			r.m.overflowBlocked.Add(weight)
		} else {
			r.m.enqueueRetries.Add(1)
		}
		if attempt >= r.cfg.EnqueueRetries || !now.Before(deadline) {
			r.m.enqueueTimeouts.Add(1)
			return fmt.Errorf("%w (home %d, %d attempts)", ErrEnqueueTimeout, req.home, attempt+1)
		}
		time.Sleep(backoff)
		if backoff < enqueueBackoffMax {
			backoff *= 2
		}
	}
}

// trySend attempts a non-blocking send of req to target's queue,
// marking it diverted when it is leaving its home partition. Accepted
// sends sample the target's queue depth (1 in queueSampleMask+1) into
// the queue-depth histogram — the enqueue-time congestion signal the
// divert decision itself acts on.
func (r *Runtime) trySend(target int, req lookupReq, diverted bool, weight int64) bool {
	req.diverted = diverted
	select {
	case r.workers[target].queue <- req:
		if diverted {
			r.m.diverted.Add(weight)
		}
		if r.m.queueTick.Add(1)&queueSampleMask == 0 {
			r.m.queueDepth.record(target, int64(len(r.workers[target].queue)))
		}
		return true
	default:
		return false
	}
}

// leastLoaded returns the healthy worker (other than home) with the
// shortest queue right now, or home itself when no other worker is
// eligible.
func (r *Runtime) leastLoaded(home int) int {
	snap := r.snap.Load()
	best, bestLen := home, int(^uint(0)>>1)
	for i, w := range r.workers {
		if i == home {
			continue
		}
		// Failed and draining workers accept no new lookups.
		if !w.healthy() {
			continue
		}
		// A worker with a zero-width home range and a cold cache has no
		// locality to offer a diverted lookup; skip it so tiny tables
		// don't shed load onto permanently-idle partitions.
		if snap.emptyHome(i) && w.cached.Load() == 0 {
			continue
		}
		if l := len(w.queue); l < bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// Announce queues a route announcement and blocks until the writer has
// applied it and published the snapshot that contains it: when Announce
// returns, every subsequent Lookup/Dispatch sees the new route.
func (r *Runtime) Announce(p ip.Prefix, hop ip.NextHop) (update.TTF, error) {
	return r.submit(updateOp{kind: tracegen.Announce, pfx: p, hop: hop})
}

// Withdraw queues a route withdrawal with the same visibility guarantee
// as Announce. Withdrawing an absent prefix is a no-op.
func (r *Runtime) Withdraw(p ip.Prefix) (update.TTF, error) {
	return r.submit(updateOp{kind: tracegen.Withdraw, pfx: p})
}

func (r *Runtime) submit(op updateOp) (update.TTF, error) {
	if r.closed.Load() {
		return update.TTF{}, ErrClosed
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.closed.Load() {
		return update.TTF{}, ErrClosed
	}
	op.done = make(chan opResult, 1)
	r.updates <- op
	maxInt64(&r.m.peakPending, int64(len(r.updates)))
	res := <-op.done
	return res.ttf, res.err
}

// maxInt64 raises *a to v if v is larger (CAS loop: submitters race).
func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// writer is the single goroutine that owns the core.System. It coalesces
// queued ops into batches (up to BatchMax), applies them through the
// update pipeline, swaps the snapshot and only then completes the ops —
// so a completed op is by construction visible to readers.
func (r *Runtime) writer() {
	defer close(r.writerDone)
	for op := range r.updates {
		batch := append(r.ws.batch[:0], op)
	fill:
		for len(batch) < r.cfg.BatchMax {
			select {
			case next, ok := <-r.updates:
				if !ok {
					break fill
				}
				batch = append(batch, next)
			default:
				break fill
			}
		}
		r.ws.batch = batch
		r.applyBatch(batch)
	}
}

// applyBatch runs one batch through the pipeline and publishes the
// resulting snapshot. Control (rehome) ops contribute no route change
// but force the publication to flush worker caches; every publication —
// ctl or not — recuts the partition bounds from the live worker health
// states, so a batch racing a failure re-homes on its own. A batch that
// changed nothing (and carried no ctl op) publishes no snapshot at all.
func (r *Runtime) applyBatch(batch []updateOp) {
	start := time.Now()
	results := r.ws.results[:0]
	stale := r.ws.stale[:0]
	r.ws.insLast = r.ws.insLast[:0]
	r.ws.delLast = r.ws.delLast[:0]
	r.ws.hopPatches = r.ws.hopPatches[:0]
	rehome := false
	changed := false
	for _, op := range batch {
		if op.ctl {
			rehome = true
			if op.plan != nil {
				r.cutPlan = op.plan
			}
			results = append(results, opResult{})
			continue
		}
		var (
			ttf  update.TTF
			diff onrtc.Diff
			err  error
		)
		switch op.kind {
		case tracegen.Announce:
			ttf, diff, err = r.sys.AnnounceDiff(op.pfx, op.hop)
			r.m.announces.Add(1)
		case tracegen.Withdraw:
			ttf, diff, err = r.sys.WithdrawDiff(op.pfx)
			r.m.withdraws.Add(1)
		default:
			err = fmt.Errorf("serve: unknown update kind %v", op.kind)
		}
		if err != nil {
			r.m.updateErrors.Add(1)
		}
		results = append(results, opResult{ttf: ttf, err: err})
		r.m.ttfTrie.add(ttf.Trie)
		r.m.ttfTCAM.add(ttf.TCAM)
		r.m.ttfDRed.add(ttf.DRed)
		if err == nil {
			// Per-op TTF distributions (successful ops only — an errored
			// op's zero TTF would just pile mass into the low buckets).
			r.m.ttf1Lat.record(0, int64(ttf.Trie))
			r.m.ttf2Lat.record(0, int64(ttf.TCAM))
			r.m.ttf3Lat.record(0, int64(ttf.DRed))
		}
		if len(diff.Ops) > 0 {
			changed = true
		}
		// Deleted or modified compressed prefixes are what worker caches
		// may hold stale; inserts are brand new and cannot be cached.
		for _, dop := range diff.Ops {
			if dop.Kind == onrtc.OpDelete || dop.Kind == onrtc.OpModify {
				stale = append(stale, dop.Route.Prefix)
			}
		}
		r.applyDiffToTable(diff.Ops)
	}
	r.ws.results = results
	r.ws.stale = stale
	r.m.batches.Add(1)
	r.m.batchOps.Add(int64(len(batch)))
	// Writer-owned peaks: plain store is fine, nobody else raises them.
	if n := int64(len(batch)); n > r.m.peakBatchOps.Load() {
		r.m.peakBatchOps.Store(n)
	}
	if n := int64(len(r.table)); n > r.m.peakRoutes.Load() {
		r.m.peakRoutes.Store(n)
	}
	if !changed && !rehome {
		// The batch made no structural or hop change to the compressed
		// table (all-error ops, withdraw-of-absent, re-announce of an
		// identical route) and requested no recut: publishing would memcpy
		// the whole table and bump the version for a byte-identical
		// snapshot, pushing every worker through a pointless cache sync.
		// Complete the ops against the already-current snapshot instead.
		r.m.noopBatches.Add(1)
		r.m.swapNs.add(float64(time.Since(start).Nanoseconds()))
		for i := range batch {
			batch[i].done <- results[i]
		}
		return
	}
	// The snapshot owns its stale list; hand it an exact-size copy so the
	// scratch slice stays reusable across batches.
	var staleOut []ip.Prefix
	if len(stale) > 0 {
		staleOut = append(make([]ip.Prefix, 0, len(stale)), stale...)
	}
	slices.Sort(r.ws.insLast)
	slices.Sort(r.ws.delLast)
	prev := r.snap.Load()
	r.publish(prev, staleOut, rehome)
	if rehome {
		r.m.rehomes.Add(1)
		// The flush publication invalidates the sketches along with the
		// caches (see worker.resetSketch).
		for _, w := range r.workers {
			w.resetSketch()
		}
	}
	swapNs := time.Since(start).Nanoseconds()
	r.m.swapNs.add(float64(swapNs))
	r.m.swapLat.record(0, swapNs)
	for i := range batch {
		batch[i].done <- results[i]
	}
}

// publish builds and swaps in prev's successor. Three shapes, cheapest
// first:
//
//   - Hop-only batches (no inserts or deletes — the common case under a
//     next-hop churn storm) patch the new hops into prev's arena with
//     atomic stores and publish a snapshot shell sharing the arena and
//     index outright: the table is never copied. Skipped once the arena
//     escaped through Runtime.Snapshot(), whose holders were promised
//     stable data.
//   - Structural batches rebuild the struct-of-arrays slabs in a
//     recycled (or fresh) arena from the writer's sorted mirror, then
//     patch the previous index through the insert/delete cuts when the
//     batch is small enough, rebuilding it otherwise.
//
// After the swap the writer advances the epoch clock, retires prev and
// reclaims whatever retirees every reader has provably moved past.
func (r *Runtime) publish(prev *Snapshot, stale []ip.Prefix, rehome bool) {
	version := prev.Version + 1
	structural := len(r.ws.insLast) + len(r.ws.delLast)
	var next *Snapshot
	switch {
	case structural == 0 && !prev.ar.escaped.Load():
		for _, p := range r.ws.hopPatches {
			atomic.StoreUint32(&prev.ar.hop[p.pos], p.hop)
		}
		next = prev.clonePatched(version, r.cfg.Workers, stale, r.downMask(), r.cutPlan, rehome)
		r.m.inPlacePatches.Add(1)
	default:
		ar := r.takeArena(len(r.table))
		rng, hop := ar.routeSlabs(len(r.table))
		fillSlabs(rng, hop, r.table)
		next = shellOnArena(ar, version, r.cfg.Workers, stale, r.downMask(), r.cutPlan, rehome)
		switch {
		case len(r.table) < strideMinRoutes:
			// Small table: binary-search fallback needs no index.
		case !prev.index.empty() && structural <= stridePatchMax:
			next.index = patchIndexInto(ar, prev.index, rng, r.ws.insLast, r.ws.delLast, len(r.table))
			r.m.indexPatches.Add(1)
		default:
			next.index = buildIndexInto(ar, rng)
			r.m.indexRebuilds.Add(1)
		}
	}
	next.ar.refs++
	r.snap.Store(next)
	// Advance strictly after the store: a reader pinning the new epoch is
	// then guaranteed (seq-cst) to load next or later, so prev becomes
	// reclaimable once every active pin exceeds the epoch it was current
	// in.
	epoch := r.ep.advance() - 1
	r.retired = append(r.retired, retiredSnap{snap: prev, epoch: epoch})
	r.reclaim()
}

// takeArena pops a pooled arena able to hold n routes (any pooled arena
// failing that — routeSlabs regrows its slabs in place), or allocates a
// fresh one.
func (r *Runtime) takeArena(n int) *arena {
	for i, a := range r.arenas {
		if a.fits(n) {
			last := len(r.arenas) - 1
			r.arenas[i] = r.arenas[last]
			r.arenas[last] = nil
			r.arenas = r.arenas[:last]
			return a
		}
	}
	if last := len(r.arenas) - 1; last >= 0 {
		a := r.arenas[last]
		r.arenas[last] = nil
		r.arenas = r.arenas[:last]
		return a
	}
	return newArena(n)
}

// reclaim drains the retired-snapshot FIFO up to the first entry some
// reader may still hold. A reclaimed snapshot drops its arena reference;
// an arena with no snapshots left is recycled into the writer pool —
// unless a Snapshot() caller escaped it, in which case the GC owns it.
func (r *Runtime) reclaim() {
	n := 0
	for n < len(r.retired) && r.ep.safeBefore(r.retired[n].epoch) {
		a := r.retired[n].snap.ar
		a.refs--
		// The escaped check must follow the epoch check: a racing
		// Snapshot() caller either pinned an epoch the safeBefore scan saw
		// (deferring this reclaim) or was ordered after the next
		// publication and escaped that snapshot's arena instead.
		if a.refs == 0 && !a.escaped.Load() && len(r.arenas) < arenaPoolMax {
			r.arenas = append(r.arenas, a)
			r.m.arenasRecycled.Add(1)
		}
		n++
	}
	if n > 0 {
		r.retired = append(r.retired[:0], r.retired[n:]...)
	}
	r.retiredLen.Store(int64(len(r.retired)))
	if len(r.retired) > 0 {
		r.oldestEpoch.Store(r.retired[0].epoch)
	} else {
		r.oldestEpoch.Store(0)
	}
}

// applyDiffToTable replays compressed-table diff ops onto the writer's
// sorted mirror. The slice stays sorted in trie inorder (ip.Prefix
// Compare order) throughout, so each op is one binary search plus one
// memmove — O(log M + M) with a tiny constant, versus the O(M) trie walk
// and node-chasing a full re-export would cost per batch. Structural
// changes (real inserts and deletes) are recorded in the writer scratch
// for the stride-index patch. The serve tests cross-check the mirror
// against core.CompressedRoutes after churn.
func (r *Runtime) applyDiffToTable(ops []onrtc.Op) {
	for _, op := range ops {
		p := op.Route.Prefix
		i := sort.Search(len(r.table), func(i int) bool {
			return r.table[i].Prefix.Compare(p) >= 0
		})
		exact := i < len(r.table) && r.table[i].Prefix == p
		switch op.Kind {
		case onrtc.OpInsert, onrtc.OpModify:
			if exact {
				r.table[i].NextHop = op.Route.NextHop
				// Position i is the patch target if the whole batch turns out
				// hop-only; any insert or delete invalidates the recorded
				// positions and forces the structural publish path.
				r.ws.hopPatches = append(r.ws.hopPatches, hopPatch{pos: int32(i), hop: uint32(op.Route.NextHop)})
			} else {
				r.table = append(r.table, ip.Route{})
				copy(r.table[i+1:], r.table[i:])
				r.table[i] = op.Route
				r.ws.insLast = append(r.ws.insLast, p.Last())
			}
		case onrtc.OpDelete:
			if exact {
				r.table = append(r.table[:i], r.table[i+1:]...)
				r.ws.delLast = append(r.ws.delLast, p.Last())
			}
		}
	}
}

// downMask snapshots the worker health states into the writer's scratch
// mask (true = out of service). It returns nil when every worker is
// healthy, which keeps the all-healthy snapshotShell path allocation-
// and branch-identical to the pre-failure-handling code.
func (r *Runtime) downMask() []bool {
	if cap(r.ws.down) < len(r.workers) {
		r.ws.down = make([]bool, len(r.workers))
	}
	down := r.ws.down[:len(r.workers)]
	any := false
	for i, w := range r.workers {
		d := !w.healthy()
		down[i] = d
		any = any || d
	}
	if !any {
		return nil
	}
	return down
}

// Close drains and stops the runtime: new calls fail with ErrClosed,
// in-flight lookups and queued updates complete, then the writer and all
// workers exit. Close is idempotent and safe to call concurrently.
func (r *Runtime) Close() {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		// Stop the periodic rebalancer first: a recut mid-close would race
		// the update-channel close below. An in-progress Rebalance holds an
		// inflight token, so the writer (still running) completes it before
		// the drain loop can finish.
		if r.rebalanceStop != nil {
			close(r.rebalanceStop)
			r.rebalanceWG.Wait()
		}
		// All submitters that got past the closed re-check hold an
		// inflight token until their op is answered; once the count
		// drains, nobody can send on the channels we are about to close.
		// (An atomic counter instead of a WaitGroup: Add-from-zero racing
		// Wait is disallowed for WaitGroups, and late callers here bounce
		// off the closed flag rather than joining the wait.)
		for r.inflight.Load() != 0 {
			time.Sleep(50 * time.Microsecond)
		}
		close(r.updates)
		<-r.writerDone
		for _, w := range r.workers {
			close(w.queue)
		}
		r.workersWG.Wait()
	})
}

// Stats exports a point-in-time snapshot of the runtime's metrics.
func (r *Runtime) Stats() Stats {
	// The arena-footprint reads race writer-side slab regrowth once the
	// snapshot is retired and recycled, so they sit under an epoch pin
	// like any other arena access.
	slot := r.ep.enter(r.pinSeed.Add(1))
	snap := r.snap.Load()
	version := snap.Version
	routes := snap.Len()
	indexed := snap.Indexed()
	indexBytes := snap.IndexBytes()
	subArrays := snap.SubArrays()
	heapBytes := snap.HeapBytes()
	tableHash := snap.CanonicalHash()
	slot.exit()
	epoch := r.ep.global.Load()
	var lag uint64
	if oldest := r.oldestEpoch.Load(); oldest != 0 && epoch > oldest {
		lag = epoch - oldest
	}
	st := Stats{
		SnapshotVersion:    version,
		Routes:             routes,
		Indexed:            indexed,
		IndexBytes:         indexBytes,
		IndexSubArrays:     subArrays,
		SnapshotHeapBytes:  heapBytes,
		Epoch:              epoch,
		EpochLag:           lag,
		RetiredSnapshots:   int(r.retiredLen.Load()),
		InPlacePatches:     r.m.inPlacePatches.Load(),
		IndexPatches:       r.m.indexPatches.Load(),
		IndexRebuilds:      r.m.indexRebuilds.Load(),
		ArenasRecycled:     r.m.arenasRecycled.Load(),
		Workers:            r.cfg.Workers,
		SnapshotLookups:    r.m.snapshotLookups.Load(),
		Dispatched:         r.m.dispatched.Load(),
		DispatchBatches:    r.m.dispatchBatches.Load(),
		Diverted:           r.m.diverted.Load(),
		OverflowBlocked:    r.m.overflowBlocked.Load(),
		CacheHits:          r.m.cacheHits.Load(),
		CacheMisses:        r.m.cacheMisses.Load(),
		CacheFlushes:       r.m.cacheFlushes.Load(),
		CacheInvalidations: r.m.cacheInvalid.Load(),
		WorkerServed:       make([]int64, len(r.workers)),
		Announces:          r.m.announces.Load(),
		Withdraws:          r.m.withdraws.Load(),
		UpdateErrors:       r.m.updateErrors.Load(),
		Batches:            r.m.batches.Load(),
		NoopBatches:        r.m.noopBatches.Load(),
		BatchOps:           r.m.batchOps.Load(),
		PendingUpdates:     len(r.updates),
		TableHash:          tableHash,
		PeakRoutes:         r.m.peakRoutes.Load(),
		PeakPendingUpdates: r.m.peakPending.Load(),
		PeakBatchOps:       r.m.peakBatchOps.Load(),
		TTFTotals: update.TTF{
			Trie: r.m.ttfTrie.load(),
			TCAM: r.m.ttfTCAM.load(),
			DRed: r.m.ttfDRed.load(),
		},
		SwapNs:          r.m.swapNs.load(),
		WorkerHealth:    make([]string, len(r.workers)),
		Rehomes:         r.m.rehomes.Load(),
		EnqueueRetries:  r.m.enqueueRetries.Load(),
		EnqueueTimeouts: r.m.enqueueTimeouts.Load(),
		WorkerPanics:    r.m.workerPanics.Load(),
		Rebalance: RebalanceStats{
			Enabled:             r.cfg.Rebalance.Interval > 0,
			Recuts:              r.m.rebalances.Load(),
			Skips:               r.m.rebalanceSkips.Load(),
			MovedRoutes:         r.m.rebalanceMoved.Load(),
			LastImbalanceBefore: r.m.rebalanceImbBefore.load(),
			LastImbalanceAfter:  r.m.rebalanceImbAfter.load(),
			SketchSamples:       r.m.sketchSamples.Load(),
		},
		Latency: LatencyStats{
			SnapshotLookup:   r.m.lookupLat.summary(),
			DispatchHome:     r.m.dispatchHome.summary(),
			DispatchDiverted: r.m.dispatchDivert.summary(),
			DispatchCacheHit: r.m.dispatchCacheHit.summary(),
			DispatchBatch:    r.m.dispatchBatchLat.summary(),
			TTFTrie:          r.m.ttf1Lat.summary(),
			TTFTCAM:          r.m.ttf2Lat.summary(),
			TTFDRed:          r.m.ttf3Lat.summary(),
			SnapshotSwap:     r.m.swapLat.summary(),
			QueueDepth:       r.m.queueDepth.summary(),
		},
	}
	for i, w := range r.workers {
		st.WorkerServed[i] = w.served.Load()
		state := WorkerState(w.state.Load())
		st.WorkerHealth[i] = state.String()
		if state != WorkerHealthy {
			st.FailedWorkers++
		}
	}
	return st
}

// donePool recycles reply channels across dispatches.
var donePool = sync.Pool{New: func() any { return make(chan Result, 1) }}

func getDone() chan Result  { return donePool.Get().(chan Result) }
func putDone(c chan Result) { donePool.Put(c) }
