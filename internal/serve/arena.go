package serve

import (
	"sync/atomic"
	"unsafe"
)

// arena is the backing store for one snapshot's bulk data: the
// struct-of-arrays route table (packed ranges + next hops) and the
// two-level stride index. Everything readers touch per lookup lives in
// four flat, pointer-free, cache-line-aligned slabs, so the GC sees a
// handful of large allocations instead of millions of route entries,
// and a retired snapshot's memory can be recycled wholesale by the
// writer once epoch reclamation proves no reader can still see it.
//
// Ownership: refs counts the snapshots currently built on this arena
// (hop-only in-place publications share one arena across versions) and
// is touched only by the writer goroutine. escaped is set when a
// snapshot on this arena is handed out through Runtime.Snapshot(): such
// a handle may be held indefinitely, so an escaped arena is never
// mutated in place or recycled — the GC reclaims it like any other
// allocation once the handles die.
type arena struct {
	rng  []uint64 // packed route ranges: last<<32 | first, ascending
	hop  []uint32 // next hops, parallel to rng; atomic access (in-place patch)
	l1   []uint64 // first-level index: 2^16+1 tagged entries (subRef<<32 | cut)
	subs []uint16 // second-level slab: 256-entry relative-cut sub-arrays for hot buckets

	refs    int
	escaped atomic.Bool
}

// alignedUint64 and alignedUint32 allocate n-element slices whose first
// element sits on a cache-line boundary, with the over-allocation kept
// as spare capacity for recycling. The Go allocator already page-aligns
// large slabs; the explicit alignment makes the cache-line contract
// hold for every slab size.
func alignedUint64(n int) []uint64 {
	if n == 0 {
		return nil
	}
	buf := make([]uint64, n+cacheLine/8)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % cacheLine; rem != 0 {
		off = int((cacheLine - rem) / 8)
	}
	return buf[off : off+n]
}

func alignedUint32(n int) []uint32 {
	if n == 0 {
		return nil
	}
	buf := make([]uint32, n+cacheLine/4)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % cacheLine; rem != 0 {
		off = int((cacheLine - rem) / 4)
	}
	return buf[off : off+n]
}

func alignedUint16(n int) []uint16 {
	if n == 0 {
		return nil
	}
	buf := make([]uint16, n+cacheLine/2)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % cacheLine; rem != 0 {
		off = int((cacheLine - rem) / 2)
	}
	return buf[off : off+n]
}

// newArena allocates an arena able to hold routeCap routes. Index slabs
// are allocated lazily by ensureL1/ensureSubs, since small tables never
// build an index.
func newArena(routeCap int) *arena {
	return &arena{
		rng: alignedUint64(routeCap)[:0],
		hop: alignedUint32(routeCap)[:0],
	}
}

// fits reports whether the arena can host a table of n routes and a
// second-level slab of subWords words without growing the route slabs.
// Used by the writer's recycling pool to pick an arena for the next
// snapshot; sub slabs may still grow on demand.
func (a *arena) fits(n int) bool {
	return cap(a.rng) >= n && cap(a.hop) >= n
}

// routeSlabs resizes and returns the route storage for n routes.
func (a *arena) routeSlabs(n int) ([]uint64, []uint32) {
	if cap(a.rng) < n {
		a.rng = alignedUint64(n + n/8 + 64)
	}
	if cap(a.hop) < n {
		a.hop = alignedUint32(n + n/8 + 64)
	}
	a.rng = a.rng[:n]
	a.hop = a.hop[:n]
	return a.rng, a.hop
}

// ensureL1 returns the first-level index slab (strideBuckets+1 tagged
// entries), allocating it on first use.
func (a *arena) ensureL1() []uint64 {
	if cap(a.l1) < strideBuckets+1 {
		a.l1 = alignedUint64(strideBuckets + 1)
	}
	a.l1 = a.l1[:strideBuckets+1]
	return a.l1
}

// ensureSubs returns a second-level slab of at least n entries (n must
// be a multiple of subEntries), reusing recycled capacity when it
// suffices. Growth does not preserve contents.
func (a *arena) ensureSubs(n int) []uint16 {
	if cap(a.subs) < n {
		a.subs = alignedUint16(n + subSpare*subEntries)
	}
	a.subs = a.subs[:n]
	return a.subs
}

// subCap returns how many sub-arrays the slab can hold without growing.
func (a *arena) subCap() int { return cap(a.subs) / subEntries }

// bytes is the arena's total slab footprint.
func (a *arena) bytes() int {
	return cap(a.rng)*8 + cap(a.hop)*4 + cap(a.l1)*8 + cap(a.subs)*2
}
