package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"clue/internal/ip"
	"clue/internal/tracegen"
)

// TestConcurrentReadersDuringUpdateStorm is the concurrency-contract
// regression test for the serve runtime (and, transitively, for wrapping
// core.System correctly): at least 4 reader goroutines hammer the
// snapshot and dispatch paths while two writers replay a live
// announce/withdraw storm through the batching writer. Run under
// `go test -race` this proves the RCU read side never races the update
// pipeline; the final consistency check proves readers converge on the
// writer's table.
func TestConcurrentReadersDuringUpdateStorm(t *testing.T) {
	_, routes := testRoutes(t, 5000, 31)
	rt, err := New(routes, Config{Workers: 4, QueueDepth: 64, BatchMax: 16})
	if err != nil {
		t.Fatal(err)
	}

	gen, err := tracegen.NewUpdateGen(tracegenFIB(t, routes), tracegen.UpdateConfig{
		Seed: 31, Messages: 4000, WithdrawFrac: 0.3, NewPrefixFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := gen.NextN(4000)

	var (
		stop     atomic.Bool
		lookups  atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	probe := func(g int64) ip.Addr {
		r := routes[int(g)%len(routes)]
		return r.Prefix.First()
	}
	// 4 snapshot readers + 2 dispatch readers — all racing the writer.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			for i := int64(0); !stop.Load(); i++ {
				a := probe(g*7919 + i)
				if _, _, ok := rt.Lookup(a); !ok {
					// A withdraw can legitimately empty this range; only
					// count, never fail here — consistency is checked
					// against the writer's table after the storm.
					_ = ok
				}
				lookups.Add(1)
			}
		}(int64(g))
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			for i := int64(0); !stop.Load(); i++ {
				if _, err := rt.Dispatch(probe(g*104729 + i)); err != nil {
					failures.Add(1)
					return
				}
				lookups.Add(1)
			}
		}(int64(g))
	}
	// One batch-dispatch reader racing the same storm through the
	// grouped per-worker queue path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]ip.Addr, 64)
		var out []Result
		for i := int64(0); !stop.Load(); i++ {
			for j := range batch {
				batch[j] = probe(i*64 + int64(j))
			}
			var err error
			if out, err = rt.DispatchBatch(batch, out); err != nil {
				failures.Add(1)
				return
			}
			lookups.Add(int64(len(batch)))
		}
	}()
	// Two writers split the storm; the runtime serialises them through
	// the single writer goroutine.
	var uwg sync.WaitGroup
	for w := 0; w < 2; w++ {
		uwg.Add(1)
		go func(part []tracegen.Update) {
			defer uwg.Done()
			for _, u := range part {
				var err error
				switch u.Kind {
				case tracegen.Announce:
					_, err = rt.Announce(u.Prefix, u.Hop)
				case tracegen.Withdraw:
					_, err = rt.Withdraw(u.Prefix)
				}
				if err != nil {
					failures.Add(1)
					return
				}
			}
		}(stream[w*2000 : (w+1)*2000])
	}
	uwg.Wait()
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d reader/writer failures during storm", failures.Load())
	}
	if lookups.Load() == 0 {
		t.Fatal("readers performed no lookups")
	}
	st := rt.Stats()
	if got := st.Announces + st.Withdraws; got != 4000 {
		t.Fatalf("applied %d updates, want 4000", got)
	}
	if st.UpdateErrors != 0 {
		t.Fatalf("update errors: %d", st.UpdateErrors)
	}

	// Quiesce, then cross-check reader state against the writer's table:
	// the published snapshot must be byte-identical to the compressed
	// table, and the underlying system's own invariants must hold.
	rt.Close()
	want := rt.sys.CompressedRoutes()
	got := rt.Snapshot().Routes()
	if len(want) != len(got) {
		t.Fatalf("snapshot %d routes, system %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("snapshot[%d] = %v, system has %v", i, got[i], want[i])
		}
	}
	probes := make([]ip.Addr, 0, 512)
	for i := 0; i < 512; i++ {
		probes = append(probes, probe(int64(i)*31))
	}
	if err := rt.sys.Verify(probes); err != nil {
		t.Fatalf("system invariants broken after storm: %v", err)
	}
}
