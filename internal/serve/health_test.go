package serve

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"clue/internal/ip"
)

func TestConfigValidate(t *testing.T) {
	_, routes := testRoutes(t, 100, 31)
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" = config is valid
	}{
		{"defaults", Config{}, ""},
		{"explicit values", Config{Workers: 2, QueueDepth: 8, BatchMax: 4}, ""},
		{"negative workers", Config{Workers: -1}, "Workers"},
		{"negative queue depth", Config{QueueDepth: -4}, "QueueDepth"},
		{"negative update queue", Config{UpdateQueue: -1}, "UpdateQueue"},
		{"negative batch max", Config{BatchMax: -64}, "BatchMax"},
		{"negative cache size", Config{CacheSize: -2}, "CacheSize"},
		{"negative enqueue retries", Config{EnqueueRetries: -1}, "EnqueueRetries"},
		{"negative enqueue timeout", Config{EnqueueTimeout: -time.Second}, "EnqueueTimeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := New(routes, tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				rt.Close()
				return
			}
			if err == nil {
				rt.Close()
				t.Fatalf("New accepted %+v, want error mentioning %q", tc.cfg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFailWorkerRehomesRange(t *testing.T) {
	fib, routes := testRoutes(t, 4000, 41)
	rt, err := New(routes, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if err := rt.FailWorker(1); err != nil {
		t.Fatalf("FailWorker(1): %v", err)
	}
	if st := rt.WorkerStates(); st[1] != WorkerFailed {
		t.Fatalf("worker 1 state = %v, want failed", st[1])
	}
	snap := rt.Snapshot()
	if !snap.flushCaches {
		t.Fatal("re-homed snapshot does not flush caches")
	}

	// The failed worker's range is gone and the survivors' shares are an
	// exact even count split of the disjoint table.
	counts := make([]int, 4)
	for _, r := range snap.Routes() {
		counts[snap.Home(r.Prefix.First())]++
	}
	if counts[1] != 0 {
		t.Fatalf("failed worker still homes %d routes", counts[1])
	}
	min, max := counts[0], counts[0]
	for _, c := range []int{counts[2], counts[3]} {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || max-min > 1 {
		t.Fatalf("survivor split %v not even", counts)
	}

	// Dispatches keep answering correctly and never land on the failed
	// worker.
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 2000; i++ {
		a := ip.Addr(rng.Uint32())
		res, err := rt.Dispatch(a)
		if err != nil {
			t.Fatalf("Dispatch(%s): %v", a, err)
		}
		if res.Worker == 1 {
			t.Fatalf("Dispatch(%s) served by failed worker", a)
		}
		want, _ := fib.Lookup(a, nil)
		if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
			t.Fatalf("Dispatch(%s) = %+v want %d", a, res, want)
		}
	}
	if st := rt.Stats(); st.Rehomes < 1 || st.FailedWorkers != 1 {
		t.Fatalf("stats after fail: rehomes=%d failed=%d", st.Rehomes, st.FailedWorkers)
	}

	// Recovery restores the four-way split.
	if err := rt.RecoverWorker(1); err != nil {
		t.Fatalf("RecoverWorker(1): %v", err)
	}
	snap = rt.Snapshot()
	counts = make([]int, 4)
	for _, r := range snap.Routes() {
		counts[snap.Home(r.Prefix.First())]++
	}
	for w, c := range counts {
		if c == 0 {
			t.Fatalf("worker %d homes no routes after recovery: %v", w, counts)
		}
	}
	if st := rt.Stats(); st.FailedWorkers != 0 {
		t.Fatalf("failed workers after recovery: %d", st.FailedWorkers)
	}
}

func TestFailRecoverWorkerErrors(t *testing.T) {
	_, routes := testRoutes(t, 500, 42)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	for _, id := range []int{-1, 2, 99} {
		if err := rt.FailWorker(id); !errors.Is(err, ErrUnknownWorker) {
			t.Fatalf("FailWorker(%d) = %v, want ErrUnknownWorker", id, err)
		}
		if err := rt.RecoverWorker(id); !errors.Is(err, ErrUnknownWorker) {
			t.Fatalf("RecoverWorker(%d) = %v, want ErrUnknownWorker", id, err)
		}
	}
	if err := rt.RecoverWorker(0); !errors.Is(err, ErrWorkerState) {
		t.Fatalf("recover-when-healthy = %v, want ErrWorkerState", err)
	}
	if err := rt.FailWorker(0); err != nil {
		t.Fatalf("FailWorker(0): %v", err)
	}
	if err := rt.FailWorker(0); !errors.Is(err, ErrWorkerState) {
		t.Fatalf("double-fail = %v, want ErrWorkerState", err)
	}
	// Operator action never takes down the last healthy worker.
	if err := rt.FailWorker(1); !errors.Is(err, ErrWorkerState) {
		t.Fatalf("fail-last-healthy = %v, want ErrWorkerState", err)
	}
	if err := rt.RecoverWorker(0); err != nil {
		t.Fatalf("RecoverWorker(0): %v", err)
	}
}

// wedgeWorker fully wedges worker id: one stall parks its goroutine,
// then further stalls fill every queue slot, so subsequent enqueues to it
// find the queue full for as long as the wedge holds. The returned
// release un-wedges everything and is idempotent.
func wedgeWorker(t *testing.T, rt *Runtime, id int) (release func()) {
	t.Helper()
	var rels []func()
	r, err := rt.StallWorker(id)
	if err != nil {
		t.Fatalf("StallWorker(%d): %v", id, err)
	}
	rels = append(rels, r)
	// Wait for the goroutine to dequeue the parking stall, then fill the
	// now-empty queue.
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.workers[id].queue) > 0 {
		if !time.Now().Before(deadline) {
			t.Fatalf("worker %d never dequeued the parking stall", id)
		}
		time.Sleep(100 * time.Microsecond)
	}
	for {
		r, err := rt.StallWorker(id)
		if err != nil {
			break // queue full: the wedge is complete
		}
		rels = append(rels, r)
	}
	return func() {
		for _, r := range rels {
			r()
		}
	}
}

// waitState polls until worker id reaches want (panic recovery marks the
// state from the worker goroutine, so tests must wait for it).
func waitState(t *testing.T, rt *Runtime, id int, want WorkerState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.WorkerStates()[id] == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("worker %d never reached %v (now %v)", id, want, rt.WorkerStates()[id])
}

func TestWorkerPanicRecovered(t *testing.T) {
	fib, routes := testRoutes(t, 3000, 43)
	rt, err := New(routes, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if err := rt.PoisonWorker(2); err != nil {
		t.Fatalf("PoisonWorker(2): %v", err)
	}
	waitState(t, rt, 2, WorkerFailed)
	if st := rt.Stats(); st.WorkerPanics < 1 {
		t.Fatalf("worker panics = %d, want >= 1", st.WorkerPanics)
	}

	// The panicking worker's goroutine survived: dispatches route around
	// it and stay correct.
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 1000; i++ {
		a := ip.Addr(rng.Uint32())
		res, err := rt.Dispatch(a)
		if err != nil {
			t.Fatalf("Dispatch(%s): %v", a, err)
		}
		if res.Worker == 2 {
			t.Fatalf("Dispatch(%s) served by panicked worker", a)
		}
		want, _ := fib.Lookup(a, nil)
		if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
			t.Fatalf("Dispatch(%s) = %+v want %d", a, res, want)
		}
	}

	// ...and is recoverable without respawning anything.
	if err := rt.RecoverWorker(2); err != nil {
		t.Fatalf("RecoverWorker(2): %v", err)
	}
	snap := rt.Snapshot()
	var back ip.Addr
	found := false
	for i := 0; i < 1<<16 && !found; i++ {
		a := ip.Addr(rng.Uint32())
		if snap.Home(a) == 2 {
			back, found = a, true
		}
	}
	if !found {
		t.Fatal("no address homes to recovered worker")
	}
	res, err := rt.Dispatch(back)
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != 2 {
		t.Fatalf("recovered worker not serving: %+v", res)
	}
}

func TestPanicOnBatchStillAnswers(t *testing.T) {
	fib, routes := testRoutes(t, 3000, 44)
	rt, err := New(routes, Config{Workers: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Queue a poison directly behind a batch request so the worker is
	// mid-backlog when it panics; the batch queued after the poison must
	// still be answered (by the panic fallback or the drained backlog).
	if err := rt.PoisonWorker(0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	addrs := make([]ip.Addr, 256)
	for i := range addrs {
		addrs[i] = ip.Addr(rng.Uint32())
	}
	out, err := rt.DispatchBatch(addrs, nil)
	if err != nil {
		t.Fatalf("DispatchBatch: %v", err)
	}
	for i, res := range out {
		want, _ := fib.Lookup(addrs[i], nil)
		if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
			t.Fatalf("batch[%d] %s = %+v want %d", i, addrs[i], res, want)
		}
	}
	waitState(t, rt, 0, WorkerFailed)
}

func TestDispatchEnqueueTimeout(t *testing.T) {
	fib, routes := testRoutes(t, 2000, 45)
	rt, err := New(routes, Config{
		Workers:        2,
		QueueDepth:     1,
		EnqueueRetries: 3,
		EnqueueTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Wedge both workers: park each goroutine and fill each queue, so
	// every enqueue attempt finds every queue full.
	rel0 := wedgeWorker(t, rt, 0)
	defer rel0()
	rel1 := wedgeWorker(t, rt, 1)
	defer rel1()

	if _, err := rt.Dispatch(ip.MustParseAddr("10.0.0.1")); !errors.Is(err, ErrEnqueueTimeout) {
		t.Fatalf("Dispatch on wedged runtime = %v, want ErrEnqueueTimeout", err)
	}
	if _, err := rt.DispatchBatch([]ip.Addr{ip.MustParseAddr("10.0.0.2")}, nil); !errors.Is(err, ErrEnqueueTimeout) {
		t.Fatalf("DispatchBatch on wedged runtime = %v, want ErrEnqueueTimeout", err)
	}
	st := rt.Stats()
	if st.EnqueueTimeouts < 2 || st.EnqueueRetries < 1 {
		t.Fatalf("timeout accounting: timeouts=%d retries=%d", st.EnqueueTimeouts, st.EnqueueRetries)
	}
	// The snapshot path is unaffected by wedged workers.
	if _, _, ok := rt.Lookup(routes[0].Prefix.First()); !ok {
		t.Fatal("snapshot lookup failed under wedged workers")
	}

	// After release, the pooled done channels must be clean: a channel
	// returned with a pending send would deliver a stale Result to an
	// unrelated future dispatch.
	rel0()
	rel1()
	rng := rand.New(rand.NewSource(45))
	for i := 0; i < 200; i++ {
		a := ip.Addr(rng.Uint32())
		res, err := rt.Dispatch(a)
		if err != nil {
			t.Fatalf("Dispatch after release: %v", err)
		}
		want, _ := fib.Lookup(a, nil)
		if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
			t.Fatalf("Dispatch(%s) = %+v want %d", a, res, want)
		}
	}
	addrs := make([]ip.Addr, 300)
	for i := range addrs {
		addrs[i] = ip.Addr(rng.Uint32())
	}
	out, err := rt.DispatchBatch(addrs, nil)
	if err != nil {
		t.Fatalf("DispatchBatch after release: %v", err)
	}
	for i, res := range out {
		want, _ := fib.Lookup(addrs[i], nil)
		if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
			t.Fatalf("batch[%d] = %+v want %d", i, res, want)
		}
	}
}

func TestDispatchBatchDrainsDonesOnPartialFailure(t *testing.T) {
	fib, routes := testRoutes(t, 2000, 46)
	rt, err := New(routes, Config{
		Workers:        2,
		QueueDepth:     2,
		EnqueueRetries: 3,
		EnqueueTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	snap := rt.Snapshot()
	rng := rand.New(rand.NewSource(46))
	var a0, a1 ip.Addr
	got0, got1 := false, false
	for i := 0; i < 1<<16 && !(got0 && got1); i++ {
		a := ip.Addr(rng.Uint32())
		switch snap.Home(a) {
		case 0:
			a0, got0 = a, true
		case 1:
			a1, got1 = a, true
		}
	}
	if !got0 || !got1 {
		t.Fatal("could not find addresses for both partitions")
	}

	// Wedge worker 0 completely and park worker 1 with one queue slot
	// still free. The batch's worker-0 group diverts into that free slot;
	// the worker-1 group then finds every queue full and times out with
	// the first group still pending — the drain path under test.
	rel0 := wedgeWorker(t, rt, 0)
	defer rel0()
	r1park, err := rt.StallWorker(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r1park()
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.workers[1].queue) > 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("worker 1 never dequeued the parking stall")
		}
		time.Sleep(100 * time.Microsecond)
	}
	r1slot, err := rt.StallWorker(1) // occupies 1 of 2 slots, leaving 1 free
	if err != nil {
		t.Fatal(err)
	}
	defer r1slot()

	errc := make(chan error, 1)
	go func() {
		_, err := rt.DispatchBatch([]ip.Addr{a0, a1}, nil)
		errc <- err
	}()
	// Let the batch hit its timeout, then un-wedge the workers so the
	// pending group can be drained and the call return.
	time.Sleep(100 * time.Millisecond)
	rel0()
	r1park()
	r1slot()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrEnqueueTimeout) {
			t.Fatalf("DispatchBatch = %v, want ErrEnqueueTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DispatchBatch did not return after stalls released — done drain hung")
	}

	// Pool hygiene: subsequent dispatches see only their own results.
	for i := 0; i < 200; i++ {
		a := ip.Addr(rng.Uint32())
		res, err := rt.Dispatch(a)
		if err != nil {
			t.Fatalf("Dispatch after drain: %v", err)
		}
		want, _ := fib.Lookup(a, nil)
		if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
			t.Fatalf("Dispatch(%s) = %+v want %d", a, res, want)
		}
	}
}

func TestAllWorkersDownDispatchFailsLookupSurvives(t *testing.T) {
	_, routes := testRoutes(t, 1000, 47)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// The operator API refuses to fail the last worker, but panics don't
	// ask: poison both.
	if err := rt.PoisonWorker(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.PoisonWorker(1); err != nil {
		t.Fatal(err)
	}
	waitState(t, rt, 0, WorkerFailed)
	waitState(t, rt, 1, WorkerFailed)

	if _, err := rt.Dispatch(ip.MustParseAddr("10.0.0.1")); !errors.Is(err, ErrNoHealthyWorkers) {
		t.Fatalf("Dispatch with all workers down = %v, want ErrNoHealthyWorkers", err)
	}
	// The RCU snapshot path never depends on workers.
	if _, _, ok := rt.Lookup(routes[0].Prefix.First()); !ok {
		t.Fatal("snapshot lookup failed with all workers down")
	}
	// Updates keep flowing too: the writer is independent of workers.
	if _, err := rt.Announce(ip.MustParsePrefix("203.0.113.0/24"), 7); err != nil {
		t.Fatalf("Announce with all workers down: %v", err)
	}

	if err := rt.RecoverWorker(0); err != nil {
		t.Fatal(err)
	}
	if res, err := rt.Dispatch(ip.MustParseAddr("203.0.113.9")); err != nil || !res.Found || res.Hop != 7 {
		t.Fatalf("Dispatch after recovery = %+v, %v", res, err)
	}
}

func TestSnapshotShellDownMask(t *testing.T) {
	_, routes := testRoutes(t, 2000, 48)

	t.Run("rehome shares index", func(t *testing.T) {
		prev := newSnapshot(1, routes, 4, nil)
		if prev.index.empty() {
			t.Fatal("test table below index threshold")
		}
		next := newSnapshotFrom(prev, 2, routes, 4, nil, nil, nil, []bool{false, true, false, false}, nil, true)
		if !next.flushCaches {
			t.Fatal("flush flag lost")
		}
		if &next.index.l1[0] != &prev.index.l1[0] {
			t.Fatal("control publication copied the stride index instead of sharing it")
		}
	})

	t.Run("worker zero down", func(t *testing.T) {
		s := snapshotShell(1, routes, 4, nil, []bool{true, false, false, false}, nil)
		counts := make([]int, 4)
		for _, r := range routes {
			counts[s.Home(r.Prefix.First())]++
		}
		if counts[0] != 0 {
			t.Fatalf("down worker 0 still homes %d routes", counts[0])
		}
		for w := 1; w < 4; w++ {
			if counts[w] == 0 {
				t.Fatalf("survivor %d homes nothing: %v", w, counts)
			}
		}
	})

	t.Run("middle worker down keeps order", func(t *testing.T) {
		s := snapshotShell(1, routes, 4, nil, []bool{false, false, true, false}, nil)
		for i := 1; i < len(s.starts); i++ {
			if s.starts[i] < s.starts[i-1] {
				t.Fatalf("starts not monotone at %d: %v", i, s.starts)
			}
		}
		for a := 0; a < 1000; a++ {
			if h := s.Home(ip.Addr(a * 4_000_000)); h == 2 {
				t.Fatal("Home returned the down worker")
			}
		}
	})

	t.Run("all down keeps Home total", func(t *testing.T) {
		s := snapshotShell(1, routes, 3, nil, []bool{true, true, true}, nil)
		for a := 0; a < 1000; a++ {
			if h := s.Home(ip.Addr(a * 4_000_000)); h != 0 {
				t.Fatalf("Home = %d with all workers down, want nominal 0", h)
			}
		}
	})

	t.Run("down with tiny table", func(t *testing.T) {
		tiny := routes[:2]
		s := snapshotShell(1, tiny, 4, nil, []bool{false, true, false, false}, nil)
		counts := make([]int, 4)
		for _, r := range tiny {
			counts[s.Home(r.Prefix.First())]++
		}
		if counts[1] != 0 || counts[0]+counts[2]+counts[3] != 2 {
			t.Fatalf("tiny-table down split wrong: %v", counts)
		}
	})
}
