package serve

import (
	"strings"
	"testing"
	"time"

	"clue/internal/ip"
)

// partitionAddrs returns one probe address per route in worker w's home
// partition of the current snapshot.
func partitionAddrs(t *testing.T, rt *Runtime, w int) []ip.Addr {
	t.Helper()
	slot := rt.ep.enter(1)
	defer slot.exit()
	snap := rt.snap.Load()
	var out []ip.Addr
	for i, e := range snap.rng {
		_ = i
		a := ip.Addr(rngFirst(e))
		if snap.Home(a) == w {
			out = append(out, a)
		}
	}
	return out
}

// homeRouteCount counts routes homed to worker w in the current
// snapshot.
func homeRouteCount(rt *Runtime, w int) int {
	slot := rt.ep.enter(1)
	defer slot.exit()
	snap := rt.snap.Load()
	n := 0
	for _, e := range snap.rng {
		if snap.Home(ip.Addr(rngFirst(e))) == w {
			n++
		}
	}
	return n
}

// TestRebalanceMovesHotRange drives all dispatch traffic into worker
// 0's partition and forces a pass: the recut must shrink the hot
// partition, report a strict imbalance improvement, stay within the
// movement bound, and keep dispatch answers equal to snapshot answers.
func TestRebalanceMovesHotRange(t *testing.T) {
	fib, routes := testRoutes(t, 2000, 7)
	rt, err := New(routes, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	hot := partitionAddrs(t, rt, 0)
	if len(hot) == 0 {
		t.Fatal("worker 0 has no home routes")
	}
	before := homeRouteCount(rt, 0)
	for i := 0; i < 4000; i++ {
		if _, err := rt.Dispatch(hot[i%len(hot)]); err != nil {
			t.Fatal(err)
		}
	}

	res, err := rt.Rebalance(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recut {
		t.Fatalf("hot-partition pass did not recut: %+v", res)
	}
	if res.ImbalanceAfter >= res.ImbalanceBefore {
		t.Fatalf("imbalance did not improve: before %.3f after %.3f", res.ImbalanceBefore, res.ImbalanceAfter)
	}
	m := rt.Snapshot().Len()
	cfg := rt.cfg.Rebalance
	if maxMove := int(cfg.MaxMoveFraction * float64(m)); res.MovedRoutes > maxMove {
		t.Fatalf("moved %d routes over the bound %d", res.MovedRoutes, maxMove)
	}
	if after := homeRouteCount(rt, 0); after >= before {
		t.Fatalf("hot partition did not shrink: %d -> %d routes", before, after)
	}
	st := rt.Stats()
	if st.Rebalance.Recuts != 1 || st.Rebalance.MovedRoutes != int64(res.MovedRoutes) {
		t.Fatalf("stats did not record the recut: %+v", st.Rebalance)
	}
	if st.Rebalance.LastImbalanceBefore != res.ImbalanceBefore || st.Rebalance.LastImbalanceAfter != res.ImbalanceAfter {
		t.Fatalf("stats imbalance gauges %+v do not match result %+v", st.Rebalance, res)
	}

	// The cut move must be invisible to answers: dispatch and snapshot
	// agree on every probe, hot range included.
	for i := 0; i < 500; i++ {
		a := hot[i%len(hot)]
		want, _ := fib.Lookup(a, nil)
		got, err := rt.Dispatch(a)
		if err != nil {
			t.Fatal(err)
		}
		if got.Found != (want != ip.NoRoute) || (got.Found && got.Hop != want) {
			t.Fatalf("after recut: Dispatch(%s) = %d,%v want %d", a, got.Hop, got.Found, want)
		}
	}
}

// TestRebalanceSketchNoDoubleCount is the regression test for the
// sketch lifecycle: a pass drains the worker sketches destructively, so
// an immediate second pass must see zero new samples, and a cache flush
// (what every recut publication triggers) must drop samples recorded
// under the old cut assignment instead of re-attributing them.
func TestRebalanceSketchNoDoubleCount(t *testing.T) {
	_, routes := testRoutes(t, 1200, 21)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	probes := partitionAddrs(t, rt, 0)
	const first = 4000
	for i := 0; i < first; i++ {
		if _, err := rt.Dispatch(probes[i%len(probes)]); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := rt.Rebalance(true)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DrainedSamples == 0 {
		t.Fatal("first pass drained no samples")
	}
	if max := uint64(first / sketchSamplePeriod); r1.DrainedSamples > max {
		t.Fatalf("drained %d samples from %d dispatches (sampling 1/%d): counted more than recorded",
			r1.DrainedSamples, first, sketchSamplePeriod)
	}
	// No traffic since the drain: a second pass re-counting anything
	// means the drain was not destructive and a recut double-counts.
	r2, err := rt.Rebalance(true)
	if err != nil {
		t.Fatal(err)
	}
	if r2.DrainedSamples != 0 {
		t.Fatalf("second pass re-drained %d samples with no traffic in between", r2.DrainedSamples)
	}

	// Fill the sketches again, then flush caches — the publication shape
	// every recut rides. The pending samples were recorded under the old
	// assignment and must be dropped with the caches: only post-flush
	// traffic may be drained afterwards.
	for i := 0; i < first; i++ {
		if _, err := rt.Dispatch(probes[i%len(probes)]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.FlushCaches(); err != nil {
		t.Fatal(err)
	}
	const after = 80
	for i := 0; i < after; i++ {
		if _, err := rt.Dispatch(probes[i%len(probes)]); err != nil {
			t.Fatal(err)
		}
	}
	r3, err := rt.Rebalance(true)
	if err != nil {
		t.Fatal(err)
	}
	// Generous slack (one pending sample per worker) on top of the
	// post-flush recording budget; the pre-flush ~first/8 samples blow
	// way past it if the flush failed to reset the sketches.
	if max := uint64(after/sketchSamplePeriod + len(rt.workers)); r3.DrainedSamples > max {
		t.Fatalf("post-flush pass drained %d samples, want <= %d: cache flush did not reset the sketch (recut would double-count moved ranges)",
			r3.DrainedSamples, max)
	}
}

// TestRebalanceHysteresis pins the skip ladder: balanced traffic stays
// below the imbalance threshold on an unforced pass, too little signal
// skips before measuring, and a degraded runtime never recuts.
func TestRebalanceHysteresis(t *testing.T) {
	_, routes := testRoutes(t, 1500, 9)
	rt, err := New(routes, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	res, err := rt.Rebalance(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recut || !strings.Contains(res.Reason, "samples") {
		t.Fatalf("cold pass should skip on sample mass, got %+v", res)
	}

	// Uniform traffic across all partitions: enough samples, but no
	// imbalance worth a recut.
	all := append(append(partitionAddrs(t, rt, 0), partitionAddrs(t, rt, 1)...), partitionAddrs(t, rt, 2)...)
	for i := 0; i < 6000; i++ {
		if _, err := rt.Dispatch(all[i%len(all)]); err != nil {
			t.Fatal(err)
		}
	}
	res, err = rt.Rebalance(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recut {
		t.Fatalf("uniform traffic recut: %+v", res)
	}
	if res.ImbalanceBefore >= rt.cfg.Rebalance.ImbalanceThreshold {
		t.Fatalf("uniform traffic measured imbalance %.3f above threshold %.3f",
			res.ImbalanceBefore, rt.cfg.Rebalance.ImbalanceThreshold)
	}

	if err := rt.FailWorker(1); err != nil {
		t.Fatal(err)
	}
	res, err = rt.Rebalance(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recut || !strings.Contains(res.Reason, "degraded") {
		t.Fatalf("degraded runtime should skip, got %+v", res)
	}
	if err := rt.RecoverWorker(1); err != nil {
		t.Fatal(err)
	}
}

// TestRebalancePeriodic runs the background loop end to end: a short
// interval plus a sustained hot spot must produce at least one recut
// without any manual trigger, and Close must stop the loop cleanly.
func TestRebalancePeriodic(t *testing.T) {
	_, routes := testRoutes(t, 2000, 13)
	rt, err := New(routes, Config{
		Workers:   4,
		Rebalance: RebalanceConfig{Interval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	hot := partitionAddrs(t, rt, 0)
	deadline := time.Now().Add(5 * time.Second)
	for rt.Stats().Rebalance.Recuts == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no recut within deadline: %+v", rt.Stats().Rebalance)
		}
		for i := 0; i < 500; i++ {
			if _, err := rt.Dispatch(hot[i%len(hot)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := rt.Stats()
	if !st.Rebalance.Enabled {
		t.Fatal("periodic loop not reported enabled")
	}
	if st.Rebalance.SketchSamples == 0 {
		t.Fatal("no sketch samples accounted")
	}
}

// TestRebalancePlanSurvivesChurn pins the writer's persistent plan:
// route churn after a recut republishes snapshots, and the weighted
// boundaries must hold (snapped to surviving routes) instead of
// snapping back to the even count split.
func TestRebalancePlanSurvivesChurn(t *testing.T) {
	_, routes := testRoutes(t, 2000, 17)
	rt, err := New(routes, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	hot := partitionAddrs(t, rt, 0)
	for i := 0; i < 4000; i++ {
		if _, err := rt.Dispatch(hot[i%len(hot)]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := rt.Rebalance(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recut {
		t.Fatalf("no recut: %+v", res)
	}
	planned := homeRouteCount(rt, 0)
	even := rt.Snapshot().Len() / 4
	if planned >= even {
		t.Fatalf("recut left worker 0 with %d routes, not below the even split %d", planned, even)
	}

	// Structural churn: withdraw and re-announce a spread of routes so
	// several snapshots publish. The weighted cuts must survive.
	for i := 0; i < 50; i++ {
		r := routes[(i*41)%len(routes)]
		if _, err := rt.Withdraw(r.Prefix); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Announce(r.Prefix, r.NextHop); err != nil {
			t.Fatal(err)
		}
	}
	afterChurn := homeRouteCount(rt, 0)
	if diff := afterChurn - planned; diff > 5 || diff < -5 {
		t.Fatalf("weighted cut did not survive churn: worker 0 went %d -> %d routes (even split %d)",
			planned, afterChurn, even)
	}

	// A worker failure overrides the plan (even recut over survivors);
	// recovery re-applies it on the next publication.
	if err := rt.FailWorker(0); err != nil {
		t.Fatal(err)
	}
	if n := homeRouteCount(rt, 0); n != 0 {
		t.Fatalf("failed worker still homes %d routes", n)
	}
	if err := rt.RecoverWorker(0); err != nil {
		t.Fatal(err)
	}
	if n := homeRouteCount(rt, 0); n >= even {
		t.Fatalf("plan not re-applied after recovery: worker 0 homes %d routes (even split %d)", n, even)
	}
}

// TestRebalanceConfigValidate pins the config contract.
func TestRebalanceConfigValidate(t *testing.T) {
	_, routes := testRoutes(t, 200, 3)
	for name, cfg := range map[string]RebalanceConfig{
		"negative interval":  {Interval: -time.Second},
		"threshold below 1":  {ImbalanceThreshold: 0.5},
		"move fraction > 1":  {MaxMoveFraction: 1.5},
		"negative move frac": {MaxMoveFraction: -0.1},
	} {
		if _, err := New(routes, Config{Rebalance: cfg}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.cfg.Rebalance.ImbalanceThreshold != 1.25 || rt.cfg.Rebalance.MaxMoveFraction != 0.25 {
		t.Errorf("defaults not applied: %+v", rt.cfg.Rebalance)
	}
	rt.Close()
	if _, err := rt.Rebalance(true); err != ErrClosed {
		t.Errorf("Rebalance after Close: err = %v, want ErrClosed", err)
	}
}
