package serve

import (
	"fmt"
	"sort"
	"time"

	"clue/internal/ip"
	"clue/internal/partition"
)

// Traffic-sketch geometry. Each worker counts sampled served addresses
// into one counter per /12 stride bucket (4096 buckets, 32 KiB per
// worker): coarse enough to stay off the serve path's cache budget,
// fine enough that a flash crowd on one prefix lights up exactly its
// bucket. The rebalancer drains the counters with atomic swaps, so the
// serve path never blocks on a pass.
const (
	sketchBits    = 12
	sketchBuckets = 1 << sketchBits
	sketchShift   = 32 - sketchBits
	// sketchSamplePeriod is the worker-side sampling stride: one in
	// sketchSamplePeriod served addresses is counted (power of two; the
	// recording test depends on the exact period).
	sketchSamplePeriod = 8
	// rebalanceMinSamples gates unforced passes: below this much decayed
	// sample mass the weight estimate is noise, not signal.
	rebalanceMinSamples = 256
	// rebalanceDecay is the per-pass EWMA factor on the aggregate weight
	// vector: the estimate survives cache flushes and re-homings (the raw
	// worker sketches do not — see worker.resetSketch) while still
	// tracking a moving hot set within a few intervals. Bursty traffic
	// makes single-interval distributions genuinely unstable, so the
	// memory is deliberately long (~4 intervals of effective mass).
	rebalanceDecay = 0.75
	// rebalanceHotStreak is the persistence gate: an unforced pass recuts
	// only after this many consecutive over-threshold measurements, so a
	// one-interval traffic burst cannot trigger a whole-table re-homing
	// that a steady estimate would not have asked for.
	rebalanceHotStreak = 2
)

// RebalanceConfig parameterises the load-aware repartitioning loop: a
// background pass that estimates per-range traffic from the worker
// sketches and re-carves the partition cuts to minimize the maximum
// partition load (partition.CarveWeighted), publishing improved cuts
// through the same re-homing control publication worker failures use.
type RebalanceConfig struct {
	// Interval between periodic passes. 0 (the default) disables the
	// background loop; manual Runtime.Rebalance calls and the
	// /admin/rebalance trigger still work.
	Interval time.Duration
	// ImbalanceThreshold is the hysteresis gate: an unforced pass
	// proposes a recut only when the observed imbalance (max partition
	// traffic / mean) is at least this ratio. Default 1.25; must be >= 1
	// (1 rebalances on any improvement).
	ImbalanceThreshold float64
	// MaxMoveFraction bounds each recut's churn: at most this fraction of
	// the table's routes may change home per pass, so a recut never
	// invalidates more locality than it repairs. Default 0.25; must be in
	// (0, 1].
	MaxMoveFraction float64
}

func (c RebalanceConfig) validate() error {
	if c.Interval < 0 {
		return fmt.Errorf("serve: Rebalance.Interval must be >= 0 (0 disables), got %v", c.Interval)
	}
	if c.ImbalanceThreshold != 0 && c.ImbalanceThreshold < 1 {
		return fmt.Errorf("serve: Rebalance.ImbalanceThreshold must be >= 1 (0 means default), got %g", c.ImbalanceThreshold)
	}
	if c.MaxMoveFraction < 0 || c.MaxMoveFraction > 1 {
		return fmt.Errorf("serve: Rebalance.MaxMoveFraction must be in [0, 1] (0 means default), got %g", c.MaxMoveFraction)
	}
	return nil
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.ImbalanceThreshold == 0 {
		c.ImbalanceThreshold = 1.25
	}
	if c.MaxMoveFraction == 0 {
		c.MaxMoveFraction = 0.25
	}
	return c
}

// RebalanceResult reports one rebalance pass.
type RebalanceResult struct {
	// Recut reports whether the pass published new cuts; Reason says why
	// not when it did not.
	Recut  bool   `json:"recut"`
	Reason string `json:"reason,omitempty"`
	// ImbalanceBefore is max partition traffic / mean under the current
	// cuts; ImbalanceAfter the projection under the carved cuts (equal to
	// Before on a skipped pass that got far enough to measure).
	ImbalanceBefore float64 `json:"imbalance_before"`
	ImbalanceAfter  float64 `json:"imbalance_after"`
	// MovedRoutes bounds the routes re-homed by the published cuts.
	MovedRoutes int `json:"moved_routes"`
	// DrainedSamples is the raw sketch mass drained from the workers by
	// this pass (before decay).
	DrainedSamples uint64 `json:"drained_samples"`
}

// RebalanceStats is the Stats() view of the repartitioning loop.
type RebalanceStats struct {
	// Enabled reports whether the periodic loop is running.
	Enabled bool `json:"enabled"`
	// Recuts counts published weighted recuts; Skips the passes that
	// published nothing; MovedRoutes the total routes re-homed.
	Recuts      int64 `json:"recuts"`
	Skips       int64 `json:"skips"`
	MovedRoutes int64 `json:"moved_routes"`
	// LastImbalanceBefore/After are the most recent pass's measured and
	// projected imbalance ratios.
	LastImbalanceBefore float64 `json:"last_imbalance_before"`
	LastImbalanceAfter  float64 `json:"last_imbalance_after"`
	// SketchSamples counts sketch samples drained over the runtime's
	// life.
	SketchSamples int64 `json:"sketch_samples"`
}

// rebalanceState is the rebalancer's aggregate estimate plus reusable
// scratch, all guarded by Runtime.rebalanceMu.
type rebalanceState struct {
	// weights is the decayed per-bucket traffic aggregate; samples the
	// decayed total mass behind it (the hysteresis signal gate).
	weights []float64
	samples float64
	// hotStreak counts consecutive unforced passes that measured over the
	// imbalance threshold (the rebalanceHotStreak persistence gate).
	hotStreak int
	// Carve scratch, reused across passes.
	routeW []float64
	firsts []uint32
	lasts  []uint32
	cuts   []int
}

// rebalancer is the periodic loop New starts when Rebalance.Interval is
// set. Each tick runs one unforced pass; hysteresis lives inside
// Rebalance itself so the manual trigger shares it.
func (r *Runtime) rebalancer() {
	defer r.rebalanceWG.Done()
	t := time.NewTicker(r.cfg.Rebalance.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.rebalanceStop:
			return
		case <-t.C:
			r.Rebalance(false) //nolint:errcheck // skip reasons land in Stats
		}
	}
}

// Rebalance runs one repartitioning pass: drain the worker traffic
// sketches into the decayed aggregate, estimate per-route weight, and —
// when the imbalance clears the hysteresis gate and a movement-bounded
// weighted carve (partition.CarveWeighted) strictly improves it —
// publish the new cuts through a re-homing control publication, exactly
// like a worker-failure recut (caches flushed, every later snapshot
// keeps the plan). force skips the sample-mass and imbalance-threshold
// gates (the /admin/rebalance path); a forced pass still refuses cuts
// that do not improve the estimate. The returned result reports what
// happened either way; the error is non-nil only for a closed runtime.
func (r *Runtime) Rebalance(force bool) (RebalanceResult, error) {
	if r.closed.Load() {
		return RebalanceResult{}, ErrClosed
	}
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	rb := &r.rb
	if rb.weights == nil {
		rb.weights = make([]float64, sketchBuckets)
	}
	var drained uint64
	for b := range rb.weights {
		rb.weights[b] *= rebalanceDecay
	}
	for _, w := range r.workers {
		for b := range w.sketch {
			if v := w.sketch[b].Swap(0); v != 0 {
				rb.weights[b] += float64(v)
				drained += v
			}
		}
	}
	rb.samples = rb.samples*rebalanceDecay + float64(drained)
	r.m.sketchSamples.Add(int64(drained))

	res := RebalanceResult{DrainedSamples: drained}
	skip := func(reason string) (RebalanceResult, error) {
		res.Reason = reason
		r.m.rebalanceSkips.Add(1)
		return res, nil
	}
	// A degraded runtime already runs on the hardened even recut over the
	// survivors; layering a weighted plan on top would fight the health
	// machinery, so wait the failure out.
	if r.healthyCount() != len(r.workers) {
		return skip("degraded: worker out of service")
	}
	if !force && rb.samples < rebalanceMinSamples {
		return skip("insufficient traffic samples")
	}

	// Copy the route bounds and current cut indices out under an epoch
	// pin; everything after works on the copies, so the arena is never
	// escaped and never held.
	nw := len(r.workers)
	slot := r.ep.enter(r.pinSeed.Add(1))
	snap := r.snap.Load()
	m := len(snap.rng)
	if m < nw {
		slot.exit()
		return skip("fewer routes than workers")
	}
	rb.firsts = rb.firsts[:0]
	rb.lasts = rb.lasts[:0]
	for _, e := range snap.rng {
		rb.firsts = append(rb.firsts, rngFirst(e))
		rb.lasts = append(rb.lasts, rngLast(e))
	}
	rb.cuts = append(rb.cuts[:0], 0)
	validCuts := true
	for j := 1; j < nw; j++ {
		want := uint32(snap.starts[j])
		idx := sort.Search(m, func(i int) bool { return rb.firsts[i] >= want })
		if idx <= rb.cuts[j-1] || idx >= m {
			// A worker with no home range in the published snapshot (e.g.
			// just recovered, not yet recut over): let the next route-churn
			// or health publication regularize the cuts first.
			validCuts = false
			break
		}
		rb.cuts = append(rb.cuts, idx)
	}
	slot.exit()
	if !validCuts {
		return skip("degenerate current cuts")
	}

	// Project the bucket weights onto routes: a bucket's mass is split
	// evenly across the routes it intersects; a bucket covering no route
	// (miss traffic) charges the preceding route, whose partition serves
	// those addresses.
	if cap(rb.routeW) < m {
		rb.routeW = make([]float64, m)
	} else {
		rb.routeW = rb.routeW[:m]
		for i := range rb.routeW {
			rb.routeW[i] = 0
		}
	}
	total := 0.0
	i := 0
	for b := 0; b < sketchBuckets; b++ {
		wgt := rb.weights[b]
		if wgt == 0 {
			continue
		}
		bFirst := uint32(b) << sketchShift
		bLast := bFirst | (1<<sketchShift - 1)
		for i < m && rb.lasts[i] < bFirst {
			i++
		}
		j := i
		for j < m && rb.firsts[j] <= bLast {
			j++
		}
		if j == i {
			k := i - 1
			if k < 0 {
				k = 0
			}
			rb.routeW[k] += wgt
		} else {
			share := wgt / float64(j-i)
			for k := i; k < j; k++ {
				rb.routeW[k] += share
			}
		}
		total += wgt
	}
	if total == 0 {
		return skip("no traffic signal")
	}

	res.ImbalanceBefore = r.imbalanceOf(rb.cuts, m, total, nw)
	res.ImbalanceAfter = res.ImbalanceBefore
	r.m.rebalanceImbBefore.set(res.ImbalanceBefore)
	if !force {
		if res.ImbalanceBefore < r.cfg.Rebalance.ImbalanceThreshold {
			rb.hotStreak = 0
			return skip("below imbalance threshold")
		}
		if rb.hotStreak++; rb.hotStreak < rebalanceHotStreak {
			return skip("imbalance not yet persistent")
		}
	}

	maxMove := int(r.cfg.Rebalance.MaxMoveFraction * float64(m))
	carve, err := partition.CarveWeighted(rb.routeW, nw, rb.cuts, maxMove)
	if err != nil {
		return skip("carve: " + err.Error())
	}
	after := carve.MaxWeight * float64(nw) / total
	if carve.Moved == 0 || after >= res.ImbalanceBefore {
		return skip("no improving move within bounds")
	}
	res.ImbalanceAfter = after
	res.MovedRoutes = carve.Moved

	plan := make([]ip.Addr, nw)
	for j := 1; j < nw; j++ {
		plan[j] = ip.Addr(rb.firsts[carve.Cuts[j]])
	}
	if err := r.submitPlan(plan); err != nil {
		return res, err
	}
	res.Recut = true
	rb.hotStreak = 0
	r.m.rebalances.Add(1)
	r.m.rebalanceMoved.Add(int64(carve.Moved))
	r.m.rebalanceImbAfter.set(after)
	return res, nil
}

// imbalanceOf is max partition weight / mean under cuts, over the
// current rb.routeW.
func (r *Runtime) imbalanceOf(cuts []int, m int, total float64, nw int) float64 {
	maxW := 0.0
	for j := range cuts {
		end := m
		if j+1 < len(cuts) {
			end = cuts[j+1]
		}
		w := 0.0
		for k := cuts[j]; k < end; k++ {
			w += r.rb.routeW[k]
		}
		if w > maxW {
			maxW = w
		}
	}
	return maxW * float64(nw) / total
}

// submitPlan queues the control publication installing plan as the
// writer's persistent cut plan — the same re-homing publication worker
// health changes ride (caches flushed), so the moved ranges cannot
// serve stale divert-cache entries under their new homes.
func (r *Runtime) submitPlan(plan []ip.Addr) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.closed.Load() {
		return ErrClosed
	}
	op := updateOp{ctl: true, plan: plan, done: make(chan opResult, 1)}
	r.updates <- op
	<-op.done
	return nil
}
