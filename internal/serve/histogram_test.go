package serve

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 38, histBuckets - 1},
		{math.MaxInt64, histBuckets - 1}, // clamps to the catch-all bucket
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// The bucket invariant: 2^(b-1) <= v < 2^b for every in-range value.
	for b := 1; b < histBuckets-1; b++ {
		lo, hi := int64(1)<<(b-1), int64(1)<<b
		if bucketOf(lo) != b || bucketOf(hi-1) != b {
			t.Errorf("bucket %d bounds broken: bucketOf(%d)=%d bucketOf(%d)=%d",
				b, lo, bucketOf(lo), hi-1, bucketOf(hi-1))
		}
	}
}

func TestHistogramRecordAndSummary(t *testing.T) {
	h := newLatencyHist(1)
	for v := int64(1); v <= 1000; v++ {
		h.record(0, v)
	}
	s := h.summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if want := float64(1000*1001) / 2; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %g, want 1000", s.Max)
	}
	if s.Mean != s.Sum/1000 {
		t.Fatalf("mean = %g, want %g", s.Mean, s.Sum/1000)
	}
	// Power-of-two buckets cannot place percentiles exactly, but the
	// estimate must land within the crossing bucket: the true p50 is 500
	// (bucket [256,512)), the true p99 990 (bucket [512,1024), clamped to
	// the observed max 1000).
	if s.P50 < 256 || s.P50 > 512 {
		t.Fatalf("p50 = %g, want within [256,512]", s.P50)
	}
	if s.P90 < 512 || s.P90 > 1000 {
		t.Fatalf("p90 = %g, want within [512,1000]", s.P90)
	}
	if s.P99 < 512 || s.P99 > 1000 {
		t.Fatalf("p99 = %g, want within [512,1000]", s.P99)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles not monotone: p50=%g p90=%g p99=%g max=%g", s.P50, s.P90, s.P99, s.Max)
	}
	// Sparse buckets: strictly ascending bounds, counts summing to Count.
	var total uint64
	prev := -1.0
	for _, b := range s.Buckets {
		if b.Le <= prev {
			t.Fatalf("bucket bounds not ascending: %v", s.Buckets)
		}
		if b.Count == 0 {
			t.Fatalf("empty bucket exported: %v", s.Buckets)
		}
		prev = b.Le
		total += b.Count
	}
	if total != uint64(s.Count) {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestHistogramOutlierClampsToMax(t *testing.T) {
	h := newLatencyHist(1)
	for i := 0; i < 50; i++ {
		h.record(0, 10)
	}
	// Half the observations sit near the bottom of the wide [2^20, 2^21)
	// bucket, so the p99 rank crosses inside it: raw interpolation toward
	// the bucket's upper bound would report ~2x the largest real
	// observation, and the clamp must cap it at the observed max.
	for i := 0; i < 50; i++ {
		h.record(0, 1<<20+5)
	}
	s := h.summary()
	if s.P99 > s.Max {
		t.Fatalf("p99 %g exceeds observed max %g", s.P99, s.Max)
	}
	if s.Max != float64(1<<20+5) {
		t.Fatalf("max = %g, want %d", s.Max, 1<<20+5)
	}
	if s.P99 != s.Max {
		t.Fatalf("p99 = %g, want clamped to max %g", s.P99, s.Max)
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	h := newLatencyHist(1)
	h.record(0, -50) // clock step mid-sample: clamps to 0
	h.record(0, 0)
	s := h.summary()
	if s.Count != 2 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("summary after negative/zero records: %+v", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Le != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket: %+v", s.Buckets)
	}
}

func TestHistogramEmptySummary(t *testing.T) {
	s := newLatencyHist(4).summary()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestHistogramShardsMergeAndFold(t *testing.T) {
	h := newLatencyHist(4)
	h.record(0, 1)
	h.record(1, 100)
	h.record(2, 100)
	h.record(3, 10000)
	h.record(-1, 7) // out-of-range shards fold into shard 0
	h.record(99, 7)
	s := h.summary()
	if s.Count != 6 {
		t.Fatalf("merged count = %d, want 6", s.Count)
	}
	if s.Sum != 1+100+100+10000+7+7 {
		t.Fatalf("merged sum = %g", s.Sum)
	}
	if s.Max != 10000 {
		t.Fatalf("merged max = %g, want 10000", s.Max)
	}
	if h.shards[0].counts[bucketOf(7)].Load() != 2 {
		t.Fatal("out-of-range shards did not fold into shard 0")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := newLatencyHist(4)
	const perG, gs = 10000, 8
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.record(g%4, int64(i))
			}
		}(g)
	}
	wg.Wait()
	s := h.summary()
	if s.Count != perG*gs {
		t.Fatalf("count = %d, want %d", s.Count, perG*gs)
	}
	if s.Max != perG-1 {
		t.Fatalf("max = %g, want %d", s.Max, perG-1)
	}
	if want := float64(gs) * float64(perG*(perG-1)) / 2; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
}

// TestHistogramRecordZeroAllocs is the hot-path budget gate: recording
// must not allocate, or the sampled paths would leak garbage into every
// lookup and dispatch.
func TestHistogramRecordZeroAllocs(t *testing.T) {
	h := newLatencyHist(4)
	if n := testing.AllocsPerRun(1000, func() { h.record(2, 1234) }); n != 0 {
		t.Fatalf("record allocates %v per op, want 0", n)
	}
}
