package serve

import (
	"testing"

	"clue/internal/ip"
)

// TestNoopBatchSkipsPublication is the regression for the no-op batch
// path: a batch whose every op changed nothing (withdraw-of-absent) must
// not copy the table, bump the version or wake the workers' cache sync —
// the previously published snapshot stays in place, pointer-identical.
func TestNoopBatchSkipsPublication(t *testing.T) {
	_, routes := testRoutes(t, 2000, 64)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	before := rt.Snapshot()
	absent := ip.MustParsePrefix("198.51.100.0/28")
	if _, _, ok := rt.Lookup(absent.First()); ok {
		t.Fatalf("probe prefix %s unexpectedly present", absent)
	}
	for i := 0; i < 3; i++ {
		if _, err := rt.Withdraw(absent); err != nil {
			t.Fatalf("withdraw of absent prefix: %v", err)
		}
	}

	if after := rt.Snapshot(); after != before {
		t.Fatalf("no-op batch published a new snapshot: version %d -> %d", before.Version, after.Version)
	}
	st := rt.Stats()
	if st.Withdraws != 3 || st.UpdateErrors != 0 {
		t.Fatalf("op accounting: %+v", st)
	}
	if st.NoopBatches == 0 || st.NoopBatches != st.Batches {
		t.Fatalf("noop batches = %d of %d batches, want all", st.NoopBatches, st.Batches)
	}
	if st.SnapshotVersion != 1 {
		t.Fatalf("snapshot version = %d, want 1", st.SnapshotVersion)
	}

	// A real change still publishes normally afterwards.
	p := ip.MustParsePrefix("203.0.113.0/24")
	if _, err := rt.Announce(p, 7); err != nil {
		t.Fatal(err)
	}
	if hop, _, ok := rt.Lookup(ip.MustParseAddr("203.0.113.9")); !ok || hop != 7 {
		t.Fatalf("lookup after announce = %d,%v want 7", hop, ok)
	}
	st = rt.Stats()
	if after := rt.Snapshot(); after == before || after.Version != 2 {
		t.Fatalf("real batch after no-ops did not publish: version %d", after.Version)
	}
	if st.Batches-st.NoopBatches != 1 {
		t.Fatalf("publishing batches = %d, want 1 (%+v)", st.Batches-st.NoopBatches, st)
	}
}

// TestLatencyStatsPopulated exercises every histogram feed — sampled
// snapshot lookups, sampled dispatches, whole-call batch dispatches,
// per-op TTF, snapshot swaps and queue-depth samples — and checks the
// distributions surface through Stats with coherent summaries.
func TestLatencyStatsPopulated(t *testing.T) {
	_, routes := testRoutes(t, 3000, 65)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// 512 lookups cross the 1-in-128 sampling mask several times.
	for i := 0; i < 512; i++ {
		rt.Lookup(routes[i%len(routes)].Prefix.First())
	}
	// 256 dispatches cross the 1-in-8 mask; queue-depth samples ride the
	// same traffic through the 1-in-32 mask.
	for i := 0; i < 256; i++ {
		if _, err := rt.Dispatch(routes[i%len(routes)].Prefix.First()); err != nil {
			t.Fatal(err)
		}
	}
	addrs := make([]ip.Addr, 128)
	for i := range addrs {
		addrs[i] = routes[(i*17)%len(routes)].Prefix.First()
	}
	if _, err := rt.DispatchBatch(addrs, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p := ip.MustParsePrefix("203.0.113.0/24")
		if _, err := rt.Announce(p, ip.NextHop(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	lat := rt.Stats().Latency
	checks := []struct {
		name string
		s    LatencySummary
	}{
		{"snapshot_lookup", lat.SnapshotLookup},
		{"dispatch_home", lat.DispatchHome},
		{"dispatch_batch", lat.DispatchBatch},
		{"ttf_trie", lat.TTFTrie},
		{"ttf_tcam", lat.TTFTCAM},
		{"ttf_dred", lat.TTFDRed},
		{"snapshot_swap", lat.SnapshotSwap},
		{"queue_depth", lat.QueueDepth},
	}
	for _, c := range checks {
		if c.s.Count == 0 {
			t.Errorf("%s histogram empty after traffic", c.name)
			continue
		}
		if c.s.P50 > c.s.P90 || c.s.P90 > c.s.P99 || c.s.P99 > c.s.Max {
			t.Errorf("%s percentiles not monotone: %+v", c.name, c.s)
		}
		if len(c.s.Buckets) == 0 {
			t.Errorf("%s summary has no buckets: %+v", c.name, c.s)
		}
	}
	// Sampling rates: lookups record 1 in 128, dispatches 1 in 8.
	if want := int64(512 / 128); lat.SnapshotLookup.Count != want {
		t.Errorf("snapshot lookup samples = %d, want %d", lat.SnapshotLookup.Count, want)
	}
	dispatchSamples := lat.DispatchHome.Count + lat.DispatchDiverted.Count + lat.DispatchCacheHit.Count
	if want := int64(256 / 8); dispatchSamples != want {
		t.Errorf("dispatch samples = %d, want %d", dispatchSamples, want)
	}
	if lat.DispatchBatch.Count != 1 {
		t.Errorf("dispatch batch count = %d, want 1", lat.DispatchBatch.Count)
	}
	if lat.TTFTrie.Count != 4 || lat.SnapshotSwap.Count == 0 {
		t.Errorf("update histograms: ttf count %d (want 4), swap count %d", lat.TTFTrie.Count, lat.SnapshotSwap.Count)
	}
	if p99 := lat.DispatchP99Ns(); p99 <= 0 {
		t.Errorf("DispatchP99Ns = %g, want positive", p99)
	}
}

// TestDispatchP99NsPicksWorstPath pins the chaos-harness bound to the
// worst of the three dispatch outcome paths.
func TestDispatchP99NsPicksWorstPath(t *testing.T) {
	l := LatencyStats{
		DispatchHome:     LatencySummary{P99: 100},
		DispatchDiverted: LatencySummary{P99: 900},
		DispatchCacheHit: LatencySummary{P99: 300},
	}
	if got := l.DispatchP99Ns(); got != 900 {
		t.Fatalf("DispatchP99Ns = %g, want 900", got)
	}
}
