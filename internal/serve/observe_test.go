package serve

import (
	"testing"

	"clue/internal/ip"
)

// TestNoopBatchSkipsPublication is the regression for the no-op batch
// path: a batch whose every op changed nothing (withdraw-of-absent) must
// not copy the table, bump the version or wake the workers' cache sync —
// the previously published snapshot stays in place, pointer-identical.
func TestNoopBatchSkipsPublication(t *testing.T) {
	_, routes := testRoutes(t, 2000, 64)
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	before := rt.Snapshot()
	absent := ip.MustParsePrefix("198.51.100.0/28")
	if _, _, ok := rt.Lookup(absent.First()); ok {
		t.Fatalf("probe prefix %s unexpectedly present", absent)
	}
	for i := 0; i < 3; i++ {
		if _, err := rt.Withdraw(absent); err != nil {
			t.Fatalf("withdraw of absent prefix: %v", err)
		}
	}

	if after := rt.Snapshot(); after != before {
		t.Fatalf("no-op batch published a new snapshot: version %d -> %d", before.Version, after.Version)
	}
	st := rt.Stats()
	if st.Withdraws != 3 || st.UpdateErrors != 0 {
		t.Fatalf("op accounting: %+v", st)
	}
	if st.NoopBatches == 0 || st.NoopBatches != st.Batches {
		t.Fatalf("noop batches = %d of %d batches, want all", st.NoopBatches, st.Batches)
	}
	if st.SnapshotVersion != 1 {
		t.Fatalf("snapshot version = %d, want 1", st.SnapshotVersion)
	}

	// A real change still publishes normally afterwards.
	p := ip.MustParsePrefix("203.0.113.0/24")
	if _, err := rt.Announce(p, 7); err != nil {
		t.Fatal(err)
	}
	if hop, _, ok := rt.Lookup(ip.MustParseAddr("203.0.113.9")); !ok || hop != 7 {
		t.Fatalf("lookup after announce = %d,%v want 7", hop, ok)
	}
	st = rt.Stats()
	if after := rt.Snapshot(); after == before || after.Version != 2 {
		t.Fatalf("real batch after no-ops did not publish: version %d", after.Version)
	}
	if st.Batches-st.NoopBatches != 1 {
		t.Fatalf("publishing batches = %d, want 1 (%+v)", st.Batches-st.NoopBatches, st)
	}
}

// TestLatencyStatsPopulated exercises every histogram feed — sampled
// snapshot lookups, sampled dispatches, whole-call batch dispatches,
// per-op TTF, snapshot swaps and queue-depth samples — and checks the
// distributions surface through Stats with coherent summaries.
func TestLatencyStatsPopulated(t *testing.T) {
	_, routes := testRoutes(t, 3000, 65)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// 512 lookups cross the 1-in-128 sampling mask several times.
	for i := 0; i < 512; i++ {
		rt.Lookup(routes[i%len(routes)].Prefix.First())
	}
	// 256 dispatches cross the 1-in-8 mask; queue-depth samples ride the
	// same traffic through the 1-in-32 mask.
	for i := 0; i < 256; i++ {
		if _, err := rt.Dispatch(routes[i%len(routes)].Prefix.First()); err != nil {
			t.Fatal(err)
		}
	}
	addrs := make([]ip.Addr, 128)
	for i := range addrs {
		addrs[i] = routes[(i*17)%len(routes)].Prefix.First()
	}
	if _, err := rt.DispatchBatch(addrs, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p := ip.MustParsePrefix("203.0.113.0/24")
		if _, err := rt.Announce(p, ip.NextHop(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	lat := rt.Stats().Latency
	checks := []struct {
		name string
		s    LatencySummary
	}{
		{"snapshot_lookup", lat.SnapshotLookup},
		{"dispatch_home", lat.DispatchHome},
		{"dispatch_batch", lat.DispatchBatch},
		{"ttf_trie", lat.TTFTrie},
		{"ttf_tcam", lat.TTFTCAM},
		{"ttf_dred", lat.TTFDRed},
		{"snapshot_swap", lat.SnapshotSwap},
		{"queue_depth", lat.QueueDepth},
	}
	for _, c := range checks {
		if c.s.Count == 0 {
			t.Errorf("%s histogram empty after traffic", c.name)
			continue
		}
		if c.s.P50 > c.s.P90 || c.s.P90 > c.s.P99 || c.s.P99 > c.s.Max {
			t.Errorf("%s percentiles not monotone: %+v", c.name, c.s)
		}
		if len(c.s.Buckets) == 0 {
			t.Errorf("%s summary has no buckets: %+v", c.name, c.s)
		}
	}
	// Sampling rates: lookups record 1 in 128, dispatches 1 in 8.
	if want := int64(512 / 128); lat.SnapshotLookup.Count != want {
		t.Errorf("snapshot lookup samples = %d, want %d", lat.SnapshotLookup.Count, want)
	}
	dispatchSamples := lat.DispatchHome.Count + lat.DispatchDiverted.Count + lat.DispatchCacheHit.Count
	if want := int64(256 / 8); dispatchSamples != want {
		t.Errorf("dispatch samples = %d, want %d", dispatchSamples, want)
	}
	if lat.DispatchBatch.Count != 1 {
		t.Errorf("dispatch batch count = %d, want 1", lat.DispatchBatch.Count)
	}
	if lat.TTFTrie.Count != 4 || lat.SnapshotSwap.Count == 0 {
		t.Errorf("update histograms: ttf count %d (want 4), swap count %d", lat.TTFTrie.Count, lat.SnapshotSwap.Count)
	}
	if p99 := lat.DispatchP99Ns(); p99 <= 0 {
		t.Errorf("DispatchP99Ns = %g, want positive", p99)
	}
}

// TestDispatchP99NsPicksWorstPath pins the chaos-harness bound to the
// worst of the three dispatch outcome paths.
func TestDispatchP99NsPicksWorstPath(t *testing.T) {
	l := LatencyStats{
		DispatchHome:     LatencySummary{P99: 100},
		DispatchDiverted: LatencySummary{P99: 900},
		DispatchCacheHit: LatencySummary{P99: 300},
	}
	if got := l.DispatchP99Ns(); got != 900 {
		t.Fatalf("DispatchP99Ns = %g, want 900", got)
	}
}

// TestCanonicalHashTracksTable: the snapshot digest is stable across
// identical content (including a rebuilt runtime over the same routes),
// changes when the table changes, and returns to the original value
// when the change is undone — the property the scenario lab's
// time-to-converge probe rests on.
func TestCanonicalHashTracksTable(t *testing.T) {
	_, routes := testRoutes(t, 3000, 17)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	h0 := rt.TableHash()
	if h0 != rt.TableHash() {
		t.Fatal("hash not stable across calls")
	}
	if got := rt.Stats().TableHash; got != h0 {
		t.Fatalf("Stats().TableHash = %x, want %x", got, h0)
	}

	rt2, err := New(routes, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if h := rt2.TableHash(); h != h0 {
		t.Fatalf("independent runtime over same routes hashes %x, want %x", h, h0)
	}

	p := ip.MustParsePrefix("203.0.113.0/24")
	if _, err := rt.Announce(p, 9); err != nil {
		t.Fatal(err)
	}
	h1 := rt.TableHash()
	if h1 == h0 {
		t.Fatal("hash unchanged after announce")
	}
	if _, err := rt.Withdraw(p); err != nil {
		t.Fatal(err)
	}
	if h2 := rt.TableHash(); h2 != h0 {
		t.Fatalf("hash after undo = %x, want original %x", h2, h0)
	}
}

// TestStormPeakCounters: the high-water marks rise with the table and
// batch sizes and never fall back when the storm recedes.
func TestStormPeakCounters(t *testing.T) {
	_, routes := testRoutes(t, 500, 21)
	rt, err := New(routes, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	base := rt.Stats()
	if base.PeakRoutes < int64(base.Routes) {
		t.Fatalf("initial PeakRoutes %d < routes %d", base.PeakRoutes, base.Routes)
	}
	// Grow the table with fresh disjoint /24s, then withdraw them all.
	var grown []ip.Prefix
	for i := 0; i < 64; i++ {
		p := ip.MustPrefix(ip.Addr(uint32(198)<<24|uint32(18)<<16|uint32(i)<<8), 24)
		grown = append(grown, p)
		if _, err := rt.Announce(p, 7); err != nil {
			t.Fatal(err)
		}
	}
	mid := rt.Stats()
	if mid.PeakRoutes <= base.PeakRoutes {
		t.Fatalf("PeakRoutes did not rise: %d -> %d", base.PeakRoutes, mid.PeakRoutes)
	}
	for _, p := range grown {
		if _, err := rt.Withdraw(p); err != nil {
			t.Fatal(err)
		}
	}
	end := rt.Stats()
	if end.PeakRoutes < mid.PeakRoutes {
		t.Fatalf("PeakRoutes fell after storm: %d -> %d", mid.PeakRoutes, end.PeakRoutes)
	}
	if end.Routes >= int(end.PeakRoutes) {
		t.Fatalf("table %d did not shrink below peak %d", end.Routes, end.PeakRoutes)
	}
	if end.PeakBatchOps < 1 || end.PeakPendingUpdates < 0 {
		t.Fatalf("degenerate peaks: batch %d, pending %d", end.PeakBatchOps, end.PeakPendingUpdates)
	}
}
