package serve

import (
	"errors"
	"math/rand"
	"testing"

	"clue/internal/core"
	"clue/internal/ip"
	"clue/internal/trie"
)

// FuzzRuntimeUpdate is the differential test for the write path: random
// announce/withdraw/lookup interleavings — including worker fail/recover
// transitions — driven through a live Runtime must always agree with a
// mirror trie oracle. It complements the read-only FuzzSnapshotIndex.
// The raw bytes decode to 6-byte (opcode, address, prefix-length)
// records; Announce/Withdraw's completion guarantee (the snapshot
// containing the op is published before the call returns) is what makes
// the oracle comparison exact at every step.
func FuzzRuntimeUpdate(f *testing.F) {
	f.Add(int64(1), []byte{})
	// announce, lookup, withdraw, lookup on one prefix.
	f.Add(int64(2), []byte{
		0, 192, 168, 0, 0, 16,
		4, 192, 168, 0, 7, 0,
		3, 192, 168, 0, 0, 16,
		4, 192, 168, 0, 7, 0,
	})
	// fail worker, announce under degraded mode, recover, batch check.
	f.Add(int64(3), []byte{
		5, 0, 0, 0, 1, 0,
		0, 10, 1, 0, 0, 24,
		4, 10, 1, 0, 9, 0,
		6, 0, 0, 0, 1, 0,
		7, 10, 1, 0, 9, 0,
	})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 6*512 {
			raw = raw[:6*512]
		}
		const workers = 3
		// Base FIB of disjoint /8s: keeps the compressed table above the
		// tiny bucket count and gives lookups something to hit from op 0.
		base := []ip.Route{
			{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
			{Prefix: ip.MustParsePrefix("20.0.0.0/8"), NextHop: 2},
			{Prefix: ip.MustParsePrefix("30.0.0.0/8"), NextHop: 3},
			{Prefix: ip.MustParsePrefix("40.0.0.0/8"), NextHop: 4},
		}
		mirror := trie.New()
		for _, r := range base {
			mirror.Insert(r.Prefix, r.NextHop, nil)
		}
		rt, err := New(base, Config{
			Workers:    workers,
			QueueDepth: 16,
			BatchMax:   4,
			System:     core.Config{TCAMs: 2, Buckets: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()

		rng := rand.New(rand.NewSource(seed))
		check := func(a ip.Addr) {
			t.Helper()
			// Compare next hops, not matched prefixes: compression merges a
			// more-specific into its cover when the hops agree, so the
			// compressed table may answer with a shorter prefix than the trie.
			want, _ := mirror.Lookup(a, nil)
			hop, pfx, ok := rt.Lookup(a)
			if ok != (want != ip.NoRoute) || (ok && hop != want) {
				t.Fatalf("Lookup(%s) = %d/%s/%v, oracle %d", a, hop, pfx, ok, want)
			}
			res, err := rt.Dispatch(a)
			if err != nil {
				t.Fatalf("Dispatch(%s): %v", a, err)
			}
			if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
				t.Fatalf("Dispatch(%s) = %+v, oracle %d", a, res, want)
			}
		}

		for i := 0; i+6 <= len(raw); i += 6 {
			op := raw[i] % 8
			a := ip.Addr(uint32(raw[i+1])<<24 | uint32(raw[i+2])<<16 | uint32(raw[i+3])<<8 | uint32(raw[i+4]))
			p, err := ip.NewPrefix(a, int(raw[i+5])%33)
			if err != nil {
				t.Fatal(err)
			}
			switch op {
			case 0, 1, 2: // announce
				hop := ip.NextHop(int(raw[i])%14 + 1)
				if _, err := rt.Announce(p, hop); err == nil {
					mirror.Insert(p, hop, nil)
				}
				check(p.First())
				check(p.Last())
			case 3: // withdraw (absent prefixes are no-ops on both sides)
				if _, err := rt.Withdraw(p); err == nil {
					mirror.Delete(p, nil)
				}
				check(p.First())
				check(p.Last())
			case 4: // point lookups
				check(a)
				check(ip.Addr(rng.Uint32()))
			case 5: // fail a worker; refusals (last healthy, already down) are expected
				if err := rt.FailWorker(int(a) % workers); err != nil && !errors.Is(err, ErrWorkerState) {
					t.Fatalf("FailWorker: %v", err)
				}
			case 6: // recover a worker; refusing a healthy one is expected
				if err := rt.RecoverWorker(int(a) % workers); err != nil && !errors.Is(err, ErrWorkerState) {
					t.Fatalf("RecoverWorker: %v", err)
				}
			case 7: // batch lookup across random probes
				addrs := []ip.Addr{a, ip.Addr(rng.Uint32()), ip.Addr(rng.Uint32()), p.Last()}
				out, err := rt.DispatchBatch(addrs, nil)
				if err != nil {
					t.Fatalf("DispatchBatch: %v", err)
				}
				for j, res := range out {
					want, _ := mirror.Lookup(addrs[j], nil)
					if res.Found != (want != ip.NoRoute) || (res.Found && res.Hop != want) {
						t.Fatalf("DispatchBatch[%d](%s) = %+v, oracle %d", j, addrs[j], res, want)
					}
				}
			}
		}

		// Final sweep: every compressed route boundary plus random probes.
		snap := rt.Snapshot()
		for _, r := range snap.Routes() {
			check(r.Prefix.First())
			check(r.Prefix.Last())
		}
		for i := 0; i < 32; i++ {
			check(ip.Addr(rng.Uint32()))
		}
	})
}
