package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"clue/internal/dred"
	"clue/internal/ip"
)

// Result describes one lookup served through the partition workers.
type Result struct {
	// Hop and Prefix are the forwarding answer (Found false on no match).
	Hop    ip.NextHop
	Prefix ip.Prefix
	Found  bool
	// Home is the worker the range index assigned; Worker the one that
	// actually served (different when Diverted).
	Home   int
	Worker int
	// Diverted reports the home queue was full and the lookup was
	// redirected to the least-loaded worker.
	Diverted bool
	// CacheHit reports a diverted lookup answered from the serving
	// worker's DRed-analog cache without touching the snapshot.
	CacheHit bool
	// Version is the snapshot version that answered.
	Version uint64
}

// lookupReq travels down a worker queue; done is a 1-buffered reply
// channel owned by the dispatcher.
type lookupReq struct {
	addr     ip.Addr
	home     int
	diverted bool
	done     chan Result
	// batch, when non-nil, carries a whole home-partition group of
	// addresses: the worker serves all of them against one snapshot load,
	// writes the answers into out (same length as batch) and sends a
	// single completion sentinel on done.
	batch []ip.Addr
	out   []Result
	// stall, when non-nil, makes the worker block until the channel is
	// closed instead of serving — tests use it to hold a queue full and
	// exercise the divert path deterministically.
	stall <-chan struct{}
	// poison makes the worker panic on dequeue — the chaos/test hook for
	// the panic-recovery path.
	poison bool
}

// worker is one partition worker goroutine — the software analog of a
// TCAM chip with its FIFO queue and DRed partition. The cache is touched
// only by the worker's own goroutine, so it needs no locking; snapshot
// version changes are caught up lazily on the next request.
type worker struct {
	id    int
	rt    *Runtime
	queue chan lookupReq
	// state is the WorkerState health machine; dispatchers read it to
	// route around draining/failed workers.
	state atomic.Int32
	// cache holds foreign (other-home) prefixes served on the divert
	// path, LRU-evicted — the DRed with the reduced-redundancy fill rule.
	cache *dred.Cache
	// cacheVersion is the snapshot version the cache content reflects.
	cacheVersion uint64
	// cached mirrors cache.Len() so dispatchers can read cache occupancy
	// without touching the worker-owned cache (the load balancer skips
	// empty-range workers only while their caches are cold).
	cached atomic.Int64
	served atomic.Int64
	// sketch counts sampled served addresses per stride bucket — the
	// traffic-weight signal the rebalancer drains (Swap(0)) on each pass.
	// The worker goroutine only ever adds; the counters are atomic so the
	// drain needs no coordination with the serve path.
	sketch []atomic.Uint64
	// skTick drives the 1-in-sketchSamplePeriod recording sample;
	// worker-goroutine-owned, no atomics needed.
	skTick uint64
}

func newWorker(id int, rt *Runtime) *worker {
	return &worker{
		id:     id,
		rt:     rt,
		queue:  make(chan lookupReq, rt.cfg.QueueDepth),
		cache:  dred.NewCache(rt.cfg.CacheSize),
		sketch: make([]atomic.Uint64, sketchBuckets),
	}
}

// healthy reports whether the worker accepts new lookups.
func (w *worker) healthy() bool { return w.state.Load() == int32(WorkerHealthy) }

// run drains the queue until it is closed (Runtime.Close). The goroutine
// never dies early: handle recovers panics, so a failed worker keeps
// draining whatever was queued to it and stays recoverable.
func (w *worker) run() {
	defer w.rt.workersWG.Done()
	for req := range w.queue {
		w.handle(req)
	}
}

// handle serves one queued request, surviving panics: a panicking
// handler marks the worker failed (which re-homes its range) and still
// answers the request straight off the snapshot so the dispatcher never
// hangs on the done channel.
func (w *worker) handle(req lookupReq) {
	defer func() {
		if rec := recover(); rec != nil {
			w.rt.failAfterPanic(w)
			w.answerAfterPanic(req)
		}
	}()
	if req.stall != nil {
		<-req.stall
		return
	}
	if req.poison {
		panic(fmt.Sprintf("serve: worker %d poisoned", w.id))
	}
	if req.batch != nil {
		w.serveBatch(req)
		w.pace(len(req.batch))
		req.done <- Result{}
		return
	}
	res := w.serve(req)
	w.pace(1)
	req.done <- res
}

// pace holds the worker for ServicePace per address served, emulating a
// chip's fixed service rate (see Config.ServicePace). It runs after the
// snapshot work but before the answer is released, so a request's
// end-to-end latency includes its service time and the queue drains at
// the configured rate.
func (w *worker) pace(n int) {
	if p := w.rt.cfg.ServicePace; p > 0 {
		time.Sleep(p * time.Duration(n))
	}
}

// answerAfterPanic completes a request whose handler panicked before the
// done send (the only panic windows — serve, serveBatch, poison). The
// dispatcher is still waiting, so the answer is computed from the bare
// snapshot with no cache involvement.
func (w *worker) answerAfterPanic(req lookupReq) {
	if req.done == nil {
		return
	}
	slot := w.rt.ep.enter(uint64(w.id))
	defer slot.exit()
	snap := w.rt.snap.Load()
	if req.batch != nil {
		for i, a := range req.batch {
			hop, pfx, ok := snap.Lookup(a)
			req.out[i] = Result{Hop: hop, Prefix: pfx, Found: ok, Home: req.home, Worker: w.id, Diverted: req.diverted, Version: snap.Version}
		}
		req.done <- Result{}
		return
	}
	hop, pfx, ok := snap.Lookup(req.addr)
	req.done <- Result{Hop: hop, Prefix: pfx, Found: ok, Home: req.home, Worker: w.id, Diverted: req.diverted, Version: snap.Version}
}

// serve answers one request against the current snapshot, keeping the
// cache consistent with it first. The epoch pin spans the whole
// request: the snapshot's arena cannot be recycled while this worker
// still probes it.
func (w *worker) serve(req lookupReq) Result {
	slot := w.rt.ep.enter(uint64(w.id))
	defer slot.exit()
	snap := w.rt.snap.Load()
	w.syncCache(snap)
	w.served.Add(1)
	return w.answer(snap, req.addr, req.home, req.diverted)
}

// serveBatch answers a whole home-partition group against one snapshot
// load and one epoch pin — the per-request snapshot and cache-sync
// overhead is paid once for the group, and the group's addresses share
// the worker's cache-warm slice of the table.
func (w *worker) serveBatch(req lookupReq) {
	slot := w.rt.ep.enter(uint64(w.id))
	defer slot.exit()
	snap := w.rt.snap.Load()
	w.syncCache(snap)
	w.served.Add(int64(len(req.batch)))
	for i, a := range req.batch {
		req.out[i] = w.answer(snap, a, req.home, req.diverted)
	}
}

// answer resolves one address: diverted requests probe the DRed-analog
// cache first and fill it on miss (the reduced-redundancy rule — the
// prefix's home is elsewhere, so caching it cannot duplicate this
// worker's own partition).
func (w *worker) answer(snap *Snapshot, addr ip.Addr, home int, diverted bool) Result {
	w.skTick++
	if w.skTick&(sketchSamplePeriod-1) == 0 {
		w.sketch[uint32(addr)>>sketchShift].Add(1)
	}
	res := Result{Home: home, Worker: w.id, Diverted: diverted, Version: snap.Version}
	if diverted {
		if hop, pfx, ok := w.cache.Lookup(addr); ok {
			w.rt.m.cacheHits.Add(1)
			res.Hop, res.Prefix, res.Found, res.CacheHit = hop, pfx, true, true
			return res
		}
		w.rt.m.cacheMisses.Add(1)
	}
	res.Hop, res.Prefix, res.Found = snap.Lookup(addr)
	if diverted && res.Found {
		w.cache.Insert(ip.Route{Prefix: res.Prefix, NextHop: res.Hop})
		w.cached.Store(int64(w.cache.Len()))
	}
	return res
}

// syncCache brings the cache up to snap's version: one version ahead is
// fixed with the snapshot's targeted stale-prefix invalidations (the
// cheap DRed maintenance the paper's update pipeline performs); a larger
// jump means intermediate stale lists were missed, so the cache is
// flushed wholesale.
func (w *worker) syncCache(snap *Snapshot) {
	if snap.Version == w.cacheVersion {
		return
	}
	if snap.Version == w.cacheVersion+1 && !snap.flushCaches {
		for _, p := range snap.stale {
			if w.cache.Invalidate(p) {
				w.rt.m.cacheInvalid.Add(1)
			}
		}
		w.cached.Store(int64(w.cache.Len()))
	} else {
		// Reset (not reallocate) so the flush keeps the cache's Stats
		// history and reuses the trie/map/list structures.
		w.cache.Reset()
		w.rt.m.cacheFlushes.Add(1)
		w.cached.Store(0)
	}
	w.cacheVersion = snap.Version
}

// resetSketch zeroes the traffic sketch. The writer calls it on every
// worker when a cache-flushing (re-homed) snapshot publishes: samples
// recorded under the old cut assignment must not feed the next recut
// decision again. Doing it at publication rather than lazily in
// syncCache matters — a worker that serves nothing between the flush
// and the next rebalance pass would otherwise hand its stale samples
// to the drain. The rebalancer's decayed aggregate (not this buffer)
// carries the traffic estimate across recuts.
func (w *worker) resetSketch() {
	for i := range w.sketch {
		w.sketch[i].Store(0)
	}
}
