package serve

import (
	"math/rand"
	"testing"

	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/trie"
)

func testRoutes(t testing.TB, n int, seed int64) (*trie.Trie, []ip.Route) {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: n})
	if err != nil {
		t.Fatal(err)
	}
	return fib, fib.Routes()
}

func TestSnapshotLookupMatchesFIB(t *testing.T) {
	fib, _ := testRoutes(t, 4000, 11)
	table := onrtc.Compress(fib)
	snap := newSnapshot(1, table.Routes(), 4, nil)
	if snap.Len() != table.Len() {
		t.Fatalf("snapshot has %d routes, table %d", snap.Len(), table.Len())
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		a := ip.Addr(rng.Uint32())
		want, _ := fib.Lookup(a, nil)
		hop, pfx, ok := snap.Lookup(a)
		if ok != (want != ip.NoRoute) || (ok && hop != want) {
			t.Fatalf("lookup(%s) = %d,%v want %d", a, hop, ok, want)
		}
		if ok && !pfx.Contains(a) {
			t.Fatalf("lookup(%s) matched prefix %s not containing it", a, pfx)
		}
	}
}

func TestSnapshotHomeRangeIndex(t *testing.T) {
	fib, _ := testRoutes(t, 3000, 12)
	snap := newSnapshot(1, onrtc.Compress(fib).Routes(), 4, nil)
	if snap.Workers() != 4 {
		t.Fatalf("workers = %d", snap.Workers())
	}
	// Homes must be monotone over the address space and cover [0, 3].
	prev := 0
	seen := make(map[int]bool)
	for i := 0; i < 1<<16; i++ {
		a := ip.Addr(uint32(i) << 16)
		h := snap.Home(a)
		if h < 0 || h >= 4 {
			t.Fatalf("home(%s) = %d out of range", a, h)
		}
		if h < prev {
			t.Fatalf("home not monotone at %s: %d after %d", a, h, prev)
		}
		prev = h
		seen[h] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 homes used", len(seen))
	}
	// Every route's first address must be homed to the partition that
	// holds it (the cut points come from the routes themselves).
	routes := snap.Routes()
	for i, r := range routes {
		want := i * snap.Workers() / len(routes)
		_ = want // partition boundaries are count cuts; just ensure valid
		if h := snap.Home(r.Prefix.First()); h < 0 || h >= snap.Workers() {
			t.Fatalf("route %s homed to %d", r.Prefix, h)
		}
	}
}

func TestSnapshotFewerRoutesThanWorkers(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("192.168.0.0/16"), NextHop: 2},
	}
	snap := newSnapshot(1, routes, 8, nil)
	if hop, _, ok := snap.Lookup(ip.MustParseAddr("10.1.2.3")); !ok || hop != 1 {
		t.Fatalf("lookup inside 10/8 = %d,%v", hop, ok)
	}
	if _, _, ok := snap.Lookup(ip.MustParseAddr("172.16.0.1")); ok {
		t.Fatal("lookup outside routes matched")
	}
	for _, a := range []string{"0.0.0.0", "10.1.2.3", "255.255.255.255"} {
		if h := snap.Home(ip.MustParseAddr(a)); h < 0 || h >= 8 {
			t.Fatalf("home(%s) = %d", a, h)
		}
	}
}

func TestSnapshotEmptyTable(t *testing.T) {
	snap := newSnapshot(1, nil, 4, nil)
	if _, _, ok := snap.Lookup(ip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty snapshot matched")
	}
	if h := snap.Home(ip.MustParseAddr("10.0.0.1")); h != 0 {
		t.Fatalf("empty snapshot home = %d", h)
	}
}
