package serve

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/trie"
)

func testRoutes(t testing.TB, n int, seed int64) (*trie.Trie, []ip.Route) {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: n})
	if err != nil {
		t.Fatal(err)
	}
	return fib, fib.Routes()
}

func TestSnapshotLookupMatchesFIB(t *testing.T) {
	fib, _ := testRoutes(t, 4000, 11)
	table := onrtc.Compress(fib)
	snap := newSnapshot(1, table.Routes(), 4, nil)
	if snap.Len() != table.Len() {
		t.Fatalf("snapshot has %d routes, table %d", snap.Len(), table.Len())
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		a := ip.Addr(rng.Uint32())
		want, _ := fib.Lookup(a, nil)
		hop, pfx, ok := snap.Lookup(a)
		if ok != (want != ip.NoRoute) || (ok && hop != want) {
			t.Fatalf("lookup(%s) = %d,%v want %d", a, hop, ok, want)
		}
		if ok && !pfx.Contains(a) {
			t.Fatalf("lookup(%s) matched prefix %s not containing it", a, pfx)
		}
	}
}

func TestSnapshotHomeRangeIndex(t *testing.T) {
	fib, _ := testRoutes(t, 3000, 12)
	snap := newSnapshot(1, onrtc.Compress(fib).Routes(), 4, nil)
	if snap.Workers() != 4 {
		t.Fatalf("workers = %d", snap.Workers())
	}
	// Homes must be monotone over the address space and cover [0, 3].
	prev := 0
	seen := make(map[int]bool)
	for i := 0; i < 1<<16; i++ {
		a := ip.Addr(uint32(i) << 16)
		h := snap.Home(a)
		if h < 0 || h >= 4 {
			t.Fatalf("home(%s) = %d out of range", a, h)
		}
		if h < prev {
			t.Fatalf("home not monotone at %s: %d after %d", a, h, prev)
		}
		prev = h
		seen[h] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 homes used", len(seen))
	}
	// Every route's first address must be homed to the partition that
	// holds it (the cut points come from the routes themselves).
	routes := snap.Routes()
	for i, r := range routes {
		want := i * snap.Workers() / len(routes)
		_ = want // partition boundaries are count cuts; just ensure valid
		if h := snap.Home(r.Prefix.First()); h < 0 || h >= snap.Workers() {
			t.Fatalf("route %s homed to %d", r.Prefix, h)
		}
	}
}

func TestSnapshotFewerRoutesThanWorkers(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("192.168.0.0/16"), NextHop: 2},
	}
	snap := newSnapshot(1, routes, 8, nil)
	if hop, _, ok := snap.Lookup(ip.MustParseAddr("10.1.2.3")); !ok || hop != 1 {
		t.Fatalf("lookup inside 10/8 = %d,%v", hop, ok)
	}
	if _, _, ok := snap.Lookup(ip.MustParseAddr("172.16.0.1")); ok {
		t.Fatal("lookup outside routes matched")
	}
	for _, a := range []string{"0.0.0.0", "10.1.2.3", "255.255.255.255"} {
		if h := snap.Home(ip.MustParseAddr(a)); h < 0 || h >= 8 {
			t.Fatalf("home(%s) = %d", a, h)
		}
	}
}

func TestSnapshotEmptyTable(t *testing.T) {
	snap := newSnapshot(1, nil, 4, nil)
	if _, _, ok := snap.Lookup(ip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty snapshot matched")
	}
	if h := snap.Home(ip.MustParseAddr("10.0.0.1")); h != 0 {
		t.Fatalf("empty snapshot home = %d", h)
	}
	if snap.Indexed() {
		t.Fatal("empty snapshot claims a stride index")
	}
}

// TestSnapshotIndexedMatchesBinary drives the stride-indexed fast path
// against the binary-search oracle over a FIB large enough to build the
// index, probing random addresses plus every route boundary (First,
// Last, and their neighbours — the addresses where an off-by-one in the
// bucket cut points would bite).
func TestSnapshotIndexedMatchesBinary(t *testing.T) {
	fib, _ := testRoutes(t, 6000, 41)
	snap := newSnapshot(1, onrtc.Compress(fib).Routes(), 4, nil)
	if !snap.Indexed() {
		t.Fatalf("no stride index over %d routes", snap.Len())
	}
	check := func(a ip.Addr) {
		t.Helper()
		hopI, pfxI, okI := snap.Lookup(a)
		hopB, pfxB, okB := snap.LookupBinary(a)
		if okI != okB || hopI != hopB || pfxI != pfxB {
			t.Fatalf("indexed lookup(%s) = %d,%s,%v; binary = %d,%s,%v",
				a, hopI, pfxI, okI, hopB, pfxB, okB)
		}
	}
	for _, r := range snap.Routes() {
		for _, a := range []ip.Addr{r.Prefix.First(), r.Prefix.Last()} {
			check(a)
			if a > 0 {
				check(a - 1)
			}
			if a < ip.Addr(^uint32(0)) {
				check(a + 1)
			}
		}
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 50000; i++ {
		check(ip.Addr(rng.Uint32()))
	}
}

// TestSnapshotIndexShortPrefixes exercises buckets covered by prefixes
// shorter than the 16-bit stride — the spanning-route case where a
// bucket's candidate sits at index[b+1] or covers many whole buckets.
func TestSnapshotIndexShortPrefixes(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustParsePrefix("0.0.0.0/4"), NextHop: 1},   // 4096 buckets
		{Prefix: ip.MustParsePrefix("16.0.0.0/8"), NextHop: 2},  // 256 buckets
		{Prefix: ip.MustParsePrefix("17.0.0.0/12"), NextHop: 3}, // 16 buckets
		{Prefix: ip.MustParsePrefix("17.16.0.0/16"), NextHop: 4},
		{Prefix: ip.MustParsePrefix("17.17.0.0/24"), NextHop: 5},
		{Prefix: ip.MustParsePrefix("17.17.1.0/24"), NextHop: 6},
		{Prefix: ip.MustParsePrefix("128.0.0.0/1"), NextHop: 7}, // half the space
	}
	snap := newSnapshot(1, routes, 4, nil)
	snap.index = buildIndexInto(snap.ar, snap.rng) // force the index despite the tiny table
	for _, tc := range []struct {
		addr string
		hop  ip.NextHop
	}{
		{"0.0.0.1", 1}, {"15.255.255.255", 1},
		{"16.0.0.0", 2}, {"16.200.7.1", 2}, {"16.255.255.255", 2},
		{"17.0.0.0", 3}, {"17.15.255.255", 3},
		{"17.16.0.5", 4}, {"17.17.0.9", 5}, {"17.17.1.9", 6},
		{"128.0.0.0", 7}, {"200.1.2.3", 7}, {"255.255.255.255", 7},
	} {
		a := ip.MustParseAddr(tc.addr)
		hop, _, ok := snap.Lookup(a)
		if !ok || hop != tc.hop {
			t.Errorf("lookup(%s) = %d,%v want %d", tc.addr, hop, ok, tc.hop)
		}
	}
	for _, miss := range []string{"17.17.2.1", "17.18.0.1", "32.0.0.1", "127.255.255.255"} {
		if hop, _, ok := snap.Lookup(ip.MustParseAddr(miss)); ok {
			t.Errorf("lookup(%s) matched %d, want no route", miss, hop)
		}
	}
}

// indexOver builds a fresh arena-backed index over routes (test helper).
func indexOver(routes []ip.Route) (*arena, strideIndex) {
	ar := newArena(len(routes))
	rng, hop := ar.routeSlabs(len(routes))
	fillSlabs(rng, hop, routes)
	return ar, buildIndexInto(ar, rng)
}

// TestStrideIndexPatchMatchesRebuild checks the incremental index patch
// (count deltas from the batch's inserted/deleted route last-addresses)
// against a from-scratch rebuild, over randomized insert/delete churn.
// Cut points must agree exactly at both levels; the promotion sets may
// differ (a patch never demotes and promotes only boundedly), so
// sub-arrays are compared where both sides carry them and the full
// lookup behavior is cross-checked route by route.
func TestStrideIndexPatchMatchesRebuild(t *testing.T) {
	fib, _ := testRoutes(t, 4000, 42)
	routes := onrtc.Compress(fib).Routes()
	_, idx := indexOver(routes)
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		var insLast, delLast []ip.Addr
		// Delete a random handful...
		for i := 0; i < 5 && len(routes) > 0; i++ {
			j := rng.Intn(len(routes))
			delLast = append(delLast, routes[j].Prefix.Last())
			routes = append(routes[:j], routes[j+1:]...)
		}
		// ...and insert fresh /26es into gaps (retrying collisions away).
		for i := 0; i < 5; i++ {
			p := ip.MustPrefix(ip.Addr(rng.Uint32()), 26)
			overlap := false
			for _, r := range routes {
				if r.Prefix.Overlaps(p) {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			at := sort.Search(len(routes), func(i int) bool {
				return routes[i].Prefix.Compare(p) >= 0
			})
			routes = append(routes, ip.Route{})
			copy(routes[at+1:], routes[at:])
			routes[at] = ip.Route{Prefix: p, NextHop: 9}
			insLast = append(insLast, p.Last())
		}
		slices.Sort(insLast)
		slices.Sort(delLast)
		next := newArena(len(routes))
		nrng, nhop := next.routeSlabs(len(routes))
		fillSlabs(nrng, nhop, routes)
		idx = patchIndexInto(next, idx, nrng, insLast, delLast, len(routes))
		_, want := indexOver(routes)
		for b := 0; b <= strideBuckets; b++ {
			if l1Cut(idx.l1[b]) != l1Cut(want.l1[b]) {
				t.Fatalf("round %d: patched cut[%#x] = %d, rebuild %d", round, b, l1Cut(idx.l1[b]), l1Cut(want.l1[b]))
			}
		}
		for b := 0; b < strideBuckets; b++ {
			pr, wr := idx.l1[b]>>32, want.l1[b]>>32
			if pr == 0 || wr == 0 {
				continue
			}
			po, wo := (pr-1)<<subBits, (wr-1)<<subBits
			for j := uint64(0); j < subEntries; j++ {
				if idx.subs[po+j] != want.subs[wo+j] {
					t.Fatalf("round %d: bucket %#x sub cut[%d] = %d, rebuild %d",
						round, b, j, idx.subs[po+j], want.subs[wo+j])
				}
			}
		}
	}
}

// TestSnapshotLookupZeroAllocs is the allocation contract of the lookup
// fast path: the indexed snapshot probe and the runtime's RCU read side
// must not allocate.
func TestSnapshotLookupZeroAllocs(t *testing.T) {
	fib, routes := testRoutes(t, 5000, 43)
	snap := newSnapshot(1, onrtc.Compress(fib).Routes(), 4, nil)
	if !snap.Indexed() {
		t.Fatalf("no stride index over %d routes", snap.Len())
	}
	rng := rand.New(rand.NewSource(43))
	addrs := make([]ip.Addr, 1024)
	for i := range addrs {
		addrs[i] = ip.Addr(rng.Uint32())
	}
	i := 0
	if n := testing.AllocsPerRun(2000, func() {
		snap.Lookup(addrs[i&1023])
		i++
	}); n != 0 {
		t.Fatalf("Snapshot.Lookup allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(2000, func() {
		snap.LookupBinary(addrs[i&1023])
		i++
	}); n != 0 {
		t.Fatalf("Snapshot.LookupBinary allocates %.1f per op", n)
	}
	rt, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if n := testing.AllocsPerRun(2000, func() {
		rt.Lookup(addrs[i&1023])
		i++
	}); n != 0 {
		t.Fatalf("Runtime.Lookup allocates %.1f per op", n)
	}
}

// TestSnapshotTinyTableCutPoints is the regression for partition cut
// points when the table is smaller than the worker count: active workers
// must own strictly-increasing non-empty ranges, the tail workers must
// be marked empty, and Home must never return an empty worker — not
// even for 255.255.255.255, which the old sentinel cut points homed to
// the last (empty) worker.
func TestSnapshotTinyTableCutPoints(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("192.168.0.0/16"), NextHop: 2},
	}
	snap := newSnapshot(1, routes, 4, nil)
	for i, wantEmpty := range []bool{false, false, true, true} {
		if snap.emptyHome(i) != wantEmpty {
			t.Fatalf("worker %d empty = %v, want %v", i, snap.emptyHome(i), wantEmpty)
		}
	}
	for _, tc := range []struct {
		addr string
		home int
	}{
		{"0.0.0.0", 0}, {"10.1.2.3", 0}, {"100.0.0.1", 0},
		{"192.168.0.0", 1}, {"192.168.255.255", 1}, {"255.255.255.255", 1},
	} {
		if h := snap.Home(ip.MustParseAddr(tc.addr)); h != tc.home {
			t.Errorf("home(%s) = %d, want %d", tc.addr, h, tc.home)
		}
	}
	// Each route still resolves, and homes stay monotone over the space.
	if hop, _, ok := snap.Lookup(ip.MustParseAddr("192.168.3.4")); !ok || hop != 2 {
		t.Fatalf("lookup(192.168.3.4) = %d,%v", hop, ok)
	}
	prev := 0
	for i := 0; i < 1<<16; i++ {
		h := snap.Home(ip.Addr(uint32(i) << 16))
		if h < prev {
			t.Fatalf("home not monotone at bucket %d: %d after %d", i, h, prev)
		}
		prev = h
	}
}

func TestSnapshotLookupBatchMatchesSingle(t *testing.T) {
	fib, _ := testRoutes(t, 4000, 44)
	snap := newSnapshot(1, onrtc.Compress(fib).Routes(), 4, nil)
	rng := rand.New(rand.NewSource(44))
	addrs := make([]ip.Addr, 777)
	for i := range addrs {
		addrs[i] = ip.Addr(rng.Uint32())
	}
	out := snap.LookupBatch(addrs, nil)
	if len(out) != len(addrs) {
		t.Fatalf("batch returned %d results for %d addrs", len(out), len(addrs))
	}
	for i, a := range addrs {
		hop, pfx, ok := snap.Lookup(a)
		if out[i].Found != ok || out[i].Hop != hop || out[i].Prefix != pfx {
			t.Fatalf("batch[%d] (%s) = %+v, single = %d,%s,%v", i, a, out[i], hop, pfx, ok)
		}
	}
	// Reuse keeps the caller's slice.
	again := snap.LookupBatch(addrs[:100], out)
	if &again[0] != &out[0] || len(again) != 100 {
		t.Fatal("LookupBatch did not reuse the output slice")
	}
}
