package serve

import (
	"math/bits"
	"sync/atomic"
)

// The serve runtime's latency accounting is distributional, not just
// cumulative: the paper's evaluation (per-packet lookup delay under
// bursty traffic, the TTF1/TTF2/TTF3 update breakdown) lives in
// percentiles, and a p99 cliff on the divert path is invisible to
// monotonic counters. histogram is the building block: a lock-free,
// power-of-two-bucketed value recorder that is allocation-free on the
// hot path and cheap enough to leave on in production.
//
// Bucket b counts values v (nanoseconds, or queue entries for the depth
// histogram) with 2^(b-1) <= v < 2^b; bucket 0 counts v == 0. With
// histBuckets = 40 the top bucket's lower bound is 2^38 ns (~4.5 min),
// far beyond any latency the runtime can produce, so the catch-all
// bucket never distorts a real distribution.
const histBuckets = 40

// histogram is one shard: a fixed array of atomic counters plus sum and
// max registers. record is wait-free (the max update is a bounded CAS
// loop that only retries while another recorder is raising the max) and
// performs no allocation. Readers snapshot the counters with plain
// atomic loads; a snapshot racing recorders may be off by the in-flight
// records, which is fine for monitoring.
type histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v int64) int {
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// record adds one observation. Negative values (a clock step mid-sample)
// clamp to zero rather than corrupting the bucket index.
func (h *histogram) record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// latencyHist is a sharded histogram: one shard per partition worker (or
// a single shard for writer-owned series), so hot-path recorders on
// different workers never contend on the same cache lines. Shards merge
// at read time.
type latencyHist struct {
	shards []histogram
}

func newLatencyHist(shards int) *latencyHist {
	if shards < 1 {
		shards = 1
	}
	return &latencyHist{shards: make([]histogram, shards)}
}

// record adds v to the given shard; out-of-range shards (a request
// answered by a worker added after the histogram was sized — impossible
// today, cheap to guard) fold into shard 0.
func (l *latencyHist) record(shard int, v int64) {
	if shard < 0 || shard >= len(l.shards) {
		shard = 0
	}
	l.shards[shard].record(v)
}

// HistogramBucket is one populated bucket of a merged histogram: Le is
// the bucket's inclusive upper bound and Count the observations in
// (previous bound, Le]. Only non-empty buckets are exported, so bounds
// are sparse but strictly ascending.
type HistogramBucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// LatencySummary is the exported view of one merged histogram:
// percentiles estimated by linear interpolation inside the crossing
// power-of-two bucket (clamped to the exact observed Max), plus the
// sparse bucket list for Prometheus exposition and offline analysis.
type LatencySummary struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum_ns"`
	Mean    float64           `json:"mean_ns"`
	P50     float64           `json:"p50_ns"`
	P90     float64           `json:"p90_ns"`
	P99     float64           `json:"p99_ns"`
	Max     float64           `json:"max_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// summary merges the shards and computes the exported percentiles.
func (l *latencyHist) summary() LatencySummary {
	var (
		counts [histBuckets]uint64
		total  uint64
		sum    int64
		max    int64
	)
	for i := range l.shards {
		sh := &l.shards[i]
		for b := 0; b < histBuckets; b++ {
			c := sh.counts[b].Load()
			counts[b] += c
			total += c
		}
		sum += sh.sum.Load()
		if m := sh.max.Load(); m > max {
			max = m
		}
	}
	s := LatencySummary{Count: int64(total), Sum: float64(sum), Max: float64(max)}
	if total == 0 {
		return s
	}
	s.Mean = s.Sum / float64(total)
	s.P50 = percentile(&counts, total, max, 0.50)
	s.P90 = percentile(&counts, total, max, 0.90)
	s.P99 = percentile(&counts, total, max, 0.99)
	for b := 0; b < histBuckets; b++ {
		if counts[b] > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: bucketUpper(b), Count: counts[b]})
		}
	}
	return s
}

// bucketUpper returns bucket b's inclusive upper bound (2^b - 1; 0 for
// bucket 0).
func bucketUpper(b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(uint64(1)<<uint(b) - 1)
}

// percentile estimates the q-quantile from merged power-of-two buckets:
// find the bucket where the cumulative count crosses rank q*total, then
// interpolate linearly between the bucket's bounds. The estimate is
// clamped to the exact observed max so a lone outlier in a wide bucket
// cannot report a percentile beyond any real observation.
func percentile(counts *[histBuckets]uint64, total uint64, max int64, q float64) float64 {
	rank := q * float64(total)
	cum := float64(0)
	for b := 0; b < histBuckets; b++ {
		c := float64(counts[b])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := float64(0)
			if b > 0 {
				lo = float64(uint64(1) << uint(b-1))
			}
			hi := bucketUpper(b) + 1
			v := lo + (hi-lo)*(rank-cum)/c
			if m := float64(max); v > m {
				v = m
			}
			return v
		}
		cum += c
	}
	return float64(max)
}
