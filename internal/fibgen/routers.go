package fibgen

import "fmt"

// Router is one of the paper's 12 RIPE RIS collector profiles (Table I).
// Size is the generated route count; real collector tables in the paper's
// October 2011 snapshot ranged around 360K–420K entries.
type Router struct {
	// ID is the collector name (rrc01, rrc03, ...).
	ID string
	// Location is the collector's site from Table I.
	Location string
	// Size is the target route count for the generated table.
	Size int
	// Seed makes each router's table distinct but reproducible.
	Seed int64
}

// Routers lists the paper's 12 collectors (Table I) with generated-table
// sizes in the neighbourhood of the 2011 snapshot. Sizes can be scaled
// down uniformly with ScaleRouters for fast test runs.
func Routers() []Router {
	return []Router{
		{ID: "rrc01", Location: "LINX, London", Size: 380000, Seed: 101},
		{ID: "rrc03", Location: "AMS-IX, Amsterdam", Size: 395000, Seed: 103},
		{ID: "rrc04", Location: "CIXP, Geneva", Size: 402000, Seed: 104},
		{ID: "rrc05", Location: "VIX, Vienna", Size: 388000, Seed: 105},
		{ID: "rrc06", Location: "Otemachi, Japan", Size: 371000, Seed: 106},
		{ID: "rrc07", Location: "Stockholm, Sweden", Size: 377000, Seed: 107},
		{ID: "rrc11", Location: "New York (NY), USA", Size: 399000, Seed: 111},
		{ID: "rrc12", Location: "Frankfurt, Germany", Size: 405000, Seed: 112},
		{ID: "rrc13", Location: "Moscow, Russia", Size: 382000, Seed: 113},
		{ID: "rrc14", Location: "Palo Alto, USA", Size: 390000, Seed: 114},
		{ID: "rrc15", Location: "Sao Paulo, Brazil", Size: 368000, Seed: 115},
		{ID: "rrc16", Location: "Miami, USA", Size: 386000, Seed: 116},
	}
}

// ScaleRouters returns the 12 profiles with sizes divided by factor
// (minimum 100 routes each), for experiments that don't need full-size
// tables.
func ScaleRouters(factor int) ([]Router, error) {
	if factor < 1 {
		return nil, fmt.Errorf("fibgen: scale factor must be >= 1, got %d", factor)
	}
	rs := Routers()
	for i := range rs {
		rs[i].Size /= factor
		if rs[i].Size < 100 {
			rs[i].Size = 100
		}
	}
	return rs, nil
}

// Config returns the generation config for this router profile.
func (r Router) Config() Config {
	return Config{Seed: r.Seed, Routes: r.Size, NextHops: 16}
}
