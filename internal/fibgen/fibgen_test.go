package fibgen

import (
	"testing"

	"clue/internal/ip"
	"clue/internal/onrtc"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 7, Routes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 7, Routes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Routes(), b.Routes()
	if len(ra) != len(rb) {
		t.Fatalf("lens differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("route %d differs: %v vs %v", i, ra[i], rb[i])
		}
	}
	c, err := Generate(Config{Seed: 8, Routes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == a.Len() && routesEqual(c.Routes(), ra) {
		t.Error("different seeds produced identical tables")
	}
}

func routesEqual(a, b []ip.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGenerateReachesTarget(t *testing.T) {
	fib, err := Generate(Config{Seed: 1, Routes: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if fib.Len() < 10000 || fib.Len() > 10100 {
		t.Errorf("generated %d routes, want ≈10000", fib.Len())
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Routes: 0}); err == nil {
		t.Error("Routes=0 accepted")
	}
	if _, err := Generate(Config{Routes: -5}); err == nil {
		t.Error("negative Routes accepted")
	}
}

func TestGenerateHopRange(t *testing.T) {
	fib, err := Generate(Config{Seed: 2, Routes: 3000, NextHops: 4})
	if err != nil {
		t.Fatal(err)
	}
	fib.WalkRoutes(func(r ip.Route) bool {
		if r.NextHop < 1 || r.NextHop > 4 {
			t.Errorf("hop %d outside [1,4]", r.NextHop)
			return false
		}
		return true
	})
}

// TestCompressionRatioNearPaper pins the calibration: generated tables
// must compress to the neighbourhood of the paper's 71 %.
func TestCompressionRatioNearPaper(t *testing.T) {
	for _, seed := range []int64{1, 42, 101} {
		fib, err := Generate(Config{Seed: seed, Routes: 30000})
		if err != nil {
			t.Fatal(err)
		}
		_, stats := onrtc.CompressWithStats(fib)
		if r := stats.Ratio(); r < 0.60 || r > 0.82 {
			t.Errorf("seed %d: compression ratio = %.3f, want ≈0.71", seed, r)
		}
		if stats.ExpansionRatio() <= 1.0 {
			t.Errorf("seed %d: leaf-push expansion = %.3f, should exceed 1", seed, stats.ExpansionRatio())
		}
	}
}

func TestLengthHistogramPeaksAt24(t *testing.T) {
	fib, err := Generate(Config{Seed: 3, Routes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	h := LengthHistogram(fib)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != fib.Len() {
		t.Errorf("histogram total %d != routes %d", total, fib.Len())
	}
	for l := 0; l <= 32; l++ {
		if l != 24 && h[l] > h[24] {
			t.Errorf("length %d count %d exceeds /24 count %d", l, h[l], h[24])
		}
	}
	if frac := float64(h[24]) / float64(total); frac < 0.35 {
		t.Errorf("/24 fraction = %.2f, want the realistic majority share", frac)
	}
}

func TestRoutersProfiles(t *testing.T) {
	rs := Routers()
	if len(rs) != 12 {
		t.Fatalf("got %d routers, want 12 (Table I)", len(rs))
	}
	seenID := map[string]bool{}
	seenSeed := map[int64]bool{}
	for _, r := range rs {
		if seenID[r.ID] {
			t.Errorf("duplicate router ID %s", r.ID)
		}
		if seenSeed[r.Seed] {
			t.Errorf("duplicate router seed %d", r.Seed)
		}
		seenID[r.ID] = true
		seenSeed[r.Seed] = true
		if r.Size < 300000 || r.Size > 450000 {
			t.Errorf("%s size %d outside the 2011 snapshot neighbourhood", r.ID, r.Size)
		}
		if r.Location == "" {
			t.Errorf("%s has no location", r.ID)
		}
		cfg := r.Config()
		if cfg.Routes != r.Size || cfg.Seed != r.Seed {
			t.Errorf("%s Config mismatch: %+v", r.ID, cfg)
		}
	}
}

func TestScaleRouters(t *testing.T) {
	rs, err := ScaleRouters(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Size < 100 || r.Size > 5000 {
			t.Errorf("%s scaled size = %d", r.ID, r.Size)
		}
	}
	// Huge factor clamps at the 100-route floor.
	rs, err = ScaleRouters(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Size != 100 {
			t.Errorf("%s clamped size = %d, want 100", r.ID, r.Size)
		}
	}
	if _, err := ScaleRouters(0); err == nil {
		t.Error("factor 0 accepted")
	}
}

func TestGeneratedTableIsCompressible(t *testing.T) {
	// End-to-end sanity on a scaled router profile.
	rs, err := ScaleRouters(400)
	if err != nil {
		t.Fatal(err)
	}
	fib, err := Generate(rs[0].Config())
	if err != nil {
		t.Fatal(err)
	}
	table := onrtc.Compress(fib)
	if table.Trie().Overlapping() {
		t.Error("compressed generated table overlaps")
	}
	if table.Len() >= fib.Len() {
		t.Errorf("no compression achieved: %d >= %d", table.Len(), fib.Len())
	}
}
