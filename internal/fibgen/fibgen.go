// Package fibgen generates synthetic routing tables (FIBs) with the
// structural properties that drive every experiment in the paper:
// a realistic prefix-length mix peaked at /24, hierarchical allocation
// blocks with covering routes, runs of consecutive same-hop /24s (the
// fuel for ONRTC's sibling merges), redundant more-specifics (collapse
// into their covers) and occasional different-hop specifics (the source
// of split expansion).
//
// The paper evaluates on RIPE RIS RIB dumps from 12 collectors; those
// dumps are not shippable, so Routers exposes 12 profiles named after the
// paper's Table I whose generated tables land near the paper's measured
// ≈71 % ONRTC compression ratio. The substitution is documented in
// DESIGN.md: compression, partitioning and update behaviour depend on
// trie shape and next-hop correlation, which these knobs control.
package fibgen

import (
	"fmt"
	"math/rand"

	"clue/internal/ip"
	"clue/internal/trie"
)

// Config parameterises a synthetic FIB.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Routes is the target route count (the generator stops at or just
	// above it).
	Routes int
	// NextHops is the number of distinct peers (must be >= 2).
	NextHops int

	// AggregatedBlockWeight, PlainRunWeight, SparseWeight and DeepWeight
	// select the mix of allocation-block shapes; they are normalised
	// internally. Zero values fall back to the calibrated defaults.
	AggregatedBlockWeight float64
	PlainRunWeight        float64
	SparseWeight          float64
	DeepWeight            float64

	// ShortWeight selects isolated short backbone prefixes (/8../15),
	// which widen the TCAM length-zone occupancy like real tables do.
	ShortWeight float64

	// SameHopBias is the probability that a nested or consecutive
	// prefix keeps its neighbourhood's next hop — the main compression
	// knob. Zero falls back to the calibrated default.
	SameHopBias float64
}

// calibrated defaults reproduce the paper's ≈71 % compression ratio on
// generated tables (see TestCompressionRatioNearPaper).
const (
	defaultAggWeight   = 0.29
	defaultPlainWeight = 0.25
	defaultSparse      = 0.36
	defaultDeep        = 0.06
	defaultShort       = 0.04
	defaultSameHopBias = 0.87
)

func (c Config) withDefaults() Config {
	if c.AggregatedBlockWeight == 0 && c.PlainRunWeight == 0 && c.SparseWeight == 0 && c.DeepWeight == 0 {
		c.AggregatedBlockWeight = defaultAggWeight
		c.PlainRunWeight = defaultPlainWeight
		c.SparseWeight = defaultSparse
		c.DeepWeight = defaultDeep
		c.ShortWeight = defaultShort
	}
	if c.SameHopBias == 0 {
		c.SameHopBias = defaultSameHopBias
	}
	if c.NextHops < 2 {
		c.NextHops = 16
	}
	return c
}

// Generate builds a FIB trie per cfg. The result is deterministic in
// cfg.Seed.
func Generate(cfg Config) (*trie.Trie, error) {
	if cfg.Routes < 1 {
		return nil, fmt.Errorf("fibgen: Routes must be >= 1, got %d", cfg.Routes)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng, fib: trie.New(), family: make(map[ip.Addr]ip.NextHop)}
	// Large covered aggregates first: a few /8 covers each holding a
	// few percent of the table, like the big ISP allocations in real
	// tables. They are what makes sub-tree partitioning pay replication.
	if cfg.Routes >= 500 {
		for i := 0; i < 4 && g.fib.Len() < cfg.Routes/4; i++ {
			g.megaBlock(i, cfg.Routes/16)
		}
	}
	for g.fib.Len() < cfg.Routes {
		g.block()
	}
	return g.fib, nil
}

type generator struct {
	cfg Config
	rng *rand.Rand
	fib *trie.Trie
	// family remembers the hop neighbourhood of each /16 base so that
	// later blocks landing in an already-used /16 stay hop-correlated
	// with it, as real allocations inside one /16 are.
	family map[ip.Addr]ip.NextHop
}

// hop draws a random next hop in [1, NextHops].
func (g *generator) hop() ip.NextHop {
	return ip.NextHop(g.rng.Intn(g.cfg.NextHops) + 1)
}

// nearHop returns h with probability SameHopBias, otherwise a fresh hop.
func (g *generator) nearHop(h ip.NextHop) ip.NextHop {
	if g.rng.Float64() < g.cfg.SameHopBias {
		return h
	}
	return g.hop()
}

// blockBase picks a random /19-aligned allocation base in unicast-looking
// space (first octet 32..223 — octets 1..31 are reserved for short
// backbone prefixes so block structure never collides with them) and the
// hop family anchored there. /19 granularity gives ~390K distinct bases,
// so even a 400K-route table rarely lands two blocks on the same
// allocation.
func (g *generator) blockBase() (ip.Addr, ip.NextHop) {
	first := uint32(g.rng.Intn(192) + 32)
	rest := uint32(g.rng.Intn(1 << 11)) // bits 8..18
	base := ip.Addr(first<<24 | rest<<13)
	h, ok := g.family[base]
	if !ok {
		h = g.hop()
		g.family[base] = h
	}
	return base, h
}

// block emits one allocation block according to the weighted mix.
func (g *generator) block() {
	total := g.cfg.AggregatedBlockWeight + g.cfg.PlainRunWeight + g.cfg.SparseWeight + g.cfg.DeepWeight + g.cfg.ShortWeight
	w := g.rng.Float64() * total
	switch {
	case w < g.cfg.AggregatedBlockWeight:
		g.aggregatedBlock()
	case w < g.cfg.AggregatedBlockWeight+g.cfg.PlainRunWeight:
		g.plainRunBlock()
	case w < g.cfg.AggregatedBlockWeight+g.cfg.PlainRunWeight+g.cfg.SparseWeight:
		g.sparseBlock()
	case w < g.cfg.AggregatedBlockWeight+g.cfg.PlainRunWeight+g.cfg.SparseWeight+g.cfg.DeepWeight:
		g.deepBlock()
	default:
		g.shortBlock()
	}
}

// blockSlots is the number of /24s in one /19 allocation block.
const blockSlots = 32

// runLen draws a small geometric-ish run length in [1, blockSlots].
func (g *generator) runLen() int {
	l := 1
	for l < blockSlots && g.rng.Float64() < 0.62 {
		l++
	}
	return l
}

// aggregatedBlock: a covering /19 plus a run of consecutive /24s inside
// it. Run members biased toward the cover's hop become pure redundancy
// (they vanish under ONRTC); the rest cause bounded splits.
func (g *generator) aggregatedBlock() {
	base, h := g.blockBase()
	cover := ip.MustPrefix(base, 19)
	g.fib.Insert(cover, h, nil)
	start := g.rng.Intn(blockSlots)
	n := g.runLen()
	runHop := g.nearHop(h)
	for i := 0; i < n && start+i < blockSlots; i++ {
		p := ip.MustPrefix(base+ip.Addr(start+i)<<8, 24)
		g.fib.Insert(p, runHop, nil)
	}
}

// plainRunBlock: a run of consecutive same-hop /24s with no cover — the
// classic sibling-merge fuel.
func (g *generator) plainRunBlock() {
	base, family := g.blockBase()
	start := g.rng.Intn(blockSlots)
	n := g.runLen()
	h := g.nearHop(family)
	for i := 0; i < n && start+i < blockSlots; i++ {
		p := ip.MustPrefix(base+ip.Addr(start+i)<<8, 24)
		g.fib.Insert(p, h, nil)
	}
}

// sparseBlock: isolated mid-length prefixes with independent hops (often
// foreign announcements inside an allocation) — these neither merge nor
// split (ratio ≈1 contribution).
func (g *generator) sparseBlock() {
	base, _ := g.blockBase()
	n := g.rng.Intn(3) + 1
	for i := 0; i < n; i++ {
		length := 20 + g.rng.Intn(4) // /20../23
		if g.rng.Float64() < 0.04 {
			length = 25 + g.rng.Intn(4) // rare /25../28
		}
		off := ip.Addr(g.rng.Intn(blockSlots)) << 8
		p := ip.MustPrefix(base+off, length)
		g.fib.Insert(p, g.hop(), nil)
	}
}

// shortBlock: an isolated short backbone prefix (/8../15) in the reserved
// low-octet space (first octet 1..15), with its own hop. Real tables
// carry a few thousand of these; they populate the short TCAM length
// zones that make prefix-length-ordered updates expensive.
func (g *generator) shortBlock() {
	length := 8 + g.rng.Intn(8)
	first := uint32(g.rng.Intn(15) + 1)
	rest := uint32(g.rng.Uint32()) & ((1 << 24) - 1)
	base := ip.Addr(first<<24 | rest)
	g.fib.Insert(ip.MustPrefix(base, length), g.hop(), nil)
}

// megaBlock: an /8 covering aggregate (first octet 16..31, its own
// reserved space) filled with roughly `routes` hop-correlated sub-runs —
// the large-ISP allocations that force sub-tree partitions to replicate
// the cover into the partitions carved inside it.
func (g *generator) megaBlock(idx, routes int) {
	// An /8 holds 65536 /24 slots; leave ample headroom so the fill loop
	// always finds fresh slots.
	if routes > 40000 {
		routes = 40000
	}
	base := ip.Addr(uint32(16+idx%16) << 24)
	h := g.hop()
	g.fib.Insert(ip.MustPrefix(base, 8), h, nil)
	target := g.fib.Len() + routes
	for g.fib.Len() < target {
		// A sub-run of consecutive /24s somewhere inside the /8. Most
		// runs follow the aggregate's exit; a minority are customer
		// routes with their own exits and survive compression as
		// splits.
		off := ip.Addr(g.rng.Intn(1<<16)) << 8
		n := g.runLen()
		runHop := h
		if g.rng.Float64() < 0.18 {
			runHop = g.hop()
		}
		for i := 0; i < n; i++ {
			slot := off + ip.Addr(i)<<8
			if slot >= 1<<24 {
				break
			}
			g.fib.Insert(ip.MustPrefix(base+slot, 24), runHop, nil)
		}
	}
}

// deepBlock: a /19 -> /22 -> /24 chain with decorrelated hops — the
// expansion worst case ONRTC must absorb.
func (g *generator) deepBlock() {
	base, h := g.blockBase()
	g.fib.Insert(ip.MustPrefix(base, 19), h, nil)
	mid := base + ip.Addr(g.rng.Intn(8))<<10
	h2 := g.nearHop(h)
	g.fib.Insert(ip.MustPrefix(mid, 22), h2, nil)
	leaf := mid + ip.Addr(g.rng.Intn(4))<<8
	g.fib.Insert(ip.MustPrefix(leaf, 24), g.nearHop(h2), nil)
}

// LengthHistogram counts routes per prefix length (reporting aid).
func LengthHistogram(fib *trie.Trie) [ip.AddrBits + 1]int {
	var h [ip.AddrBits + 1]int
	fib.WalkRoutes(func(r ip.Route) bool {
		h[r.Prefix.Len]++
		return true
	})
	return h
}
