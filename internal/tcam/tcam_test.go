package tcam

import (
	"errors"
	"math/rand"
	"testing"

	"clue/internal/ip"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }
func addr(s string) ip.Addr  { return ip.MustParseAddr(s) }
func rt(p string, h ip.NextHop) ip.Route {
	return ip.Route{Prefix: pfx(p), NextHop: h}
}

func TestChipInsertLookup(t *testing.T) {
	c := NewChip(16, NewDisjointLayout())
	if _, err := c.Insert(rt("10.0.0.0/8", 1)); err != nil {
		t.Fatal(err)
	}
	hop, via, ok := c.Lookup(addr("10.1.2.3"))
	if !ok || hop != 1 || via != pfx("10.0.0.0/8") {
		t.Errorf("Lookup = (%d, %s, %v)", hop, via, ok)
	}
	_, _, ok = c.Lookup(addr("11.0.0.0"))
	if ok {
		t.Error("lookup of uncovered address matched")
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 lookups 1 hit", st)
	}
}

func TestChipPriorityEncoderSemantics(t *testing.T) {
	// With overlapping entries the chip must return the longest match.
	c := NewChip(16, NewPLOLayout())
	mustInsert(t, c, rt("10.0.0.0/8", 1))
	mustInsert(t, c, rt("10.1.0.0/16", 2))
	hop, _, ok := c.Lookup(addr("10.1.0.5"))
	if !ok || hop != 2 {
		t.Errorf("LPM over overlapping entries = %d, want 2", hop)
	}
}

func mustInsert(t *testing.T, c *Chip, r ip.Route) {
	t.Helper()
	if _, err := c.Insert(r); err != nil {
		t.Fatal(err)
	}
}

func TestChipCapacity(t *testing.T) {
	c := NewChip(2, NewDisjointLayout())
	mustInsert(t, c, rt("10.0.0.0/8", 1))
	mustInsert(t, c, rt("11.0.0.0/8", 2))
	if _, err := c.Insert(rt("12.0.0.0/8", 3)); !errors.Is(err, ErrFull) {
		t.Errorf("insert into full chip: err = %v, want ErrFull", err)
	}
	if c.Free() != 0 || c.Used() != 2 {
		t.Errorf("Free = %d Used = %d", c.Free(), c.Used())
	}
}

func TestChipDuplicateInsert(t *testing.T) {
	c := NewChip(4, NewDisjointLayout())
	mustInsert(t, c, rt("10.0.0.0/8", 1))
	if _, err := c.Insert(rt("10.0.0.0/8", 2)); err == nil {
		t.Error("duplicate insert succeeded")
	}
}

func TestChipDeleteAndModify(t *testing.T) {
	c := NewChip(4, NewDisjointLayout())
	mustInsert(t, c, rt("10.0.0.0/8", 1))
	if err := c.Modify(rt("10.0.0.0/8", 5)); err != nil {
		t.Fatal(err)
	}
	hop, _, _ := c.Lookup(addr("10.0.0.1"))
	if hop != 5 {
		t.Errorf("hop after modify = %d, want 5", hop)
	}
	if _, err := c.Delete(pfx("10.0.0.0/8")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Lookup(addr("10.0.0.1")); ok {
		t.Error("lookup matched after delete")
	}
	if _, err := c.Delete(pfx("10.0.0.0/8")); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v, want ErrNotFound", err)
	}
	if err := c.Modify(rt("10.0.0.0/8", 1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("modify absent err = %v, want ErrNotFound", err)
	}
}

func TestChipLoadResetsStats(t *testing.T) {
	c := NewChip(8, NewDisjointLayout())
	if err := c.Load([]ip.Route{rt("10.0.0.0/8", 1), rt("11.0.0.0/8", 2)}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Writes != 0 || st.Moves != 0 {
		t.Errorf("stats after Load = %+v, want zeroed", st)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestChipLoadOverCapacity(t *testing.T) {
	c := NewChip(1, NewDisjointLayout())
	err := c.Load([]ip.Route{rt("10.0.0.0/8", 1), rt("11.0.0.0/8", 2)})
	if !errors.Is(err, ErrFull) {
		t.Errorf("Load over capacity err = %v, want ErrFull", err)
	}
}

func TestDisjointLayoutMoves(t *testing.T) {
	c := NewChip(8, NewDisjointLayout())
	for i, r := range []ip.Route{rt("10.0.0.0/8", 1), rt("11.0.0.0/8", 2), rt("12.0.0.0/8", 3)} {
		moves, err := c.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		if moves != 0 {
			t.Errorf("insert %d cost %d moves, want 0", i, moves)
		}
	}
	// Deleting a middle entry back-fills with the last: exactly 1 move.
	moves, err := c.Delete(pfx("11.0.0.0/8"))
	if err != nil {
		t.Fatal(err)
	}
	if moves != 1 {
		t.Errorf("middle delete moves = %d, want 1", moves)
	}
	// Deleting the (now) last entry costs 0 moves.
	moves, err = c.Delete(pfx("12.0.0.0/8"))
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Errorf("tail delete moves = %d, want 0", moves)
	}
	// Matching still works after the back-fill.
	hop, _, ok := c.Lookup(addr("10.0.0.1"))
	if !ok || hop != 1 {
		t.Errorf("lookup after deletes = (%d, %v)", hop, ok)
	}
}

func TestDisjointLayoutSlotTracking(t *testing.T) {
	l := NewDisjointLayout()
	a, b, c := pfx("10.0.0.0/8"), pfx("11.0.0.0/8"), pfx("12.0.0.0/8")
	for _, p := range []ip.Prefix{a, b, c} {
		if _, err := l.PlaceInsert(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PlaceDelete(b); err != nil {
		t.Fatal(err)
	}
	// c must have been moved into b's slot (slot 1).
	if slot, ok := l.Slot(c); !ok || slot != 1 {
		t.Errorf("slot of back-filled entry = (%d, %v), want (1, true)", slot, ok)
	}
	if _, ok := l.Slot(b); ok {
		t.Error("deleted prefix still has a slot")
	}
}

func TestNaiveLayoutShiftCounts(t *testing.T) {
	c := NewChip(16, NewNaiveLayout())
	// Insert /8, /24, /16 — the /16 lands between them, shifting the /8.
	mustInsert(t, c, rt("10.0.0.0/8", 1))
	mustInsert(t, c, rt("10.0.0.0/24", 2))
	moves, err := c.Insert(rt("10.0.0.0/16", 3))
	if err != nil {
		t.Fatal(err)
	}
	if moves != 1 {
		t.Errorf("insert between zones moved %d, want 1 (the /8)", moves)
	}
	// Inserting a /32 at the very front shifts all 3.
	moves, err = c.Insert(rt("10.0.0.1/32", 4))
	if err != nil {
		t.Fatal(err)
	}
	if moves != 3 {
		t.Errorf("front insert moved %d, want 3", moves)
	}
}

func TestNaiveLayoutDeleteShifts(t *testing.T) {
	l := NewNaiveLayout()
	for _, p := range []ip.Prefix{pfx("10.0.0.0/24"), pfx("10.0.0.0/16"), pfx("10.0.0.0/8")} {
		if _, err := l.PlaceInsert(p); err != nil {
			t.Fatal(err)
		}
	}
	moves, err := l.PlaceDelete(pfx("10.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if moves != 2 {
		t.Errorf("front delete moved %d, want 2", moves)
	}
}

func TestPLOLayoutMoves(t *testing.T) {
	l := NewPLOLayout()
	// First insert of a /24: no shorter zones occupied -> 0 moves.
	moves, _ := l.PlaceInsert(pfx("10.0.0.0/24"))
	if moves != 0 {
		t.Errorf("first /24 insert moves = %d, want 0", moves)
	}
	// An /8 zone appears: inserting another /24 must cascade past it.
	if _, err := l.PlaceInsert(pfx("10.0.0.0/8")); err != nil {
		t.Fatal(err)
	}
	moves, _ = l.PlaceInsert(pfx("10.1.0.0/24"))
	if moves != 1 {
		t.Errorf("/24 insert with /8 zone occupied moves = %d, want 1", moves)
	}
	// Populate /9../16 zones; a /24 insert now cascades past 9 zones
	// (/8../16).
	for length := 9; length <= 16; length++ {
		if _, err := l.PlaceInsert(ip.MustPrefix(ip.MustParseAddr("20.0.0.0"), length)); err != nil {
			t.Fatal(err)
		}
	}
	moves, _ = l.PlaceInsert(pfx("10.2.0.0/24"))
	if moves != 9 {
		t.Errorf("/24 insert with 9 shorter zones moves = %d, want 9", moves)
	}
	// Inserting an /8 cascades past nothing (no zone shorter than 8).
	moves, _ = l.PlaceInsert(pfx("30.0.0.0/8"))
	if moves != 0 {
		t.Errorf("/8 insert moves = %d, want 0", moves)
	}
}

func TestPLOLayoutBoundedBy32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewPLOLayout()
	for i := 0; i < 2000; i++ {
		p := ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(33))
		var moves int
		var err error
		if l.members[p] {
			moves, err = l.PlaceDelete(p)
		} else {
			moves, err = l.PlaceInsert(p)
		}
		if err != nil {
			t.Fatal(err)
		}
		if moves > ip.AddrBits+1 {
			t.Fatalf("PLO moves = %d, exceeds bound", moves)
		}
	}
}

func TestPLOLayoutDelete(t *testing.T) {
	l := NewPLOLayout()
	if _, err := l.PlaceInsert(pfx("10.0.0.0/24")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PlaceInsert(pfx("10.1.0.0/24")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PlaceInsert(pfx("10.0.0.0/8")); err != nil {
		t.Fatal(err)
	}
	// Deleting one of two /24s: 1 back-fill + cascade past the /8 zone.
	moves, err := l.PlaceDelete(pfx("10.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if moves != 2 {
		t.Errorf("delete moves = %d, want 2", moves)
	}
	if l.ZoneCount(24) != 1 {
		t.Errorf("zone 24 count = %d, want 1", l.ZoneCount(24))
	}
	if l.ZoneCount(-1) != 0 || l.ZoneCount(40) != 0 {
		t.Error("out-of-range ZoneCount should be 0")
	}
}

func TestPLOAverageMovesOnRealisticMix(t *testing.T) {
	// With zones /8../24 all occupied (a realistic backbone mix), a /24
	// update should cascade past ~16 zones — the neighbourhood of the
	// paper's measured 14.994 average.
	l := NewPLOLayout()
	for length := 8; length <= 24; length++ {
		for i := 0; i < 4; i++ {
			p := ip.MustPrefix(ip.Addr(uint32(i)<<27|uint32(length)<<8), length)
			if _, err := l.PlaceInsert(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	moves, err := l.PlaceInsert(pfx("200.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if moves < 10 || moves > 20 {
		t.Errorf("realistic /24 insert moves = %d, want ≈16", moves)
	}
}

func TestLayoutErrors(t *testing.T) {
	for _, l := range []Layout{NewDisjointLayout(), NewNaiveLayout(), NewPLOLayout()} {
		if _, err := l.PlaceDelete(pfx("10.0.0.0/8")); err == nil {
			t.Errorf("%s: delete from empty layout succeeded", l.Name())
		}
		if _, err := l.PlaceInsert(pfx("10.0.0.0/8")); err != nil {
			t.Errorf("%s: %v", l.Name(), err)
		}
		if _, err := l.PlaceInsert(pfx("10.0.0.0/8")); err == nil {
			t.Errorf("%s: duplicate insert succeeded", l.Name())
		}
		if l.Used() != 1 {
			t.Errorf("%s: Used = %d, want 1", l.Name(), l.Used())
		}
	}
}

// Property: under random churn all three layouts agree with the chip's
// entry set, and their move counts respect their bounds.
func TestLayoutsUnderChurn(t *testing.T) {
	layouts := []func() Layout{
		func() Layout { return NewDisjointLayout() },
		func() Layout { return NewNaiveLayout() },
		func() Layout { return NewPLOLayout() },
	}
	for _, mk := range layouts {
		rng := rand.New(rand.NewSource(9))
		c := NewChip(512, mk())
		present := map[ip.Prefix]ip.NextHop{}
		universe := make([]ip.Prefix, 0, 128)
		for i := 0; i < 128; i++ {
			universe = append(universe, ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(25)+8))
		}
		for op := 0; op < 3000; op++ {
			p := universe[rng.Intn(len(universe))]
			if _, ok := present[p]; ok && rng.Intn(2) == 0 {
				moves, err := c.Delete(p)
				if err != nil {
					t.Fatalf("%s: delete: %v", c.LayoutName(), err)
				}
				if c.LayoutName() == "disjoint" && moves > 1 {
					t.Fatalf("disjoint delete moves = %d > 1", moves)
				}
				delete(present, p)
			} else if _, ok := present[p]; !ok {
				hop := ip.NextHop(rng.Intn(8) + 1)
				moves, err := c.Insert(ip.Route{Prefix: p, NextHop: hop})
				if err != nil {
					t.Fatalf("%s: insert: %v", c.LayoutName(), err)
				}
				if c.LayoutName() == "disjoint" && moves != 0 {
					t.Fatalf("disjoint insert moves = %d != 0", moves)
				}
				if c.LayoutName() == "plo" && moves > ip.AddrBits+1 {
					t.Fatalf("plo moves = %d exceeds bound", moves)
				}
				present[p] = hop
			}
		}
		if c.Used() != len(present) || c.Len() != len(present) {
			t.Fatalf("%s: Used=%d Len=%d model=%d", c.LayoutName(), c.Used(), c.Len(), len(present))
		}
		for p, h := range present {
			if !c.Contains(p) {
				t.Fatalf("%s: missing %s", c.LayoutName(), p)
			}
			got, _, _ := c.Lookup(p.First())
			want, _ := lookupModel(present, p.First())
			if got != want {
				t.Fatalf("%s: lookup(%s) = %d, model %d (hop %d)", c.LayoutName(), p.First(), got, want, h)
			}
		}
	}
}

func lookupModel(m map[ip.Prefix]ip.NextHop, a ip.Addr) (ip.NextHop, bool) {
	best := ip.NoRoute
	bestLen := -1
	for p, h := range m {
		if p.Contains(a) && int(p.Len) > bestLen {
			best, bestLen = h, int(p.Len)
		}
	}
	return best, bestLen >= 0
}

func TestStatsUpdateAccesses(t *testing.T) {
	s := Stats{Writes: 3, Moves: 4}
	if s.UpdateAccesses() != 7 {
		t.Errorf("UpdateAccesses = %d, want 7", s.UpdateAccesses())
	}
}

func TestEntriesSearchedPowerProxy(t *testing.T) {
	c := NewChip(16, NewDisjointLayout())
	mustInsert(t, c, rt("10.0.0.0/8", 1))
	mustInsert(t, c, rt("11.0.0.0/8", 2))
	c.Lookup(addr("10.0.0.1"))
	c.Lookup(addr("12.0.0.1"))
	st := c.Stats()
	if st.EntriesSearched != 4 {
		t.Errorf("EntriesSearched = %d, want 4 (2 lookups x 2 occupied)", st.EntriesSearched)
	}
	if st.MeanSearched() != 2 {
		t.Errorf("MeanSearched = %v, want 2", st.MeanSearched())
	}
	if (Stats{}).MeanSearched() != 0 {
		t.Error("zero stats MeanSearched should be 0")
	}
}
