// Package tcam models a Ternary CAM chip as used in the paper's lookup
// engine: a bounded store of prefix entries with single-access matching,
// plus pluggable slot-layout strategies that determine how many physical
// entry moves ("shifts") a routing update costs.
//
// Matching itself is simulated functionally (a per-chip trie computes the
// same answer the parallel hardware comparators would), while the layout
// tracks slot occupancy and movement so update costs are cycle-accurate in
// the paper's currency: one entry move or write = one TCAM access = 24 ns
// on the CYNSE70256 the authors calibrate against.
//
// Three layouts reproduce the paper's comparison (§IV.B, Figure 7):
//
//   - NaiveLayout: entries fully sorted by prefix length; an insert shifts
//     every following entry — O(n) (Figure 7(a)).
//   - PLOLayout: Shah–Gupta prefix-length-ordered zones with free space at
//     one end; an update moves one boundary entry per intervening zone —
//     ≤32 shifts, ≈15 on real length mixes (Figure 7(b)); assumed for CLPL.
//   - DisjointLayout: CLUE's layout for non-overlapping tables; order is
//     irrelevant, so insert appends and delete swaps the last entry in —
//     at most one move per update.
package tcam

import (
	"errors"
	"fmt"

	"clue/internal/ip"
	"clue/internal/trie"
)

// AccessNs is the cost of one TCAM access (one entry move, write or
// lookup) in nanoseconds, from the paper's CYNSE70256 calibration
// (41.5 MHz ≈ 24 ns per operation).
const AccessNs = 24

// ErrFull reports an insert into a chip with no free slots.
var ErrFull = errors.New("tcam: chip full")

// ErrNotFound reports a delete or modify of an absent prefix.
var ErrNotFound = errors.New("tcam: prefix not present")

// Stats accumulates per-chip operation counts. Moves and Writes price
// updates; Lookups prices search load.
type Stats struct {
	// Lookups is the number of match operations performed.
	Lookups int64
	// Hits is the number of lookups that matched an entry.
	Hits int64
	// Writes is the number of entry writes (new content into a slot).
	Writes int64
	// Moves is the number of entry relocations caused by updates.
	Moves int64
	// EntriesSearched sums the occupied slots activated per lookup —
	// the dominant term of TCAM dynamic power (every occupied cell
	// compares in parallel on each search). Partitioning exists largely
	// to shrink this number (the CoolCAMs motivation).
	EntriesSearched int64
}

// UpdateAccesses returns the total update-path TCAM accesses.
func (s Stats) UpdateAccesses() int64 { return s.Writes + s.Moves }

// MeanSearched returns the average entries activated per lookup — the
// per-search power proxy.
func (s Stats) MeanSearched() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.EntriesSearched) / float64(s.Lookups)
}

// Layout assigns physical slots to prefixes and prices the entry movement
// each update needs. Implementations only account; entry content lives in
// the chip.
type Layout interface {
	// PlaceInsert allocates a slot for p and returns the number of
	// existing entries that had to move to open it.
	PlaceInsert(p ip.Prefix) (moves int, err error)
	// PlaceDelete frees p's slot and returns the moves needed to keep
	// the layout's invariants (compaction, zone ordering).
	PlaceDelete(p ip.Prefix) (moves int, err error)
	// Used returns the number of occupied slots.
	Used() int
	// Name identifies the strategy in reports.
	Name() string
}

// Chip is one simulated TCAM chip (or partition). It combines a matching
// store with a slot layout and capacity accounting.
type Chip struct {
	layout   Layout
	capacity int
	match    *trie.Trie
	stats    Stats
}

// NewChip creates a chip with the given slot capacity and layout strategy.
func NewChip(capacity int, layout Layout) *Chip {
	return &Chip{layout: layout, capacity: capacity, match: trie.New()}
}

// Capacity returns the chip's total slot count.
func (c *Chip) Capacity() int { return c.capacity }

// Used returns the number of occupied slots.
func (c *Chip) Used() int { return c.layout.Used() }

// Free returns the number of free slots.
func (c *Chip) Free() int { return c.capacity - c.layout.Used() }

// Stats returns a copy of the chip's operation counters.
func (c *Chip) Stats() Stats { return c.stats }

// ResetStats zeroes the operation counters (between experiment phases).
func (c *Chip) ResetStats() { c.stats = Stats{} }

// LayoutName reports the active layout strategy.
func (c *Chip) LayoutName() string { return c.layout.Name() }

// Lookup matches addr against the stored entries, returning the matching
// route's hop and prefix. With overlapping entries this models the
// priority encoder selecting the longest match; with a disjoint table the
// single match needs no encoder (the paper's point about removed hardware).
func (c *Chip) Lookup(addr ip.Addr) (ip.NextHop, ip.Prefix, bool) {
	c.stats.Lookups++
	c.stats.EntriesSearched += int64(c.layout.Used())
	hop, p := c.match.Lookup(addr, nil)
	if hop == ip.NoRoute {
		return ip.NoRoute, ip.Prefix{}, false
	}
	c.stats.Hits++
	return hop, p, true
}

// Insert writes a new entry, returning the entry moves the layout needed.
// Inserting a prefix that is already present is an error; use Modify.
func (c *Chip) Insert(r ip.Route) (moves int, err error) {
	if c.match.Get(r.Prefix, nil) != ip.NoRoute {
		return 0, fmt.Errorf("tcam: insert %s: already present", r.Prefix)
	}
	if c.layout.Used() >= c.capacity {
		return 0, fmt.Errorf("tcam: insert %s: %w", r.Prefix, ErrFull)
	}
	moves, err = c.layout.PlaceInsert(r.Prefix)
	if err != nil {
		return 0, fmt.Errorf("tcam: insert %s: %w", r.Prefix, err)
	}
	c.match.Insert(r.Prefix, r.NextHop, nil)
	c.stats.Moves += int64(moves)
	c.stats.Writes++
	return moves, nil
}

// Delete removes an entry, returning the layout's compaction moves. The
// valid-bit clear is charged as one write on top of the moves.
func (c *Chip) Delete(p ip.Prefix) (moves int, err error) {
	if c.match.Get(p, nil) == ip.NoRoute {
		return 0, fmt.Errorf("tcam: delete %s: %w", p, ErrNotFound)
	}
	moves, err = c.layout.PlaceDelete(p)
	if err != nil {
		return 0, fmt.Errorf("tcam: delete %s: %w", p, err)
	}
	c.match.Delete(p, nil)
	c.stats.Moves += int64(moves)
	// Clearing the victim slot's valid bit is itself one access.
	c.stats.Writes++
	return moves, nil
}

// Modify rewrites the next hop of an existing entry in place: one write,
// never any moves, under every layout.
func (c *Chip) Modify(r ip.Route) error {
	if c.match.Get(r.Prefix, nil) == ip.NoRoute {
		return fmt.Errorf("tcam: modify %s: %w", r.Prefix, ErrNotFound)
	}
	c.match.Insert(r.Prefix, r.NextHop, nil)
	c.stats.Writes++
	return nil
}

// Contains reports whether the chip currently stores prefix p.
func (c *Chip) Contains(p ip.Prefix) bool {
	return c.match.Get(p, nil) != ip.NoRoute
}

// Len returns the number of stored entries (== Used()).
func (c *Chip) Len() int { return c.match.Len() }

// Routes lists the stored entries in address order (diagnostics/tests).
func (c *Chip) Routes() []ip.Route { return c.match.Routes() }

// Load fills the chip from a route list, failing if capacity is exceeded.
// Loading is bulk provisioning: moves are not charged to stats because
// the paper's update costs concern steady-state incremental updates.
func (c *Chip) Load(routes []ip.Route) error {
	for _, r := range routes {
		if _, err := c.Insert(r); err != nil {
			return err
		}
	}
	c.ResetStats()
	return nil
}
