package tcam

import (
	"fmt"

	"clue/internal/ip"
)

// DisjointLayout is CLUE's slot strategy: because ONRTC output is
// non-overlapping, matching is order-independent, so a new entry goes into
// the first free slot (zero moves) and a delete back-fills the hole with
// the last entry (at most one move). This is the source of the paper's
// "one shift at most" TTF2 claim.
type DisjointLayout struct {
	slots []ip.Prefix
	index map[ip.Prefix]int
}

var _ Layout = (*DisjointLayout)(nil)

// NewDisjointLayout returns an empty CLUE layout.
func NewDisjointLayout() *DisjointLayout {
	return &DisjointLayout{index: make(map[ip.Prefix]int)}
}

// Name implements Layout.
func (l *DisjointLayout) Name() string { return "disjoint" }

// Used implements Layout.
func (l *DisjointLayout) Used() int { return len(l.slots) }

// PlaceInsert appends to the free region: one write, zero moves.
func (l *DisjointLayout) PlaceInsert(p ip.Prefix) (int, error) {
	if _, ok := l.index[p]; ok {
		return 0, fmt.Errorf("disjoint layout: %s already placed", p)
	}
	l.index[p] = len(l.slots)
	l.slots = append(l.slots, p)
	return 0, nil
}

// PlaceDelete moves the last entry into the vacated slot: one move, or
// zero when the victim is already last.
func (l *DisjointLayout) PlaceDelete(p ip.Prefix) (int, error) {
	i, ok := l.index[p]
	if !ok {
		return 0, fmt.Errorf("disjoint layout: %s: %w", p, ErrNotFound)
	}
	last := len(l.slots) - 1
	delete(l.index, p)
	if i == last {
		l.slots = l.slots[:last]
		return 0, nil
	}
	moved := l.slots[last]
	l.slots[i] = moved
	l.index[moved] = i
	l.slots = l.slots[:last]
	return 1, nil
}

// Slot returns p's current physical slot (tests and diagnostics).
func (l *DisjointLayout) Slot(p ip.Prefix) (int, bool) {
	i, ok := l.index[p]
	return i, ok
}

// NaiveLayout keeps entries fully sorted by descending prefix length so a
// priority encoder reading the lowest-index match returns the LPM. An
// insert shifts every entry after the insertion point down one slot —
// O(n) worst case (the paper's Figure 7(a) strawman).
type NaiveLayout struct {
	// slots is ordered by descending prefix length (ties arbitrary).
	slots []ip.Prefix
	index map[ip.Prefix]int
}

var _ Layout = (*NaiveLayout)(nil)

// NewNaiveLayout returns an empty naive layout.
func NewNaiveLayout() *NaiveLayout {
	return &NaiveLayout{index: make(map[ip.Prefix]int)}
}

// Name implements Layout.
func (l *NaiveLayout) Name() string { return "naive-ordered" }

// Used implements Layout.
func (l *NaiveLayout) Used() int { return len(l.slots) }

// PlaceInsert finds the first slot whose occupant is shorter than p and
// shifts the tail down.
func (l *NaiveLayout) PlaceInsert(p ip.Prefix) (int, error) {
	if _, ok := l.index[p]; ok {
		return 0, fmt.Errorf("naive layout: %s already placed", p)
	}
	pos := len(l.slots)
	for i, q := range l.slots {
		if q.Len < p.Len {
			pos = i
			break
		}
	}
	l.slots = append(l.slots, ip.Prefix{})
	copy(l.slots[pos+1:], l.slots[pos:])
	l.slots[pos] = p
	for i := pos; i < len(l.slots); i++ {
		l.index[l.slots[i]] = i
	}
	return len(l.slots) - 1 - pos, nil
}

// PlaceDelete shifts the tail up over the vacated slot.
func (l *NaiveLayout) PlaceDelete(p ip.Prefix) (int, error) {
	pos, ok := l.index[p]
	if !ok {
		return 0, fmt.Errorf("naive layout: %s: %w", p, ErrNotFound)
	}
	delete(l.index, p)
	copy(l.slots[pos:], l.slots[pos+1:])
	l.slots = l.slots[:len(l.slots)-1]
	for i := pos; i < len(l.slots); i++ {
		l.index[l.slots[i]] = i
	}
	return len(l.slots) - pos, nil
}

// PLOLayout is the Shah–Gupta prefix-length-ordered scheme the paper
// assumes for CLPL (Figure 7(b)): entries are grouped into zones by
// prefix length (length 32 nearest slot 0, length 0 nearest the free
// pool at the high end); only zone boundaries are ordering constraints.
// Opening a slot inside zone L moves one boundary entry per non-empty
// zone between L and the free pool — at most 32 moves, ≈15 on a real
// prefix-length mix (the paper measures 14.994).
type PLOLayout struct {
	// zoneCount[l] is the number of entries of prefix length l.
	zoneCount [ip.AddrBits + 1]int
	// members tracks which zone each prefix occupies (by construction
	// its own length; the map also detects duplicates/absences).
	members map[ip.Prefix]bool
	used    int
}

var _ Layout = (*PLOLayout)(nil)

// NewPLOLayout returns an empty prefix-length-ordered layout.
func NewPLOLayout() *PLOLayout {
	return &PLOLayout{members: make(map[ip.Prefix]bool)}
}

// Name implements Layout.
func (l *PLOLayout) Name() string { return "plo" }

// Used implements Layout.
func (l *PLOLayout) Used() int { return l.used }

// movesBelow counts the non-empty zones strictly between zone length and
// the free pool (zones of shorter length), each of which contributes one
// boundary-entry move when a gap is cascaded in or out.
func (l *PLOLayout) movesBelow(length int) int {
	moves := 0
	for k := 0; k < length; k++ {
		if l.zoneCount[k] > 0 {
			moves++
		}
	}
	return moves
}

// PlaceInsert cascades a free slot from the pool to the end of p's zone.
func (l *PLOLayout) PlaceInsert(p ip.Prefix) (int, error) {
	if l.members[p] {
		return 0, fmt.Errorf("plo layout: %s already placed", p)
	}
	moves := l.movesBelow(int(p.Len))
	l.members[p] = true
	l.zoneCount[p.Len]++
	l.used++
	return moves, nil
}

// PlaceDelete fills the hole with its zone's boundary entry, then cascades
// the resulting end-of-zone gap back out to the free pool.
func (l *PLOLayout) PlaceDelete(p ip.Prefix) (int, error) {
	if !l.members[p] {
		return 0, fmt.Errorf("plo layout: %s: %w", p, ErrNotFound)
	}
	moves := 0
	if l.zoneCount[p.Len] > 1 {
		// Back-fill the interior hole from the zone boundary.
		moves++
	}
	moves += l.movesBelow(int(p.Len))
	delete(l.members, p)
	l.zoneCount[p.Len]--
	l.used--
	return moves, nil
}

// ZoneCount reports the number of entries of the given prefix length.
func (l *PLOLayout) ZoneCount(length int) int {
	if length < 0 || length > ip.AddrBits {
		return 0
	}
	return l.zoneCount[length]
}
