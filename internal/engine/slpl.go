package engine

import (
	"fmt"
	"sort"

	"clue/internal/dred"
	"clue/internal/ip"
	"clue/internal/partition"
	"clue/internal/tcam"
	"clue/internal/trie"
)

// StaticReplicator is implemented by systems whose diverted packets are
// served from statically replicated entries in the target chip's main
// partitions (SLPL) rather than from a DRed cache. ServesDiverted
// reports whether the distributor may divert a packet for addr at all
// (its whole bucket is replicated on every chip).
type StaticReplicator interface {
	ServesDiverted(addr ip.Addr) bool
}

// SLPLSystem is the Zheng et al. (ToN'06) baseline: ID-bit partitioning
// into buckets mapped round-robin onto the chips, plus "pre-selected"
// static redundancy — the statistically hottest buckets (within a 25 %
// extra-entry budget) are replicated onto every chip, chosen from a
// long-period traffic sample. Replicating whole buckets keeps LPM
// correct on the replica (every route matching an address lives in that
// address's bucket). There is no dynamic adaptation: when the live
// traffic's hot set drifts from the sample, diversion stops helping —
// the paper's core criticism of the approach.
type SLPLSystem struct {
	bits       []int // selected address bits (ascending)
	bucketTCAM []int // bucket id -> home TCAM
	replicated []bool
	chips      []*tcam.Chip
	replicas   int
	fib        *trie.Trie
}

var _ System = (*SLPLSystem)(nil)
var _ StaticReplicator = (*SLPLSystem)(nil)

// NewSLPLSystem builds the SLPL data plane with 2^k buckets where 2^k is
// the smallest power of two >= 8*tcams. sample supplies destination
// addresses from the "long-period statistics" used to pre-select hot
// buckets; redundancyBudget is the fraction of extra entries allowed
// (the paper's 25 % => 0.25).
func NewSLPLSystem(fib *trie.Trie, tcams int, sample []ip.Addr, redundancyBudget float64) (*SLPLSystem, error) {
	if tcams < 2 {
		return nil, fmt.Errorf("engine: need at least 2 TCAMs, got %d", tcams)
	}
	if redundancyBudget < 0 || redundancyBudget > 1 {
		return nil, fmt.Errorf("engine: redundancy budget %v outside [0,1]", redundancyBudget)
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("engine: SLPL needs a statistics sample")
	}
	k := 0
	for 1<<k < 8*tcams {
		k++
	}
	res, err := partition.IDBit(fib.Routes(), k)
	if err != nil {
		return nil, fmt.Errorf("engine: id-bit partitioning: %w", err)
	}
	nb := len(res.Parts)
	s := &SLPLSystem{
		bits:       res.Bits,
		bucketTCAM: make([]int, nb),
		replicated: make([]bool, nb),
		fib:        fib,
	}
	for i := range s.bucketTCAM {
		s.bucketTCAM[i] = i % tcams
	}

	// Rank buckets by sampled traffic and replicate the hottest whole
	// buckets onto every chip while the entry budget lasts.
	counts := make([]int64, nb)
	for _, a := range sample {
		counts[partition.BucketOf(a, s.bits)]++
	}
	order := make([]int, nb)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	budget := int(float64(fib.Len()) * redundancyBudget)
	var hotBuckets []int
	for _, b := range order {
		cost := res.Parts[b].Size() * (tcams - 1)
		if cost == 0 || s.replicas+cost > budget {
			continue
		}
		s.replicated[b] = true
		s.replicas += cost
		hotBuckets = append(hotBuckets, b)
	}

	perTCAM := make([][]ip.Route, tcams)
	for b, part := range res.Parts {
		perTCAM[s.bucketTCAM[b]] = append(perTCAM[s.bucketTCAM[b]], part.Routes...)
	}
	for _, b := range hotBuckets {
		for t := 0; t < tcams; t++ {
			if t == s.bucketTCAM[b] {
				continue
			}
			perTCAM[t] = append(perTCAM[t], res.Parts[b].Routes...)
		}
	}

	s.chips = make([]*tcam.Chip, tcams)
	for i := range s.chips {
		// Buckets overlap in the routes ID-bit replicates into several
		// buckets; each chip needs one copy.
		seen := make(map[ip.Prefix]bool, len(perTCAM[i]))
		routes := perTCAM[i][:0]
		for _, r := range perTCAM[i] {
			if seen[r.Prefix] {
				continue
			}
			seen[r.Prefix] = true
			routes = append(routes, r)
		}
		s.chips[i] = tcam.NewChip(len(routes)*2+1024, tcam.NewPLOLayout())
		if err := s.chips[i].Load(routes); err != nil {
			return nil, fmt.Errorf("engine: loading TCAM %d: %w", i, err)
		}
	}
	return s, nil
}

// Name implements System.
func (s *SLPLSystem) Name() string { return "slpl" }

// N implements System.
func (s *SLPLSystem) N() int { return len(s.chips) }

// Home implements System: the selected address bits index the bucket.
func (s *SLPLSystem) Home(addr ip.Addr) int {
	return s.bucketTCAM[partition.BucketOf(addr, s.bits)]
}

// Chip implements System.
func (s *SLPLSystem) Chip(i int) *tcam.Chip { return s.chips[i] }

// Fill implements System: SLPL has no dynamic redundancy, so hits fill
// nothing.
func (s *SLPLSystem) Fill(*dred.Group, int, ip.Addr, ip.Route) FillReport {
	return FillReport{}
}

// ServesDiverted implements StaticReplicator: a packet may be diverted
// only when its whole bucket was pre-replicated onto every chip.
func (s *SLPLSystem) ServesDiverted(addr ip.Addr) bool {
	return s.replicated[partition.BucketOf(addr, s.bits)]
}

// Replicas reports the static redundancy entry count.
func (s *SLPLSystem) Replicas() int { return s.replicas }
