package engine

import (
	"testing"

	"clue/internal/ip"
	"clue/internal/onrtc"
)

func slplSample(t *testing.T, table *onrtc.Table, n int, seed int64) []ip.Addr {
	t.Helper()
	tr := testTraffic(t, table, seed)
	return tr.NextN(n)
}

func TestNewSLPLSystemValidation(t *testing.T) {
	fib, table := testTable(t, 1000, 20)
	sample := slplSample(t, table, 1000, 20)
	if _, err := NewSLPLSystem(fib, 1, sample, 0.25); err == nil {
		t.Error("tcams=1 accepted")
	}
	if _, err := NewSLPLSystem(fib, 4, sample, -0.1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := NewSLPLSystem(fib, 4, sample, 1.5); err == nil {
		t.Error("budget > 1 accepted")
	}
}

func TestSLPLRedundancyBudget(t *testing.T) {
	fib, table := testTable(t, 2000, 21)
	sample := slplSample(t, table, 20000, 21)
	sys, err := NewSLPLSystem(fib, 4, sample, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Replicas() == 0 {
		t.Error("no replicas pre-selected")
	}
	if sys.Replicas() > fib.Len()/4 {
		t.Errorf("replicas %d exceed 25%% budget of %d", sys.Replicas(), fib.Len())
	}
	// Zero budget: no replication, still a valid system.
	sys0, err := NewSLPLSystem(fib.Clone(), 4, sample, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if sys0.Replicas() != 0 {
		t.Errorf("tiny budget produced %d replicas", sys0.Replicas())
	}
}

func TestSLPLHomeLookupCorrect(t *testing.T) {
	fib, table := testTable(t, 2000, 22)
	sample := slplSample(t, table, 10000, 22)
	sys, err := NewSLPLSystem(fib, 4, sample, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraffic(t, table, 22)
	for i := 0; i < 3000; i++ {
		a := tr.Next()
		want, _ := fib.Lookup(a, nil)
		got, _, ok := sys.Chip(sys.Home(a)).Lookup(a)
		if !ok || got != want {
			t.Fatalf("SLPL home lookup(%s) = (%d, %v), want %d", a, got, ok, want)
		}
	}
}

func TestSLPLDivertedServedByReplicas(t *testing.T) {
	fib, table := testTable(t, 2000, 23)
	sample := slplSample(t, table, 20000, 23)
	sys, err := NewSLPLSystem(fib, 4, sample, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Every divertable address must resolve correctly on EVERY chip.
	tr := testTraffic(t, table, 23)
	diverted := 0
	for i := 0; i < 3000 && diverted < 300; i++ {
		a := tr.Next()
		if !sys.ServesDiverted(a) {
			continue
		}
		diverted++
		want, _ := fib.Lookup(a, nil)
		for c := 0; c < sys.N(); c++ {
			got, _, ok := sys.Chip(c).Lookup(a)
			if !ok || got != want {
				t.Fatalf("replica lookup of %s on chip %d = (%d, %v), want %d", a, c, got, ok, want)
			}
		}
	}
	if diverted == 0 {
		t.Fatal("no divertable addresses found; hot set empty?")
	}
}

func TestSLPLEngineRuns(t *testing.T) {
	fib, table := testTable(t, 2000, 24)
	sample := slplSample(t, table, 20000, 24)
	sys, err := NewSLPLSystem(fib, 4, sample, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	e.SetResolveHook(func(a ip.Addr, hop ip.NextHop) {
		want, _ := fib.Lookup(a, nil)
		if hop != want {
			wrong++
		}
	})
	tr := testTraffic(t, table, 24)
	e.Run(tr.Next, 30000)
	s := e.Stats()
	if wrong != 0 {
		t.Errorf("%d SLPL packets resolved with wrong hop", wrong)
	}
	if s.ControlPlane != 0 {
		t.Errorf("SLPL performed %d control-plane interactions", s.ControlPlane)
	}
	if s.Resolved == 0 {
		t.Error("nothing resolved")
	}
}

// TestSLPLDegradesUnderTrafficShift reproduces the paper's criticism:
// replicas chosen from yesterday's statistics don't help when today's
// hot set differs, so under skewed traffic SLPL's throughput falls below
// CLUE's dynamic redundancy.
func TestSLPLDegradesUnderTrafficShift(t *testing.T) {
	fib, table := testTable(t, 4000, 25)

	// SLPL trained on seed-A statistics, then hit with seed-B traffic
	// (different hot prefixes).
	sample := slplSample(t, table, 30000, 25)
	slpl, err := NewSLPLSystem(fib.Clone(), 4, sample, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	slplEng, err := New(slpl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shifted := testTraffic(t, table, 2525) // different seed => shifted hot set
	slplEng.Run(shifted.Next, 20000)
	slplEng.ResetStats()
	for i := 0; i < 80000; i++ {
		slplEng.Step(shifted.Next(), true)
	}
	slplStats := slplEng.Stats()

	clueSys, err := NewCLUESystem(table, 4, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	clueEng, err := New(clueSys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shifted2 := testTraffic(t, table, 2525)
	clueEng.Run(shifted2.Next, 20000)
	clueEng.ResetStats()
	for i := 0; i < 80000; i++ {
		clueEng.Step(shifted2.Next(), true)
	}
	clueStats := clueEng.Stats()

	if slplStats.Dropped == 0 {
		t.Log("SLPL dropped nothing; traffic may not have overloaded any home")
	}
	if clueStats.Throughput() < slplStats.Throughput() {
		t.Errorf("CLUE throughput %.3f below SLPL's %.3f under shifted traffic",
			clueStats.Throughput(), slplStats.Throughput())
	}
}
