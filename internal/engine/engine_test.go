package engine

import (
	"testing"

	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// testTable builds a FIB + compressed table of moderate size.
func testTable(t *testing.T, routes int, seed int64) (*trie.Trie, *onrtc.Table) {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	return fib, onrtc.Compress(fib)
}

func testTraffic(t *testing.T, table *onrtc.Table, seed int64) *tracegen.Traffic {
	t.Helper()
	tr, err := tracegen.NewTraffic(tracegen.PrefixesFromRoutes(table.Routes()), tracegen.TrafficConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewCLUESystemValidation(t *testing.T) {
	_, table := testTable(t, 2000, 1)
	if _, err := NewCLUESystem(table, 1, 4, nil); err == nil {
		t.Error("tcams=1 accepted")
	}
	if _, err := NewCLUESystem(table, 4, 2, nil); err == nil {
		t.Error("buckets < tcams accepted")
	}
	if _, err := NewCLUESystem(table, 4, 8, []int{0}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := NewCLUESystem(table, 4, 8, []int{9, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

func TestCLUESystemHomeMatchesChipContent(t *testing.T) {
	_, table := testTable(t, 2000, 2)
	sys, err := NewCLUESystem(table, 4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every route must be stored in the chip its range indexes to.
	for _, r := range table.Routes() {
		home := sys.Home(r.Prefix.First())
		if !sys.Chip(home).Contains(r.Prefix) {
			t.Fatalf("route %s not in home chip %d", r.Prefix, home)
		}
	}
}

func TestEngineResolvesAllWithCorrectHops(t *testing.T) {
	fib, table := testTable(t, 2000, 3)
	sys, err := NewCLUESystem(table, 4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	e.SetResolveHook(func(a ip.Addr, hop ip.NextHop) {
		want, _ := fib.Lookup(a, nil)
		if hop != want {
			wrong++
		}
	})
	tr := testTraffic(t, table, 3)
	e.Run(tr.Next, 20000)
	s := e.Stats()
	if wrong != 0 {
		t.Errorf("%d packets resolved with a wrong hop", wrong)
	}
	if s.Resolved+s.Dropped+s.NoRoute != s.Arrived {
		t.Errorf("accounting broken: resolved %d + dropped %d + noroute %d != arrived %d",
			s.Resolved, s.Dropped, s.NoRoute, s.Arrived)
	}
	if s.NoRoute != 0 {
		t.Errorf("traffic drawn from table prefixes produced %d no-routes", s.NoRoute)
	}
	if s.Resolved == 0 {
		t.Error("nothing resolved")
	}
}

func TestEngineBalancedNearFullSpeedup(t *testing.T) {
	_, table := testTable(t, 4000, 4)
	sys, err := NewCLUESystem(table, 4, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraffic(t, table, 4)
	e.Run(tr.Next, 50000)
	s := e.Stats()
	// Round-robin bucket striping spreads even Zipf-hot buckets; the
	// engine should sustain nearly the arrival rate.
	if tp := s.Throughput(); tp < 0.85 {
		t.Errorf("balanced throughput = %.3f packets/clock, want > 0.85", tp)
	}
}

// worstCaseMapping maps the hottest buckets all to TCAM 0 (Table II's
// construction) by measuring per-bucket traffic offline.
func worstCaseMapping(t *testing.T, table *onrtc.Table, buckets, tcams int, seed int64) []int {
	t.Helper()
	_, ix, err := BucketIndex(table, buckets)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraffic(t, table, seed)
	counts := make([]int64, buckets)
	for i := 0; i < 50000; i++ {
		counts[ix.Lookup(tr.Next())]++
	}
	order := make([]int, buckets)
	for i := range order {
		order[i] = i
	}
	// Sort bucket ids by traffic, descending (insertion sort, small n).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && counts[order[j]] > counts[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	mapping := make([]int, buckets)
	per := buckets / tcams
	for rank, b := range order {
		mapping[b] = rank / per
		if mapping[b] >= tcams {
			mapping[b] = tcams - 1
		}
	}
	return mapping
}

func TestEngineWorstCaseRespectsTheoryBound(t *testing.T) {
	fib, table := testTable(t, 4000, 5)
	_ = fib
	mapping := worstCaseMapping(t, table, 32, 4, 5)
	sys, err := NewCLUESystem(table, 4, 32, mapping)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraffic(t, table, 5)
	// Warm the caches, then measure.
	e.Run(tr.Next, 20000)
	e.ResetStats()
	for i := 0; i < 100000; i++ {
		e.Step(tr.Next(), true)
	}
	s := e.Stats()
	if s.Diverted == 0 {
		t.Fatal("worst-case mapping produced no diversions; test is vacuous")
	}
	h := s.HitRate()
	tFactor := s.SpeedupFactor(e.Config().LookupClocks)
	bound := 3*h + 1
	if tFactor < bound*0.9 {
		t.Errorf("speedup %.3f below theory bound (N-1)h+1 = %.3f", tFactor, bound)
	}
	if h < 0.5 {
		t.Errorf("hit rate %.3f unexpectedly low for Zipf traffic with 1024-entry DReds", h)
	}
}

func TestEngineDRedSizeDrivesHitRate(t *testing.T) {
	_, table := testTable(t, 4000, 6)
	mapping := worstCaseMapping(t, table, 32, 4, 6)
	hits := make([]float64, 0, 2)
	for _, size := range []int{32, 2048} {
		sys, err := NewCLUESystem(table, 4, 32, mapping)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(sys, Config{DRedSize: size})
		if err != nil {
			t.Fatal(err)
		}
		tr := testTraffic(t, table, 6)
		e.Run(tr.Next, 15000)
		e.ResetStats()
		for i := 0; i < 60000; i++ {
			e.Step(tr.Next(), true)
		}
		hits = append(hits, e.Stats().HitRate())
	}
	if hits[1] <= hits[0] {
		t.Errorf("hit rate did not grow with DRed size: %v", hits)
	}
}

func TestCLPLSystemBasics(t *testing.T) {
	fib, _ := testTable(t, 2000, 7)
	sys, err := NewCLPLSystem(fib, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 4 || sys.Name() != "clpl" {
		t.Errorf("N=%d Name=%s", sys.N(), sys.Name())
	}
	// Home-chip LPM must agree with the full FIB everywhere.
	tr := testTraffic(t, onrtc.Compress(fib), 7)
	for i := 0; i < 5000; i++ {
		a := tr.Next()
		want, _ := fib.Lookup(a, nil)
		got, _, ok := sys.Chip(sys.Home(a)).Lookup(a)
		if !ok || got != want {
			t.Fatalf("CLPL home lookup(%s) = (%d, %v), want %d", a, got, ok, want)
		}
	}
}

func TestNewCLPLSystemValidation(t *testing.T) {
	fib, _ := testTable(t, 500, 8)
	if _, err := NewCLPLSystem(fib, 1, 4, nil); err == nil {
		t.Error("tcams=1 accepted")
	}
	if _, err := NewCLPLSystem(fib, 4, 0, nil); err == nil {
		t.Error("partsPerTCAM=0 accepted")
	}
	if _, err := NewCLPLSystem(trie.New(), 4, 4, nil); err == nil {
		t.Error("empty fib accepted")
	}
}

func TestCLPLEngineUsesControlPlane(t *testing.T) {
	fib, table := testTable(t, 2000, 9)
	sys, err := NewCLPLSystem(fib, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	e.SetResolveHook(func(a ip.Addr, hop ip.NextHop) {
		want, _ := fib.Lookup(a, nil)
		if hop != want {
			wrong++
		}
	})
	tr := testTraffic(t, table, 9)
	e.Run(tr.Next, 20000)
	s := e.Stats()
	if wrong != 0 {
		t.Errorf("%d CLPL packets resolved with wrong hop (RRC-ME safety violated)", wrong)
	}
	if s.ControlPlane == 0 {
		t.Error("CLPL engine reported zero control-plane interactions")
	}
	if s.SRAMVisits == 0 {
		t.Error("CLPL engine reported zero SRAM visits")
	}
}

func TestCLUEEngineNoControlPlane(t *testing.T) {
	_, table := testTable(t, 2000, 10)
	sys, err := NewCLUESystem(table, 4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraffic(t, table, 10)
	e.Run(tr.Next, 20000)
	if cp := e.Stats().ControlPlane; cp != 0 {
		t.Errorf("CLUE engine performed %d control-plane interactions, want 0", cp)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	_, table := testTable(t, 1000, 11)
	sys, err := NewCLUESystem(table, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sys, Config{QueueDepth: -1}); err == nil {
		t.Error("negative QueueDepth accepted")
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.Config()
	if cfg.QueueDepth != 256 || cfg.DRedSize != 1024 || cfg.LookupClocks != 4 {
		t.Errorf("defaults = %+v, want paper settings 256/1024/4", cfg)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Clocks: 100, Resolved: 50, DRedLookups: 10, DRedHits: 8}
	if s.Throughput() != 0.5 {
		t.Errorf("Throughput = %v", s.Throughput())
	}
	if s.SpeedupFactor(4) != 2.0 {
		t.Errorf("SpeedupFactor = %v", s.SpeedupFactor(4))
	}
	if s.HitRate() != 0.8 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	var zero Stats
	if zero.Throughput() != 0 || zero.HitRate() != 0 {
		t.Error("zero stats should have zero rates")
	}
}

func TestResetStatsKeepsCaches(t *testing.T) {
	_, table := testTable(t, 1000, 12)
	sys, err := NewCLUESystem(table, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraffic(t, table, 12)
	e.Run(tr.Next, 5000)
	cached := 0
	for i := 0; i < 4; i++ {
		cached += e.DReds().Cache(i).Len()
	}
	e.ResetStats()
	s := e.Stats()
	if s.Arrived != 0 || s.Clocks != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	after := 0
	for i := 0; i < 4; i++ {
		after += e.DReds().Cache(i).Len()
	}
	if after != cached {
		t.Errorf("ResetStats changed cache contents: %d -> %d", cached, after)
	}
}

func TestLatencyAccounting(t *testing.T) {
	_, table := testTable(t, 2000, 30)
	sys, err := NewCLUESystem(table, 4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraffic(t, table, 30)
	e.Run(tr.Next, 20000)
	s := e.Stats()
	// Every resolution takes at least the service time minus the same-
	// clock start; with LookupClocks=4 the mean must be >= ~1 clock and
	// bounded by the queue capacity times service time.
	if s.MeanLatency() < 1 {
		t.Errorf("mean latency = %.2f clocks, implausibly low", s.MeanLatency())
	}
	if s.LatencyMax < int64(s.MeanLatency()) {
		t.Errorf("max latency %d below mean %.2f", s.LatencyMax, s.MeanLatency())
	}
	limit := int64(e.Config().QueueDepth*e.Config().LookupClocks*8) + 64
	if s.LatencyMax > limit {
		t.Errorf("max latency %d clocks exceeds plausible bound %d", s.LatencyMax, limit)
	}
	if (Stats{}).MeanLatency() != 0 {
		t.Error("zero stats MeanLatency should be 0")
	}
}

func TestStallReducesThroughput(t *testing.T) {
	_, table := testTable(t, 2000, 31)
	mk := func() *Engine {
		sys, err := NewCLUESystem(table, 4, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(sys, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	smooth := mk()
	tr := testTraffic(t, table, 31)
	for i := 0; i < 40000; i++ {
		smooth.Step(tr.Next(), true)
	}
	stalled := mk()
	tr2 := testTraffic(t, table, 31)
	for i := 0; i < 40000; i++ {
		stalled.Step(tr2.Next(), true)
		if i%10 == 0 {
			// Heavy update load: stall every chip regularly.
			for c := 0; c < 4; c++ {
				stalled.Stall(c, 8)
			}
		}
	}
	if stalled.Stats().Throughput() >= smooth.Stats().Throughput() {
		t.Errorf("stalls did not reduce throughput: %.3f vs %.3f",
			stalled.Stats().Throughput(), smooth.Stats().Throughput())
	}
	// Out-of-range and non-positive stalls are ignored.
	stalled.Stall(-1, 5)
	stalled.Stall(99, 5)
	stalled.Stall(0, 0)
}

func TestRequeuedPacketsEventuallyResolve(t *testing.T) {
	// Tiny DReds force misses; the engine must still resolve everything
	// once arrivals stop (pending packets drain back through homes).
	_, table := testTable(t, 2000, 32)
	mapping := worstCaseMapping(t, table, 32, 4, 32)
	sys, err := NewCLUESystem(table, 4, 32, mapping)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys, Config{DRedSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraffic(t, table, 32)
	for i := 0; i < 5000; i++ {
		e.Step(tr.Next(), true)
	}
	e.Drain()
	s := e.Stats()
	if s.Requeued == 0 {
		t.Fatal("tiny DReds produced no requeues; test vacuous")
	}
	if s.Resolved+s.Dropped+s.NoRoute != s.Arrived {
		t.Errorf("packets lost: resolved %d + dropped %d + noroute %d != arrived %d",
			s.Resolved, s.Dropped, s.NoRoute, s.Arrived)
	}
}

func TestEngineDeterministic(t *testing.T) {
	_, table := testTable(t, 2000, 33)
	runOnce := func() Stats {
		sys, err := NewCLUESystem(table, 4, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(sys, Config{})
		if err != nil {
			t.Fatal(err)
		}
		tr := testTraffic(t, table, 33)
		e.Run(tr.Next, 20000)
		return e.Stats()
	}
	a, b := runOnce(), runOnce()
	if a.Resolved != b.Resolved || a.DRedHits != b.DRedHits || a.Clocks != b.Clocks {
		t.Errorf("engine runs diverged: %+v vs %+v", a, b)
	}
}
