package engine

import (
	"fmt"

	"clue/internal/dred"
	"clue/internal/ip"
)

// Config sets the simulator's timing and sizing parameters. Zero values
// take the paper's §V.D settings.
type Config struct {
	// QueueDepth is the per-TCAM FIFO size (paper: 256).
	QueueDepth int
	// DRedSize is the per-TCAM DRed capacity in prefixes (paper: 1024).
	DRedSize int
	// LookupClocks is the TCAM service time per lookup (paper: 4).
	LookupClocks int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.DRedSize == 0 {
		c.DRedSize = 1024
	}
	if c.LookupClocks == 0 {
		c.LookupClocks = 4
	}
	return c
}

// job is a packet in flight.
type job struct {
	addr ip.Addr
	// dredOnly marks a diverted packet: it may only probe the serving
	// TCAM's DRed, never its main partitions.
	dredOnly bool
	home     int
	// arrived is the clock at which the packet entered the engine, for
	// latency accounting.
	arrived int64
}

// Stats aggregates a simulation run.
type Stats struct {
	// Clocks is the number of simulated clock cycles.
	Clocks int64
	// Arrived counts packets offered to the engine.
	Arrived int64
	// Resolved counts packets that found their next hop.
	Resolved int64
	// NoRoute counts packets whose address matched no entry.
	NoRoute int64
	// Dropped counts packets lost because every eligible queue was full.
	Dropped int64
	// Requeued counts DRed misses sent back to their home TCAM.
	Requeued int64
	// Diverted counts packets sent to a non-home TCAM's DRed.
	Diverted int64
	// PerTCAMServed counts lookups executed by each TCAM (home + DRed).
	PerTCAMServed []int64
	// PerTCAMHome counts packets whose home was each TCAM (the
	// pre-balancing "Original" distribution of Figure 15).
	PerTCAMHome []int64
	// DRedLookups and DRedHits measure the dynamic redundancy path.
	DRedLookups int64
	DRedHits    int64
	// ControlPlane counts control-plane round trips for cache fills
	// (zero for CLUE by construction).
	ControlPlane int64
	// SRAMVisits counts control-plane trie node touches for fills.
	SRAMVisits int64
	// LatencySum and LatencyMax track per-packet clocks from arrival to
	// resolution (queueing + service).
	LatencySum int64
	LatencyMax int64
}

// HitRate returns the DRed hit rate h.
func (s Stats) HitRate() float64 {
	if s.DRedLookups == 0 {
		return 0
	}
	return float64(s.DRedHits) / float64(s.DRedLookups)
}

// Throughput returns resolved packets per clock.
func (s Stats) Throughput() float64 {
	if s.Clocks == 0 {
		return 0
	}
	return float64(s.Resolved) / float64(s.Clocks)
}

// SpeedupFactor returns throughput normalised to a single TCAM's service
// rate: t = resolved × LookupClocks / clocks. It is the paper's t.
func (s Stats) SpeedupFactor(lookupClocks int) float64 {
	return s.Throughput() * float64(lookupClocks)
}

// MeanLatency returns the average clocks from packet arrival to
// resolution.
func (s Stats) MeanLatency() float64 {
	if s.Resolved == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Resolved)
}

// Engine drives a System clock by clock.
type Engine struct {
	sys    System
	cfg    Config
	dreds  *dred.Group
	queues [][]job
	// pending holds DRed-missed packets waiting for space in their home
	// queue (the paper's "sent back and repeat step a").
	pending [][]job
	busy    []int
	// now is the monotonic simulation clock; unlike stats.Clocks it is
	// never reset, so in-flight packets keep valid arrival stamps across
	// ResetStats.
	now   int64
	stats Stats
	// onResolve, when set, observes every resolved packet (tests and
	// trace validation).
	onResolve func(addr ip.Addr, hop ip.NextHop)
}

// New builds an engine around a system.
func New(sys System, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.QueueDepth < 1 || cfg.LookupClocks < 1 || cfg.DRedSize < 0 {
		return nil, fmt.Errorf("engine: invalid config %+v", cfg)
	}
	g, err := dred.NewGroup(sys.N(), cfg.DRedSize)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		sys:     sys,
		cfg:     cfg,
		dreds:   g,
		queues:  make([][]job, sys.N()),
		pending: make([][]job, sys.N()),
		busy:    make([]int, sys.N()),
	}
	e.stats.PerTCAMServed = make([]int64, sys.N())
	e.stats.PerTCAMHome = make([]int64, sys.N())
	return e, nil
}

// SetResolveHook installs an observer called with every resolved
// packet's address and chosen next hop.
func (e *Engine) SetResolveHook(fn func(addr ip.Addr, hop ip.NextHop)) {
	e.onResolve = fn
}

// DReds exposes the engine's cache group (for the update pipeline, which
// must invalidate cached prefixes when routes change).
func (e *Engine) DReds() *dred.Group { return e.dreds }

// System returns the mechanism under simulation.
func (e *Engine) System() System { return e.sys }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a copy of the run statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.PerTCAMServed = append([]int64(nil), e.stats.PerTCAMServed...)
	s.PerTCAMHome = append([]int64(nil), e.stats.PerTCAMHome...)
	return s
}

// ResetStats zeroes counters (e.g. after cache warm-up) while keeping
// queues and cache contents.
func (e *Engine) ResetStats() {
	e.stats = Stats{
		PerTCAMServed: make([]int64, e.sys.N()),
		PerTCAMHome:   make([]int64, e.sys.N()),
	}
}

// Stall makes TCAM i unavailable for the given number of clocks, on top
// of any in-progress lookup — the cost of applying update writes/moves to
// the chip, which is exactly the lookup interruption the paper's §IV
// argues updates must minimise.
func (e *Engine) Stall(i, clocks int) {
	if i < 0 || i >= len(e.busy) || clocks <= 0 {
		return
	}
	e.busy[i] += clocks
}

// Step advances the simulation one clock: the packet (if any) arrives,
// then every TCAM progresses. Passing hasPacket=false idles the arrival
// (drain phase).
func (e *Engine) Step(addr ip.Addr, hasPacket bool) {
	e.now++
	e.stats.Clocks++
	if hasPacket {
		e.arrive(addr)
	}
	e.service()
}

// StepMulti advances one clock with any number of packet arrivals — for
// configurations whose aggregate service rate exceeds one packet per
// clock (N > LookupClocks), where the paper's one-arrival-per-clock
// convention would cap the measurable speedup.
func (e *Engine) StepMulti(addrs []ip.Addr) {
	e.now++
	e.stats.Clocks++
	for _, a := range addrs {
		e.arrive(a)
	}
	e.service()
}

// Run feeds n packets from next (one per clock), then drains the queues.
func (e *Engine) Run(next func() ip.Addr, n int) {
	for i := 0; i < n; i++ {
		e.Step(next(), true)
	}
	e.Drain()
}

// Drain advances clocks without arrivals until all queues and pending
// buffers empty (bounded, in case of pathological requeue loops).
func (e *Engine) Drain() {
	limit := e.stats.Clocks + int64(e.cfg.LookupClocks)*(int64(e.cfg.QueueDepth)+8)*int64(e.sys.N())*4
	for !e.idle() && e.stats.Clocks < limit {
		e.Step(0, false)
	}
}

func (e *Engine) idle() bool {
	for i := range e.queues {
		if len(e.queues[i]) > 0 || len(e.pending[i]) > 0 || e.busy[i] > 0 {
			return false
		}
	}
	return true
}

// arrive implements the Adaptive Load Balancing Logic's admission rule.
func (e *Engine) arrive(addr ip.Addr) {
	e.stats.Arrived++
	home := e.sys.Home(addr)
	e.stats.PerTCAMHome[home]++
	e.admit(job{addr: addr, home: home, arrived: e.now})
}

// admit places a packet: home queue first; if full, the shortest queue as
// a redundancy-only job; if that is full too (or the mechanism cannot
// serve this packet elsewhere), the packet is dropped.
func (e *Engine) admit(j job) {
	if len(e.queues[j.home]) < e.cfg.QueueDepth {
		j.dredOnly = false
		e.queues[j.home] = append(e.queues[j.home], j)
		return
	}
	// Static-redundancy mechanisms (SLPL) can only divert packets whose
	// matching prefix was pre-replicated.
	if sr, ok := e.sys.(StaticReplicator); ok && !sr.ServesDiverted(j.addr) {
		e.stats.Dropped++
		return
	}
	idlest, best := -1, e.cfg.QueueDepth
	for i := range e.queues {
		if i == j.home {
			continue
		}
		if len(e.queues[i]) < best {
			idlest, best = i, len(e.queues[i])
		}
	}
	if idlest < 0 {
		e.stats.Dropped++
		return
	}
	j.dredOnly = true
	e.stats.Diverted++
	e.queues[idlest] = append(e.queues[idlest], j)
}

// service advances every TCAM one clock, starting a new lookup when free.
func (e *Engine) service() {
	for i := range e.queues {
		// Refill home queue from the pending (DRed-missed) buffer
		// before serving, preserving arrival order.
		for len(e.pending[i]) > 0 && len(e.queues[i]) < e.cfg.QueueDepth {
			e.queues[i] = append(e.queues[i], e.pending[i][0])
			e.pending[i] = e.pending[i][1:]
		}
		if e.busy[i] > 0 {
			e.busy[i]--
			continue
		}
		if len(e.queues[i]) == 0 {
			continue
		}
		j := e.queues[i][0]
		e.queues[i] = e.queues[i][1:]
		e.busy[i] = e.cfg.LookupClocks - 1
		e.stats.PerTCAMServed[i]++
		e.resolve(i, j)
	}
}

// finish records a resolved packet's latency and notifies the hook.
func (e *Engine) finish(j job, hop ip.NextHop) {
	e.stats.Resolved++
	lat := e.now - j.arrived
	e.stats.LatencySum += lat
	if lat > e.stats.LatencyMax {
		e.stats.LatencyMax = lat
	}
	if e.onResolve != nil {
		e.onResolve(j.addr, hop)
	}
}

// resolve completes a lookup at TCAM i.
func (e *Engine) resolve(i int, j job) {
	if j.dredOnly {
		e.stats.DRedLookups++
		if _, static := e.sys.(StaticReplicator); static {
			// SLPL: the diverted packet is served by the replica in
			// this chip's main partitions (guaranteed present by the
			// admit filter).
			hop, _, ok := e.sys.Chip(i).Lookup(j.addr)
			if ok {
				e.stats.DRedHits++
				e.finish(j, hop)
				return
			}
			e.stats.Requeued++
			j.dredOnly = false
			e.pending[j.home] = append(e.pending[j.home], j)
			return
		}
		if hop, _, ok := e.dreds.Cache(i).Lookup(j.addr); ok {
			e.stats.DRedHits++
			e.finish(j, hop)
			return
		}
		// Miss: back to the home TCAM (step c of the mechanism). The
		// packet waits in the pending buffer until the home queue has
		// room.
		e.stats.Requeued++
		j.dredOnly = false
		e.pending[j.home] = append(e.pending[j.home], j)
		return
	}
	hop, p, ok := e.sys.Chip(i).Lookup(j.addr)
	if !ok {
		e.stats.NoRoute++
		return
	}
	e.finish(j, hop)
	rep := e.sys.Fill(e.dreds, i, j.addr, ip.Route{Prefix: p, NextHop: hop})
	if rep.ControlPlane {
		e.stats.ControlPlane++
	}
	e.stats.SRAMVisits += int64(rep.SRAMVisits)
}
