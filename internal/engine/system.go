// Package engine implements the clock-driven parallel TCAM lookup
// simulator of §III and §V: N TCAM chips fed by an Indexing Logic and an
// Adaptive Load Balancing Logic, with per-chip FIFO queues and Dynamic
// Redundancy partitions.
//
// The simulator reproduces the paper's timing model exactly: one packet
// arrives per clock, each TCAM serves one lookup every LookupClocks
// clocks (4 in the paper), FIFOs hold QueueDepth packets (256), and DRed
// partitions hold DRedSize prefixes (1024). A packet whose home queue is
// full is diverted to the TCAM with the shortest queue and looked up
// *only* in that TCAM's DRed; a DRed miss sends it back to its home.
//
// Two System implementations select the mechanism under test: CLUE
// (compressed disjoint table, range partitions, hit prefixes cached
// directly into the other N−1 DReds, no control plane) and the CLPL
// baseline (original table, sub-tree partitions with replicated covers,
// caches filled with RRC-ME expansions via a control-plane round trip
// into all N caches).
package engine

import (
	"fmt"

	"clue/internal/dred"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/partition"
	"clue/internal/rrcme"
	"clue/internal/tcam"
	"clue/internal/trie"
)

// FillReport describes the cache-update work a home-TCAM hit triggered,
// so the engine can account control-plane interactions (the cost CLUE's
// design eliminates).
type FillReport struct {
	// ControlPlane is true when the fill required a control-plane round
	// trip (CLPL's RRC-ME computation).
	ControlPlane bool
	// SRAMVisits counts control-plane trie node touches for the fill.
	SRAMVisits int
}

// System is the mechanism under test: it owns the chips and the home
// mapping, and defines the DRed fill rule.
type System interface {
	// Name identifies the mechanism ("clue" or "clpl").
	Name() string
	// N returns the number of TCAM chips.
	N() int
	// Home returns the TCAM responsible for addr.
	Home(addr ip.Addr) int
	// Chip returns TCAM i's main store.
	Chip(i int) *tcam.Chip
	// Fill updates the DRed group after TCAM home matched route for
	// addr.
	Fill(g *dred.Group, home int, addr ip.Addr, matched ip.Route) FillReport
}

// Resolve answers addr from its home chip — the zero-queueing data path
// underneath the clock-driven simulation. Every mechanism guarantees LPM
// correctness within the home chip (CLUE partitions are disjoint ranges,
// CLPL replicates covering routes into each carve, SLPL buckets hold
// every matching route), so this is each mechanism's ground-truth
// forwarding function; the differential oracle compares it against the
// brute-force model.
func Resolve(s System, addr ip.Addr) (ip.NextHop, bool) {
	hop, _, ok := s.Chip(s.Home(addr)).Lookup(addr)
	return hop, ok
}

// CLUESystem is the paper's proposed mechanism over a compressed table.
type CLUESystem struct {
	index   *partition.Index
	mapping []int // bucket -> TCAM
	chips   []*tcam.Chip
}

var _ System = (*CLUESystem)(nil)

// NewCLUESystem builds the CLUE data plane: the compressed table is split
// into buckets (≥ tcams, e.g. 32 in Table II) with the CLUE partition
// algorithm, and mapping assigns each bucket to a TCAM. A nil mapping
// spreads buckets round-robin. Chip capacity is sized to the largest
// assignment plus headroom for update churn.
func NewCLUESystem(table *onrtc.Table, tcams, buckets int, mapping []int) (*CLUESystem, error) {
	if tcams < 2 {
		return nil, fmt.Errorf("engine: need at least 2 TCAMs, got %d", tcams)
	}
	if buckets < tcams {
		return nil, fmt.Errorf("engine: buckets (%d) must be >= tcams (%d)", buckets, tcams)
	}
	res, index, err := partition.CLUE(table.Routes(), buckets)
	if err != nil {
		return nil, fmt.Errorf("engine: partitioning: %w", err)
	}
	if mapping == nil {
		mapping = make([]int, buckets)
		for i := range mapping {
			mapping[i] = i % tcams
		}
	}
	if len(mapping) != buckets {
		return nil, fmt.Errorf("engine: mapping has %d entries for %d buckets", len(mapping), buckets)
	}
	perTCAM := make([][]ip.Route, tcams)
	for b, part := range res.Parts {
		t := mapping[b]
		if t < 0 || t >= tcams {
			return nil, fmt.Errorf("engine: mapping[%d] = %d out of range", b, t)
		}
		perTCAM[t] = append(perTCAM[t], part.Routes...)
	}
	chips := make([]*tcam.Chip, tcams)
	for i := range chips {
		// Real deployments provision TCAM well above the current table
		// so update churn (and split expansion) never hits the ceiling.
		capacity := len(perTCAM[i])*2 + 1024
		chips[i] = tcam.NewChip(capacity, tcam.NewDisjointLayout())
		if err := chips[i].Load(perTCAM[i]); err != nil {
			return nil, fmt.Errorf("engine: loading TCAM %d: %w", i, err)
		}
	}
	return &CLUESystem{index: index, mapping: mapping, chips: chips}, nil
}

// Name implements System.
func (s *CLUESystem) Name() string { return "clue" }

// N implements System.
func (s *CLUESystem) N() int { return len(s.chips) }

// Home implements System: range-index lookup, then the bucket mapping.
func (s *CLUESystem) Home(addr ip.Addr) int {
	return s.mapping[s.index.Lookup(addr)]
}

// Chip implements System.
func (s *CLUESystem) Chip(i int) *tcam.Chip { return s.chips[i] }

// Fill implements System: the matched prefix is disjoint, so it is cached
// directly into every DRed except the home's — entirely in the data
// plane.
func (s *CLUESystem) Fill(g *dred.Group, home int, _ ip.Addr, matched ip.Route) FillReport {
	g.InsertExcept(home, matched)
	return FillReport{}
}

// CLPLSystem is the baseline mechanism over the original table.
type CLPLSystem struct {
	fib       *trie.Trie
	roots     *trie.Trie // carve-root prefix -> partition id + 1 (as hop)
	partTCAM  []int      // partition id -> TCAM
	chips     []*tcam.Chip
	residualP int
}

var _ System = (*CLPLSystem)(nil)

// NewCLPLSystem builds the CLPL data plane: sub-tree partitions of the
// uncompressed FIB (with replicated covering routes), assigned to TCAMs
// by mapping (partition id -> TCAM; nil = round-robin). partsPerTCAM
// controls carving granularity (the paper's engines carve several
// partitions per chip). The number of carved partitions is data-dependent
// and roughly tcams*partsPerTCAM; pass a mapping sized by a prior
// Partitions() probe when constructing skewed (worst-case) layouts.
func NewCLPLSystem(fib *trie.Trie, tcams, partsPerTCAM int, mapping []int) (*CLPLSystem, error) {
	if tcams < 2 {
		return nil, fmt.Errorf("engine: need at least 2 TCAMs, got %d", tcams)
	}
	if partsPerTCAM < 1 {
		return nil, fmt.Errorf("engine: partsPerTCAM must be >= 1, got %d", partsPerTCAM)
	}
	res, err := partition.SubTree(fib, tcams*partsPerTCAM)
	if err != nil {
		return nil, fmt.Errorf("engine: sub-tree partitioning: %w", err)
	}
	if mapping == nil {
		mapping = make([]int, len(res.Parts))
		for i := range mapping {
			mapping[i] = i % tcams
		}
	}
	if len(mapping) != len(res.Parts) {
		return nil, fmt.Errorf("engine: mapping has %d entries for %d partitions", len(mapping), len(res.Parts))
	}
	s := &CLPLSystem{
		fib:       fib,
		roots:     trie.New(),
		partTCAM:  make([]int, len(res.Parts)),
		residualP: -1,
	}
	perTCAM := make([][]ip.Route, tcams)
	for i, part := range res.Parts {
		t := mapping[i]
		if t < 0 || t >= tcams {
			return nil, fmt.Errorf("engine: mapping[%d] = %d out of range", i, t)
		}
		s.partTCAM[i] = t
		perTCAM[t] = append(perTCAM[t], part.Routes...)
		// Deeper carves overwrite shallower ones only if the same root
		// repeats, which cannot happen; the residual is rooted at /0.
		if part.Root == (ip.Prefix{}) {
			s.residualP = i
		}
		s.roots.Insert(part.Root, ip.NextHop(i+1), nil)
	}
	if s.residualP < 0 {
		// All routes were carved; route unmatched space to partition 0.
		s.residualP = 0
	}
	s.chips = make([]*tcam.Chip, tcams)
	for i := range s.chips {
		// Two partitions on the same chip may both carry a replica of
		// the same covering route; the chip needs only one copy.
		seen := make(map[ip.Prefix]bool, len(perTCAM[i]))
		routes := perTCAM[i][:0]
		for _, r := range perTCAM[i] {
			if seen[r.Prefix] {
				continue
			}
			seen[r.Prefix] = true
			routes = append(routes, r)
		}
		capacity := len(routes)*5/4 + 64
		s.chips[i] = tcam.NewChip(capacity, tcam.NewPLOLayout())
		if err := s.chips[i].Load(routes); err != nil {
			return nil, fmt.Errorf("engine: loading TCAM %d: %w", i, err)
		}
	}
	return s, nil
}

// Name implements System.
func (s *CLPLSystem) Name() string { return "clpl" }

// N implements System.
func (s *CLPLSystem) N() int { return len(s.chips) }

// Home implements System: the deepest carve root containing addr owns it
// (replicated covers make LPM inside that partition correct); addresses
// under no carve root belong to the residual partition.
func (s *CLPLSystem) Home(addr ip.Addr) int {
	return s.partTCAM[s.PartitionOf(addr)]
}

// PartitionOf returns the sub-tree partition responsible for addr
// (offline workload analysis for worst-case mappings).
func (s *CLPLSystem) PartitionOf(addr ip.Addr) int {
	id, _ := s.roots.Lookup(addr, nil)
	if id == ip.NoRoute {
		return s.residualP
	}
	return int(id) - 1
}

// Partitions returns the number of carved sub-tree partitions.
func (s *CLPLSystem) Partitions() int { return len(s.partTCAM) }

// Chip implements System.
func (s *CLPLSystem) Chip(i int) *tcam.Chip { return s.chips[i] }

// Fill implements System: the matched prefix may cover longer routes, so
// the control plane must compute the RRC-ME minimal expansion on its SRAM
// trie and push it into all N logical caches — the round trip CLUE
// avoids.
func (s *CLPLSystem) Fill(g *dred.Group, _ int, addr ip.Addr, matched ip.Route) FillReport {
	var v trie.Visits
	exp := rrcme.MinimalExpansion(s.fib, addr, matched.Prefix, &v)
	g.InsertAll(ip.Route{Prefix: exp, NextHop: matched.NextHop})
	return FillReport{ControlPlane: true, SRAMVisits: v.Nodes}
}

// BucketIndex runs the CLUE partition over the table and returns the
// buckets and range index without building chips — the offline analysis
// step behind Table II's per-bucket workload measurement and the
// worst-case mapping construction.
func BucketIndex(table *onrtc.Table, buckets int) (partition.Result, *partition.Index, error) {
	return partition.CLUE(table.Routes(), buckets)
}

// HomesForRange returns the distinct TCAMs whose bucket ranges intersect
// [lo, hi], in ascending order. The update path uses it to place new
// compressed prefixes: a prefix produced by a merge can span several
// buckets, in which case every owning chip stores a copy so that any
// home lookup in the range still matches.
func (s *CLUESystem) HomesForRange(lo, hi ip.Addr) []int {
	first := s.index.Lookup(lo)
	last := s.index.Lookup(hi)
	seen := make(map[int]bool, last-first+1)
	var out []int
	for b := first; b <= last; b++ {
		t := s.mapping[b]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
