package rrcme

import (
	"math/rand"
	"testing"

	"clue/internal/ip"
	"clue/internal/trie"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }
func addr(s string) ip.Addr  { return ip.MustParseAddr(s) }

func TestPaperExample(t *testing.T) {
	// Figure 2: p = 1* (hop A), q = 100* with a different hop. An address
	// 100000... matching q is not the case here — the paper looks up
	// 10 0000, LPM returns p = 1*, and the safe cache prefix is 100* ...
	// no wait: q = 100* owns a different hop, so the safe prefix for an
	// address under 10 1... is the sibling side. Reconstruct exactly:
	// lookup key 1000 00.. would match q itself. The paper's key matches
	// p with q = 100* being a *different* branch: key = 11.... Use the
	// paper's structure: p=1*, child route at 100*; for a key under 101*
	// the minimal expansion is 101*.
	fib := trie.New()
	p := ip.MustPrefix(addr("128.0.0.0"), 1) // 1*
	q := ip.MustPrefix(addr("128.0.0.0"), 3) // 100*
	fib.Insert(p, 10, nil)
	fib.Insert(q, 20, nil)

	key := addr("160.0.0.1") // 101....
	hop, via := fib.Lookup(key, nil)
	if hop != 10 || via != p {
		t.Fatalf("precondition: LPM = (%d, %s)", hop, via)
	}
	got := MinimalExpansion(fib, key, p, nil)
	want := ip.MustPrefix(addr("160.0.0.0"), 3) // 101*
	if got != want {
		t.Errorf("MinimalExpansion = %s, want %s", got, want)
	}
}

func TestNoDescendantsReturnsPrefixItself(t *testing.T) {
	fib := trie.New()
	p := pfx("10.0.0.0/8")
	fib.Insert(p, 1, nil)
	got := MinimalExpansion(fib, addr("10.1.2.3"), p, nil)
	if got != p {
		t.Errorf("MinimalExpansion = %s, want %s (leaf route is already safe)", got, p)
	}
}

func TestDeepDescendantForcesLongExpansion(t *testing.T) {
	fib := trie.New()
	p := pfx("10.0.0.0/8")
	fib.Insert(p, 1, nil)
	fib.Insert(pfx("10.0.0.0/24"), 2, nil)
	// Key on the same descent path as the /24 until bit 15, then diverges.
	key := addr("10.0.128.1")
	got := MinimalExpansion(fib, key, p, nil)
	if got != pfx("10.0.128.0/17") {
		t.Errorf("MinimalExpansion = %s, want 10.0.128.0/17", got)
	}
	if !got.Contains(key) {
		t.Error("expansion does not contain the key")
	}
}

// assertSafe checks the RRC-ME safety contract: every address inside the
// expansion has the same LPM hop as the key did.
func assertSafe(t *testing.T, fib *trie.Trie, exp ip.Prefix, hop ip.NextHop, rng *rand.Rand) {
	t.Helper()
	span := uint64(exp.Last()-exp.First()) + 1
	for i := 0; i < 50; i++ {
		a := exp.First() + ip.Addr(rng.Uint64()%span)
		got, _ := fib.Lookup(a, nil)
		if got != hop {
			t.Fatalf("address %s inside expansion %s has hop %d, key's hop was %d", a, exp, got, hop)
		}
	}
	// Boundaries too.
	for _, a := range []ip.Addr{exp.First(), exp.Last()} {
		got, _ := fib.Lookup(a, nil)
		if got != hop {
			t.Fatalf("boundary %s of %s has hop %d, want %d", a, exp, got, hop)
		}
	}
}

// Property: expansions are always safe and minimal on random tables.
func TestExpansionSafeAndMinimalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		fib := trie.New()
		for i := 0; i < 300; i++ {
			fib.Insert(ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(17)+8), ip.NextHop(rng.Intn(5)+1), nil)
		}
		for i := 0; i < 300; i++ {
			key := ip.Addr(rng.Uint32())
			hop, p := fib.Lookup(key, nil)
			if hop == ip.NoRoute {
				continue
			}
			exp := MinimalExpansion(fib, key, p, nil)
			if !exp.Contains(key) {
				t.Fatalf("expansion %s does not contain key %s", exp, key)
			}
			if !p.Covers(exp) {
				t.Fatalf("expansion %s escapes matched prefix %s", exp, p)
			}
			assertSafe(t, fib, exp, hop, rng)
			// Minimality: one bit shorter must be unsafe (shadow some
			// longer route) unless it escapes p.
			if exp.Len > p.Len {
				parent := exp.Parent()
				shadowed := false
				fib.WalkRoutes(func(r ip.Route) bool {
					if r.Prefix.Len > p.Len && parent.Overlaps(r.Prefix) {
						shadowed = true
						return false
					}
					return true
				})
				if !shadowed {
					t.Fatalf("expansion %s not minimal: parent %s is also safe (matched %s)", exp, parent, p)
				}
			}
		}
	}
}

func TestVisitsAccounting(t *testing.T) {
	fib := trie.New()
	p := pfx("10.0.0.0/8")
	fib.Insert(p, 1, nil)
	fib.Insert(pfx("10.0.0.0/24"), 2, nil)
	var v trie.Visits
	MinimalExpansion(fib, addr("10.0.128.1"), p, &v)
	if v.Nodes == 0 {
		t.Error("expansion reported zero visits")
	}
}

func TestVanishedRouteFailsSafe(t *testing.T) {
	fib := trie.New()
	got := MinimalExpansion(fib, addr("10.1.2.3"), pfx("10.0.0.0/8"), nil)
	if got.Len != ip.AddrBits || !got.Contains(addr("10.1.2.3")) {
		t.Errorf("fail-safe expansion = %s, want host route for the key", got)
	}
}
