// Package rrcme implements the RRC-ME algorithm (Routing prefix Cache with
// Minimal Expansion, Akhbarizadeh & Nourani 2004), which the CLPL baseline
// uses to fill its logical caches.
//
// A prefix cache over an overlapping table cannot simply cache the
// longest-match prefix p: if some longer route q lives inside p, a later
// address that should match q could wrongly hit cached p. RRC-ME instead
// computes the *minimal expansion* p' — the shortest prefix that contains
// the looked-up address, lies inside p, and excludes every route longer
// than p — so caching p' is always safe.
//
// The computation walks the control plane's SRAM-resident trie, which is
// precisely the cost CLUE eliminates: an ONRTC-compressed table is
// disjoint, so the hit prefix itself is always safe to cache and no
// control-plane round trip is needed. The trie visits each call reports
// feed the TTF3 cost model.
package rrcme

import (
	"clue/internal/ip"
	"clue/internal/trie"
)

// MinimalExpansion returns the shortest cache-safe prefix for addr given
// that LPM over fib matched the route at prefix p. The returned prefix p'
// satisfies p ⊇ p' ∋ addr, and no route longer than p intersects p'.
//
// The caller must pass the actual LPM result for addr (as CLPL's control
// plane does); behaviour is unspecified otherwise. Trie node touches are
// charged to v.
func MinimalExpansion(fib *trie.Trie, addr ip.Addr, p ip.Prefix, v *trie.Visits) ip.Prefix {
	n := fib.Find(p, v)
	if n == nil {
		// The matched route vanished between lookup and expansion
		// (cannot happen in a single-threaded control plane, but fail
		// safe): the host route is always cache-safe.
		return ip.MustPrefix(addr, ip.AddrBits)
	}
	cur := p
	for !n.IsLeaf() {
		// Some route lives strictly below: cur would shadow it, so
		// descend one bit toward addr.
		bit := addr.Bit(int(cur.Len))
		cur = cur.Child(bit)
		n = n.Children[bit]
		if n == nil {
			// The subtree on addr's side is empty: cur is safe.
			return cur
		}
		if v != nil {
			v.Nodes++
		}
	}
	return cur
}
