package oracle

import (
	"errors"
	"fmt"

	"clue/internal/core"
	"clue/internal/engine"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/serve"
	"clue/internal/tracegen"
	"clue/internal/trie"
	"clue/internal/update"
)

// Answer is one engine's reply to a probe. Skip means the engine cannot
// answer this probe (a statically-built system mid-churn, or a table too
// small to partition) and the comparison is waived — never that the
// lookup missed, which is Found=false.
type Answer struct {
	Hop   ip.NextHop
	Found bool
	Skip  bool
}

// Engine is one lookup implementation under differential test. Lookup
// may return an error only for internal divergence the engine itself can
// see (e.g. serve's worker path disagreeing with its snapshot path);
// wrong answers are the driver's to detect, against the model.
type Engine interface {
	// Name labels the engine in failures ("table", "serve", ...).
	Name() string
	// Stepwise reports that mutations and lookups are cheap enough for
	// the driver's per-step boundary probes. Non-stepwise engines are
	// probed only at checkpoints, after Check rebuilds them.
	Stepwise() bool
	Announce(p ip.Prefix, hop ip.NextHop) error
	Withdraw(p ip.Prefix) error
	Lookup(addr ip.Addr) (Answer, error)
	// Check asserts the engine's structural invariants (disjointness,
	// store coherence, cache freshness) against itself and the model.
	Check(m *Model) error
	Close()
}

// Optional capabilities: the driver feature-detects these instead of
// forcing no-op methods onto every engine.
type (
	batchLooker   interface{ LookupBatch(addrs []ip.Addr) ([]Answer, error) }
	faultInjector interface {
		FailWorker(id int) error
		RecoverWorker(id int) error
	}
	flusher interface{ Flush() error }
	swapper interface{ Swap() error }
	// rebalancer forces one load-aware repartitioning pass — a live cut
	// move the driver's subsequent lookups and checkpoints must not be
	// able to observe in any answer.
	rebalancer interface{ Rebalance() error }
	// tableDumper exposes the engine's compressed-table contents; the
	// driver cross-compares every dump against a fresh compression of
	// the model's FIB, so the independent ONRTC replicas must agree
	// entry for entry.
	tableDumper interface{ TableRoutes() []ip.Route }
)

// AllEngines returns the names of every available engine, in driver
// order.
func AllEngines() []string {
	return []string{"table", "clue-pipe", "clpl-pipe", "slpl-sys", "clpl-sys", "serve", "feed"}
}

// buildEngines constructs the selected engines over the base route set.
// Each engine owns a private trie built from routes, so no state is
// shared across implementations.
func buildEngines(cfg Config, routes []ip.Route) ([]Engine, error) {
	var out []Engine
	for _, name := range cfg.Engines {
		e, err := buildEngine(cfg, name, routes)
		if err != nil {
			for _, b := range out {
				b.Close()
			}
			return nil, fmt.Errorf("oracle: building %s: %w", name, err)
		}
		out = append(out, e)
	}
	return out, nil
}

func buildEngine(cfg Config, name string, routes []ip.Route) (Engine, error) {
	switch name {
	case "table":
		return &tableEngine{u: onrtc.BuildUpdater(trie.FromRoutes(routes))}, nil
	case "clue-pipe":
		p, err := update.NewCLUEPipeline(trie.FromRoutes(routes), 4, 64, update.DefaultCosts())
		if err != nil {
			return nil, err
		}
		return &cluePipeEngine{p: p}, nil
	case "clpl-pipe":
		p, err := update.NewCLPLPipeline(trie.FromRoutes(routes), 4, 64, update.DefaultCosts())
		if err != nil {
			return nil, err
		}
		return &clplPipeEngine{p: p}, nil
	case "slpl-sys":
		return newSysEngine("slpl-sys", routes, buildSLPL), nil
	case "clpl-sys":
		return newSysEngine("clpl-sys", routes, func(fib *trie.Trie) (engine.System, error) {
			return engine.NewCLPLSystem(fib, 2, 2, nil)
		}), nil
	case "serve":
		rt, err := serve.New(routes, serve.Config{
			Workers: cfg.Workers,
			System:  core.Config{TCAMs: 2, Buckets: 8},
		})
		if err != nil {
			return nil, err
		}
		return &serveEngine{rt: rt}, nil
	case "feed":
		return newFeedEngine(cfg, routes)
	}
	return nil, fmt.Errorf("unknown engine %q", name)
}

// tableEngine is the raw compressed table under ONRTC incremental
// update — the innermost mechanism everything else builds on. Check
// re-compresses the live FIB from scratch and demands the incrementally
// maintained table match the batch result exactly.
type tableEngine struct {
	u *onrtc.Updater
}

func (e *tableEngine) Name() string   { return "table" }
func (e *tableEngine) Stepwise() bool { return true }
func (e *tableEngine) Close()         {}

func (e *tableEngine) Announce(p ip.Prefix, hop ip.NextHop) error {
	e.u.Announce(p, hop)
	return nil
}

func (e *tableEngine) Withdraw(p ip.Prefix) error {
	e.u.Withdraw(p)
	return nil
}

func (e *tableEngine) Lookup(addr ip.Addr) (Answer, error) {
	hop, _ := e.u.Table().Lookup(addr, nil)
	return Answer{Hop: hop, Found: hop != ip.NoRoute}, nil
}

func (e *tableEngine) Check(*Model) error {
	if err := e.u.Table().VerifyDisjoint(); err != nil {
		return err
	}
	want := onrtc.Compress(e.u.FIB()).Routes()
	got := e.u.Table().Routes()
	if err := routesEqual(got, want); err != nil {
		return fmt.Errorf("incremental table diverged from batch compression: %w", err)
	}
	return nil
}

func (e *tableEngine) TableRoutes() []ip.Route { return e.u.Table().Routes() }

// cluePipeEngine is the full CLUE update pipeline: trie → compressed
// TCAM → DRed group. Lookups answer from the TCAM model and emulate the
// engine fill rule (hit prefix cached into the other DReds) so withdraw
// churn runs against populated caches — the TTF3 no-stale-entry
// invariant is vacuous over empty DReds.
type cluePipeEngine struct {
	p     *update.CLUEPipeline
	fills int
}

func (e *cluePipeEngine) Name() string   { return "clue-pipe" }
func (e *cluePipeEngine) Stepwise() bool { return true }
func (e *cluePipeEngine) Close()         {}

func (e *cluePipeEngine) Announce(p ip.Prefix, hop ip.NextHop) error {
	_, err := e.p.Apply(tracegen.Update{Kind: tracegen.Announce, Prefix: p, Hop: hop})
	return err
}

func (e *cluePipeEngine) Withdraw(p ip.Prefix) error {
	_, err := e.p.Apply(tracegen.Update{Kind: tracegen.Withdraw, Prefix: p})
	return err
}

func (e *cluePipeEngine) Lookup(addr ip.Addr) (Answer, error) {
	hop, pfx, ok := e.p.Chip().Lookup(addr)
	if ok {
		e.fills++
		e.p.DReds().InsertExcept(e.fills%e.p.DReds().N(), ip.Route{Prefix: pfx, NextHop: hop})
	}
	return Answer{Hop: hop, Found: ok}, nil
}

func (e *cluePipeEngine) Check(*Model) error { return e.p.VerifyCoherence() }

func (e *cluePipeEngine) Flush() error {
	g := e.p.DReds()
	for i := 0; i < g.N(); i++ {
		g.Cache(i).Reset()
	}
	return nil
}

func (e *cluePipeEngine) TableRoutes() []ip.Route { return e.p.Chip().Routes() }

// clplPipeEngine is the baseline update pipeline: uncompressed trie, PLO
// TCAM, RRC-ME logical caches. Hits periodically warm the caches so
// update-time invalidation (InvalidateOverlapping) runs against real
// expansions; Check then demands every surviving expansion still
// forwards its whole block to the cached hop.
type clplPipeEngine struct {
	p    *update.CLPLPipeline
	hits int
}

func (e *clplPipeEngine) Name() string   { return "clpl-pipe" }
func (e *clplPipeEngine) Stepwise() bool { return true }
func (e *clplPipeEngine) Close()         {}

func (e *clplPipeEngine) Announce(p ip.Prefix, hop ip.NextHop) error {
	_, err := e.p.Apply(tracegen.Update{Kind: tracegen.Announce, Prefix: p, Hop: hop})
	return err
}

func (e *clplPipeEngine) Withdraw(p ip.Prefix) error {
	_, err := e.p.Apply(tracegen.Update{Kind: tracegen.Withdraw, Prefix: p})
	return err
}

func (e *clplPipeEngine) Lookup(addr ip.Addr) (Answer, error) {
	hop, _, ok := e.p.Chip().Lookup(addr)
	if ok {
		e.hits++
		if e.hits%2 == 0 {
			e.p.Warm([]ip.Addr{addr})
		}
	}
	return Answer{Hop: hop, Found: ok}, nil
}

// Check verifies cache freshness: an RRC-ME expansion promises its whole
// block forwards to one hop, so any block boundary disagreeing with the
// model means update-time invalidation missed an affected entry.
func (e *clplPipeEngine) Check(m *Model) error {
	g := e.p.Caches()
	for i := 0; i < g.N(); i++ {
		for _, r := range g.Cache(i).Routes() {
			for _, a := range []ip.Addr{r.Prefix.First(), r.Prefix.Last()} {
				hop, ok := m.Lookup(a)
				if !ok || hop != r.NextHop {
					return fmt.Errorf("cache %d holds stale expansion %v: model says hop %d found %v at %s", i, r, hop, ok, a)
				}
			}
		}
	}
	return nil
}

func (e *clplPipeEngine) Flush() error {
	g := e.p.Caches()
	for i := 0; i < g.N(); i++ {
		g.Cache(i).Reset()
	}
	return nil
}

// sysEngine wraps a statically-constructed parallel system (SLPL,
// CLPL): the build has no incremental update path, so mutations go to a
// mirror trie and mark the system dirty. Lookups answer only from a
// clean build (Skip otherwise); Check rebuilds from the mirror, so every
// checkpoint validates the partition construction itself over the
// churned table.
type sysEngine struct {
	name   string
	mirror *trie.Trie
	build  func(fib *trie.Trie) (engine.System, error)
	sys    engine.System
	dirty  bool
}

// minSysRoutes is the floor below which the partitioners cannot carve a
// meaningful layout; smaller tables are skipped rather than failed.
const minSysRoutes = 16

func newSysEngine(name string, routes []ip.Route, build func(*trie.Trie) (engine.System, error)) *sysEngine {
	return &sysEngine{name: name, mirror: trie.FromRoutes(routes), build: build, dirty: true}
}

func buildSLPL(fib *trie.Trie) (engine.System, error) {
	routes := fib.Routes()
	sample := make([]ip.Addr, 0, 128)
	for i, r := range routes {
		if i >= 128 {
			break
		}
		sample = append(sample, r.Prefix.First())
	}
	return engine.NewSLPLSystem(fib, 2, sample, 0.25)
}

func (e *sysEngine) Name() string   { return e.name }
func (e *sysEngine) Stepwise() bool { return false }
func (e *sysEngine) Close()         {}

func (e *sysEngine) Announce(p ip.Prefix, hop ip.NextHop) error {
	e.mirror.Insert(p, hop, nil)
	e.dirty = true
	return nil
}

func (e *sysEngine) Withdraw(p ip.Prefix) error {
	e.mirror.Delete(p, nil)
	e.dirty = true
	return nil
}

func (e *sysEngine) Lookup(addr ip.Addr) (Answer, error) {
	if e.dirty || e.sys == nil {
		return Answer{Skip: true}, nil
	}
	hop, ok := engine.Resolve(e.sys, addr)
	return Answer{Hop: hop, Found: ok}, nil
}

func (e *sysEngine) Check(*Model) error {
	if e.mirror.Len() < minSysRoutes {
		e.sys = nil
		return nil
	}
	// Build from a clone: the constructors take ownership of the trie,
	// and the mirror keeps mutating afterwards.
	sys, err := e.build(e.mirror.Clone())
	if err != nil {
		return fmt.Errorf("rebuild over %d routes: %w", e.mirror.Len(), err)
	}
	e.sys, e.dirty = sys, false
	return nil
}

// serveEngine is the full concurrent runtime. Lookups answer from the
// snapshot path; every fourth call additionally runs the worker dispatch
// path (queues, divert, DRed-analog caches) and demands it agree with
// the snapshot — the driver is single-writer, so the two paths see the
// same published table. Batch commands run through DispatchBatch.
type serveEngine struct {
	rt    *serve.Runtime
	calls int
}

func (e *serveEngine) Name() string   { return "serve" }
func (e *serveEngine) Stepwise() bool { return true }
func (e *serveEngine) Close()         { e.rt.Close() }

func (e *serveEngine) Announce(p ip.Prefix, hop ip.NextHop) error {
	_, err := e.rt.Announce(p, hop)
	return err
}

func (e *serveEngine) Withdraw(p ip.Prefix) error {
	_, err := e.rt.Withdraw(p)
	return err
}

func (e *serveEngine) Lookup(addr ip.Addr) (Answer, error) {
	hop, _, ok := e.rt.Lookup(addr)
	e.calls++
	if e.calls%4 == 0 {
		res, err := e.rt.Dispatch(addr)
		if err != nil {
			return Answer{}, fmt.Errorf("dispatch %s: %w", addr, err)
		}
		if res.Found != ok || (ok && res.Hop != hop) {
			return Answer{}, fmt.Errorf("dispatch diverged from snapshot at %s: worker %d said hop %d found %v, snapshot hop %d found %v",
				addr, res.Worker, res.Hop, res.Found, hop, ok)
		}
	}
	return Answer{Hop: hop, Found: ok}, nil
}

func (e *serveEngine) LookupBatch(addrs []ip.Addr) ([]Answer, error) {
	results, err := e.rt.DispatchBatch(addrs, nil)
	if err != nil {
		return nil, fmt.Errorf("dispatch batch: %w", err)
	}
	out := make([]Answer, len(results))
	for i, r := range results {
		out[i] = Answer{Hop: r.Hop, Found: r.Found}
	}
	return out, nil
}

func (e *serveEngine) FailWorker(id int) error {
	return ignoreStateRefusal(e.rt.FailWorker(id))
}

func (e *serveEngine) RecoverWorker(id int) error {
	return ignoreStateRefusal(e.rt.RecoverWorker(id))
}

// ignoreStateRefusal drops ErrWorkerState: the lifecycle generator
// deliberately issues redundant fail/recover commands (double-fail,
// recover-when-healthy, failing the last worker) and the runtime
// refusing them is the correct behaviour, not a divergence.
func ignoreStateRefusal(err error) error {
	if errors.Is(err, serve.ErrWorkerState) {
		return nil
	}
	return err
}

func (e *serveEngine) Flush() error { return e.rt.FlushCaches() }
func (e *serveEngine) Swap() error  { return e.rt.FlushCaches() }

// Rebalance forces one repartitioning pass. The runtime legitimately
// declines a recut (no traffic signal, degraded workers, too few
// routes); that is hysteresis working, not a failure — only a real
// error (closed runtime, publication fault) propagates.
func (e *serveEngine) Rebalance() error {
	_, err := e.rt.Rebalance(true)
	return err
}

func (e *serveEngine) Check(*Model) error {
	return onrtc.VerifyDisjoint(e.rt.Snapshot().Routes())
}

func (e *serveEngine) TableRoutes() []ip.Route { return e.rt.Snapshot().Routes() }

// routesEqual compares two route dumps entry for entry.
func routesEqual(got, want []ip.Route) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d routes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("entry %d is %v, want %v", i, got[i], want[i])
		}
	}
	return nil
}
