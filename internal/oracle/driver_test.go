package oracle

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// oracleOps overrides the lifecycle op budget: the default CI leg runs
// `go test ./internal/oracle -oracle-ops 120000`; 0 picks 12000 (1500
// under -short).
var oracleOps = flag.Int("oracle-ops", 0, "ops per oracle lifecycle run (0 = default)")

func lifecycleOps(t *testing.T) int {
	if *oracleOps > 0 {
		return *oracleOps
	}
	if testing.Short() {
		return 1500
	}
	return 12000
}

// TestOracleLifecycle is the main differential run: every engine, full
// command mix, structural checks at every checkpoint. On failure the
// sequence is shrunk and written under testdata/ so the exact divergence
// replays with TestReplayTestdata (CI uploads the file as an artifact).
func TestOracleLifecycle(t *testing.T) {
	cfg := Config{Seed: 1, Ops: lifecycleOps(t), Log: t.Logf}
	cmds, f := Run(cfg)
	if f == nil {
		return
	}
	shrunk, sf := Shrink(cfg, cmds, f, 400)
	path := writeRepro(t, cfg, shrunk, sf)
	t.Fatalf("divergence: %v\nshrunk to %d commands: %v\nreproducer written to %s", f, len(shrunk), sf, path)
}

// writeRepro persists a shrunk failing sequence for replay and CI
// artifact upload.
func writeRepro(t *testing.T, cfg Config, cmds []Command, f *Failure) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRepro(&buf, cfg, cmds, f); err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatalf("mkdir testdata: %v", err)
	}
	path := filepath.Join("testdata", fmt.Sprintf("repro-seed%d.txt", cfg.Seed))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("writing reproducer: %v", err)
	}
	return path
}

// TestMutantDetection proves the harness actually detects divergence and
// shrinks it small: each planted model defect must be caught and the
// failing sequence must delta-debug to at most 10 commands.
func TestMutantDetection(t *testing.T) {
	for _, mutant := range []Mutant{MutantDropWithdraw, MutantShortestMatch} {
		t.Run(mutant.String(), func(t *testing.T) {
			cfg := Config{Seed: 2, Ops: 2000, Mutant: mutant}
			cmds, f := Run(cfg)
			if f == nil {
				t.Fatalf("planted mutant %s went undetected over %d ops", mutant, cfg.Ops)
			}
			t.Logf("detected at step %d (engine %s): %s", f.Step, f.Engine, f.Detail)
			shrunk, sf := Shrink(cfg, cmds, f, 400)
			if sf == nil {
				t.Fatal("shrunk sequence no longer fails")
			}
			if rf := Replay(cfg, shrunk); rf == nil {
				t.Fatal("shrunk sequence does not replay to a failure")
			}
			if len(shrunk) > 10 {
				var buf bytes.Buffer
				_ = WriteRepro(&buf, cfg, shrunk, sf)
				t.Fatalf("shrunk to %d commands, want <= 10:\n%s", len(shrunk), buf.String())
			}
			t.Logf("shrunk %d -> %d commands: %v", len(cmds), len(shrunk), sf)
		})
	}
}

// TestReplayDeterministic: the same sequence must produce the same
// failure — the property shrinking and reproducer scripts rely on.
func TestReplayDeterministic(t *testing.T) {
	cfg := Config{Seed: 4, Ops: 600, Mutant: MutantShortestMatch}
	cmds := Generate(cfg)
	a := Replay(cfg, cmds)
	b := Replay(cfg, cmds)
	if a == nil || b == nil {
		t.Fatalf("mutant run did not fail: %v / %v", a, b)
	}
	if a.Step != b.Step || a.Engine != b.Engine || a.Detail != b.Detail {
		t.Fatalf("replays diverged:\n  %v\n  %v", a, b)
	}
}

// TestEngineSubset: the driver must run with any engine selection (the
// weekly soak isolates engines to localize failures).
func TestEngineSubset(t *testing.T) {
	cfg := Config{Seed: 5, Ops: 400, Engines: []string{"table", "serve"}}
	if _, f := Run(cfg); f != nil {
		t.Fatalf("subset run failed: %v", f)
	}
	bad := Config{Seed: 5, Ops: 10, Engines: []string{"nope"}}
	if _, f := Run(bad); f == nil || f.Step != -1 {
		t.Fatalf("unknown engine not rejected at setup: %v", f)
	}
}

// TestReplayTestdata replays every committed script under testdata/.
// Scripts whose first comment contains "failure:" are unfixed
// reproducers and are skipped with a note; everything else must replay
// clean, pinning previously-shrunk sequences as regression tests.
func TestReplayTestdata(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no testdata scripts")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(data, []byte("# failure:")) {
				t.Skipf("%s is an open reproducer, not a regression pin", path)
			}
			cfg, cmds, err := ParseScript(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			if f := Replay(cfg, cmds); f != nil {
				t.Fatalf("replaying %s: %v", path, f)
			}
		})
	}
}
