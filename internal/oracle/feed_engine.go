package oracle

import (
	"fmt"
	"net"
	"time"

	"clue/internal/core"
	"clue/internal/feed"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/ribio"
	"clue/internal/serve"
)

// feedEngine is a replicated deployment under differential test: every
// mutation goes through a real collector, over a localhost TCP stream,
// into a follower applying it to its own serve runtime. The engine
// waits for the follower to ack each batch before returning, so the
// driver's per-step probes run against a converged replica — any wire,
// resume or reconciliation bug shows up as a divergence from the model
// like any other engine's.
type feedEngine struct {
	coll  *feed.Collector
	app   *feed.RuntimeApplier
	fl    *feed.Follower
	calls int
}

// feedOpTimeout bounds one replicated batch end to end (TCP roundtrip
// plus a blocking apply); generous because CI runs under -race.
const feedOpTimeout = 30 * time.Second

func newFeedEngine(cfg Config, routes []ip.Route) (Engine, error) {
	coll, err := feed.NewCollector(feed.CollectorConfig{BaseRoutes: routes})
	if err != nil {
		return nil, err
	}
	if _, err := coll.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	app := feed.NewRuntimeApplier(serve.Config{
		Workers: cfg.Workers,
		System:  core.Config{TCAMs: 2, Buckets: 8},
	})
	fl, err := feed.NewFollower(feed.FollowerConfig{
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", coll.Addr().String(), time.Second)
		},
		Applier: app,
	})
	if err != nil {
		coll.Close()
		app.Close()
		return nil, err
	}
	e := &feedEngine{coll: coll, app: app, fl: fl}
	// Block until the bootstrap snapshot built the runtime — the driver
	// probes immediately after construction.
	deadline := time.Now().Add(feedOpTimeout)
	for app.Runtime() == nil {
		if time.Now().After(deadline) {
			e.Close()
			return nil, fmt.Errorf("follower never bootstrapped within %s", feedOpTimeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return e, nil
}

func (e *feedEngine) Name() string   { return "feed" }
func (e *feedEngine) Stepwise() bool { return true }

func (e *feedEngine) Close() {
	e.fl.Close()
	e.coll.Close()
	e.app.Close()
}

// replicate ships one update as a single-record batch and waits for the
// follower to apply it (and its runtime to publish it).
func (e *feedEngine) replicate(rec ribio.UpdateRecord) error {
	seq, err := e.coll.Apply([]ribio.UpdateRecord{rec})
	if err != nil {
		return err
	}
	return e.fl.WaitSeq(seq, feedOpTimeout)
}

func (e *feedEngine) Announce(p ip.Prefix, hop ip.NextHop) error {
	return e.replicate(ribio.UpdateRecord{Prefix: p, NextHop: hop})
}

func (e *feedEngine) Withdraw(p ip.Prefix) error {
	return e.replicate(ribio.UpdateRecord{Withdraw: true, Prefix: p})
}

func (e *feedEngine) Lookup(addr ip.Addr) (Answer, error) {
	rt := e.app.Runtime()
	hop, _, ok := rt.Lookup(addr)
	e.calls++
	if e.calls%4 == 0 {
		res, err := rt.Dispatch(addr)
		if err != nil {
			return Answer{}, fmt.Errorf("dispatch %s: %w", addr, err)
		}
		if res.Found != ok || (ok && res.Hop != hop) {
			return Answer{}, fmt.Errorf("replica dispatch diverged from snapshot at %s: worker %d said hop %d found %v, snapshot hop %d found %v",
				addr, res.Worker, res.Hop, res.Found, hop, ok)
		}
	}
	return Answer{Hop: hop, Found: ok}, nil
}

func (e *feedEngine) LookupBatch(addrs []ip.Addr) ([]Answer, error) {
	results, err := e.app.Runtime().DispatchBatch(addrs, nil)
	if err != nil {
		return nil, fmt.Errorf("dispatch batch: %w", err)
	}
	out := make([]Answer, len(results))
	for i, r := range results {
		out[i] = Answer{Hop: r.Hop, Found: r.Found}
	}
	return out, nil
}

func (e *feedEngine) FailWorker(id int) error {
	return ignoreStateRefusal(e.app.Runtime().FailWorker(id))
}

func (e *feedEngine) RecoverWorker(id int) error {
	return ignoreStateRefusal(e.app.Runtime().RecoverWorker(id))
}

func (e *feedEngine) Flush() error { return e.app.Runtime().FlushCaches() }

// Check asserts replication-specific invariants on top of the table
// dump the driver already cross-compares: the stream never detected a
// hash divergence, the follower is exactly at the collector's head,
// and the replica's published table is structurally sound.
func (e *feedEngine) Check(*Model) error {
	s := e.fl.Stats()
	if s.HashMismatches != 0 {
		return fmt.Errorf("replica hash mismatches: %d", s.HashMismatches)
	}
	if head := e.coll.Head(); s.LastApplied != head {
		return fmt.Errorf("replica at batch %d, collector head %d", s.LastApplied, head)
	}
	return onrtc.VerifyDisjoint(e.app.Runtime().Snapshot().Routes())
}

func (e *feedEngine) TableRoutes() []ip.Route { return e.app.Runtime().Snapshot().Routes() }
