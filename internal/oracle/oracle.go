// Package oracle is the cross-engine differential testing layer: a
// brute-force, obviously-correct LPM reference model plus a seeded
// lifecycle driver that generates randomized command sequences —
// announce, withdraw, single and batch lookup, worker fail/recover,
// cache flush, snapshot swap, quiesce — and replays each sequence
// simultaneously against every lookup implementation in the repo:
//
//   - the raw onrtc.Table under TTF incremental update,
//   - the update.CLUEPipeline (trie → TCAM → DRed) and the CLPL
//     baseline pipeline,
//   - the engine package's SLPL and CLPL parallel systems (rebuilt from
//     the live FIB, validating the partition constructions themselves),
//   - the full serve.Runtime, including the dispatch/divert/DRed-analog
//     paths and worker failover.
//
// After every step the driver asserts lookup equivalence with the model
// over a deterministic adversarial probe set (the updated prefix's
// boundaries ± 1 bit); at checkpoints it sweeps the accumulated probe
// set over every engine and checks the structural invariants: ONRTC
// pairwise disjointness, TCAM layout/table coherence, DRed
// no-stale-entry-after-withdraw, and exact table agreement between the
// independent CLUE implementations.
//
// On failure the driver delta-debugs the command sequence to a minimal
// reproducer, writes it as a replayable script (see ParseScript) and
// prints the go test invocation that replays it. A planted-mutant
// self-test (Config.Mutant) proves the harness detects and shrinks.
package oracle

import (
	"fmt"
	"sort"

	"clue/internal/ip"
)

// Mutant selects a deliberate defect planted into the reference model,
// used by the self-tests to prove the harness detects real divergence
// and shrinks it to a small reproducer. Production runs use MutantNone.
type Mutant int

const (
	// MutantNone is the correct model.
	MutantNone Mutant = iota
	// MutantDropWithdraw makes the model ignore every withdrawal — the
	// classic stale-route bug class the TTF3 invariant exists for.
	MutantDropWithdraw
	// MutantShortestMatch makes the model prefer the shortest matching
	// prefix, inverting LPM wherever routes nest.
	MutantShortestMatch
)

// String names the mutant for logs.
func (m Mutant) String() string {
	switch m {
	case MutantNone:
		return "none"
	case MutantDropWithdraw:
		return "drop-withdraw"
	case MutantShortestMatch:
		return "shortest-match"
	}
	return fmt.Sprintf("Mutant(%d)", int(m))
}

// Model is the brute-force LPM reference: a flat prefix→hop map with
// linear longest-match lookup. It is deliberately free of every
// optimization the engines under test use — no trie, no compression, no
// partitioning, no caching — so its answers are correct by inspection.
type Model struct {
	routes map[ip.Prefix]ip.NextHop
	mutant Mutant
}

// NewModel builds the model over the base FIB.
func NewModel(base []ip.Route, mutant Mutant) *Model {
	m := &Model{routes: make(map[ip.Prefix]ip.NextHop, len(base)), mutant: mutant}
	for _, r := range base {
		m.routes[r.Prefix] = r.NextHop
	}
	return m
}

// Announce inserts or overwrites a route.
func (m *Model) Announce(p ip.Prefix, hop ip.NextHop) { m.routes[p] = hop }

// Withdraw removes a route; withdrawing an absent prefix is a no-op.
func (m *Model) Withdraw(p ip.Prefix) {
	if m.mutant == MutantDropWithdraw {
		return
	}
	delete(m.routes, p)
}

// Lookup returns the longest-prefix-match next hop for addr by scanning
// every route — O(n), obviously correct.
func (m *Model) Lookup(addr ip.Addr) (ip.NextHop, bool) {
	var (
		best  ip.Prefix
		hop   ip.NextHop
		found bool
	)
	for p, h := range m.routes {
		if !p.Contains(addr) {
			continue
		}
		better := p.Len >= best.Len
		if m.mutant == MutantShortestMatch {
			better = p.Len <= best.Len
		}
		if !found || better {
			best, hop, found = p, h, true
		}
	}
	return hop, found
}

// Routes returns the announced routes sorted by prefix — the canonical
// form for rebuilding a FIB trie from the model at checkpoints.
func (m *Model) Routes() []ip.Route {
	out := make([]ip.Route, 0, len(m.routes))
	for p, h := range m.routes {
		out = append(out, ip.Route{Prefix: p, NextHop: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// Len returns the live route count.
func (m *Model) Len() int { return len(m.routes) }

// Has reports whether the exact prefix is announced.
func (m *Model) Has(p ip.Prefix) bool {
	_, ok := m.routes[p]
	return ok
}
