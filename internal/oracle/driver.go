package oracle

import (
	"fmt"
	"math/rand"

	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/trie"
)

// Config parameterizes one oracle run. The zero value plus a seed is a
// sensible default run; the CI leg raises Ops.
type Config struct {
	// Seed drives both the base FIB and the command stream. Replaying
	// the same seed and command sequence is fully deterministic.
	Seed int64
	// Ops is the number of commands Generate emits (default 5000).
	Ops int
	// BaseRoutes sizes the generated base FIB (default 96). Small
	// tables keep the brute-force model fast while still exercising
	// every compression case.
	BaseRoutes int
	// Workers is the serve runtime's partition worker count and the
	// range of fail/recover targets (default 3).
	Workers int
	// CheckEvery is the full-checkpoint cadence in commands (default
	// 2000). Quiesce commands checkpoint regardless.
	CheckEvery int
	// MaxProbes bounds the accumulated adversarial probe set swept at
	// checkpoints (default 2048).
	MaxProbes int
	// Engines selects implementations by name (default AllEngines()).
	Engines []string
	// Mutant plants a deliberate model defect for harness self-tests.
	Mutant Mutant
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Ops == 0 {
		c.Ops = 5000
	}
	if c.BaseRoutes == 0 {
		c.BaseRoutes = 96
	}
	if c.Workers == 0 {
		c.Workers = 3
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 2000
	}
	if c.MaxProbes == 0 {
		c.MaxProbes = 2048
	}
	if len(c.Engines) == 0 {
		c.Engines = AllEngines()
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Failure is one detected divergence: which engine, at which command
// (Step indexes the replayed sequence; -1 means setup), and what went
// wrong. It satisfies error.
type Failure struct {
	Engine string
	Step   int
	Detail string
	Seed   int64
}

func (f *Failure) Error() string {
	return fmt.Sprintf("oracle: seed %d step %d engine %s: %s", f.Seed, f.Step, f.Engine, f.Detail)
}

// Run generates a command sequence from cfg and replays it, returning
// the sequence (for shrinking) and the first failure, if any.
func Run(cfg Config) ([]Command, *Failure) {
	cmds := Generate(cfg)
	return cmds, Replay(cfg, cmds)
}

// Generate emits cfg.Ops randomized lifecycle commands. The mix favors
// mutations and lookups; prefixes are mutated from the live route set
// (parent, sibling, child, adjacent block, exact) so updates land on and
// around existing compression structure rather than in empty space.
func Generate(cfg Config) []Command {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	live := newLiveSet()
	if fib, err := fibgen.Generate(fibgen.Config{Seed: cfg.Seed, Routes: cfg.BaseRoutes}); err == nil {
		for _, r := range fib.Routes() {
			live.add(r.Prefix)
		}
	}
	cmds := make([]Command, 0, cfg.Ops)
	for len(cmds) < cfg.Ops {
		r := rng.Float64()
		switch {
		case r < 0.48:
			// Mutation band. The raw mix (30 % announce, 18 % withdraw)
			// drifts upward, so steer toward withdrawals above a route
			// ceiling and announcements below a floor: the brute-force
			// model is O(routes) per lookup and the table must stay
			// small enough to sweep after every step.
			announce := r < 0.30
			if live.len() >= maxLiveRoutes {
				announce = false
			} else if live.len() <= minLiveRoutes {
				announce = true
			}
			if announce {
				p := mutatePrefix(rng, live)
				live.add(p)
				cmds = append(cmds, Command{Kind: CmdAnnounce, Prefix: p, Hop: ip.NextHop(1 + rng.Intn(8))})
				break
			}
			var p ip.Prefix
			if live.len() > 0 && rng.Intn(10) != 0 {
				p = live.pick(rng)
				live.remove(p)
			} else {
				// Withdrawing an absent prefix must be a no-op
				// everywhere.
				p = mutatePrefix(rng, live)
				live.remove(p)
			}
			cmds = append(cmds, Command{Kind: CmdWithdraw, Prefix: p})
		case r < 0.80:
			cmds = append(cmds, Command{Kind: CmdLookup, Addrs: []ip.Addr{randAddr(rng, live)}})
		case r < 0.87:
			n := 2 + rng.Intn(15)
			addrs := make([]ip.Addr, n)
			for i := range addrs {
				addrs[i] = randAddr(rng, live)
			}
			cmds = append(cmds, Command{Kind: CmdBatch, Addrs: addrs})
		case r < 0.905:
			cmds = append(cmds, Command{Kind: CmdFail, Worker: rng.Intn(cfg.Workers)})
		case r < 0.94:
			cmds = append(cmds, Command{Kind: CmdRecover, Worker: rng.Intn(cfg.Workers)})
		case r < 0.97:
			cmds = append(cmds, Command{Kind: CmdFlush})
		case r < 0.99:
			cmds = append(cmds, Command{Kind: CmdSwap})
		case r < 0.997:
			cmds = append(cmds, Command{Kind: CmdRebalance})
		default:
			cmds = append(cmds, Command{Kind: CmdQuiesce})
		}
	}
	return cmds
}

// minLiveRoutes / maxLiveRoutes band the generated table size (see the
// mutation-band comment in Generate).
const (
	minLiveRoutes = 48
	maxLiveRoutes = 224
)

// liveSet tracks announced prefixes with O(1) add/remove/pick, keeping
// generation linear in Ops.
type liveSet struct {
	idx   map[ip.Prefix]int
	elems []ip.Prefix
}

func newLiveSet() *liveSet { return &liveSet{idx: make(map[ip.Prefix]int)} }

func (s *liveSet) len() int { return len(s.elems) }

func (s *liveSet) add(p ip.Prefix) {
	if _, ok := s.idx[p]; ok {
		return
	}
	s.idx[p] = len(s.elems)
	s.elems = append(s.elems, p)
}

func (s *liveSet) remove(p ip.Prefix) {
	i, ok := s.idx[p]
	if !ok {
		return
	}
	last := len(s.elems) - 1
	s.elems[i] = s.elems[last]
	s.idx[s.elems[i]] = i
	s.elems = s.elems[:last]
	delete(s.idx, p)
}

func (s *liveSet) pick(rng *rand.Rand) ip.Prefix {
	return s.elems[rng.Intn(len(s.elems))]
}

// mutatePrefix derives an update target from the live set: mostly a
// structural neighbor of an existing route (the cases that trigger
// ONRTC splits and merges), occasionally a fresh random prefix.
func mutatePrefix(rng *rand.Rand, live *liveSet) ip.Prefix {
	if live.len() == 0 || rng.Intn(8) == 0 {
		length := 4 + rng.Intn(25) // /4 .. /28
		addr := ip.Addr(rng.Uint32())
		p, err := ip.NewPrefix(addr&maskFor(length), length)
		if err != nil {
			return ip.MustParsePrefix("10.0.0.0/8")
		}
		return p
	}
	p := live.pick(rng)
	switch rng.Intn(5) {
	case 0:
		if int(p.Len) > 1 {
			p = p.Parent()
		}
	case 1:
		if p.Len > 0 {
			p = p.Sibling()
		}
	case 2:
		if int(p.Len) < 30 {
			p = p.Child(uint32(rng.Intn(2)))
		}
	case 3:
		// The block immediately after p at the same length; wraps at
		// the top of the address space, which is harmless for a probe
		// target.
		if p.Len > 0 {
			size := ip.Addr(1) << (32 - int(p.Len))
			if q, err := ip.NewPrefix(p.Bits+size, int(p.Len)); err == nil {
				p = q
			}
		}
	case 4:
		// Exact: re-announce with a new hop, or withdraw it.
	}
	return p
}

// maskFor is the network mask for a prefix length (local copy; ip keeps
// its version unexported).
func maskFor(length int) ip.Addr {
	if length == 0 {
		return 0
	}
	return ^ip.Addr(0) << (32 - length)
}

// randAddr picks a probe address: usually a boundary of a live prefix's
// block (or one address outside it), sometimes uniform random.
func randAddr(rng *rand.Rand, live *liveSet) ip.Addr {
	if live.len() > 0 && rng.Intn(4) != 0 {
		p := live.pick(rng)
		switch rng.Intn(4) {
		case 0:
			return p.First()
		case 1:
			return p.Last()
		case 2:
			return p.First() - 1
		default:
			return p.Last() + 1
		}
	}
	return ip.Addr(rng.Uint32())
}

// boundaryProbes returns the adversarial probe addresses for an updated
// prefix: its block boundaries and the addresses one off either side
// (wrapping at the address-space ends).
func boundaryProbes(p ip.Prefix) [4]ip.Addr {
	return [4]ip.Addr{p.First(), p.Last(), p.First() - 1, p.Last() + 1}
}

// prober accumulates the bounded checkpoint probe set.
type prober struct {
	max   int
	seen  map[ip.Addr]bool
	addrs []ip.Addr
}

func newProber(max int) *prober {
	return &prober{max: max, seen: make(map[ip.Addr]bool, max)}
}

func (pb *prober) add(a ip.Addr) {
	if len(pb.addrs) >= pb.max || pb.seen[a] {
		return
	}
	pb.seen[a] = true
	pb.addrs = append(pb.addrs, a)
}

func (pb *prober) addPrefix(p ip.Prefix) {
	for _, a := range boundaryProbes(p) {
		pb.add(a)
	}
}

// Replay runs cmds against the model and every configured engine,
// checking after each step, and returns the first failure (nil on a
// clean run). Replay is deterministic: same cfg and cmds, same outcome.
func Replay(cfg Config, cmds []Command) *Failure {
	cfg = cfg.withDefaults()
	fail := func(step int, engine, format string, args ...any) *Failure {
		return &Failure{Engine: engine, Step: step, Detail: fmt.Sprintf(format, args...), Seed: cfg.Seed}
	}

	fib, err := fibgen.Generate(fibgen.Config{Seed: cfg.Seed, Routes: cfg.BaseRoutes})
	if err != nil {
		return fail(-1, "driver", "generating base FIB: %v", err)
	}
	base := fib.Routes()
	model := NewModel(base, cfg.Mutant)
	engines, err := buildEngines(cfg, base)
	if err != nil {
		return fail(-1, "driver", "%v", err)
	}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()

	pb := newProber(cfg.MaxProbes)
	for _, r := range base {
		pb.addPrefix(r.Prefix)
	}

	for step, cmd := range cmds {
		if f := applyStep(cfg, model, engines, pb, step, cmd); f != nil {
			return f
		}
		if (step+1)%cfg.CheckEvery == 0 {
			if f := checkpoint(cfg, model, engines, pb, step); f != nil {
				return f
			}
			cfg.logf("oracle: step %d/%d ok (%d routes, %d probes)", step+1, len(cmds), model.Len(), len(pb.addrs))
		}
	}
	// The final checkpoint makes shrinking sound: a truncated sequence
	// whose divergence was pending still fails on replay.
	return checkpoint(cfg, model, engines, pb, len(cmds)-1)
}

// applyStep executes one command on the model and every engine, with
// the per-step assertions.
func applyStep(cfg Config, model *Model, engines []Engine, pb *prober, step int, cmd Command) *Failure {
	fail := func(engine, format string, args ...any) *Failure {
		return &Failure{Engine: engine, Step: step, Detail: fmt.Sprintf(format, args...), Seed: cfg.Seed}
	}
	switch cmd.Kind {
	case CmdAnnounce, CmdWithdraw:
		if cmd.Kind == CmdAnnounce {
			model.Announce(cmd.Prefix, cmd.Hop)
		} else {
			model.Withdraw(cmd.Prefix)
		}
		for _, e := range engines {
			var err error
			if cmd.Kind == CmdAnnounce {
				err = e.Announce(cmd.Prefix, cmd.Hop)
			} else {
				err = e.Withdraw(cmd.Prefix)
			}
			if err != nil {
				return fail(e.Name(), "applying %s: %v", cmd, err)
			}
		}
		pb.addPrefix(cmd.Prefix)
		// The freshest divergence surface is right at the updated
		// prefix's boundaries: probe them immediately on every cheap
		// engine.
		for _, a := range boundaryProbes(cmd.Prefix) {
			for _, e := range engines {
				if !e.Stepwise() {
					continue
				}
				if f := compareAt(cfg, model, e, a, step); f != nil {
					return f
				}
			}
		}
	case CmdLookup:
		a := cmd.Addrs[0]
		pb.add(a)
		for _, e := range engines {
			if f := compareAt(cfg, model, e, a, step); f != nil {
				return f
			}
		}
	case CmdBatch:
		for _, a := range cmd.Addrs {
			pb.add(a)
		}
		for _, e := range engines {
			bl, ok := e.(batchLooker)
			if !ok {
				for _, a := range cmd.Addrs {
					if f := compareAt(cfg, model, e, a, step); f != nil {
						return f
					}
				}
				continue
			}
			answers, err := bl.LookupBatch(cmd.Addrs)
			if err != nil {
				return fail(e.Name(), "%v", err)
			}
			if len(answers) != len(cmd.Addrs) {
				return fail(e.Name(), "batch returned %d answers for %d addrs", len(answers), len(cmd.Addrs))
			}
			for i, a := range cmd.Addrs {
				if f := compareAnswer(cfg, model, e.Name(), a, answers[i], step); f != nil {
					return f
				}
			}
		}
	case CmdFail, CmdRecover:
		for _, e := range engines {
			fi, ok := e.(faultInjector)
			if !ok {
				continue
			}
			var err error
			if cmd.Kind == CmdFail {
				err = fi.FailWorker(cmd.Worker)
			} else {
				err = fi.RecoverWorker(cmd.Worker)
			}
			if err != nil {
				return fail(e.Name(), "applying %s: %v", cmd, err)
			}
		}
	case CmdFlush:
		for _, e := range engines {
			if fl, ok := e.(flusher); ok {
				if err := fl.Flush(); err != nil {
					return fail(e.Name(), "flush: %v", err)
				}
			}
		}
	case CmdSwap:
		for _, e := range engines {
			if sw, ok := e.(swapper); ok {
				if err := sw.Swap(); err != nil {
					return fail(e.Name(), "swap: %v", err)
				}
			}
		}
	case CmdRebalance:
		for _, e := range engines {
			if rb, ok := e.(rebalancer); ok {
				if err := rb.Rebalance(); err != nil {
					return fail(e.Name(), "rebalance: %v", err)
				}
			}
		}
	case CmdQuiesce:
		return checkpoint(cfg, model, engines, pb, step)
	default:
		return fail("driver", "unknown command kind %d", cmd.Kind)
	}
	return nil
}

// checkpoint runs the full assertion suite: per-engine structural
// invariants (which also rebuilds the static systems), a sweep of the
// accumulated probe set over every engine, and an entry-for-entry
// comparison of each compressed-table dump against a fresh compression
// of the model's FIB.
func checkpoint(cfg Config, model *Model, engines []Engine, pb *prober, step int) *Failure {
	fail := func(engine, format string, args ...any) *Failure {
		return &Failure{Engine: engine, Step: step, Detail: fmt.Sprintf(format, args...), Seed: cfg.Seed}
	}
	for _, e := range engines {
		if err := e.Check(model); err != nil {
			return fail(e.Name(), "invariant check: %v", err)
		}
	}
	for _, a := range pb.addrs {
		// One model scan per address, not per engine: the sweep is the
		// hot loop of a checkpoint.
		hop, found := model.Lookup(a)
		for _, e := range engines {
			ans, err := e.Lookup(a)
			if err != nil {
				return fail(e.Name(), "%v", err)
			}
			if f := checkAnswer(cfg, e.Name(), a, ans, hop, found, step); f != nil {
				return f
			}
		}
	}
	var canonical []ip.Route
	for _, e := range engines {
		td, ok := e.(tableDumper)
		if !ok {
			continue
		}
		if canonical == nil {
			// ONRTC is deterministic, so every independently maintained
			// compressed table must equal the batch compression of the
			// model's route set.
			canonical = onrtc.Compress(trie.FromRoutes(model.Routes())).Routes()
		}
		if err := routesEqual(td.TableRoutes(), canonical); err != nil {
			return fail(e.Name(), "compressed table diverged from model compression: %v", err)
		}
	}
	return nil
}

// compareAt probes one engine at one address against the model.
func compareAt(cfg Config, model *Model, e Engine, a ip.Addr, step int) *Failure {
	ans, err := e.Lookup(a)
	if err != nil {
		return &Failure{Engine: e.Name(), Step: step, Detail: err.Error(), Seed: cfg.Seed}
	}
	return compareAnswer(cfg, model, e.Name(), a, ans, step)
}

// compareAnswer checks an engine answer against the model's.
func compareAnswer(cfg Config, model *Model, engine string, a ip.Addr, ans Answer, step int) *Failure {
	if ans.Skip {
		return nil
	}
	hop, found := model.Lookup(a)
	return checkAnswer(cfg, engine, a, ans, hop, found, step)
}

// checkAnswer compares an engine answer against a precomputed model
// answer.
func checkAnswer(cfg Config, engine string, a ip.Addr, ans Answer, hop ip.NextHop, found bool, step int) *Failure {
	if ans.Skip {
		return nil
	}
	if ans.Found != found || (found && ans.Hop != hop) {
		return &Failure{
			Engine: engine,
			Step:   step,
			Detail: fmt.Sprintf("lookup %s: engine hop %d found %v, model hop %d found %v", a, ans.Hop, ans.Found, hop, found),
			Seed:   cfg.Seed,
		}
	}
	return nil
}
