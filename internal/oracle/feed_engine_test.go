package oracle

import (
	"testing"
)

// TestFeedEngineDifferential: the replicated deployment (collector →
// wire → follower runtime) must agree with the model and every other
// engine across churn, worker faults and cache flushes — replication
// must be invisible to correctness.
func TestFeedEngineDifferential(t *testing.T) {
	ops := 800
	if testing.Short() {
		ops = 200
	}
	cmds, f := Run(Config{Seed: 41, Ops: ops, Engines: []string{"table", "serve", "feed"}})
	if f != nil {
		t.Fatalf("feed engine diverged: %v", f)
	}
	if len(cmds) == 0 {
		t.Fatal("no commands generated")
	}
}

// TestFeedEngineCatchesMutant: with a defective model, the replicated
// engine must be reported as divergent — proving the feed replica is a
// real participant in the comparison, not a rubber stamp.
func TestFeedEngineCatchesMutant(t *testing.T) {
	_, f := Run(Config{Seed: 43, Ops: 400, Engines: []string{"feed"}, Mutant: MutantDropWithdraw})
	if f == nil {
		t.Fatal("mutant run passed: the feed replica is not actually being compared")
	}
	if f.Engine != "feed" {
		t.Logf("failure attributed to %q — acceptable as long as the run failed: %v", f.Engine, f)
	}
}
