package oracle

import (
	"bytes"
	"strings"
	"testing"

	"clue/internal/ip"
)

func TestModelLPM(t *testing.T) {
	base := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("10.1.0.0/16"), NextHop: 2},
		{Prefix: ip.MustParsePrefix("10.1.2.0/24"), NextHop: 3},
	}
	m := NewModel(base, MutantNone)
	cases := []struct {
		addr  string
		hop   ip.NextHop
		found bool
	}{
		{"10.1.2.3", 3, true},
		{"10.1.3.0", 2, true},
		{"10.2.0.0", 1, true},
		{"11.0.0.0", 0, false},
	}
	for _, c := range cases {
		hop, found := m.Lookup(ip.MustParseAddr(c.addr))
		if found != c.found || (found && hop != c.hop) {
			t.Errorf("Lookup(%s) = %d, %v; want %d, %v", c.addr, hop, found, c.hop, c.found)
		}
	}
	if m.Len() != 3 {
		t.Errorf("Len() = %d, want 3", m.Len())
	}

	m.Withdraw(ip.MustParsePrefix("10.1.2.0/24"))
	if hop, _ := m.Lookup(ip.MustParseAddr("10.1.2.3")); hop != 2 {
		t.Errorf("after withdraw, Lookup = %d, want 2", hop)
	}
	m.Announce(ip.MustParsePrefix("10.1.0.0/16"), 7)
	if hop, _ := m.Lookup(ip.MustParseAddr("10.1.2.3")); hop != 7 {
		t.Errorf("after re-announce, Lookup = %d, want 7", hop)
	}
	if m.Has(ip.MustParsePrefix("10.1.2.0/24")) {
		t.Error("Has reports a withdrawn prefix")
	}
}

func TestModelRoutesSorted(t *testing.T) {
	base := []ip.Route{
		{Prefix: ip.MustParsePrefix("192.168.0.0/16"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 2},
		{Prefix: ip.MustParsePrefix("10.0.0.0/16"), NextHop: 3},
	}
	routes := NewModel(base, MutantNone).Routes()
	for i := 1; i < len(routes); i++ {
		if routes[i-1].Prefix.Compare(routes[i].Prefix) >= 0 {
			t.Fatalf("Routes() out of order: %v before %v", routes[i-1], routes[i])
		}
	}
}

func TestModelMutants(t *testing.T) {
	base := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("10.1.0.0/16"), NextHop: 2},
	}

	drop := NewModel(base, MutantDropWithdraw)
	drop.Withdraw(ip.MustParsePrefix("10.1.0.0/16"))
	if hop, _ := drop.Lookup(ip.MustParseAddr("10.1.0.1")); hop != 2 {
		t.Errorf("drop-withdraw mutant forgot the route: hop %d", hop)
	}

	short := NewModel(base, MutantShortestMatch)
	if hop, _ := short.Lookup(ip.MustParseAddr("10.1.0.1")); hop != 1 {
		t.Errorf("shortest-match mutant answered %d, want 1", hop)
	}

	for _, m := range []Mutant{MutantNone, MutantDropWithdraw, MutantShortestMatch, Mutant(99)} {
		if m.String() == "" {
			t.Errorf("empty name for mutant %d", int(m))
		}
	}
}

func TestScriptRoundTrip(t *testing.T) {
	cfg := Config{Seed: 7, Ops: 200}
	cmds := Generate(cfg)
	var buf bytes.Buffer
	if err := FormatScript(&buf, cfg.withDefaults(), cmds); err != nil {
		t.Fatalf("FormatScript: %v", err)
	}
	gotCfg, gotCmds, err := ParseScript(&buf)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	want := cfg.withDefaults()
	if gotCfg.Seed != want.Seed || gotCfg.BaseRoutes != want.BaseRoutes || gotCfg.Workers != want.Workers {
		t.Fatalf("directive round-trip: got %+v", gotCfg)
	}
	if len(gotCmds) != len(cmds) {
		t.Fatalf("round-trip produced %d commands, want %d", len(gotCmds), len(cmds))
	}
	for i := range cmds {
		if gotCmds[i].String() != cmds[i].String() {
			t.Fatalf("command %d round-trip: got %q, want %q", i, gotCmds[i], cmds[i])
		}
	}
}

func TestScriptCoversEveryKind(t *testing.T) {
	cmds := Generate(Config{Seed: 3, Ops: 3000})
	seen := map[Kind]bool{}
	for _, c := range cmds {
		seen[c.Kind] = true
	}
	for k, name := range kindNames {
		if !seen[k] {
			t.Errorf("generator never emitted %s in 3000 ops", name)
		}
	}
}

func TestParseScriptErrors(t *testing.T) {
	bad := []string{
		"bogus 1.2.3.4",
		"announce 10.0.0.0/8",
		"announce 10.0.0.0/8 0",
		"announce 10.0.0.0/33 1",
		"withdraw",
		"lookup 1.2.3.4 5.6.7.8",
		"fail x",
		"recover -1",
		"#! seed",
		"#! bogus 4",
	}
	for _, line := range bad {
		if _, _, err := ParseScript(strings.NewReader(line)); err == nil {
			t.Errorf("ParseScript accepted %q", line)
		}
	}

	// Comments and blank lines are skipped.
	_, cmds, err := ParseScript(strings.NewReader("# comment\n\nflush\n"))
	if err != nil || len(cmds) != 1 || cmds[0].Kind != CmdFlush {
		t.Fatalf("comment handling: cmds %v, err %v", cmds, err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 11, Ops: 500})
	b := Generate(Config{Seed: 11, Ops: 500})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("command %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
