package oracle

import (
	"fmt"
	"io"
)

// Shrink delta-debugs a failing command sequence to a small reproducer:
// first truncating everything after the failing step, then running ddmin
// (remove chunks at progressively finer granularity, keeping any removal
// that still fails). The predicate is "Replay reports any failure", not
// the identical failure — a shrunk sequence exposing a different symptom
// of the same run is still a reproducer. budget caps the number of
// replays (<=0 means a default of 400); the returned failure describes
// the shrunk sequence.
func Shrink(cfg Config, cmds []Command, f *Failure, budget int) ([]Command, *Failure) {
	if f == nil {
		return cmds, nil
	}
	if budget <= 0 {
		budget = 400
	}
	replay := func(cand []Command) *Failure {
		if budget <= 0 {
			return nil
		}
		budget--
		return Replay(cfg, cand)
	}
	best, bestF := cmds, f

	if f.Step >= 0 && f.Step+1 < len(best) {
		cand := best[:f.Step+1]
		if nf := replay(cand); nf != nil {
			best, bestF = cand, nf
		}
	}

	n := 2
	for len(best) >= 2 && budget > 0 {
		chunk := (len(best) + n - 1) / n
		reduced := false
		for start := 0; start < len(best) && budget > 0; start += chunk {
			end := min(start+chunk, len(best))
			cand := make([]Command, 0, len(best)-(end-start))
			cand = append(cand, best[:start]...)
			cand = append(cand, best[end:]...)
			if nf := replay(cand); nf != nil {
				best, bestF = cand, nf
				n = max(2, n-1)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(best) {
				break
			}
			n = min(len(best), n*2)
		}
	}
	return best, bestF
}

// WriteRepro writes a shrunk failure as a replayable script with a
// header explaining what failed and how to replay it. Scripts dropped
// into internal/oracle/testdata are picked up by TestReplayTestdata.
func WriteRepro(w io.Writer, cfg Config, cmds []Command, f *Failure) error {
	cfg = cfg.withDefaults()
	if _, err := fmt.Fprintf(w, "# oracle reproducer: %d commands\n", len(cmds)); err != nil {
		return err
	}
	if f != nil {
		if _, err := fmt.Fprintf(w, "# failure: engine %s at step %d: %s\n", f.Engine, f.Step, f.Detail); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# replay: go test ./internal/oracle -run TestReplayTestdata\n"); err != nil {
		return err
	}
	return FormatScript(w, cfg, cmds)
}
