package oracle

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"clue/internal/ip"
)

// Kind classifies a lifecycle command.
type Kind uint8

const (
	// CmdAnnounce announces Prefix with Hop.
	CmdAnnounce Kind = iota + 1
	// CmdWithdraw withdraws Prefix.
	CmdWithdraw
	// CmdLookup resolves Addrs[0] on every engine.
	CmdLookup
	// CmdBatch resolves Addrs as one batch (engines with a batch path
	// serve it in one call; the rest loop).
	CmdBatch
	// CmdFail takes serve worker Worker out of service.
	CmdFail
	// CmdRecover returns serve worker Worker to service.
	CmdRecover
	// CmdFlush flushes every redundancy cache (serve worker caches via a
	// control publication, pipeline DRed groups directly).
	CmdFlush
	// CmdSwap forces a snapshot swap on engines that publish snapshots.
	CmdSwap
	// CmdQuiesce runs a full checkpoint: the whole probe set against
	// every engine plus all structural invariants.
	CmdQuiesce
	// CmdRebalance forces one load-aware repartitioning pass on engines
	// with a rebalancer (the serve runtime): a live cut move interleaved
	// with the rest of the lifecycle, which later lookups and checkpoints
	// must not be able to observe in any answer.
	CmdRebalance
)

// kindNames maps command kinds to their script keywords.
var kindNames = map[Kind]string{
	CmdAnnounce: "announce",
	CmdWithdraw: "withdraw",
	CmdLookup:   "lookup",
	CmdBatch:    "batch",
	CmdFail:     "fail",
	CmdRecover:  "recover",
	CmdFlush:     "flush",
	CmdSwap:      "swap",
	CmdQuiesce:   "quiesce",
	CmdRebalance: "rebalance",
}

// Command is one step of a lifecycle sequence. Unused fields are zero.
type Command struct {
	Kind   Kind
	Prefix ip.Prefix  // Announce, Withdraw
	Hop    ip.NextHop // Announce
	Addrs  []ip.Addr  // Lookup (one), Batch (several)
	Worker int        // Fail, Recover
}

// String renders the command in script form, one line without the
// trailing newline — the exact syntax ParseScript reads back.
func (c Command) String() string {
	switch c.Kind {
	case CmdAnnounce:
		return fmt.Sprintf("announce %s %d", c.Prefix, c.Hop)
	case CmdWithdraw:
		return fmt.Sprintf("withdraw %s", c.Prefix)
	case CmdLookup:
		return fmt.Sprintf("lookup %s", c.Addrs[0])
	case CmdBatch:
		parts := make([]string, len(c.Addrs))
		for i, a := range c.Addrs {
			parts[i] = a.String()
		}
		return "batch " + strings.Join(parts, " ")
	case CmdFail:
		return fmt.Sprintf("fail %d", c.Worker)
	case CmdRecover:
		return fmt.Sprintf("recover %d", c.Worker)
	case CmdFlush, CmdSwap, CmdQuiesce, CmdRebalance:
		return kindNames[c.Kind]
	}
	return fmt.Sprintf("Command(%d)", c.Kind)
}

// FormatScript renders a command sequence as a replayable script: one
// directive line carrying the replay configuration, then one command
// per line. Lines starting with '#' are comments.
func FormatScript(w io.Writer, cfg Config, cmds []Command) error {
	if _, err := fmt.Fprintf(w, "#! seed %d routes %d workers %d\n", cfg.Seed, cfg.BaseRoutes, cfg.Workers); err != nil {
		return err
	}
	for _, c := range cmds {
		if _, err := fmt.Fprintln(w, c.String()); err != nil {
			return err
		}
	}
	return nil
}

// ParseScript reads a script produced by FormatScript (or written by
// hand). The returned Config carries the directive line's replay
// parameters over defaults; plain '#' comments and blank lines are
// skipped.
func ParseScript(r io.Reader) (Config, []Command, error) {
	var (
		cfg  Config
		cmds []Command
	)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(text, "#!") {
			if err := parseDirective(strings.TrimPrefix(text, "#!"), &cfg); err != nil {
				return cfg, nil, fmt.Errorf("oracle: line %d: %w", line, err)
			}
			continue
		}
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		cmd, err := parseCommand(text)
		if err != nil {
			return cfg, nil, fmt.Errorf("oracle: line %d: %w", line, err)
		}
		cmds = append(cmds, cmd)
	}
	if err := sc.Err(); err != nil {
		return cfg, nil, err
	}
	return cfg, cmds, nil
}

// parseDirective reads "seed N routes N workers N" key-value pairs.
func parseDirective(s string, cfg *Config) error {
	fields := strings.Fields(s)
	if len(fields)%2 != 0 {
		return fmt.Errorf("directive %q: want key value pairs", s)
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i+1], 10, 64)
		if err != nil {
			return fmt.Errorf("directive %q: %w", s, err)
		}
		switch fields[i] {
		case "seed":
			cfg.Seed = v
		case "routes":
			cfg.BaseRoutes = int(v)
		case "workers":
			cfg.Workers = int(v)
		default:
			return fmt.Errorf("directive %q: unknown key %q", s, fields[i])
		}
	}
	return nil
}

// parseCommand reads one script line back into a Command.
func parseCommand(text string) (Command, error) {
	fields := strings.Fields(text)
	word := fields[0]
	args := fields[1:]
	argErr := func(want string) (Command, error) {
		return Command{}, fmt.Errorf("%s: want %q, got %q", word, want, text)
	}
	switch word {
	case "announce":
		if len(args) != 2 {
			return argErr("announce prefix hop")
		}
		p, err := ip.ParsePrefix(args[0])
		if err != nil {
			return Command{}, err
		}
		hop, err := strconv.ParseUint(args[1], 10, 32)
		if err != nil || hop == 0 {
			return Command{}, fmt.Errorf("announce: bad hop %q", args[1])
		}
		return Command{Kind: CmdAnnounce, Prefix: p, Hop: ip.NextHop(hop)}, nil
	case "withdraw":
		if len(args) != 1 {
			return argErr("withdraw prefix")
		}
		p, err := ip.ParsePrefix(args[0])
		if err != nil {
			return Command{}, err
		}
		return Command{Kind: CmdWithdraw, Prefix: p}, nil
	case "lookup", "batch":
		if len(args) < 1 {
			return argErr(word + " addr...")
		}
		if word == "lookup" && len(args) != 1 {
			return argErr("lookup addr")
		}
		addrs := make([]ip.Addr, len(args))
		for i, s := range args {
			a, err := ip.ParseAddr(s)
			if err != nil {
				return Command{}, err
			}
			addrs[i] = a
		}
		kind := CmdLookup
		if word == "batch" {
			kind = CmdBatch
		}
		return Command{Kind: kind, Addrs: addrs}, nil
	case "fail", "recover":
		if len(args) != 1 {
			return argErr(word + " worker")
		}
		w, err := strconv.Atoi(args[0])
		if err != nil || w < 0 {
			return Command{}, fmt.Errorf("%s: bad worker %q", word, args[0])
		}
		kind := CmdFail
		if word == "recover" {
			kind = CmdRecover
		}
		return Command{Kind: kind, Worker: w}, nil
	case "flush":
		return Command{Kind: CmdFlush}, nil
	case "swap":
		return Command{Kind: CmdSwap}, nil
	case "quiesce":
		return Command{Kind: CmdQuiesce}, nil
	case "rebalance":
		return Command{Kind: CmdRebalance}, nil
	}
	return Command{}, fmt.Errorf("unknown command %q", word)
}
