// Package ribio reads and writes routing tables in the repository's
// plain-text interchange format: one "prefix next-hop" pair per line
// (e.g. "10.0.0.0/8 3"), '#' comments and blank lines ignored. The
// format stands in for the RIPE RIS RIB dumps the paper loads.
package ribio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"clue/internal/ip"
)

// Read parses a route list from r. Duplicate prefixes are allowed (the
// last wins when loaded into a trie, matching FIB semantics); an input
// with no routes is an error.
func Read(r io.Reader) ([]ip.Route, error) {
	var routes []ip.Route
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("ribio: line %d: want 'prefix next-hop', got %q", line, text)
		}
		p, err := ip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("ribio: line %d: %w", line, err)
		}
		hop, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil || hop == 0 {
			return nil, fmt.Errorf("ribio: line %d: bad next hop %q (want a positive integer)", line, fields[1])
		}
		routes = append(routes, ip.Route{Prefix: p, NextHop: ip.NextHop(hop)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ribio: %w", err)
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("ribio: no routes in input")
	}
	return routes, nil
}

// Write emits the route list in the interchange format.
func Write(w io.Writer, routes []ip.Route) error {
	bw := bufio.NewWriter(w)
	for _, r := range routes {
		if _, err := fmt.Fprintf(bw, "%s %d\n", r.Prefix, r.NextHop); err != nil {
			return fmt.Errorf("ribio: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ribio: %w", err)
	}
	return nil
}
