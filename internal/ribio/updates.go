package ribio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"clue/internal/ip"
)

// UpdateRecord is one incremental routing update in the trace
// interchange format — the announce/withdraw stream a collector tails,
// standing in for the RIPE RIS MRT update files the paper replays.
type UpdateRecord struct {
	// At is the record's offset from the trace start. Records in a trace
	// are ordered: At never decreases.
	At time.Duration
	// Withdraw marks a withdrawal; otherwise the record is an announce.
	Withdraw bool
	// Prefix is the updated prefix.
	Prefix ip.Prefix
	// NextHop is the announced next hop; zero on withdrawals.
	NextHop ip.NextHop
}

// String renders the record in the trace line format.
func (u UpdateRecord) String() string {
	if u.Withdraw {
		return fmt.Sprintf("%s withdraw %s", u.At, u.Prefix)
	}
	return fmt.Sprintf("%s announce %s %d", u.At, u.Prefix, u.NextHop)
}

// ReadUpdates parses an update trace from r: one update per line,
//
//	<offset> announce <prefix> <next-hop>
//	<offset> withdraw <prefix>
//
// where <offset> is a Go duration ("1.5s", "2m3s") measured from the
// trace start. Offsets must be non-negative and non-decreasing — the
// trace is an ordered stream, which is what the replication feed relies
// on. '#' comments and blank lines are ignored; an input with no
// records is an error, matching Read.
func ReadUpdates(r io.Reader) ([]UpdateRecord, error) {
	var ups []UpdateRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	var prev time.Duration
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("ribio: line %d: want '<offset> announce|withdraw <prefix> [hop]', got %q", line, text)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("ribio: line %d: bad offset %q: %w", line, fields[0], err)
		}
		if at < 0 {
			return nil, fmt.Errorf("ribio: line %d: negative offset %s", line, at)
		}
		if at < prev {
			return nil, fmt.Errorf("ribio: line %d: offset %s goes backwards (previous %s)", line, at, prev)
		}
		prev = at
		u := UpdateRecord{At: at}
		switch fields[1] {
		case "announce":
			if len(fields) != 4 {
				return nil, fmt.Errorf("ribio: line %d: announce wants '<offset> announce <prefix> <hop>', got %q", line, text)
			}
			hop, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil || hop == 0 {
				return nil, fmt.Errorf("ribio: line %d: bad next hop %q (want a positive integer)", line, fields[3])
			}
			u.NextHop = ip.NextHop(hop)
		case "withdraw":
			if len(fields) != 3 {
				return nil, fmt.Errorf("ribio: line %d: withdraw wants '<offset> withdraw <prefix>', got %q", line, text)
			}
			u.Withdraw = true
		default:
			return nil, fmt.Errorf("ribio: line %d: unknown update kind %q", line, fields[1])
		}
		u.Prefix, err = ip.ParsePrefix(fields[2])
		if err != nil {
			return nil, fmt.Errorf("ribio: line %d: %w", line, err)
		}
		ups = append(ups, u)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ribio: %w", err)
	}
	if len(ups) == 0 {
		return nil, fmt.Errorf("ribio: no updates in input")
	}
	return ups, nil
}

// WriteUpdates emits the update trace in the interchange format. It
// validates the same ordering and hop invariants ReadUpdates enforces,
// so a written trace always reads back.
func WriteUpdates(w io.Writer, ups []UpdateRecord) error {
	bw := bufio.NewWriter(w)
	var prev time.Duration
	for i, u := range ups {
		if u.At < 0 || u.At < prev {
			return fmt.Errorf("ribio: update %d: offset %s out of order (previous %s)", i, u.At, prev)
		}
		prev = u.At
		if !u.Withdraw && u.NextHop == 0 {
			return fmt.Errorf("ribio: update %d: announce of %s with zero next hop", i, u.Prefix)
		}
		if _, err := fmt.Fprintf(bw, "%s\n", u); err != nil {
			return fmt.Errorf("ribio: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ribio: %w", err)
	}
	return nil
}
