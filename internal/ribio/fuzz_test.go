package ribio

import (
	"strings"
	"testing"
)

// FuzzRead checks the reader never panics, that accepted inputs
// round-trip exactly through Write → Read, and that acceptance implies
// every non-comment line was well-formed (malformed lines must reject the
// whole input, matching the fuzz style of internal/ip and internal/onrtc).
// FuzzReadUpdates checks the update-trace reader never panics, that
// accepted inputs round-trip exactly through WriteUpdates → ReadUpdates,
// and that acceptance implies the stream invariants hold: offsets
// non-negative and non-decreasing, positive hops on announces, canonical
// prefixes.
func FuzzReadUpdates(f *testing.F) {
	for _, seed := range []string{
		"0s announce 10.0.0.0/8 1\n",
		"# trace\n0s announce 10.0.0.0/8 1\n\n1.5s withdraw 10.0.0.0/8\n",
		"0s announce 0.0.0.0/0 1\n1ms announce 255.255.255.255/32 4294967295\n",
		"1m30s withdraw 192.0.2.0/24\n",
		"2m3.000000001s announce 10.0.0.0/8 2\n",
		"0s announce 10.0.0.0/8 1\n0s announce 10.0.0.0/8 2\n", // same offset twice
		"",
		"0s announce 10.0.0.0/8\n",       // missing hop
		"0s withdraw 10.0.0.0/8 3\n",     // hop on withdraw
		"0s announce 10.0.0.0/8 0\n",     // zero hop
		"-1s announce 10.0.0.0/8 1\n",    // negative offset
		"2s announce 10.0.0.0/8 1\n1s withdraw 10.0.0.0/8\n", // backwards
		"0s readvertise 10.0.0.0/8 1\n",  // unknown kind
		"0s announce 10.0.0.1/8 1\n",     // host bits set
		"soon announce 10.0.0.0/8 1\n",   // unparseable offset
		"\t 0s \tannounce 10.0.0.0/8 1\r\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ups, err := ReadUpdates(strings.NewReader(s))
		if err != nil {
			return
		}
		if len(ups) == 0 {
			t.Fatalf("accepted input %q with zero updates", s)
		}
		prev := ups[0].At
		for _, u := range ups {
			if u.At < 0 || u.At < prev {
				t.Fatalf("accepted out-of-order offset %s from %q", u.At, s)
			}
			prev = u.At
			if !u.Withdraw && u.NextHop == 0 {
				t.Fatalf("accepted zero next hop from %q", s)
			}
			if u.Withdraw && u.NextHop != 0 {
				t.Fatalf("accepted withdraw with a hop from %q", s)
			}
			if u.Prefix.Bits&^u.Prefix.Mask() != 0 {
				t.Fatalf("accepted non-canonical prefix %v from %q", u.Prefix, s)
			}
		}
		var b strings.Builder
		if err := WriteUpdates(&b, ups); err != nil {
			t.Fatalf("write of accepted updates failed: %v", err)
		}
		back, err := ReadUpdates(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-read of written updates failed: %v\n%s", err, b.String())
		}
		if len(back) != len(ups) {
			t.Fatalf("round trip changed update count: %d -> %d", len(ups), len(back))
		}
		for i := range ups {
			if back[i] != ups[i] {
				t.Fatalf("round trip changed update %d: %v -> %v", i, ups[i], back[i])
			}
		}
	})
}

func FuzzRead(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8 1\n",
		"# comment\n10.0.0.0/8 1\n\n192.0.2.0/24 7\n",
		"0.0.0.0/0 3\n255.255.255.255/32 4294967295\n",
		"10.0.0.0/8 1\n10.0.0.0/8 2\n", // duplicates allowed
		"",
		"10.0.0.0/8\n",        // missing hop
		"10.0.0.0/8 1 2\n",    // extra field
		"10.0.0.1/8 1\n",      // host bits set
		"10.0.0.0/8 0\n",      // zero hop
		"10.0.0.0/8 -1\n",     // negative hop
		"10.0.0.0/33 1\n",     // bad length
		"x/8 1\n",             // bad address
		"10.0.0.0/8 1\r\n",    // CR handling
		"\t 10.0.0.0/8 \t1\n", // surrounding whitespace
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		routes, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		if len(routes) == 0 {
			t.Fatalf("accepted input %q with zero routes", s)
		}
		for _, r := range routes {
			if r.NextHop == 0 {
				t.Fatalf("accepted zero next hop from %q", s)
			}
			if r.Prefix.Bits&^r.Prefix.Mask() != 0 {
				t.Fatalf("accepted non-canonical prefix %v from %q", r.Prefix, s)
			}
		}
		// Accepted inputs must round-trip exactly: Write emits the
		// canonical form and Read must reproduce the same route list,
		// duplicates and order included.
		var b strings.Builder
		if err := Write(&b, routes); err != nil {
			t.Fatalf("write of accepted routes failed: %v", err)
		}
		back, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-read of written routes failed: %v\n%s", err, b.String())
		}
		if len(back) != len(routes) {
			t.Fatalf("round trip changed route count: %d -> %d", len(routes), len(back))
		}
		for i := range routes {
			if back[i] != routes[i] {
				t.Fatalf("round trip changed route %d: %v -> %v", i, routes[i], back[i])
			}
		}
	})
}
