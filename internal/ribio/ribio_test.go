package ribio

import (
	"strings"
	"testing"

	"clue/internal/ip"
)

func TestReadBasic(t *testing.T) {
	in := `# a comment
10.0.0.0/8 1

192.0.2.0/24 7
`
	routes, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 {
		t.Fatalf("got %d routes", len(routes))
	}
	if routes[0] != (ip.Route{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1}) {
		t.Errorf("route 0 = %v", routes[0])
	}
	if routes[1].NextHop != 7 {
		t.Errorf("route 1 = %v", routes[1])
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{name: "empty", in: ""},
		{name: "comments only", in: "# nothing\n"},
		{name: "missing hop", in: "10.0.0.0/8\n"},
		{name: "extra field", in: "10.0.0.0/8 1 2\n"},
		{name: "bad prefix", in: "10.0.0.300/8 1\n"},
		{name: "host bits", in: "10.0.0.1/8 1\n"},
		{name: "zero hop", in: "10.0.0.0/8 0\n"},
		{name: "negative hop", in: "10.0.0.0/8 -1\n"},
		{name: "text hop", in: "10.0.0.0/8 x\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("192.0.2.0/24"), NextHop: 200},
		{Prefix: ip.MustParsePrefix("0.0.0.0/0"), NextHop: 3},
	}
	var b strings.Builder
	if err := Write(&b, routes); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(routes) {
		t.Fatalf("round trip lost routes: %d vs %d", len(back), len(routes))
	}
	for i := range routes {
		if back[i] != routes[i] {
			t.Errorf("route %d: %v vs %v", i, back[i], routes[i])
		}
	}
}

func TestReadDuplicatesAllowed(t *testing.T) {
	in := "10.0.0.0/8 1\n10.0.0.0/8 2\n"
	routes, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 {
		t.Errorf("got %d routes, want 2 (duplicates preserved)", len(routes))
	}
}
