package ribio

import (
	"strings"
	"testing"
	"time"

	"clue/internal/ip"
)

func TestReadUpdates(t *testing.T) {
	in := `# update trace
0s announce 10.0.0.0/8 3

1.5s withdraw 10.0.0.0/8
1.5s announce 192.0.2.0/24 7
2m3s announce 0.0.0.0/0 1
`
	ups, err := ReadUpdates(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []UpdateRecord{
		{At: 0, Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 3},
		{At: 1500 * time.Millisecond, Withdraw: true, Prefix: ip.MustParsePrefix("10.0.0.0/8")},
		{At: 1500 * time.Millisecond, Prefix: ip.MustParsePrefix("192.0.2.0/24"), NextHop: 7},
		{At: 2*time.Minute + 3*time.Second, Prefix: ip.MustParsePrefix("0.0.0.0/0"), NextHop: 1},
	}
	if len(ups) != len(want) {
		t.Fatalf("got %d records, want %d", len(ups), len(want))
	}
	for i := range want {
		if ups[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, ups[i], want[i])
		}
	}
}

func TestReadUpdatesRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":            "",
		"comments only":    "# nothing\n",
		"missing hop":      "0s announce 10.0.0.0/8\n",
		"zero hop":         "0s announce 10.0.0.0/8 0\n",
		"hop on withdraw":  "0s withdraw 10.0.0.0/8 3\n",
		"unknown kind":     "0s readvertise 10.0.0.0/8 3\n",
		"bad offset":       "soon announce 10.0.0.0/8 3\n",
		"negative offset":  "-1s announce 10.0.0.0/8 3\n",
		"offset backwards": "2s announce 10.0.0.0/8 3\n1s withdraw 10.0.0.0/8\n",
		"host bits":        "0s announce 10.0.0.1/8 3\n",
		"bad prefix":       "0s announce 10.0.0.0/33 3\n",
	} {
		if _, err := ReadUpdates(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestWriteUpdatesRoundTrip(t *testing.T) {
	ups := []UpdateRecord{
		{At: 0, Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 3},
		{At: time.Second + 1, Prefix: ip.MustParsePrefix("10.128.0.0/9"), NextHop: 9},
		{At: 90 * time.Second, Withdraw: true, Prefix: ip.MustParsePrefix("10.0.0.0/8")},
		{At: time.Hour, Prefix: ip.MustParsePrefix("255.255.255.255/32"), NextHop: 4294967295},
	}
	var b strings.Builder
	if err := WriteUpdates(&b, ups); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUpdates(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, b.String())
	}
	if len(back) != len(ups) {
		t.Fatalf("round trip changed count: %d -> %d", len(ups), len(back))
	}
	for i := range ups {
		if back[i] != ups[i] {
			t.Errorf("record %d changed: %+v -> %+v", i, ups[i], back[i])
		}
	}
}

func TestWriteUpdatesRejects(t *testing.T) {
	if err := WriteUpdates(&strings.Builder{}, []UpdateRecord{
		{At: 2 * time.Second, Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{At: time.Second, Withdraw: true, Prefix: ip.MustParsePrefix("10.0.0.0/8")},
	}); err == nil {
		t.Error("out-of-order offsets accepted")
	}
	if err := WriteUpdates(&strings.Builder{}, []UpdateRecord{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8")},
	}); err == nil {
		t.Error("zero-hop announce accepted")
	}
}
