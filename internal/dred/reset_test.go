package dred

import (
	"fmt"
	"testing"
)

func TestCacheResetDropsEntriesKeepsStats(t *testing.T) {
	c := NewCache(8)
	c.Insert(rt("10.0.0.0/8", 1))
	c.Insert(rt("192.168.0.0/16", 2))
	c.Insert(rt("172.16.0.0/12", 3))
	c.Lookup(addr("10.1.2.3"))  // hit
	c.Lookup(addr("11.0.0.1"))  // miss
	before := c.Stats()
	if before.Inserts != 3 || before.Lookups != 2 || before.Hits != 1 {
		t.Fatalf("pre-reset stats: %+v", before)
	}

	c.Reset()

	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", c.Len())
	}
	if c.Contains(pfx("10.0.0.0/8")) {
		t.Fatal("entry survived Reset")
	}
	if _, _, ok := c.Lookup(addr("10.1.2.3")); ok {
		t.Fatal("match trie still answers after Reset")
	}
	// Reset is a flush, not a new cache: the activity history survives
	// (the post-reset miss above is the only delta) and so does capacity.
	after := c.Stats()
	if after.Inserts != before.Inserts || after.Hits != before.Hits ||
		after.Lookups != before.Lookups+1 || after.Evictions != before.Evictions {
		t.Fatalf("stats changed across Reset: before %+v after %+v", before, after)
	}
	if c.Capacity() != 8 {
		t.Fatalf("capacity after Reset = %d, want 8", c.Capacity())
	}
}

func TestCacheUsableAfterReset(t *testing.T) {
	c := NewCache(2)
	c.Insert(rt("10.0.0.0/8", 1))
	c.Insert(rt("192.168.0.0/16", 2))
	c.Reset()

	// The reused structures behave like new: fills, LPM answers, LRU
	// eviction and invalidation all work on the second generation.
	c.Insert(rt("203.0.113.0/24", 4))
	if hop, _, ok := c.Lookup(addr("203.0.113.9")); !ok || hop != 4 {
		t.Fatalf("post-reset lookup = (%d, %v)", hop, ok)
	}
	c.Insert(rt("198.51.100.0/24", 5))
	c.Insert(rt("100.64.0.0/10", 6)) // over capacity: evicts the LRU entry
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", c.Len())
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if !c.Invalidate(pfx("100.64.0.0/10")) {
		t.Fatal("invalidate after reset failed")
	}
	// Repeated resets (serve's repeated cache flushes) stay consistent.
	for gen := 0; gen < 5; gen++ {
		c.Reset()
		if c.Len() != 0 {
			t.Fatalf("gen %d: Len = %d after Reset", gen, c.Len())
		}
		p := fmt.Sprintf("10.%d.0.0/16", gen)
		c.Insert(rt(p, 9))
		if !c.Contains(pfx(p)) {
			t.Fatalf("gen %d: insert after Reset missing", gen)
		}
	}
}
