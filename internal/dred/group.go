package dred

import (
	"fmt"

	"clue/internal/ip"
)

// Group is the set of per-TCAM redundancy caches in a parallel lookup
// engine, with the two fill disciplines the paper compares.
type Group struct {
	caches []*Cache
}

// NewGroup creates n caches of the given per-cache capacity.
func NewGroup(n, capacity int) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("dred: group needs at least 1 cache, got %d", n)
	}
	g := &Group{caches: make([]*Cache, n)}
	for i := range g.caches {
		g.caches[i] = NewCache(capacity)
	}
	return g, nil
}

// N returns the number of caches in the group.
func (g *Group) N() int { return len(g.caches) }

// Cache returns cache i.
func (g *Group) Cache(i int) *Cache { return g.caches[i] }

// InsertExcept fills every cache except home with r — CLUE's reduced
// dynamic redundancy rule (DRed i never stores TCAM i's prefixes because
// DRed i is never probed for TCAM i's traffic).
func (g *Group) InsertExcept(home int, r ip.Route) {
	for i, c := range g.caches {
		if i == home {
			continue
		}
		c.Insert(r)
	}
}

// InsertAll fills every cache with r — CLPL's logical-cache rule.
func (g *Group) InsertAll(r ip.Route) {
	for _, c := range g.caches {
		c.Insert(r)
	}
}

// Invalidate removes prefix p from every cache, returning the number of
// caches that held it.
func (g *Group) Invalidate(p ip.Prefix) int {
	n := 0
	for _, c := range g.caches {
		if c.Invalidate(p) {
			n++
		}
	}
	return n
}

// InvalidateOverlapping removes all entries overlapping p from every
// cache, returning the total removed.
func (g *Group) InvalidateOverlapping(p ip.Prefix) int {
	n := 0
	for _, c := range g.caches {
		n += c.InvalidateOverlapping(p)
	}
	return n
}

// Stats sums the activity counters across all caches.
func (g *Group) Stats() Stats {
	var total Stats
	for _, c := range g.caches {
		s := c.Stats()
		total.Lookups += s.Lookups
		total.Hits += s.Hits
		total.Inserts += s.Inserts
		total.Evictions += s.Evictions
		total.Invalidations += s.Invalidations
	}
	return total
}

// ResetStats zeroes every cache's counters.
func (g *Group) ResetStats() {
	for _, c := range g.caches {
		c.ResetStats()
	}
}
