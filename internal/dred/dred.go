// Package dred implements the Dynamic Redundancy stores used for load
// balancing in the parallel lookup engine: a bounded LRU prefix cache
// (Cache) and a per-engine group of them (Group) with the two fill
// policies the paper compares.
//
// CLUE's DRed i never serves traffic whose home is TCAM i (the balancer
// only diverts *away* from the home chip), so a hit prefix from TCAM i is
// inserted into every DRed except i — the "reduced dynamic redundancy" in
// the paper's title: at N=4, 3/4 of CLPL's cache space buys the same hit
// rate. CLPL's logical caches instead insert the (RRC-ME expanded) prefix
// into all N caches, including the home's.
//
// Cached prefixes may overlap only in hop-consistent ways (disjoint ONRTC
// prefixes for CLUE; RRC-ME expansions for CLPL, which by construction
// never shadow a longer route), so lookups use longest-prefix match.
package dred

import (
	"container/list"

	"clue/internal/ip"
	"clue/internal/trie"
)

// Stats accumulates cache activity for hit-rate reporting.
type Stats struct {
	// Lookups is the number of probe operations.
	Lookups int64
	// Hits is the number of probes that matched a cached prefix.
	Hits int64
	// Inserts is the number of fill operations that added an entry.
	Inserts int64
	// Evictions is the number of LRU evictions caused by fills.
	Evictions int64
	// Invalidations is the number of entries removed by routing updates.
	Invalidations int64
}

// HitRate returns Hits/Lookups, or 0 with no lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is a bounded LRU prefix cache with longest-prefix-match lookup.
// The zero value is not usable; call NewCache.
type Cache struct {
	capacity int
	match    *trie.Trie
	order    *list.List // front = most recently used; values are ip.Prefix
	elems    map[ip.Prefix]*list.Element
	stats    Stats
}

// NewCache creates a cache holding at most capacity prefixes. A zero or
// negative capacity yields a cache that never stores anything (useful as
// a disabled DRed in ablations).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		match:    trie.New(),
		order:    list.New(),
		elems:    make(map[ip.Prefix]*list.Element),
	}
}

// Capacity returns the cache's entry limit.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of cached prefixes.
func (c *Cache) Len() int { return len(c.elems) }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the activity counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Lookup probes the cache with addr. A hit refreshes the entry's LRU
// position.
func (c *Cache) Lookup(addr ip.Addr) (ip.NextHop, ip.Prefix, bool) {
	c.stats.Lookups++
	hop, p := c.match.Lookup(addr, nil)
	if hop == ip.NoRoute {
		return ip.NoRoute, ip.Prefix{}, false
	}
	c.stats.Hits++
	c.order.MoveToFront(c.elems[p])
	return hop, p, true
}

// Insert fills the cache with r, evicting the least recently used entry
// if full. Re-inserting a present prefix refreshes it (and its hop).
func (c *Cache) Insert(r ip.Route) {
	if c.capacity <= 0 {
		return
	}
	if e, ok := c.elems[r.Prefix]; ok {
		c.order.MoveToFront(e)
		c.match.Insert(r.Prefix, r.NextHop, nil)
		return
	}
	if len(c.elems) >= c.capacity {
		c.evictLRU()
	}
	c.elems[r.Prefix] = c.order.PushFront(r.Prefix)
	c.match.Insert(r.Prefix, r.NextHop, nil)
	c.stats.Inserts++
}

func (c *Cache) evictLRU() {
	back := c.order.Back()
	if back == nil {
		return
	}
	p, ok := back.Value.(ip.Prefix)
	if !ok {
		// The list only ever holds prefixes; treat corruption as empty.
		c.order.Remove(back)
		return
	}
	c.order.Remove(back)
	delete(c.elems, p)
	c.match.Delete(p, nil)
	c.stats.Evictions++
}

// Reset removes every cached entry while preserving the activity
// counters and reusing the backing structures: the match trie is pruned
// entry by entry, the LRU list is re-initialised and the element map is
// cleared in place. A serve-layer cache flush (snapshot version jump,
// partition rehome) is therefore an O(entries) drop, not a wholesale
// reallocation that also discards the Stats history.
func (c *Cache) Reset() {
	for p := range c.elems {
		c.match.Delete(p, nil)
	}
	clear(c.elems)
	c.order.Init()
}

// Routes returns the cached entries in ascending prefix order (no LRU
// effect). The differential oracle uses it to assert the no-stale-entry
// invariant: everything a DRed holds must still be live in the table it
// shadows.
func (c *Cache) Routes() []ip.Route { return c.match.Routes() }

// Contains reports whether prefix p is cached (exact match, no LPM).
func (c *Cache) Contains(p ip.Prefix) bool {
	_, ok := c.elems[p]
	return ok
}

// Invalidate removes prefix p if cached, returning whether it was present.
// CLUE's DRed update on a withdraw is exactly this single probe.
func (c *Cache) Invalidate(p ip.Prefix) bool {
	e, ok := c.elems[p]
	if !ok {
		return false
	}
	c.order.Remove(e)
	delete(c.elems, p)
	c.match.Delete(p, nil)
	c.stats.Invalidations++
	return true
}

// InvalidateOverlapping removes every cached entry overlapping p and
// returns how many were removed. CLPL must do this on routing updates
// because its cached RRC-ME expansions can be invalidated by any change
// inside or above them.
func (c *Cache) InvalidateOverlapping(p ip.Prefix) int {
	var victims []ip.Prefix
	for q := range c.elems {
		if q.Overlaps(p) {
			victims = append(victims, q)
		}
	}
	for _, q := range victims {
		c.Invalidate(q)
	}
	return len(victims)
}
