package dred

import (
	"math/rand"
	"testing"

	"clue/internal/ip"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }
func addr(s string) ip.Addr  { return ip.MustParseAddr(s) }
func rt(p string, h ip.NextHop) ip.Route {
	return ip.Route{Prefix: pfx(p), NextHop: h}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(4)
	c.Insert(rt("10.0.0.0/8", 1))
	hop, via, ok := c.Lookup(addr("10.1.2.3"))
	if !ok || hop != 1 || via != pfx("10.0.0.0/8") {
		t.Errorf("Lookup = (%d, %s, %v)", hop, via, ok)
	}
	if _, _, ok := c.Lookup(addr("11.0.0.0")); ok {
		t.Error("miss returned ok")
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", s.HitRate())
	}
}

func TestHitRateZeroLookups(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("HitRate with no lookups should be 0")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Insert(rt("10.0.0.0/8", 1))
	c.Insert(rt("11.0.0.0/8", 2))
	// Touch 10/8 so 11/8 becomes LRU.
	if _, _, ok := c.Lookup(addr("10.0.0.1")); !ok {
		t.Fatal("expected hit")
	}
	c.Insert(rt("12.0.0.0/8", 3))
	if c.Contains(pfx("11.0.0.0/8")) {
		t.Error("LRU entry 11/8 not evicted")
	}
	if !c.Contains(pfx("10.0.0.0/8")) || !c.Contains(pfx("12.0.0.0/8")) {
		t.Error("wrong entries evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", c.Stats().Evictions)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheReinsertRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Insert(rt("10.0.0.0/8", 1))
	c.Insert(rt("11.0.0.0/8", 2))
	// Refresh 10/8 by re-insert (with a new hop) instead of lookup.
	c.Insert(rt("10.0.0.0/8", 9))
	c.Insert(rt("12.0.0.0/8", 3))
	if c.Contains(pfx("11.0.0.0/8")) {
		t.Error("11/8 should have been the LRU victim")
	}
	hop, _, ok := c.Lookup(addr("10.0.0.1"))
	if !ok || hop != 9 {
		t.Errorf("refreshed hop = (%d, %v), want (9, true)", hop, ok)
	}
	if c.Stats().Inserts != 3 {
		t.Errorf("Inserts = %d, want 3 (refresh doesn't count)", c.Stats().Inserts)
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := NewCache(0)
	c.Insert(rt("10.0.0.0/8", 1))
	if c.Len() != 0 {
		t.Error("zero-capacity cache stored an entry")
	}
	if _, _, ok := c.Lookup(addr("10.0.0.1")); ok {
		t.Error("zero-capacity cache hit")
	}
}

func TestCacheLPMOverOverlappingEntries(t *testing.T) {
	c := NewCache(4)
	c.Insert(rt("10.0.0.0/8", 1))
	c.Insert(rt("10.1.0.0/16", 2))
	hop, _, ok := c.Lookup(addr("10.1.0.5"))
	if !ok || hop != 2 {
		t.Errorf("LPM hop = %d, want 2", hop)
	}
	hop, _, ok = c.Lookup(addr("10.2.0.5"))
	if !ok || hop != 1 {
		t.Errorf("fallback hop = %d, want 1", hop)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(4)
	c.Insert(rt("10.0.0.0/8", 1))
	if !c.Invalidate(pfx("10.0.0.0/8")) {
		t.Error("Invalidate of present prefix returned false")
	}
	if c.Invalidate(pfx("10.0.0.0/8")) {
		t.Error("Invalidate of absent prefix returned true")
	}
	if _, _, ok := c.Lookup(addr("10.0.0.1")); ok {
		t.Error("hit after invalidation")
	}
	if c.Stats().Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", c.Stats().Invalidations)
	}
}

func TestCacheInvalidateOverlapping(t *testing.T) {
	c := NewCache(8)
	c.Insert(rt("10.0.0.0/8", 1))
	c.Insert(rt("10.1.0.0/16", 2))
	c.Insert(rt("11.0.0.0/8", 3))
	n := c.InvalidateOverlapping(pfx("10.0.0.0/9"))
	if n != 2 {
		t.Errorf("InvalidateOverlapping removed %d, want 2 (the /8 above and /16 below)", n)
	}
	if !c.Contains(pfx("11.0.0.0/8")) {
		t.Error("unrelated entry removed")
	}
}

func TestCacheEvictionKeepsMatchConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewCache(16)
	for i := 0; i < 2000; i++ {
		p := ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(9)+16)
		c.Insert(ip.Route{Prefix: p, NextHop: ip.NextHop(rng.Intn(4) + 1)})
		if c.Len() > 16 {
			t.Fatalf("cache exceeded capacity: %d", c.Len())
		}
	}
	// Every cached prefix must still be matchable; every evicted one not
	// (probe exact first addresses where no shorter entry covers).
	hits := 0
	for q := range c.elems {
		if _, _, ok := c.Lookup(q.First()); ok {
			hits++
		}
	}
	if hits != c.Len() {
		t.Errorf("only %d of %d cached entries matchable", hits, c.Len())
	}
}

func TestGroupInsertExcept(t *testing.T) {
	g, err := NewGroup(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	g.InsertExcept(1, rt("10.0.0.0/8", 1))
	for i := 0; i < 4; i++ {
		want := i != 1
		if got := g.Cache(i).Contains(pfx("10.0.0.0/8")); got != want {
			t.Errorf("cache %d contains = %v, want %v", i, got, want)
		}
	}
}

func TestGroupInsertAll(t *testing.T) {
	g, err := NewGroup(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	g.InsertAll(rt("10.0.0.0/8", 1))
	for i := 0; i < 3; i++ {
		if !g.Cache(i).Contains(pfx("10.0.0.0/8")) {
			t.Errorf("cache %d missing entry", i)
		}
	}
	if n := g.Invalidate(pfx("10.0.0.0/8")); n != 3 {
		t.Errorf("group Invalidate removed from %d caches, want 3", n)
	}
}

func TestGroupInvalidateOverlapping(t *testing.T) {
	g, err := NewGroup(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	g.InsertAll(rt("10.0.0.0/8", 1))
	g.InsertAll(rt("10.1.0.0/16", 2))
	if n := g.InvalidateOverlapping(pfx("10.0.0.0/8")); n != 4 {
		t.Errorf("removed %d entries, want 4", n)
	}
}

func TestGroupStatsAggregation(t *testing.T) {
	g, err := NewGroup(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	g.InsertAll(rt("10.0.0.0/8", 1))
	g.Cache(0).Lookup(addr("10.0.0.1"))
	g.Cache(1).Lookup(addr("11.0.0.1"))
	s := g.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Inserts != 2 {
		t.Errorf("aggregated stats = %+v", s)
	}
	g.ResetStats()
	if s := g.Stats(); s.Lookups != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup(0, 8); err == nil {
		t.Error("NewGroup(0) succeeded")
	}
	g, err := NewGroup(1, 8)
	if err != nil || g.N() != 1 {
		t.Errorf("NewGroup(1) = (%v, %v)", g, err)
	}
}

// Property: with a working set smaller than capacity, the steady-state
// hit rate approaches 1; with a much larger uniform set it stays low.
func TestCacheHitRateRegimes(t *testing.T) {
	small := NewCache(64)
	rng := rand.New(rand.NewSource(8))
	working := make([]ip.Route, 32)
	for i := range working {
		working[i] = ip.Route{Prefix: ip.MustPrefix(ip.Addr(rng.Uint32()), 24), NextHop: 1}
	}
	for i := 0; i < 5000; i++ {
		r := working[rng.Intn(len(working))]
		if _, _, ok := small.Lookup(r.Prefix.First()); !ok {
			small.Insert(r)
		}
	}
	if hr := small.Stats().HitRate(); hr < 0.95 {
		t.Errorf("small working set hit rate = %v, want > 0.95", hr)
	}

	big := NewCache(64)
	for i := 0; i < 5000; i++ {
		p := ip.MustPrefix(ip.Addr(rng.Uint32()), 24)
		if _, _, ok := big.Lookup(p.First()); !ok {
			big.Insert(ip.Route{Prefix: p, NextHop: 1})
		}
	}
	if hr := big.Stats().HitRate(); hr > 0.2 {
		t.Errorf("uniform large set hit rate = %v, want < 0.2", hr)
	}
}
