package partition

import (
	"math"
	"math/rand"
	"testing"

	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/trie"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }
func addr(s string) ip.Addr  { return ip.MustParseAddr(s) }

// disjointRoutes builds a deterministic disjoint sorted route list by
// compressing a random FIB.
func disjointRoutes(t *testing.T, n int, seed int64) []ip.Route {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fib := trie.New()
	for fibLen := 0; fibLen < n*2; fibLen++ {
		fib.Insert(ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(9)+16), ip.NextHop(rng.Intn(64)+1), nil)
	}
	routes := onrtc.Compress(fib).Routes()
	if len(routes) < n {
		t.Fatalf("generated only %d disjoint routes, need %d", len(routes), n)
	}
	return routes
}

func TestCLUEEvenSplit(t *testing.T) {
	routes := disjointRoutes(t, 100, 1)
	res, ix, err := CLUE(routes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 4 {
		t.Fatalf("got %d partitions, want 4", len(res.Parts))
	}
	if res.MaxSize()-res.MinSize() > 1 {
		t.Errorf("sizes not even: max %d min %d", res.MaxSize(), res.MinSize())
	}
	if res.TotalRedundant() != 0 {
		t.Errorf("CLUE introduced %d redundant entries, want 0", res.TotalRedundant())
	}
	if res.TotalEntries() != len(routes) {
		t.Errorf("entries = %d, want %d", res.TotalEntries(), len(routes))
	}
	if ix.Len() != 4 {
		t.Errorf("index len = %d, want 4", ix.Len())
	}
	if res.Imbalance() > 1.05 {
		t.Errorf("imbalance = %v, want ≈1", res.Imbalance())
	}
}

func TestCLUEIndexRoutesToOwningPartition(t *testing.T) {
	routes := disjointRoutes(t, 200, 2)
	res, ix, err := CLUE(routes, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Every route's entire range must index to the partition holding it.
	for pi, part := range res.Parts {
		for _, r := range part.Routes {
			for _, a := range []ip.Addr{r.Prefix.First(), r.Prefix.Last()} {
				if got := ix.Lookup(a); got != pi {
					t.Fatalf("index sends %s (route %s) to partition %d, stored in %d", a, r.Prefix, got, pi)
				}
			}
		}
	}
}

func TestCLUEIndexCoversFullSpace(t *testing.T) {
	routes := disjointRoutes(t, 64, 3)
	res, ix, err := CLUE(routes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parts[0].Low != 0 {
		t.Errorf("first partition Low = %s, want 0.0.0.0", res.Parts[0].Low)
	}
	if res.Parts[3].High != ip.Addr(math.MaxUint32) {
		t.Errorf("last partition High = %s, want 255.255.255.255", res.Parts[3].High)
	}
	if got := ix.Lookup(0); got != 0 {
		t.Errorf("Lookup(0) = %d, want 0", got)
	}
	if got := ix.Lookup(ip.Addr(math.MaxUint32)); got != 3 {
		t.Errorf("Lookup(max) = %d, want 3", got)
	}
	// Ranges must tile the space without gaps.
	for i := 1; i < len(res.Parts); i++ {
		if res.Parts[i].Low != res.Parts[i-1].High+1 {
			t.Errorf("gap between partition %d (high %s) and %d (low %s)", i-1, res.Parts[i-1].High, i, res.Parts[i].Low)
		}
	}
}

func TestCLUEValidation(t *testing.T) {
	routes := disjointRoutes(t, 10, 4)
	if _, _, err := CLUE(routes, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := CLUE(routes[:2], 5); err == nil {
		t.Error("fewer routes than partitions accepted")
	}
	// Unsorted input must be rejected.
	bad := []ip.Route{
		{Prefix: pfx("11.0.0.0/8"), NextHop: 1},
		{Prefix: pfx("10.0.0.0/8"), NextHop: 2},
	}
	if _, _, err := CLUE(bad, 1); err == nil {
		t.Error("unsorted routes accepted")
	}
}

func TestCLUESinglePartition(t *testing.T) {
	routes := disjointRoutes(t, 10, 5)
	res, ix, err := CLUE(routes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 1 || res.Parts[0].Size() != len(routes) {
		t.Errorf("single partition wrong: %d parts, size %d", len(res.Parts), res.Parts[0].Size())
	}
	if ix.Lookup(addr("128.0.0.0")) != 0 {
		t.Error("single-partition index should always return 0")
	}
}

func TestSubTreeCoversAllRoutesWithReplicas(t *testing.T) {
	fib := trie.New()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		fib.Insert(ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(17)+8), ip.NextHop(rng.Intn(8)+1), nil)
	}
	res, err := SubTree(fib, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) < 2 {
		t.Fatalf("sub-tree produced %d partitions", len(res.Parts))
	}
	// Total entries = original + redundancy; every original route appears.
	if res.TotalEntries() != fib.Len()+res.TotalRedundant() {
		t.Errorf("entries %d != routes %d + redundant %d", res.TotalEntries(), fib.Len(), res.TotalRedundant())
	}
	seen := map[ip.Route]bool{}
	for _, p := range res.Parts {
		for _, r := range p.Routes {
			seen[r] = true
		}
	}
	for _, r := range fib.Routes() {
		if !seen[r] {
			t.Errorf("route %v missing from all partitions", r)
		}
	}
}

func TestSubTreeReplicatesCoveringRoutes(t *testing.T) {
	// A deep covering chain: the /8 covers everything; carved subtrees
	// below it must carry a copy.
	fib := trie.New()
	fib.Insert(pfx("10.0.0.0/8"), 1, nil)
	for i := 0; i < 64; i++ {
		fib.Insert(ip.MustPrefix(ip.MustParseAddr("10.0.0.0")+ip.Addr(i)<<8, 24), ip.NextHop(i%4+1), nil)
	}
	res, err := SubTree(fib, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRedundant() == 0 {
		t.Error("sub-tree partition of a covered trie reported zero redundancy")
	}
}

func TestSubTreeLPMCorrectWithinHomePartition(t *testing.T) {
	// The partition responsible for an address (the one holding its
	// longest-match route) must produce the same LPM answer as the full
	// table — that's what replication buys.
	fib := trie.New()
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 300; i++ {
		fib.Insert(ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(17)+8), ip.NextHop(rng.Intn(8)+1), nil)
	}
	res, err := SubTree(fib, 6)
	if err != nil {
		t.Fatal(err)
	}
	partTries := make([]*trie.Trie, len(res.Parts))
	owner := map[ip.Prefix]int{}
	for i, p := range res.Parts {
		partTries[i] = trie.FromRoutes(p.Routes)
		for j, r := range p.Routes {
			// Owned routes come first; replicas appended after.
			if j < len(p.Routes)-p.Redundant {
				owner[r.Prefix] = i
			}
		}
	}
	for i := 0; i < 1000; i++ {
		a := ip.Addr(rng.Uint32())
		want, via := fib.Lookup(a, nil)
		if want == ip.NoRoute {
			continue
		}
		home, ok := owner[via]
		if !ok {
			t.Fatalf("no owner for matched prefix %s", via)
		}
		got, _ := partTries[home].Lookup(a, nil)
		if got != want {
			t.Fatalf("partition %d lookup(%s) = %d, full table %d", home, a, got, want)
		}
	}
}

func TestSubTreeValidation(t *testing.T) {
	if _, err := SubTree(trie.New(), 4); err == nil {
		t.Error("empty table accepted")
	}
	fib := trie.New()
	fib.Insert(pfx("10.0.0.0/8"), 1, nil)
	if _, err := SubTree(fib, 0); err == nil {
		t.Error("n=0 accepted")
	}
	res, err := SubTree(fib, 1)
	if err != nil || res.TotalEntries() != 1 {
		t.Errorf("single-route subtree: %v, %v", res, err)
	}
}

func TestIDBitBucketsAndReplication(t *testing.T) {
	routes := []ip.Route{
		{Prefix: pfx("0.0.0.0/8"), NextHop: 1},   // bit0 = 0
		{Prefix: pfx("128.0.0.0/8"), NextHop: 2}, // bit0 = 1
		{Prefix: pfx("0.0.0.0/0"), NextHop: 3},   // unspecified -> both
	}
	res, err := IDBit(routes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 2 {
		t.Fatalf("got %d buckets, want 2", len(res.Parts))
	}
	if res.TotalEntries() != 4 {
		t.Errorf("entries = %d, want 4 (one replica)", res.TotalEntries())
	}
	if res.TotalRedundant() != 1 {
		t.Errorf("redundant = %d, want 1", res.TotalRedundant())
	}
}

func TestIDBitKZero(t *testing.T) {
	routes := []ip.Route{{Prefix: pfx("10.0.0.0/8"), NextHop: 1}}
	res, err := IDBit(routes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 1 || res.Parts[0].Size() != 1 {
		t.Errorf("k=0 result: %+v", res)
	}
}

func TestIDBitValidation(t *testing.T) {
	routes := []ip.Route{{Prefix: pfx("10.0.0.0/8"), NextHop: 1}}
	if _, err := IDBit(routes, -1); err == nil {
		t.Error("k=-1 accepted")
	}
	if _, err := IDBit(routes, 9); err == nil {
		t.Error("k=9 accepted")
	}
	if _, err := IDBit(nil, 2); err == nil {
		t.Error("empty routes accepted")
	}
}

func TestIDBitCoversAllRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var routes []ip.Route
	for i := 0; i < 300; i++ {
		routes = append(routes, ip.Route{
			Prefix:  ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(17)+8),
			NextHop: ip.NextHop(rng.Intn(8) + 1),
		})
	}
	res, err := IDBit(routes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 8 {
		t.Fatalf("buckets = %d, want 8", len(res.Parts))
	}
	if res.TotalEntries() < len(routes) {
		t.Errorf("entries %d < routes %d", res.TotalEntries(), len(routes))
	}
}

// TestAlgorithmComparison reproduces the Figure 9 shape: CLUE even with
// zero redundancy; sub-tree redundancy > 0; ID-bit uneven.
func TestAlgorithmComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	fib := trie.New()
	// A hierarchical table with covering routes, like a real FIB: one /8
	// covering many /16s, each covering several /24s, so that carve
	// points land below covering routes.
	fib.Insert(pfx("10.0.0.0/8"), 1, nil)
	for i := 0; i < 64; i++ {
		base := ip.MustParseAddr("10.0.0.0") + ip.Addr(rng.Intn(256))<<16
		fib.Insert(ip.MustPrefix(base, 16), ip.NextHop(rng.Intn(8)+1), nil)
		for j := 0; j < 8; j++ {
			fib.Insert(ip.MustPrefix(base+ip.Addr(rng.Intn(256))<<8, 24), ip.NextHop(rng.Intn(8)+1), nil)
		}
	}
	comp := onrtc.Compress(fib).Routes()

	clueRes, _, err := CLUE(comp, 8)
	if err != nil {
		t.Fatal(err)
	}
	stRes, err := SubTree(fib, 8)
	if err != nil {
		t.Fatal(err)
	}
	idRes, err := IDBit(fib.Routes(), 3)
	if err != nil {
		t.Fatal(err)
	}

	if clueRes.TotalRedundant() != 0 {
		t.Errorf("CLUE redundancy = %d, want 0", clueRes.TotalRedundant())
	}
	if clueRes.Imbalance() > 1.05 {
		t.Errorf("CLUE imbalance = %v", clueRes.Imbalance())
	}
	if stRes.TotalRedundant() == 0 {
		t.Error("sub-tree reported zero redundancy on a covered trie")
	}
	if idRes.Imbalance() <= clueRes.Imbalance() {
		t.Errorf("ID-bit imbalance %v should exceed CLUE's %v", idRes.Imbalance(), clueRes.Imbalance())
	}
}

func TestResultAccessorsEmpty(t *testing.T) {
	var r Result
	if r.MaxSize() != 0 || r.MinSize() != 0 || r.Imbalance() != 0 || r.TotalEntries() != 0 {
		t.Error("empty result accessors should all be 0")
	}
}
