package partition

import (
	"fmt"
	"sort"
)

// Carve is the outcome of CarveWeighted: n monotone cut points over m
// contiguous items. Cuts[j] is the index of the first item partition j
// owns (Cuts[0] is always 0; partition j spans [Cuts[j], Cuts[j+1]),
// the last one runs to m).
type Carve struct {
	Cuts []int
	// MaxWeight is the heaviest partition's weight under Cuts.
	MaxWeight float64
	// Moved counts items whose partition changed relative to the prev
	// cuts passed to CarveWeighted (0 when prev was nil).
	Moved int
}

// CarveWeighted splits m contiguous weighted items into n partitions,
// minimizing the maximum partition weight subject to monotone cuts —
// the traffic-aware generalization of CLUE's even count split (the
// range-partition objective of Sadeh et al.'s optimal-TCAM carve,
// restricted to contiguous ranges so the cut points still double as the
// Indexing Logic's range table).
//
// prev, when non-nil, must be a valid cut vector of the same shape
// (len n, prev[0] == 0, strictly increasing, every partition
// non-empty); maxMove then bounds the total cut movement — the number
// of items re-homed by adopting the new cuts — and the result is
// guaranteed never worse than prev: if the movement-bounded carve
// cannot reach a max weight <= prev's, prev is returned unchanged.
// maxMove <= 0 with a non-nil prev means "no movement allowed", which
// degenerates to prev.
//
// All-zero weights carry no signal, so the carve falls back to the
// even count split. Negative weights and m < n are errors.
func CarveWeighted(weights []float64, n int, prev []int, maxMove int) (Carve, error) {
	m := len(weights)
	if n < 1 {
		return Carve{}, fmt.Errorf("partition: need n >= 1, got %d", n)
	}
	if m < n {
		return Carve{}, fmt.Errorf("partition: %d items cannot fill %d partitions", m, n)
	}
	if prev != nil {
		if err := validCuts(prev, n, m); err != nil {
			return Carve{}, err
		}
	}
	// Prefix sums; reject negative weights on the way through.
	pre := make([]float64, m+1)
	maxItem := 0.0
	for i, w := range weights {
		if w < 0 {
			return Carve{}, fmt.Errorf("partition: negative weight %g at %d", w, i)
		}
		pre[i+1] = pre[i] + w
		if w > maxItem {
			maxItem = w
		}
	}
	total := pre[m]

	var ideal []int
	if total == 0 {
		ideal = evenCuts(m, n)
	} else {
		ideal = carveByCap(pre, n, capFor(pre, n, maxItem))
	}
	cuts := ideal
	if prev != nil {
		cuts = boundMovement(pre, prev, ideal, maxMove)
		// Never worse: a carve that raises the max partition weight over
		// what prev already achieves is not an improvement — keep prev.
		if maxCutWeight(pre, cuts) > maxCutWeight(pre, prev) {
			cuts = append([]int(nil), prev...)
		}
	}
	c := Carve{Cuts: cuts, MaxWeight: maxCutWeight(pre, cuts)}
	if prev != nil {
		c.Moved = movedItems(prev, cuts)
	}
	return c, nil
}

// validCuts checks the cut-vector shape CarveWeighted requires of prev.
func validCuts(cuts []int, n, m int) error {
	if len(cuts) != n {
		return fmt.Errorf("partition: prev has %d cuts, want %d", len(cuts), n)
	}
	if cuts[0] != 0 {
		return fmt.Errorf("partition: prev[0] must be 0, got %d", cuts[0])
	}
	for j := 1; j < n; j++ {
		if cuts[j] <= cuts[j-1] {
			return fmt.Errorf("partition: prev cuts not strictly increasing at %d", j)
		}
	}
	if cuts[n-1] >= m {
		return fmt.Errorf("partition: prev[%d] = %d leaves an empty last partition (m = %d)", n-1, cuts[n-1], m)
	}
	return nil
}

// evenCuts is the count split CLUE uses absent traffic information.
func evenCuts(m, n int) []int {
	cuts := make([]int, n)
	for j := 1; j < n; j++ {
		cuts[j] = j * m / n
	}
	return cuts
}

// capFor bisects the minimal feasible max-partition-weight. The answer
// lies in [max(heaviest item, total/n), total]; ~60 rounds pin it to
// float precision, and the final greedy placement uses a hair of slack
// so rounding in the prefix sums cannot flip feasibility.
func capFor(pre []float64, n int, maxItem float64) float64 {
	total := pre[len(pre)-1]
	lo := total / float64(n)
	if maxItem > lo {
		lo = maxItem
	}
	hi := total
	for i := 0; i < 60 && hi-lo > 1e-9*total; i++ {
		mid := lo + (hi-lo)/2
		if feasible(pre, n, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi * (1 + 1e-12)
}

// feasible reports whether n partitions of weight <= cap cover all
// items, each partition taking at least one item.
func feasible(pre []float64, n int, cap float64) bool {
	m := len(pre) - 1
	s := 0
	for j := 0; j < n; j++ {
		if s >= m {
			return true
		}
		e := furthest(pre, s, cap)
		// Leave at least one item per remaining partition.
		if room := m - (n - 1 - j); e > room {
			e = room
		}
		if e <= s {
			return false // single item over cap (cannot happen once cap >= maxItem)
		}
		s = e
	}
	return s >= m
}

// furthest returns the largest e with sum(weights[s:e]) <= cap.
func furthest(pre []float64, s int, cap float64) int {
	m := len(pre) - 1
	return s + sort.Search(m-s, func(k int) bool {
		return pre[s+k+1]-pre[s] > cap
	})
}

// carveByCap materializes the greedy cut vector for a feasible cap.
func carveByCap(pre []float64, n int, cap float64) []int {
	m := len(pre) - 1
	cuts := make([]int, n)
	s := 0
	for j := 0; j < n; j++ {
		cuts[j] = s
		e := furthest(pre, s, cap)
		if room := m - (n - 1 - j); e > room {
			e = room
		}
		if e <= s {
			e = s + 1
		}
		s = e
	}
	return cuts
}

// boundMovement pulls the ideal cuts back toward prev until the total
// cut movement fits maxMove. Every cut moves by the same fraction t of
// its ideal displacement, so the candidate stays a (rounded) convex
// combination of two strictly monotone cut vectors; the repair pass
// fixes the off-by-one gaps rounding can close. If repairs push the
// movement back over budget, t shrinks geometrically; t = 0 is prev
// itself, so the loop always terminates within budget.
func boundMovement(pre []float64, prev, ideal []int, maxMove int) []int {
	if maxMove < 0 {
		maxMove = 0
	}
	n, m := len(prev), len(pre)-1
	totalMove := 0
	for j := range prev {
		totalMove += abs(ideal[j] - prev[j])
	}
	if totalMove <= maxMove {
		return ideal
	}
	t := float64(maxMove) / float64(totalMove)
	cand := make([]int, n)
	for ; ; t *= 0.75 {
		if t < 1e-6 {
			return append(cand[:0], prev...)
		}
		cand[0] = 0
		for j := 1; j < n; j++ {
			d := float64(ideal[j]-prev[j]) * t
			c := prev[j] + int(roundHalfAway(d))
			if min := cand[j-1] + 1; c < min {
				c = min
			}
			if max := m - (n - j); c > max {
				c = max
			}
			cand[j] = c
		}
		if movedItems(prev, cand) <= maxMove {
			return cand
		}
	}
}

// movedItems bounds the items whose owning partition differs between
// two cut vectors of the same shape: the sum of boundary
// displacements. An item crossed by two boundaries counts twice, so
// this is an upper bound on distinct re-homed items — conservative in
// the direction MaxMoveFraction cares about.
func movedItems(a, b []int) int {
	moved := 0
	for j := 1; j < len(a); j++ {
		moved += abs(a[j] - b[j])
	}
	return moved
}

// maxCutWeight is the heaviest partition weight under cuts.
func maxCutWeight(pre []float64, cuts []int) float64 {
	m := len(pre) - 1
	max := 0.0
	for j := range cuts {
		end := m
		if j+1 < len(cuts) {
			end = cuts[j+1]
		}
		if w := pre[end] - pre[cuts[j]]; w > max {
			max = w
		}
	}
	return max
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func roundHalfAway(v float64) float64 {
	if v < 0 {
		return -roundHalfAway(-v)
	}
	return float64(int(v + 0.5))
}
