package partition

import (
	"math/rand"
	"testing"
)

// checkCarve asserts the structural contract every CarveWeighted result
// must satisfy: n monotone cuts starting at 0, full coverage of the m
// items, no empty partition.
func checkCarve(t *testing.T, c Carve, n, m int) {
	t.Helper()
	if len(c.Cuts) != n {
		t.Fatalf("got %d cuts, want %d", len(c.Cuts), n)
	}
	if c.Cuts[0] != 0 {
		t.Fatalf("cuts[0] = %d, want 0", c.Cuts[0])
	}
	for j := 1; j < n; j++ {
		if c.Cuts[j] <= c.Cuts[j-1] {
			t.Fatalf("cuts not strictly increasing at %d: %v", j, c.Cuts)
		}
	}
	if c.Cuts[n-1] >= m {
		t.Fatalf("last partition empty: cuts %v over %d items", c.Cuts, m)
	}
}

// prefixOf builds the prefix-sum vector the checks below share.
func prefixOf(w []float64) []float64 {
	pre := make([]float64, len(w)+1)
	for i, v := range w {
		pre[i+1] = pre[i] + v
	}
	return pre
}

// TestCarveWeightedProperties is the seeded randomized suite behind the
// rebalancer: random weight vectors (uniform, Zipf-ish spiky, sparse)
// carved fresh and then re-carved under a movement bound against a
// perturbed previous cut vector. Each trial asserts monotone full-range
// cuts, non-empty partitions, the MaxMoveFraction bound, and the
// never-worse guarantee (the movement-bounded re-carve's max partition
// weight <= the previous cuts' max).
func TestCarveWeightedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		m := 2 + rng.Intn(400)
		n := 1 + rng.Intn(8)
		if n > m {
			n = m
		}
		w := make([]float64, m)
		switch trial % 3 {
		case 0: // uniform noise
			for i := range w {
				w[i] = rng.Float64()
			}
		case 1: // spiky: a few hot items dominate
			for i := range w {
				w[i] = rng.Float64() * 0.01
			}
			for k := 0; k < 1+rng.Intn(4); k++ {
				w[rng.Intn(m)] += 50 + rng.Float64()*100
			}
		case 2: // sparse: most items cold
			for i := range w {
				if rng.Intn(10) == 0 {
					w[i] = rng.Float64() * 10
				}
			}
		}
		ideal, err := CarveWeighted(w, n, nil, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkCarve(t, ideal, n, m)
		pre := prefixOf(w)
		if got := maxCutWeight(pre, ideal.Cuts); got != ideal.MaxWeight {
			t.Fatalf("trial %d: reported MaxWeight %g, recomputed %g", trial, ideal.MaxWeight, got)
		}
		// The ideal carve can never beat the heaviest single item or the
		// perfect mean, and must never be worse than the even count split.
		even, err := CarveWeighted(nil2zero(m), n, nil, 0)
		if err != nil {
			t.Fatalf("trial %d: even carve: %v", trial, err)
		}
		if evenMax := maxCutWeight(pre, even.Cuts); ideal.MaxWeight > evenMax+1e-9 {
			t.Fatalf("trial %d: weighted carve max %g worse than even split %g", trial, ideal.MaxWeight, evenMax)
		}

		// Movement-bounded re-carve against a random valid previous cut
		// vector.
		prev := randomCuts(rng, m, n)
		maxMove := rng.Intn(m + 1)
		c, err := CarveWeighted(w, n, prev, maxMove)
		if err != nil {
			t.Fatalf("trial %d: bounded carve: %v", trial, err)
		}
		checkCarve(t, c, n, m)
		if c.Moved > maxMove {
			t.Fatalf("trial %d: moved %d items over budget %d (prev %v -> %v)", trial, c.Moved, maxMove, prev, c.Cuts)
		}
		if prevMax := maxCutWeight(pre, prev); c.MaxWeight > prevMax+1e-9 {
			t.Fatalf("trial %d: bounded carve max %g worse than prev %g", trial, c.MaxWeight, prevMax)
		}
	}
}

// nil2zero returns m zero weights — CarveWeighted's even-split
// fallback input.
func nil2zero(m int) []float64 { return make([]float64, m) }

// randomCuts builds a valid random cut vector: n-1 distinct interior
// cut points.
func randomCuts(rng *rand.Rand, m, n int) []int {
	cuts := []int{0}
	perm := rng.Perm(m - 1)
	for _, v := range perm[:n-1] {
		cuts = append(cuts, v+1)
	}
	cuts = append([]int(nil), cuts...)
	sortInts(cuts)
	return cuts
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TestCarveWeightedTwoRoutesFourWorkers pins the degenerate shape the
// serve runtime hits on tiny tables: more workers than routes is an
// error (the caller falls back to the even recut, which marks surplus
// workers empty), and exactly as many routes as workers carves one
// route each regardless of weight.
func TestCarveWeightedTwoRoutesFourWorkers(t *testing.T) {
	if _, err := CarveWeighted([]float64{1, 9}, 4, nil, 0); err == nil {
		t.Fatal("2 routes over 4 workers: want error, got nil")
	}
	c, err := CarveWeighted([]float64{1, 9, 3, 2}, 4, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCarve(t, c, 4, 4)
	for j, want := range []int{0, 1, 2, 3} {
		if c.Cuts[j] != want {
			t.Fatalf("m == n carve: cuts %v, want identity", c.Cuts)
		}
	}
	if c.MaxWeight != 9 {
		t.Fatalf("m == n carve: max weight %g, want 9", c.MaxWeight)
	}
}

// TestCarveWeightedSingleHotBucket pins the flash-crowd shape: all
// weight on one item. The hot item's partition must shrink to (close
// to) just that item, and the max weight equals the hot weight — no
// carve can split a single item.
func TestCarveWeightedSingleHotBucket(t *testing.T) {
	m, n := 64, 4
	w := make([]float64, m)
	w[17] = 1000
	c, err := CarveWeighted(w, n, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCarve(t, c, n, m)
	if c.MaxWeight != 1000 {
		t.Fatalf("max weight %g, want the hot item's 1000", c.MaxWeight)
	}
	// The hot item must not share its partition with any other weighted
	// item — trivially true here (all others are zero), so instead pin
	// that the carve isolates the hot item against light neighbors.
	for i := range w {
		w[i] = 1
	}
	w[17] = 1000
	c, err = CarveWeighted(w, n, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCarve(t, c, n, m)
	if c.MaxWeight > 1000+float64(m)/float64(n) {
		t.Fatalf("hot-bucket carve max %g, want ~1000 (hot item nearly isolated)", c.MaxWeight)
	}
}

// TestCarveWeightedZeroTotal pins the no-signal fallback: all-zero
// weights carve to the even count split.
func TestCarveWeightedZeroTotal(t *testing.T) {
	c, err := CarveWeighted(make([]float64, 100), 4, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []int{0, 25, 50, 75} {
		if c.Cuts[j] != want {
			t.Fatalf("zero-weight carve cuts %v, want even split", c.Cuts)
		}
	}
}

// TestCarveWeightedZeroMove pins maxMove = 0 with a prev vector: the
// carve must return prev exactly (no movement allowed).
func TestCarveWeightedZeroMove(t *testing.T) {
	w := []float64{10, 1, 1, 1, 1, 1, 1, 10}
	prev := []int{0, 2, 4, 6}
	c, err := CarveWeighted(w, 4, prev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Moved != 0 {
		t.Fatalf("moved %d items with a zero budget", c.Moved)
	}
	for j := range prev {
		if c.Cuts[j] != prev[j] {
			t.Fatalf("zero-move carve altered cuts: %v, want %v", c.Cuts, prev)
		}
	}
}

// TestCarveWeightedRejects pins the argument contract.
func TestCarveWeightedRejects(t *testing.T) {
	if _, err := CarveWeighted([]float64{1, 2}, 0, nil, 0); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := CarveWeighted([]float64{1, -2, 3}, 2, nil, 0); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := CarveWeighted([]float64{1, 2, 3}, 2, []int{0, 1, 2}, 4); err == nil {
		t.Error("misshapen prev accepted")
	}
	if _, err := CarveWeighted([]float64{1, 2, 3}, 2, []int{1, 2}, 4); err == nil {
		t.Error("prev[0] != 0 accepted")
	}
	if _, err := CarveWeighted([]float64{1, 2, 3}, 2, []int{0, 3}, 4); err == nil {
		t.Error("prev with empty last partition accepted")
	}
}
