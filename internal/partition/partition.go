// Package partition implements the three routing-table partitioning
// algorithms the paper compares (§III.A, Figure 9):
//
//   - CLUE: the compressed table is disjoint, so an inorder traversal
//     yields routes sorted by address range; cutting every ⌈M/n⌉ routes
//     gives exactly even partitions with zero redundancy, and the cut
//     points double as the Indexing Logic's range table.
//   - Sub-tree (CLPL, Lin et al.): carve the FIB trie into subtrees of
//     bounded size; covering routes on the path above each carved subtree
//     must be replicated into it so LPM inside the partition stays
//     correct — that replication is CLPL's static redundancy.
//   - ID-bit (SLPL / CoolCAMs bit-selection, Zane et al.): greedily pick
//     address bits whose values index 2^k buckets; prefixes shorter than
//     a selected bit position are replicated into both halves, and bucket
//     sizes end up uneven.
package partition

import (
	"fmt"
	"math"
	"sort"

	"clue/internal/ip"
	"clue/internal/trie"
)

// Partition is one TCAM partition: its routes, its address range (for
// range-indexed schemes) and how many of its routes are redundant copies.
type Partition struct {
	// ID is the partition's position in the layout.
	ID int
	// Routes are the entries stored in this partition, replicas included.
	Routes []ip.Route
	// Low and High bound the addresses this partition is responsible
	// for (meaningful for range-indexed schemes; zero otherwise).
	Low, High ip.Addr
	// Redundant counts routes that are copies of routes owned by another
	// partition (or by an ancestor scope).
	Redundant int
	// Root is the carved subtree's root prefix for sub-tree partitions
	// (the residual partition's root is the default route); unused by
	// the other schemes.
	Root ip.Prefix
}

// Size returns the partition's total entry count including replicas.
func (p Partition) Size() int { return len(p.Routes) }

// Result is the outcome of a partitioning run.
type Result struct {
	// Algorithm names the scheme ("clue", "subtree", "idbit").
	Algorithm string
	// Parts are the partitions in layout order.
	Parts []Partition
	// Bits holds the address bit positions the ID-bit scheme selected
	// (ascending); empty for the other schemes. Bucket i of an address
	// is formed by concatenating these bits' values.
	Bits []int
}

// TotalEntries sums partition sizes (replicas included).
func (r Result) TotalEntries() int {
	total := 0
	for _, p := range r.Parts {
		total += p.Size()
	}
	return total
}

// TotalRedundant sums replicated entries across partitions.
func (r Result) TotalRedundant() int {
	total := 0
	for _, p := range r.Parts {
		total += p.Redundant
	}
	return total
}

// MaxSize returns the largest partition size.
func (r Result) MaxSize() int {
	max := 0
	for _, p := range r.Parts {
		if p.Size() > max {
			max = p.Size()
		}
	}
	return max
}

// MinSize returns the smallest partition size.
func (r Result) MinSize() int {
	if len(r.Parts) == 0 {
		return 0
	}
	min := r.Parts[0].Size()
	for _, p := range r.Parts[1:] {
		if p.Size() < min {
			min = p.Size()
		}
	}
	return min
}

// Imbalance returns MaxSize/mean — 1.0 is a perfectly even split.
func (r Result) Imbalance() float64 {
	if len(r.Parts) == 0 || r.TotalEntries() == 0 {
		return 0
	}
	mean := float64(r.TotalEntries()) / float64(len(r.Parts))
	return float64(r.MaxSize()) / mean
}

// Index is the Indexing Logic's range table for CLUE partitions: it maps
// a destination address to the partition whose range contains it, by
// binary search over partition start addresses.
type Index struct {
	starts []ip.Addr
}

// Lookup returns the partition number responsible for addr.
func (ix *Index) Lookup(addr ip.Addr) int {
	// Find the last start <= addr.
	lo, hi := 0, len(ix.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ix.starts[mid] <= addr {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Len returns the number of indexed partitions.
func (ix *Index) Len() int { return len(ix.starts) }

// CLUE splits a disjoint route list into n even partitions and builds the
// range index. The routes must be sorted by address (as Table.Routes
// returns them) and pairwise disjoint; n must be in [1, len(routes)] —
// with fewer routes than partitions an error is returned.
func CLUE(routes []ip.Route, n int) (Result, *Index, error) {
	if n < 1 {
		return Result{}, nil, fmt.Errorf("partition: need n >= 1, got %d", n)
	}
	if len(routes) < n {
		return Result{}, nil, fmt.Errorf("partition: %d routes cannot fill %d partitions", len(routes), n)
	}
	for i := 1; i < len(routes); i++ {
		if routes[i-1].Prefix.Compare(routes[i].Prefix) >= 0 {
			return Result{}, nil, fmt.Errorf("partition: routes not sorted at %d", i)
		}
	}
	res := Result{Algorithm: "clue", Parts: make([]Partition, 0, n)}
	ix := &Index{starts: make([]ip.Addr, 0, n)}
	// Distribute remainder one-per-partition so sizes differ by at most 1.
	base, rem := len(routes)/n, len(routes)%n
	pos := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		chunk := routes[pos : pos+size]
		pos += size
		part := Partition{ID: i, Routes: chunk}
		if i == 0 {
			part.Low = 0
		} else {
			part.Low = chunk[0].Prefix.First()
		}
		if i == n-1 {
			part.High = ip.Addr(math.MaxUint32)
		} else {
			part.High = routes[pos].Prefix.First() - 1
		}
		ix.starts = append(ix.starts, part.Low)
		res.Parts = append(res.Parts, part)
	}
	return res, ix, nil
}

// SubTree implements CLPL's sub-tree partition over the (possibly
// overlapping) FIB trie: post-order carving of subtrees once they hold at
// least target = ⌈M/n⌉ routes, replicating covering ancestor routes into
// each carved partition. The residue at the root becomes the final
// partition. The number of produced partitions is data-dependent and
// roughly n.
func SubTree(fib *trie.Trie, n int) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("partition: need n >= 1, got %d", n)
	}
	if fib.Len() == 0 {
		return Result{}, fmt.Errorf("partition: empty table")
	}
	target := (fib.Len() + n - 1) / n
	c := &carver{target: target}
	rest := c.carve(fib.Root(), nil)
	if len(rest.routes) > 0 || len(c.parts) == 0 {
		c.emit(ip.Prefix{}, rest.routes, nil)
	}
	res := Result{Algorithm: "subtree", Parts: c.parts}
	return res, nil
}

// carver accumulates sub-tree partitions during the post-order walk.
type carver struct {
	target int
	parts  []Partition
}

// pending is the set of not-yet-carved routes in a subtree.
type pending struct {
	routes []ip.Route
}

// carve walks post-order. ancestors is the stack of routes on the path
// above n (the covering routes that must be replicated into any partition
// carved at or below n).
func (c *carver) carve(n *trie.Node, ancestors []ip.Route) pending {
	if n == nil {
		return pending{}
	}
	self := ancestors
	if n.Hop != ip.NoRoute {
		self = append(append([]ip.Route(nil), ancestors...), ip.Route{Prefix: n.Prefix, NextHop: n.Hop})
	}
	left := c.carve(n.Children[0], self)
	right := c.carve(n.Children[1], self)
	merged := pending{routes: append(left.routes, right.routes...)}
	if n.Hop != ip.NoRoute {
		merged.routes = append(merged.routes, ip.Route{Prefix: n.Prefix, NextHop: n.Hop})
	}
	if len(merged.routes) >= c.target {
		c.emit(n.Prefix, merged.routes, ancestors)
		return pending{}
	}
	return merged
}

// emit records a partition holding routes plus replicated covers.
func (c *carver) emit(root ip.Prefix, routes []ip.Route, covers []ip.Route) {
	part := Partition{ID: len(c.parts), Root: root, Routes: append([]ip.Route(nil), routes...)}
	for _, r := range covers {
		part.Routes = append(part.Routes, r)
		part.Redundant++
	}
	c.parts = append(c.parts, part)
}

// IDBit implements SLPL's bit-selection partitioning into 2^k buckets.
// Bits are chosen greedily (from the first 16 address bit positions) to
// minimise the largest bucket after each selection. Prefixes shorter than
// a chosen bit position are replicated into both halves.
func IDBit(routes []ip.Route, k int) (Result, error) {
	if k < 0 || k > 8 {
		return Result{}, fmt.Errorf("partition: idbit k must be in [0,8], got %d", k)
	}
	if len(routes) == 0 {
		return Result{}, fmt.Errorf("partition: empty table")
	}
	var chosen []int
	remaining := make([]int, 0, 16)
	for b := 0; b < 16; b++ {
		remaining = append(remaining, b)
	}
	for len(chosen) < k {
		bestBit, bestMax := -1, math.MaxInt
		for _, b := range remaining {
			max := maxBucket(routes, append(chosen, b))
			if max < bestMax {
				bestMax, bestBit = max, b
			}
		}
		chosen = append(chosen, bestBit)
		for i, b := range remaining {
			if b == bestBit {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	sort.Ints(chosen)
	parts := make([]Partition, 1<<k)
	for i := range parts {
		parts[i].ID = i
	}
	for _, r := range routes {
		ids := bucketIDs(r.Prefix, chosen)
		for _, id := range ids {
			parts[id].Routes = append(parts[id].Routes, r)
			if len(ids) > 1 {
				parts[id].Redundant++
			}
		}
		// Exactly one copy is the original; the rest are redundant.
		if len(ids) > 1 {
			parts[ids[0]].Redundant--
		}
	}
	return Result{Algorithm: "idbit", Parts: parts, Bits: chosen}, nil
}

// maxBucket sizes the largest bucket under a candidate bit set.
func maxBucket(routes []ip.Route, bits []int) int {
	counts := make(map[int]int)
	max := 0
	for _, r := range routes {
		for _, id := range bucketIDs(r.Prefix, bits) {
			counts[id]++
			if counts[id] > max {
				max = counts[id]
			}
		}
	}
	return max
}

// bucketIDs enumerates the buckets prefix p falls into: one per
// combination of values of the chosen bits that p leaves unspecified.
func bucketIDs(p ip.Prefix, bits []int) []int {
	ids := []int{0}
	for _, b := range bits {
		if b < int(p.Len) {
			v := int(p.Bits.Bit(b))
			for i := range ids {
				ids[i] = ids[i]<<1 | v
			}
			continue
		}
		// Unspecified bit: replicate into both halves.
		doubled := make([]int, 0, len(ids)*2)
		for _, id := range ids {
			doubled = append(doubled, id<<1, id<<1|1)
		}
		ids = doubled
	}
	return ids
}

// BucketOf returns the ID-bit bucket an address falls into under the
// given selected bit positions (ascending order, as Result.Bits).
func BucketOf(addr ip.Addr, bits []int) int {
	id := 0
	for _, b := range bits {
		id = id<<1 | int(addr.Bit(b))
	}
	return id
}
