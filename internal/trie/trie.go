// Package trie implements the binary (unibit) prefix trie that underpins
// every part of CLUE: the control plane keeps the original FIB in one, the
// ONRTC compressor derives the optimal non-overlapping table from it, the
// RRC-ME baseline walks it to compute minimal-expansion cache prefixes, and
// the partition algorithms traverse it to carve TCAM partitions.
//
// The trie models the control plane's SRAM-resident structure, so node
// visits are counted on the operations whose cost the paper charges to
// SRAM accesses (lookup, RRC-ME, update). Counting is owned by the caller
// through a Visits sink, keeping the trie itself free of global state.
package trie

import (
	"clue/internal/ip"
)

// Visits accumulates trie node touches. The paper prices control-plane
// work in SRAM accesses; every descended or inspected node adds one visit.
type Visits struct {
	// Nodes is the number of trie nodes touched.
	Nodes int
}

// add records n node touches; a nil receiver discards them so callers that
// don't care about accounting can pass nil.
func (v *Visits) add(n int) {
	if v != nil {
		v.Nodes += n
	}
}

// Node is a binary trie node. A node carries a route when Hop != NoRoute.
// The prefix a node represents is determined by its path from the root and
// stored explicitly to make walks and diff generation cheap.
type Node struct {
	// Children are the zero-bit and one-bit subtries; nil when absent.
	Children [2]*Node
	// Prefix is the address block this node represents.
	Prefix ip.Prefix
	// Hop is the route stored at this node, or NoRoute.
	Hop ip.NextHop
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Children[0] == nil && n.Children[1] == nil }

// Trie is a binary prefix trie mapping prefixes to next hops, supporting
// longest-prefix-match lookup and incremental update. The zero value is
// not usable; call New.
type Trie struct {
	root   *Node
	routes int
}

// New returns an empty trie.
func New() *Trie {
	return &Trie{root: &Node{Prefix: ip.Prefix{}}}
}

// Root exposes the root node for algorithms (compression, partitioning)
// that need structural access. Callers must not modify the returned
// subtree except through packages that document otherwise.
func (t *Trie) Root() *Node { return t.root }

// Len returns the number of routes stored.
func (t *Trie) Len() int { return t.routes }

// Insert adds or replaces the route for p, returning the previous next hop
// (NoRoute if p was absent) and the number of trie nodes visited.
func (t *Trie) Insert(p ip.Prefix, hop ip.NextHop, v *Visits) ip.NextHop {
	n := t.root
	v.add(1)
	for depth := 0; depth < int(p.Len); depth++ {
		bit := p.Bits.Bit(depth)
		if n.Children[bit] == nil {
			n.Children[bit] = &Node{Prefix: n.Prefix.Child(bit)}
		}
		n = n.Children[bit]
		v.add(1)
	}
	prev := n.Hop
	n.Hop = hop
	if prev == ip.NoRoute && hop != ip.NoRoute {
		t.routes++
	}
	return prev
}

// Delete removes the route for p, returning the removed next hop (NoRoute
// if p was not present). Nodes left empty and childless are pruned so the
// trie does not accumulate garbage under heavy update churn.
func (t *Trie) Delete(p ip.Prefix, v *Visits) ip.NextHop {
	// Record the descent path so empty nodes can be pruned bottom-up.
	path := make([]*Node, 0, int(p.Len)+1)
	n := t.root
	v.add(1)
	path = append(path, n)
	for depth := 0; depth < int(p.Len); depth++ {
		bit := p.Bits.Bit(depth)
		n = n.Children[bit]
		if n == nil {
			return ip.NoRoute
		}
		v.add(1)
		path = append(path, n)
	}
	prev := n.Hop
	if prev == ip.NoRoute {
		return ip.NoRoute
	}
	n.Hop = ip.NoRoute
	t.routes--
	// Prune childless, route-less nodes up to (but excluding) the root.
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if !cur.IsLeaf() || cur.Hop != ip.NoRoute {
			break
		}
		parent := path[i-1]
		bit := cur.Prefix.Bits.Bit(int(cur.Prefix.Len) - 1)
		parent.Children[bit] = nil
	}
	return prev
}

// Lookup performs longest-prefix match on addr, returning the matched
// route's next hop (NoRoute if nothing matches) and the matching prefix.
func (t *Trie) Lookup(addr ip.Addr, v *Visits) (ip.NextHop, ip.Prefix) {
	n := t.root
	v.add(1)
	best := ip.NoRoute
	bestPfx := ip.Prefix{}
	if n.Hop != ip.NoRoute {
		best, bestPfx = n.Hop, n.Prefix
	}
	for depth := 0; depth < ip.AddrBits; depth++ {
		n = n.Children[addr.Bit(depth)]
		if n == nil {
			break
		}
		v.add(1)
		if n.Hop != ip.NoRoute {
			best, bestPfx = n.Hop, n.Prefix
		}
	}
	return best, bestPfx
}

// Get returns the next hop stored exactly at p (not via LPM), or NoRoute.
func (t *Trie) Get(p ip.Prefix, v *Visits) ip.NextHop {
	n := t.Find(p, v)
	if n == nil {
		return ip.NoRoute
	}
	return n.Hop
}

// Find returns the node exactly at p, or nil if the path does not exist.
func (t *Trie) Find(p ip.Prefix, v *Visits) *Node {
	n := t.root
	v.add(1)
	for depth := 0; depth < int(p.Len); depth++ {
		n = n.Children[p.Bits.Bit(depth)]
		if n == nil {
			return nil
		}
		v.add(1)
	}
	return n
}

// InsertWithCover is Insert fused with FindWithCover: one walk that
// inserts the route and reports the node at p together with the hop
// inherited from p's strict ancestors. The ONRTC updater uses it to avoid
// a second descent.
func (t *Trie) InsertWithCover(p ip.Prefix, hop ip.NextHop, v *Visits) (prev ip.NextHop, n *Node, inh ip.NextHop) {
	n = t.root
	v.add(1)
	inh = ip.NoRoute
	for depth := 0; depth < int(p.Len); depth++ {
		if n.Hop != ip.NoRoute {
			inh = n.Hop
		}
		bit := p.Bits.Bit(depth)
		if n.Children[bit] == nil {
			n.Children[bit] = &Node{Prefix: n.Prefix.Child(bit)}
		}
		n = n.Children[bit]
		v.add(1)
	}
	prev = n.Hop
	n.Hop = hop
	if prev == ip.NoRoute && hop != ip.NoRoute {
		t.routes++
	}
	return prev, n, inh
}

// DeleteWithCover is Delete fused with FindWithCover: it removes the
// route at p (pruning emptied nodes) and reports the surviving node at p
// (nil if pruned or absent) plus the hop inherited from p's strict
// ancestors.
func (t *Trie) DeleteWithCover(p ip.Prefix, v *Visits) (prev ip.NextHop, n *Node, inh ip.NextHop) {
	path := make([]*Node, 0, int(p.Len)+1)
	cur := t.root
	v.add(1)
	path = append(path, cur)
	inh = ip.NoRoute
	for depth := 0; depth < int(p.Len); depth++ {
		if cur.Hop != ip.NoRoute {
			inh = cur.Hop
		}
		cur = cur.Children[p.Bits.Bit(depth)]
		if cur == nil {
			return ip.NoRoute, nil, inh
		}
		v.add(1)
		path = append(path, cur)
	}
	prev = cur.Hop
	if prev == ip.NoRoute {
		return ip.NoRoute, cur, inh
	}
	cur.Hop = ip.NoRoute
	t.routes--
	n = cur
	for i := len(path) - 1; i > 0; i-- {
		node := path[i]
		if !node.IsLeaf() || node.Hop != ip.NoRoute {
			break
		}
		parent := path[i-1]
		bit := node.Prefix.Bits.Bit(int(node.Prefix.Len) - 1)
		parent.Children[bit] = nil
		if node == n {
			n = nil
		}
	}
	return prev, n, inh
}

// FindWithCover descends to p in a single walk, returning the node at p
// (nil if the path stops early) and the next hop inherited from p's
// strict ancestors. It does the combined work of Find and CoveringHop at
// one walk's cost.
func (t *Trie) FindWithCover(p ip.Prefix, v *Visits) (*Node, ip.NextHop) {
	n := t.root
	v.add(1)
	inh := ip.NoRoute
	for depth := 0; depth < int(p.Len); depth++ {
		if n.Hop != ip.NoRoute {
			inh = n.Hop
		}
		n = n.Children[p.Bits.Bit(depth)]
		if n == nil {
			return nil, inh
		}
		v.add(1)
	}
	return n, inh
}

// CoveringHop returns the next hop inherited at prefix p from the longest
// strict ancestor route of p (the hop packets would fall through to if p
// itself had no route), along with that ancestor's prefix.
func (t *Trie) CoveringHop(p ip.Prefix, v *Visits) (ip.NextHop, ip.Prefix) {
	n := t.root
	v.add(1)
	best := ip.NoRoute
	bestPfx := ip.Prefix{}
	if n.Hop != ip.NoRoute && p.Len > 0 {
		best, bestPfx = n.Hop, n.Prefix
	}
	for depth := 0; depth < int(p.Len)-1; depth++ {
		n = n.Children[p.Bits.Bit(depth)]
		if n == nil {
			break
		}
		v.add(1)
		if n.Hop != ip.NoRoute {
			best, bestPfx = n.Hop, n.Prefix
		}
	}
	return best, bestPfx
}

// WalkRoutes visits every stored route in inorder (ascending Prefix.Compare
// order: by address, covering prefixes first). The walk stops early if fn
// returns false.
func (t *Trie) WalkRoutes(fn func(ip.Route) bool) {
	walkRoutes(t.root, fn)
}

func walkRoutes(n *Node, fn func(ip.Route) bool) bool {
	if n == nil {
		return true
	}
	if n.Hop != ip.NoRoute {
		if !fn(ip.Route{Prefix: n.Prefix, NextHop: n.Hop}) {
			return false
		}
	}
	return walkRoutes(n.Children[0], fn) && walkRoutes(n.Children[1], fn)
}

// Routes returns all stored routes in inorder.
func (t *Trie) Routes() []ip.Route {
	out := make([]ip.Route, 0, t.routes)
	t.WalkRoutes(func(r ip.Route) bool {
		out = append(out, r)
		return true
	})
	return out
}

// FromRoutes builds a trie containing the given routes. Later duplicates
// of the same prefix overwrite earlier ones, matching FIB semantics.
func FromRoutes(routes []ip.Route) *Trie {
	t := New()
	for _, r := range routes {
		t.Insert(r.Prefix, r.NextHop, nil)
	}
	return t
}

// NodeCount returns the total number of allocated trie nodes, including
// internal nodes without routes. It is an SRAM-footprint proxy.
func (t *Trie) NodeCount() int {
	return countNodes(t.root)
}

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Children[0]) + countNodes(n.Children[1])
}

// MaxDepth returns the length of the longest stored prefix.
func (t *Trie) MaxDepth() int {
	max := 0
	t.WalkRoutes(func(r ip.Route) bool {
		if int(r.Prefix.Len) > max {
			max = int(r.Prefix.Len)
		}
		return true
	})
	return max
}

// Overlapping reports whether any stored route's prefix covers another
// stored route's prefix. ONRTC output must make this false.
func (t *Trie) Overlapping() bool {
	return overlapping(t.root, false)
}

func overlapping(n *Node, ancestorHasRoute bool) bool {
	if n == nil {
		return false
	}
	if n.Hop != ip.NoRoute && ancestorHasRoute {
		return true
	}
	has := ancestorHasRoute || n.Hop != ip.NoRoute
	return overlapping(n.Children[0], has) || overlapping(n.Children[1], has)
}

// Clone returns a deep copy of the trie. The engine uses clones so that
// baseline and CLUE pipelines mutate independent state.
func (t *Trie) Clone() *Trie {
	return &Trie{root: cloneNode(t.root), routes: t.routes}
}

func cloneNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := &Node{Prefix: n.Prefix, Hop: n.Hop}
	c.Children[0] = cloneNode(n.Children[0])
	c.Children[1] = cloneNode(n.Children[1])
	return c
}
