package trie

import (
	"math/rand"
	"sort"
	"testing"

	"clue/internal/ip"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }
func addr(s string) ip.Addr  { return ip.MustParseAddr(s) }

func TestEmptyTrie(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("empty trie Len = %d", tr.Len())
	}
	hop, _ := tr.Lookup(addr("1.2.3.4"), nil)
	if hop != ip.NoRoute {
		t.Errorf("lookup in empty trie = %d, want NoRoute", hop)
	}
	if tr.Overlapping() {
		t.Error("empty trie reports overlapping")
	}
}

func TestInsertLookup(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("10.1.0.0/16"), 2, nil)
	tr.Insert(pfx("0.0.0.0/0"), 9, nil)

	tests := []struct {
		addr string
		want ip.NextHop
		via  string
	}{
		{addr: "10.1.2.3", want: 2, via: "10.1.0.0/16"},
		{addr: "10.2.0.1", want: 1, via: "10.0.0.0/8"},
		{addr: "11.0.0.1", want: 9, via: "0.0.0.0/0"},
	}
	for _, tt := range tests {
		hop, via := tr.Lookup(addr(tt.addr), nil)
		if hop != tt.want || via.String() != tt.via {
			t.Errorf("Lookup(%s) = (%d, %s), want (%d, %s)", tt.addr, hop, via, tt.want, tt.via)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New()
	if prev := tr.Insert(pfx("10.0.0.0/8"), 1, nil); prev != ip.NoRoute {
		t.Errorf("first insert prev = %d", prev)
	}
	if prev := tr.Insert(pfx("10.0.0.0/8"), 5, nil); prev != 1 {
		t.Errorf("replace prev = %d, want 1", prev)
	}
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", tr.Len())
	}
	hop, _ := tr.Lookup(addr("10.0.0.1"), nil)
	if hop != 5 {
		t.Errorf("lookup after replace = %d, want 5", hop)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("10.1.0.0/16"), 2, nil)

	if got := tr.Delete(pfx("10.1.0.0/16"), nil); got != 2 {
		t.Errorf("Delete returned %d, want 2", got)
	}
	hop, _ := tr.Lookup(addr("10.1.2.3"), nil)
	if hop != 1 {
		t.Errorf("lookup after delete = %d, want 1 (fall back to /8)", hop)
	}
	if got := tr.Delete(pfx("10.1.0.0/16"), nil); got != ip.NoRoute {
		t.Errorf("double delete returned %d, want NoRoute", got)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestDeletePrunesNodes(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.1.0.0/16"), 2, nil)
	before := tr.NodeCount()
	tr.Delete(pfx("10.1.0.0/16"), nil)
	after := tr.NodeCount()
	if after != 1 {
		t.Errorf("NodeCount after deleting only route = %d (before %d), want 1 (root)", after, before)
	}
}

func TestDeleteKeepsNeededNodes(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("10.1.0.0/16"), 2, nil)
	tr.Delete(pfx("10.0.0.0/8"), nil)
	hop, _ := tr.Lookup(addr("10.1.0.1"), nil)
	if hop != 2 {
		t.Errorf("child route lost after deleting ancestor: hop = %d", hop)
	}
}

func TestDeleteAbsentPath(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	if got := tr.Delete(pfx("192.168.0.0/16"), nil); got != ip.NoRoute {
		t.Errorf("delete of absent prefix = %d", got)
	}
	if tr.Len() != 1 {
		t.Errorf("Len changed by absent delete: %d", tr.Len())
	}
}

func TestGetExact(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	if got := tr.Get(pfx("10.0.0.0/8"), nil); got != 1 {
		t.Errorf("Get exact = %d, want 1", got)
	}
	if got := tr.Get(pfx("10.0.0.0/9"), nil); got != ip.NoRoute {
		t.Errorf("Get non-stored = %d, want NoRoute", got)
	}
}

func TestCoveringHop(t *testing.T) {
	tr := New()
	tr.Insert(pfx("0.0.0.0/0"), 9, nil)
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("10.1.0.0/16"), 2, nil)

	hop, via := tr.CoveringHop(pfx("10.1.0.0/16"), nil)
	if hop != 1 || via.String() != "10.0.0.0/8" {
		t.Errorf("CoveringHop(/16) = (%d, %s), want (1, 10.0.0.0/8)", hop, via)
	}
	hop, via = tr.CoveringHop(pfx("10.0.0.0/8"), nil)
	if hop != 9 || via.String() != "0.0.0.0/0" {
		t.Errorf("CoveringHop(/8) = (%d, %s), want (9, 0.0.0.0/0)", hop, via)
	}
	// The covering hop of the default route itself is nothing.
	hop, _ = tr.CoveringHop(ip.Prefix{}, nil)
	if hop != ip.NoRoute {
		t.Errorf("CoveringHop(/0) = %d, want NoRoute", hop)
	}
}

func TestWalkRoutesOrder(t *testing.T) {
	tr := New()
	routes := []string{"192.0.2.0/24", "10.0.0.0/8", "10.0.0.0/16", "11.0.0.0/8"}
	for i, s := range routes {
		tr.Insert(pfx(s), ip.NextHop(i+1), nil)
	}
	got := tr.Routes()
	if len(got) != len(routes) {
		t.Fatalf("Routes len = %d, want %d", len(got), len(routes))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Prefix.Compare(got[i].Prefix) >= 0 {
			t.Errorf("Routes not in inorder: %s before %s", got[i-1].Prefix, got[i].Prefix)
		}
	}
}

func TestWalkRoutesEarlyStop(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("11.0.0.0/8"), 2, nil)
	count := 0
	tr.WalkRoutes(func(ip.Route) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early-stopped walk visited %d routes, want 1", count)
	}
}

func TestOverlapping(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("11.0.0.0/8"), 2, nil)
	if tr.Overlapping() {
		t.Error("disjoint routes reported overlapping")
	}
	tr.Insert(pfx("10.1.0.0/16"), 3, nil)
	if !tr.Overlapping() {
		t.Error("nested routes not reported overlapping")
	}
}

func TestVisitsAccounting(t *testing.T) {
	tr := New()
	var v Visits
	tr.Insert(pfx("10.0.0.0/8"), 1, &v)
	if v.Nodes != 9 { // root + 8 descents
		t.Errorf("insert visits = %d, want 9", v.Nodes)
	}
	v = Visits{}
	tr.Lookup(addr("10.0.0.1"), &v)
	if v.Nodes < 9 {
		t.Errorf("lookup visits = %d, want >= 9", v.Nodes)
	}
	// nil sink must not panic.
	tr.Lookup(addr("10.0.0.1"), nil)
}

func TestFromRoutesDuplicateOverwrites(t *testing.T) {
	tr := FromRoutes([]ip.Route{
		{Prefix: pfx("10.0.0.0/8"), NextHop: 1},
		{Prefix: pfx("10.0.0.0/8"), NextHop: 7},
	})
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	hop, _ := tr.Lookup(addr("10.0.0.1"), nil)
	if hop != 7 {
		t.Errorf("duplicate route did not overwrite: hop = %d", hop)
	}
}

func TestClone(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	c := tr.Clone()
	c.Insert(pfx("10.0.0.0/8"), 5, nil)
	c.Insert(pfx("11.0.0.0/8"), 2, nil)
	hop, _ := tr.Lookup(addr("10.0.0.1"), nil)
	if hop != 1 {
		t.Error("mutating clone changed original")
	}
	if tr.Len() != 1 || c.Len() != 2 {
		t.Errorf("Len original %d clone %d, want 1 and 2", tr.Len(), c.Len())
	}
}

func TestMaxDepth(t *testing.T) {
	tr := New()
	if tr.MaxDepth() != 0 {
		t.Errorf("empty MaxDepth = %d", tr.MaxDepth())
	}
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("192.0.2.128/25"), 2, nil)
	if tr.MaxDepth() != 25 {
		t.Errorf("MaxDepth = %d, want 25", tr.MaxDepth())
	}
}

// referenceLPM does longest-prefix match by linear scan, as ground truth.
func referenceLPM(routes []ip.Route, a ip.Addr) ip.NextHop {
	best := ip.NoRoute
	bestLen := -1
	for _, r := range routes {
		if r.Prefix.Contains(a) && int(r.Prefix.Len) > bestLen {
			best, bestLen = r.NextHop, int(r.Prefix.Len)
		}
	}
	return best
}

// Property: trie LPM agrees with linear-scan LPM on random tables.
func TestLookupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		seen := map[ip.Prefix]bool{}
		var routes []ip.Route
		for i := 0; i < 200; i++ {
			p := ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(25)+8)
			if seen[p] {
				continue
			}
			seen[p] = true
			routes = append(routes, ip.Route{Prefix: p, NextHop: ip.NextHop(rng.Intn(16) + 1)})
		}
		tr := FromRoutes(routes)
		for i := 0; i < 500; i++ {
			a := ip.Addr(rng.Uint32())
			got, _ := tr.Lookup(a, nil)
			want := referenceLPM(routes, a)
			if got != want {
				t.Fatalf("trial %d: Lookup(%s) = %d, want %d", trial, a, got, want)
			}
		}
	}
}

// Property: random interleaved inserts and deletes keep the trie
// consistent with a map-based model.
func TestRandomOpsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New()
	model := map[ip.Prefix]ip.NextHop{}
	// Work over a small universe so deletes frequently hit.
	universe := make([]ip.Prefix, 0, 64)
	for i := 0; i < 64; i++ {
		universe = append(universe, ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(17)+8))
	}
	for op := 0; op < 5000; op++ {
		p := universe[rng.Intn(len(universe))]
		if rng.Intn(2) == 0 {
			hop := ip.NextHop(rng.Intn(8) + 1)
			tr.Insert(p, hop, nil)
			model[p] = hop
		} else {
			tr.Delete(p, nil)
			delete(model, p)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", tr.Len(), len(model))
	}
	var want []ip.Route
	for p, h := range model {
		want = append(want, ip.Route{Prefix: p, NextHop: h})
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Prefix.Compare(want[j].Prefix) < 0 })
	got := tr.Routes()
	if len(got) != len(want) {
		t.Fatalf("Routes len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("route %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNodeCount(t *testing.T) {
	tr := New()
	if tr.NodeCount() != 1 {
		t.Errorf("empty NodeCount = %d, want 1", tr.NodeCount())
	}
	tr.Insert(pfx("128.0.0.0/1"), 1, nil)
	if tr.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", tr.NodeCount())
	}
}

func TestRootHopLookup(t *testing.T) {
	tr := New()
	tr.Insert(ip.Prefix{}, 4, nil)
	hop, via := tr.Lookup(addr("8.8.8.8"), nil)
	if hop != 4 || via != (ip.Prefix{}) {
		t.Errorf("default-route lookup = (%d, %s)", hop, via)
	}
}
