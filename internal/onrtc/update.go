package onrtc

import (
	"clue/internal/ip"
	"clue/internal/trie"
)

// Diff is the outcome of applying one routing update: the control-plane
// trie work performed (Visits, priced as SRAM accesses for TTF1) and the
// compressed-table operations the data plane must apply to TCAM (TTF2)
// and to the DRed caches (TTF3).
type Diff struct {
	// Ops are the compressed-table changes, already applied to the
	// Updater's table. The table is disjoint, so replay order cannot
	// make an unrelated entry match wrongly.
	Ops []Op
	// Visits counts control-plane trie node touches for this update.
	Visits trie.Visits
}

// Updater maintains a FIB trie and its ONRTC-compressed table in lockstep,
// translating announce/withdraw messages into minimal compressed-table
// diffs.
//
// The update algorithm is path-local, which is what makes TTF1 cheap: an
// update at prefix p touches the FIB path to p, the FIB subtree under p,
// the compressed-trie path to p and the compressed routes inside p — never
// a full covering region. Two cases:
//
//   - A compressed route c strictly covers p ("split" case): c's whole
//     block forwarded uniformly, so the new representation is c's hop on
//     the sibling chain between c and p plus the re-derived representation
//     of p itself. If p still forwards as c did, nothing changes at all.
//   - No compressed route covers p ("local" case): the routes inside p
//     are replaced by p's re-derived representation; if that is a single
//     route, it may merge upward with uniform same-hop sibling blocks,
//     cascading toward the root (each step retiring one sibling route).
type Updater struct {
	fib   *trie.Trie
	table *Table
}

// NewUpdater wraps an existing FIB and its compressed table. The table
// must have been produced by Compress on exactly this FIB; both are owned
// by the updater afterwards.
func NewUpdater(fib *trie.Trie, table *Table) *Updater {
	return &Updater{fib: fib, table: table}
}

// BuildUpdater compresses fib and returns an updater managing both. The
// fib trie is owned by the updater afterwards.
func BuildUpdater(fib *trie.Trie) *Updater {
	return &Updater{fib: fib, table: Compress(fib)}
}

// FIB returns the managed original-route trie (read-only for callers).
func (u *Updater) FIB() *trie.Trie { return u.fib }

// Table returns the managed compressed table (read-only for callers).
func (u *Updater) Table() *Table { return u.table }

// Announce applies a route announcement (new route or next-hop change)
// and returns the compressed-table diff.
func (u *Updater) Announce(p ip.Prefix, hop ip.NextHop) Diff {
	var d Diff
	prev, node, inh := u.fib.InsertWithCover(p, hop, &d.Visits)
	if prev == hop {
		// Idempotent re-announcement: the forwarding function is
		// unchanged, so the compressed table is too.
		return d
	}
	u.refresh(p, node, inh, &d)
	return d
}

// Withdraw applies a route withdrawal and returns the compressed-table
// diff. Withdrawing an absent prefix is a no-op.
func (u *Updater) Withdraw(p ip.Prefix) Diff {
	var d Diff
	prev, node, inh := u.fib.DeleteWithCover(p, &d.Visits)
	if prev == ip.NoRoute {
		return d
	}
	u.refresh(p, node, inh, &d)
	return d
}

// refresh re-derives the compressed representation around p after the FIB
// changed inside p, emits the diff ops and applies them to the table.
// node is the FIB node at p (nil when empty) and inh the hop p inherits
// from its FIB ancestors, both captured during the update walk itself.
func (u *Updater) refresh(p ip.Prefix, node *trie.Node, inh ip.NextHop, d *Diff) {
	var fresh []ip.Route
	hop, uniform := compressNode(node, p, inh, &fresh, &d.Visits)
	if uniform {
		fresh = nil
		if hop != ip.NoRoute {
			fresh = []ip.Route{{Prefix: p, NextHop: hop}}
		}
	}

	// Find what the compressed table currently says about p: either a
	// strictly covering route (split case) or the routes inside p. The
	// walked path doubles as the merge phase's sibling probe.
	cover, coverHop, path := u.coveringCompRoute(p, &d.Visits)
	if coverHop != ip.NoRoute && cover.Len < p.Len {
		u.splitCover(p, cover, coverHop, fresh, uniform, hop, d)
	} else {
		u.localReplace(p, path, fresh, uniform, hop, d)
	}

	for _, op := range d.Ops {
		switch op.Kind {
		case OpInsert, OpModify:
			u.table.comp.Insert(op.Route.Prefix, op.Route.NextHop, nil)
		case OpDelete:
			u.table.comp.Delete(op.Route.Prefix, nil)
		}
	}
}

// splitCover handles an update under a compressed route c that strictly
// covers p. If p's region still forwards uniformly as c does, nothing
// changes. Otherwise c splits: c is deleted, c's hop is re-emitted on the
// sibling chain between c and p, and p's new representation fills p.
// The split leaves region c mixed, so no upward merge is possible.
func (u *Updater) splitCover(p, cover ip.Prefix, coverHop ip.NextHop, fresh []ip.Route, uniform bool, hop ip.NextHop, d *Diff) {
	if uniform && hop == coverHop {
		return
	}
	d.Ops = append(d.Ops, Op{Kind: OpDelete, Route: ip.Route{Prefix: cover, NextHop: coverHop}})
	// Walk from cover down to p, covering each off-path sibling with
	// c's hop.
	for q := p; q.Len > cover.Len; q = q.Parent() {
		d.Ops = append(d.Ops, Op{Kind: OpInsert, Route: ip.Route{Prefix: q.Sibling(), NextHop: coverHop}})
	}
	for _, r := range fresh {
		d.Ops = append(d.Ops, Op{Kind: OpInsert, Route: r})
	}
}

// localReplace handles an update with no covering compressed route: the
// compressed routes inside p (rooted at the walked path's last node) are
// replaced by p's new representation; a uniform single-route result may
// then merge upward through same-hop sibling blocks. path holds the
// compressed-trie nodes from the root toward p (it may stop early), so
// each sibling probe is a single child access instead of a root walk.
func (u *Updater) localReplace(p ip.Prefix, path []*trie.Node, fresh []ip.Route, uniform bool, hop ip.NextHop, d *Diff) {
	var old []ip.Route
	if len(path) == int(p.Len)+1 {
		collect(path[len(path)-1], &old, &d.Visits)
	}

	if !uniform || hop == ip.NoRoute {
		d.Ops = append(d.Ops, diffRoutes(old, fresh)...)
		return
	}

	// Uniform single-route result: try to merge upward. Each step
	// retires the sibling's exact route (the only way a sibling block
	// can be uniform here — a route covering it from above would cover p
	// too, contradicting the no-cover precondition). A sibling block is
	// uniform exactly when its node is a route leaf; a missing node is
	// empty space (hopless), which never merges.
	anchor := p
	var retired []ip.Route
	for anchor.Len > 0 {
		parentDepth := int(anchor.Len) - 1
		if parentDepth >= len(path) {
			break
		}
		sib := anchor.Sibling()
		sibNode := path[parentDepth].Children[sib.Bits.Bit(parentDepth)]
		if d != nil {
			d.Visits.Nodes++
		}
		if sibNode == nil || sibNode.Hop != hop {
			break
		}
		retired = append(retired, ip.Route{Prefix: sib, NextHop: sibNode.Hop})
		anchor = anchor.Parent()
	}
	fresh = []ip.Route{{Prefix: anchor, NextHop: hop}}
	d.Ops = append(d.Ops, diffRoutes(old, fresh)...)
	for _, r := range retired {
		d.Ops = append(d.Ops, Op{Kind: OpDelete, Route: r})
	}
}

// coveringCompRoute walks the compressed trie toward p. If a route covers
// p strictly it is returned (and the path is irrelevant — nothing exists
// below a route). Otherwise the walked node path is returned: its last
// node roots p's compressed content when the walk reached depth len(p),
// and its interior nodes serve as the merge phase's sibling probes.
func (u *Updater) coveringCompRoute(p ip.Prefix, v *trie.Visits) (ip.Prefix, ip.NextHop, []*trie.Node) {
	n := u.table.comp.Root()
	if v != nil {
		v.Nodes++
	}
	path := make([]*trie.Node, 0, int(p.Len)+1)
	path = append(path, n)
	for depth := 0; depth < int(p.Len); depth++ {
		if n.Hop != ip.NoRoute {
			return n.Prefix, n.Hop, nil
		}
		n = n.Children[p.Bits.Bit(depth)]
		if n == nil {
			return ip.Prefix{}, ip.NoRoute, path
		}
		if v != nil {
			v.Nodes++
		}
		path = append(path, n)
	}
	return ip.Prefix{}, ip.NoRoute, path
}

// diffRoutes computes the op list transforming route set old into fresh.
// Both inputs list disjoint prefixes; a prefix present in both with a
// different hop becomes a single in-place modify (one TCAM write, no
// entry movement).
func diffRoutes(old, fresh []ip.Route) []Op {
	if len(old) == 0 && len(fresh) == 0 {
		return nil
	}
	prevHops := make(map[ip.Prefix]ip.NextHop, len(old))
	for _, r := range old {
		prevHops[r.Prefix] = r.NextHop
	}
	kept := make(map[ip.Prefix]bool, len(fresh))
	ops := make([]Op, 0, len(old)+len(fresh))
	for _, r := range fresh {
		prev, ok := prevHops[r.Prefix]
		switch {
		case !ok:
			ops = append(ops, Op{Kind: OpInsert, Route: r})
		case prev != r.NextHop:
			ops = append(ops, Op{Kind: OpModify, Route: r})
			kept[r.Prefix] = true
		default:
			// Unchanged entry; keep it out of the delete set.
			kept[r.Prefix] = true
		}
	}
	// Iterate old (not the map) so delete order is deterministic.
	for _, r := range old {
		if !kept[r.Prefix] {
			ops = append(ops, Op{Kind: OpDelete, Route: r})
		}
	}
	return ops
}
