package onrtc

import (
	"math/bits"

	"clue/internal/ip"
	"clue/internal/trie"
)

// ORTC computes the classic Optimal Routing Table Constructor result
// (Draves, King, Venkatachary & Zill, INFOCOM 1999): the smallest table
// — overlaps allowed — whose longest-prefix-match function equals fib's.
// It is the compression baseline the paper's related work compares ONRTC
// against: ORTC compresses harder, but its output still overlaps, so it
// inherits every TCAM problem (length ordering, priority encoder, domino
// updates) that ONRTC eliminates.
//
// The implementation is the standard three passes fused into two
// recursions over a shadow tree, with candidate next-hop sets as bit
// masks (bit 0 encodes "no route", so partially covered tables work: a
// bit-0 emission below a covering route becomes an explicit null entry,
// counted like any other, which is how a TCAM would realise it).
//
// Next hops must be < 64 for the mask representation; larger hop spaces
// return ok=false.
func ORTC(fib *trie.Trie) (routes []ip.Route, ok bool) {
	maxHop := ip.NextHop(0)
	fib.WalkRoutes(func(r ip.Route) bool {
		if r.NextHop > maxHop {
			maxHop = r.NextHop
		}
		return true
	})
	if maxHop >= 64 {
		return nil, false
	}
	shadow := buildMasks(fib.Root(), ip.NoRoute)
	emitORTC(shadow, ip.Prefix{}, ip.NoRoute, false, &routes)
	return routes, true
}

// maskNode is the shadow tree: candidate hop sets from the bottom-up
// pass (Draves' pass 2, with pass 1's inheritance folded in).
type maskNode struct {
	mask     uint64
	children [2]*maskNode
}

// hopBit encodes a next hop (or NoRoute) as a mask bit.
func hopBit(h ip.NextHop) uint64 { return 1 << uint64(h) }

// buildMasks runs the bottom-up candidate-set computation: a missing
// subtree is a leaf inheriting the covering hop; an internal node's set
// is the intersection of its children's when non-empty, else the union.
func buildMasks(n *trie.Node, inh ip.NextHop) *maskNode {
	if n == nil {
		return &maskNode{mask: hopBit(inh)}
	}
	if n.Hop != ip.NoRoute {
		inh = n.Hop
	}
	if n.IsLeaf() {
		return &maskNode{mask: hopBit(inh)}
	}
	l := buildMasks(n.Children[0], inh)
	r := buildMasks(n.Children[1], inh)
	m := l.mask & r.mask
	if m == 0 {
		m = l.mask | r.mask
	}
	return &maskNode{mask: m, children: [2]*maskNode{l, r}}
}

// emitORTC is the top-down selection pass: a node inherits the selection
// of its nearest emitting ancestor; if that selection is in the node's
// candidate set nothing is emitted here, otherwise the node emits one of
// its candidates and that becomes the selection below.
//
// haveSel distinguishes "no ancestor emitted anything" from "ancestor
// emitted the null route": at the root nothing is selected yet, and
// matching a bit-0 candidate against it must still emit nothing (absence
// of a route already encodes NoRoute).
func emitORTC(sn *maskNode, p ip.Prefix, sel ip.NextHop, haveSel bool, out *[]ip.Route) {
	inherited := hopBit(sel)
	if !haveSel {
		inherited = hopBit(ip.NoRoute) // absence behaves like a null route
	}
	if sn.mask&inherited == 0 {
		// Must emit: pick the lowest candidate (any member is optimal).
		h := ip.NextHop(bits.TrailingZeros64(sn.mask))
		*out = append(*out, ip.Route{Prefix: p, NextHop: h})
		sel, haveSel = h, true
	}
	if sn.children[0] != nil {
		emitORTC(sn.children[0], p.Child(0), sel, haveSel, out)
	}
	if sn.children[1] != nil {
		emitORTC(sn.children[1], p.Child(1), sel, haveSel, out)
	}
}
