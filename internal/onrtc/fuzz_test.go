package onrtc

import (
	"testing"

	"clue/internal/ip"
	"clue/internal/trie"
)

// FuzzUpdaterMatchesRebuild drives the updater with a fuzz-chosen
// operation sequence and re-checks the central invariant: the
// incrementally maintained compressed table is byte-for-byte the one a
// from-scratch compression would build.
func FuzzUpdaterMatchesRebuild(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 8, 1, 2, 10, 0, 0, 0, 16, 2})
	f.Add([]byte{0, 255, 255, 0, 0, 24, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fib := trie.New()
		fib.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1, nil)
		u := BuildUpdater(fib)
		// Each op consumes 7 bytes: kind, 4 addr bytes, length, hop.
		for len(data) >= 7 {
			kind := data[0]
			addr := ip.Addr(uint32(data[1])<<24 | uint32(data[2])<<16 | uint32(data[3])<<8 | uint32(data[4]))
			length := int(data[5]) % 33
			hop := ip.NextHop(data[6]%8 + 1)
			data = data[7:]
			p := ip.MustPrefix(addr, length)
			if kind%2 == 0 {
				u.Announce(p, hop)
			} else {
				u.Withdraw(p)
			}
		}
		want := Compress(u.FIB()).Routes()
		got := u.Table().Routes()
		if len(got) != len(want) {
			t.Fatalf("incremental table has %d routes, rebuild %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("route %d: incremental %v, rebuild %v", i, got[i], want[i])
			}
		}
	})
}
