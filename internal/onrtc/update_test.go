package onrtc

import (
	"math/rand"
	"testing"

	"clue/internal/ip"
	"clue/internal/trie"
)

// assertTableMatchesRebuild verifies the incremental invariant that makes
// ONRTC's table unique: after any update sequence the maintained table
// must be exactly the table Compress would build from scratch.
func assertTableMatchesRebuild(t *testing.T, u *Updater) {
	t.Helper()
	want := Compress(u.FIB()).Routes()
	got := u.Table().Routes()
	if len(got) != len(want) {
		t.Fatalf("incremental table has %d routes, rebuild has %d\n got: %v\nwant: %v",
			len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("route %d: incremental %v, rebuild %v", i, got[i], want[i])
		}
	}
}

func TestAnnounceFreshPrefix(t *testing.T) {
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	d := u.Announce(pfx("192.0.2.0/24"), 3)
	if len(d.Ops) != 1 || d.Ops[0].Kind != OpInsert || d.Ops[0].Route != rt("192.0.2.0/24", 3) {
		t.Errorf("ops = %v, want single insert of 192.0.2.0/24 -> 3", d.Ops)
	}
	assertTableMatchesRebuild(t, u)
}

func TestAnnounceIdempotent(t *testing.T) {
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	d := u.Announce(pfx("10.0.0.0/8"), 1)
	if len(d.Ops) != 0 {
		t.Errorf("re-announcing identical route produced ops: %v", d.Ops)
	}
	if d.Visits.Nodes == 0 {
		t.Error("re-announcement should still cost trie visits")
	}
}

func TestAnnounceHopChangeIsModify(t *testing.T) {
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	d := u.Announce(pfx("10.0.0.0/8"), 2)
	if len(d.Ops) != 1 || d.Ops[0].Kind != OpModify || d.Ops[0].Route != rt("10.0.0.0/8", 2) {
		t.Errorf("ops = %v, want single modify to hop 2", d.Ops)
	}
	assertTableMatchesRebuild(t, u)
}

func TestAnnounceSplitsCoveringRoute(t *testing.T) {
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	d := u.Announce(pfx("10.1.0.0/16"), 2)
	// The /8 must be split: delete it, insert the /16 plus sibling
	// covers. Equivalence and minimality are what matter.
	assertTableMatchesRebuild(t, u)
	hasDelete := false
	for _, op := range d.Ops {
		if op.Kind == OpDelete && op.Route.Prefix == pfx("10.0.0.0/8") {
			hasDelete = true
		}
	}
	if !hasDelete {
		t.Errorf("expected deletion of covering /8, got %v", d.Ops)
	}
	hop, _ := u.Table().Lookup(addr("10.1.2.3"), nil)
	if hop != 2 {
		t.Errorf("post-split lookup = %d, want 2", hop)
	}
}

func TestWithdrawMergesSiblings(t *testing.T) {
	// After withdrawing the specific, the split /8 should re-merge into
	// a single route.
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1), rt("10.1.0.0/16", 2)))
	if u.Table().Len() != 9 {
		t.Fatalf("precondition: split table len = %d, want 9", u.Table().Len())
	}
	d := u.Withdraw(pfx("10.1.0.0/16"))
	assertTableMatchesRebuild(t, u)
	if u.Table().Len() != 1 {
		t.Errorf("post-withdraw table len = %d, want 1 (fully merged): %v", u.Table().Len(), u.Table().Routes())
	}
	if len(d.Ops) == 0 {
		t.Error("withdraw produced no ops")
	}
}

func TestWithdrawAbsentPrefix(t *testing.T) {
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	d := u.Withdraw(pfx("192.0.2.0/24"))
	if len(d.Ops) != 0 {
		t.Errorf("withdrawing absent prefix produced ops: %v", d.Ops)
	}
	assertTableMatchesRebuild(t, u)
}

func TestWithdrawLastRoute(t *testing.T) {
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	d := u.Withdraw(pfx("10.0.0.0/8"))
	if len(d.Ops) != 1 || d.Ops[0].Kind != OpDelete {
		t.Errorf("ops = %v, want single delete", d.Ops)
	}
	if u.Table().Len() != 0 {
		t.Errorf("table len = %d, want 0", u.Table().Len())
	}
	assertTableMatchesRebuild(t, u)
}

func TestAnnounceRedundantSpecificNoOp(t *testing.T) {
	// Announcing a more-specific with the same hop as its cover changes
	// nothing in the forwarding function: zero TCAM ops.
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	d := u.Announce(pfx("10.1.0.0/16"), 1)
	if len(d.Ops) != 0 {
		t.Errorf("redundant announce produced ops: %v", d.Ops)
	}
	assertTableMatchesRebuild(t, u)
}

func TestMergeCascadesUpward(t *testing.T) {
	// 10.0/9 -> 1 and 10.128/9 -> 2; changing the second to 1 must merge
	// into 10/8, and if 11/8 -> 1 existed the merge must cascade to /7.
	u := BuildUpdater(buildFIB(
		rt("10.0.0.0/9", 1),
		rt("10.128.0.0/9", 2),
		rt("11.0.0.0/8", 1),
	))
	d := u.Announce(pfx("10.128.0.0/9"), 1)
	assertTableMatchesRebuild(t, u)
	if u.Table().Len() != 1 {
		t.Errorf("table len = %d, want 1 (cascaded merge to 10.0.0.0/7): %v", u.Table().Len(), u.Table().Routes())
	}
	if got := u.Table().Routes()[0]; got != rt("10.0.0.0/7", 1) {
		t.Errorf("merged route = %v, want 10.0.0.0/7 -> 1", got)
	}
	if len(d.Ops) == 0 {
		t.Error("merge produced no ops")
	}
}

func TestDiffOpsApplyCleanly(t *testing.T) {
	// Replaying the diff ops against an external copy of the compressed
	// table must land at the updater's table — this is exactly what the
	// TCAM does.
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1), rt("10.1.0.0/16", 2)))
	shadow := trie.FromRoutes(u.Table().Routes())
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		p := ip.MustPrefix(ip.Addr(rng.Uint32()&0x0FFFFFFF|0x0A000000), rng.Intn(17)+8)
		var d Diff
		if rng.Intn(3) == 0 {
			d = u.Withdraw(p)
		} else {
			d = u.Announce(p, ip.NextHop(rng.Intn(4)+1))
		}
		for _, op := range d.Ops {
			switch op.Kind {
			case OpInsert, OpModify:
				shadow.Insert(op.Route.Prefix, op.Route.NextHop, nil)
			case OpDelete:
				shadow.Delete(op.Route.Prefix, nil)
			}
		}
	}
	want := u.Table().Routes()
	got := shadow.Routes()
	if len(got) != len(want) {
		t.Fatalf("shadow has %d routes, table has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("shadow route %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestIncrementalMatchesRebuildRandom is the central property test: a long
// random announce/withdraw sequence, re-verifying after every step that
// the incrementally maintained table equals the from-scratch compression
// (which implies disjointness, equivalence and minimality, since the
// from-scratch construction is unique).
func TestIncrementalMatchesRebuildRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	fib := trie.New()
	// Seed table.
	for i := 0; i < 100; i++ {
		fib.Insert(ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(13)+8), ip.NextHop(rng.Intn(4)+1), nil)
	}
	u := BuildUpdater(fib)
	live := u.FIB().Routes()
	for step := 0; step < 400; step++ {
		var p ip.Prefix
		withdraw := rng.Intn(3) == 0 && len(live) > 0
		if withdraw {
			p = live[rng.Intn(len(live))].Prefix
			u.Withdraw(p)
		} else {
			switch rng.Intn(3) {
			case 0: // brand new prefix
				p = ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(17)+8)
			case 1: // near an existing route (child)
				if len(live) > 0 {
					base := live[rng.Intn(len(live))].Prefix
					if base.Len < 24 {
						p = base.Child(uint32(rng.Intn(2)))
					} else {
						p = base
					}
				} else {
					p = ip.MustPrefix(ip.Addr(rng.Uint32()), 16)
				}
			default: // existing prefix, possibly new hop
				if len(live) > 0 {
					p = live[rng.Intn(len(live))].Prefix
				} else {
					p = ip.MustPrefix(ip.Addr(rng.Uint32()), 16)
				}
			}
			u.Announce(p, ip.NextHop(rng.Intn(4)+1))
		}
		if step%20 == 0 || step > 380 {
			assertTableMatchesRebuild(t, u)
		}
		live = u.FIB().Routes()
	}
	assertTableMatchesRebuild(t, u)
	assertMinimal(t, u.Table())
	assertEquivalent(t, u.FIB(), u.Table(), randomProbes(u.FIB(), 2000, 5))
}

func TestUpdateVisitsAccounted(t *testing.T) {
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	d := u.Announce(pfx("10.1.0.0/16"), 2)
	if d.Visits.Nodes == 0 {
		t.Error("announce reported zero trie visits")
	}
	d = u.Withdraw(pfx("10.1.0.0/16"))
	if d.Visits.Nodes == 0 {
		t.Error("withdraw reported zero trie visits")
	}
}

func TestNewUpdaterWrapsExisting(t *testing.T) {
	fib := buildFIB(rt("10.0.0.0/8", 1))
	table := Compress(fib)
	u := NewUpdater(fib, table)
	u.Announce(pfx("11.0.0.0/8"), 2)
	assertTableMatchesRebuild(t, u)
}

func TestDefaultRouteUpdates(t *testing.T) {
	// Updates at /0 exercise the whole-table region paths.
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1), rt("192.0.2.0/24", 2)))
	u.Announce(ip.Prefix{}, 7)
	assertTableMatchesRebuild(t, u)
	hop, _ := u.Table().Lookup(addr("8.8.8.8"), nil)
	if hop != 7 {
		t.Errorf("default-route lookup = %d, want 7", hop)
	}
	hop, _ = u.Table().Lookup(addr("10.1.1.1"), nil)
	if hop != 1 {
		t.Errorf("specific still wins: %d, want 1", hop)
	}
	u.Withdraw(ip.Prefix{})
	assertTableMatchesRebuild(t, u)
	hop, _ = u.Table().Lookup(addr("8.8.8.8"), nil)
	if hop != ip.NoRoute {
		t.Errorf("post-withdraw default lookup = %d, want NoRoute", hop)
	}
}

func TestHostRouteUpdates(t *testing.T) {
	u := BuildUpdater(buildFIB(rt("10.0.0.0/8", 1)))
	u.Announce(pfx("10.1.2.3/32"), 2)
	assertTableMatchesRebuild(t, u)
	hop, _ := u.Table().Lookup(addr("10.1.2.3"), nil)
	if hop != 2 {
		t.Errorf("host-route lookup = %d", hop)
	}
	u.Withdraw(pfx("10.1.2.3/32"))
	assertTableMatchesRebuild(t, u)
	if u.Table().Len() != 1 {
		t.Errorf("table len = %d, want fully re-merged 1", u.Table().Len())
	}
}
