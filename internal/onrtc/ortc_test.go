package onrtc

import (
	"math/rand"
	"testing"

	"clue/internal/ip"
	"clue/internal/trie"
)

// ortcLookup does LPM over an ORTC table, honouring null entries: a
// matched entry with NextHop 0 means "no route", shadowing any shorter
// match — exactly how a TCAM realises a deny entry.
func ortcLookup(routes []ip.Route, a ip.Addr) ip.NextHop {
	best := ip.NoRoute
	bestLen := -1
	matched := false
	for _, r := range routes {
		if r.Prefix.Contains(a) && int(r.Prefix.Len) > bestLen {
			best, bestLen = r.NextHop, int(r.Prefix.Len)
			matched = true
		}
	}
	_ = matched
	return best
}

func TestORTCSingleRoute(t *testing.T) {
	fib := buildFIB(rt("10.0.0.0/8", 1))
	routes, ok := ORTC(fib)
	if !ok {
		t.Fatal("ORTC refused small hop space")
	}
	if len(routes) != 1 || routes[0] != rt("10.0.0.0/8", 1) {
		t.Errorf("routes = %v", routes)
	}
}

func TestORTCCollapsesRedundancy(t *testing.T) {
	// The classic win: a default route plus specifics sharing its hop.
	fib := buildFIB(
		ip.Route{Prefix: ip.Prefix{}, NextHop: 1},
		rt("10.0.0.0/8", 1),
		rt("11.0.0.0/8", 2),
	)
	routes, ok := ORTC(fib)
	if !ok {
		t.Fatal("refused")
	}
	if len(routes) != 2 {
		t.Errorf("ORTC produced %d routes, want 2 (default + 11/8): %v", len(routes), routes)
	}
}

func TestORTCBeatsExplicitSiblings(t *testing.T) {
	// Two siblings with different hops under no cover: ORTC can emit a
	// short route for one hop and one longer override — 2 entries, like
	// the original; ONRTC needs 2 as well. With three-quarters one hop:
	// ORTC should use a cover + override (2) where disjoint needs 3.
	fib := buildFIB(
		rt("8.0.0.0/7", 1),  // 0000100*
		rt("10.0.0.0/8", 1), // adjacent, same hop
		rt("11.0.0.0/8", 2),
	)
	ortcRoutes, ok := ORTC(fib)
	if !ok {
		t.Fatal("refused")
	}
	onrtcLen := Compress(fib).Len()
	if len(ortcRoutes) > onrtcLen {
		t.Errorf("ORTC (%d) larger than ONRTC (%d)", len(ortcRoutes), onrtcLen)
	}
	if len(ortcRoutes) > fib.Len() {
		t.Errorf("ORTC (%d) larger than original (%d)", len(ortcRoutes), fib.Len())
	}
}

func TestORTCRefusesLargeHopSpace(t *testing.T) {
	fib := buildFIB(ip.Route{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 64})
	if _, ok := ORTC(fib); ok {
		t.Error("hop 64 accepted (mask overflow)")
	}
}

func TestORTCEmptyFIB(t *testing.T) {
	routes, ok := ORTC(trie.New())
	if !ok || len(routes) != 0 {
		t.Errorf("empty FIB: (%v, %v)", routes, ok)
	}
}

// TestORTCEquivalentAndNoLarger is the core property: on random tables
// the ORTC output forwards identically (null entries honoured) and never
// exceeds the original or the ONRTC size.
func TestORTCEquivalentAndNoLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		fib := trie.New()
		for i := 0; i < 250; i++ {
			fib.Insert(ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(17)+8), ip.NextHop(rng.Intn(6)+1), nil)
		}
		if trial%3 == 0 {
			fib.Insert(ip.Prefix{}, 7, nil) // sometimes a default route
		}
		routes, ok := ORTC(fib)
		if !ok {
			t.Fatal("refused")
		}
		if len(routes) > fib.Len() {
			t.Errorf("trial %d: ORTC %d > original %d", trial, len(routes), fib.Len())
		}
		if onrtcLen := Compress(fib).Len(); len(routes) > onrtcLen {
			t.Errorf("trial %d: ORTC %d > ONRTC %d (extra constraint cannot help)", trial, len(routes), onrtcLen)
		}
		for i := 0; i < 800; i++ {
			a := ip.Addr(rng.Uint32())
			want, _ := fib.Lookup(a, nil)
			if got := ortcLookup(routes, a); got != want {
				t.Fatalf("trial %d: lookup(%s) = %d, want %d", trial, a, got, want)
			}
		}
		// Boundary probes.
		fib.WalkRoutes(func(r ip.Route) bool {
			for _, a := range []ip.Addr{r.Prefix.First(), r.Prefix.Last()} {
				want, _ := fib.Lookup(a, nil)
				if got := ortcLookup(routes, a); got != want {
					t.Fatalf("trial %d: boundary lookup(%s) = %d, want %d", trial, a, got, want)
				}
			}
			return true
		})
	}
}

func TestORTCCompressesRealisticTables(t *testing.T) {
	// On hop-correlated tables ORTC should compress strictly harder than
	// ONRTC (it may exploit overlap).
	fib := trie.New()
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 100; i++ {
		base := ip.Addr(rng.Uint32()) & 0xFFFF0000
		h := ip.NextHop(rng.Intn(3) + 1)
		fib.Insert(ip.MustPrefix(base, 16), h, nil)
		for j := 0; j < 6; j++ {
			fib.Insert(ip.MustPrefix(base+ip.Addr(rng.Intn(256))<<8, 24), h, nil)
		}
	}
	ortcRoutes, ok := ORTC(fib)
	if !ok {
		t.Fatal("refused")
	}
	onrtcLen := Compress(fib).Len()
	if len(ortcRoutes) > onrtcLen {
		t.Errorf("ORTC %d > ONRTC %d on correlated table", len(ortcRoutes), onrtcLen)
	}
	if len(ortcRoutes) >= fib.Len() {
		t.Errorf("no compression: ORTC %d >= original %d", len(ortcRoutes), fib.Len())
	}
}
