// Package onrtc implements the ONRTC algorithm ("Optimal Non-overlap
// Routing Table Construction", Yang et al., ICC 2012) that CLUE adopts as
// its compression stage, together with the incremental update algorithm
// that keeps the compressed table non-overlapping under announce/withdraw
// churn and emits the per-update TCAM diff.
//
// # Construction
//
// For a fixed longest-prefix-match function the minimal *disjoint*
// representation is forced: conceptually leaf-push every route's next hop
// down the trie, then merge sibling regions that carry the same hop,
// bottom-up. Each emitted prefix is a maximal uniform prefix-aligned
// region of the forwarding function; uncovered space must stay uncovered
// (covering it would create matches the original table did not have), so
// disjointness removes the hop-choice freedom ORTC exploits, and the
// resulting table is both minimal and unique. Compression relative to the
// original FIB comes from redundant more-specific routes collapsing into
// their ancestors and from same-hop sibling merges.
//
// The construction runs in one post-order pass over the FIB trie without
// materialising the leaf-pushed expansion.
//
// # Incremental update
//
// An announce or withdraw of prefix p only changes the forwarding function
// inside p. The updater re-derives the minimal representation for the
// smallest enclosing region whose representation can change (p itself, or
// the compressed route that covered p), then extends the region upward
// while newly-uniform halves allow sibling merges. The result is a small
// diff of insert/delete/modify operations against the compressed table —
// exactly the operations the data plane must apply to TCAM.
package onrtc

import (
	"fmt"

	"clue/internal/ip"
	"clue/internal/trie"
)

// OpKind classifies a compressed-table diff operation.
type OpKind uint8

const (
	// OpInsert adds a new prefix to the compressed table.
	OpInsert OpKind = iota + 1
	// OpDelete removes a prefix from the compressed table.
	OpDelete
	// OpModify rewrites the next hop of an existing prefix in place.
	OpModify
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpModify:
		return "modify"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one compressed-table change. For OpDelete, Route.NextHop is the
// hop being removed (so DRed caches can invalidate by prefix).
type Op struct {
	Kind  OpKind
	Route ip.Route
}

// String renders the op for logs and debugging.
func (o Op) String() string { return fmt.Sprintf("%s %s", o.Kind, o.Route) }

// Table is the compressed, non-overlapping routing table. It supports
// lookup and is kept in sync with the FIB by Updater.
type Table struct {
	comp *trie.Trie
}

// Compress builds the optimal non-overlapping table for the routes in fib.
// The input trie is not modified.
func Compress(fib *trie.Trie) *Table {
	t := &Table{comp: trie.New()}
	region := compressRegion(fib, ip.Prefix{}, nil)
	if region.uniform {
		if region.hop != ip.NoRoute {
			t.comp.Insert(ip.Prefix{}, region.hop, nil)
		}
	} else {
		for _, r := range region.routes {
			t.comp.Insert(r.Prefix, r.NextHop, nil)
		}
	}
	return t
}

// Len returns the number of prefixes in the compressed table.
func (t *Table) Len() int { return t.comp.Len() }

// Routes returns the compressed routes in inorder (ascending address),
// the order the CLUE partition algorithm consumes.
func (t *Table) Routes() []ip.Route { return t.comp.Routes() }

// Lookup returns the next hop for addr. Because the table is disjoint, at
// most one prefix matches; no longest-prefix tie-break is needed.
func (t *Table) Lookup(addr ip.Addr, v *trie.Visits) (ip.NextHop, ip.Prefix) {
	return t.comp.Lookup(addr, v)
}

// Trie exposes the underlying compressed trie for partitioning and
// verification. Callers must treat it as read-only.
func (t *Table) Trie() *trie.Trie { return t.comp }

// VerifyDisjoint checks the table's core structural invariant: no two
// compressed prefixes overlap. Because prefixes are aligned blocks, two
// prefixes overlap exactly when one covers the other, and a prefix
// starting inside another's block necessarily overlaps it — so in
// ascending address order, adjacent-pair checks decide pairwise
// disjointness in O(n).
func (t *Table) VerifyDisjoint() error {
	return VerifyDisjoint(t.Routes())
}

// VerifyDisjoint checks an ascending route list for overlapping
// prefixes (the standalone form, for callers holding a table dump such
// as a serve snapshot rather than a *Table).
func VerifyDisjoint(routes []ip.Route) error {
	for i := 1; i < len(routes); i++ {
		prev, cur := routes[i-1].Prefix, routes[i].Prefix
		if cur.First() < prev.First() {
			return fmt.Errorf("onrtc: routes out of order: %v before %v", routes[i-1], routes[i])
		}
		if prev.Last() >= cur.First() {
			return fmt.Errorf("onrtc: overlapping routes %v and %v", routes[i-1], routes[i])
		}
	}
	return nil
}

// region is the result of compressing one prefix-aligned block: either the
// whole block is uniform (one hop, possibly NoRoute), or it is mixed and
// routes holds its minimal disjoint representation.
type region struct {
	uniform bool
	hop     ip.NextHop
	routes  []ip.Route
}

// compressRegion computes the minimal disjoint representation of the
// forwarding function restricted to prefix p, reading the FIB subtree at p.
// Node visits are charged to v (the control plane walks its SRAM trie).
func compressRegion(fib *trie.Trie, p ip.Prefix, v *trie.Visits) region {
	node, inh := fib.FindWithCover(p, v)
	var out []ip.Route
	hop, uniform := compressNode(node, p, inh, &out, v)
	if uniform {
		return region{uniform: true, hop: hop}
	}
	return region{routes: out}
}

// compressNode is the post-order merge. It returns the region's uniform
// hop when the whole block forwards identically, or uniform=false after
// appending the block's minimal representation to out. A nil node means
// the block contains no more-specific routes and inherits inh wholesale.
func compressNode(n *trie.Node, p ip.Prefix, inh ip.NextHop, out *[]ip.Route, v *trie.Visits) (ip.NextHop, bool) {
	if n == nil {
		return inh, true
	}
	if v != nil {
		v.Nodes++
	}
	if n.Hop != ip.NoRoute {
		inh = n.Hop
	}
	if n.IsLeaf() {
		return inh, true
	}
	lHop, lUni := compressNode(n.Children[0], p.Child(0), inh, out, v)
	rHop, rUni := compressNode(n.Children[1], p.Child(1), inh, out, v)
	if lUni && rUni && lHop == rHop {
		return lHop, true
	}
	if lUni && lHop != ip.NoRoute {
		*out = append(*out, ip.Route{Prefix: p.Child(0), NextHop: lHop})
	}
	if rUni && rHop != ip.NoRoute {
		*out = append(*out, ip.Route{Prefix: p.Child(1), NextHop: rHop})
	}
	return ip.NoRoute, false
}

// LeafPush returns the plain leaf-pushed table (controlled prefix
// expansion pushed to trie leaves, Srinivasan & Varghese) without sibling
// merging. It is the non-overlap baseline ONRTC improves on: disjoint but
// expanded rather than compressed.
func LeafPush(fib *trie.Trie) []ip.Route {
	var out []ip.Route
	leafPush(fib.Root(), ip.Prefix{}, ip.NoRoute, &out)
	return out
}

func leafPush(n *trie.Node, p ip.Prefix, inh ip.NextHop, out *[]ip.Route) {
	if n == nil {
		if inh != ip.NoRoute {
			*out = append(*out, ip.Route{Prefix: p, NextHop: inh})
		}
		return
	}
	if n.Hop != ip.NoRoute {
		inh = n.Hop
	}
	if n.IsLeaf() {
		if inh != ip.NoRoute {
			*out = append(*out, ip.Route{Prefix: p, NextHop: inh})
		}
		return
	}
	leafPush(n.Children[0], p.Child(0), inh, out)
	leafPush(n.Children[1], p.Child(1), inh, out)
}

// regionUniform inspects the compressed trie and reports whether block q
// forwards uniformly, and with which hop. It relies on two invariants of
// the compressed trie: routes are disjoint, and non-root nodes exist only
// on paths to routes. q must not be the default route.
func (t *Table) regionUniform(q ip.Prefix, v *trie.Visits) (ip.NextHop, bool) {
	n := t.comp.Root()
	if v != nil {
		v.Nodes++
	}
	for depth := 0; depth < int(q.Len); depth++ {
		if n.Hop != ip.NoRoute {
			// A route above q covers all of q.
			return n.Hop, true
		}
		n = n.Children[q.Bits.Bit(depth)]
		if n == nil {
			// No route intersects q at all.
			return ip.NoRoute, true
		}
		if v != nil {
			v.Nodes++
		}
	}
	if n.Hop != ip.NoRoute {
		// Disjointness plus path pruning imply n is a leaf.
		return n.Hop, true
	}
	// Routes exist strictly below q on at least one side; q is mixed
	// (a single deeper route leaves the rest of q uncovered).
	return ip.NoRoute, false
}

// collectRegion returns the compressed routes lying within block q.
func (t *Table) collectRegion(q ip.Prefix, v *trie.Visits) []ip.Route {
	n := t.comp.Find(q, v)
	if n == nil {
		return nil
	}
	var out []ip.Route
	collect(n, &out, v)
	return out
}

func collect(n *trie.Node, out *[]ip.Route, v *trie.Visits) {
	if n == nil {
		return
	}
	if v != nil {
		v.Nodes++
	}
	if n.Hop != ip.NoRoute {
		*out = append(*out, ip.Route{Prefix: n.Prefix, NextHop: n.Hop})
	}
	collect(n.Children[0], out, v)
	collect(n.Children[1], out, v)
}

// Stats summarises a compression run for reporting (Figure 8).
type Stats struct {
	// Original is the FIB route count before compression.
	Original int
	// Compressed is the route count of the ONRTC output.
	Compressed int
	// LeafPushed is the route count of the naive leaf-pushing baseline.
	LeafPushed int
	// ORTC is the route count of the classic overlap-allowed optimum
	// (Draves et al.), or 0 when the hop space exceeds the mask width.
	ORTC int
}

// Ratio returns Compressed/Original, the paper's headline ≈0.71.
func (s Stats) Ratio() float64 {
	if s.Original == 0 {
		return 0
	}
	return float64(s.Compressed) / float64(s.Original)
}

// ExpansionRatio returns LeafPushed/Original, showing why plain
// leaf-pushing (the only prior total-overlap-elimination technique) is not
// good enough.
func (s Stats) ExpansionRatio() float64 {
	if s.Original == 0 {
		return 0
	}
	return float64(s.LeafPushed) / float64(s.Original)
}

// ORTCRatio returns ORTC/Original — the bound overlap-allowed
// compression achieves, always at or below Ratio.
func (s Stats) ORTCRatio() float64 {
	if s.Original == 0 {
		return 0
	}
	return float64(s.ORTC) / float64(s.Original)
}

// CompressWithStats compresses fib and reports size statistics alongside,
// including both baselines (leaf-pushing expansion and classic ORTC).
func CompressWithStats(fib *trie.Trie) (*Table, Stats) {
	t := Compress(fib)
	st := Stats{
		Original:   fib.Len(),
		Compressed: t.Len(),
		LeafPushed: len(LeafPush(fib)),
	}
	if ortcRoutes, ok := ORTC(fib); ok {
		st.ORTC = len(ortcRoutes)
	}
	return t, st
}
