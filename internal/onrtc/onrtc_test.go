package onrtc

import (
	"math/rand"
	"testing"

	"clue/internal/ip"
	"clue/internal/trie"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }
func addr(s string) ip.Addr  { return ip.MustParseAddr(s) }

func buildFIB(routes ...ip.Route) *trie.Trie { return trie.FromRoutes(routes) }

func rt(p string, h ip.NextHop) ip.Route {
	return ip.Route{Prefix: pfx(p), NextHop: h}
}

// assertEquivalent checks that the compressed table computes the same
// forwarding function as the FIB on a set of probe addresses.
func assertEquivalent(t *testing.T, fib *trie.Trie, table *Table, probes []ip.Addr) {
	t.Helper()
	for _, a := range probes {
		want, _ := fib.Lookup(a, nil)
		got, _ := table.Lookup(a, nil)
		if got != want {
			t.Fatalf("lookup(%s): compressed = %d, fib = %d", a, got, want)
		}
	}
}

// randomProbes returns deterministic pseudo-random probe addresses plus
// boundary addresses of every FIB prefix, which exercise the edges of each
// compressed region.
func randomProbes(fib *trie.Trie, n int, seed int64) []ip.Addr {
	rng := rand.New(rand.NewSource(seed))
	probes := make([]ip.Addr, 0, n)
	for i := 0; i < n; i++ {
		probes = append(probes, ip.Addr(rng.Uint32()))
	}
	fib.WalkRoutes(func(r ip.Route) bool {
		probes = append(probes, r.Prefix.First(), r.Prefix.Last())
		return true
	})
	return probes
}

func TestCompressEmpty(t *testing.T) {
	table := Compress(trie.New())
	if table.Len() != 0 {
		t.Errorf("empty FIB compressed to %d routes", table.Len())
	}
}

func TestCompressSingleRoute(t *testing.T) {
	fib := buildFIB(rt("10.0.0.0/8", 1))
	table := Compress(fib)
	routes := table.Routes()
	if len(routes) != 1 || routes[0] != rt("10.0.0.0/8", 1) {
		t.Errorf("routes = %v, want [10.0.0.0/8 -> 1]", routes)
	}
}

func TestCompressRedundantSpecific(t *testing.T) {
	// A more-specific with the same hop is pure redundancy.
	fib := buildFIB(rt("10.0.0.0/8", 1), rt("10.1.0.0/16", 1))
	table := Compress(fib)
	if table.Len() != 1 {
		t.Errorf("len = %d, want 1 (redundant specific collapsed): %v", table.Len(), table.Routes())
	}
}

func TestCompressSiblingMerge(t *testing.T) {
	// Two same-hop siblings merge into their parent.
	fib := buildFIB(rt("10.0.0.0/9", 2), rt("10.128.0.0/9", 2))
	table := Compress(fib)
	routes := table.Routes()
	if len(routes) != 1 || routes[0] != rt("10.0.0.0/8", 2) {
		t.Errorf("routes = %v, want merged [10.0.0.0/8 -> 2]", routes)
	}
}

func TestCompressSplitsCoveringRoute(t *testing.T) {
	// A different-hop specific inside a covering route forces a split;
	// the result must be disjoint and equivalent.
	fib := buildFIB(rt("10.0.0.0/8", 1), rt("10.1.0.0/16", 2))
	table := Compress(fib)
	if table.Trie().Overlapping() {
		t.Fatal("compressed table has overlapping prefixes")
	}
	assertEquivalent(t, fib, table, randomProbes(fib, 2000, 1))
	// The split needs one /16 for hop 2 plus covering siblings at each
	// level /9../16 for hop 1 — 9 total.
	if table.Len() != 9 {
		t.Errorf("len = %d, want 9: %v", table.Len(), table.Routes())
	}
}

func TestCompressPaperExample(t *testing.T) {
	// Figure 2 of the paper: p = 1* (hop A), q = 100* (child with a
	// different hop B). Disjoint form must keep 100* -> B while covering
	// the rest of 1* with A, and lookups must behave like LPM.
	fib := buildFIB(
		ip.Route{Prefix: ip.MustPrefix(ip.MustParseAddr("128.0.0.0"), 1), NextHop: 10}, // 1*
		ip.Route{Prefix: ip.MustPrefix(ip.MustParseAddr("128.0.0.0"), 3), NextHop: 20}, // 100*
	)
	table := Compress(fib)
	if table.Trie().Overlapping() {
		t.Fatal("compressed table overlaps")
	}
	hop, via := table.Lookup(addr("128.0.0.1"), nil)
	if hop != 20 || via.Len != 3 {
		t.Errorf("lookup inside 100* = (%d, %s), want (20, /3)", hop, via)
	}
	hop, _ = table.Lookup(addr("192.0.0.1"), nil) // 11...
	if hop != 10 {
		t.Errorf("lookup inside 1* outside 100* = %d, want 10", hop)
	}
	hop, _ = table.Lookup(addr("1.0.0.1"), nil) // 0...
	if hop != ip.NoRoute {
		t.Errorf("lookup outside 1* = %d, want NoRoute (uncovered space stays uncovered)", hop)
	}
}

func TestCompressDefaultRouteOnly(t *testing.T) {
	fib := buildFIB(ip.Route{Prefix: ip.Prefix{}, NextHop: 7})
	table := Compress(fib)
	routes := table.Routes()
	if len(routes) != 1 || routes[0].Prefix.Len != 0 || routes[0].NextHop != 7 {
		t.Errorf("routes = %v, want [0.0.0.0/0 -> 7]", routes)
	}
}

func TestCompressDefaultWithSpecific(t *testing.T) {
	fib := buildFIB(ip.Route{Prefix: ip.Prefix{}, NextHop: 7}, rt("10.0.0.0/8", 1))
	table := Compress(fib)
	if table.Trie().Overlapping() {
		t.Fatal("overlapping output")
	}
	assertEquivalent(t, fib, table, randomProbes(fib, 2000, 2))
}

// assertMinimal checks the two minimality invariants: disjointness and no
// mergeable sibling pair (two routes at sibling prefixes with equal hops).
func assertMinimal(t *testing.T, table *Table) {
	t.Helper()
	if table.Trie().Overlapping() {
		t.Fatal("compressed table has overlapping prefixes")
	}
	hops := make(map[ip.Prefix]ip.NextHop)
	for _, r := range table.Routes() {
		hops[r.Prefix] = r.NextHop
	}
	for p, h := range hops {
		if p.Len == 0 {
			continue
		}
		if sh, ok := hops[p.Sibling()]; ok && sh == h {
			t.Fatalf("mergeable sibling pair %s and %s both -> %d", p, p.Sibling(), h)
		}
	}
}

func TestCompressMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		fib := trie.New()
		for i := 0; i < 300; i++ {
			p := ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(17)+8)
			fib.Insert(p, ip.NextHop(rng.Intn(4)+1), nil)
		}
		table := Compress(fib)
		assertMinimal(t, table)
		assertEquivalent(t, fib, table, randomProbes(fib, 1000, int64(trial)))
	}
}

func TestCompressNeverLargerThanLeafPush(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		fib := trie.New()
		for i := 0; i < 200; i++ {
			fib.Insert(ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(13)+8), ip.NextHop(rng.Intn(5)+1), nil)
		}
		_, stats := CompressWithStats(fib)
		if stats.Compressed > stats.LeafPushed {
			t.Errorf("trial %d: compressed %d > leaf-pushed %d", trial, stats.Compressed, stats.LeafPushed)
		}
	}
}

func TestLeafPushEquivalent(t *testing.T) {
	fib := buildFIB(rt("10.0.0.0/8", 1), rt("10.1.0.0/16", 2), rt("192.0.2.0/24", 3))
	pushed := trie.FromRoutes(LeafPush(fib))
	if pushed.Overlapping() {
		t.Fatal("leaf-pushed table overlaps")
	}
	for _, a := range randomProbes(fib, 2000, 3) {
		want, _ := fib.Lookup(a, nil)
		got, _ := pushed.Lookup(a, nil)
		if got != want {
			t.Fatalf("leaf-push lookup(%s) = %d, want %d", a, got, want)
		}
	}
}

func TestStatsRatios(t *testing.T) {
	s := Stats{Original: 100, Compressed: 71, LeafPushed: 150}
	if s.Ratio() != 0.71 {
		t.Errorf("Ratio = %v", s.Ratio())
	}
	if s.ExpansionRatio() != 1.5 {
		t.Errorf("ExpansionRatio = %v", s.ExpansionRatio())
	}
	zero := Stats{}
	if zero.Ratio() != 0 || zero.ExpansionRatio() != 0 {
		t.Error("zero stats should have zero ratios")
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" || OpModify.String() != "modify" {
		t.Error("OpKind names wrong")
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Errorf("unknown kind = %q", OpKind(99).String())
	}
}
