package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clue/internal/core"
	"clue/internal/feed"
	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/serve"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// FeedConfig parameterises one replication chaos run. Zero values take
// defaults sized so the run finishes in a few seconds.
type FeedConfig struct {
	// Seed drives the FIB, the update trace and the fault schedule.
	Seed int64
	// Routes is the base FIB size (default 3000).
	Routes int
	// Updates is the update-trace length (default 1200).
	Updates int
	// BatchSize is how many updates the collector groups per batch
	// (default 4).
	BatchSize int
	// Window is the collector's replay window in batches (default 16
	// — small, so the long link cut is guaranteed to overrun it).
	Window int
	// HashEvery is the collector's hash-frame cadence (default 8).
	HashEvery int
	// Workers is each follower runtime's partition worker count
	// (default 2).
	Workers int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (c FeedConfig) withDefaults() FeedConfig {
	if c.Routes == 0 {
		c.Routes = 3000
	}
	if c.Updates == 0 {
		c.Updates = 1200
	}
	if c.BatchSize == 0 {
		c.BatchSize = 4
	}
	if c.Window == 0 {
		c.Window = 16
	}
	if c.HashEvery == 0 {
		c.HashEvery = 8
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	return c
}

// FeedReport is the outcome of a replication chaos run. A run only
// counts as passed when RunFeed also returned a nil error.
type FeedReport struct {
	Seed    int64  `json:"seed"`
	Batches uint64 `json:"batches"`
	Records uint64 `json:"records"`

	// Injected faults.
	LinkCuts          int `json:"link_cuts"`
	Stalls            int `json:"stalls"`
	CollectorRestarts int `json:"collector_restarts"`

	// Summed follower recovery behaviour. Resumes and SnapshotLoads
	// together prove both recovery paths ran: the brief cut must
	// resume, the over-window cut must re-snapshot.
	Resumes        uint64 `json:"resumes"`
	SnapshotLoads  uint64 `json:"snapshot_loads"`
	Reconnects     uint64 `json:"reconnects"`
	HashChecks     uint64 `json:"hash_checks"`
	HashMismatches uint64 `json:"hash_mismatches"`
	// MaxLag is the worst follower lag observed while a replica's
	// apply pipeline was stalled.
	MaxLag uint64 `json:"max_lag"`

	// ConvergedRoutes is the canonical compressed table size every
	// replica agreed on at the end.
	ConvergedRoutes int `json:"converged_routes"`

	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`

	Followers []feed.FollowerStats `json:"followers"`
	Collector feed.CollectorStats  `json:"collector"`
}

// gatedApplier wraps an Applier with a closable gate so the harness
// can stall a follower's apply pipeline without touching its
// connection — the replication analog of a wedged writer.
type gatedApplier struct {
	inner feed.Applier
	mu    sync.Mutex
	hold  chan struct{}
}

func (g *gatedApplier) gate() {
	g.mu.Lock()
	if g.hold == nil {
		g.hold = make(chan struct{})
	}
	g.mu.Unlock()
}

func (g *gatedApplier) release() {
	g.mu.Lock()
	if g.hold != nil {
		close(g.hold)
		g.hold = nil
	}
	g.mu.Unlock()
}

func (g *gatedApplier) wait() {
	g.mu.Lock()
	h := g.hold
	g.mu.Unlock()
	if h != nil {
		<-h
	}
}

func (g *gatedApplier) Reset(routes []ip.Route) error {
	g.wait()
	return g.inner.Reset(routes)
}

func (g *gatedApplier) Announce(p ip.Prefix, hop ip.NextHop) error {
	g.wait()
	return g.inner.Announce(p, hop)
}

func (g *gatedApplier) Withdraw(p ip.Prefix) error {
	g.wait()
	return g.inner.Withdraw(p)
}

func (g *gatedApplier) CanonicalRoutes() []ip.Route { return g.inner.CanonicalRoutes() }

// RunFeed executes one replication chaos scenario: a collector streams
// a seeded update trace to two runtime-backed followers while the
// harness cuts links (briefly on one replica, beyond the replay window
// on the other), stalls a replica's apply pipeline and restarts the
// collector mid-stream with a state handoff. The returned error is
// non-nil whenever any invariant broke: the replicas did not
// reconverge to the collector's canonical compressed table, a recovery
// path that must have run did not, a hash check failed, or goroutines
// leaked.
func RunFeed(cfg FeedConfig) (FeedReport, error) {
	cfg = cfg.withDefaults()
	rep := FeedReport{Seed: cfg.Seed, GoroutinesBefore: runtime.NumGoroutine()}
	rng := rand.New(rand.NewSource(cfg.Seed))

	fib, err := fibgen.Generate(fibgen.Config{Seed: cfg.Seed, Routes: cfg.Routes})
	if err != nil {
		return rep, err
	}
	gen, err := tracegen.NewUpdateGen(fib, tracegen.UpdateConfig{Seed: cfg.Seed, Messages: cfg.Updates})
	if err != nil {
		return rep, err
	}
	recs := tracegen.Records(gen.NextN(cfg.Updates))
	split := func() [][]int {
		var out [][]int
		for i := 0; i < len(recs); i += cfg.BatchSize {
			out = append(out, []int{i, min(i+cfg.BatchSize, len(recs))})
		}
		return out
	}
	spans := split()
	nb := len(spans)

	// The fault schedule, in batch counts per phase. The driver paces
	// the storm on follower progress at phase boundaries — a "brief"
	// cut is brief relative to applied batches, not wall time — with
	// seeded jitter keeping runs seed-distinct.
	warm := nb/5 + rng.Intn(nb/20+1)     // both streaming, then: brief cut on A
	briefGap := 3 + rng.Intn(3)          // batches A misses; well under the window
	longGap := cfg.Window + 6 + rng.Intn(4) // batches B misses; over the window
	stallSpan := nb/10 + rng.Intn(nb/20+1)  // batches applied while A is gated
	if warm+briefGap+longGap+stallSpan+2 >= nb {
		return rep, fmt.Errorf("chaos: fault schedule (%d batches) does not fit the %d-batch trace",
			warm+briefGap+longGap+stallSpan+2, nb)
	}
	restart := nb - (nb-warm-briefGap-longGap-stallSpan)/2 // collector handoff mid-remainder

	mkCollector := func(base []ip.Route, startSeq uint64) (*feed.Collector, error) {
		c, err := feed.NewCollector(feed.CollectorConfig{
			BaseRoutes: base,
			StartSeq:   startSeq,
			Window:     cfg.Window,
			HashEvery:  cfg.HashEvery,
			Logf: func(format string, args ...any) {
				logf(cfg.Log, format, args...)
			},
		})
		if err != nil {
			return nil, err
		}
		if _, err := c.Listen("127.0.0.1:0"); err != nil {
			return nil, err
		}
		return c, nil
	}
	coll, err := mkCollector(fib.Routes(), 0)
	if err != nil {
		return rep, err
	}
	defer func() { coll.Close() }()

	var addr atomic.Value
	addr.Store(coll.Addr().String())
	// bDown simulates a dead link for follower B: dials fail while set,
	// so the follower sits in backoff rather than instantly healing.
	var bDown atomic.Bool
	dialVia := func(down *atomic.Bool) func() (net.Conn, error) {
		return func() (net.Conn, error) {
			if down != nil && down.Load() {
				return nil, errors.New("chaos: link down")
			}
			return net.DialTimeout("tcp", addr.Load().(string), time.Second)
		}
	}

	sys := core.Config{TCAMs: 2, Buckets: 8}
	appA := feed.NewRuntimeApplier(serve.Config{Workers: cfg.Workers, System: sys})
	appB := feed.NewRuntimeApplier(serve.Config{Workers: cfg.Workers, System: sys})
	defer appA.Close()
	defer appB.Close()
	gateA := &gatedApplier{inner: appA}
	defer gateA.release()

	mkFollower := func(app feed.Applier, down *atomic.Bool, name string) (*feed.Follower, error) {
		return feed.NewFollower(feed.FollowerConfig{
			Dial:       dialVia(down),
			Applier:    app,
			BackoffMin: time.Millisecond,
			BackoffMax: 50 * time.Millisecond,
			Logf: func(format string, args ...any) {
				logf(cfg.Log, name+": "+format, args...)
			},
		})
	}
	fA, err := mkFollower(gateA, nil, "follower-a")
	if err != nil {
		return rep, err
	}
	defer fA.Close()
	fB, err := mkFollower(appB, &bDown, "follower-b")
	if err != nil {
		return rep, err
	}
	defer fB.Close()

	const phaseTimeout = 30 * time.Second
	var last uint64
	next := 0
	// applyN pushes n batches, pacing each on the given followers so a
	// phase's fault lands at a known point in every replica's stream.
	applyN := func(n int, paceOn ...*feed.Follower) error {
		for ; n > 0 && next < nb; n-- {
			span := spans[next]
			seq, err := coll.Apply(recs[span[0]:span[1]])
			if err != nil {
				return fmt.Errorf("chaos: batch %d: %w", next, err)
			}
			last = seq
			next++
			for _, f := range paceOn {
				if err := f.WaitSeq(seq, phaseTimeout); err != nil {
					return fmt.Errorf("chaos: batch %d: %w", next-1, err)
				}
			}
		}
		return nil
	}

	// Phase 1: warm up with both replicas in lockstep.
	if err := applyN(warm, fA, fB); err != nil {
		return rep, err
	}

	// Phase 2: brief link cut on A — it misses a few batches, well
	// inside the replay window, and must resume without a snapshot.
	logf(cfg.Log, "chaos: batch %d: brief link cut on follower A", next)
	fA.BreakConn()
	rep.LinkCuts++
	if err := applyN(briefGap, fB); err != nil {
		return rep, err
	}
	if err := fA.WaitSeq(last, phaseTimeout); err != nil {
		return rep, fmt.Errorf("chaos: follower A after brief cut: %w", err)
	}

	// Phase 3: long link cut on B — the link stays down while more
	// batches than the window holds flow past, so its resume point is
	// trimmed and healing must fall back to a fresh snapshot.
	logf(cfg.Log, "chaos: batch %d: long link cut on follower B (window %d)", next, cfg.Window)
	bDown.Store(true)
	fB.BreakConn()
	rep.LinkCuts++
	if err := applyN(longGap, fA); err != nil {
		return rep, err
	}
	logf(cfg.Log, "chaos: batch %d: healing follower B's link", next)
	bDown.Store(false)
	if err := fB.WaitSeq(last, phaseTimeout); err != nil {
		return rep, fmt.Errorf("chaos: follower B after over-window cut: %w", err)
	}

	// Phase 4: stall A's apply pipeline (connection intact); lag grows
	// while B stays current, then the release must drain it.
	logf(cfg.Log, "chaos: batch %d: stalling follower A's apply pipeline", next)
	gateA.gate()
	rep.Stalls++
	if err := applyN(stallSpan, fB); err != nil {
		gateA.release()
		return rep, err
	}
	if lag := fA.Stats().Lag; lag > rep.MaxLag {
		rep.MaxLag = lag
	}
	logf(cfg.Log, "chaos: batch %d: releasing follower A (lag %d)", next, fA.Stats().Lag)
	gateA.release()
	if err := fA.WaitSeq(last, phaseTimeout); err != nil {
		return rep, fmt.Errorf("chaos: follower A after stall: %w", err)
	}

	// Phase 5: apply up to the restart point, hand the collector off
	// to a successor mid-stream, finish the trace on it.
	if err := applyN(restart-next, fA, fB); err != nil {
		return rep, err
	}
	logf(cfg.Log, "chaos: batch %d: restarting collector at head %d", next, coll.Head())
	base, head := coll.Routes(), coll.Head()
	coll.Close()
	succ, err := mkCollector(base, head)
	if err != nil {
		return rep, err
	}
	coll = succ
	addr.Store(coll.Addr().String())
	rep.CollectorRestarts++
	if err := applyN(nb-next); err != nil {
		return rep, err
	}

	for name, f := range map[string]*feed.Follower{"A": fA, "B": fB} {
		if err := f.WaitSeq(last, phaseTimeout); err != nil {
			return rep, fmt.Errorf("chaos: follower %s never converged: %w", name, err)
		}
	}

	// Convergence: both replicas' published canonical compressed
	// tables must be byte-identical to the collector mirror's
	// canonical compression (and hence to each other).
	want := onrtc.Compress(trie.FromRoutes(coll.Routes())).Routes()
	wantHash := feed.CanonicalHash(want)
	var errs []error
	for name, app := range map[string]feed.Applier{"A": gateA, "B": appB} {
		got := app.CanonicalRoutes()
		if h := feed.CanonicalHash(got); h != wantHash {
			errs = append(errs, fmt.Errorf("chaos: follower %s canonical hash %016x != collector %016x (%d vs %d routes)",
				name, h, wantHash, len(got), len(want)))
		}
	}
	rep.ConvergedRoutes = len(want)

	sA, sB := fA.Stats(), fB.Stats()
	rep.Followers = []feed.FollowerStats{sA, sB}
	rep.Collector = coll.Stats()
	// The collector stats cover only the post-restart successor; the
	// report counts the whole storm.
	rep.Batches = uint64(nb)
	rep.Records = uint64(len(recs))
	for _, s := range rep.Followers {
		rep.Resumes += s.Resumes
		rep.SnapshotLoads += s.SnapshotLoads
		rep.Reconnects += s.Reconnects
		rep.HashChecks += s.HashChecks
		rep.HashMismatches += s.HashMismatches
	}

	// Both recovery paths must actually have run.
	if sA.Resumes == 0 {
		errs = append(errs, errors.New("chaos: follower A never resumed (brief cut should not force a snapshot)"))
	}
	if sB.SnapshotLoads < 2 {
		errs = append(errs, fmt.Errorf("chaos: follower B loaded %d snapshots, want >= 2 (over-window cut must re-snapshot)", sB.SnapshotLoads))
	}
	if rep.HashChecks == 0 {
		errs = append(errs, errors.New("chaos: no hash verifications ran"))
	}
	if rep.HashMismatches != 0 {
		errs = append(errs, fmt.Errorf("chaos: %d hash mismatches (replicas drifted mid-stream)", rep.HashMismatches))
	}

	fA.Close()
	fB.Close()
	coll.Close()
	appA.Close()
	appB.Close()
	rep.GoroutinesAfter = awaitGoroutines(rep.GoroutinesBefore)
	if rep.GoroutinesAfter > rep.GoroutinesBefore {
		errs = append(errs, fmt.Errorf("chaos: goroutine leak: %d before, %d after", rep.GoroutinesBefore, rep.GoroutinesAfter))
	}
	return rep, errors.Join(errs...)
}
