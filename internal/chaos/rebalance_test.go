package chaos

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCompareRebalanceFlashCrowd is the closed-loop contract: the same
// flash-crowd program replayed with the static carve and with the
// repartitioning controller must show the controller recutting and the
// steady-state divert rate improving by the declared margin. The run is
// wall-clock paced (the controller needs real time to converge), so it
// is skipped in -short mode and the weekly scenario-lab job runs the
// full-scale version through clue-chaos -compare-rebalance.
func TestCompareRebalanceFlashCrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced comparison; covered at full scale by the weekly scenario lab")
	}
	rep, err := CompareRebalance(RebalanceCompareConfig{Seed: 7, Log: testWriter{t}})
	if err != nil {
		t.Fatalf("comparison failed: %v\nreport: %+v", err, rep)
	}
	// CompareRebalance asserted the contract; pin the report shape too.
	if rep.Off.SteadyDispatches == 0 || rep.On.SteadyDispatches == 0 {
		t.Fatalf("empty measurement windows: %+v", rep)
	}
	if rep.On.Rebalance.Recuts == 0 || rep.On.Rebalance.MovedRoutes == 0 {
		t.Fatalf("controller counters empty on the on leg: %+v", rep.On.Rebalance)
	}
	if rep.Off.Rebalance.Recuts != 0 {
		t.Fatalf("off leg recut: %+v", rep.Off.Rebalance)
	}
	if rep.Improvement < rep.MinImprovement {
		t.Fatalf("improvement %.3f below declared margin %.3f", rep.Improvement, rep.MinImprovement)
	}
	buf, jerr := json.Marshal(rep)
	if jerr != nil || !strings.Contains(string(buf), `"improvement"`) {
		t.Fatalf("report does not serialise: %v %s", jerr, buf)
	}
}

// TestCompareRebalancePressureFloor: an unreachable pressure floor must
// turn the run into an explicit inconclusive error — the contract can
// never pass on a workload that produced no divert pressure.
func TestCompareRebalancePressureFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced comparison")
	}
	cfg := RebalanceCompareConfig{Seed: 7, MinOffDivert: 1.1}
	// Keep the self-test cheap: the verdict only needs the windows to
	// exist, not the controller to converge.
	cfg.Warmup, cfg.Adapt, cfg.Measure = 50e6, 100e6, 100e6
	_, err := CompareRebalance(cfg)
	if err == nil || !strings.Contains(err.Error(), "inconclusive") {
		t.Fatalf("impossible pressure floor did not trip: %v", err)
	}
}

// testWriter adapts t.Logf for the comparison's progress log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
