package chaos

// Scenario driver: replays the adversarial control-plane programs from
// internal/tracegen (session-reset, route-leak, update-burst,
// flash-crowd) against a live serve.Runtime under phase-shaped lookup
// traffic, checkpoints the published table against the brute-force
// oracle model *mid-storm*, measures time-to-converge after the storm,
// and holds the run to the scenario's declared quantitative contract.
//
// The oracle here is intentionally not the mirror trie the soak harness
// uses: it is oracle.Model, the flat brute-force LPM map, so the
// scenario lab and the differential-testing layer share one source of
// truth — and so a planted model mutant (oracle.MutantDropWithdraw)
// makes a storm checkpoint fail, proving the lab detects real
// divergence rather than vacuously passing.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clue/internal/feed"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/oracle"
	"clue/internal/serve"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// ScenarioConfig parameterises one scenario run. Zero values take
// driver defaults; the contract bounds default to the scenario's own
// declaration (negative disables an individual bound).
type ScenarioConfig struct {
	// Name is the scenario to run (tracegen.ScenarioNames).
	Name string `json:"name"`
	// Seed drives the generated program, the probe addresses and the
	// lookup traffic.
	Seed int64 `json:"seed"`
	// Routes is the base FIB size (0 = the generator default, 12000).
	Routes int `json:"routes"`
	// StormOps overrides the generated storm size where the scenario
	// draws from the churn generator (update-burst, flash-crowd).
	StormOps int `json:"storm_ops,omitempty"`
	// Workers is the runtime's partition worker count (default 4).
	Workers int `json:"workers"`
	// Lookers is the number of concurrent traffic goroutines (default 4).
	// Each looker follows the phase's declared traffic spec.
	Lookers int `json:"lookers"`
	// CheckpointsPerPhase is how many times per phase the driver
	// quiesces and diffs the published table against the oracle model
	// (default 3; every phase also ends with a checkpoint).
	CheckpointsPerPhase int `json:"checkpoints_per_phase"`
	// Probes is the random-probe count verified per checkpoint (default
	// 800, on top of sampled route boundaries).
	Probes int `json:"probes"`
	// MaxDegradedP99/MaxDivertRate/MaxConverge override the scenario
	// contract: zero keeps the scenario's declared bound, negative
	// disables that assertion.
	MaxDegradedP99 time.Duration `json:"max_degraded_p99,omitempty"`
	MaxDivertRate  float64       `json:"max_divert_rate,omitempty"`
	MaxConverge    time.Duration `json:"max_converge,omitempty"`
	// Rebalance enables the runtime's load-aware repartitioning
	// controller for the run (zero value = off, the static even carve).
	Rebalance serve.RebalanceConfig `json:"rebalance,omitempty"`
	// Mutant plants a deliberate defect in the oracle model. The
	// self-tests use it to prove a storm checkpoint catches real
	// divergence; production runs use oracle.MutantNone.
	Mutant oracle.Mutant `json:"mutant,omitempty"`
	// Log, when non-nil, receives progress lines.
	Log io.Writer `json:"-"`
	// ReproDir, when non-empty, receives a shrunk JSON reproducer when
	// the run fails.
	ReproDir string `json:"-"`
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Lookers == 0 {
		c.Lookers = 4
	}
	if c.CheckpointsPerPhase == 0 {
		c.CheckpointsPerPhase = 3
	}
	if c.Probes == 0 {
		c.Probes = 800
	}
	return c
}

// contract resolves the effective bounds: scenario defaults with
// config overrides applied (negative override = bound disabled).
func (c ScenarioConfig) contract(sc *tracegen.Scenario) tracegen.ScenarioContract {
	eff := sc.Contract
	switch {
	case c.MaxDegradedP99 < 0:
		eff.MaxDegradedP99 = 0
	case c.MaxDegradedP99 > 0:
		eff.MaxDegradedP99 = c.MaxDegradedP99
	}
	switch {
	case c.MaxDivertRate < 0:
		eff.MaxDivertRate = 0
	case c.MaxDivertRate > 0:
		eff.MaxDivertRate = c.MaxDivertRate
	}
	switch {
	case c.MaxConverge < 0:
		eff.MaxConverge = 0
	case c.MaxConverge > 0:
		eff.MaxConverge = c.MaxConverge
	}
	return eff
}

// PhaseReport is the per-phase slice of a scenario run.
type PhaseReport struct {
	Name        string  `json:"name"`
	Storm       bool    `json:"storm"`
	Ops         int     `json:"ops"`
	Checkpoints int     `json:"checkpoints"`
	Lookups     int64   `json:"lookups"`
	DivertRate  float64 `json:"divert_rate"`
	RoutesAfter int     `json:"routes_after"`
}

// ScenarioReport is the machine-readable outcome of a scenario run
// (clue-chaos -scenario emits it as JSON). A run only counts as passed
// when RunScenario also returned a nil error.
type ScenarioReport struct {
	Scenario string                    `json:"scenario"`
	Seed     int64                     `json:"seed"`
	Routes   int                       `json:"routes"`
	Mutant   string                    `json:"mutant"`
	Contract tracegen.ScenarioContract `json:"contract"`
	Phases   []PhaseReport             `json:"phases"`

	Ops            int   `json:"ops"`
	Checkpoints    int   `json:"checkpoints"`
	CheckedLookups int   `json:"checked_lookups"`
	WrongAnswers   int   `json:"wrong_answers"`
	Lookups        int64 `json:"lookups"`
	DispatchErrors int64 `json:"dispatch_errors"`
	UpdateErrors   int   `json:"update_errors"`

	// DispatchP99Ns is the whole-run end-to-end dispatch p99 (worst
	// outcome path), storm included — the contract's "degraded-mode"
	// latency. DivertRate is diverted/dispatched over the whole run;
	// StormDivertRate the same ratio inside the storm phase alone.
	DispatchP99Ns   float64 `json:"dispatch_p99_ns"`
	DivertRate      float64 `json:"divert_rate"`
	StormDivertRate float64 `json:"storm_divert_rate"`

	// Converged reports the published table's canonical hash matched
	// the oracle's expected hash after the storm; ConvergeNs is the gap
	// between the last storm update completing and the first match.
	Converged  bool   `json:"converged"`
	ConvergeNs int64  `json:"converge_ns"`
	TableHash  string `json:"table_hash"`

	PeakRoutes       int64 `json:"peak_routes"`
	FinalRoutes      int   `json:"final_routes"`
	GoroutinesBefore int   `json:"goroutines_before"`
	GoroutinesAfter  int   `json:"goroutines_after"`

	// Rebalance carries the runtime's repartitioning counters (all zero
	// when the controller was off).
	Rebalance serve.RebalanceStats `json:"rebalance"`
}

// RunScenario generates the named scenario program and replays it. The
// returned error is non-nil whenever an invariant broke (wrong answer
// vs the oracle mid-storm, failed dispatch, update error, goroutine
// leak) or the effective contract did not hold (dispatch p99 cliff,
// divert-rate overrun, convergence timeout).
func RunScenario(cfg ScenarioConfig) (ScenarioReport, error) {
	cfg = cfg.withDefaults()
	rep, err := runScenario(cfg)
	if err != nil && cfg.ReproDir != "" {
		writeReproducer(cfg, rep, err)
	}
	return rep, err
}

func runScenario(cfg ScenarioConfig) (ScenarioReport, error) {
	sc, err := tracegen.GenScenario(cfg.Name, tracegen.ScenarioConfig{
		Seed:     cfg.Seed,
		Routes:   cfg.Routes,
		StormOps: cfg.StormOps,
	})
	if err != nil {
		return ScenarioReport{Scenario: cfg.Name, Seed: cfg.Seed}, err
	}
	contract := cfg.contract(sc)
	rep := ScenarioReport{
		Scenario: cfg.Name,
		Seed:     cfg.Seed,
		Routes:   len(sc.Base),
		Mutant:   cfg.Mutant.String(),
		Contract: contract,
		Ops:      sc.Ops(),
	}

	model := oracle.NewModel(sc.Base, cfg.Mutant)
	probeRNG := rand.New(rand.NewSource(cfg.Seed + 3))

	rep.GoroutinesBefore = runtime.NumGoroutine()
	rt, err := serve.New(sc.Base, serve.Config{Workers: cfg.Workers, Rebalance: cfg.Rebalance})
	if err != nil {
		return rep, err
	}
	closed := false
	defer func() {
		if !closed {
			rt.Close()
		}
	}()

	// Lookers follow the phase's declared traffic spec. Each looker
	// keeps one Traffic generator per phase, all built from the same
	// per-looker seed, so flash-crowd's Invert really is the same
	// popularity ranking reversed — the divert caches and the home
	// carve warmed up on the straight ranking face its mirror image.
	population := tracegen.PrefixesFromRoutes(sc.Base)
	var phaseIdx atomic.Int32
	phaseLookups := make([]atomic.Int64, len(sc.Phases))
	stop := make(chan struct{})
	var lookerWG sync.WaitGroup
	var lookups, dispatchErrs atomic.Int64
	for i := 0; i < cfg.Lookers; i++ {
		traffics := make([]*tracegen.Traffic, len(sc.Phases))
		for pi, ph := range sc.Phases {
			tr, terr := tracegen.NewTraffic(population, tracegen.TrafficConfig{
				Seed:   cfg.Seed + 1000 + int64(i),
				ZipfS:  ph.Traffic.ZipfS,
				Repeat: ph.Traffic.Repeat,
				Invert: ph.Traffic.Invert,
			})
			if terr != nil {
				return rep, fmt.Errorf("chaos: scenario traffic: %w", terr)
			}
			traffics[pi] = tr
		}
		lookerWG.Add(1)
		go func() {
			defer lookerWG.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				pi := int(phaseIdx.Load())
				addr := traffics[pi].Next()
				// Mostly the dispatch path — that is where diversion,
				// caching and degraded mode live — with a snapshot
				// lookup mixed in.
				if n%4 == 3 {
					rt.Lookup(addr)
				} else if _, derr := rt.Dispatch(addr); derr != nil {
					dispatchErrs.Add(1)
				}
				lookups.Add(1)
				phaseLookups[pi].Add(1)
			}
		}()
	}
	finish := func() {
		close(stop)
		lookerWG.Wait()
	}

	var (
		firstWrong    error
		stormEnd      time.Time
		expectedHash  uint64
		stormDispPrev int64
		stormDivPrev  int64
	)
	si := sc.StormPhase()
	for pi, ph := range sc.Phases {
		phaseIdx.Store(int32(pi))
		before := rt.Stats()
		pr := PhaseReport{Name: ph.Name, Storm: ph.Storm, Ops: len(ph.Updates)}
		if pi == si {
			stormDispPrev, stormDivPrev = before.Dispatched, before.Diverted
		}

		cpEvery := len(ph.Updates)
		if cfg.CheckpointsPerPhase > 0 && len(ph.Updates) > cfg.CheckpointsPerPhase {
			cpEvery = len(ph.Updates) / cfg.CheckpointsPerPhase
		}
		idx := 0
		for idx < len(ph.Updates) {
			// Same commuting-window submission as the soak harness: a
			// window never repeats a prefix and never crosses a
			// checkpoint, so the oracle model stays exact regardless of
			// how the writer batches it.
			limit := idx + windowMax
			if cp := ((idx / cpEvery) + 1) * cpEvery; cp < limit {
				limit = cp
			}
			end := idx
			seen := make(map[ip.Prefix]struct{}, windowMax)
			for end < len(ph.Updates) && end < limit {
				if _, dup := seen[ph.Updates[end].Prefix]; dup {
					break
				}
				seen[ph.Updates[end].Prefix] = struct{}{}
				end++
			}
			if end == idx {
				end = idx + 1
			}
			window := ph.Updates[idx:end]

			errs := make([]error, len(window))
			var wg sync.WaitGroup
			for i, u := range window {
				wg.Add(1)
				go func(i int, u tracegen.Update) {
					defer wg.Done()
					_, errs[i] = applyOne(rt, u)
				}(i, u)
			}
			wg.Wait()
			for i, werr := range errs {
				if werr != nil {
					rep.UpdateErrors++
					finish()
					return rep, fmt.Errorf("chaos: scenario %s phase %s op %d (%v %s): %w",
						cfg.Name, ph.Name, idx+i, window[i].Kind, window[i].Prefix, werr)
				}
				applyModel(model, window[i])
			}
			idx = end

			if idx%cpEvery == 0 || idx == len(ph.Updates) {
				wrong, checked := scenarioCheckpoint(rt, model, probeRNG, cfg.Probes)
				rep.Checkpoints++
				pr.Checkpoints++
				rep.CheckedLookups += checked
				rep.WrongAnswers += len(wrong)
				if len(wrong) > 0 && firstWrong == nil {
					firstWrong = fmt.Errorf("phase %s op %d: %w", ph.Name, idx, wrong[0])
				}
				logf(cfg.Log, "scenario %s: phase %s op %6d/%d — checkpoint %d, %d probes, %d wrong, %d routes",
					cfg.Name, ph.Name, idx, len(ph.Updates), rep.Checkpoints, checked, len(wrong), rt.Snapshot().Len())
			}
		}

		if pi == si {
			// Convergence clock starts the moment the storm's last
			// update has been accepted; the expected hash is the
			// oracle's canonical compression, digested by the feed
			// wire-format hash (independent of serve's implementation).
			stormEnd = time.Now()
			expectedHash = feed.CanonicalHash(onrtc.Compress(trie.FromRoutes(model.Routes())).Routes())
			deadline := contract.MaxConverge
			if deadline <= 0 {
				deadline = 10 * time.Second
			}
			rep.Converged, rep.ConvergeNs = awaitConvergence(rt, expectedHash, stormEnd, deadline)
			logf(cfg.Log, "scenario %s: storm done — converged=%v in %s (hash %016x)",
				cfg.Name, rep.Converged, time.Duration(rep.ConvergeNs), expectedHash)
		}

		after := rt.Stats()
		pr.Lookups = phaseLookups[pi].Load()
		if d := after.Dispatched - before.Dispatched; d > 0 {
			pr.DivertRate = float64(after.Diverted-before.Diverted) / float64(d)
		}
		pr.RoutesAfter = after.Routes
		rep.Phases = append(rep.Phases, pr)
		if pi == si {
			if d := after.Dispatched - stormDispPrev; d > 0 {
				rep.StormDivertRate = float64(after.Diverted-stormDivPrev) / float64(d)
			}
		}
	}

	finish()
	st := rt.Stats()
	rep.Lookups = lookups.Load()
	rep.DispatchErrors = dispatchErrs.Load()
	rep.DispatchP99Ns = st.Latency.DispatchP99Ns()
	rep.DivertRate = st.DivertRate()
	rep.TableHash = fmt.Sprintf("%016x", st.TableHash)
	rep.PeakRoutes = st.PeakRoutes
	rep.FinalRoutes = st.Routes
	rep.Rebalance = st.Rebalance

	rt.Close()
	closed = true
	rep.GoroutinesAfter = awaitGoroutines(rep.GoroutinesBefore)

	switch {
	case rep.WrongAnswers > 0:
		return rep, fmt.Errorf("chaos: scenario %s: %d wrong answers vs oracle (first: %w)", cfg.Name, rep.WrongAnswers, firstWrong)
	case rep.DispatchErrors > 0:
		return rep, fmt.Errorf("chaos: scenario %s: %d dispatches failed their retry/timeout budget", cfg.Name, rep.DispatchErrors)
	case !rep.Converged:
		return rep, fmt.Errorf("chaos: scenario %s: table never converged to oracle hash %016x within %v (published %s)",
			cfg.Name, expectedHash, contract.MaxConverge, rep.TableHash)
	case contract.MaxConverge > 0 && rep.ConvergeNs > contract.MaxConverge.Nanoseconds():
		return rep, fmt.Errorf("chaos: scenario %s: time-to-converge %v exceeds the contract bound %v",
			cfg.Name, time.Duration(rep.ConvergeNs), contract.MaxConverge)
	case contract.MaxDegradedP99 > 0 && rep.DispatchP99Ns > float64(contract.MaxDegradedP99.Nanoseconds()):
		return rep, fmt.Errorf("chaos: scenario %s: dispatch p99 %.0fns exceeds the contract bound %v",
			cfg.Name, rep.DispatchP99Ns, contract.MaxDegradedP99)
	case contract.MaxDivertRate > 0 && rep.DivertRate > contract.MaxDivertRate:
		return rep, fmt.Errorf("chaos: scenario %s: divert rate %.3f exceeds the contract bound %.3f (storm-window rate %.3f)",
			cfg.Name, rep.DivertRate, contract.MaxDivertRate, rep.StormDivertRate)
	case rep.GoroutinesAfter > rep.GoroutinesBefore:
		return rep, fmt.Errorf("chaos: scenario %s: goroutine leak: %d before, %d after close", cfg.Name, rep.GoroutinesBefore, rep.GoroutinesAfter)
	}
	return rep, nil
}

func applyModel(m *oracle.Model, u tracegen.Update) {
	switch u.Kind {
	case tracegen.Announce:
		m.Announce(u.Prefix, u.Hop)
	case tracegen.Withdraw:
		m.Withdraw(u.Prefix)
	}
}

// scenarioCheckpoint quiesces and diffs the runtime against the
// brute-force model: the published table route-for-route against the
// model's canonical compression (plus the ONRTC disjointness
// invariant), then sampled boundaries and random probes through the
// snapshot and dispatch paths. The mirror trie is rebuilt from the
// model each time, so a model mutant (deliberate or real divergence)
// surfaces here, mid-storm, not just at the end.
func scenarioCheckpoint(rt *serve.Runtime, model *oracle.Model, rng *rand.Rand, probes int) (wrong []error, checked int) {
	return checkpoint(rt, trie.FromRoutes(model.Routes()), rng, probes)
}

// awaitConvergence polls the runtime's canonical table hash until it
// matches the oracle expectation, and reports whether it matched and
// how long after stormEnd the first match landed.
func awaitConvergence(rt *serve.Runtime, want uint64, stormEnd time.Time, deadline time.Duration) (bool, int64) {
	limit := stormEnd.Add(deadline)
	for {
		if rt.TableHash() == want {
			return true, time.Since(stormEnd).Nanoseconds()
		}
		if time.Now().After(limit) {
			return false, time.Since(stormEnd).Nanoseconds()
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Reproducer is the shrunk failing configuration clue-chaos and the
// weekly soak write next to a failed scenario run.
type Reproducer struct {
	Config ScenarioConfig `json:"config"`
	Error  string         `json:"error"`
	Report ScenarioReport `json:"report"`
	// Shrunk reports whether the config is smaller than the original
	// failing run (the original always reproduces too).
	Shrunk bool `json:"shrunk"`
}

// writeReproducer shrinks the failing config (halving the FIB and the
// storm while the failure persists, a few rounds at most) and writes a
// replayable JSON reproducer into cfg.ReproDir.
func writeReproducer(cfg ScenarioConfig, rep ScenarioReport, runErr error) {
	small := cfg
	small.ReproDir = "" // no recursive artifacts
	small.Log = nil
	small.Lookers = 1 // failure classes the shrinker chases are traffic-independent
	repro := Reproducer{Config: small, Error: runErr.Error(), Report: rep}
	for round := 0; round < 4; round++ {
		cand := small
		if cand.Routes == 0 {
			cand.Routes = rep.Routes
		}
		cand.Routes /= 2
		if cand.StormOps > 0 {
			cand.StormOps /= 2
		}
		if cand.Routes < 600 {
			break
		}
		candRep, candErr := runScenario(cand)
		if candErr == nil {
			break
		}
		small = cand
		repro = Reproducer{Config: small, Error: candErr.Error(), Report: candRep, Shrunk: true}
		logf(cfg.Log, "scenario %s: shrink round %d still fails at routes=%d", cfg.Name, round+1, cand.Routes)
	}
	buf, err := json.MarshalIndent(repro, "", "  ")
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	if err := os.MkdirAll(cfg.ReproDir, 0o755); err != nil {
		return
	}
	path := filepath.Join(cfg.ReproDir, fmt.Sprintf("scenario-%s-seed%d.json", cfg.Name, cfg.Seed))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return
	}
	logf(cfg.Log, "scenario %s: reproducer written to %s", cfg.Name, path)
}
