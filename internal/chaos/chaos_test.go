package chaos

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"clue/internal/tracegen"
	"clue/internal/update"
)

// TestChaosSoak is the acceptance soak: a 10K-op update storm with three
// kill/recover cycles (operator fails and injected panics), queue
// stalls, and concurrent lookup traffic, checkpointed against a fresh
// oracle. -short runs a scaled-down storm with the same structure.
func TestChaosSoak(t *testing.T) {
	cfg := Config{Seed: 7}
	if testing.Short() {
		cfg = Config{Seed: 7, Routes: 4000, Ops: 1500, Cycles: 2, Checkpoints: 5, ProbesPerCheckpoint: 500, Lookers: 2}
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run failed: %v\nreport: %+v", err, rep)
	}
	wantCycles := 3
	if testing.Short() {
		wantCycles = 2
	}
	if rep.Kills+rep.Poisons < wantCycles {
		t.Fatalf("only %d kills + %d poisons, want %d cycles", rep.Kills, rep.Poisons, wantCycles)
	}
	if rep.Recoveries != rep.Kills+rep.Poisons {
		t.Fatalf("recoveries %d != kills+poisons %d", rep.Recoveries, rep.Kills+rep.Poisons)
	}
	if rep.Poisons > 0 && rep.Panics < int64(rep.Poisons) {
		t.Fatalf("panics %d < poisons %d", rep.Panics, rep.Poisons)
	}
	if rep.Stalls == 0 {
		t.Fatal("no stalls injected")
	}
	if rep.WrongAnswers != 0 || rep.DispatchErrors != 0 {
		t.Fatalf("wrong=%d dispatch errors=%d", rep.WrongAnswers, rep.DispatchErrors)
	}
	if rep.CheckedLookups == 0 || rep.Lookups == 0 {
		t.Fatalf("no verification traffic: checked=%d lookups=%d", rep.CheckedLookups, rep.Lookups)
	}
	if rep.FinalStats.Rehomes < int64(rep.Kills+rep.Poisons+rep.Recoveries) {
		t.Fatalf("rehomes %d < health transitions %d", rep.FinalStats.Rehomes, rep.Kills+rep.Poisons+rep.Recoveries)
	}
	if rep.GoroutinesAfter > rep.GoroutinesBefore {
		t.Fatalf("goroutine leak: %d -> %d", rep.GoroutinesBefore, rep.GoroutinesAfter)
	}
	// The degraded-mode latency assertion ran (default 1s bound) and
	// recorded a real tail: dispatches were sampled through the whole
	// kill/poison/stall schedule.
	if !rep.DispatchP99Bounded {
		t.Fatal("dispatch p99 bound did not run under the default config")
	}
	if rep.DispatchP99Ns <= 0 {
		t.Fatalf("dispatch p99 = %g, want positive after a soak with traffic", rep.DispatchP99Ns)
	}
}

// TestChaosDispatchP99Bound pins the bound's gating behavior on a small
// storm: an absurdly tight bound must fail the run with the p99 error,
// and a negative bound must disable the assertion entirely.
func TestChaosDispatchP99Bound(t *testing.T) {
	cfg := Config{Seed: 31, Routes: 3000, Ops: 600, Cycles: 1, Checkpoints: 2, ProbesPerCheckpoint: 200, Lookers: 2}

	tight := cfg
	tight.MaxDispatchP99 = 1 // 1ns: no real dispatch can pass
	rep, err := Run(tight)
	if err == nil || !strings.Contains(err.Error(), "dispatch p99") {
		t.Fatalf("1ns bound: err = %v, want dispatch p99 violation", err)
	}
	if !rep.DispatchP99Bounded || rep.DispatchP99Ns <= 1 {
		t.Fatalf("1ns bound report: %+v", rep)
	}

	off := cfg
	off.MaxDispatchP99 = -1
	rep, err = Run(off)
	if err != nil {
		t.Fatalf("disabled bound still failed: %v", err)
	}
	if rep.DispatchP99Bounded {
		t.Fatal("negative MaxDispatchP99 did not disable the bound")
	}
}

// TestChaosSequentialTTFReplay runs the storm one op at a time and
// demands the runtime's TTF accounting exactly matches an
// internal/update replay of the same trace over a fresh core.System.
func TestChaosSequentialTTFReplay(t *testing.T) {
	cfg := Config{Seed: 11, Routes: 3000, Ops: 400, Cycles: 2, Checkpoints: 4, ProbesPerCheckpoint: 300, Lookers: 2, Sequential: true}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("sequential chaos run failed: %v\nreport: %+v", err, rep)
	}
	if !rep.TTFChecked {
		t.Fatal("TTF replay equivalence did not run")
	}
	if rep.WrongAnswers != 0 {
		t.Fatalf("wrong answers: %d", rep.WrongAnswers)
	}
}

// TestChaosDeterministic replays the same seed twice and expects the
// deterministic half of the report (everything except traffic volume)
// to be identical.
func TestChaosDeterministic(t *testing.T) {
	cfg := Config{Seed: 23, Routes: 3000, Ops: 1200, Cycles: 2, Checkpoints: 4, ProbesPerCheckpoint: 300, Lookers: 2}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type det struct {
		kills, poisons, stalls, recoveries, checkpoints, checked, wrong, finalRoutes int
	}
	da := det{a.Kills, a.Poisons, a.Stalls, a.Recoveries, a.Checkpoints, a.CheckedLookups, a.WrongAnswers, a.FinalRoutes}
	db := det{b.Kills, b.Poisons, b.Stalls, b.Recoveries, b.Checkpoints, b.CheckedLookups, b.WrongAnswers, b.FinalRoutes}
	if da != db {
		t.Fatalf("same seed, different runs:\n%+v\n%+v", da, db)
	}
}

func TestConfigDefaultsAndHelpers(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Routes != 12000 || c.Ops != 10000 || c.Workers != 4 || c.Cycles != 3 ||
		c.Checkpoints != 10 || c.ProbesPerCheckpoint != 2000 || c.Lookers != 4 {
		t.Fatalf("zero config defaults: %+v", c)
	}
	if c.MaxDispatchP99 != time.Second {
		t.Fatalf("default MaxDispatchP99 = %v, want 1s", c.MaxDispatchP99)
	}
	if d := (Config{MaxDispatchP99: -1}).withDefaults(); d.MaxDispatchP99 != -1 {
		t.Fatalf("negative MaxDispatchP99 overwritten: %v", d.MaxDispatchP99)
	}
	c = Config{Routes: 1, Ops: 2, Workers: 3, Cycles: 4, Checkpoints: 5, ProbesPerCheckpoint: 6, Lookers: 7}.withDefaults()
	if c.Routes != 1 || c.Ops != 2 || c.Workers != 3 || c.Cycles != 4 ||
		c.Checkpoints != 5 || c.ProbesPerCheckpoint != 6 || c.Lookers != 7 {
		t.Fatalf("explicit config overwritten: %+v", c)
	}

	var buf bytes.Buffer
	logf(&buf, "checkpoint %d", 3)
	logf(nil, "dropped")
	if got := buf.String(); got != "checkpoint 3\n" {
		t.Fatalf("logf wrote %q", got)
	}

	var p sysPipeline
	if p.Name() != "serve-chaos" {
		t.Fatalf("pipeline name %q", p.Name())
	}
	p.Warm(nil)
	if _, err := p.Apply(tracegen.Update{Kind: tracegen.UpdateKind(99)}); err == nil ||
		!strings.Contains(err.Error(), "unknown update kind") {
		t.Fatalf("unknown kind accepted: %v", err)
	}

	if !ttfClose(update.TTF{Trie: 1, TCAM: 2, DRed: 3}, update.TTF{Trie: 1, TCAM: 2, DRed: 3}) {
		t.Fatal("identical TTFs not close")
	}
	if ttfClose(update.TTF{Trie: 1}, update.TTF{Trie: 2}) {
		t.Fatal("distinct TTFs reported close")
	}
}
