package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clue/internal/feed"
	"clue/internal/fibgen"
	"clue/internal/oracle"
	"clue/internal/serve"
	"clue/internal/tracegen"
)

// scenarioTestConfig keeps scenario runs small enough for tier-1 CI
// while still exercising multi-window storms and mid-storm checkpoints.
func scenarioTestConfig(name string) ScenarioConfig {
	return ScenarioConfig{
		Name:                name,
		Seed:                7,
		Routes:              1500,
		StormOps:            400,
		Workers:             4,
		Lookers:             2,
		CheckpointsPerPhase: 2,
		Probes:              200,
		// Latency is load-dependent on shared CI machines; the latency
		// and divert bounds get their own deterministic coverage below,
		// so the functional tests only keep the convergence bound.
		MaxDegradedP99: -1,
		MaxDivertRate:  -1,
	}
}

// TestScenarioRunAll replays every scenario end to end: zero wrong
// answers against the brute-force model, convergence to the oracle
// hash after the storm, checkpoints actually firing mid-storm, and a
// sane machine-readable report.
func TestScenarioRunAll(t *testing.T) {
	for _, name := range tracegen.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			rep, err := RunScenario(scenarioTestConfig(name))
			if err != nil {
				t.Fatalf("scenario failed: %v\nreport: %+v", err, rep)
			}
			if rep.WrongAnswers != 0 || rep.DispatchErrors != 0 || rep.UpdateErrors != 0 {
				t.Fatalf("errors in passing run: %+v", rep)
			}
			if !rep.Converged || rep.ConvergeNs < 0 {
				t.Fatalf("no convergence measurement: %+v", rep)
			}
			if rep.Checkpoints < 3*len(rep.Phases)/2 {
				t.Fatalf("only %d checkpoints over %d phases", rep.Checkpoints, len(rep.Phases))
			}
			if rep.CheckedLookups == 0 || rep.Lookups == 0 {
				t.Fatalf("no lookup coverage: %+v", rep)
			}
			if len(rep.Phases) != 3 || !rep.Phases[1].Storm {
				t.Fatalf("unexpected phase layout: %+v", rep.Phases)
			}
			if rep.Ops != rep.Phases[0].Ops+rep.Phases[1].Ops+rep.Phases[2].Ops {
				t.Fatalf("phase op counts do not sum: %+v", rep)
			}
			if name == tracegen.ScenarioRouteLeak && rep.PeakRoutes <= int64(rep.Routes) {
				t.Fatalf("route leak never bloated the table: peak %d, base %d", rep.PeakRoutes, rep.Routes)
			}
			if len(rep.TableHash) != 16 {
				t.Fatalf("bad table hash %q", rep.TableHash)
			}
			buf, jerr := json.Marshal(rep)
			if jerr != nil || !strings.Contains(string(buf), `"scenario":"`+name+`"`) {
				t.Fatalf("report does not serialise: %v %s", jerr, buf)
			}
		})
	}
}

// TestScenarioMutantCaught is the lab's self-test: with the oracle's
// drop-withdraw mutant planted, the session-reset storm (all
// withdraws, then re-announce) must fail its mid-storm checkpoint —
// the model keeps every route while the runtime empties the table. A
// lab that cannot catch a planted bug proves nothing about real ones.
func TestScenarioMutantCaught(t *testing.T) {
	cfg := scenarioTestConfig(tracegen.ScenarioSessionReset)
	cfg.Routes = 900
	cfg.Mutant = oracle.MutantDropWithdraw
	cfg.MaxConverge = 300 * time.Millisecond // the hash can never match; fail fast
	rep, err := RunScenario(cfg)
	if err == nil {
		t.Fatalf("planted drop-withdraw mutant not caught: %+v", rep)
	}
	if rep.WrongAnswers == 0 {
		t.Fatalf("mutant caught only at the end, not mid-storm: %v", err)
	}
	stormCPs := 0
	for _, ph := range rep.Phases {
		if ph.Storm {
			stormCPs = ph.Checkpoints
		}
	}
	if stormCPs == 0 {
		t.Fatalf("no storm checkpoints ran before the failure: %+v", rep.Phases)
	}
}

// TestScenarioContractViolation: an absurdly tight converge bound must
// turn a healthy run into a contract failure (the report still carries
// the measurement), proving the bounds are asserted, not decorative.
func TestScenarioContractViolation(t *testing.T) {
	cfg := scenarioTestConfig(tracegen.ScenarioUpdateBurst)
	cfg.Routes = 900
	cfg.MaxConverge = time.Nanosecond
	rep, err := RunScenario(cfg)
	if err == nil || !strings.Contains(err.Error(), "time-to-converge") {
		t.Fatalf("1ns converge bound did not trip: err=%v rep=%+v", err, rep)
	}
	if !rep.Converged {
		t.Fatalf("run should have converged (just late): %+v", rep)
	}
}

// TestScenarioReproducer: a failing run with ReproDir set writes a
// parseable shrunk reproducer whose config still names the mutant.
func TestScenarioReproducer(t *testing.T) {
	dir := t.TempDir()
	cfg := scenarioTestConfig(tracegen.ScenarioSessionReset)
	cfg.Routes = 1200
	cfg.Mutant = oracle.MutantDropWithdraw
	cfg.MaxConverge = 300 * time.Millisecond
	cfg.ReproDir = dir
	if _, err := RunScenario(cfg); err == nil {
		t.Fatal("mutant run passed")
	}
	path := filepath.Join(dir, "scenario-session-reset-seed7.json")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no reproducer: %v", err)
	}
	var repro Reproducer
	if err := json.Unmarshal(buf, &repro); err != nil {
		t.Fatalf("reproducer does not parse: %v\n%s", err, buf)
	}
	if repro.Config.Mutant != oracle.MutantDropWithdraw || repro.Config.Name != tracegen.ScenarioSessionReset {
		t.Fatalf("reproducer lost the failing config: %+v", repro.Config)
	}
	if repro.Error == "" {
		t.Fatal("reproducer has no error")
	}
	if repro.Shrunk && repro.Config.Routes >= cfg.Routes {
		t.Fatalf("claimed shrunk but routes grew: %+v", repro.Config)
	}
	// The reproducer must replay: the same config must still fail.
	rcfg := repro.Config
	if _, err := RunScenario(rcfg); err == nil {
		t.Fatalf("reproducer config passes: %+v", rcfg)
	}
}

// TestScenarioUnknownName: generation errors surface, they don't panic.
func TestScenarioUnknownName(t *testing.T) {
	if _, err := RunScenario(ScenarioConfig{Name: "no-such-storm", Seed: 1, Routes: 700}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// TestCanonicalHashCrossImplementation pins the convergence protocol's
// core assumption: serve's incremental snapshot digest and the feed
// wire-format digest are byte-compatible over the same table. The
// whole time-to-converge measurement compares one against the other.
func TestCanonicalHashCrossImplementation(t *testing.T) {
	fib, err := fibgen.Generate(fibgen.Config{Seed: 5, Routes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := serve.New(fib.Routes(), serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got, want := rt.TableHash(), feed.CanonicalHash(rt.Snapshot().Routes()); got != want {
		t.Fatalf("serve hash %016x != feed hash %016x over the same table", got, want)
	}
	// And again after churn forces republication.
	gen, err := tracegen.NewUpdateGen(fib, tracegen.UpdateConfig{Seed: 6, Messages: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range gen.NextN(300) {
		if _, err := applyOne(rt, u); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := rt.TableHash(), feed.CanonicalHash(rt.Snapshot().Routes()); got != want {
		t.Fatalf("post-churn serve hash %016x != feed hash %016x", got, want)
	}
}

// FuzzScenarioReplay fuzzes the scenario lab end to end on small
// programs: for any seed/shape, generation either errors cleanly or
// the replay must pass the oracle checkpoints and converge — no
// divergence, no panic. Latency/divert bounds are disabled (they are
// load-dependent, not logic).
func FuzzScenarioReplay(f *testing.F) {
	f.Add(int64(7), uint8(0), uint16(700), uint16(60))
	f.Add(int64(11), uint8(1), uint16(900), uint16(0))
	f.Add(int64(23), uint8(2), uint16(650), uint16(120))
	f.Add(int64(42), uint8(3), uint16(800), uint16(40))
	names := tracegen.ScenarioNames()
	f.Fuzz(func(t *testing.T, seed int64, which uint8, routes uint16, stormOps uint16) {
		cfg := ScenarioConfig{
			Name:                names[int(which)%len(names)],
			Seed:                seed,
			Routes:              600 + int(routes)%700,
			StormOps:            int(stormOps) % 300,
			Workers:             2,
			Lookers:             1,
			CheckpointsPerPhase: 2,
			Probes:              100,
			MaxDegradedP99:      -1,
			MaxDivertRate:       -1,
		}
		rep, err := RunScenario(cfg)
		if err != nil {
			// Only generation-time errors are acceptable (e.g. a seed
			// whose FIB has no /8../22 cover for route-leak); any
			// replay-time failure is oracle divergence or a broken
			// invariant.
			if rep.Ops != 0 {
				t.Fatalf("scenario %s seed %d diverged: %v", cfg.Name, seed, err)
			}
			return
		}
		if rep.WrongAnswers != 0 || !rep.Converged {
			t.Fatalf("scenario %s seed %d: wrong=%d converged=%v", cfg.Name, seed, rep.WrongAnswers, rep.Converged)
		}
	})
}
