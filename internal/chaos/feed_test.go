package chaos

import (
	"encoding/json"
	"testing"
)

func feedTestConfig(seed int64) FeedConfig {
	return FeedConfig{Seed: seed, Routes: 1500, Updates: 600, BatchSize: 4, Window: 12, HashEvery: 6}
}

func TestFeedChaosReconverges(t *testing.T) {
	cfg := feedTestConfig(7)
	if !testing.Short() {
		cfg = FeedConfig{Seed: 7}
	}
	rep, err := RunFeed(cfg)
	if err != nil {
		t.Fatalf("feed chaos failed: %v\nreport: %+v", err, rep)
	}
	if rep.LinkCuts != 2 || rep.Stalls != 1 || rep.CollectorRestarts != 1 {
		t.Fatalf("fault schedule did not run fully: %d cuts, %d stalls, %d restarts",
			rep.LinkCuts, rep.Stalls, rep.CollectorRestarts)
	}
	if rep.Resumes == 0 {
		t.Fatal("no resume ran")
	}
	if rep.SnapshotLoads < 3 {
		t.Fatalf("SnapshotLoads = %d, want >= 3 (two bootstraps + over-window re-snapshot)", rep.SnapshotLoads)
	}
	if rep.HashMismatches != 0 {
		t.Fatalf("hash mismatches: %d", rep.HashMismatches)
	}
	if rep.ConvergedRoutes == 0 {
		t.Fatal("empty converged table")
	}
	if rep.MaxLag == 0 {
		t.Fatal("stall phase never showed follower lag")
	}
	// The report must be JSON-encodable for clue-chaos output.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-encodable: %v", err)
	}
}

// TestFeedChaosDeterministic: the fault schedule and trace derive from
// the seed, so two runs inject identical faults and converge to the
// same table.
func TestFeedChaosDeterministic(t *testing.T) {
	cfg := feedTestConfig(23)
	a, err := RunFeed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFeed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Batches != b.Batches || a.Records != b.Records || a.ConvergedRoutes != b.ConvergedRoutes {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.LinkCuts != b.LinkCuts || a.Stalls != b.Stalls || a.CollectorRestarts != b.CollectorRestarts {
		t.Fatalf("fault schedules diverged: %+v vs %+v", a, b)
	}
}

func TestFeedConfigDefaults(t *testing.T) {
	c := FeedConfig{}.withDefaults()
	if c.Routes == 0 || c.Updates == 0 || c.BatchSize == 0 || c.Window == 0 || c.HashEvery == 0 || c.Workers == 0 {
		t.Fatalf("defaults left zero values: %+v", c)
	}
	keep := FeedConfig{Routes: 1, Updates: 40, BatchSize: 2, Window: 3, HashEvery: 4, Workers: 5}
	if got := keep.withDefaults(); got != keep {
		t.Fatalf("withDefaults clobbered explicit values: %+v", got)
	}
	if _, err := RunFeed(FeedConfig{Seed: 1, Updates: 20, BatchSize: 4}); err == nil {
		t.Fatal("trace too short for the schedule should be rejected")
	}
}
