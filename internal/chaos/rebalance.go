package chaos

// Rebalance comparison: the flash-crowd scenario run twice over the
// identical seeded program — once with the static even-by-route-count
// carve, once with the load-aware repartitioning controller on.
//
// The legs run under an explicit capacity model: Config.ServicePace
// gives each worker a fixed service rate (the software stand-in for a
// TCAM chip), and the lookers offer semi-open-loop load — each sleeps a
// jittered think time between dispatches — tuned so the aggregate rate
// fits inside the total service capacity while the inverted-Zipf storm
// head overloads its home partition. Divert pressure is then a property
// of the carve, not of host scheduling: the hot home queue fills because
// its offered share exceeds 1/pace, and a recut that spreads the head
// relieves it. That keeps the contract meaningful even on a single-CPU
// host, where unpaced workers share one core and per-partition overload
// cannot exist.
//
// The comparison holds the on-run to a declared contract: the
// steady-state divert rate (measured over a window after the controller
// has had time to converge) must improve on the off-run by at least
// MinImprovement, and the off-run must have produced real divert
// pressure in the first place so the assertion can never pass vacuously.

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"clue/internal/serve"
	"clue/internal/tracegen"
)

// RebalanceCompareConfig parameterises the paired flash-crowd run.
// Zero values take calibrated defaults.
type RebalanceCompareConfig struct {
	// Seed drives the scenario program and the lookup traffic; both legs
	// share it, so they replay the identical trace.
	Seed int64 `json:"seed"`
	// Routes is the base FIB size (default 4000).
	Routes int `json:"routes"`
	// Workers is the partition worker count (default 4).
	Workers int `json:"workers"`
	// QueueDepth bounds each worker queue (default 6 — shallow, so an
	// overloaded home partition shows up as diverts within tens of
	// milliseconds instead of absorbing the excess silently, but deep
	// enough that ordinary near-capacity queueing noise stays clear of
	// the structural overload signal).
	QueueDepth int `json:"queue_depth"`
	// ServicePace is the per-address worker service time (default 2ms,
	// i.e. 500 lookups/s of capacity per worker). See
	// serve.Config.ServicePace.
	ServicePace time.Duration `json:"service_pace_ns"`
	// Lookers is the number of concurrent dispatch goroutines (default
	// 120).
	Lookers int `json:"lookers"`
	// Think is the mean per-looker pause between dispatches (default
	// 80ms; jittered ±25% per draw). Lookers/Think sets the offered
	// rate: the defaults offer ~1500/s against 4×500/s of capacity, so
	// an even spread fits with headroom but the storm's hot partition
	// (~38% share) does not.
	Think time.Duration `json:"think_ns"`
	// Rebalance is the on-leg controller configuration. A zero Interval
	// takes 500ms — long enough for each pass to drain a meaningful
	// sketch sample at the offered rate; a zero MaxMoveFraction takes
	// 0.5 so convergence fits inside Adapt.
	Rebalance serve.RebalanceConfig `json:"rebalance"`
	// Warmup is how long benign traffic runs before the storm (default
	// 1.2s) — it seeds the sketches with the pre-flip popularity.
	Warmup time.Duration `json:"warmup_ns"`
	// Adapt is how long the inverted storm traffic runs before the
	// measurement window opens (default 3.5s) — the controller's
	// convergence budget (~7 passes at the default interval).
	Adapt time.Duration `json:"adapt_ns"`
	// Measure is the steady-state window the divert rates are computed
	// over (default 1.5s).
	Measure time.Duration `json:"measure_ns"`
	// MinImprovement is the declared contract margin: the on-leg steady
	// divert rate must be at most (1-MinImprovement) times the off-leg
	// rate (default 0.2).
	MinImprovement float64 `json:"min_improvement"`
	// MinOffDivert is the pressure floor: the off-leg steady divert rate
	// must reach it or the comparison errors as inconclusive rather than
	// passing on a workload that never stressed the carve (default 0.02).
	MinOffDivert float64 `json:"min_off_divert"`
	// Log, when non-nil, receives progress lines.
	Log io.Writer `json:"-"`
}

func (c RebalanceCompareConfig) withDefaults() RebalanceCompareConfig {
	if c.Routes == 0 {
		c.Routes = 4000
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 6
	}
	if c.ServicePace == 0 {
		c.ServicePace = 2 * time.Millisecond
	}
	if c.Lookers == 0 {
		c.Lookers = 120
	}
	if c.Think == 0 {
		c.Think = 80 * time.Millisecond
	}
	if c.Rebalance.Interval == 0 {
		c.Rebalance.Interval = 500 * time.Millisecond
	}
	if c.Rebalance.MaxMoveFraction == 0 {
		c.Rebalance.MaxMoveFraction = 0.5
	}
	if c.Warmup == 0 {
		c.Warmup = 1200 * time.Millisecond
	}
	if c.Adapt == 0 {
		c.Adapt = 3500 * time.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 1500 * time.Millisecond
	}
	if c.MinImprovement == 0 {
		c.MinImprovement = 0.2
	}
	if c.MinOffDivert == 0 {
		c.MinOffDivert = 0.02
	}
	return c
}

// RebalanceLeg is one half of the comparison: the steady-state window's
// measurements plus the leg's repartitioning counters.
type RebalanceLeg struct {
	// SteadyDivertRate is diverted/dispatched inside the measurement
	// window only — after Adapt, so the off-leg shows the static carve's
	// equilibrium and the on-leg the controller's.
	SteadyDivertRate float64 `json:"steady_divert_rate"`
	// SteadyDispatches is the window's dispatch count (the denominator).
	SteadyDispatches int64 `json:"steady_dispatches"`
	// DispatchP99Ns is the leg's whole-run end-to-end dispatch p99.
	DispatchP99Ns float64 `json:"dispatch_p99_ns"`
	// DispatchErrors counts dispatches that exhausted their retry
	// budget; under deliberate overload a few are legitimate.
	DispatchErrors int64 `json:"dispatch_errors"`
	// Rebalance carries the runtime's controller counters (zero on the
	// off leg).
	Rebalance serve.RebalanceStats `json:"rebalance"`
}

// RebalanceCompareReport is the machine-readable outcome of the paired
// run (clue-chaos -compare-rebalance emits it as JSON).
type RebalanceCompareReport struct {
	Seed           int64        `json:"seed"`
	Routes         int          `json:"routes"`
	Workers        int          `json:"workers"`
	MinImprovement float64      `json:"min_improvement"`
	Off            RebalanceLeg `json:"off"`
	On             RebalanceLeg `json:"on"`
	// Improvement is 1 - on/off steady divert rate (1 when the on-leg
	// diverted nothing, 0 when it matched the off-leg, negative when it
	// regressed).
	Improvement float64 `json:"improvement"`
}

// CompareRebalance generates the flash-crowd scenario once and replays
// it twice — rebalancing off, then on — under pressure traffic, and
// asserts the on-run's declared contract: the controller actually
// recut, and the steady-state divert rate improved by MinImprovement.
func CompareRebalance(cfg RebalanceCompareConfig) (RebalanceCompareReport, error) {
	cfg = cfg.withDefaults()
	rep := RebalanceCompareReport{
		Seed:           cfg.Seed,
		Routes:         cfg.Routes,
		Workers:        cfg.Workers,
		MinImprovement: cfg.MinImprovement,
	}
	sc, err := tracegen.GenScenario(tracegen.ScenarioFlashCrowd, tracegen.ScenarioConfig{
		Seed:   cfg.Seed,
		Routes: cfg.Routes,
	})
	if err != nil {
		return rep, err
	}
	rep.Routes = len(sc.Base)

	logf(cfg.Log, "rebalance compare: flash-crowd seed %d, %d routes — off leg", cfg.Seed, rep.Routes)
	rep.Off, err = rebalanceLeg(cfg, sc, serve.RebalanceConfig{})
	if err != nil {
		return rep, fmt.Errorf("chaos: rebalance compare off leg: %w", err)
	}
	logf(cfg.Log, "rebalance compare: off steady divert %.3f over %d dispatches — on leg",
		rep.Off.SteadyDivertRate, rep.Off.SteadyDispatches)
	rep.On, err = rebalanceLeg(cfg, sc, cfg.Rebalance)
	if err != nil {
		return rep, fmt.Errorf("chaos: rebalance compare on leg: %w", err)
	}
	if rep.Off.SteadyDivertRate > 0 {
		rep.Improvement = 1 - rep.On.SteadyDivertRate/rep.Off.SteadyDivertRate
	}
	logf(cfg.Log, "rebalance compare: on steady divert %.3f after %d recuts (%d routes moved) — improvement %.3f",
		rep.On.SteadyDivertRate, rep.On.Rebalance.Recuts, rep.On.Rebalance.MovedRoutes, rep.Improvement)

	switch {
	case rep.Off.SteadyDivertRate < cfg.MinOffDivert:
		return rep, fmt.Errorf("chaos: rebalance compare inconclusive: off-leg steady divert rate %.4f below the %.4f pressure floor — the workload never stressed the static carve",
			rep.Off.SteadyDivertRate, cfg.MinOffDivert)
	case rep.On.Rebalance.Recuts == 0:
		return rep, fmt.Errorf("chaos: rebalance compare: the controller never recut under the flash crowd (skips: %d)", rep.On.Rebalance.Skips)
	case rep.On.SteadyDivertRate > rep.Off.SteadyDivertRate*(1-cfg.MinImprovement):
		return rep, fmt.Errorf("chaos: rebalance contract failed: on-leg steady divert rate %.4f is not %.0f%% below the off-leg's %.4f (improvement %.3f)",
			rep.On.SteadyDivertRate, cfg.MinImprovement*100, rep.Off.SteadyDivertRate, rep.Improvement)
	}
	return rep, nil
}

// rebalanceLeg boots a paced runtime over the scenario base with the
// given controller config and replays the program: warmup churn under
// benign traffic, then the storm churn under the inverted spec, holding
// the storm traffic through the adapt and measurement windows. The
// divert rate is computed from stats snapshots bracketing the final
// window.
func rebalanceLeg(cfg RebalanceCompareConfig, sc *tracegen.Scenario, reb serve.RebalanceConfig) (RebalanceLeg, error) {
	var leg RebalanceLeg
	rt, err := serve.New(sc.Base, serve.Config{
		Workers:     cfg.Workers,
		QueueDepth:  cfg.QueueDepth,
		ServicePace: cfg.ServicePace,
		Rebalance:   reb,
	})
	if err != nil {
		return leg, err
	}
	defer rt.Close()

	population := tracegen.PrefixesFromRoutes(sc.Base)
	var phaseIdx atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var dispatchErrs atomic.Int64
	for i := 0; i < cfg.Lookers; i++ {
		// All lookers share one ranking seed — the popularity ranking is
		// derived from it, so distinct per-looker seeds would give every
		// looker a different hot prefix and flatten the aggregate skew
		// the comparison depends on — while drawing from per-looker
		// DrawSeeds, so the fleet does not march through one identical
		// sequence in lockstep bursts.
		traffics := make([]*tracegen.Traffic, len(sc.Phases))
		for pi, ph := range sc.Phases {
			tr, terr := tracegen.NewTraffic(population, tracegen.TrafficConfig{
				Seed:     cfg.Seed + 1000,
				DrawSeed: cfg.Seed + 9000 + int64(i),
				ZipfS:  ph.Traffic.ZipfS,
				Repeat: ph.Traffic.Repeat,
				Invert: ph.Traffic.Invert,
			})
			if terr != nil {
				close(stop)
				wg.Wait()
				return leg, terr
			}
			traffics[pi] = tr
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger the start phases across one think period, then
			// jitter every pause ±25%: synchronized lookers would arrive
			// in waves that overflow every queue at once, making diverts
			// insensitive to the carve. The jitter PRNG is seeded per
			// looker, so both legs offer the identical pattern.
			jit := rand.New(rand.NewSource(cfg.Seed + 7000 + int64(i)))
			pause := cfg.Think * time.Duration(i) / time.Duration(cfg.Lookers)
			for {
				select {
				case <-stop:
					return
				case <-time.After(pause):
				}
				if _, derr := rt.Dispatch(traffics[phaseIdx.Load()].Next()); derr != nil {
					dispatchErrs.Add(1)
				}
				pause = cfg.Think/2 + cfg.Think/4 + time.Duration(jit.Int63n(int64(cfg.Think)/2))
			}
		}(i)
	}

	// Warmup phase: benign churn, benign traffic.
	for _, u := range sc.Phases[0].Updates {
		if _, uerr := applyOne(rt, u); uerr != nil {
			close(stop)
			wg.Wait()
			return leg, uerr
		}
	}
	time.Sleep(cfg.Warmup)

	// Storm: flip the traffic, play the background churn, then hold the
	// inverted load through the adapt window and the measurement window.
	si := sc.StormPhase()
	phaseIdx.Store(int32(si))
	for _, u := range sc.Phases[si].Updates {
		if _, uerr := applyOne(rt, u); uerr != nil {
			close(stop)
			wg.Wait()
			return leg, uerr
		}
	}
	time.Sleep(cfg.Adapt)
	before := rt.Stats()
	time.Sleep(cfg.Measure)
	after := rt.Stats()

	close(stop)
	wg.Wait()
	st := rt.Stats()
	leg.SteadyDispatches = after.Dispatched - before.Dispatched
	if leg.SteadyDispatches > 0 {
		leg.SteadyDivertRate = float64(after.Diverted-before.Diverted) / float64(leg.SteadyDispatches)
	}
	leg.DispatchP99Ns = st.Latency.DispatchP99Ns()
	leg.DispatchErrors = dispatchErrs.Load()
	leg.Rebalance = st.Rebalance
	if leg.SteadyDispatches == 0 {
		return leg, fmt.Errorf("no dispatches landed in the measurement window")
	}
	return leg, nil
}
