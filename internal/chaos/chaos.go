// Package chaos is a deterministic fault-injection and soak harness for
// the serve runtime. It drives a live serve.Runtime with a tracegen
// update storm and concurrent lookup traffic while killing, poisoning,
// stalling and recovering partition workers on a seeded schedule, and
// checkpoints the published table against a fresh onrtc oracle built
// from a mirror trie.
//
// Everything the harness decides — the base FIB, the update trace, the
// fault schedule, the probe addresses — derives from Config.Seed, so a
// failing run replays exactly. Updates are submitted concurrently in
// windows of distinct prefixes: distinct prefixes commute through the
// trie and the disjoint compressed table, so the mirror stays an exact
// oracle no matter how the writer batches a window.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clue/internal/core"
	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/serve"
	"clue/internal/tracegen"
	"clue/internal/trie"
	"clue/internal/update"
)

// Config parameterises one chaos run. Zero values take soak defaults.
type Config struct {
	// Seed drives every random choice in the run.
	Seed int64
	// Routes is the base FIB size (default 12000).
	Routes int
	// Ops is the update-storm length (default 10000).
	Ops int
	// Workers is the runtime's partition worker count (default 4).
	Workers int
	// Cycles is the number of kill/recover cycles spread over the storm
	// (default 3). Even cycles fail a worker through the operator API,
	// odd cycles poison it so it panics mid-service; every cycle also
	// stalls a different worker's queue for part of the cycle.
	Cycles int
	// Checkpoints is how many times the run quiesces and compares the
	// published table against a fresh oracle (default 10).
	Checkpoints int
	// ProbesPerCheckpoint is the random-lookup count verified against
	// the oracle at each checkpoint, on top of sampled route boundaries
	// (default 2000).
	ProbesPerCheckpoint int
	// Lookers is the number of concurrent lookup goroutines hammering
	// Dispatch/Lookup/DispatchBatch throughout the run (default 4).
	Lookers int
	// Sequential applies the update storm one op at a time instead of in
	// concurrent windows, and additionally verifies that the runtime's
	// TTF accounting matches an internal/update replay of the same trace
	// over a fresh core.System — the deterministic cost model makes the
	// totals exactly reproducible.
	Sequential bool
	// MaxDispatchP99 bounds the runtime's end-to-end dispatch p99
	// (worst of the home/diverted/cache-hit paths) across the whole
	// soak, kill/recover storms included: degraded mode may divert and
	// retry, but a dispatch latency cliff is an invariant violation,
	// not an operating mode. Default 1s — the runtime's own
	// EnqueueTimeout budget; a successful dispatch that took longer
	// than the budget for *failing* means the backoff path wedged.
	// Negative disables the assertion.
	MaxDispatchP99 time.Duration
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Routes == 0 {
		c.Routes = 12000
	}
	if c.Ops == 0 {
		c.Ops = 10000
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Cycles == 0 {
		c.Cycles = 3
	}
	if c.Checkpoints == 0 {
		c.Checkpoints = 10
	}
	if c.ProbesPerCheckpoint == 0 {
		c.ProbesPerCheckpoint = 2000
	}
	if c.Lookers == 0 {
		c.Lookers = 4
	}
	if c.MaxDispatchP99 == 0 {
		c.MaxDispatchP99 = time.Second
	}
	return c
}

// Report is the outcome of a chaos run. A run only counts as passed
// when Run also returned a nil error.
type Report struct {
	Seed        int64 `json:"seed"`
	Ops         int   `json:"ops"`
	Checkpoints int   `json:"checkpoints"`
	// Kills/Poisons/Stalls/Recoveries count injected faults; Panics is
	// the runtime's recovered-panic counter at the end of the run.
	Kills      int   `json:"kills"`
	Poisons    int   `json:"poisons"`
	Stalls     int   `json:"stalls"`
	Recoveries int   `json:"recoveries"`
	Panics     int64 `json:"panics"`
	// Lookups is the concurrent-traffic volume served during the storm;
	// CheckedLookups the oracle-verified probes across checkpoints.
	Lookups        int64 `json:"lookups"`
	CheckedLookups int   `json:"checked_lookups"`
	// DispatchP99Ns is the runtime's end-to-end dispatch p99 (worst
	// outcome path) over the whole soak, degraded windows included;
	// DispatchP99Bounded reports the Config.MaxDispatchP99 assertion ran
	// (and held, if Run returned nil).
	DispatchP99Ns      float64 `json:"dispatch_p99_ns"`
	DispatchP99Bounded bool    `json:"dispatch_p99_bounded"`
	// WrongAnswers and DispatchErrors must both be zero: forwarding
	// never stops and never lies while any worker is alive.
	WrongAnswers   int   `json:"wrong_answers"`
	DispatchErrors int64 `json:"dispatch_errors"`
	UpdateErrors   int   `json:"update_errors"`
	// TTFChecked reports the sequential-mode replay equivalence ran (and
	// passed, if Run returned nil).
	TTFChecked bool `json:"ttf_checked"`
	// GoroutinesBefore/After bracket the run for leak detection.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
	// FinalRoutes is the compressed table size at the end; FinalStats
	// the runtime's closing metrics export.
	FinalRoutes int         `json:"final_routes"`
	FinalStats  serve.Stats `json:"final_stats"`
}

// event kinds on the fault schedule.
const (
	evKill = iota
	evPoison
	evStall
	evRelease
	evRecover
)

type event struct {
	at     int // op index the event fires before
	kind   int
	worker int
}

// windowMax caps a concurrent submission window. Windows only contain
// distinct prefixes, so every op in a window commutes with the others.
const windowMax = 64

// Run executes one chaos soak and reports what happened. The returned
// error is non-nil whenever any invariant broke: a wrong answer against
// the oracle, a dispatch that exhausted its retry/timeout budget, an
// update pipeline error, a TTF replay mismatch or a leaked goroutine.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Seed: cfg.Seed, Ops: cfg.Ops}

	fib, err := fibgen.Generate(fibgen.Config{Seed: cfg.Seed, Routes: cfg.Routes})
	if err != nil {
		return rep, err
	}
	routes := fib.Routes()
	// The generator churns its own private FIB copy; the mirror is the
	// harness's oracle state and only moves when the runtime accepted
	// the same op.
	// The storm leans toward withdraws and away from brand-new prefixes
	// so the FIB shrinks slightly over the run: TCAM chips are sized with
	// fixed headroom over their initial partition load, and a
	// growth-heavy trace would legitimately overflow a skewed chip —
	// that's the rebalancer's problem, not the failure-handling layer's.
	gen, err := tracegen.NewUpdateGen(trie.FromRoutes(routes), tracegen.UpdateConfig{
		Seed:          cfg.Seed,
		Messages:      cfg.Ops,
		WithdrawFrac:  0.25,
		NewPrefixFrac: 0.15,
	})
	if err != nil {
		return rep, err
	}
	ups := gen.NextN(cfg.Ops)
	mirror := trie.FromRoutes(routes)

	events := schedule(cfg)
	probeRNG := rand.New(rand.NewSource(cfg.Seed + 2))

	rep.GoroutinesBefore = runtime.NumGoroutine()
	rt, err := serve.New(routes, serve.Config{Workers: cfg.Workers})
	if err != nil {
		return rep, err
	}
	closed := false
	defer func() {
		if !closed {
			rt.Close()
		}
	}()

	// Concurrent lookup traffic for the whole storm. Lookers check
	// liveness (no dispatch may fail while a worker is alive), not
	// answers — answer correctness is the quiesced checkpoints' job.
	stop := make(chan struct{})
	var lookerWG sync.WaitGroup
	var lookups, dispatchErrs atomic.Int64
	for i := 0; i < cfg.Lookers; i++ {
		lookerWG.Add(1)
		go func(seed int64) {
			defer lookerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := make([]ip.Addr, 16)
			var out []serve.Result
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				switch n % 4 {
				case 0, 1:
					if _, err := rt.Dispatch(ip.Addr(rng.Uint32())); err != nil {
						dispatchErrs.Add(1)
					}
					lookups.Add(1)
				case 2:
					rt.Lookup(ip.Addr(rng.Uint32()))
					lookups.Add(1)
				case 3:
					for j := range batch {
						batch[j] = ip.Addr(rng.Uint32())
					}
					var berr error
					if out, berr = rt.DispatchBatch(batch, out); berr != nil {
						dispatchErrs.Add(1)
					}
					lookups.Add(int64(len(batch)))
				}
			}
		}(cfg.Seed + 100 + int64(i))
	}

	var ttfSum update.TTF
	var firstWrong error
	var releases []func()
	releaseAll := func() {
		for _, r := range releases {
			r()
		}
		releases = releases[:0]
	}
	defer releaseAll()

	checkEvery := cfg.Ops / cfg.Checkpoints
	if checkEvery == 0 {
		checkEvery = 1
	}
	nextEvent := 0
	idx := 0
	for idx < len(ups) {
		// Fire every fault due at or before this point.
		for nextEvent < len(events) && events[nextEvent].at <= idx {
			ev := events[nextEvent]
			nextEvent++
			switch ev.kind {
			case evKill:
				if err := rt.FailWorker(ev.worker); err != nil {
					return rep, fmt.Errorf("chaos: FailWorker(%d) at op %d: %w", ev.worker, idx, err)
				}
				rep.Kills++
				logf(cfg.Log, "op %6d: failed worker %d", idx, ev.worker)
			case evPoison:
				if err := poison(rt, ev.worker); err != nil {
					return rep, fmt.Errorf("chaos: poison worker %d at op %d: %w", ev.worker, idx, err)
				}
				rep.Poisons++
				logf(cfg.Log, "op %6d: poisoned worker %d", idx, ev.worker)
			case evStall:
				rel, err := rt.StallWorker(ev.worker)
				if err != nil {
					return rep, fmt.Errorf("chaos: StallWorker(%d) at op %d: %w", ev.worker, idx, err)
				}
				releases = append(releases, rel)
				rep.Stalls++
				logf(cfg.Log, "op %6d: stalled worker %d", idx, ev.worker)
			case evRelease:
				releaseAll()
				logf(cfg.Log, "op %6d: released stalls", idx)
			case evRecover:
				if err := waitFailed(rt, ev.worker); err != nil {
					return rep, fmt.Errorf("chaos: at op %d: %w", idx, err)
				}
				if err := rt.RecoverWorker(ev.worker); err != nil {
					return rep, fmt.Errorf("chaos: RecoverWorker(%d) at op %d: %w", ev.worker, idx, err)
				}
				rep.Recoveries++
				logf(cfg.Log, "op %6d: recovered worker %d", idx, ev.worker)
			}
		}

		// A submission window never crosses a fault or checkpoint
		// boundary and never repeats a prefix, so its ops commute.
		limit := idx + windowMax
		if cfg.Sequential {
			limit = idx + 1
		}
		if nextEvent < len(events) && events[nextEvent].at < limit {
			limit = events[nextEvent].at
		}
		if cp := ((idx / checkEvery) + 1) * checkEvery; cp < limit {
			limit = cp
		}
		end := idx
		seen := make(map[ip.Prefix]struct{}, windowMax)
		for end < len(ups) && end < limit {
			if _, dup := seen[ups[end].Prefix]; dup {
				break
			}
			seen[ups[end].Prefix] = struct{}{}
			end++
		}
		if end == idx {
			end = idx + 1 // repeated prefix right at the boundary: single-op window
		}
		window := ups[idx:end]

		if cfg.Sequential {
			ttf, err := applyOne(rt, window[0])
			if err != nil {
				rep.UpdateErrors++
				return rep, fmt.Errorf("chaos: op %d (%v %s): %w", idx, window[0].Kind, window[0].Prefix, err)
			}
			ttfSum = ttfSum.Add(ttf)
			applyMirror(mirror, window[0])
		} else {
			errs := make([]error, len(window))
			var wg sync.WaitGroup
			for i, u := range window {
				wg.Add(1)
				go func(i int, u tracegen.Update) {
					defer wg.Done()
					_, errs[i] = applyOne(rt, u)
				}(i, u)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					rep.UpdateErrors++
					return rep, fmt.Errorf("chaos: op %d (%v %s): %w", idx+i, window[i].Kind, window[i].Prefix, err)
				}
				applyMirror(mirror, window[i])
			}
		}
		idx = end

		if idx%checkEvery == 0 || idx == len(ups) {
			// A checkpoint is a quiesce point: any stall still scheduled
			// must release first, or the dispatch probes (and the main
			// loop with them) could block behind the wedged queue that
			// only this loop can un-wedge.
			releaseAll()
			wrong, checked := checkpoint(rt, mirror, probeRNG, cfg.ProbesPerCheckpoint)
			rep.Checkpoints++
			rep.CheckedLookups += checked
			rep.WrongAnswers += len(wrong)
			if len(wrong) > 0 && firstWrong == nil {
				firstWrong = wrong[0]
			}
			logf(cfg.Log, "op %6d: checkpoint %d — %d probes, %d wrong, %d routes",
				idx, rep.Checkpoints, checked, len(wrong), rt.Snapshot().Len())
		}
	}

	releaseAll()
	close(stop)
	lookerWG.Wait()
	rep.Lookups = lookups.Load()
	rep.DispatchErrors = dispatchErrs.Load()
	st := rt.Stats()
	rep.Panics = st.WorkerPanics
	rep.FinalRoutes = rt.Snapshot().Len()
	rep.FinalStats = st
	rep.DispatchP99Ns = st.Latency.DispatchP99Ns()
	rep.DispatchP99Bounded = cfg.MaxDispatchP99 > 0

	if cfg.Sequential {
		if err := checkTTFReplay(routes, ups, ttfSum, st.TTFTotals); err != nil {
			return rep, err
		}
		rep.TTFChecked = true
	}

	rt.Close()
	closed = true
	rep.GoroutinesAfter = awaitGoroutines(rep.GoroutinesBefore)

	switch {
	case rep.WrongAnswers > 0:
		return rep, fmt.Errorf("chaos: %d wrong answers vs oracle (first: %w)", rep.WrongAnswers, firstWrong)
	case rep.DispatchErrors > 0:
		return rep, fmt.Errorf("chaos: %d dispatches failed their retry/timeout budget", rep.DispatchErrors)
	case rep.DispatchP99Bounded && rep.DispatchP99Ns > float64(cfg.MaxDispatchP99.Nanoseconds()):
		return rep, fmt.Errorf("chaos: dispatch p99 %.0fns exceeds the degraded-mode bound %v (home %.0fns, diverted %.0fns, cache-hit %.0fns)",
			rep.DispatchP99Ns, cfg.MaxDispatchP99,
			st.Latency.DispatchHome.P99, st.Latency.DispatchDiverted.P99, st.Latency.DispatchCacheHit.P99)
	case rep.GoroutinesAfter > rep.GoroutinesBefore:
		return rep, fmt.Errorf("chaos: goroutine leak: %d before, %d after close", rep.GoroutinesBefore, rep.GoroutinesAfter)
	}
	return rep, nil
}

// schedule lays the fault events over the op space: per cycle one worker
// goes down (operator fail on even cycles, panic on odd), a different
// worker's queue stalls mid-cycle and releases, and the down worker
// recovers at three quarters.
func schedule(cfg Config) []event {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	cycleLen := cfg.Ops / cfg.Cycles
	if cycleLen < 4 {
		cycleLen = 4
	}
	var events []event
	for c := 0; c < cfg.Cycles; c++ {
		base := c * cycleLen
		if base+cycleLen > cfg.Ops {
			break
		}
		victim := rng.Intn(cfg.Workers)
		kind := evKill
		if c%2 == 1 {
			kind = evPoison
		}
		events = append(events,
			event{base + cycleLen/4, kind, victim},
			event{base + cycleLen/2, evStall, (victim + 1) % cfg.Workers},
			event{base + cycleLen*5/8, evRelease, 0},
			event{base + cycleLen*3/4, evRecover, victim},
		)
	}
	return events
}

// poison injects a panic request, retrying briefly when the victim's
// queue is momentarily full of looker traffic.
func poison(rt *serve.Runtime, worker int) error {
	var err error
	for attempt := 0; attempt < 200; attempt++ {
		if err = rt.PoisonWorker(worker); err == nil || errors.Is(err, serve.ErrUnknownWorker) {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// waitFailed blocks until the worker's panic (or drain) has landed it in
// the failed state, so RecoverWorker sees a legal transition.
func waitFailed(rt *serve.Runtime, worker int) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rt.WorkerStates()[worker] == serve.WorkerFailed {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("chaos: worker %d never reached failed (now %v)", worker, rt.WorkerStates()[worker])
}

func applyOne(rt *serve.Runtime, u tracegen.Update) (update.TTF, error) {
	switch u.Kind {
	case tracegen.Announce:
		return rt.Announce(u.Prefix, u.Hop)
	case tracegen.Withdraw:
		return rt.Withdraw(u.Prefix)
	}
	return update.TTF{}, fmt.Errorf("chaos: unknown update kind %v", u.Kind)
}

func applyMirror(mirror *trie.Trie, u tracegen.Update) {
	switch u.Kind {
	case tracegen.Announce:
		mirror.Insert(u.Prefix, u.Hop, nil)
	case tracegen.Withdraw:
		mirror.Delete(u.Prefix, nil)
	}
}

// checkpoint quiesces (every submitted op is published — Announce and
// Withdraw block until their snapshot swap) and compares the runtime
// against a fresh compression of the mirror: first the published
// table's ONRTC disjointness invariant and the whole table
// route-for-route, then sampled route boundaries and random probes
// through both the snapshot path and the worker dispatch path.
func checkpoint(rt *serve.Runtime, mirror *trie.Trie, rng *rand.Rand, probes int) (wrong []error, checked int) {
	oracle := onrtc.Compress(mirror)
	snap := rt.Snapshot()
	got, want := snap.Routes(), oracle.Routes()
	if err := onrtc.VerifyDisjoint(got); err != nil {
		wrong = append(wrong, fmt.Errorf("published table not disjoint: %w", err))
	}
	if len(got) != len(want) {
		wrong = append(wrong, fmt.Errorf("table size %d, oracle %d", len(got), len(want)))
	} else {
		for i := range got {
			if got[i] != want[i] {
				wrong = append(wrong, fmt.Errorf("table[%d] = %v, oracle %v", i, got[i], want[i]))
				break
			}
		}
	}

	probe := func(a ip.Addr, dispatch bool) {
		checked++
		wantHop, _ := oracle.Lookup(a, nil)
		hop, _, ok := snap.Lookup(a)
		if ok != (wantHop != ip.NoRoute) || (ok && hop != wantHop) {
			wrong = append(wrong, fmt.Errorf("Lookup(%s) = %d/%v, oracle %d", a, hop, ok, wantHop))
			return
		}
		if dispatch {
			res, err := rt.Dispatch(a)
			if err != nil {
				wrong = append(wrong, fmt.Errorf("Dispatch(%s): %v", a, err))
				return
			}
			if res.Found != (wantHop != ip.NoRoute) || (res.Found && res.Hop != wantHop) {
				wrong = append(wrong, fmt.Errorf("Dispatch(%s) = %+v, oracle %d", a, res, wantHop))
			}
		}
	}

	step := 1
	if probes > 0 && len(want) > probes {
		step = len(want) / probes
	}
	for i := 0; i < len(want) && len(wrong) < 8; i += step {
		probe(want[i].Prefix.First(), false)
		probe(want[i].Prefix.Last(), false)
	}
	for i := 0; i < probes && len(wrong) < 8; i++ {
		probe(ip.Addr(rng.Uint32()), i%4 == 0)
	}
	return wrong, checked
}

// checkTTFReplay re-runs the identical op sequence through a fresh
// core.System via the internal/update replay driver and demands the
// exact same TTF totals — the cost model is deterministic, so any drift
// means the serve write path and the reference pipeline diverged.
func checkTTFReplay(routes []ip.Route, ups []tracegen.Update, got update.TTF, stats update.TTF) error {
	sys, err := core.New(routes, core.Config{})
	if err != nil {
		return fmt.Errorf("chaos: ttf replay system: %w", err)
	}
	ttfs, err := update.Replay(sysPipeline{sys}, ups)
	if err != nil {
		return fmt.Errorf("chaos: ttf replay: %w", err)
	}
	var want update.TTF
	for _, t := range ttfs {
		want = want.Add(t)
	}
	for _, pair := range []struct {
		name      string
		got, want update.TTF
	}{
		{"returned", got, want},
		{"stats", stats, want},
	} {
		if !ttfClose(pair.got, pair.want) {
			return fmt.Errorf("chaos: %s TTF totals %+v != replay %+v", pair.name, pair.got, pair.want)
		}
	}
	return nil
}

func ttfClose(a, b update.TTF) bool {
	close := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-6*(1+math.Abs(y))
	}
	return close(a.Trie, b.Trie) && close(a.TCAM, b.TCAM) && close(a.DRed, b.DRed)
}

// sysPipeline adapts core.System to the internal/update replay driver.
type sysPipeline struct{ sys *core.System }

func (p sysPipeline) Name() string { return "serve-chaos" }

func (p sysPipeline) Apply(u tracegen.Update) (update.TTF, error) {
	switch u.Kind {
	case tracegen.Announce:
		return p.sys.Announce(u.Prefix, u.Hop)
	case tracegen.Withdraw:
		return p.sys.Withdraw(u.Prefix)
	}
	return update.TTF{}, fmt.Errorf("chaos: unknown update kind %v", u.Kind)
}

func (p sysPipeline) Warm([]ip.Addr) {}

// awaitGoroutines waits for the goroutine count to drop back to the
// pre-run level and returns the settled count.
func awaitGoroutines(before int) int {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n := runtime.NumGoroutine(); n <= before {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
