package update

import (
	"fmt"

	"clue/internal/dred"
	"clue/internal/ip"
	"clue/internal/rrcme"
	"clue/internal/tcam"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// CLPLPipeline drives the baseline: an uncompressed trie (TTF1 ground
// truth), a prefix-length-ordered TCAM (Figure 7(b)) and RRC-ME logical
// caches whose maintenance needs control-plane trie walks.
type CLPLPipeline struct {
	fib    *trie.Trie
	chip   *tcam.Chip
	caches *dred.Group
	cost   CostModel
}

var _ Pipeline = (*CLPLPipeline)(nil)

// NewCLPLPipeline loads the original table into a PLO-layout TCAM. The
// fib trie is owned by the pipeline afterwards.
func NewCLPLPipeline(fib *trie.Trie, caches, cacheSize int, cost CostModel) (*CLPLPipeline, error) {
	chip := tcam.NewChip(fib.Len()*2+1024, tcam.NewPLOLayout())
	if err := chip.Load(fib.Routes()); err != nil {
		return nil, fmt.Errorf("update: loading FIB table: %w", err)
	}
	g, err := dred.NewGroup(caches, cacheSize)
	if err != nil {
		return nil, err
	}
	return &CLPLPipeline{fib: fib, chip: chip, caches: g, cost: cost}, nil
}

// Name implements Pipeline.
func (p *CLPLPipeline) Name() string { return "clpl" }

// Chip exposes the TCAM model (tests, ablations).
func (p *CLPLPipeline) Chip() *tcam.Chip { return p.chip }

// Caches exposes the logical cache group (tests).
func (p *CLPLPipeline) Caches() *dred.Group { return p.caches }

// Warm implements Pipeline: each hit runs RRC-ME and fills all caches,
// as CLPL's control plane does during forwarding.
func (p *CLPLPipeline) Warm(addrs []ip.Addr) {
	for _, a := range addrs {
		hop, pfx := p.fib.Lookup(a, nil)
		if hop == ip.NoRoute {
			continue
		}
		exp := rrcme.MinimalExpansion(p.fib, a, pfx, nil)
		p.caches.InsertAll(ip.Route{Prefix: exp, NextHop: hop})
	}
	p.chip.ResetStats()
}

// Apply implements Pipeline.
func (p *CLPLPipeline) Apply(u tracegen.Update) (TTF, error) {
	var ttf TTF
	var visits trie.Visits
	before := p.chip.Stats()
	switch u.Kind {
	case tracegen.Announce:
		prev := p.fib.Insert(u.Prefix, u.Hop, &visits)
		switch {
		case prev == u.Hop:
			// No-op re-announcement: nothing reaches the TCAM.
		case prev != ip.NoRoute:
			// Hop change: in-place TCAM rewrite.
			if err := p.chip.Modify(ip.Route{Prefix: u.Prefix, NextHop: u.Hop}); err != nil {
				return TTF{}, fmt.Errorf("update: clpl modify: %w", err)
			}
		default:
			if _, err := p.chip.Insert(ip.Route{Prefix: u.Prefix, NextHop: u.Hop}); err != nil {
				return TTF{}, fmt.Errorf("update: clpl insert: %w", err)
			}
		}
	case tracegen.Withdraw:
		prev := p.fib.Delete(u.Prefix, &visits)
		if prev != ip.NoRoute {
			if _, err := p.chip.Delete(u.Prefix); err != nil {
				return TTF{}, fmt.Errorf("update: clpl delete: %w", err)
			}
		}
	default:
		return TTF{}, fmt.Errorf("update: unknown kind %v", u.Kind)
	}
	ttf.Trie = float64(visits.Nodes) * p.cost.SRAMAccessNs
	after := p.chip.Stats()
	ttf.TCAM = float64(after.UpdateAccesses()-before.UpdateAccesses()) * p.cost.TCAMAccessNs
	ttf.DRed = p.cacheMaintenance(u.Prefix)
	return ttf, nil
}

// cacheMaintenance models CLPL's RRC-ME update algorithm: the control
// plane must re-examine the trie region around the updated prefix to find
// every cached expansion the change may invalidate (several SRAM visits),
// then fix the caches (one parallel access per affected entry set).
func (p *CLPLPipeline) cacheMaintenance(changed ip.Prefix) float64 {
	var v trie.Visits
	// Walk the path to the prefix plus its remaining subtree — the
	// region whose minimal expansions may have changed.
	node := p.fib.Find(changed, &v)
	if node != nil {
		countSubtree(node, &v)
	}
	cost := float64(v.Nodes) * p.cost.SRAMAccessNs
	removed := p.caches.InvalidateOverlapping(changed)
	// Each distinct invalidated prefix is one parallel cache access;
	// entries were replicated into all caches, so divide by the group
	// size (rounding up).
	n := p.caches.N()
	perPrefix := (removed + n - 1) / n
	// The round trip itself costs at least one access even when nothing
	// was cached.
	if perPrefix < 1 {
		perPrefix = 1
	}
	return cost + float64(perPrefix)*p.cost.TCAMAccessNs
}

// countSubtree adds the subtree's node count to v.
func countSubtree(n *trie.Node, v *trie.Visits) {
	if n == nil {
		return
	}
	v.Nodes++
	countSubtree(n.Children[0], v)
	countSubtree(n.Children[1], v)
}
