package update

import (
	"testing"

	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/tcam"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }

func genFIB(t *testing.T, routes int, seed int64) *trie.Trie {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	return fib
}

func newPipelines(t *testing.T, seed int64) (*CLUEPipeline, *CLPLPipeline) {
	t.Helper()
	clue, err := NewCLUEPipeline(genFIB(t, 5000, seed), 4, 1024, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	clpl, err := NewCLPLPipeline(genFIB(t, 5000, seed), 4, 1024, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return clue, clpl
}

func updateStream(t *testing.T, fib *trie.Trie, n int, seed int64) []tracegen.Update {
	t.Helper()
	// A flap-heavy mix (withdraw + re-announce dominating pure hop
	// changes), the character of the paper's 24 h RIS trace.
	gen, err := tracegen.NewUpdateGen(fib, tracegen.UpdateConfig{
		Seed: seed, Messages: n, WithdrawFrac: 0.30, NewPrefixFrac: 0.55,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.NextN(n)
}

func TestTTFArithmetic(t *testing.T) {
	a := TTF{Trie: 1, TCAM: 2, DRed: 3}
	if a.Total() != 6 {
		t.Errorf("Total = %v", a.Total())
	}
	b := a.Add(TTF{Trie: 1, TCAM: 1, DRed: 1})
	if b != (TTF{Trie: 2, TCAM: 3, DRed: 4}) {
		t.Errorf("Add = %+v", b)
	}
	c := a.Scale(2)
	if c != (TTF{Trie: 2, TCAM: 4, DRed: 6}) {
		t.Errorf("Scale = %+v", c)
	}
}

func TestCLUEPipelineAnnounceWithdraw(t *testing.T) {
	clue, _ := newPipelines(t, 1)
	ttf, err := clue.Apply(tracegen.Update{Kind: tracegen.Announce, Prefix: pfx("203.0.113.0/24"), Hop: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ttf.Trie <= 0 {
		t.Error("announce TTF1 should be positive")
	}
	if ttf.TCAM <= 0 {
		t.Error("announce of fresh prefix should touch TCAM")
	}
	// The chip must now match the updater's table exactly.
	if clue.Chip().Len() != clue.Updater().Table().Len() {
		t.Errorf("chip has %d entries, table %d", clue.Chip().Len(), clue.Updater().Table().Len())
	}
	ttf, err = clue.Apply(tracegen.Update{Kind: tracegen.Withdraw, Prefix: pfx("203.0.113.0/24")})
	if err != nil {
		t.Fatal(err)
	}
	if ttf.TCAM <= 0 || ttf.DRed <= 0 {
		t.Errorf("withdraw TTF = %+v, want TCAM and DRed work", ttf)
	}
	if clue.Chip().Len() != clue.Updater().Table().Len() {
		t.Errorf("after withdraw: chip %d entries, table %d", clue.Chip().Len(), clue.Updater().Table().Len())
	}
}

func TestCLUEPipelineUnknownKind(t *testing.T) {
	clue, _ := newPipelines(t, 2)
	if _, err := clue.Apply(tracegen.Update{Kind: 0, Prefix: pfx("10.0.0.0/8")}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestCLPLPipelineUnknownKind(t *testing.T) {
	_, clpl := newPipelines(t, 2)
	if _, err := clpl.Apply(tracegen.Update{Kind: 0, Prefix: pfx("10.0.0.0/8")}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestChipStaysInSyncUnderChurn is the pipeline integration invariant:
// after thousands of messages, both pipelines' chips hold exactly their
// reference tables.
func TestChipStaysInSyncUnderChurn(t *testing.T) {
	clue, clpl := newPipelines(t, 3)
	stream := updateStream(t, clue.Updater().FIB().Clone(), 3000, 3)
	if _, err := Replay(clue, stream); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(clpl, stream); err != nil {
		t.Fatal(err)
	}

	if clue.Chip().Len() != clue.Updater().Table().Len() {
		t.Errorf("CLUE chip %d entries, compressed table %d", clue.Chip().Len(), clue.Updater().Table().Len())
	}
	for _, r := range clue.Updater().Table().Routes() {
		if !clue.Chip().Contains(r.Prefix) {
			t.Fatalf("CLUE chip missing %s", r.Prefix)
		}
	}

	if clpl.Chip().Len() != clpl.fib.Len() {
		t.Errorf("CLPL chip %d entries, fib %d", clpl.Chip().Len(), clpl.fib.Len())
	}
	for _, r := range clpl.fib.Routes() {
		if !clpl.Chip().Contains(r.Prefix) {
			t.Fatalf("CLPL chip missing %s", r.Prefix)
		}
	}
}

// TestPipelinesForwardEquivalently checks the end state: after the same
// stream, CLUE's compressed chip and CLPL's full chip forward all probes
// identically.
func TestPipelinesForwardEquivalently(t *testing.T) {
	clue, clpl := newPipelines(t, 4)
	stream := updateStream(t, clue.Updater().FIB().Clone(), 2000, 4)
	if _, err := Replay(clue, stream); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(clpl, stream); err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.NewTraffic(tracegen.PrefixesFromRoutes(clue.Updater().Table().Routes()), tracegen.TrafficConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		a := tr.Next()
		ch, _, _ := clue.Chip().Lookup(a)
		ph, _, _ := clpl.Chip().Lookup(a)
		if ch != ph {
			t.Fatalf("divergent forwarding for %s: clue %d, clpl %d", a, ch, ph)
		}
	}
}

// TestPaperHeadlines reproduces the paper's update-cost ordering on a
// realistic stream: CLUE's TTF2 and TTF3 must be far below CLPL's, and
// total TTF clearly below.
func TestPaperHeadlines(t *testing.T) {
	clue, clpl := newPipelines(t, 5)
	// Warm both cache groups with real traffic so TTF3 is exercised.
	tr, err := tracegen.NewTraffic(tracegen.PrefixesFromRoutes(clue.Updater().Table().Routes()), tracegen.TrafficConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	addrs := tr.NextN(20000)
	clue.Warm(addrs)
	clpl.Warm(addrs)

	stream := updateStream(t, clue.Updater().FIB().Clone(), 4000, 5)
	clueSeries, err := Replay(clue, stream)
	if err != nil {
		t.Fatal(err)
	}
	clplSeries, err := Replay(clpl, stream)
	if err != nil {
		t.Fatal(err)
	}
	cs, ps := Summarise(clueSeries), Summarise(clplSeries)

	if cs.Mean.TCAM >= ps.Mean.TCAM/2 {
		t.Errorf("TTF2: clue %.1f ns vs clpl %.1f ns — want clue far below", cs.Mean.TCAM, ps.Mean.TCAM)
	}
	if cs.Mean.DRed >= ps.Mean.DRed/2 {
		t.Errorf("TTF3: clue %.1f ns vs clpl %.1f ns — want clue far below", cs.Mean.DRed, ps.Mean.DRed)
	}
	if cs.Mean.Total() >= ps.Mean.Total() {
		t.Errorf("TTF total: clue %.1f ns vs clpl %.1f ns", cs.Mean.Total(), ps.Mean.Total())
	}
	// TTF1: CLUE pays for compression maintenance, so it should be the
	// larger of the two (the paper's "a little bit longer").
	if cs.Mean.Trie <= ps.Mean.Trie {
		t.Errorf("TTF1: clue %.1f ns vs clpl %.1f ns — want clue above ground truth", cs.Mean.Trie, ps.Mean.Trie)
	}
}

func TestCLUEDRedInvalidatedOnWithdraw(t *testing.T) {
	clue, _ := newPipelines(t, 6)
	// Announce a distinctive prefix, warm a DRed with it, withdraw it.
	u := tracegen.Update{Kind: tracegen.Announce, Prefix: pfx("198.51.100.0/24"), Hop: 5}
	if _, err := clue.Apply(u); err != nil {
		t.Fatal(err)
	}
	clue.Warm([]ip.Addr{ip.MustParseAddr("198.51.100.7")})
	cached := 0
	for i := 0; i < clue.DReds().N(); i++ {
		if clue.DReds().Cache(i).Contains(pfx("198.51.100.0/24")) {
			cached++
		}
	}
	if cached == 0 {
		t.Fatal("warm-up did not cache the prefix")
	}
	if _, err := clue.Apply(tracegen.Update{Kind: tracegen.Withdraw, Prefix: pfx("198.51.100.0/24")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clue.DReds().N(); i++ {
		if clue.DReds().Cache(i).Contains(pfx("198.51.100.0/24")) {
			t.Fatalf("DRed %d still caches withdrawn prefix", i)
		}
	}
}

func TestCLPLCacheInvalidatedOnWithdraw(t *testing.T) {
	_, clpl := newPipelines(t, 7)
	routes := clpl.fib.Routes()
	victim := routes[len(routes)/2]
	clpl.Warm([]ip.Addr{victim.Prefix.First()})
	if _, err := clpl.Apply(tracegen.Update{Kind: tracegen.Withdraw, Prefix: victim.Prefix}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clpl.Caches().N(); i++ {
		c := clpl.Caches().Cache(i)
		hop, _, ok := c.Lookup(victim.Prefix.First())
		if ok && hop == victim.NextHop {
			// A cached expansion serving the withdrawn route survived
			// only if another route with the same hop covers it; verify
			// against the trie.
			want, _ := clpl.fib.Lookup(victim.Prefix.First(), nil)
			if want != hop {
				t.Fatalf("cache %d serves stale hop %d after withdraw", i, hop)
			}
		}
	}
}

func TestSummarise(t *testing.T) {
	s := Summarise([]TTF{
		{Trie: 1, TCAM: 1, DRed: 1},
		{Trie: 3, TCAM: 3, DRed: 3},
	})
	if s.Count != 2 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != (TTF{Trie: 2, TCAM: 2, DRed: 2}) {
		t.Errorf("Mean = %+v", s.Mean)
	}
	if s.Min.Total() != 3 || s.Max.Total() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min.Total(), s.Max.Total())
	}
	if got := Summarise(nil); got.Count != 0 {
		t.Errorf("empty Summarise = %+v", got)
	}
}

func TestReplayPropagatesErrors(t *testing.T) {
	clue, _ := newPipelines(t, 8)
	_, err := Replay(clue, []tracegen.Update{{Kind: 0, Prefix: pfx("10.0.0.0/8")}})
	if err == nil {
		t.Error("Replay swallowed an error")
	}
}

func TestDefaultCosts(t *testing.T) {
	c := DefaultCosts()
	if c.TCAMAccessNs != tcam.AccessNs {
		t.Errorf("TCAMAccessNs = %v, want %v", c.TCAMAccessNs, tcam.AccessNs)
	}
	if c.SRAMAccessNs <= 0 {
		t.Error("SRAMAccessNs must be positive")
	}
}
