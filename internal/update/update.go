// Package update implements the whole incremental-update pipeline of §IV
// and its TTF (Time To Fresh) cost model: TTF1 is the control-plane trie
// work, TTF2 the TCAM entry writes/moves, TTF3 the redundancy-store
// (DRed/logical cache) maintenance. Two pipelines process the same update
// stream:
//
//   - CLUEPipeline: ONRTC incremental trie update producing a compressed-
//     table diff; TCAM under the disjoint layout (≤1 move per op); DRed
//     maintenance is a single parallel invalidate probe — no control
//     plane.
//   - CLPLPipeline: plain trie update (the paper's TTF1 "ground truth");
//     TCAM under the Shah–Gupta prefix-length-ordered layout (≈15 moves);
//     cache maintenance must walk the SRAM trie around the updated prefix
//     to find and refresh affected RRC-ME expansions.
//
// Costs are deterministic: TCAM accesses are priced at the paper's 24 ns
// (CYNSE70256) and control-plane trie node touches at an SRAM latency
// constant, so runs are reproducible and the figures regenerable.
package update

import (
	"fmt"

	"clue/internal/dred"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/tcam"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// CostModel prices the primitive operations.
type CostModel struct {
	// TCAMAccessNs is one TCAM entry write or move (paper: 24 ns).
	TCAMAccessNs float64
	// SRAMAccessNs is one control-plane trie node touch.
	SRAMAccessNs float64
}

// DefaultCosts returns the paper-calibrated model.
func DefaultCosts() CostModel {
	return CostModel{TCAMAccessNs: tcam.AccessNs, SRAMAccessNs: 6}
}

// TTF is one update message's Time-To-Fresh breakdown, in nanoseconds.
type TTF struct {
	// Trie is TTF1: control-plane computation.
	Trie float64
	// TCAM is TTF2: data-plane table maintenance.
	TCAM float64
	// DRed is TTF3: redundancy-store maintenance.
	DRed float64
}

// Total returns TTF1+TTF2+TTF3.
func (t TTF) Total() float64 { return t.Trie + t.TCAM + t.DRed }

// Add returns the element-wise sum (aggregation helper).
func (t TTF) Add(o TTF) TTF {
	return TTF{Trie: t.Trie + o.Trie, TCAM: t.TCAM + o.TCAM, DRed: t.DRed + o.DRed}
}

// Scale returns the element-wise scaling (averaging helper).
func (t TTF) Scale(f float64) TTF {
	return TTF{Trie: t.Trie * f, TCAM: t.TCAM * f, DRed: t.DRed * f}
}

// Pipeline applies routing updates and reports their TTF.
type Pipeline interface {
	// Name identifies the mechanism ("clue" or "clpl").
	Name() string
	// Apply processes one update end to end.
	Apply(u tracegen.Update) (TTF, error)
	// Warm seeds the redundancy stores by simulating lookup hits for the
	// given addresses, so update-time invalidations exercise real
	// content.
	Warm(addrs []ip.Addr)
}

// CLUEPipeline drives trie → compressed TCAM → DRed for the proposed
// mechanism.
type CLUEPipeline struct {
	updater *onrtc.Updater
	chip    *tcam.Chip
	dreds   *dred.Group
	cost    CostModel
}

var _ Pipeline = (*CLUEPipeline)(nil)

// NewCLUEPipeline compresses fib and builds the pipeline around it. The
// fib trie is owned by the pipeline afterwards. caches/cacheSize set the
// DRed group (the paper's 4×1024).
func NewCLUEPipeline(fib *trie.Trie, caches, cacheSize int, cost CostModel) (*CLUEPipeline, error) {
	updater := onrtc.BuildUpdater(fib)
	table := updater.Table()
	// Churn grows the minimal table (fresh routes with new hops break
	// merges), so provision the chip generously, as deployments do.
	chip := tcam.NewChip(table.Len()*4+8192, tcam.NewDisjointLayout())
	if err := chip.Load(table.Routes()); err != nil {
		return nil, fmt.Errorf("update: loading compressed table: %w", err)
	}
	g, err := dred.NewGroup(caches, cacheSize)
	if err != nil {
		return nil, err
	}
	return &CLUEPipeline{updater: updater, chip: chip, dreds: g, cost: cost}, nil
}

// Name implements Pipeline.
func (p *CLUEPipeline) Name() string { return "clue" }

// Chip exposes the TCAM model (tests, ablations).
func (p *CLUEPipeline) Chip() *tcam.Chip { return p.chip }

// Updater exposes the ONRTC updater (tests).
func (p *CLUEPipeline) Updater() *onrtc.Updater { return p.updater }

// DReds exposes the redundancy group (tests).
func (p *CLUEPipeline) DReds() *dred.Group { return p.dreds }

// Warm implements Pipeline: a hit in the compressed table caches the hit
// prefix into the other DReds, exactly as the engine's fill rule does.
// Home assignment is irrelevant to update costs, so hits rotate homes.
func (p *CLUEPipeline) Warm(addrs []ip.Addr) {
	for i, a := range addrs {
		hop, pfx, ok := p.chip.Lookup(a)
		if !ok {
			continue
		}
		p.dreds.InsertExcept(i%p.dreds.N(), ip.Route{Prefix: pfx, NextHop: hop})
	}
	p.chip.ResetStats()
}

// VerifyCoherence checks the cross-store invariants the incremental
// pipeline must preserve through arbitrary churn: the TCAM holds exactly
// the updater's compressed table (TTF2 applied every diff op, none
// dropped or duplicated), the table is pairwise disjoint, and no DRed
// holds an entry the table no longer carries with the same hop (TTF3's
// no-stale-entry-after-withdraw guarantee). The differential oracle
// calls it at every checkpoint.
func (p *CLUEPipeline) VerifyCoherence() error {
	table := p.updater.Table()
	if err := table.VerifyDisjoint(); err != nil {
		return err
	}
	want := table.Routes()
	got := p.chip.Routes()
	if len(got) != len(want) {
		return fmt.Errorf("update: TCAM holds %d routes, compressed table %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("update: TCAM[%d] = %v, compressed table %v", i, got[i], want[i])
		}
	}
	for i := 0; i < p.dreds.N(); i++ {
		for _, r := range p.dreds.Cache(i).Routes() {
			hop := table.Trie().Get(r.Prefix, nil)
			if hop == ip.NoRoute {
				return fmt.Errorf("update: DRed %d holds %v, absent from compressed table", i, r)
			}
			if hop != r.NextHop {
				return fmt.Errorf("update: DRed %d holds %v, table hop is %d", i, r, hop)
			}
		}
	}
	return nil
}

// Apply implements Pipeline.
func (p *CLUEPipeline) Apply(u tracegen.Update) (TTF, error) {
	var diff onrtc.Diff
	switch u.Kind {
	case tracegen.Announce:
		diff = p.updater.Announce(u.Prefix, u.Hop)
	case tracegen.Withdraw:
		diff = p.updater.Withdraw(u.Prefix)
	default:
		return TTF{}, fmt.Errorf("update: unknown kind %v", u.Kind)
	}
	ttf := TTF{Trie: float64(diff.Visits.Nodes) * p.cost.SRAMAccessNs}

	before := p.chip.Stats()
	for _, op := range diff.Ops {
		var err error
		switch op.Kind {
		case onrtc.OpInsert:
			_, err = p.chip.Insert(op.Route)
		case onrtc.OpDelete:
			_, err = p.chip.Delete(op.Route.Prefix)
		case onrtc.OpModify:
			err = p.chip.Modify(op.Route)
		}
		if err != nil {
			return TTF{}, fmt.Errorf("update: applying %v: %w", op, err)
		}
	}
	after := p.chip.Stats()
	ttf.TCAM = float64(after.UpdateAccesses()-before.UpdateAccesses()) * p.cost.TCAMAccessNs

	// DRed maintenance: inserts need nothing; deletes and modifies are a
	// single probe-and-fix, issued to all DReds in parallel (one access
	// time each op).
	for _, op := range diff.Ops {
		switch op.Kind {
		case onrtc.OpDelete:
			p.dreds.Invalidate(op.Route.Prefix)
			ttf.DRed += p.cost.TCAMAccessNs
		case onrtc.OpModify:
			// Refresh the hop where cached.
			for i := 0; i < p.dreds.N(); i++ {
				c := p.dreds.Cache(i)
				if c.Contains(op.Route.Prefix) {
					c.Insert(op.Route)
				}
			}
			ttf.DRed += p.cost.TCAMAccessNs
		}
	}
	return ttf, nil
}
