package update

import (
	"fmt"
	"math"

	"clue/internal/tracegen"
)

// Replay applies a full update stream to a pipeline, returning each
// message's TTF.
func Replay(p Pipeline, updates []tracegen.Update) ([]TTF, error) {
	out := make([]TTF, 0, len(updates))
	for i, u := range updates {
		ttf, err := p.Apply(u)
		if err != nil {
			return nil, fmt.Errorf("update: replaying message %d (%v %s): %w", i, u.Kind, u.Prefix, err)
		}
		out = append(out, ttf)
	}
	return out, nil
}

// Summary aggregates a TTF series.
type Summary struct {
	// Mean is the element-wise average.
	Mean TTF
	// Min and Max are by total TTF.
	Min, Max TTF
	// Count is the number of messages.
	Count int
}

// Summarise computes a Summary over the series.
func Summarise(series []TTF) Summary {
	if len(series) == 0 {
		return Summary{}
	}
	s := Summary{
		Min:   series[0],
		Max:   series[0],
		Count: len(series),
	}
	var sum TTF
	minTotal, maxTotal := math.Inf(1), math.Inf(-1)
	for _, t := range series {
		sum = sum.Add(t)
		if tot := t.Total(); tot < minTotal {
			minTotal, s.Min = tot, t
		}
		if tot := t.Total(); tot > maxTotal {
			maxTotal, s.Max = tot, t
		}
	}
	s.Mean = sum.Scale(1 / float64(len(series)))
	return s
}
