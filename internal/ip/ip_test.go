package ip

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{in: "0.0.0.0", want: 0},
		{in: "255.255.255.255", want: 0xFFFFFFFF},
		{in: "192.0.2.1", want: 0xC0000201},
		{in: "10.0.0.1", want: 0x0A000001},
		{in: "1.2.3", wantErr: true},
		{in: "1.2.3.4.5", wantErr: true},
		{in: "256.0.0.0", wantErr: true},
		{in: "a.b.c.d", wantErr: true},
		{in: "", wantErr: true},
		{in: "-1.0.0.0", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAddr(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", tt.in, got, tt.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrBit(t *testing.T) {
	a := MustParseAddr("128.0.0.1")
	if a.Bit(0) != 1 {
		t.Errorf("Bit(0) of 128.0.0.1 = %d, want 1", a.Bit(0))
	}
	if a.Bit(1) != 0 {
		t.Errorf("Bit(1) of 128.0.0.1 = %d, want 0", a.Bit(1))
	}
	if a.Bit(31) != 1 {
		t.Errorf("Bit(31) of 128.0.0.1 = %d, want 1", a.Bit(31))
	}
}

func TestNewPrefixMasksHostBits(t *testing.T) {
	p, err := NewPrefix(MustParseAddr("10.1.2.3"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits != MustParseAddr("10.0.0.0") {
		t.Errorf("NewPrefix masked bits = %s, want 10.0.0.0", p.Bits)
	}
	if p.Len != 8 {
		t.Errorf("Len = %d, want 8", p.Len)
	}
}

func TestNewPrefixRange(t *testing.T) {
	if _, err := NewPrefix(0, -1); err == nil {
		t.Error("NewPrefix(-1) succeeded, want error")
	}
	if _, err := NewPrefix(0, 33); err == nil {
		t.Error("NewPrefix(33) succeeded, want error")
	}
	for l := 0; l <= 32; l++ {
		if _, err := NewPrefix(0, l); err != nil {
			t.Errorf("NewPrefix(0, %d) = %v, want nil", l, err)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "10.0.0.0/8", want: "10.0.0.0/8"},
		{in: "0.0.0.0/0", want: "0.0.0.0/0"},
		{in: "255.255.255.255/32", want: "255.255.255.255/32"},
		{in: "192.0.2.0/24", want: "192.0.2.0/24"},
		{in: "10.0.0.1/8", wantErr: true}, // host bits set
		{in: "10.0.0.0/33", wantErr: true},
		{in: "10.0.0.0", wantErr: true},
		{in: "10.0.0.0/x", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParsePrefix(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePrefix(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("ParsePrefix(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestPrefixBitString(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{in: "0.0.0.0/0", want: "*"},
		{in: "128.0.0.0/1", want: "1*"},
		{in: "128.0.0.0/3", want: "100*"},
		{in: "64.0.0.0/2", want: "01*"},
	}
	for _, tt := range tests {
		if got := MustParsePrefix(tt.in).BitString(); got != tt.want {
			t.Errorf("BitString(%s) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.0.1")) {
		t.Error("10.0.0.0/8 should contain 10.255.0.1")
	}
	if p.Contains(MustParseAddr("11.0.0.0")) {
		t.Error("10.0.0.0/8 should not contain 11.0.0.0")
	}
	def := Prefix{}
	if !def.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("default route should contain everything")
	}
}

func TestPrefixCoversOverlaps(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	q16 := MustParsePrefix("11.0.0.0/16")
	if !p8.Covers(p16) {
		t.Error("/8 should cover its /16")
	}
	if p16.Covers(p8) {
		t.Error("/16 should not cover its /8")
	}
	if !p8.Covers(p8) {
		t.Error("prefix should cover itself")
	}
	if p8.Covers(q16) {
		t.Error("10/8 should not cover 11.0/16")
	}
	if !p8.Overlaps(p16) || !p16.Overlaps(p8) {
		t.Error("nested prefixes should overlap both ways")
	}
	if p16.Overlaps(q16) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestPrefixFirstLast(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if p.First() != MustParseAddr("192.0.2.0") {
		t.Errorf("First = %s", p.First())
	}
	if p.Last() != MustParseAddr("192.0.2.255") {
		t.Errorf("Last = %s", p.Last())
	}
	def := Prefix{}
	if def.First() != 0 || def.Last() != 0xFFFFFFFF {
		t.Errorf("default route range = [%s, %s]", def.First(), def.Last())
	}
}

func TestPrefixChildParentSibling(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	l, r := p.Child(0), p.Child(1)
	if l.String() != "10.0.0.0/9" {
		t.Errorf("left child = %s", l)
	}
	if r.String() != "10.128.0.0/9" {
		t.Errorf("right child = %s", r)
	}
	if l.Parent() != p || r.Parent() != p {
		t.Error("children's parent should be the original prefix")
	}
	if l.Sibling() != r || r.Sibling() != l {
		t.Error("children should be each other's siblings")
	}
}

func TestPrefixChildPanicsOnHostRoute(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Child of /32 should panic")
		}
	}()
	MustParsePrefix("1.2.3.4/32").Child(0)
}

func TestPrefixParentPanicsOnDefault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Parent of /0 should panic")
		}
	}()
	Prefix{}.Parent()
}

func TestPrefixSiblingPanicsOnDefault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sibling of /0 should panic")
		}
	}()
	Prefix{}.Sibling()
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter prefix at same address should order first")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("lower address should order first")
	}
	if a.Compare(a) != 0 {
		t.Error("prefix should compare equal to itself")
	}
}

// Property: Child/Parent round-trip for random prefixes.
func TestChildParentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		length := rng.Intn(32) // 0..31 so Child is legal
		p := MustPrefix(Addr(rng.Uint32()), length)
		bit := uint32(rng.Intn(2))
		c := p.Child(bit)
		if c.Parent() != p {
			t.Fatalf("Child(%d).Parent of %s = %s, want %s", bit, p, c.Parent(), p)
		}
		if !p.Covers(c) {
			t.Fatalf("%s should cover its child %s", p, c)
		}
	}
}

// Property: Contains is equivalent to the [First, Last] range check.
func TestContainsMatchesRange(t *testing.T) {
	f := func(bits, probe uint32, lenSeed uint8) bool {
		length := int(lenSeed) % 33
		p := MustPrefix(Addr(bits), length)
		a := Addr(probe)
		inRange := a >= p.First() && a <= p.Last()
		return p.Contains(a) == inRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is symmetric and equivalent to range intersection.
func TestOverlapsMatchesRangeIntersection(t *testing.T) {
	f := func(b1, b2 uint32, l1, l2 uint8) bool {
		p := MustPrefix(Addr(b1), int(l1)%33)
		q := MustPrefix(Addr(b2), int(l2)%33)
		intersect := p.First() <= q.Last() && q.First() <= p.Last()
		return p.Overlaps(q) == intersect && p.Overlaps(q) == q.Overlaps(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteString(t *testing.T) {
	r := Route{Prefix: MustParsePrefix("10.0.0.0/8"), NextHop: 3}
	if got := r.String(); got != "10.0.0.0/8 -> 3" {
		t.Errorf("Route.String() = %q", got)
	}
}

func TestPrefixStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		p := MustPrefix(Addr(rng.Uint32()), rng.Intn(33))
		back, err := ParsePrefix(p.String())
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", p.String(), err)
		}
		if back != p {
			t.Fatalf("round trip %s -> %s", p, back)
		}
	}
}
