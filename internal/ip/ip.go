// Package ip provides IPv4 address and prefix value types used throughout
// the CLUE system.
//
// Prefixes are the fundamental currency of the routing substrate: the trie,
// the ONRTC compressor, the TCAM model and the DRed caches all operate on
// them. The representation is chosen for bit-level work: an Addr is a
// uint32 in host order, and a Prefix is (bits, length) with the unused low
// bits always zero, which makes prefixes directly comparable and usable as
// map keys.
package ip

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order (most significant byte is the
// first octet).
type Addr uint32

// ParseAddr parses dotted-quad notation ("192.0.2.1") into an Addr.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ip: invalid address %q: want 4 octets, got %d", s, len(parts))
	}
	var a uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ip: invalid address %q: %w", s, err)
		}
		a = a<<8 | uint32(v)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr for trusted literals; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Bit returns bit i of the address, where bit 0 is the most significant
// bit. i must be in [0, 31].
func (a Addr) Bit(i int) uint32 {
	return (uint32(a) >> (31 - i)) & 1
}

// AddrBits is the number of bits in an IPv4 address.
const AddrBits = 32

// Prefix is an IPv4 CIDR prefix. Bits holds the prefix bits left-aligned
// with all bits beyond Len zeroed; Len is the prefix length in [0, 32].
// The zero value is the default route 0.0.0.0/0.
type Prefix struct {
	Bits Addr
	Len  uint8
}

// ErrPrefixLen reports a prefix length outside [0, 32].
var ErrPrefixLen = errors.New("ip: prefix length out of range")

// NewPrefix constructs a canonical prefix from addr and length, masking
// off any bits beyond the prefix length.
func NewPrefix(addr Addr, length int) (Prefix, error) {
	if length < 0 || length > AddrBits {
		return Prefix{}, fmt.Errorf("%w: %d", ErrPrefixLen, length)
	}
	return Prefix{Bits: addr & maskFor(length), Len: uint8(length)}, nil
}

// MustPrefix is NewPrefix for trusted inputs; it panics on error.
func MustPrefix(addr Addr, length int) Prefix {
	p, err := NewPrefix(addr, length)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation ("10.0.0.0/8"). Host bits beyond the
// prefix length are rejected rather than silently masked, so that config
// typos surface early.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ip: invalid prefix %q: missing '/'", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("ip: invalid prefix %q: %w", s, err)
	}
	p, err := NewPrefix(addr, length)
	if err != nil {
		return Prefix{}, fmt.Errorf("ip: invalid prefix %q: %w", s, err)
	}
	if p.Bits != addr {
		return Prefix{}, fmt.Errorf("ip: invalid prefix %q: host bits set beyond /%d", s, length)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix for trusted literals; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// maskFor returns the netmask for a prefix of the given length.
func maskFor(length int) Addr {
	if length == 0 {
		return 0
	}
	return Addr(^uint32(0) << (AddrBits - length))
}

// Mask returns the prefix's netmask.
func (p Prefix) Mask() Addr { return maskFor(int(p.Len)) }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Bits, p.Len)
}

// BitString renders the prefix as its bit pattern followed by '*', the
// notation used in the paper's figures (e.g. "100*"). The default route
// renders as "*".
func (p Prefix) BitString() string {
	var b strings.Builder
	for i := 0; i < int(p.Len); i++ {
		b.WriteByte(byte('0' + p.Bits.Bit(i)))
	}
	b.WriteByte('*')
	return b.String()
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr Addr) bool {
	return addr&p.Mask() == p.Bits
}

// Covers reports whether p covers q, i.e. q's address block is contained
// in (or equal to) p's.
func (p Prefix) Covers(q Prefix) bool {
	return p.Len <= q.Len && q.Bits&p.Mask() == p.Bits
}

// Overlaps reports whether the two prefixes share any address, which for
// prefixes means one covers the other.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Covers(q) || q.Covers(p)
}

// First returns the lowest address in the prefix.
func (p Prefix) First() Addr { return p.Bits }

// Last returns the highest address in the prefix.
func (p Prefix) Last() Addr { return p.Bits | ^p.Mask() }

// Child returns the left (bit=0) or right (bit=1) half of the prefix.
// It panics if the prefix is already a host route (/32).
func (p Prefix) Child(bit uint32) Prefix {
	if p.Len >= AddrBits {
		panic("ip: Child of /32 prefix")
	}
	c := Prefix{Bits: p.Bits, Len: p.Len + 1}
	if bit != 0 {
		c.Bits |= 1 << (AddrBits - 1 - uint32(p.Len))
	}
	return c
}

// Parent returns the prefix one bit shorter. It panics on the default
// route.
func (p Prefix) Parent() Prefix {
	if p.Len == 0 {
		panic("ip: Parent of default route")
	}
	length := int(p.Len) - 1
	return Prefix{Bits: p.Bits & maskFor(length), Len: uint8(length)}
}

// Sibling returns the prefix that shares p's parent. It panics on the
// default route.
func (p Prefix) Sibling() Prefix {
	if p.Len == 0 {
		panic("ip: Sibling of default route")
	}
	return Prefix{Bits: p.Bits ^ (1 << (AddrBits - uint32(p.Len))), Len: p.Len}
}

// Compare orders prefixes by their position in an inorder trie traversal:
// first by starting address, then shorter (covering) prefixes before
// longer ones. It returns -1, 0 or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Bits < q.Bits:
		return -1
	case p.Bits > q.Bits:
		return 1
	case p.Len < q.Len:
		return -1
	case p.Len > q.Len:
		return 1
	}
	return 0
}

// NextHop identifies a forwarding next hop. Zero means "no route": the
// trie and compressed tables use NoRoute for uncovered address space, so
// real next hops must be non-zero.
type NextHop uint32

// NoRoute is the absent next hop.
const NoRoute NextHop = 0

// Route is a prefix with its forwarding decision — one FIB entry.
type Route struct {
	Prefix  Prefix
	NextHop NextHop
}

// String renders the route as "prefix -> hop".
func (r Route) String() string {
	return fmt.Sprintf("%s -> %d", r.Prefix, r.NextHop)
}
