package ip

import "testing"

// FuzzParsePrefix checks that the parser never panics and that accepted
// inputs round-trip canonically.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8", "0.0.0.0/0", "255.255.255.255/32", "192.0.2.0/24",
		"1.2.3.4/33", "x/8", "10.0.0.0", "/", "10.0.0.0/", "10.0.0.0/-1",
		"10.0.0.0/08", "010.0.0.0/8", "1.2.3.4.5/8", "4294967296.0.0.0/8",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		// Accepted prefixes must be canonical and round-trip.
		if p.Bits&^p.Mask() != 0 {
			t.Fatalf("non-canonical prefix from %q: %v", s, p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip of %q failed: %v, %v", s, back, err)
		}
	})
}

// FuzzParseAddr checks the address parser likewise.
func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{"0.0.0.0", "255.255.255.255", "1.2.3", "a.b.c.d", "1..2.3"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip of %q failed", s)
		}
	})
}
