package tracegen

import (
	"math"
	"sort"
	"testing"
	"time"

	"clue/internal/ip"
	"clue/internal/trie"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }

func somePrefixes(n int) []ip.Prefix {
	out := make([]ip.Prefix, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ip.MustPrefix(ip.Addr(uint32(i+1)<<24), 24))
	}
	return out
}

func TestTrafficDeterministic(t *testing.T) {
	ps := somePrefixes(100)
	a, err := NewTraffic(ps, TrafficConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTraffic(ps, TrafficConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at packet %d", i)
		}
	}
}

func TestTrafficAddressesInsidePopulation(t *testing.T) {
	ps := somePrefixes(50)
	g, err := NewTraffic(ps, TrafficConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inPop := func(a ip.Addr) bool {
		for _, p := range ps {
			if p.Contains(a) {
				return true
			}
		}
		return false
	}
	for _, a := range g.NextN(2000) {
		if !inPop(a) {
			t.Fatalf("generated address %s outside prefix population", a)
		}
	}
}

func TestTrafficZipfSkew(t *testing.T) {
	ps := somePrefixes(1000)
	g, err := NewTraffic(ps, TrafficConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ip.Addr]int{}
	for i := 0; i < 50000; i++ {
		a := g.Next()
		counts[a&0xFF000000]++ // bucket by /8 == by prefix here
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	// Heavy skew: top prefix should dominate far beyond uniform share.
	if float64(freqs[0])/50000 < 0.05 {
		t.Errorf("top prefix share = %v, want Zipf-heavy (> 5%%)", float64(freqs[0])/50000)
	}
	// And the tail should still be touched.
	if len(freqs) < 100 {
		t.Errorf("only %d distinct prefixes touched, trace too concentrated", len(freqs))
	}
}

func TestTrafficRepeatLocality(t *testing.T) {
	ps := somePrefixes(1000)
	g, err := NewTraffic(ps, TrafficConfig{Seed: 3, Repeat: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	prev := g.Next() & 0xFF000000
	for i := 0; i < 5000; i++ {
		cur := g.Next() & 0xFF000000
		if cur == prev {
			same++
		}
		prev = cur
	}
	if frac := float64(same) / 5000; frac < 0.8 {
		t.Errorf("repeat fraction = %v, want ≈0.9", frac)
	}
}

func TestTrafficValidation(t *testing.T) {
	ps := somePrefixes(10)
	if _, err := NewTraffic(nil, TrafficConfig{}); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := NewTraffic(ps, TrafficConfig{ZipfS: 0.5}); err == nil {
		t.Error("ZipfS <= 1 accepted")
	}
	if _, err := NewTraffic(ps, TrafficConfig{Repeat: 1.0}); err == nil {
		t.Error("Repeat = 1 accepted")
	}
	if _, err := NewTraffic(ps, TrafficConfig{Repeat: -0.1}); err == nil {
		t.Error("negative Repeat accepted")
	}
}

func TestPrefixesFromRoutes(t *testing.T) {
	routes := []ip.Route{
		{Prefix: pfx("10.0.0.0/8"), NextHop: 1},
		{Prefix: pfx("11.0.0.0/8"), NextHop: 2},
	}
	ps := PrefixesFromRoutes(routes)
	if len(ps) != 2 || ps[0] != pfx("10.0.0.0/8") || ps[1] != pfx("11.0.0.0/8") {
		t.Errorf("PrefixesFromRoutes = %v", ps)
	}
}

func seedFIB(n int) *trie.Trie {
	fib := trie.New()
	for i := 0; i < n; i++ {
		fib.Insert(ip.MustPrefix(ip.Addr(uint32(i+1)<<20), 16), ip.NextHop(i%8+1), nil)
	}
	return fib
}

func TestUpdateGenDeterministic(t *testing.T) {
	a, err := NewUpdateGen(seedFIB(100), UpdateConfig{Seed: 4, Messages: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUpdateGen(seedFIB(100), UpdateConfig{Seed: 4, Messages: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		ua, ub := a.Next(), b.Next()
		if ua != ub {
			t.Fatalf("divergence at message %d: %+v vs %+v", i, ua, ub)
		}
	}
}

func TestUpdateGenSelfConsistent(t *testing.T) {
	fib := seedFIB(200)
	g, err := NewUpdateGen(fib, UpdateConfig{Seed: 5, Messages: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Apply the stream to a model table; withdraws must always hit.
	model := map[ip.Prefix]ip.NextHop{}
	for _, r := range fib.Routes() {
		model[r.Prefix] = r.NextHop
	}
	withdraws, announces := 0, 0
	for i := 0; i < 5000; i++ {
		u := g.Next()
		switch u.Kind {
		case Withdraw:
			withdraws++
			if _, ok := model[u.Prefix]; !ok {
				t.Fatalf("message %d withdraws absent prefix %s", i, u.Prefix)
			}
			delete(model, u.Prefix)
		case Announce:
			announces++
			if u.Hop == ip.NoRoute {
				t.Fatalf("message %d announces NoRoute hop", i)
			}
			model[u.Prefix] = u.Hop
		default:
			t.Fatalf("message %d has kind %v", i, u.Kind)
		}
	}
	if g.Live() != len(model) {
		t.Errorf("generator view %d != model %d", g.Live(), len(model))
	}
	frac := float64(withdraws) / 5000
	if math.Abs(frac-0.2) > 0.05 {
		t.Errorf("withdraw fraction = %v, want ≈0.2", frac)
	}
}

func TestUpdateGenTimesMonotonicWithinDuration(t *testing.T) {
	g, err := NewUpdateGen(seedFIB(50), UpdateConfig{Seed: 6, Messages: 2000, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration = -1
	for i := 0; i < 2000; i++ {
		u := g.Next()
		if u.At < prev {
			t.Fatalf("time went backwards at message %d", i)
		}
		if u.Seq != i {
			t.Fatalf("Seq = %d, want %d", u.Seq, i)
		}
		prev = u.At
	}
	// Bursty clock mean is ~1.3x step; just require same order of
	// magnitude as the configured duration.
	if prev > 3*24*time.Hour || prev < 6*time.Hour {
		t.Errorf("trace spanned %v, want order of 24h", prev)
	}
}

func TestUpdateGenValidation(t *testing.T) {
	if _, err := NewUpdateGen(trie.New(), UpdateConfig{Messages: 10}); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewUpdateGen(seedFIB(10), UpdateConfig{Messages: 0}); err == nil {
		t.Error("zero messages accepted")
	}
	if _, err := NewUpdateGen(seedFIB(10), UpdateConfig{Messages: 10, WithdrawFrac: 1.5}); err == nil {
		t.Error("WithdrawFrac > 1 accepted")
	}
}

func TestUpdateGenNewPrefixes(t *testing.T) {
	fib := seedFIB(100)
	before := map[ip.Prefix]bool{}
	for _, r := range fib.Routes() {
		before[r.Prefix] = true
	}
	g, err := NewUpdateGen(fib, UpdateConfig{Seed: 7, Messages: 2000, NewPrefixFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for _, u := range g.NextN(2000) {
		if u.Kind == Announce && !before[u.Prefix] {
			fresh++
		}
	}
	if fresh < 200 {
		t.Errorf("only %d fresh-prefix announces out of 2000", fresh)
	}
}

func TestUpdateKindString(t *testing.T) {
	if Announce.String() != "announce" || Withdraw.String() != "withdraw" {
		t.Error("kind names wrong")
	}
	if UpdateKind(9).String() != "UpdateKind(9)" {
		t.Error("unknown kind format wrong")
	}
}
