package tracegen

import (
	"fmt"
	"math/rand"
	"time"

	"clue/internal/ip"
	"clue/internal/trie"
)

// UpdateKind distinguishes BGP announce from withdraw.
type UpdateKind uint8

const (
	// Announce adds or changes a route.
	Announce UpdateKind = iota + 1
	// Withdraw removes a route.
	Withdraw
)

// String names the kind.
func (k UpdateKind) String() string {
	switch k {
	case Announce:
		return "announce"
	case Withdraw:
		return "withdraw"
	}
	return fmt.Sprintf("UpdateKind(%d)", uint8(k))
}

// Update is one routing update message.
type Update struct {
	// Seq is the message's position in the trace (0-based).
	Seq int
	// At is the message's offset from the trace start.
	At time.Duration
	// Kind is announce or withdraw.
	Kind UpdateKind
	// Prefix is the updated prefix.
	Prefix ip.Prefix
	// Hop is the announced next hop (unused for withdraws).
	Hop ip.NextHop
}

// UpdateConfig parameterises an update trace.
type UpdateConfig struct {
	// Seed makes the trace deterministic.
	Seed int64
	// WithdrawFrac is the fraction of withdraws (default 0.2).
	WithdrawFrac float64
	// NewPrefixFrac is the fraction of announces introducing a prefix
	// not currently in the table (default 0.25 of announces).
	NewPrefixFrac float64
	// NextHops is the hop universe for announcements (default 16).
	NextHops int
	// Duration is the trace's wall-clock span; message times are spread
	// over it with bursty interarrivals (default 24h, like the paper's
	// 2011.10.01/08:00 -> 10.02/08:00 window).
	Duration time.Duration
	// Messages is the number of updates to generate.
	Messages int
}

func (c UpdateConfig) withDefaults() UpdateConfig {
	if c.WithdrawFrac == 0 {
		c.WithdrawFrac = 0.2
	}
	if c.NewPrefixFrac == 0 {
		c.NewPrefixFrac = 0.25
	}
	if c.NextHops < 2 {
		c.NextHops = 16
	}
	if c.Duration == 0 {
		c.Duration = 24 * time.Hour
	}
	return c
}

// UpdateGen produces a deterministic update stream that stays consistent
// with an evolving table view: withdraws always name a live prefix, and
// "new" announces a prefix not currently live.
type UpdateGen struct {
	cfg  UpdateConfig
	rng  *rand.Rand
	live []ip.Route
	idx  map[ip.Prefix]int
	seq  int
	now  time.Duration
	step time.Duration
}

// NewUpdateGen seeds the generator with the current table content (the
// routes the updates will churn).
func NewUpdateGen(fib *trie.Trie, cfg UpdateConfig) (*UpdateGen, error) {
	if fib.Len() == 0 {
		return nil, fmt.Errorf("tracegen: update generator needs a non-empty table")
	}
	if cfg.Messages < 1 {
		return nil, fmt.Errorf("tracegen: Messages must be >= 1, got %d", cfg.Messages)
	}
	cfg = cfg.withDefaults()
	if cfg.WithdrawFrac < 0 || cfg.WithdrawFrac >= 1 {
		return nil, fmt.Errorf("tracegen: WithdrawFrac must be in [0,1), got %v", cfg.WithdrawFrac)
	}
	g := &UpdateGen{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		live: fib.Routes(),
		idx:  make(map[ip.Prefix]int, fib.Len()),
		step: cfg.Duration / time.Duration(cfg.Messages),
	}
	for i, r := range g.live {
		g.idx[r.Prefix] = i
	}
	return g, nil
}

// Next returns the next update message. The generator's internal view
// tracks the table as if every message were applied, so the stream is
// always self-consistent.
func (g *UpdateGen) Next() Update {
	u := Update{Seq: g.seq, At: g.now}
	g.seq++
	g.advanceClock()
	if g.rng.Float64() < g.cfg.WithdrawFrac && len(g.live) > 1 {
		victim := g.rng.Intn(len(g.live))
		u.Kind = Withdraw
		u.Prefix = g.live[victim].Prefix
		g.remove(victim)
		return u
	}
	u.Kind = Announce
	u.Hop = ip.NextHop(g.rng.Intn(g.cfg.NextHops) + 1)
	if g.rng.Float64() < g.cfg.NewPrefixFrac {
		u.Prefix = g.freshPrefix()
	} else {
		u.Prefix = g.live[g.rng.Intn(len(g.live))].Prefix
	}
	g.apply(u.Prefix, u.Hop)
	return u
}

// NextN returns the next n messages.
func (g *UpdateGen) NextN(n int) []Update {
	out := make([]Update, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Live returns the generator's current view of the table size.
func (g *UpdateGen) Live() int { return len(g.live) }

// LiveRoutes returns a copy of the generator's current table view. The
// order is the generator's internal (seed-deterministic) order, so two
// same-seed generators agree element for element — scenario programs
// use it to script withdraw-all/re-announce storms over the exact live
// set.
func (g *UpdateGen) LiveRoutes() []ip.Route {
	return append([]ip.Route(nil), g.live...)
}

// Has reports whether the prefix is live in the generator's view.
func (g *UpdateGen) Has(p ip.Prefix) bool {
	_, ok := g.idx[p]
	return ok
}

// advanceClock moves trace time forward with bursty interarrivals: most
// messages arrive in tight bursts (BGP table transfers, path hunting),
// separated by longer quiet gaps.
func (g *UpdateGen) advanceClock() {
	if g.rng.Float64() < 0.7 {
		// In-burst: negligible gap.
		g.now += g.step / 10
		return
	}
	// Quiet gap: stretch to keep the mean near step.
	g.now += g.step * 4
}

// freshPrefix picks a prefix not currently live, near existing routes
// (children or siblings) with high probability — real updates cluster in
// allocated space.
func (g *UpdateGen) freshPrefix() ip.Prefix {
	for attempt := 0; attempt < 64; attempt++ {
		var p ip.Prefix
		base := g.live[g.rng.Intn(len(g.live))].Prefix
		switch g.rng.Intn(3) {
		case 0:
			if base.Len < ip.AddrBits-8 {
				p = base.Child(uint32(g.rng.Intn(2)))
			} else {
				p = base
			}
		case 1:
			if base.Len > 0 {
				p = base.Sibling()
			} else {
				p = base
			}
		default:
			p = ip.MustPrefix(ip.Addr(g.rng.Uint32()), g.rng.Intn(9)+16)
		}
		if _, ok := g.idx[p]; !ok {
			return p
		}
	}
	// Dense table: fall back to a random long prefix.
	return ip.MustPrefix(ip.Addr(g.rng.Uint32()), 28)
}

func (g *UpdateGen) apply(p ip.Prefix, hop ip.NextHop) {
	if i, ok := g.idx[p]; ok {
		g.live[i].NextHop = hop
		return
	}
	g.idx[p] = len(g.live)
	g.live = append(g.live, ip.Route{Prefix: p, NextHop: hop})
}

func (g *UpdateGen) remove(i int) {
	delete(g.idx, g.live[i].Prefix)
	last := len(g.live) - 1
	if i != last {
		g.live[i] = g.live[last]
		g.idx[g.live[i].Prefix] = i
	}
	g.live = g.live[:last]
}
