package tracegen

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clue/internal/fibgen"
	"clue/internal/ribio"
)

var update = flag.Bool("update", false, "rewrite golden files")

// exportConfig is the pinned shape of the golden trace.
func exportConfig() UpdateConfig {
	return UpdateConfig{Seed: 7, Messages: 64}
}

func exportFIB(t *testing.T) []Update {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: 7, Routes: 400})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ups, err := GenerateUpdateTrace(&buf, fib, exportConfig())
	if err != nil {
		t.Fatal(err)
	}
	exportBytes = buf.Bytes()
	return ups
}

var exportBytes []byte

// TestExportGolden pins the exported byte stream for a fixed seed: the
// collector inputs must be reproducible, so any change to the generator,
// the conversion or the ribio format that alters the bytes is a breaking
// change and must update the golden file deliberately
// (go test ./internal/tracegen -run TestExportGolden -update).
func TestExportGolden(t *testing.T) {
	exportFIB(t)
	golden := filepath.Join("testdata", "golden_updates.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, exportBytes, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(exportBytes, want) {
		t.Fatalf("export diverged from golden file (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			exportBytes, want)
	}
}

// TestExportDeterministic: two same-seed exports are byte-identical and
// differ from a different seed's.
func TestExportDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		fib, err := fibgen.Generate(fibgen.Config{Seed: 7, Routes: 400})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		cfg := exportConfig()
		cfg.Seed = seed
		if _, err := GenerateUpdateTrace(&buf, fib, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, c := run(7), run(7), run(8)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed exports differ")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestExportRoundTrip: the exported trace reads back into the exact
// update sequence (offsets, kinds, prefixes, hops), through both the
// ribio reader and the record conversions.
func TestExportRoundTrip(t *testing.T) {
	ups := exportFIB(t)
	recs, err := ribio.ReadUpdates(bytes.NewReader(exportBytes))
	if err != nil {
		t.Fatal(err)
	}
	back := FromRecords(recs)
	if len(back) != len(ups) {
		t.Fatalf("round trip changed count: %d -> %d", len(ups), len(back))
	}
	for i := range ups {
		if back[i] != ups[i] {
			t.Fatalf("update %d changed: %+v -> %+v", i, ups[i], back[i])
		}
	}
	// The generator's stream mixes announces and withdraws; make sure the
	// golden shape actually exercises both kinds.
	var w int
	for _, r := range recs {
		if r.Withdraw {
			w++
		}
	}
	if w == 0 || w == len(recs) {
		t.Fatalf("degenerate trace: %d withdraws of %d", w, len(recs))
	}
	if !strings.HasPrefix(string(exportBytes), "# clue update trace: seed=7 ") {
		t.Fatalf("missing or wrong header:\n%s", exportBytes[:80])
	}
}
