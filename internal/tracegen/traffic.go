// Package tracegen generates the two workload streams the paper's
// evaluation consumes: destination-address packet traces with Zipf skew
// and temporal locality (standing in for the CAIDA Chicago trace), and
// BGP announce/withdraw update streams (standing in for the RIPE RIS
// 24-hour update trace).
//
// Both generators are deterministic in their seeds so experiments are
// reproducible run-to-run.
package tracegen

import (
	"fmt"
	"math/rand"

	"clue/internal/ip"
)

// TrafficConfig parameterises a packet trace.
type TrafficConfig struct {
	// Seed makes the trace deterministic.
	Seed int64
	// ZipfS is the Zipf skew exponent (>1). Zero means the calibrated
	// default 1.2, which yields the heavy per-partition skew of the
	// paper's Table II.
	ZipfS float64
	// Repeat is the probability of the next packet reusing the previous
	// packet's prefix — temporal locality / burstiness. Zero is valid
	// (no extra locality beyond the Zipf skew).
	Repeat float64
	// Invert reverses the seeded popularity ranking: with the same seed,
	// an inverted generator sends the Zipf head's mass to what the
	// non-inverted generator made its coldest tail. Flash-crowd
	// scenarios use this to defeat divert caches and the load-balance
	// assumptions behind the home-partition carve without changing the
	// prefix population.
	Invert bool
	// DrawSeed, when non-zero, seeds the draw stream separately from the
	// popularity ranking (which stays derived from Seed). A fleet of
	// concurrent generators sharing Seed but holding distinct DrawSeeds
	// agrees on which prefixes are hot while drawing independently — the
	// aggregate keeps the Zipf skew without the lockstep repetition that
	// fully identical generators would produce.
	DrawSeed int64
}

// Traffic draws destination addresses over a fixed prefix population.
type Traffic struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	prefixes []ip.Prefix
	repeat   float64
	last     int
	hasLast  bool
}

// NewTraffic builds a generator over the given prefixes (typically the
// compressed table's routes). Popularity ranks are assigned by a seeded
// shuffle, so which prefixes are hot differs per seed but the skew shape
// is Zipf(s).
func NewTraffic(prefixes []ip.Prefix, cfg TrafficConfig) (*Traffic, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("tracegen: no prefixes")
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("tracegen: ZipfS must be > 1, got %v", cfg.ZipfS)
	}
	if cfg.Repeat < 0 || cfg.Repeat >= 1 {
		return nil, fmt.Errorf("tracegen: Repeat must be in [0,1), got %v", cfg.Repeat)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	shuffled := append([]ip.Prefix(nil), prefixes...)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if cfg.Invert {
		// Reverse after the seeded shuffle: rank r now draws what the
		// same-seed non-inverted generator ranked len-1-r.
		for i, j := 0, len(shuffled)-1; i < j; i, j = i+1, j-1 {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
	}
	draw := rng
	if cfg.DrawSeed != 0 {
		draw = rand.New(rand.NewSource(cfg.DrawSeed))
	}
	z := rand.NewZipf(draw, cfg.ZipfS, 1, uint64(len(shuffled)-1))
	if z == nil {
		return nil, fmt.Errorf("tracegen: bad Zipf parameters (s=%v)", cfg.ZipfS)
	}
	return &Traffic{rng: draw, zipf: z, prefixes: shuffled, repeat: cfg.Repeat}, nil
}

// Next returns the next destination address.
func (t *Traffic) Next() ip.Addr {
	idx := t.last
	if !t.hasLast || t.rng.Float64() >= t.repeat {
		idx = int(t.zipf.Uint64())
	}
	t.last, t.hasLast = idx, true
	p := t.prefixes[idx]
	span := uint64(p.Last()-p.First()) + 1
	return p.First() + ip.Addr(t.rng.Uint64()%span)
}

// NextN returns the next n destination addresses.
func (t *Traffic) NextN(n int) []ip.Addr {
	out := make([]ip.Addr, n)
	for i := range out {
		out[i] = t.Next()
	}
	return out
}

// PrefixesFromRoutes extracts the prefixes of a route list (helper for
// wiring a Traffic to a table).
func PrefixesFromRoutes(routes []ip.Route) []ip.Prefix {
	out := make([]ip.Prefix, len(routes))
	for i, r := range routes {
		out[i] = r.Prefix
	}
	return out
}
