package tracegen

import (
	"fmt"
	"io"

	"clue/internal/ribio"
	"clue/internal/trie"
)

// Records converts generated updates into ribio update-trace records —
// the interchange form a feed collector tails. The conversion is exact:
// sequence order, offsets, kinds and hops are preserved.
func Records(ups []Update) []ribio.UpdateRecord {
	out := make([]ribio.UpdateRecord, len(ups))
	for i, u := range ups {
		out[i] = ribio.UpdateRecord{At: u.At, Prefix: u.Prefix}
		if u.Kind == Withdraw {
			out[i].Withdraw = true
		} else {
			out[i].NextHop = u.Hop
		}
	}
	return out
}

// FromRecords converts ribio update-trace records back into the
// generator's update form, numbering them sequentially from 0.
func FromRecords(recs []ribio.UpdateRecord) []Update {
	out := make([]Update, len(recs))
	for i, r := range recs {
		out[i] = Update{Seq: i, At: r.At, Prefix: r.Prefix}
		if r.Withdraw {
			out[i].Kind = Withdraw
		} else {
			out[i].Kind = Announce
			out[i].Hop = r.NextHop
		}
	}
	return out
}

// ExportUpdates writes an update trace in the ribio interchange format:
// a deterministic header naming the generator parameters, then one line
// per update. The same seed and config always produce byte-identical
// output, so exported traces are reproducible collector inputs.
func ExportUpdates(w io.Writer, ups []Update, cfg UpdateConfig) error {
	cfg = cfg.withDefaults()
	if _, err := fmt.Fprintf(w,
		"# clue update trace: seed=%d messages=%d withdraw=%g new=%g hops=%d duration=%s\n",
		cfg.Seed, len(ups), cfg.WithdrawFrac, cfg.NewPrefixFrac, cfg.NextHops, cfg.Duration); err != nil {
		return fmt.Errorf("tracegen: %w", err)
	}
	return ribio.WriteUpdates(w, Records(ups))
}

// GenerateUpdateTrace is the one-call export path: seed a generator over
// fib's routes, draw cfg.Messages updates and write them as a ribio
// update trace. It returns the generated updates so callers can replay
// the exact exported sequence in-process.
func GenerateUpdateTrace(w io.Writer, fib *trie.Trie, cfg UpdateConfig) ([]Update, error) {
	g, err := NewUpdateGen(fib, cfg)
	if err != nil {
		return nil, err
	}
	ups := g.NextN(cfg.Messages)
	if err := ExportUpdates(w, ups, cfg); err != nil {
		return nil, err
	}
	return ups, nil
}
