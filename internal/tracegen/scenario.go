package tracegen

// Adversarial routing-plane scenarios: deterministic seeded programs
// that script a whole control-plane failure — the base FIB, a warmup
// churn, the storm itself and a cooldown — as phased update streams
// plus a traffic spec per phase, with a declared quantitative contract.
// The chaos scenario driver (internal/chaos) replays them against a
// live serve.Runtime; these generators only decide *what happens*, so
// the same seed always produces the byte-identical program (pinned by
// the golden-trace tests).
//
// The four scenarios:
//
//   - session-reset: a full-table BGP session flap — every live route
//     withdrawn in seeded shuffled order, then the exact table
//     re-announced, all while serving. The compressed table collapses
//     to (near) empty and is rebuilt route by route.
//   - route-leak: MashUp's motivating failure — a handful of short
//     covering prefixes suddenly deaggregate into /24 floods with
//     foreign next hops (the shape that bloats a compressed, tiled
//     table), then the leak retracts.
//   - update-burst: the paper's RIS trace peak rate ×100, sustained in
//     tight bursts interleaved with lookups.
//   - flash-crowd: the routing plane stays calm but the traffic Zipf
//     head inverts mid-run (same prefix population, reversed
//     popularity), defeating the home-partition carve and every divert
//     cache at once.
import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/ribio"
	"clue/internal/trie"
)

// Scenario names, as accepted by GenScenario and clue-chaos -scenario.
const (
	ScenarioSessionReset = "session-reset"
	ScenarioRouteLeak    = "route-leak"
	ScenarioUpdateBurst  = "update-burst"
	ScenarioFlashCrowd   = "flash-crowd"
)

// ScenarioNames lists the known scenarios in a fixed order.
func ScenarioNames() []string {
	return []string{ScenarioSessionReset, ScenarioRouteLeak, ScenarioUpdateBurst, ScenarioFlashCrowd}
}

// TrafficSpec is the lookup-traffic shape a phase runs under (the
// parameters of a Traffic generator; the driver supplies the seed and
// prefix population).
type TrafficSpec struct {
	ZipfS  float64 `json:"zipf_s"`
	Repeat float64 `json:"repeat"`
	Invert bool    `json:"invert"`
}

// ScenarioContract is the scenario's declared quantitative bounds,
// asserted by the driver over the whole run:
//
//   - MaxDegradedP99 bounds the runtime's end-to-end dispatch p99
//     (worst outcome path) with the storm included — degraded mode may
//     divert, it may not cliff.
//   - MaxDivertRate bounds diverted/dispatched over the run.
//   - MaxConverge bounds time-to-converge: the gap between the last
//     storm update completing and the published table's canonical hash
//     first matching the oracle's expectation.
type ScenarioContract struct {
	MaxDegradedP99 time.Duration `json:"max_degraded_p99"`
	MaxDivertRate  float64       `json:"max_divert_rate"`
	MaxConverge    time.Duration `json:"max_converge"`
}

// ScenarioPhase is one stretch of the program: an ordered update stream
// (possibly empty — flash-crowd storms are traffic-only) and the
// traffic spec in force while it plays.
type ScenarioPhase struct {
	Name    string
	Storm   bool
	Updates []Update
	Traffic TrafficSpec
}

// Scenario is a fully generated program: the base FIB the runtime
// boots from, the phases to replay in order, and the contract to hold
// the run to.
type Scenario struct {
	Name     string
	Cfg      ScenarioConfig
	Base     []ip.Route
	Phases   []ScenarioPhase
	Contract ScenarioContract
}

// Ops returns the total update count across phases.
func (s *Scenario) Ops() int {
	n := 0
	for _, ph := range s.Phases {
		n += len(ph.Updates)
	}
	return n
}

// StormPhase returns the index of the storm phase (-1 if none — never
// the case for generated scenarios).
func (s *Scenario) StormPhase() int {
	for i, ph := range s.Phases {
		if ph.Storm {
			return i
		}
	}
	return -1
}

// ScenarioConfig parameterises scenario generation. Zero values take
// scenario-calibrated defaults.
type ScenarioConfig struct {
	// Seed drives the FIB, every update choice and the storm ordering.
	Seed int64
	// Routes is the base FIB size (default 12000).
	Routes int
	// NextHops is the hop universe (default 16).
	NextHops int
	// WarmupOps/CooldownOps are the benign churn lengths bracketing the
	// storm (defaults Routes/8 and Routes/16).
	WarmupOps   int
	CooldownOps int
	// StormOps sizes storms that draw from the generic churn generator
	// (update-burst's flood; flash-crowd's background churn). Default
	// 4*WarmupOps for update-burst, WarmupOps/2 for flash-crowd.
	StormOps int
	// LeakCovers/LeakFanout shape the route-leak storm: how many short
	// covering prefixes deaggregate, into at most how many /24s each
	// (defaults 6 and 192).
	LeakCovers int
	LeakFanout int
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Routes == 0 {
		c.Routes = 12000
	}
	if c.NextHops < 2 {
		c.NextHops = 16
	}
	if c.WarmupOps == 0 {
		c.WarmupOps = c.Routes / 8
	}
	if c.WarmupOps < 4 {
		c.WarmupOps = 4
	}
	if c.CooldownOps == 0 {
		c.CooldownOps = c.Routes / 16
	}
	if c.CooldownOps < 2 {
		c.CooldownOps = 2
	}
	if c.LeakCovers == 0 {
		c.LeakCovers = 6
	}
	if c.LeakFanout == 0 {
		c.LeakFanout = 192
	}
	return c
}

// paperPeakPerSec is the RIS trace's peak update rate the paper's
// evaluation cites (~1K updates/s); update-burst storms run at 100×
// this in trace time.
const paperPeakPerSec = 1000

// benignTraffic is the calibrated traffic spec outside storms.
var benignTraffic = TrafficSpec{ZipfS: 1.2, Repeat: 0.2}

// GenScenario generates the named scenario. Same name + config ⇒
// identical program, down to the byte in exported form.
func GenScenario(name string, cfg ScenarioConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	fib, err := fibgen.Generate(fibgen.Config{Seed: cfg.Seed, Routes: cfg.Routes, NextHops: cfg.NextHops})
	if err != nil {
		return nil, fmt.Errorf("tracegen: scenario base FIB: %w", err)
	}
	base := fib.Routes()
	gen, err := NewUpdateGen(trie.FromRoutes(base), UpdateConfig{
		Seed:     cfg.Seed + 1,
		Messages: cfg.WarmupOps, // sets the trace-time step only
		NextHops: cfg.NextHops,
	})
	if err != nil {
		return nil, err
	}
	sc := &Scenario{Name: name, Cfg: cfg, Base: base}
	b := &scenarioBuilder{
		cfg: cfg,
		gen: gen,
		rng: rand.New(rand.NewSource(cfg.Seed + 2)),
	}
	switch name {
	case ScenarioSessionReset:
		b.buildSessionReset(sc)
	case ScenarioRouteLeak:
		if err := b.buildRouteLeak(sc); err != nil {
			return nil, err
		}
	case ScenarioUpdateBurst:
		b.buildUpdateBurst(sc)
	case ScenarioFlashCrowd:
		b.buildFlashCrowd(sc)
	default:
		return nil, fmt.Errorf("tracegen: unknown scenario %q (known: %v)", name, ScenarioNames())
	}
	return sc, nil
}

// scenarioBuilder threads the shared state through phase construction:
// the churn generator (whose live view must stay consistent with what
// the phases actually did to the table), the storm RNG and the trace
// clock.
type scenarioBuilder struct {
	cfg ScenarioConfig
	gen *UpdateGen
	rng *rand.Rand
	now time.Duration
	seq int
}

// churn draws n benign updates from the generator and restamps them
// onto the builder's clock.
func (b *scenarioBuilder) churn(n int) []Update {
	ups := b.gen.NextN(n)
	for i := range ups {
		b.stamp(&ups[i], time.Millisecond)
	}
	return ups
}

// stamp rewrites an update's Seq/At onto the program-wide clock.
func (b *scenarioBuilder) stamp(u *Update, gap time.Duration) {
	u.Seq = b.seq
	b.seq++
	b.now += gap
	u.At = b.now
}

// storm emits one scripted storm update at burst pacing (the paper's
// peak ×100 ⇒ 10µs spacing in trace time).
func (b *scenarioBuilder) storm(kind UpdateKind, p ip.Prefix, hop ip.NextHop) Update {
	u := Update{Kind: kind, Prefix: p, Hop: hop}
	b.stamp(&u, time.Second/(100*paperPeakPerSec))
	return u
}

func (b *scenarioBuilder) buildSessionReset(sc *Scenario) {
	warm := b.churn(b.cfg.WarmupOps)
	live := b.gen.LiveRoutes()
	// Withdraw everything in one shuffled sweep, then re-announce the
	// identical table in an independently shuffled order. The generator's
	// live view is untouched — the storm restores exactly the set it
	// found — so the cooldown churn below stays self-consistent.
	storm := make([]Update, 0, 2*len(live))
	for _, i := range b.rng.Perm(len(live)) {
		storm = append(storm, b.storm(Withdraw, live[i].Prefix, 0))
	}
	for _, i := range b.rng.Perm(len(live)) {
		storm = append(storm, b.storm(Announce, live[i].Prefix, live[i].NextHop))
	}
	sc.Phases = []ScenarioPhase{
		{Name: "warmup", Updates: warm, Traffic: benignTraffic},
		{Name: "reset", Storm: true, Updates: storm, Traffic: benignTraffic},
		{Name: "cooldown", Updates: b.churn(b.cfg.CooldownOps), Traffic: benignTraffic},
	}
	sc.Contract = ScenarioContract{
		MaxDegradedP99: 500 * time.Millisecond,
		MaxDivertRate:  0.5,
		MaxConverge:    10 * time.Second,
	}
}

func (b *scenarioBuilder) buildRouteLeak(sc *Scenario) error {
	warm := b.churn(b.cfg.WarmupOps)
	live := b.gen.LiveRoutes()
	// Leak sources: the shortest covering prefixes in the live set (the
	// biggest deaggregation spans — a leak from a /12 floods far more
	// /24s than one from a /22), ties broken by a seeded shuffle.
	var candidates []ip.Route
	for _, i := range b.rng.Perm(len(live)) {
		if live[i].Prefix.Len >= 8 && live[i].Prefix.Len <= 22 {
			candidates = append(candidates, live[i])
		}
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		return candidates[i].Prefix.Len < candidates[j].Prefix.Len
	})
	covers := candidates
	if len(covers) > b.cfg.LeakCovers {
		covers = covers[:b.cfg.LeakCovers]
	}
	if len(covers) == 0 {
		return fmt.Errorf("tracegen: route-leak needs a cover prefix (/8../22) in the live set; none at seed %d", b.cfg.Seed)
	}
	// Deaggregate: every cover floods a contiguous run of /24s whose
	// next hops cycle through the hop universe (always skipping the
	// cover's own) — adjacent /24s never share a hop, so ONRTC can
	// neither absorb a leaked route into its cover nor merge neighbours
	// back into one range. This is the worst case for a compressed
	// table: every /24 must become its own entry. Skip /24s that are
	// already live to keep the churn generator's view consistent.
	var leaked []Update
	seen := make(map[ip.Prefix]struct{})
	for _, cover := range covers {
		span := 1 << (24 - cover.Prefix.Len)
		fanout := b.cfg.LeakFanout
		if span < fanout {
			fanout = span
		}
		var hops []ip.NextHop
		for h := 1; h <= b.cfg.NextHops; h++ {
			if ip.NextHop(h) != cover.NextHop {
				hops = append(hops, ip.NextHop(h))
			}
		}
		start := b.rng.Intn(len(hops))
		for k := 0; k < fanout; k++ {
			p := ip.MustPrefix(cover.Prefix.First()+ip.Addr(k)<<8, 24)
			if _, dup := seen[p]; dup || b.gen.Has(p) {
				// Nested covers can propose the same /24 twice; a live /24
				// would desynchronise the churn generator's view.
				continue
			}
			seen[p] = struct{}{}
			leaked = append(leaked, Update{Kind: Announce, Prefix: p, Hop: hops[(start+k)%len(hops)]})
		}
	}
	// Flood in globally shuffled order (the covers interleave), then
	// retract the whole leak in a fresh shuffled order.
	b.rng.Shuffle(len(leaked), func(i, j int) { leaked[i], leaked[j] = leaked[j], leaked[i] })
	storm := make([]Update, 0, 2*len(leaked))
	for i := range leaked {
		storm = append(storm, b.storm(Announce, leaked[i].Prefix, leaked[i].Hop))
	}
	retract := b.rng.Perm(len(leaked))
	for _, i := range retract {
		storm = append(storm, b.storm(Withdraw, leaked[i].Prefix, 0))
	}
	sc.Phases = []ScenarioPhase{
		{Name: "warmup", Updates: warm, Traffic: benignTraffic},
		{Name: "leak", Storm: true, Updates: storm, Traffic: benignTraffic},
		{Name: "cooldown", Updates: b.churn(b.cfg.CooldownOps), Traffic: benignTraffic},
	}
	sc.Contract = ScenarioContract{
		MaxDegradedP99: 500 * time.Millisecond,
		MaxDivertRate:  0.5,
		MaxConverge:    10 * time.Second,
	}
	return nil
}

func (b *scenarioBuilder) buildUpdateBurst(sc *Scenario) {
	warm := b.churn(b.cfg.WarmupOps)
	stormOps := b.cfg.StormOps
	if stormOps == 0 {
		stormOps = 4 * b.cfg.WarmupOps
	}
	// The storm is the benign mix at 100× the paper's peak rate: the
	// generator supplies the (self-consistent) update choices, the
	// builder restamps them onto burst spacing.
	storm := b.gen.NextN(stormOps)
	for i := range storm {
		b.stamp(&storm[i], time.Second/(100*paperPeakPerSec))
	}
	sc.Phases = []ScenarioPhase{
		{Name: "warmup", Updates: warm, Traffic: benignTraffic},
		{Name: "burst", Storm: true, Updates: storm, Traffic: benignTraffic},
		{Name: "cooldown", Updates: b.churn(b.cfg.CooldownOps), Traffic: benignTraffic},
	}
	sc.Contract = ScenarioContract{
		MaxDegradedP99: 500 * time.Millisecond,
		MaxDivertRate:  0.5,
		MaxConverge:    10 * time.Second,
	}
}

func (b *scenarioBuilder) buildFlashCrowd(sc *Scenario) {
	warm := b.churn(b.cfg.WarmupOps)
	stormOps := b.cfg.StormOps
	if stormOps == 0 {
		stormOps = b.cfg.WarmupOps / 2
	}
	// The routing plane stays calm (light background churn); the attack
	// is the traffic spec: same population, popularity ranking reversed
	// and burstier — every divert cache goes cold at once and the
	// hottest home partitions flip.
	sc.Phases = []ScenarioPhase{
		{Name: "warmup", Updates: warm, Traffic: benignTraffic},
		{Name: "flip", Storm: true, Updates: b.churn(stormOps),
			Traffic: TrafficSpec{ZipfS: 1.2, Repeat: 0.5, Invert: true}},
		{Name: "cooldown", Updates: b.churn(b.cfg.CooldownOps), Traffic: benignTraffic},
	}
	sc.Contract = ScenarioContract{
		// Inverted-head traffic is allowed to divert heavily — that is
		// the mechanism under test — but the cascade must stay bounded
		// and the tail must not cliff.
		MaxDegradedP99: time.Second,
		MaxDivertRate:  0.98,
		MaxConverge:    10 * time.Second,
	}
}

// ExportScenario writes the scenario as a deterministic text program:
// a scenario header, then per phase a header line and the phase's
// updates in the ribio interchange format. Same scenario ⇒ byte-
// identical output (the golden tests pin this).
func ExportScenario(w io.Writer, sc *Scenario) error {
	if _, err := fmt.Fprintf(w,
		"# clue scenario: name=%s seed=%d routes=%d hops=%d ops=%d\n# contract: p99<=%s divert<=%g converge<=%s\n",
		sc.Name, sc.Cfg.Seed, sc.Cfg.Routes, sc.Cfg.NextHops, sc.Ops(),
		sc.Contract.MaxDegradedP99, sc.Contract.MaxDivertRate, sc.Contract.MaxConverge); err != nil {
		return fmt.Errorf("tracegen: %w", err)
	}
	for _, ph := range sc.Phases {
		if _, err := fmt.Fprintf(w, "# phase: %s storm=%v updates=%d zipf=%g repeat=%g invert=%v\n",
			ph.Name, ph.Storm, len(ph.Updates), ph.Traffic.ZipfS, ph.Traffic.Repeat, ph.Traffic.Invert); err != nil {
			return fmt.Errorf("tracegen: %w", err)
		}
		if err := ribio.WriteUpdates(w, Records(ph.Updates)); err != nil {
			return err
		}
	}
	return nil
}
