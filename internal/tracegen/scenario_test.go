package tracegen

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clue/internal/ip"
	"clue/internal/ribio"
	"clue/internal/trie"
)

// scenarioTestConfig is the pinned shape of the scenario goldens: small
// enough to keep the files reviewable, large enough that every phase is
// non-trivial.
func scenarioTestConfig() ScenarioConfig {
	return ScenarioConfig{
		Seed:        7,
		Routes:      150,
		WarmupOps:   24,
		CooldownOps: 12,
		StormOps:    48,
		LeakCovers:  2,
		LeakFanout:  16,
	}
}

func exportScenarioBytes(t *testing.T, name string, cfg ScenarioConfig) (*Scenario, []byte) {
	t.Helper()
	sc, err := GenScenario(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportScenario(&buf, sc); err != nil {
		t.Fatal(err)
	}
	return sc, buf.Bytes()
}

// TestScenarioGolden pins each scenario generator's exported bytes for
// a fixed seed: scenarios are reproducible programs, so any change to a
// generator, the conversion or the export format is a deliberate
// breaking change (regenerate with
// go test ./internal/tracegen -run TestScenarioGolden -update).
func TestScenarioGolden(t *testing.T) {
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			_, got := exportScenarioBytes(t, name, scenarioTestConfig())
			golden := filepath.Join("testdata", "golden_scenario_"+name+".txt")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("scenario %s diverged from golden (regenerate with -update if intended); first 400 bytes:\n%.400s",
					name, got)
			}
		})
	}
}

// TestScenarioDeterministic: same seed ⇒ byte-identical program,
// different seed ⇒ different bytes, for every scenario.
func TestScenarioDeterministic(t *testing.T) {
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			cfg := scenarioTestConfig()
			_, a := exportScenarioBytes(t, name, cfg)
			_, b := exportScenarioBytes(t, name, cfg)
			cfg.Seed = 8
			_, c := exportScenarioBytes(t, name, cfg)
			if !bytes.Equal(a, b) {
				t.Fatal("same-seed scenario exports differ")
			}
			if bytes.Equal(a, c) {
				t.Fatal("different seeds produced identical scenarios")
			}
		})
	}
}

// TestScenarioShapes checks each scenario's structural promises: a
// marked storm phase, monotone trace offsets across the whole program,
// a contract with every bound set, and the scenario-specific shape
// (full withdraw+restore for session-reset, /24 flood+full retraction
// for route-leak, inverted storm traffic for flash-crowd, burst pacing
// for update-burst).
func TestScenarioShapes(t *testing.T) {
	cfg := scenarioTestConfig()
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			sc, err := GenScenario(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			si := sc.StormPhase()
			if si < 0 {
				t.Fatal("no storm phase")
			}
			if sc.Contract.MaxDegradedP99 <= 0 || sc.Contract.MaxDivertRate <= 0 || sc.Contract.MaxConverge <= 0 {
				t.Fatalf("incomplete contract: %+v", sc.Contract)
			}
			var prev int64 = -1
			seq := 0
			for _, ph := range sc.Phases {
				for _, u := range ph.Updates {
					if int64(u.At) < prev {
						t.Fatalf("offset goes backwards at seq %d", u.Seq)
					}
					prev = int64(u.At)
					if u.Seq != seq {
						t.Fatalf("seq %d out of order (want %d)", u.Seq, seq)
					}
					seq++
				}
			}
			storm := sc.Phases[si]
			switch name {
			case ScenarioSessionReset:
				n := len(storm.Updates)
				if n == 0 || n%2 != 0 {
					t.Fatalf("reset storm has %d updates, want even > 0", n)
				}
				for i, u := range storm.Updates {
					wantKind := Withdraw
					if i >= n/2 {
						wantKind = Announce
					}
					if u.Kind != wantKind {
						t.Fatalf("reset storm op %d is %v", i, u.Kind)
					}
				}
				// The storm must restore exactly the table it tore down.
				down := map[ip.Prefix]bool{}
				for _, u := range storm.Updates[:n/2] {
					down[u.Prefix] = true
				}
				for _, u := range storm.Updates[n/2:] {
					if !down[u.Prefix] {
						t.Fatalf("re-announce of %s which was never withdrawn", u.Prefix)
					}
				}
			case ScenarioRouteLeak:
				n := len(storm.Updates)
				leaked := map[ip.Prefix]bool{}
				for _, u := range storm.Updates[:n/2] {
					if u.Kind != Announce || u.Prefix.Len != 24 {
						t.Fatalf("leak op is %v %s, want announce /24", u.Kind, u.Prefix)
					}
					if leaked[u.Prefix] {
						t.Fatalf("duplicate leak of %s", u.Prefix)
					}
					leaked[u.Prefix] = true
				}
				for _, u := range storm.Updates[n/2:] {
					if u.Kind != Withdraw || !leaked[u.Prefix] {
						t.Fatalf("retraction op %v %s does not match the leak", u.Kind, u.Prefix)
					}
					delete(leaked, u.Prefix)
				}
				if len(leaked) != 0 {
					t.Fatalf("%d leaked prefixes never retracted", len(leaked))
				}
			case ScenarioUpdateBurst:
				if len(storm.Updates) < 2*cfg.WarmupOps {
					t.Fatalf("burst storm only %d ops", len(storm.Updates))
				}
				gap := storm.Updates[1].At - storm.Updates[0].At
				if gap <= 0 || gap > time.Second/paperPeakPerSec {
					t.Fatalf("burst spacing %v not above the paper peak", gap)
				}
			case ScenarioFlashCrowd:
				if !storm.Traffic.Invert || storm.Traffic.Repeat <= benignTraffic.Repeat {
					t.Fatalf("flash-crowd storm traffic %+v not inverted/bursty", storm.Traffic)
				}
				if sc.Phases[0].Traffic.Invert || sc.Phases[len(sc.Phases)-1].Traffic.Invert {
					t.Fatal("non-storm phases must use benign traffic")
				}
			}
		})
	}
}

// TestScenarioExportParses: every phase section of the export reads
// back through the ribio update parser (comment headers included), and
// the whole file concatenation round-trips the full op stream.
func TestScenarioExportParses(t *testing.T) {
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			sc, raw := exportScenarioBytes(t, name, scenarioTestConfig())
			if sc.Ops() == 0 {
				t.Fatal("empty scenario")
			}
			recs, err := ribio.ReadUpdates(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != sc.Ops() {
				t.Fatalf("parsed %d records, scenario has %d ops", len(recs), sc.Ops())
			}
			back := FromRecords(recs)
			i := 0
			for _, ph := range sc.Phases {
				for _, u := range ph.Updates {
					if back[i].Kind != u.Kind || back[i].Prefix != u.Prefix || back[i].At != u.At {
						t.Fatalf("op %d changed in round trip: %+v -> %+v", i, u, back[i])
					}
					i++
				}
			}
			header := fmt.Sprintf("# clue scenario: name=%s seed=%d ", name, scenarioTestConfig().Seed)
			if !strings.HasPrefix(string(raw), header) {
				t.Fatalf("missing scenario header, got %.80s", raw)
			}
		})
	}
}

// TestTrafficInvert pins the inversion semantics: same seed, reversed
// popularity — the non-inverted generator's modal prefix must fall far
// down the inverted generator's ranking (and the draw distributions
// must differ).
func TestTrafficInvert(t *testing.T) {
	fibRoutes := make([]ip.Prefix, 0, 64)
	for i := 0; i < 64; i++ {
		fibRoutes = append(fibRoutes, ip.MustPrefix(ip.Addr(uint32(i)<<24), 8))
	}
	count := func(invert bool) map[ip.Prefix]int {
		tr, err := NewTraffic(fibRoutes, TrafficConfig{Seed: 5, Invert: invert})
		if err != nil {
			t.Fatal(err)
		}
		c := map[ip.Prefix]int{}
		for i := 0; i < 20000; i++ {
			a := tr.Next()
			c[ip.MustPrefix(ip.Addr(uint32(a)&0xff000000), 8)]++
		}
		return c
	}
	straight, inverted := count(false), count(true)
	mode := func(c map[ip.Prefix]int) (best ip.Prefix, n int) {
		for p, k := range c {
			if k > n || (k == n && p.Compare(best) < 0) {
				best, n = p, k
			}
		}
		return
	}
	hot, hotN := mode(straight)
	if hotN < 2000 {
		t.Fatalf("zipf head too flat: mode %d/20000", hotN)
	}
	if inv := inverted[hot]; inv*10 > hotN {
		t.Fatalf("former head %s still hot after inversion: %d vs %d", hot, inv, hotN)
	}
}

// TestUpdateGenLiveRoutes: the live view matches an actual replay of
// the generated stream, and Has agrees with membership.
func TestUpdateGenLiveRoutes(t *testing.T) {
	base := []ip.Route{}
	for i := 0; i < 32; i++ {
		base = append(base, ip.Route{Prefix: ip.MustPrefix(ip.Addr(uint32(i)<<24), 8), NextHop: ip.NextHop(i%5 + 1)})
	}
	g, err := NewUpdateGen(trie.FromRoutes(base), UpdateConfig{Seed: 3, Messages: 200})
	if err != nil {
		t.Fatal(err)
	}
	mirror := trie.FromRoutes(base)
	for _, u := range g.NextN(200) {
		if u.Kind == Withdraw {
			mirror.Delete(u.Prefix, nil)
		} else {
			mirror.Insert(u.Prefix, u.Hop, nil)
		}
	}
	live := g.LiveRoutes()
	if len(live) != mirror.Len() {
		t.Fatalf("live view has %d routes, replay has %d", len(live), mirror.Len())
	}
	for _, r := range live {
		if got := mirror.Get(r.Prefix, nil); got != r.NextHop {
			t.Fatalf("live route %v, replay hop %d", r, got)
		}
		if !g.Has(r.Prefix) {
			t.Fatalf("Has(%s) = false for live prefix", r.Prefix)
		}
	}
	if g.Has(ip.MustPrefix(ip.MustParseAddr("203.0.113.0"), 30)) && mirror.Get(ip.MustPrefix(ip.MustParseAddr("203.0.113.0"), 30), nil) == ip.NoRoute {
		t.Fatal("Has reports a prefix the replay never announced")
	}
}
