package experiments

import (
	"strings"
	"testing"
)

func TestAblationDRedRule(t *testing.T) {
	res, err := AblationDRedRule(testScale, []int{128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// The except-home rule must never lose to insert-all: the home
	// slice of an insert-all cache stores prefixes that are never
	// probed there.
	for _, row := range res.Rows {
		if row.ExceptHome < row.AllHome-0.02 {
			t.Errorf("dred=%d: except-home %.4f below insert-all %.4f",
				row.DRedSize, row.ExceptHome, row.AllHome)
		}
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Error("render missing title")
	}
}

func TestAblationLayouts(t *testing.T) {
	res, err := AblationLayouts(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	byName := map[string]AblationLayoutRow{}
	for _, row := range res.Rows {
		byName[row.Layout] = row
	}
	d, p, n := byName["disjoint"], byName["plo"], byName["naive-ordered"]
	if d.Layout == "" || p.Layout == "" || n.Layout == "" {
		t.Fatalf("missing layouts: %+v", res.Rows)
	}
	// The paper's ordering: disjoint << plo << naive.
	if d.MeanAccesses >= p.MeanAccesses {
		t.Errorf("disjoint %.2f not below plo %.2f", d.MeanAccesses, p.MeanAccesses)
	}
	if p.MeanAccesses >= n.MeanAccesses {
		t.Errorf("plo %.2f not below naive %.2f", p.MeanAccesses, n.MeanAccesses)
	}
	// Disjoint moves at most one entry per op, so its mean stays near
	// the diff size. (The max can still spike: withdrawing a large
	// covering aggregate legitimately rewrites hundreds of entries.)
	if d.MeanAccesses > 10 {
		t.Errorf("disjoint mean accesses/msg = %.2f, want small", d.MeanAccesses)
	}
	if !strings.Contains(res.Render(), "layout") {
		t.Error("render missing content")
	}
}

func TestAblationPower(t *testing.T) {
	res, err := AblationPower(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	mono, part := res.Rows[0], res.Rows[1]
	if part.MeanSearched >= mono.MeanSearched {
		t.Errorf("partitioned search (%.0f entries) not below monolithic (%.0f)",
			part.MeanSearched, mono.MeanSearched)
	}
	// 4-way even partitioning should activate roughly a quarter of the
	// entries per search.
	ratio := part.MeanSearched / mono.MeanSearched
	if ratio < 0.15 || ratio > 0.40 {
		t.Errorf("relative power = %.3f, want ≈0.25", ratio)
	}
	if !strings.Contains(res.Render(), "power") {
		t.Error("render missing title")
	}
}

func TestAblationControlPlane(t *testing.T) {
	res, err := AblationControlPlane(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	uni, pat := res.Rows[0], res.Rows[1]
	if pat.Nodes >= uni.Nodes {
		t.Errorf("patricia nodes %d not below unibit %d", pat.Nodes, uni.Nodes)
	}
	if pat.LookupVisits >= uni.LookupVisits {
		t.Errorf("patricia lookup visits %.1f not below unibit %.1f", pat.LookupVisits, uni.LookupVisits)
	}
	if pat.ChurnVisits >= uni.ChurnVisits {
		t.Errorf("patricia churn visits %.1f not below unibit %.1f", pat.ChurnVisits, uni.ChurnVisits)
	}
	if !strings.Contains(res.Render(), "control-plane") {
		t.Error("render missing title")
	}
}
