package experiments

import (
	"math"
	"testing"
)

// The Quick-scale smoke tests run every figure generator exactly as an
// interactive `-scale quick` invocation would (FIBSize 8000, all 12
// router profiles) and assert the shape invariants the paper's claims
// rest on: tables come out non-empty and compressed, CLUE partitions
// carry zero redundancy and better balance than the baselines, and the
// CLUE pipeline stays cheaper than CLPL. They are skipped under -short;
// the regular testScale tests keep covering the drivers there.

func quickScale(t *testing.T) Scale {
	if testing.Short() {
		t.Skip("quick-scale smoke skipped under -short")
	}
	return Quick
}

func TestQuickFig8Smoke(t *testing.T) {
	res, err := Fig8Compression(quickScale(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != Quick.Routers {
		t.Fatalf("got %d rows, want %d", len(res.Rows), Quick.Routers)
	}
	for _, row := range res.Rows {
		if row.Original == 0 || row.Compressed == 0 {
			t.Fatalf("%s: empty table (original %d, compressed %d)", row.Router, row.Original, row.Compressed)
		}
		if row.Compressed >= row.Original {
			t.Errorf("%s: no compression (%d >= %d)", row.Router, row.Compressed, row.Original)
		}
	}
	if res.MeanRatio <= 0 || res.MeanRatio >= 1 {
		t.Errorf("mean ratio %.3f outside (0,1)", res.MeanRatio)
	}
}

func TestQuickFig9Smoke(t *testing.T) {
	res, err := Fig9Partition(quickScale(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressedSize == 0 || res.CompressedSize >= res.TableSize {
		t.Fatalf("degenerate table: %d compressed of %d", res.CompressedSize, res.TableSize)
	}
	for _, row := range res.Rows {
		if row.CLUEMax == 0 || row.SubTreeMax == 0 || row.IDBitMax == 0 {
			t.Fatalf("n=%d: empty partitions %+v", row.Partitions, row)
		}
		// The headline invariants behind Figure 9: range partitioning of
		// a disjoint table needs no replication and balances better than
		// the CLPL sub-tree carve.
		if row.CLUERedundant != 0 {
			t.Errorf("n=%d: CLUE redundancy %d, want 0", row.Partitions, row.CLUERedundant)
		}
		if row.CLUEImbalance > row.SubTreeImb {
			t.Errorf("n=%d: CLUE imbalance %.3f worse than sub-tree %.3f",
				row.Partitions, row.CLUEImbalance, row.SubTreeImb)
		}
	}
}

func TestQuickTTFSmoke(t *testing.T) {
	res, err := RunTTF(quickScale(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) == 0 {
		t.Fatal("no TTF windows")
	}
	if res.CLUEMean.Total() <= 0 || res.CLPLMean.Total() <= 0 {
		t.Fatalf("non-positive means: clue %v, clpl %v", res.CLUEMean, res.CLPLMean)
	}
	if res.CLUEMean.Total() >= res.CLPLMean.Total() {
		t.Errorf("CLUE mean TTF %.1f not below CLPL %.1f",
			res.CLUEMean.Total(), res.CLPLMean.Total())
	}
}

func TestQuickInterruptSmoke(t *testing.T) {
	rates := []int{0, 10}
	res, err := UpdateInterruption(quickScale(t), rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*len(rates) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), 2*len(rates))
	}
	tput := map[string]map[int]float64{"clue": {}, "clpl": {}}
	for _, row := range res.Rows {
		if row.Throughput <= 0 {
			t.Fatalf("%s rate %d: throughput %.3f", row.Mechanism, row.UpdatesPerKiloClock, row.Throughput)
		}
		tput[row.Mechanism][row.UpdatesPerKiloClock] = row.Throughput
	}
	for mech, byRate := range tput {
		if byRate[10] > byRate[0] {
			t.Errorf("%s: throughput rose under update load (%.3f > %.3f)", mech, byRate[10], byRate[0])
		}
	}
	// The §IV motivation: CLUE's cheap updates interrupt lookups less.
	if tput["clue"][10] < tput["clpl"][10] {
		t.Errorf("CLUE throughput %.3f below CLPL %.3f under updates", tput["clue"][10], tput["clpl"][10])
	}
}

func TestQuickRebalanceSmoke(t *testing.T) {
	res, err := RebalanceClosedLoop(quickScale(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	off, on := res.Rows[0], res.Rows[1]
	if off.Recuts != 0 || off.MovedRoutes != 0 {
		t.Fatalf("off leg recut: %+v", off)
	}
	if on.Recuts == 0 || on.MovedRoutes == 0 {
		t.Fatalf("controller never recut: %+v", on)
	}
	if off.DivertRate <= 0 {
		t.Fatalf("off leg shows no divert pressure: %+v", off)
	}
	// The figure's claim: the recut strictly sheds structural diverts.
	if res.Improvement <= 0 {
		t.Errorf("rebalancing did not improve the divert rate: off %.4f on %.4f",
			off.DivertRate, on.DivertRate)
	}
	if off.DispatchP99Ms <= 0 || on.DispatchP99Ms <= 0 {
		t.Errorf("empty latency histograms: off %.2fms on %.2fms", off.DispatchP99Ms, on.DispatchP99Ms)
	}
}

func TestQuickParallelSmoke(t *testing.T) {
	scale := quickScale(t)
	res, table, err := Table2Workload(scale)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() == 0 {
		t.Fatal("empty compressed table")
	}
	if len(res.Rows) == 0 || len(res.Mapping) != len(res.Rows) {
		t.Fatalf("mapping/rows mismatch: %d rows, %d mapping", len(res.Rows), len(res.Mapping))
	}
	sum := 0.0
	for _, p := range res.PerTCAMPct {
		sum += p
	}
	if math.Abs(sum-100) > 0.5 {
		t.Errorf("per-TCAM load shares sum to %.2f%%, want 100%%", sum)
	}

	fig15, err := Fig15LoadBalance(scale)
	if err != nil {
		t.Fatal(err)
	}
	if fig15.Throughput <= 0 {
		t.Fatalf("non-positive throughput %.3f", fig15.Throughput)
	}
	spread := func(pct []float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range pct {
			lo, hi = math.Min(lo, p), math.Max(hi, p)
		}
		return hi - lo
	}
	if spread(fig15.BalancedPct) > spread(fig15.OriginalPct) {
		t.Errorf("balancing widened the load spread: %.2f -> %.2f",
			spread(fig15.OriginalPct), spread(fig15.BalancedPct))
	}
}
