package experiments

import (
	"fmt"

	"clue/internal/dred"
	"clue/internal/engine"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/stats"
	"clue/internal/tcam"
	"clue/internal/tracegen"
)

// AblationDRedRuleResult isolates CLUE's reduced-redundancy fill rule
// ("DRed i never stores TCAM i's prefixes"): the same engine and table,
// with only the fill discipline switched between insert-except-home
// (CLUE) and insert-all (CLPL's rule), at several DRed sizes. It
// quantifies the paper's claim that the rule buys the same hit rate from
// 3/4 of the space at N=4.
type AblationDRedRuleResult struct {
	Rows []AblationDRedRow
}

// AblationDRedRow is one DRed-size point of the fill-rule ablation.
type AblationDRedRow struct {
	DRedSize            int
	ExceptHome, AllHome float64 // hit rates under the two fill rules
}

// insertAllSystem wraps a CLUESystem, overriding only the fill rule.
type insertAllSystem struct {
	*engine.CLUESystem
}

// Fill inserts into every cache including the home's, wasting the home
// slice exactly as CLPL's rule does.
func (s insertAllSystem) Fill(g *dred.Group, _ int, _ ip.Addr, matched ip.Route) engine.FillReport {
	g.InsertAll(matched)
	return engine.FillReport{}
}

// AblationDRedRule runs the fill-rule ablation under the worst-case
// mapping.
func AblationDRedRule(scale Scale, sizes []int) (*AblationDRedRuleResult, error) {
	if len(sizes) == 0 {
		sizes = []int{256, 512, 1024, 2048}
	}
	t2, table, err := Table2Workload(scale)
	if err != nil {
		return nil, err
	}
	res := &AblationDRedRuleResult{}
	for _, size := range sizes {
		row := AblationDRedRow{DRedSize: size}
		for variant := 0; variant < 2; variant++ {
			base, err := engine.NewCLUESystem(table, table2TCAMs, table2Buckets, t2.Mapping)
			if err != nil {
				return nil, err
			}
			var sys engine.System = base
			if variant == 1 {
				sys = insertAllSystem{base}
			}
			pt, err := runSweepPoint(scale, sys, size)
			if err != nil {
				return nil, err
			}
			if variant == 0 {
				row.ExceptHome = pt.HitRate
			} else {
				row.AllHome = pt.HitRate
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render produces the ablation table.
func (r *AblationDRedRuleResult) Render() string {
	tb := stats.NewTable(
		"Ablation: DRed fill rule (insert-except-home vs insert-all) under worst case",
		"dred size", "hit rate (except-home)", "hit rate (insert-all)",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.DRedSize, fmt.Sprintf("%.4f", row.ExceptHome), fmt.Sprintf("%.4f", row.AllHome))
	}
	return tb.String()
}

// AblationLayoutRow compares TCAM slot layouts driving the same
// compressed-table update stream.
type AblationLayoutRow struct {
	Layout       string
	MeanAccesses float64
	MaxAccesses  int64
	TotalMoves   int64
	TotalWrites  int64
}

// AblationLayoutsResult isolates CLUE's disjoint-layout claim: the same
// ONRTC diff stream applied under the disjoint, prefix-length-ordered
// and fully-sorted layouts.
type AblationLayoutsResult struct {
	Messages int
	Rows     []AblationLayoutRow
}

// AblationLayouts replays one update stream against three chips that
// differ only in slot layout.
func AblationLayouts(scale Scale) (*AblationLayoutsResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	fib, err := scale.buildFIB(300)
	if err != nil {
		return nil, err
	}
	stream, err := scale.buildUpdates(fib.Clone(), 301)
	if err != nil {
		return nil, err
	}
	// One updater produces the canonical diff stream; each chip replays
	// the identical ops under its own layout.
	updater := onrtc.BuildUpdater(fib)
	mkChips := func() []*tcam.Chip {
		routes := updater.Table().Routes()
		capacity := len(routes)*4 + 8192
		chips := []*tcam.Chip{
			tcam.NewChip(capacity, tcam.NewDisjointLayout()),
			tcam.NewChip(capacity, tcam.NewPLOLayout()),
			tcam.NewChip(capacity, tcam.NewNaiveLayout()),
		}
		for _, c := range chips {
			if err := c.Load(routes); err != nil {
				panic(err) // capacity is provably sufficient
			}
		}
		return chips
	}
	chips := mkChips()
	maxAcc := make([]int64, len(chips))
	for _, u := range stream {
		var diff onrtc.Diff
		if u.Kind == tracegen.Withdraw {
			diff = updater.Withdraw(u.Prefix)
		} else {
			diff = updater.Announce(u.Prefix, u.Hop)
		}
		for ci, c := range chips {
			before := c.Stats().UpdateAccesses()
			for _, op := range diff.Ops {
				var err error
				switch op.Kind {
				case onrtc.OpInsert:
					_, err = c.Insert(op.Route)
				case onrtc.OpDelete:
					_, err = c.Delete(op.Route.Prefix)
				case onrtc.OpModify:
					err = c.Modify(op.Route)
				}
				if err != nil {
					return nil, fmt.Errorf("experiments: layout %s: %w", c.LayoutName(), err)
				}
			}
			if d := c.Stats().UpdateAccesses() - before; d > maxAcc[ci] {
				maxAcc[ci] = d
			}
		}
	}
	res := &AblationLayoutsResult{Messages: len(stream)}
	for ci, c := range chips {
		st := c.Stats()
		res.Rows = append(res.Rows, AblationLayoutRow{
			Layout:       c.LayoutName(),
			MeanAccesses: float64(st.UpdateAccesses()) / float64(len(stream)),
			MaxAccesses:  maxAcc[ci],
			TotalMoves:   st.Moves,
			TotalWrites:  st.Writes,
		})
	}
	return res, nil
}

// Render produces the layout ablation table.
func (r *AblationLayoutsResult) Render() string {
	tb := stats.NewTable(
		fmt.Sprintf("Ablation: TCAM layout on the same %d-message ONRTC diff stream", r.Messages),
		"layout", "mean accesses/msg", "max accesses/msg", "total moves", "total writes",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.Layout, fmt.Sprintf("%.2f", row.MeanAccesses), row.MaxAccesses, row.TotalMoves, row.TotalWrites)
	}
	return tb.String()
}

// AblationPowerRow compares search power between a monolithic TCAM and a
// partitioned deployment.
type AblationPowerRow struct {
	Setup         string
	MeanSearched  float64
	RelativePower float64
}

// AblationPowerResult isolates the partitioning power win the paper's
// related work (CoolCAMs) motivates: entries activated per search.
type AblationPowerResult struct {
	Rows []AblationPowerRow
}

// AblationPower measures per-search activated entries for a monolithic
// chip versus CLUE's partitioned engine.
func AblationPower(scale Scale) (*AblationPowerResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	fib, err := scale.buildFIB(400)
	if err != nil {
		return nil, err
	}
	table := onrtc.Compress(fib)
	traffic, err := scale.buildTraffic(table, 401)
	if err != nil {
		return nil, err
	}

	mono := tcam.NewChip(table.Len()+1024, tcam.NewDisjointLayout())
	if err := mono.Load(table.Routes()); err != nil {
		return nil, err
	}
	sys, err := engine.NewCLUESystem(table, table2TCAMs, table2Buckets, nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < scale.Packets/4; i++ {
		a := traffic.Next()
		mono.Lookup(a)
		sys.Chip(sys.Home(a)).Lookup(a)
	}
	monoMean := mono.Stats().MeanSearched()
	var partSearched, partLookups int64
	for i := 0; i < table2TCAMs; i++ {
		st := sys.Chip(i).Stats()
		partSearched += st.EntriesSearched
		partLookups += st.Lookups
	}
	partMean := float64(partSearched) / float64(partLookups)
	res := &AblationPowerResult{Rows: []AblationPowerRow{
		{Setup: "monolithic", MeanSearched: monoMean, RelativePower: 1},
		{Setup: fmt.Sprintf("clue %d-way", table2TCAMs), MeanSearched: partMean, RelativePower: partMean / monoMean},
	}}
	return res, nil
}

// Render produces the power ablation table.
func (r *AblationPowerResult) Render() string {
	tb := stats.NewTable(
		"Ablation: entries activated per search (TCAM power proxy)",
		"setup", "mean entries/search", "relative power",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.Setup, fmt.Sprintf("%.0f", row.MeanSearched), fmt.Sprintf("%.3f", row.RelativePower))
	}
	return tb.String()
}
