package experiments

import (
	"fmt"
	"sort"

	"clue/internal/engine"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/stats"
)

// Table2Row is one bucket row of Table II.
type Table2Row struct {
	TCAM      int
	Bucket    int
	RangeLow  ip.Addr
	RangeHigh ip.Addr
	PartPct   float64
	TCAMPct   float64
}

// Table2Result reproduces Table II: the compressed table split into 32
// even buckets, per-bucket traffic share measured on Zipf traffic, and
// the worst-case mapping (hottest 8 buckets on TCAM 1, next 8 on TCAM 2,
// ...).
type Table2Result struct {
	Rows []Table2Row
	// Mapping is bucket -> TCAM, reused by Figures 15–17.
	Mapping []int
	// PerTCAMPct is the resulting offered-load share per TCAM (the
	// paper's 77.88/17.43/4.54/0.16 shape).
	PerTCAMPct []float64
}

const (
	table2Buckets = 32
	table2TCAMs   = 4
)

// Table2Workload measures per-bucket load and constructs the worst-case
// mapping.
func Table2Workload(scale Scale) (*Table2Result, *onrtc.Table, error) {
	if err := scale.validate(); err != nil {
		return nil, nil, err
	}
	fib, err := scale.buildFIB(200)
	if err != nil {
		return nil, nil, err
	}
	table := onrtc.Compress(fib)
	res, err := table2From(scale, table)
	if err != nil {
		return nil, nil, err
	}
	return res, table, nil
}

// table2From measures bucket loads over an existing compressed table.
func table2From(scale Scale, table *onrtc.Table) (*Table2Result, error) {
	parts, index, err := engine.BucketIndex(table, table2Buckets)
	if err != nil {
		return nil, err
	}
	traffic, err := scale.buildTraffic(table, 201)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, table2Buckets)
	probes := scale.Packets / 2
	for i := 0; i < probes; i++ {
		counts[index.Lookup(traffic.Next())]++
	}
	order := make([]int, table2Buckets)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })

	res := &Table2Result{
		Mapping:    make([]int, table2Buckets),
		PerTCAMPct: make([]float64, table2TCAMs),
	}
	per := table2Buckets / table2TCAMs
	for rank, b := range order {
		t := rank / per
		if t >= table2TCAMs {
			t = table2TCAMs - 1
		}
		res.Mapping[b] = t
		pct := 100 * float64(counts[b]) / float64(probes)
		res.PerTCAMPct[t] += pct
		res.Rows = append(res.Rows, Table2Row{
			TCAM:      t + 1,
			Bucket:    b,
			RangeLow:  parts.Parts[b].Low,
			RangeHigh: parts.Parts[b].High,
			PartPct:   pct,
			TCAMPct:   0, // filled below once sums are known
		})
	}
	for i := range res.Rows {
		res.Rows[i].TCAMPct = res.PerTCAMPct[res.Rows[i].TCAM-1]
	}
	return res, nil
}

// Render produces the Table II rows.
func (r *Table2Result) Render() string {
	tb := stats.NewTable(
		"Table II: workload on 32 partitions mapped worst-case onto 4 TCAMs",
		"tcam", "bucket", "range low", "range high", "% of partition", "% of tcam",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.TCAM, row.Bucket, row.RangeLow.String(), row.RangeHigh.String(),
			fmt.Sprintf("%.2f%%", row.PartPct), fmt.Sprintf("%.2f%%", row.TCAMPct))
	}
	return tb.String()
}

// Fig15Result reproduces Figure 15: offered (home) load vs actually
// served load per TCAM under the Table II worst-case mapping.
type Fig15Result struct {
	// OriginalPct is the pre-balancing workload share per TCAM.
	OriginalPct []float64
	// BalancedPct is the post-balancing served share per TCAM.
	BalancedPct []float64
	// Throughput and Speedup summarise the run.
	Throughput float64
	Speedup    float64
	HitRate    float64
	// MeanLatency is the average clocks from arrival to resolution.
	MeanLatency float64
}

// Fig15LoadBalance runs the worst-case simulation with the paper's
// parameters (FIFO 256, DRed 1024, 4 clocks/lookup).
func Fig15LoadBalance(scale Scale) (*Fig15Result, error) {
	t2, table, err := Table2Workload(scale)
	if err != nil {
		return nil, err
	}
	sys, err := engine.NewCLUESystem(table, table2TCAMs, table2Buckets, t2.Mapping)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(sys, engine.Config{})
	if err != nil {
		return nil, err
	}
	traffic, err := scale.buildTraffic(table, 201)
	if err != nil {
		return nil, err
	}
	eng.Run(traffic.Next, scale.Warmup)
	eng.ResetStats()
	for i := 0; i < scale.Packets; i++ {
		eng.Step(traffic.Next(), true)
	}
	st := eng.Stats()
	res := &Fig15Result{
		OriginalPct: make([]float64, table2TCAMs),
		BalancedPct: make([]float64, table2TCAMs),
		Throughput:  st.Throughput(),
		Speedup:     st.SpeedupFactor(eng.Config().LookupClocks),
		HitRate:     st.HitRate(),
		MeanLatency: st.MeanLatency(),
	}
	var homeSum, servedSum int64
	for i := 0; i < table2TCAMs; i++ {
		homeSum += st.PerTCAMHome[i]
		servedSum += st.PerTCAMServed[i]
	}
	for i := 0; i < table2TCAMs; i++ {
		res.OriginalPct[i] = 100 * float64(st.PerTCAMHome[i]) / float64(homeSum)
		res.BalancedPct[i] = 100 * float64(st.PerTCAMServed[i]) / float64(servedSum)
	}
	return res, nil
}

// Render produces the Figure 15 bars.
func (r *Fig15Result) Render() string {
	tb := stats.NewTable(
		"Figure 15: load balancing under the Table II worst case",
		"tcam", "original %", "balanced %",
	)
	for i := range r.OriginalPct {
		tb.AddRowf(i+1, fmt.Sprintf("%.2f", r.OriginalPct[i]), fmt.Sprintf("%.2f", r.BalancedPct[i]))
	}
	tb.AddRow()
	tb.AddRowf("speedup", fmt.Sprintf("%.2f", r.Speedup), fmt.Sprintf("hit rate %.3f", r.HitRate))
	tb.AddRowf("latency", fmt.Sprintf("%.1f clk", r.MeanLatency), "")
	return tb.String()
}

// SweepPoint is one DRed-size point of Figures 16 and 17.
type SweepPoint struct {
	Mechanism string
	DRedSize  int
	HitRate   float64
	Speedup   float64
}

// SweepResult holds the DRed-size sweep both Figure 16 (speedup vs hit
// rate, with the worst-case bound t=(N-1)h+1 and a cubic fit) and Figure
// 17 (hit rate vs DRed size) read from.
type SweepResult struct {
	Points []SweepPoint
	// CubicCLUE / CubicCLPL are least-squares cubic fits of t(h), as in
	// the paper's Figure 16 dotted lines (nil when a fit is impossible).
	CubicCLUE, CubicCLPL []float64
	// TCAMs is N, for the bound line.
	TCAMs int
}

// DRedSweep runs the worst-case engine at several DRed sizes for both
// mechanisms.
func DRedSweep(scale Scale, sizes []int) (*SweepResult, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 128, 256, 512, 1024, 2048}
	}
	t2, table, err := Table2Workload(scale)
	if err != nil {
		return nil, err
	}
	// CLPL worst case: probe its partition loads, then map hottest
	// partitions together, mirroring the Table II construction.
	fibCLPL, err := scale.buildFIB(200)
	if err != nil {
		return nil, err
	}
	probe, err := engine.NewCLPLSystem(fibCLPL, table2TCAMs, table2Buckets/table2TCAMs, nil)
	if err != nil {
		return nil, err
	}
	clplMapping, err := worstCaseCLPLMapping(scale, table, probe)
	if err != nil {
		return nil, err
	}

	res := &SweepResult{TCAMs: table2TCAMs}
	for _, size := range sizes {
		clueSys, err := engine.NewCLUESystem(table, table2TCAMs, table2Buckets, t2.Mapping)
		if err != nil {
			return nil, err
		}
		pt, err := runSweepPoint(scale, clueSys, size)
		if err != nil {
			return nil, err
		}
		pt.Mechanism = "clue"
		res.Points = append(res.Points, pt)

		fib2, err := scale.buildFIB(200)
		if err != nil {
			return nil, err
		}
		clplSys, err := engine.NewCLPLSystem(fib2, table2TCAMs, table2Buckets/table2TCAMs, clplMapping)
		if err != nil {
			return nil, err
		}
		pt, err = runSweepPoint(scale, clplSys, size)
		if err != nil {
			return nil, err
		}
		pt.Mechanism = "clpl"
		res.Points = append(res.Points, pt)
	}
	res.CubicCLUE = fitCubic(res.Points, "clue")
	res.CubicCLPL = fitCubic(res.Points, "clpl")
	return res, nil
}

// worstCaseCLPLMapping measures per-partition load on the probe system
// and groups the hottest partitions onto the same TCAM.
func worstCaseCLPLMapping(scale Scale, table *onrtc.Table, probe *engine.CLPLSystem) ([]int, error) {
	traffic, err := scale.buildTraffic(table, 201)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, probe.Partitions())
	for i := 0; i < scale.Packets/2; i++ {
		counts[probe.PartitionOf(traffic.Next())]++
	}
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	mapping := make([]int, len(counts))
	per := (len(counts) + table2TCAMs - 1) / table2TCAMs
	for rank, p := range order {
		t := rank / per
		if t >= table2TCAMs {
			t = table2TCAMs - 1
		}
		mapping[p] = t
	}
	return mapping, nil
}

// runSweepPoint warms and measures one engine configuration.
func runSweepPoint(scale Scale, sys engine.System, dredSize int) (SweepPoint, error) {
	eng, err := engine.New(sys, engine.Config{DRedSize: dredSize})
	if err != nil {
		return SweepPoint{}, err
	}
	// The traffic stream must be identical across mechanisms, so it is
	// rebuilt per point from the same seed. It draws from a fixed
	// universe of prefixes, independent of the system under test.
	fib, err := scale.buildFIB(200)
	if err != nil {
		return SweepPoint{}, err
	}
	traffic, err := scale.buildTraffic(onrtc.Compress(fib), 201)
	if err != nil {
		return SweepPoint{}, err
	}
	eng.Run(traffic.Next, scale.Warmup)
	eng.ResetStats()
	for i := 0; i < scale.Packets; i++ {
		eng.Step(traffic.Next(), true)
	}
	st := eng.Stats()
	return SweepPoint{
		DRedSize: dredSize,
		HitRate:  st.HitRate(),
		Speedup:  st.SpeedupFactor(eng.Config().LookupClocks),
	}, nil
}

// fitCubic fits t(h) for one mechanism; nil when underdetermined.
func fitCubic(points []SweepPoint, mech string) []float64 {
	var hs, ts []float64
	for _, p := range points {
		if p.Mechanism == mech {
			hs = append(hs, p.HitRate)
			ts = append(ts, p.Speedup)
		}
	}
	coeffs, err := stats.PolyFit(hs, ts, 3)
	if err != nil {
		return nil
	}
	return coeffs
}

// RenderFig16 plots speedup vs hit rate against the worst-case bound.
func (r *SweepResult) RenderFig16() string {
	tb := stats.NewTable(
		"Figure 16: speedup factor vs DRed hit rate (worst-case mapping)",
		"mechanism", "dred", "hit rate", "speedup", "bound (N-1)h+1",
	)
	for _, p := range r.Points {
		bound := float64(r.TCAMs-1)*p.HitRate + 1
		tb.AddRowf(p.Mechanism, p.DRedSize,
			fmt.Sprintf("%.4f", p.HitRate), fmt.Sprintf("%.3f", p.Speedup), fmt.Sprintf("%.3f", bound))
	}
	return tb.String()
}

// RenderFig17 plots hit rate vs DRed size per mechanism.
func (r *SweepResult) RenderFig17() string {
	tb := stats.NewTable(
		"Figure 17: DRed hit rate vs DRed size",
		"dred size", "clue hit rate", "clpl hit rate",
	)
	bySize := map[int]map[string]float64{}
	var sizes []int
	for _, p := range r.Points {
		if bySize[p.DRedSize] == nil {
			bySize[p.DRedSize] = map[string]float64{}
			sizes = append(sizes, p.DRedSize)
		}
		bySize[p.DRedSize][p.Mechanism] = p.HitRate
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		tb.AddRowf(size,
			fmt.Sprintf("%.4f", bySize[size]["clue"]),
			fmt.Sprintf("%.4f", bySize[size]["clpl"]))
	}
	return tb.String()
}
