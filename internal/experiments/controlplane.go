package experiments

import (
	"fmt"

	"clue/internal/ip"
	"clue/internal/patricia"
	"clue/internal/stats"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// ControlPlaneRow compares one control-plane trie structure.
type ControlPlaneRow struct {
	Structure    string
	Nodes        int
	LookupVisits float64 // mean per lookup
	ChurnVisits  float64 // mean per insert/delete
}

// ControlPlaneResult is the control-plane structure ablation: the paper
// prices TTF1 and RRC-ME in SRAM node visits; path compression
// (Patricia) cuts both the visit counts and the SRAM footprint, shrinking
// CLUE's only losing dimension (TTF1).
type ControlPlaneResult struct {
	Routes int
	Rows   []ControlPlaneRow
}

// AblationControlPlane measures node visits for the unibit and Patricia
// tries on the same lookup and churn workloads.
func AblationControlPlane(scale Scale) (*ControlPlaneResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	fib, err := scale.buildFIB(700)
	if err != nil {
		return nil, err
	}
	routes := fib.Routes()
	uni := trie.FromRoutes(routes)
	pat := patricia.FromRoutes(routes)

	traffic, err := tracegen.NewTraffic(tracegen.PrefixesFromRoutes(routes), tracegen.TrafficConfig{Seed: scale.Seed + 701})
	if err != nil {
		return nil, err
	}
	lookups := scale.Packets / 4
	var uniLook, patLook trie.Visits
	for i := 0; i < lookups; i++ {
		a := traffic.Next()
		uni.Lookup(a, &uniLook)
		pat.Lookup(a, &patLook)
	}

	gen, err := tracegen.NewUpdateGen(fib.Clone(), tracegen.UpdateConfig{Seed: scale.Seed + 702, Messages: scale.Updates})
	if err != nil {
		return nil, err
	}
	var uniChurn, patChurn trie.Visits
	churn := gen.NextN(scale.Updates)
	for _, u := range churn {
		if u.Kind == tracegen.Withdraw {
			uni.Delete(u.Prefix, &uniChurn)
			pat.Delete(u.Prefix, &patChurn)
		} else {
			uni.Insert(u.Prefix, u.Hop, &uniChurn)
			pat.Insert(u.Prefix, u.Hop, &patChurn)
		}
	}
	// Consistency guard: the two structures must still agree.
	for i := 0; i < 2000; i++ {
		a := ip.Addr(uint32(i) * 2654435761)
		hu, _ := uni.Lookup(a, nil)
		hp, _ := pat.Lookup(a, nil)
		if hu != hp {
			return nil, fmt.Errorf("experiments: control-plane structures diverged at %s: %d vs %d", a, hu, hp)
		}
	}

	res := &ControlPlaneResult{Routes: len(routes)}
	res.Rows = append(res.Rows,
		ControlPlaneRow{
			Structure:    "unibit trie",
			Nodes:        uni.NodeCount(),
			LookupVisits: float64(uniLook.Nodes) / float64(lookups),
			ChurnVisits:  float64(uniChurn.Nodes) / float64(len(churn)),
		},
		ControlPlaneRow{
			Structure:    "patricia trie",
			Nodes:        pat.NodeCount(),
			LookupVisits: float64(patLook.Nodes) / float64(lookups),
			ChurnVisits:  float64(patChurn.Nodes) / float64(len(churn)),
		},
	)
	return res, nil
}

// Render produces the comparison table.
func (r *ControlPlaneResult) Render() string {
	tb := stats.NewTable(
		fmt.Sprintf("Ablation: control-plane trie structure (%d routes, visits = SRAM accesses)", r.Routes),
		"structure", "nodes", "visits/lookup", "visits/update",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.Structure, row.Nodes,
			fmt.Sprintf("%.1f", row.LookupVisits), fmt.Sprintf("%.1f", row.ChurnVisits))
	}
	return tb.String()
}
