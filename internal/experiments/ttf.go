package experiments

import (
	"fmt"
	"time"

	"clue/internal/stats"
	"clue/internal/update"
)

// TTFWindow is one x-axis point of Figures 10–14: the mean TTF breakdown
// of both mechanisms over a slice of the 24 h update trace.
type TTFWindow struct {
	// Start is the window's offset in the trace.
	Start time.Duration
	// Messages is how many updates the window contains.
	Messages int
	// CLUE and CLPL are the window's mean TTF breakdowns.
	CLUE, CLPL update.TTF
}

// TTFResult drives Figures 10 (TTF1), 11 (TTF2), 12 (TTF3), 13
// (TTF2+TTF3) and 14 (total TTF) from one replayed trace.
type TTFResult struct {
	Windows []TTFWindow
	// CLUEMean and CLPLMean are the whole-trace means.
	CLUEMean, CLPLMean update.TTF
}

// RunTTF replays the same flap-heavy update stream through the CLUE and
// CLPL pipelines (caches pre-warmed with Zipf traffic) and aggregates the
// per-message TTFs into time windows.
func RunTTF(scale Scale) (*TTFResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	fibA, err := scale.buildFIB(100)
	if err != nil {
		return nil, err
	}
	fibB := fibA.Clone()
	stream, err := scale.buildUpdates(fibA.Clone(), 101)
	if err != nil {
		return nil, err
	}

	cluePipe, err := update.NewCLUEPipeline(fibA, 4, 1024, update.DefaultCosts())
	if err != nil {
		return nil, err
	}
	clplPipe, err := update.NewCLPLPipeline(fibB, 4, 1024, update.DefaultCosts())
	if err != nil {
		return nil, err
	}
	traffic, err := scale.buildTraffic(cluePipe.Updater().Table(), 102)
	if err != nil {
		return nil, err
	}
	warm := traffic.NextN(scale.Warmup)
	cluePipe.Warm(warm)
	clplPipe.Warm(warm)

	clueSeries, err := update.Replay(cluePipe, stream)
	if err != nil {
		return nil, fmt.Errorf("experiments: clue replay: %w", err)
	}
	clplSeries, err := update.Replay(clplPipe, stream)
	if err != nil {
		return nil, fmt.Errorf("experiments: clpl replay: %w", err)
	}

	const windows = 24
	span := stream[len(stream)-1].At + 1
	winLen := span / windows
	if winLen == 0 {
		winLen = 1
	}
	res := &TTFResult{}
	buckets := make([][2][]update.TTF, windows)
	for i, u := range stream {
		w := int(u.At / winLen)
		if w >= windows {
			w = windows - 1
		}
		buckets[w][0] = append(buckets[w][0], clueSeries[i])
		buckets[w][1] = append(buckets[w][1], clplSeries[i])
	}
	for w := 0; w < windows; w++ {
		if len(buckets[w][0]) == 0 {
			continue
		}
		res.Windows = append(res.Windows, TTFWindow{
			Start:    time.Duration(w) * winLen,
			Messages: len(buckets[w][0]),
			CLUE:     update.Summarise(buckets[w][0]).Mean,
			CLPL:     update.Summarise(buckets[w][1]).Mean,
		})
	}
	res.CLUEMean = update.Summarise(clueSeries).Mean
	res.CLPLMean = update.Summarise(clplSeries).Mean
	return res, nil
}

// ttfSeries renders one figure's series from the windows.
func (r *TTFResult) ttfSeries(title, unit string, pick func(update.TTF) float64) string {
	tb := stats.NewTable(title, "window", "messages", "clue "+unit, "clpl "+unit, "clpl/clue")
	for _, w := range r.Windows {
		c, p := pick(w.CLUE), pick(w.CLPL)
		ratio := 0.0
		if c > 0 {
			ratio = p / c
		}
		tb.AddRowf(w.Start.Round(time.Minute).String(), w.Messages, c, p, ratio)
	}
	cm, pm := pick(r.CLUEMean), pick(r.CLPLMean)
	ratio := 0.0
	if cm > 0 {
		ratio = pm / cm
	}
	tb.AddRowf("mean", "", cm, pm, ratio)
	return tb.String()
}

// RenderFig10 is the TTF1 (trie) comparison.
func (r *TTFResult) RenderFig10() string {
	return r.ttfSeries("Figure 10: TTF1 (trie update) CLPL vs CLUE", "ns",
		func(t update.TTF) float64 { return t.Trie })
}

// RenderFig11 is the TTF2 (TCAM) comparison.
func (r *TTFResult) RenderFig11() string {
	return r.ttfSeries("Figure 11: TTF2 (TCAM update) CLPL vs CLUE", "ns",
		func(t update.TTF) float64 { return t.TCAM })
}

// RenderFig12 is the TTF3 (DRed) comparison.
func (r *TTFResult) RenderFig12() string {
	return r.ttfSeries("Figure 12: TTF3 (DRed update) CLPL vs CLUE", "ns",
		func(t update.TTF) float64 { return t.DRed })
}

// RenderFig13 is the TTF2+TTF3 comparison (the paper's 4.29% headline).
func (r *TTFResult) RenderFig13() string {
	return r.ttfSeries("Figure 13: TTF2+TTF3 CLPL vs CLUE", "ns",
		func(t update.TTF) float64 { return t.TCAM + t.DRed })
}

// RenderFig14 is the total TTF comparison (the paper's 234% headline).
func (r *TTFResult) RenderFig14() string {
	return r.ttfSeries("Figure 14: TTF1+TTF2+TTF3 CLPL vs CLUE", "ns",
		func(t update.TTF) float64 { return t.Total() })
}
