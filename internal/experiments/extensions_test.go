package experiments

import (
	"strings"
	"testing"
)

func TestNSweep(t *testing.T) {
	res, err := NSweep(testScale, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Speedup < row.Bound*0.88 {
			t.Errorf("N=%d: speedup %.3f below bound %.3f", row.TCAMs, row.Speedup, row.Bound)
		}
		if row.PerTCAM <= 0.5 {
			t.Errorf("N=%d: scaling efficiency %.3f too low", row.TCAMs, row.PerTCAM)
		}
	}
	// Speedup must grow with chip count.
	if res.Rows[1].Speedup <= res.Rows[0].Speedup {
		t.Errorf("speedup did not grow: N=2 %.3f, N=4 %.3f", res.Rows[0].Speedup, res.Rows[1].Speedup)
	}
	if !strings.Contains(res.Render(), "speedup vs TCAM count") {
		t.Error("render missing title")
	}
}

func TestSLPLShift(t *testing.T) {
	res, err := SLPLShift(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	byMech := map[string]SLPLShiftRow{}
	for _, row := range res.Rows {
		byMech[row.Mechanism] = row
	}
	slpl, clue := byMech["slpl"], byMech["clue"]
	if slpl.Mechanism == "" || clue.Mechanism == "" {
		t.Fatalf("missing mechanisms: %+v", res.Rows)
	}
	// The dynamic mechanisms must not lose to stale static redundancy.
	if clue.Throughput < slpl.Throughput-0.02 {
		t.Errorf("CLUE throughput %.4f below stale SLPL %.4f", clue.Throughput, slpl.Throughput)
	}
	if !strings.Contains(res.Render(), "shifted traffic") {
		t.Error("render missing title")
	}
}

func TestUpdateInterruption(t *testing.T) {
	res, err := UpdateInterruption(testScale, []int{0, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	byKey := map[string]map[int]InterruptRow{}
	for _, row := range res.Rows {
		if byKey[row.Mechanism] == nil {
			byKey[row.Mechanism] = map[int]InterruptRow{}
		}
		byKey[row.Mechanism][row.UpdatesPerKiloClock] = row
	}
	for _, mech := range []string{"clue", "clpl"} {
		quiet, busy := byKey[mech][0], byKey[mech][20]
		if quiet.StallClocks != 0 {
			t.Errorf("%s: stalls at zero update rate: %d", mech, quiet.StallClocks)
		}
		if busy.StallClocks == 0 {
			t.Errorf("%s: no stalls at 20 upd/kclk", mech)
		}
		if busy.Throughput > quiet.Throughput+0.01 {
			t.Errorf("%s: throughput rose under update load: %.4f -> %.4f",
				mech, quiet.Throughput, busy.Throughput)
		}
	}
	// The paper's point: CLPL burns far more lookup capacity per update.
	if byKey["clpl"][20].StallClocks <= byKey["clue"][20].StallClocks {
		t.Errorf("CLPL stall clocks %d not above CLUE's %d",
			byKey["clpl"][20].StallClocks, byKey["clue"][20].StallClocks)
	}
	if !strings.Contains(res.Render(), "interrupt") {
		t.Error("render missing title")
	}
}
