// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V): Figure 8 (compression), Figure 9 (partition
// comparison), Figures 10–14 (TTF series), Table II (per-bucket
// workload), Figure 15 (load balancing), Figure 16 (speedup vs hit rate
// with the theoretical worst case) and Figure 17 (hit rate vs DRed size).
//
// Each driver returns a structured result with a Render method producing
// the paper-style rows, so the same code serves the test suite, the
// clue-bench binary and the benchmark harness. Scale selects the size of
// the synthetic inputs; results are deterministic per Scale and seed.
package experiments

import (
	"fmt"
	"sort"

	"clue/internal/fibgen"
	"clue/internal/onrtc"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// Scale sizes an experiment run.
type Scale struct {
	// FIBSize is the route count of generated tables (Fig 9–17).
	FIBSize int
	// Packets is the measured packet count of engine runs.
	Packets int
	// Warmup is the packet count used to warm caches before measuring.
	Warmup int
	// Updates is the update-message count of TTF runs.
	Updates int
	// Routers is how many of the 12 Table I profiles Figure 8 compresses.
	Routers int
	// RouterScale divides the Table I route counts (1 = full size).
	RouterScale int
	// Seed offsets all generator seeds.
	Seed int64
}

// Quick is sized for interactive runs and the test suite (seconds).
var Quick = Scale{
	FIBSize:     8000,
	Packets:     120000,
	Warmup:      30000,
	Updates:     8000,
	Routers:     12,
	RouterScale: 40,
	Seed:        1,
}

// Full approaches the paper's sizes (hundreds of thousands of routes);
// minutes per experiment.
var Full = Scale{
	FIBSize:     300000,
	Packets:     2000000,
	Warmup:      300000,
	Updates:     100000,
	Routers:     12,
	RouterScale: 1,
	Seed:        1,
}

// validate rejects degenerate scales early with a clear message.
func (s Scale) validate() error {
	if s.FIBSize < 100 {
		return fmt.Errorf("experiments: FIBSize %d too small", s.FIBSize)
	}
	if s.Packets < 1000 || s.Warmup < 0 || s.Updates < 100 {
		return fmt.Errorf("experiments: degenerate scale %+v", s)
	}
	if s.Routers < 1 || s.Routers > 12 || s.RouterScale < 1 {
		return fmt.Errorf("experiments: bad router settings %+v", s)
	}
	return nil
}

// buildFIB generates the experiment's reference table.
func (s Scale) buildFIB(seedOffset int64) (*trie.Trie, error) {
	return fibgen.Generate(fibgen.Config{Seed: s.Seed + seedOffset, Routes: s.FIBSize})
}

// buildTraffic builds a Zipf traffic source over the compressed table.
func (s Scale) buildTraffic(table *onrtc.Table, seedOffset int64) (*tracegen.Traffic, error) {
	return tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(table.Routes()),
		tracegen.TrafficConfig{Seed: s.Seed + seedOffset},
	)
}

// compressFIB wraps onrtc.Compress with the package's error convention.
func compressFIB(fib *trie.Trie) (*onrtc.Table, error) {
	table := onrtc.Compress(fib)
	if table.Len() == 0 {
		return nil, fmt.Errorf("experiments: compression produced an empty table")
	}
	return table, nil
}

// hottestTogether maps buckets to TCAMs with the hottest grouped onto
// TCAM 0 — the worst-case construction shared by several experiments.
func hottestTogether(counts []int64, tcams int) []int {
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	mapping := make([]int, len(counts))
	per := (len(counts) + tcams - 1) / tcams
	for rank, b := range order {
		t := rank / per
		if t >= tcams {
			t = tcams - 1
		}
		mapping[b] = t
	}
	return mapping
}

// buildUpdates builds the flap-heavy 24 h update stream used by the TTF
// experiments.
func (s Scale) buildUpdates(fib *trie.Trie, seedOffset int64) ([]tracegen.Update, error) {
	gen, err := tracegen.NewUpdateGen(fib, tracegen.UpdateConfig{
		Seed:          s.Seed + seedOffset,
		Messages:      s.Updates,
		WithdrawFrac:  0.30,
		NewPrefixFrac: 0.55,
	})
	if err != nil {
		return nil, err
	}
	return gen.NextN(s.Updates), nil
}
