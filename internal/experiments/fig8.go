package experiments

import (
	"fmt"
	"time"

	"clue/internal/fibgen"
	"clue/internal/onrtc"
	"clue/internal/stats"
)

// Fig8Row is one router's compression result (one bar pair in Figure 8).
type Fig8Row struct {
	Router     string
	Location   string
	Original   int
	Compressed int
	Ratio      float64
	LeafPushed int
	ORTC       int
	Duration   time.Duration
}

// Fig8Result is the Figure 8 reproduction: FIB sizes before and after
// ONRTC compression on the 12 Table I routers.
type Fig8Result struct {
	Rows []Fig8Row
	// MeanRatio is the paper's headline average (≈0.71).
	MeanRatio float64
	// MeanDuration is the average compression time (paper: ≈39 ms at
	// ≈390K routes).
	MeanDuration time.Duration
}

// Fig8Compression compresses every router profile and reports sizes.
func Fig8Compression(scale Scale) (*Fig8Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	routers, err := fibgen.ScaleRouters(scale.RouterScale)
	if err != nil {
		return nil, err
	}
	routers = routers[:scale.Routers]
	res := &Fig8Result{}
	ratioSum := 0.0
	var durSum time.Duration
	for _, r := range routers {
		fib, err := fibgen.Generate(r.Config())
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", r.ID, err)
		}
		start := time.Now()
		_, st := onrtc.CompressWithStats(fib)
		dur := time.Since(start)
		res.Rows = append(res.Rows, Fig8Row{
			Router:     r.ID,
			Location:   r.Location,
			Original:   st.Original,
			Compressed: st.Compressed,
			Ratio:      st.Ratio(),
			LeafPushed: st.LeafPushed,
			ORTC:       st.ORTC,
			Duration:   dur,
		})
		ratioSum += st.Ratio()
		durSum += dur
	}
	res.MeanRatio = ratioSum / float64(len(res.Rows))
	res.MeanDuration = durSum / time.Duration(len(res.Rows))
	return res, nil
}

// Render produces the paper-style table.
func (r *Fig8Result) Render() string {
	tb := stats.NewTable(
		"Figure 8: FIB size before and after ONRTC compression (with baselines)",
		"router", "location", "original", "onrtc", "ratio", "ortc", "leaf-pushed", "time",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.Router, row.Location, row.Original, row.Compressed,
			row.Ratio, row.ORTC, row.LeafPushed, row.Duration.Round(time.Millisecond).String())
	}
	tb.AddRowf("mean", "", "", "", r.MeanRatio, "", "", r.MeanDuration.Round(time.Millisecond).String())
	return tb.String()
}
