package experiments

import (
	"clue/internal/onrtc"
	"clue/internal/partition"
	"clue/internal/stats"
)

// Fig9Row compares the three partition algorithms at one partition count.
type Fig9Row struct {
	Partitions int
	// Per algorithm: the largest partition (what sizes the TCAM), the
	// total redundant entries, and max/mean imbalance.
	CLUEMax, SubTreeMax, IDBitMax             int
	CLUERedundant, SubTreeRed, IDBitRedundant int
	CLUEImbalance, SubTreeImb, IDBitImbalance float64
}

// Fig9Result reproduces Figure 9: partition evenness and redundancy for
// SLPL (ID-bit), CLPL (sub-tree) and CLUE on one router's table.
type Fig9Result struct {
	TableSize      int
	CompressedSize int
	Rows           []Fig9Row
}

// Fig9Partition runs the three algorithms at 4..32 partitions.
func Fig9Partition(scale Scale) (*Fig9Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	fib, err := scale.buildFIB(900)
	if err != nil {
		return nil, err
	}
	table := onrtc.Compress(fib)
	res := &Fig9Result{TableSize: fib.Len(), CompressedSize: table.Len()}
	// Partition counts are bucket counts: parallel engines carve several
	// buckets per TCAM chip (8 per chip at N=4 in Table II).
	for _, n := range []int{8, 16, 32, 64} {
		clueRes, _, err := partition.CLUE(table.Routes(), n)
		if err != nil {
			return nil, err
		}
		stRes, err := partition.SubTree(fib, n)
		if err != nil {
			return nil, err
		}
		k := 2
		for 1<<k < n {
			k++
		}
		idRes, err := partition.IDBit(fib.Routes(), k)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig9Row{
			Partitions:     n,
			CLUEMax:        clueRes.MaxSize(),
			SubTreeMax:     stRes.MaxSize(),
			IDBitMax:       idRes.MaxSize(),
			CLUERedundant:  clueRes.TotalRedundant(),
			SubTreeRed:     stRes.TotalRedundant(),
			IDBitRedundant: idRes.TotalRedundant(),
			CLUEImbalance:  clueRes.Imbalance(),
			SubTreeImb:     stRes.Imbalance(),
			IDBitImbalance: idRes.Imbalance(),
		})
	}
	return res, nil
}

// Render produces the paper-style comparison.
func (r *Fig9Result) Render() string {
	tb := stats.NewTable(
		"Figure 9: partition comparison (SLPL=id-bit, CLPL=sub-tree, CLUE)",
		"parts", "clue max", "clpl max", "slpl max",
		"clue redun", "clpl redun", "slpl redun",
		"clue imbal", "clpl imbal", "slpl imbal",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.Partitions,
			row.CLUEMax, row.SubTreeMax, row.IDBitMax,
			row.CLUERedundant, row.SubTreeRed, row.IDBitRedundant,
			row.CLUEImbalance, row.SubTreeImb, row.IDBitImbalance)
	}
	return tb.String()
}
