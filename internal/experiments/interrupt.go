package experiments

import (
	"fmt"

	"clue/internal/engine"
	"clue/internal/stats"
	"clue/internal/tcam"
	"clue/internal/tracegen"
	"clue/internal/update"
)

// InterruptRow is one update-rate point for one mechanism.
type InterruptRow struct {
	Mechanism string
	// UpdatesPerKiloClock is the applied update-message rate.
	UpdatesPerKiloClock int
	Throughput          float64
	// StallClocks is the total lookup-service time consumed by updates.
	StallClocks int64
}

// InterruptResult quantifies the paper's §IV motivation end to end:
// TCAM update work interrupts lookup service, so a mechanism's per-update
// access count translates directly into throughput loss as the update
// rate grows. CLUE (≈3 accesses/update) degrades far more slowly than
// CLPL (≈10–15 under the prefix-length-ordered layout).
type InterruptResult struct {
	Rows []InterruptRow
}

// UpdateInterruption sweeps the update rate for both mechanisms. Updates
// are replayed through the mechanism's update pipeline to obtain its real
// per-message TCAM access count, which stalls the serving engine's chip
// for accesses × LookupClocks. (The engine's table content is held fixed:
// the experiment isolates service-time dynamics.)
func UpdateInterruption(scale Scale, rates []int) (*InterruptResult, error) {
	if len(rates) == 0 {
		rates = []int{0, 2, 5, 10, 20}
	}
	if err := scale.validate(); err != nil {
		return nil, err
	}
	res := &InterruptResult{}
	for _, mech := range []string{"clue", "clpl"} {
		for _, rate := range rates {
			row, err := runInterruptPoint(scale, mech, rate)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runInterruptPoint(scale Scale, mech string, rate int) (InterruptRow, error) {
	fib, err := scale.buildFIB(800)
	if err != nil {
		return InterruptRow{}, err
	}
	table, err := compressFIB(fib.Clone())
	if err != nil {
		return InterruptRow{}, err
	}

	var sys engine.System
	var pipe update.Pipeline
	switch mech {
	case "clue":
		sys, err = engine.NewCLUESystem(table, table2TCAMs, table2Buckets, nil)
		if err != nil {
			return InterruptRow{}, err
		}
		pipe, err = update.NewCLUEPipeline(fib.Clone(), table2TCAMs, 1024, update.DefaultCosts())
	case "clpl":
		sys, err = engine.NewCLPLSystem(fib.Clone(), table2TCAMs, table2Buckets/table2TCAMs, nil)
		if err != nil {
			return InterruptRow{}, err
		}
		pipe, err = update.NewCLPLPipeline(fib.Clone(), table2TCAMs, 1024, update.DefaultCosts())
	default:
		return InterruptRow{}, fmt.Errorf("experiments: unknown mechanism %q", mech)
	}
	if err != nil {
		return InterruptRow{}, err
	}

	eng, err := engine.New(sys, engine.Config{})
	if err != nil {
		return InterruptRow{}, err
	}
	traffic, err := scale.buildTraffic(table, 801)
	if err != nil {
		return InterruptRow{}, err
	}
	gen, err := tracegen.NewUpdateGen(fib.Clone(), tracegen.UpdateConfig{
		Seed: scale.Seed + 802, Messages: scale.Packets, WithdrawFrac: 0.3, NewPrefixFrac: 0.55,
	})
	if err != nil {
		return InterruptRow{}, err
	}

	eng.Run(traffic.Next, scale.Warmup)
	eng.ResetStats()
	row := InterruptRow{Mechanism: mech, UpdatesPerKiloClock: rate}
	clocks := scale.Packets
	applied := 0
	lookupClocks := eng.Config().LookupClocks
	for c := 0; c < clocks; c++ {
		eng.Step(traffic.Next(), true)
		// Apply `rate` updates per 1000 clocks, spread evenly.
		if rate > 0 && (c*rate)/1000 > applied {
			applied++
			u := gen.Next()
			ttf, err := pipe.Apply(u)
			if err != nil {
				return InterruptRow{}, fmt.Errorf("experiments: %s update: %w", mech, err)
			}
			accesses := int(ttf.TCAM / tcam.AccessNs)
			// The update occupies the chip that owns the prefix for
			// one service slot per access.
			home := sys.Home(u.Prefix.First())
			stall := accesses * lookupClocks
			eng.Stall(home, stall)
			row.StallClocks += int64(stall)
		}
	}
	row.Throughput = eng.Stats().Throughput()
	return row, nil
}

// Render produces the throughput-vs-update-rate table.
func (r *InterruptResult) Render() string {
	tb := stats.NewTable(
		"Extension: lookup throughput vs routing-update rate (updates interrupt lookups)",
		"mechanism", "updates/kclk", "throughput", "stall clocks",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.Mechanism, row.UpdatesPerKiloClock,
			fmt.Sprintf("%.4f", row.Throughput), row.StallClocks)
	}
	return tb.String()
}
