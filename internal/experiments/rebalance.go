package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"clue/internal/ip"
	"clue/internal/serve"
	"clue/internal/stats"
	"clue/internal/tracegen"
)

// RebalanceRow is one leg of the closed-loop repartitioning figure.
type RebalanceRow struct {
	Mode          string
	DivertRate    float64
	DispatchP99Ms float64
	Recuts        int64
	MovedRoutes   int64
}

// RebalanceResult is the load-aware repartitioning figure: the serve
// runtime under service-paced inverted-Zipf traffic whose hot head
// overloads one home partition, measured with the static even carve and
// with the repartitioning controller. The controller's recut should
// shed the structural diverts the static carve cannot avoid.
type RebalanceResult struct {
	Routes  int
	Workers int
	// CapacityPerSec is each worker's nominal service rate (1/pace);
	// OfferedPerSec the measured off-leg dispatch rate.
	CapacityPerSec float64
	OfferedPerSec  float64
	Rows           []RebalanceRow
	// Improvement is 1 - on/off steady divert rate.
	Improvement float64
}

// Wall-clock shape of one leg. The capacity model is real time (paced
// workers), so these do not scale with Scale — only the table does.
const (
	rebWorkers  = 4
	rebDepth    = 6
	rebPace     = 2 * time.Millisecond
	rebLookers  = 120
	rebThink    = 80 * time.Millisecond
	rebInterval = 500 * time.Millisecond
	rebAdapt    = 3500 * time.Millisecond
	rebMeasure  = 1500 * time.Millisecond
)

// RebalanceClosedLoop measures both legs over the same compressed table
// and traffic seeds.
func RebalanceClosedLoop(scale Scale) (*RebalanceResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	fib, err := scale.buildFIB(900)
	if err != nil {
		return nil, err
	}
	table, err := compressFIB(fib)
	if err != nil {
		return nil, err
	}
	routes := table.Routes()

	res := &RebalanceResult{
		Routes:         len(routes),
		Workers:        rebWorkers,
		CapacityPerSec: float64(time.Second) / float64(rebPace),
	}
	off, err := rebalanceLeg(scale, routes, serve.RebalanceConfig{})
	if err != nil {
		return nil, err
	}
	on, err := rebalanceLeg(scale, routes, serve.RebalanceConfig{
		Interval:        rebInterval,
		MaxMoveFraction: 0.5,
	})
	if err != nil {
		return nil, err
	}
	res.OfferedPerSec = off.offeredPerSec
	res.Rows = []RebalanceRow{off.row("static even carve"), on.row("rebalancing on")}
	if off.divertRate > 0 {
		res.Improvement = 1 - on.divertRate/off.divertRate
	}
	return res, nil
}

type rebalanceLegResult struct {
	divertRate    float64
	offeredPerSec float64
	p99Ms         float64
	st            serve.Stats
}

func (l rebalanceLegResult) row(mode string) RebalanceRow {
	return RebalanceRow{
		Mode:          mode,
		DivertRate:    l.divertRate,
		DispatchP99Ms: l.p99Ms,
		Recuts:        l.st.Rebalance.Recuts,
		MovedRoutes:   l.st.Rebalance.MovedRoutes,
	}
}

// rebalanceLeg runs one leg: a paced runtime under semi-open-loop
// inverted-Zipf traffic (shared popularity ranking, per-looker draws),
// held through an adaptation window, then measured over a steady-state
// window bracketed by stats snapshots.
func rebalanceLeg(scale Scale, routes []ip.Route, reb serve.RebalanceConfig) (rebalanceLegResult, error) {
	var leg rebalanceLegResult
	rt, err := serve.New(routes, serve.Config{
		Workers:     rebWorkers,
		QueueDepth:  rebDepth,
		ServicePace: rebPace,
		Rebalance:   reb,
	})
	if err != nil {
		return leg, err
	}
	defer rt.Close()

	population := tracegen.PrefixesFromRoutes(routes)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var dispatched atomic.Int64
	for i := 0; i < rebLookers; i++ {
		tr, terr := tracegen.NewTraffic(population, tracegen.TrafficConfig{
			Seed:     scale.Seed + 901,
			DrawSeed: scale.Seed + 9100 + int64(i),
			ZipfS:    1.2,
			Invert:   true,
		})
		if terr != nil {
			close(stop)
			wg.Wait()
			return leg, terr
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jit := rand.New(rand.NewSource(scale.Seed + 9500 + int64(i)))
			pause := rebThink * time.Duration(i) / time.Duration(rebLookers)
			for {
				select {
				case <-stop:
					return
				case <-time.After(pause):
				}
				if _, derr := rt.Dispatch(tr.Next()); derr == nil {
					dispatched.Add(1)
				}
				pause = rebThink/2 + rebThink/4 + time.Duration(jit.Int63n(int64(rebThink)/2))
			}
		}(i)
	}

	start := time.Now()
	time.Sleep(rebAdapt)
	before := rt.Stats()
	time.Sleep(rebMeasure)
	after := rt.Stats()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	leg.st = rt.Stats()
	window := after.Dispatched - before.Dispatched
	if window == 0 {
		return leg, fmt.Errorf("experiments: rebalance leg measured no dispatches")
	}
	leg.divertRate = float64(after.Diverted-before.Diverted) / float64(window)
	leg.offeredPerSec = float64(dispatched.Load()) / elapsed.Seconds()
	leg.p99Ms = leg.st.Latency.DispatchP99Ns() / 1e6
	return leg, nil
}

// Render produces the figure's table.
func (r *RebalanceResult) Render() string {
	tb := stats.NewTable(
		fmt.Sprintf("Load-aware repartitioning under an inverted-Zipf flash crowd (%d routes, %d workers, %.0f lookups/s capacity each, ~%.0f/s offered)",
			r.Routes, r.Workers, r.CapacityPerSec, r.OfferedPerSec),
		"mode", "steady divert rate", "dispatch p99 (ms)", "recuts", "routes moved",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.Mode,
			fmt.Sprintf("%.4f", row.DivertRate),
			fmt.Sprintf("%.2f", row.DispatchP99Ms),
			row.Recuts, row.MovedRoutes)
	}
	tb.AddRowf("improvement", fmt.Sprintf("%.3f", r.Improvement), "", "", "")
	return tb.String()
}
