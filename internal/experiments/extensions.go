package experiments

import (
	"fmt"

	"clue/internal/engine"
	"clue/internal/ip"
	"clue/internal/stats"
)

// NSweepRow is one chip-count point of the scalability sweep.
type NSweepRow struct {
	TCAMs   int
	HitRate float64
	Speedup float64
	Bound   float64
	PerTCAM float64 // speedup per chip (scaling efficiency)
}

// NSweepResult extends the paper's N=4 evaluation across chip counts,
// the related-work axis (Panigrahy's 8 chips bought only a 5× speedup
// without load balancing; CLUE should stay near N).
type NSweepResult struct {
	Rows []NSweepRow
}

// NSweep measures worst-case speedup at several chip counts.
func NSweep(scale Scale, ns []int) (*NSweepResult, error) {
	if len(ns) == 0 {
		ns = []int{2, 4, 8}
	}
	if err := scale.validate(); err != nil {
		return nil, err
	}
	fib, err := scale.buildFIB(500)
	if err != nil {
		return nil, err
	}
	table, err := compressFIB(fib)
	if err != nil {
		return nil, err
	}
	res := &NSweepResult{}
	for _, n := range ns {
		buckets := 8 * n
		// Worst-case mapping for this chip count.
		_, index, err := engine.BucketIndex(table, buckets)
		if err != nil {
			return nil, err
		}
		traffic, err := scale.buildTraffic(table, 501)
		if err != nil {
			return nil, err
		}
		counts := make([]int64, buckets)
		for i := 0; i < scale.Packets/2; i++ {
			counts[index.Lookup(traffic.Next())]++
		}
		mapping := hottestTogether(counts, n)
		sys, err := engine.NewCLUESystem(table, n, buckets, mapping)
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(sys, engine.Config{})
		if err != nil {
			return nil, err
		}
		run, err := scale.buildTraffic(table, 501)
		if err != nil {
			return nil, err
		}
		// Offer exactly the aggregate service rate (N/LookupClocks
		// packets per clock): the paper's one-per-clock convention only
		// saturates N = LookupClocks.
		rate := float64(n) / float64(eng.Config().LookupClocks)
		offer := func(clocks int) {
			credit := 0.0
			for i := 0; i < clocks; i++ {
				credit += rate
				var batch []ip.Addr
				for credit >= 1 {
					batch = append(batch, run.Next())
					credit--
				}
				eng.StepMulti(batch)
			}
		}
		offer(scale.Warmup)
		eng.ResetStats()
		offer(scale.Packets)
		st := eng.Stats()
		h := st.HitRate()
		t := st.SpeedupFactor(eng.Config().LookupClocks)
		res.Rows = append(res.Rows, NSweepRow{
			TCAMs:   n,
			HitRate: h,
			Speedup: t,
			Bound:   float64(n-1)*h + 1,
			PerTCAM: t / float64(n),
		})
	}
	return res, nil
}

// Render produces the scalability table.
func (r *NSweepResult) Render() string {
	tb := stats.NewTable(
		"Extension: worst-case speedup vs TCAM count",
		"tcams", "hit rate", "speedup", "bound (N-1)h+1", "efficiency t/N",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.TCAMs, fmt.Sprintf("%.4f", row.HitRate), fmt.Sprintf("%.3f", row.Speedup),
			fmt.Sprintf("%.3f", row.Bound), fmt.Sprintf("%.3f", row.PerTCAM))
	}
	return tb.String()
}

// SLPLShiftRow compares the three mechanisms under one traffic condition.
type SLPLShiftRow struct {
	Mechanism  string
	Throughput float64
	Speedup    float64
	DropRate   float64
}

// SLPLShiftResult reproduces the paper's §II argument against static
// redundancy: SLPL trained on one traffic sample, then measured under a
// shifted hot set, against CLPL and CLUE under the identical shifted
// traffic.
type SLPLShiftResult struct {
	Rows []SLPLShiftRow
}

// SLPLShift runs the three mechanisms under shifted Zipf traffic.
func SLPLShift(scale Scale) (*SLPLShiftResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	fib, err := scale.buildFIB(600)
	if err != nil {
		return nil, err
	}
	table, err := compressFIB(fib)
	if err != nil {
		return nil, err
	}
	// Yesterday's statistics for SLPL's pre-selection.
	sampleTraffic, err := scale.buildTraffic(table, 601)
	if err != nil {
		return nil, err
	}
	sample := sampleTraffic.NextN(scale.Warmup)

	run := func(sys engine.System) (SLPLShiftRow, error) {
		eng, err := engine.New(sys, engine.Config{})
		if err != nil {
			return SLPLShiftRow{}, err
		}
		// Today's traffic: a different seed shifts which prefixes are
		// hot.
		shifted, err := scale.buildTraffic(table, 699)
		if err != nil {
			return SLPLShiftRow{}, err
		}
		eng.Run(shifted.Next, scale.Warmup)
		eng.ResetStats()
		for i := 0; i < scale.Packets; i++ {
			eng.Step(shifted.Next(), true)
		}
		st := eng.Stats()
		return SLPLShiftRow{
			Mechanism:  sys.Name(),
			Throughput: st.Throughput(),
			Speedup:    st.SpeedupFactor(eng.Config().LookupClocks),
			DropRate:   float64(st.Dropped) / float64(st.Arrived),
		}, nil
	}

	res := &SLPLShiftResult{}
	slpl, err := engine.NewSLPLSystem(fib.Clone(), table2TCAMs, sample, 0.25)
	if err != nil {
		return nil, err
	}
	row, err := run(slpl)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	clpl, err := engine.NewCLPLSystem(fib.Clone(), table2TCAMs, table2Buckets/table2TCAMs, nil)
	if err != nil {
		return nil, err
	}
	if row, err = run(clpl); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	clue, err := engine.NewCLUESystem(table, table2TCAMs, table2Buckets, nil)
	if err != nil {
		return nil, err
	}
	if row, err = run(clue); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// Render produces the mechanism comparison.
func (r *SLPLShiftResult) Render() string {
	tb := stats.NewTable(
		"Extension: mechanisms under shifted traffic (SLPL trained on stale statistics)",
		"mechanism", "throughput", "speedup", "drop rate",
	)
	for _, row := range r.Rows {
		tb.AddRowf(row.Mechanism, fmt.Sprintf("%.4f", row.Throughput),
			fmt.Sprintf("%.3f", row.Speedup), fmt.Sprintf("%.4f", row.DropRate))
	}
	return tb.String()
}
