package experiments

import (
	"strings"
	"testing"
)

// testScale keeps the suite fast while still exercising every driver.
var testScale = Scale{
	FIBSize:     4000,
	Packets:     40000,
	Warmup:      15000,
	Updates:     3000,
	Routers:     3,
	RouterScale: 100,
	Seed:        7,
}

func TestScaleValidate(t *testing.T) {
	if err := (Scale{}).validate(); err == nil {
		t.Error("zero scale accepted")
	}
	if err := Quick.validate(); err != nil {
		t.Errorf("Quick invalid: %v", err)
	}
	if err := Full.validate(); err != nil {
		t.Errorf("Full invalid: %v", err)
	}
	bad := Quick
	bad.Routers = 13
	if err := bad.validate(); err == nil {
		t.Error("13 routers accepted")
	}
}

func TestFig8Compression(t *testing.T) {
	res, err := Fig8Compression(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != testScale.Routers {
		t.Fatalf("got %d rows, want %d", len(res.Rows), testScale.Routers)
	}
	for _, row := range res.Rows {
		if row.Compressed >= row.Original {
			t.Errorf("%s: no compression (%d >= %d)", row.Router, row.Compressed, row.Original)
		}
		if row.LeafPushed <= row.Original {
			t.Errorf("%s: leaf-push did not expand (%d <= %d)", row.Router, row.LeafPushed, row.Original)
		}
	}
	// The paper's headline: ≈71% average.
	if res.MeanRatio < 0.60 || res.MeanRatio > 0.82 {
		t.Errorf("mean ratio = %.3f, want ≈0.71", res.MeanRatio)
	}
	out := res.Render()
	if !strings.Contains(out, "rrc01") || !strings.Contains(out, "mean") {
		t.Errorf("render missing rows:\n%s", out)
	}
}

func TestFig9Partition(t *testing.T) {
	res, err := Fig9Partition(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	totalSubTreeRed := 0
	for _, row := range res.Rows {
		if row.CLUERedundant != 0 {
			t.Errorf("n=%d: CLUE redundancy %d, want 0", row.Partitions, row.CLUERedundant)
		}
		totalSubTreeRed += row.SubTreeRed
		if row.CLUEImbalance > 1.05 {
			t.Errorf("n=%d: CLUE imbalance %.3f", row.Partitions, row.CLUEImbalance)
		}
		if row.IDBitImbalance <= row.CLUEImbalance {
			t.Errorf("n=%d: ID-bit imbalance %.3f not worse than CLUE %.3f",
				row.Partitions, row.IDBitImbalance, row.CLUEImbalance)
		}
	}
	// Sub-tree partitioning must pay replication once carve points land
	// inside the big covering aggregates (finer carvings).
	if totalSubTreeRed == 0 {
		t.Error("sub-tree redundancy is zero at every partition count")
	}
	last := res.Rows[len(res.Rows)-1]
	if last.SubTreeRed == 0 {
		t.Errorf("n=%d: sub-tree redundancy 0, want > 0 at the finest carving", last.Partitions)
	}
	if !strings.Contains(res.Render(), "Figure 9") {
		t.Error("render missing title")
	}
}

func TestRunTTFAndRenders(t *testing.T) {
	res, err := RunTTF(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) < 5 {
		t.Fatalf("only %d windows", len(res.Windows))
	}
	// Headline shapes.
	if res.CLUEMean.TCAM >= res.CLPLMean.TCAM {
		t.Errorf("TTF2: clue %.1f >= clpl %.1f", res.CLUEMean.TCAM, res.CLPLMean.TCAM)
	}
	if res.CLUEMean.DRed >= res.CLPLMean.DRed/2 {
		t.Errorf("TTF3: clue %.1f vs clpl %.1f, want clue far below", res.CLUEMean.DRed, res.CLPLMean.DRed)
	}
	if res.CLUEMean.Trie <= res.CLPLMean.Trie {
		t.Errorf("TTF1: clue %.1f should exceed ground truth %.1f", res.CLUEMean.Trie, res.CLPLMean.Trie)
	}
	if res.CLUEMean.Total() >= res.CLPLMean.Total() {
		t.Errorf("TTF total: clue %.1f >= clpl %.1f", res.CLUEMean.Total(), res.CLPLMean.Total())
	}
	for _, render := range []string{
		res.RenderFig10(), res.RenderFig11(), res.RenderFig12(), res.RenderFig13(), res.RenderFig14(),
	} {
		if !strings.Contains(render, "clue") || !strings.Contains(render, "mean") {
			t.Errorf("bad render:\n%s", render)
		}
	}
}

func TestTable2Workload(t *testing.T) {
	res, table, err := Table2Workload(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() == 0 {
		t.Fatal("empty table")
	}
	if len(res.Rows) != 32 || len(res.Mapping) != 32 {
		t.Fatalf("rows %d mapping %d", len(res.Rows), len(res.Mapping))
	}
	// Shares sum to ≈100%.
	sum := 0.0
	for _, p := range res.PerTCAMPct {
		sum += p
	}
	if sum < 99 || sum > 101 {
		t.Errorf("per-TCAM shares sum to %.2f", sum)
	}
	// Worst case: TCAM1's share dominates (paper: 77.88%).
	if res.PerTCAMPct[0] < 2*res.PerTCAMPct[1] {
		t.Errorf("TCAM1 share %.1f%% not dominant over TCAM2 %.1f%%", res.PerTCAMPct[0], res.PerTCAMPct[1])
	}
	// Rows sorted hottest first.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PartPct > res.Rows[i-1].PartPct+1e-9 {
			t.Errorf("rows not sorted by load at %d", i)
		}
	}
	if !strings.Contains(res.Render(), "Table II") {
		t.Error("render missing title")
	}
}

func TestFig15LoadBalance(t *testing.T) {
	res, err := Fig15LoadBalance(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// The original distribution is extremely skewed; the balanced one
	// must be much flatter (paper's grey vs green bars).
	maxOrig, maxBal := 0.0, 0.0
	for i := range res.OriginalPct {
		if res.OriginalPct[i] > maxOrig {
			maxOrig = res.OriginalPct[i]
		}
		if res.BalancedPct[i] > maxBal {
			maxBal = res.BalancedPct[i]
		}
	}
	if maxOrig < 50 {
		t.Errorf("worst-case original max share = %.1f%%, want dominant", maxOrig)
	}
	if maxBal >= maxOrig {
		t.Errorf("balancing did not flatten: %.1f%% -> %.1f%%", maxOrig, maxBal)
	}
	if res.Speedup < 1 {
		t.Errorf("speedup %.2f < 1", res.Speedup)
	}
	if !strings.Contains(res.Render(), "Figure 15") {
		t.Error("render missing title")
	}
}

func TestDRedSweepFig16Fig17(t *testing.T) {
	res, err := DRedSweep(testScale, []int{64, 256, 1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Figure 16 property: every point's speedup respects the bound
	// t >= (N-1)h + 1 (within simulation noise).
	for _, p := range res.Points {
		bound := float64(res.TCAMs-1)*p.HitRate + 1
		if p.Speedup < bound*0.88 {
			t.Errorf("%s dred=%d: speedup %.3f below bound %.3f", p.Mechanism, p.DRedSize, p.Speedup, bound)
		}
	}
	// Figure 17 property: at equal DRed size, CLUE's hit rate is at
	// least CLPL's (reduced redundancy + direct prefix caching).
	byKey := map[[2]any]float64{}
	for _, p := range res.Points {
		byKey[[2]any{p.Mechanism, p.DRedSize}] = p.HitRate
	}
	above := 0
	for _, size := range []int{64, 256, 1024, 4096} {
		if byKey[[2]any{"clue", size}] >= byKey[[2]any{"clpl", size}]-0.02 {
			above++
		}
	}
	if above < 3 {
		t.Errorf("CLUE hit rate above CLPL at only %d/4 sizes", above)
	}
	// Hit rate grows with DRed size for both mechanisms.
	for _, mech := range []string{"clue", "clpl"} {
		if byKey[[2]any{mech, 4096}] <= byKey[[2]any{mech, 64}] {
			t.Errorf("%s: hit rate did not grow with DRed size", mech)
		}
	}
	if !strings.Contains(res.RenderFig16(), "Figure 16") || !strings.Contains(res.RenderFig17(), "Figure 17") {
		t.Error("renders missing titles")
	}
}
