package feed

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"clue/internal/ip"
	"clue/internal/serve"
	"clue/internal/trie"
)

// RuntimeApplier adapts a serve.Runtime as a follower's Applier. The
// runtime is built lazily from the first snapshot (the serve runtime
// cannot exist over an empty table), and later re-snapshots are
// reconciled through the live writer pipeline — withdraw what vanished,
// announce what changed — so readers keep serving throughout a
// resynchronisation.
type RuntimeApplier struct {
	cfg serve.Config

	mu     sync.Mutex
	mirror *trie.Trie
	rt     atomic.Pointer[serve.Runtime]
}

// NewRuntimeApplier prepares an applier that will build its runtime
// with cfg on the first snapshot. Runtime() reports nil until then.
func NewRuntimeApplier(cfg serve.Config) *RuntimeApplier {
	return &RuntimeApplier{cfg: cfg}
}

// Runtime returns the live runtime, or nil before the bootstrap
// snapshot has been applied.
func (a *RuntimeApplier) Runtime() *serve.Runtime {
	return a.rt.Load()
}

// Reset brings the runtime to exactly routes. The first call builds
// the runtime; later calls diff against the current mirror and feed
// the difference through Announce/Withdraw, which block until the
// containing snapshots are published.
func (a *RuntimeApplier) Reset(routes []ip.Route) error {
	if len(routes) == 0 {
		return errors.New("feed: empty snapshot (runtime needs at least one route)")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rt := a.rt.Load()
	if rt == nil {
		rt, err := serve.New(routes, a.cfg)
		if err != nil {
			return fmt.Errorf("feed: bootstrap runtime: %w", err)
		}
		a.mirror = trie.FromRoutes(routes)
		a.rt.Store(rt)
		return nil
	}
	want := trie.FromRoutes(routes)
	for _, r := range a.mirror.Routes() {
		if want.Get(r.Prefix, nil) == ip.NoRoute {
			if _, err := rt.Withdraw(r.Prefix); err != nil {
				return fmt.Errorf("feed: reconcile withdraw %v: %w", r.Prefix, err)
			}
		}
	}
	for _, r := range routes {
		if a.mirror.Get(r.Prefix, nil) != r.NextHop {
			if _, err := rt.Announce(r.Prefix, r.NextHop); err != nil {
				return fmt.Errorf("feed: reconcile announce %v: %w", r.Prefix, err)
			}
		}
	}
	a.mirror = want
	return nil
}

// Announce applies one announced route; it blocks until the snapshot
// containing it is published.
func (a *RuntimeApplier) Announce(p ip.Prefix, hop ip.NextHop) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rt := a.rt.Load()
	if rt == nil {
		return errors.New("feed: announce before bootstrap snapshot")
	}
	if _, err := rt.Announce(p, hop); err != nil {
		return err
	}
	a.mirror.Insert(p, hop, nil)
	return nil
}

// Withdraw applies one withdrawal with the same publication guarantee.
func (a *RuntimeApplier) Withdraw(p ip.Prefix) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rt := a.rt.Load()
	if rt == nil {
		return errors.New("feed: withdraw before bootstrap snapshot")
	}
	if _, err := rt.Withdraw(p); err != nil {
		return err
	}
	a.mirror.Delete(p, nil)
	return nil
}

// CanonicalRoutes returns the published snapshot's canonical
// compressed table (nil before bootstrap).
func (a *RuntimeApplier) CanonicalRoutes() []ip.Route {
	rt := a.rt.Load()
	if rt == nil {
		return nil
	}
	return rt.Snapshot().Routes()
}

// Close shuts the runtime down, if one was built.
func (a *RuntimeApplier) Close() {
	if rt := a.rt.Load(); rt != nil {
		rt.Close()
	}
}
