// Package feed replicates a route table from one collector to many
// follower replicas over a stream of ordered update batches, turning
// the single-node serve runtime into a horizontally scalable lookup
// service: one collector tails an update trace, every follower applies
// the same ordered stream through its own writer pipeline and so
// converges to a byte-identical canonical compressed table.
//
// The wire protocol is a length-prefixed binary framing over a plain
// TCP stream (stdlib only). Each frame is
//
//	u32  length of the rest of the frame
//	u8   frame type
//	u64  sequence number (meaning depends on the type)
//	...  payload
//	u32  CRC-32 (IEEE) over type+seq+payload
//
// with all integers big-endian. Sequence numbers are monotone batch
// numbers assigned by the collector; a follower acks the last batch it
// fully applied and resumes from there after a reconnect. DESIGN.md
// §11 is the normative spec.
package feed

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"time"

	"clue/internal/ip"
	"clue/internal/ribio"
)

// Frame types. The value space is deliberately sparse — unknown types
// are a protocol error, not skippable extensions.
const (
	// FrameHello opens a connection (follower → collector). Seq is the
	// last batch the follower fully applied; the payload says whether
	// that state exists at all (a fresh follower has applied "batch 0"
	// only vacuously and must not resume from it).
	FrameHello byte = 0x01
	// FrameSnapshot carries a full route table (collector → follower).
	// Seq is the last batch included in the table; the follower resets
	// to exactly these routes and resumes the stream after Seq.
	FrameSnapshot byte = 0x02
	// FrameUpdates carries one ordered batch of announce/withdraw
	// records (collector → follower). Seq is the batch number; the
	// payload also carries the collector's current head so followers
	// can report lag.
	FrameUpdates byte = 0x03
	// FrameHash carries the canonical-table hash at a batch boundary
	// (collector → follower). Seq is the batch the hash covers; a
	// follower that has applied Seq must match or resynchronise.
	FrameHash byte = 0x04
	// FrameAck reports apply progress (follower → collector). Seq is
	// the last batch the follower fully applied. No payload.
	FrameAck byte = 0x05
	// FrameBye announces an orderly end of stream. No payload.
	FrameBye byte = 0x06
)

// Version is the protocol version carried in the hello frame. There is
// no negotiation: a mismatch is a hard error.
const Version byte = 1

// helloMagic guards against pointing a follower at something that is
// not a collector (or vice versa).
const helloMagic = "CLUEFEED"

// maxFrame bounds a frame's encoded size (64 MiB fits a snapshot of
// several million routes); anything larger is treated as a corrupt
// length prefix rather than an allocation request.
const maxFrame = 64 << 20

// Frame is one decoded wire frame. Payload is the raw bytes between
// the sequence number and the CRC; the typed encode/decode helpers
// below interpret it per frame type.
type Frame struct {
	Type    byte
	Seq     uint64
	Payload []byte
}

// WriteFrame encodes f onto w with length prefix and trailing CRC.
func WriteFrame(w io.Writer, f Frame) error {
	n := 1 + 8 + len(f.Payload) + 4
	if n > maxFrame {
		return fmt.Errorf("feed: frame type 0x%02x payload %d bytes exceeds limit", f.Type, len(f.Payload))
	}
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf, uint32(n))
	buf[4] = f.Type
	binary.BigEndian.PutUint64(buf[5:], f.Seq)
	copy(buf[13:], f.Payload)
	crc := crc32.ChecksumIEEE(buf[4 : 13+len(f.Payload)])
	binary.BigEndian.PutUint32(buf[13+len(f.Payload):], crc)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("feed: write frame: %w", err)
	}
	return nil
}

// ReadFrame decodes the next frame from r. It returns io.EOF only on a
// clean boundary (no bytes read); a frame cut short mid-way is
// io.ErrUnexpectedEOF, and a CRC or length violation is a hard error —
// the stream cannot be trusted past it.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("feed: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1+8+4 || n > maxFrame {
		return Frame{}, fmt.Errorf("feed: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, fmt.Errorf("feed: read frame body: %w", err)
	}
	body, sum := buf[:n-4], binary.BigEndian.Uint32(buf[n-4:])
	if crc := crc32.ChecksumIEEE(body); crc != sum {
		return Frame{}, fmt.Errorf("feed: frame CRC mismatch: got %08x, want %08x", crc, sum)
	}
	f := Frame{Type: body[0], Seq: binary.BigEndian.Uint64(body[1:9])}
	if len(body) > 9 {
		f.Payload = body[9:]
	}
	switch f.Type {
	case FrameHello, FrameSnapshot, FrameUpdates, FrameHash, FrameAck, FrameBye:
	default:
		return Frame{}, fmt.Errorf("feed: unknown frame type 0x%02x", f.Type)
	}
	return f, nil
}

// Hello is the decoded hello payload. The frame's Seq carries the last
// applied batch alongside it.
type Hello struct {
	Version byte
	// HasState reports whether the follower holds a table from this
	// stream. Without it, Seq 0 from a fresh follower would look like
	// "caught up to head 0" and the bootstrap snapshot would never be
	// sent.
	HasState bool
}

func encodeHello(h Hello) []byte {
	buf := make([]byte, len(helloMagic)+2)
	copy(buf, helloMagic)
	buf[len(helloMagic)] = h.Version
	if h.HasState {
		buf[len(helloMagic)+1] = 1
	}
	return buf
}

func decodeHello(payload []byte) (Hello, error) {
	if len(payload) != len(helloMagic)+2 {
		return Hello{}, fmt.Errorf("feed: hello payload is %d bytes, want %d", len(payload), len(helloMagic)+2)
	}
	if string(payload[:len(helloMagic)]) != helloMagic {
		return Hello{}, fmt.Errorf("feed: bad hello magic %q", payload[:len(helloMagic)])
	}
	h := Hello{Version: payload[len(helloMagic)]}
	switch payload[len(helloMagic)+1] {
	case 0:
	case 1:
		h.HasState = true
	default:
		return Hello{}, fmt.Errorf("feed: bad hello state flag %d", payload[len(helloMagic)+1])
	}
	if h.Version != Version {
		return Hello{}, fmt.Errorf("feed: protocol version %d, want %d", h.Version, Version)
	}
	return h, nil
}

// routeSize is the encoded size of one route in a snapshot payload.
const routeSize = 4 + 1 + 4

func encodeSnapshot(routes []ip.Route) []byte {
	buf := make([]byte, 4+routeSize*len(routes))
	binary.BigEndian.PutUint32(buf, uint32(len(routes)))
	off := 4
	for _, r := range routes {
		binary.BigEndian.PutUint32(buf[off:], uint32(r.Prefix.Bits))
		buf[off+4] = r.Prefix.Len
		binary.BigEndian.PutUint32(buf[off+5:], uint32(r.NextHop))
		off += routeSize
	}
	return buf
}

func decodeSnapshot(payload []byte) ([]ip.Route, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("feed: snapshot payload truncated (%d bytes)", len(payload))
	}
	n := binary.BigEndian.Uint32(payload)
	if len(payload) != 4+routeSize*int(n) {
		return nil, fmt.Errorf("feed: snapshot claims %d routes but payload is %d bytes", n, len(payload))
	}
	routes := make([]ip.Route, n)
	off := 4
	for i := range routes {
		routes[i] = ip.Route{
			Prefix:  ip.Prefix{Bits: ip.Addr(binary.BigEndian.Uint32(payload[off:])), Len: payload[off+4]},
			NextHop: ip.NextHop(binary.BigEndian.Uint32(payload[off+5:])),
		}
		if routes[i].Prefix.Len > 32 {
			return nil, fmt.Errorf("feed: snapshot route %d has prefix length %d", i, routes[i].Prefix.Len)
		}
		if routes[i].Prefix.Bits&^routes[i].Prefix.Mask() != 0 {
			return nil, fmt.Errorf("feed: snapshot route %d prefix %v has host bits set", i, routes[i].Prefix)
		}
		off += routeSize
	}
	return routes, nil
}

// recordSize is the encoded size of one update record in a batch
// payload: kind, offset (ns), prefix bits, prefix length, next hop.
const recordSize = 1 + 8 + 4 + 1 + 4

// Batch is one ordered group of updates plus the collector's head at
// send time (for follower lag accounting). The frame's Seq is the
// batch number.
type Batch struct {
	Head    uint64
	Records []ribio.UpdateRecord
}

func encodeBatch(b Batch) []byte {
	buf := make([]byte, 8+4+recordSize*len(b.Records))
	binary.BigEndian.PutUint64(buf, b.Head)
	binary.BigEndian.PutUint32(buf[8:], uint32(len(b.Records)))
	off := 12
	for _, u := range b.Records {
		if u.Withdraw {
			buf[off] = 1
		}
		binary.BigEndian.PutUint64(buf[off+1:], uint64(u.At))
		binary.BigEndian.PutUint32(buf[off+9:], uint32(u.Prefix.Bits))
		buf[off+13] = u.Prefix.Len
		binary.BigEndian.PutUint32(buf[off+14:], uint32(u.NextHop))
		off += recordSize
	}
	return buf
}

func decodeBatch(payload []byte) (Batch, error) {
	if len(payload) < 12 {
		return Batch{}, fmt.Errorf("feed: batch payload truncated (%d bytes)", len(payload))
	}
	b := Batch{Head: binary.BigEndian.Uint64(payload)}
	n := binary.BigEndian.Uint32(payload[8:])
	if len(payload) != 12+recordSize*int(n) {
		return Batch{}, fmt.Errorf("feed: batch claims %d records but payload is %d bytes", n, len(payload))
	}
	b.Records = make([]ribio.UpdateRecord, n)
	off := 12
	for i := range b.Records {
		u := &b.Records[i]
		switch payload[off] {
		case 0:
		case 1:
			u.Withdraw = true
		default:
			return Batch{}, fmt.Errorf("feed: batch record %d has kind %d", i, payload[off])
		}
		at := int64(binary.BigEndian.Uint64(payload[off+1:]))
		if at < 0 {
			return Batch{}, fmt.Errorf("feed: batch record %d has negative offset", i)
		}
		u.At = time.Duration(at)
		u.Prefix = ip.Prefix{Bits: ip.Addr(binary.BigEndian.Uint32(payload[off+9:])), Len: payload[off+13]}
		if u.Prefix.Len > 32 {
			return Batch{}, fmt.Errorf("feed: batch record %d has prefix length %d", i, u.Prefix.Len)
		}
		if u.Prefix.Bits&^u.Prefix.Mask() != 0 {
			return Batch{}, fmt.Errorf("feed: batch record %d prefix %v has host bits set", i, u.Prefix)
		}
		hop := ip.NextHop(binary.BigEndian.Uint32(payload[off+14:]))
		if u.Withdraw && hop != 0 {
			return Batch{}, fmt.Errorf("feed: batch record %d is a withdraw with next hop %d", i, hop)
		}
		if !u.Withdraw && hop == 0 {
			return Batch{}, fmt.Errorf("feed: batch record %d is an announce with no next hop", i)
		}
		u.NextHop = hop
		off += recordSize
	}
	return b, nil
}

// HashInfo is the decoded hash payload: the canonical compressed table
// hash after the batch in the frame's Seq, plus the route count so a
// mismatch report can say how far apart the tables are.
type HashInfo struct {
	Routes uint32
	Hash   uint64
}

func encodeHash(h HashInfo) []byte {
	buf := make([]byte, 4+8)
	binary.BigEndian.PutUint32(buf, h.Routes)
	binary.BigEndian.PutUint64(buf[4:], h.Hash)
	return buf
}

func decodeHash(payload []byte) (HashInfo, error) {
	if len(payload) != 12 {
		return HashInfo{}, fmt.Errorf("feed: hash payload is %d bytes, want 12", len(payload))
	}
	return HashInfo{
		Routes: binary.BigEndian.Uint32(payload),
		Hash:   binary.BigEndian.Uint64(payload[4:]),
	}, nil
}

// CanonicalHash digests a canonical compressed route table (FNV-1a 64
// over bits, length, hop in table order). Two followers converged to
// the same table — the guarantee the feed provides — hash identically;
// the collector computes the same digest over its own mirror's
// canonical compression.
func CanonicalHash(routes []ip.Route) uint64 {
	h := fnv.New64a()
	var buf [routeSize]byte
	for _, r := range routes {
		binary.BigEndian.PutUint32(buf[:], uint32(r.Prefix.Bits))
		buf[4] = r.Prefix.Len
		binary.BigEndian.PutUint32(buf[5:], uint32(r.NextHop))
		h.Write(buf[:])
	}
	return h.Sum64()
}
