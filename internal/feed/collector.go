package feed

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/ribio"
	"clue/internal/trie"
)

// CollectorConfig configures a Collector.
type CollectorConfig struct {
	// BaseRoutes is the initial FIB. A restarted collector passes the
	// previous instance's Routes() here so followers that kept up can
	// resume without a snapshot.
	BaseRoutes []ip.Route
	// StartSeq is the batch number the stream starts after: the first
	// Apply is batch StartSeq+1. A restarted collector passes the
	// previous instance's Head().
	StartSeq uint64
	// Window is how many applied batches stay replayable. A follower
	// whose resume point has been trimmed past gets a fresh snapshot
	// instead. Default 64.
	Window int
	// HashEvery emits a canonical-table hash frame after every N
	// batches (and after every snapshot). Default 16; negative
	// disables periodic hashes.
	HashEvery int
	// HelloTimeout bounds how long an accepted connection may take to
	// present its hello frame. Default 5s.
	HelloTimeout time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.HashEvery == 0 {
		c.HashEvery = 16
	}
	if c.HelloTimeout == 0 {
		c.HelloTimeout = 5 * time.Second
	}
	return c
}

// CollectorStats is a point-in-time snapshot of collector progress.
type CollectorStats struct {
	Head      uint64 `json:"head"`
	LogStart  uint64 `json:"log_start"`
	Routes    int    `json:"routes"`
	Followers int    `json:"followers"`
	Batches   uint64 `json:"batches"`
	Records   uint64 `json:"records"`
	Snapshots uint64 `json:"snapshots_sent"`
	Resumes   uint64 `json:"resumes"`
}

// logEntry is one replayable batch; hash is non-nil when a hash frame
// follows the batch on the wire.
type logEntry struct {
	seq     uint64
	records []ribio.UpdateRecord
	hash    *HashInfo
}

// Collector owns the authoritative route table and streams its update
// batches to follower replicas. One goroutine pair per follower (a
// sender replaying the log, a reader consuming acks); Apply is safe
// from any goroutine but batches are ordered by its internal lock.
type Collector struct {
	cfg CollectorConfig

	mu       sync.Mutex
	cond     *sync.Cond // broadcast: head advanced, conn set changed, closed
	mirror   *trie.Trie
	head     uint64
	logStart uint64 // seq of oldest retained entry; head+1 when log empty
	log      []logEntry
	sinceHash int
	conns    map[*collConn]struct{}
	closed   bool

	batches   uint64
	records   uint64
	snapshots uint64
	resumes   uint64

	ln net.Listener
	wg sync.WaitGroup
}

type collConn struct {
	nc    net.Conn
	acked uint64
	gone  bool
}

// NewCollector builds a collector over cfg.BaseRoutes. Call Listen to
// accept followers, Apply to advance the stream, Close to stop.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:      cfg,
		mirror:   trie.FromRoutes(cfg.BaseRoutes),
		head:     cfg.StartSeq,
		logStart: cfg.StartSeq + 1,
		conns:    make(map[*collConn]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Apply validates and applies one batch of updates to the mirror,
// appends it to the replay log and wakes the per-follower senders. It
// returns the batch's sequence number. Empty batches are rejected —
// they would advance sequence numbers without observable effect.
func (c *Collector) Apply(recs []ribio.UpdateRecord) (uint64, error) {
	if len(recs) == 0 {
		return 0, errors.New("feed: empty batch")
	}
	for i, u := range recs {
		if !u.Withdraw && u.NextHop == 0 {
			return 0, fmt.Errorf("feed: batch record %d announces %v with no next hop", i, u.Prefix)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("feed: collector closed")
	}
	for _, u := range recs {
		if u.Withdraw {
			c.mirror.Delete(u.Prefix, nil)
		} else {
			c.mirror.Insert(u.Prefix, u.NextHop, nil)
		}
	}
	c.head++
	e := logEntry{seq: c.head, records: recs}
	c.sinceHash++
	if c.cfg.HashEvery > 0 && c.sinceHash >= c.cfg.HashEvery {
		c.sinceHash = 0
		h := c.canonicalHashLocked()
		e.hash = &h
	}
	c.log = append(c.log, e)
	if drop := len(c.log) - c.cfg.Window; drop > 0 {
		c.log = append([]logEntry(nil), c.log[drop:]...)
		c.logStart += uint64(drop)
	}
	c.batches++
	c.records += uint64(len(recs))
	c.cond.Broadcast()
	return c.head, nil
}

// canonicalHashLocked digests the canonical compressed form of the
// mirror — the same table every converged follower's snapshot holds.
func (c *Collector) canonicalHashLocked() HashInfo {
	routes := onrtc.Compress(c.mirror).Routes()
	return HashInfo{Routes: uint32(len(routes)), Hash: CanonicalHash(routes)}
}

// Head returns the sequence number of the last applied batch.
func (c *Collector) Head() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.head
}

// Routes returns the mirror FIB (for handing off to a successor
// collector together with Head).
func (c *Collector) Routes() []ip.Route {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mirror.Routes()
}

// Stats returns a snapshot of collector progress.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{
		Head:      c.head,
		LogStart:  c.logStart,
		Routes:    c.mirror.Len(),
		Followers: len(c.conns),
		Batches:   c.batches,
		Records:   c.records,
		Snapshots: c.snapshots,
		Resumes:   c.resumes,
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and accepts followers until
// Close. It returns the bound address so tests can listen on port 0.
func (c *Collector) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("feed: %w", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return nil, errors.New("feed: collector closed")
	}
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.serveConn(nc)
			}()
		}
	}()
	return ln.Addr(), nil
}

// Addr returns the listening address, or nil before Listen.
func (c *Collector) Addr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return nil
	}
	return c.ln.Addr()
}

// WaitAcked blocks until at least n connected followers have acked
// batch seq, or the timeout elapses.
func (c *Collector) WaitAcked(n int, seq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		count := 0
		for cc := range c.conns {
			if cc.acked >= seq {
				count++
			}
		}
		if count >= n {
			return nil
		}
		if c.closed {
			return errors.New("feed: collector closed")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("feed: %d/%d followers acked seq %d within %s", count, n, seq, timeout)
		}
		c.mu.Unlock()
		time.Sleep(500 * time.Microsecond)
		c.mu.Lock()
	}
}

// Close stops accepting, drops every follower connection and unblocks
// senders. Applied state (mirror, head) stays readable for handoff.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	for cc := range c.conns {
		cc.nc.Close()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	c.wg.Wait()
	return nil
}

func (c *Collector) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// serveConn runs one follower session: handshake, then a sender loop
// feeding snapshots/batches/hashes and a reader loop consuming acks.
func (c *Collector) serveConn(nc net.Conn) {
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(c.cfg.HelloTimeout))
	f, err := ReadFrame(nc)
	if err != nil {
		c.logf("feed: %s: handshake read: %v", nc.RemoteAddr(), err)
		return
	}
	if f.Type != FrameHello {
		c.logf("feed: %s: expected hello, got frame type 0x%02x", nc.RemoteAddr(), f.Type)
		return
	}
	hello, err := decodeHello(f.Payload)
	if err != nil {
		c.logf("feed: %s: %v", nc.RemoteAddr(), err)
		return
	}
	nc.SetReadDeadline(time.Time{})

	cc := &collConn{nc: nc, acked: f.Seq}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.conns[cc] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		cc.gone = true
		delete(c.conns, cc)
		c.cond.Broadcast()
		c.mu.Unlock()
	}()

	// Reader: acks advance cc.acked; any read error marks the conn
	// gone and wakes the sender out of its cond wait.
	readErr := make(chan struct{})
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer close(readErr)
		defer func() {
			c.mu.Lock()
			cc.gone = true
			c.cond.Broadcast()
			c.mu.Unlock()
		}()
		for {
			af, err := ReadFrame(nc)
			if err != nil {
				return
			}
			if af.Type != FrameAck {
				return
			}
			c.mu.Lock()
			if af.Seq > cc.acked {
				cc.acked = af.Seq
			}
			c.mu.Unlock()
		}
	}()
	defer func() {
		nc.Close()
		<-readErr
	}()

	c.sendLoop(cc, hello.HasState, f.Seq)
}

// sendLoop streams to one follower until the connection dies or the
// collector closes. next is the first batch seq still owed; when it
// falls behind the replay window (or the follower has no usable
// state) the follower gets a fresh snapshot instead.
func (c *Collector) sendLoop(cc *collConn, hasState bool, lastApplied uint64) {
	c.mu.Lock()
	next := lastApplied + 1
	resume := hasState && lastApplied <= c.head && next >= c.logStart
	if resume {
		c.resumes++
		c.logf("feed: %s: resuming from batch %d (head %d)", cc.nc.RemoteAddr(), next, c.head)
	}
	c.mu.Unlock()
	if !resume {
		var ok bool
		next, ok = c.sendSnapshot(cc)
		if !ok {
			return
		}
	}
	for {
		c.mu.Lock()
		for !c.closed && !cc.gone && c.head < next {
			c.cond.Wait()
		}
		if c.closed || cc.gone {
			c.mu.Unlock()
			if c.closed {
				WriteFrame(cc.nc, Frame{Type: FrameBye}) // best effort
			}
			return
		}
		if next < c.logStart {
			// Trimmed past this follower's position (it stalled longer
			// than the window): replay is impossible, start over.
			c.mu.Unlock()
			c.logf("feed: %s: batch %d trimmed (log starts at %d), re-snapshotting", cc.nc.RemoteAddr(), next, c.logStart)
			var ok bool
			next, ok = c.sendSnapshot(cc)
			if !ok {
				return
			}
			continue
		}
		e := c.log[next-c.logStart]
		head := c.head
		c.mu.Unlock()
		if err := WriteFrame(cc.nc, Frame{Type: FrameUpdates, Seq: e.seq, Payload: encodeBatch(Batch{Head: head, Records: e.records})}); err != nil {
			return
		}
		if e.hash != nil {
			if err := WriteFrame(cc.nc, Frame{Type: FrameHash, Seq: e.seq, Payload: encodeHash(*e.hash)}); err != nil {
				return
			}
		}
		next = e.seq + 1
	}
}

// sendSnapshot ships the full mirror plus a covering hash frame and
// returns the next batch seq owed after it.
func (c *Collector) sendSnapshot(cc *collConn) (next uint64, ok bool) {
	c.mu.Lock()
	routes := c.mirror.Routes()
	seq := c.head
	h := c.canonicalHashLocked()
	c.snapshots++
	c.mu.Unlock()
	c.logf("feed: %s: sending snapshot of %d routes at batch %d", cc.nc.RemoteAddr(), len(routes), seq)
	if err := WriteFrame(cc.nc, Frame{Type: FrameSnapshot, Seq: seq, Payload: encodeSnapshot(routes)}); err != nil {
		return 0, false
	}
	if err := WriteFrame(cc.nc, Frame{Type: FrameHash, Seq: seq, Payload: encodeHash(h)}); err != nil {
		return 0, false
	}
	return seq + 1, true
}
