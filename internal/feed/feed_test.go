package feed

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"clue/internal/core"
	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/ribio"
	"clue/internal/serve"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// memApplier is a lightweight Applier over a plain trie, with the same
// canonical-compression contract the serve runtime keeps. corrupt()
// lets hash-mismatch tests damage the replica out of band.
type memApplier struct {
	mu     sync.Mutex
	mirror *trie.Trie
	resets int
}

func newMemApplier() *memApplier { return &memApplier{mirror: trie.New()} }

func (m *memApplier) Reset(routes []ip.Route) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mirror = trie.FromRoutes(routes)
	m.resets++
	return nil
}

func (m *memApplier) Announce(p ip.Prefix, hop ip.NextHop) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mirror.Insert(p, hop, nil)
	return nil
}

func (m *memApplier) Withdraw(p ip.Prefix) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mirror.Delete(p, nil)
	return nil
}

func (m *memApplier) CanonicalRoutes() []ip.Route {
	m.mu.Lock()
	defer m.mu.Unlock()
	return onrtc.Compress(m.mirror).Routes()
}

func (m *memApplier) corrupt(p ip.Prefix, hop ip.NextHop) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mirror.Insert(p, hop, nil)
}

// testTrace builds a base table and an update stream over it.
func testTrace(t *testing.T, seed int64, routes, messages int) ([]ip.Route, []ribio.UpdateRecord) {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tracegen.NewUpdateGen(fib, tracegen.UpdateConfig{Seed: seed, Messages: messages})
	if err != nil {
		t.Fatal(err)
	}
	return fib.Routes(), tracegen.Records(g.NextN(messages))
}

// batches splits recs into groups of n.
func batches(recs []ribio.UpdateRecord, n int) [][]ribio.UpdateRecord {
	var out [][]ribio.UpdateRecord
	for len(recs) > 0 {
		k := min(n, len(recs))
		out = append(out, recs[:k])
		recs = recs[k:]
	}
	return out
}

func startCollector(t *testing.T, cfg CollectorConfig) *Collector {
	t.Helper()
	c, err := NewCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func dialTo(c *Collector) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		return net.DialTimeout("tcp", c.Addr().String(), time.Second)
	}
}

func startFollower(t *testing.T, cfg FollowerConfig) *Follower {
	t.Helper()
	f, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// expectConverged asserts the applier's canonical table is
// byte-identical to the collector mirror's canonical compression.
func expectConverged(t *testing.T, c *Collector, a Applier, who string) {
	t.Helper()
	want := onrtc.Compress(trie.FromRoutes(c.Routes())).Routes()
	got := a.CanonicalRoutes()
	if len(got) != len(want) {
		t.Fatalf("%s: %d canonical routes, want %d", who, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: canonical route %d = %v, want %v", who, i, got[i], want[i])
		}
	}
	if CanonicalHash(got) != CanonicalHash(want) {
		t.Fatalf("%s: hash disagrees on equal tables", who)
	}
}

func TestFollowerBootstrapAndStream(t *testing.T) {
	base, recs := testTrace(t, 1, 300, 120)
	c := startCollector(t, CollectorConfig{BaseRoutes: base})
	app := newMemApplier()
	f := startFollower(t, FollowerConfig{Dial: dialTo(c), Applier: app, Logf: t.Logf})

	var last uint64
	for _, b := range batches(recs, 8) {
		seq, err := c.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if err := f.WaitSeq(last, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	expectConverged(t, c, app, "follower")
	s := f.Stats()
	if s.SnapshotLoads != 1 {
		t.Fatalf("SnapshotLoads = %d, want 1", s.SnapshotLoads)
	}
	if s.Resumes != 0 {
		t.Fatalf("Resumes = %d, want 0", s.Resumes)
	}
	if s.HashChecks == 0 {
		t.Fatal("no hash checks ran (HashEvery default should have fired)")
	}
	if s.HashMismatches != 0 {
		t.Fatalf("HashMismatches = %d", s.HashMismatches)
	}
	if s.State != "streaming" {
		t.Fatalf("state %q, want streaming", s.State)
	}
	if err := c.WaitAcked(1, last, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTwoFollowersConvergeIdentically(t *testing.T) {
	base, recs := testTrace(t, 2, 400, 160)
	c := startCollector(t, CollectorConfig{BaseRoutes: base, HashEvery: 5})
	a1, a2 := newMemApplier(), newMemApplier()
	f1 := startFollower(t, FollowerConfig{Dial: dialTo(c), Applier: a1})
	f2 := startFollower(t, FollowerConfig{Dial: dialTo(c), Applier: a2})

	var last uint64
	for _, b := range batches(recs, 4) {
		seq, err := c.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	for i, f := range []*Follower{f1, f2} {
		if err := f.WaitSeq(last, 5*time.Second); err != nil {
			t.Fatalf("follower %d: %v", i+1, err)
		}
	}
	expectConverged(t, c, a1, "follower 1")
	expectConverged(t, c, a2, "follower 2")
	r1, r2 := a1.CanonicalRoutes(), a2.CanonicalRoutes()
	if len(r1) != len(r2) {
		t.Fatalf("followers disagree on table size: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("followers diverge at canonical route %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestResumeAfterBriefDisconnect(t *testing.T) {
	base, recs := testTrace(t, 3, 300, 120)
	c := startCollector(t, CollectorConfig{BaseRoutes: base, Window: 256})
	app := newMemApplier()
	f := startFollower(t, FollowerConfig{Dial: dialTo(c), Applier: app, BackoffMin: time.Millisecond, Logf: t.Logf})

	bs := batches(recs, 6)
	half := len(bs) / 2
	var last uint64
	for _, b := range bs[:half] {
		seq, err := c.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if err := f.WaitSeq(last, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	f.BreakConn()
	for _, b := range bs[half:] {
		seq, err := c.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if err := f.WaitSeq(last, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	expectConverged(t, c, app, "follower")
	s := f.Stats()
	if s.Reconnects == 0 {
		t.Fatal("link cut did not register as a reconnect")
	}
	if s.Resumes == 0 {
		t.Fatal("follower re-snapshotted where a resume was possible (window not exceeded)")
	}
	if s.SnapshotLoads != 1 {
		t.Fatalf("SnapshotLoads = %d, want 1 (bootstrap only)", s.SnapshotLoads)
	}
	if app.resets != 1 {
		t.Fatalf("applier reset %d times, want 1", app.resets)
	}
}

func TestResnapshotBeyondWindow(t *testing.T) {
	base, recs := testTrace(t, 4, 300, 160)
	c := startCollector(t, CollectorConfig{BaseRoutes: base, Window: 4})
	app := newMemApplier()
	f := startFollower(t, FollowerConfig{Dial: dialTo(c), Applier: app, BackoffMin: time.Millisecond, Logf: t.Logf})

	bs := batches(recs, 4)
	seq, err := c.Apply(bs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WaitSeq(seq, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Cut the link and push far more batches than the replay window
	// holds; the resume point is trimmed away and the collector must
	// fall back to a fresh snapshot.
	f.BreakConn()
	var last uint64
	for _, b := range bs[1:] {
		if last, err = c.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WaitSeq(last, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	expectConverged(t, c, app, "follower")
	s := f.Stats()
	if s.SnapshotLoads < 2 {
		t.Fatalf("SnapshotLoads = %d, want >= 2 (bootstrap + re-snapshot)", s.SnapshotLoads)
	}
	cs := c.Stats()
	if cs.Snapshots < 2 {
		t.Fatalf("collector Snapshots = %d, want >= 2", cs.Snapshots)
	}
}

func TestHashMismatchForcesResync(t *testing.T) {
	base, recs := testTrace(t, 5, 300, 120)
	c := startCollector(t, CollectorConfig{BaseRoutes: base, HashEvery: 3})
	app := newMemApplier()
	f := startFollower(t, FollowerConfig{Dial: dialTo(c), Applier: app, BackoffMin: time.Millisecond, Logf: t.Logf})

	bs := batches(recs, 6)
	seq, err := c.Apply(bs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WaitSeq(seq, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Damage the replica out of band: a phantom host route no update
	// stream delivered. The next hash frame must catch it and the
	// follower must discard its state and re-bootstrap.
	app.corrupt(ip.MustParsePrefix("203.0.113.77/32"), 999)
	var last uint64
	for _, b := range bs[1:] {
		if last, err = c.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WaitSeq(last, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().HashChecks == 0 || f.Stats().LastApplied < last {
		if time.Now().After(deadline) {
			t.Fatal("no hash verification after corruption")
		}
		time.Sleep(time.Millisecond)
	}
	expectConverged(t, c, app, "follower")
	s := f.Stats()
	if s.HashMismatches == 0 {
		t.Fatal("corruption not detected by hash frames")
	}
	if s.SnapshotLoads < 2 {
		t.Fatalf("SnapshotLoads = %d, want >= 2 (mismatch must force a re-snapshot)", s.SnapshotLoads)
	}
}

func TestCollectorRestartHandoff(t *testing.T) {
	base, recs := testTrace(t, 6, 300, 120)
	c1 := startCollector(t, CollectorConfig{BaseRoutes: base})

	// Address indirection: the follower always dials the current
	// collector.
	var mu sync.Mutex
	cur := c1
	dial := func() (net.Conn, error) {
		mu.Lock()
		c := cur
		mu.Unlock()
		return net.DialTimeout("tcp", c.Addr().String(), time.Second)
	}
	app := newMemApplier()
	f := startFollower(t, FollowerConfig{Dial: dial, Applier: app, BackoffMin: time.Millisecond, Logf: t.Logf})

	bs := batches(recs, 6)
	half := len(bs) / 2
	var last uint64
	var err error
	for _, b := range bs[:half] {
		if last, err = c1.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WaitSeq(last, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Restart: the successor takes over the predecessor's mirror and
	// head, so a caught-up follower resumes without a snapshot.
	c1.Close()
	c2 := startCollector(t, CollectorConfig{BaseRoutes: c1.Routes(), StartSeq: c1.Head()})
	mu.Lock()
	cur = c2
	mu.Unlock()

	for _, b := range bs[half:] {
		if last, err = c2.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WaitSeq(last, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	expectConverged(t, c2, app, "follower")
	if s := f.Stats(); s.SnapshotLoads != 1 {
		t.Fatalf("SnapshotLoads = %d, want 1 (restart handoff should resume)", s.SnapshotLoads)
	}
}

func TestRuntimeApplierFollower(t *testing.T) {
	base, recs := testTrace(t, 7, 400, 120)
	c := startCollector(t, CollectorConfig{BaseRoutes: base, HashEvery: 4})
	app := NewRuntimeApplier(serve.Config{Workers: 2, System: core.Config{TCAMs: 2, Buckets: 8}})
	defer app.Close()
	f := startFollower(t, FollowerConfig{Dial: dialTo(c), Applier: app, Logf: t.Logf})

	var last uint64
	for _, b := range batches(recs, 8) {
		seq, err := c.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if err := f.WaitSeq(last, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	expectConverged(t, c, app, "runtime follower")
	rt := app.Runtime()
	if rt == nil {
		t.Fatal("runtime not built after bootstrap")
	}
	// The replicated runtime serves lookups that agree with the
	// collector's mirror.
	mirror := trie.FromRoutes(c.Routes())
	for i, r := range c.Routes() {
		if i%7 != 0 {
			continue
		}
		addr := r.Prefix.First()
		hop, _, ok := rt.Lookup(addr)
		wantHop, _ := mirror.Lookup(addr, nil)
		if !ok || hop != wantHop {
			t.Fatalf("lookup %v = %d (found %v), want %d", addr, hop, ok, wantHop)
		}
	}
	if s := f.Stats(); s.HashMismatches != 0 {
		t.Fatalf("runtime follower hash mismatches: %d", s.HashMismatches)
	}
}

func TestRuntimeApplierReconcile(t *testing.T) {
	fib, err := fibgen.Generate(fibgen.Config{Seed: 8, Routes: 300})
	if err != nil {
		t.Fatal(err)
	}
	base := fib.Routes()
	app := NewRuntimeApplier(serve.Config{Workers: 2, System: core.Config{TCAMs: 2, Buckets: 8}})
	defer app.Close()
	if err := app.Reset(base); err != nil {
		t.Fatal(err)
	}

	// Second reset to a mutated table must reconcile through the live
	// pipeline: drop some routes, rewrite some hops, add a fresh one.
	next := append([]ip.Route(nil), base[:len(base)-5]...)
	next[0].NextHop++
	next[3].NextHop += 2
	next = append(next, ip.Route{Prefix: ip.MustParsePrefix("198.51.100.0/24"), NextHop: 42})
	if err := app.Reset(next); err != nil {
		t.Fatal(err)
	}
	want := onrtc.Compress(trie.FromRoutes(next)).Routes()
	got := app.CanonicalRoutes()
	if len(got) != len(want) {
		t.Fatalf("%d canonical routes after reconcile, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canonical route %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCollectorApplyRejects(t *testing.T) {
	c, err := NewCollector(CollectorConfig{BaseRoutes: []ip.Route{{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Apply(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := c.Apply([]ribio.UpdateRecord{{Prefix: ip.MustParsePrefix("10.0.0.0/8")}}); err == nil {
		t.Fatal("zero-hop announce accepted")
	}
	if head := c.Head(); head != 0 {
		t.Fatalf("rejected batches advanced head to %d", head)
	}
}

func TestCollectorStartSeq(t *testing.T) {
	base, recs := testTrace(t, 9, 200, 10)
	c, err := NewCollector(CollectorConfig{BaseRoutes: base, StartSeq: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seq, err := c.Apply(recs[:5])
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1001 {
		t.Fatalf("first batch after StartSeq 1000 numbered %d, want 1001", seq)
	}
}

func TestFollowerConfigValidation(t *testing.T) {
	if _, err := NewFollower(FollowerConfig{Applier: newMemApplier()}); err == nil {
		t.Fatal("missing Dial accepted")
	}
	if _, err := NewFollower(FollowerConfig{Dial: func() (net.Conn, error) { return nil, fmt.Errorf("no") }}); err == nil {
		t.Fatal("missing Applier accepted")
	}
}
