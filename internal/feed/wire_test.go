package feed

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"time"

	"clue/internal/ip"
	"clue/internal/ribio"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Seq: 0, Payload: encodeHello(Hello{Version: Version})},
		{Type: FrameHello, Seq: 42, Payload: encodeHello(Hello{Version: Version, HasState: true})},
		{Type: FrameSnapshot, Seq: 7, Payload: encodeSnapshot([]ip.Route{
			{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 3},
			{Prefix: ip.MustParsePrefix("0.0.0.0/0"), NextHop: 1},
		})},
		{Type: FrameUpdates, Seq: 8, Payload: encodeBatch(Batch{Head: 9, Records: []ribio.UpdateRecord{
			{At: time.Second, Prefix: ip.MustParsePrefix("192.0.2.0/24"), NextHop: 7},
			{At: 2 * time.Second, Withdraw: true, Prefix: ip.MustParsePrefix("10.0.0.0/8")},
		}})},
		{Type: FrameHash, Seq: 9, Payload: encodeHash(HashInfo{Routes: 12, Hash: 0xdeadbeefcafe})},
		{Type: FrameAck, Seq: 9},
		{Type: FrameBye},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d changed: %+v -> %+v", i, want, got)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at clean stream end, got %v", err)
	}
}

func TestReadFrameRejects(t *testing.T) {
	encode := func(f Frame) []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, f); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	ack := encode(Frame{Type: FrameAck, Seq: 5})

	t.Run("corrupt CRC", func(t *testing.T) {
		bad := append([]byte(nil), ack...)
		bad[len(bad)-1] ^= 0xff
		if _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("want CRC error, got %v", err)
		}
	})
	t.Run("corrupt body", func(t *testing.T) {
		bad := append([]byte(nil), ack...)
		bad[6] ^= 0x01 // a seq byte
		if _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("want CRC error, got %v", err)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader(encode(Frame{Type: 0x7f}))); err == nil || !strings.Contains(err.Error(), "unknown frame type") {
			t.Fatalf("want unknown-type error, got %v", err)
		}
	})
	t.Run("length too small", func(t *testing.T) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], 3)
		if _, err := ReadFrame(bytes.NewReader(b[:])); err == nil || !strings.Contains(err.Error(), "bad frame length") {
			t.Fatalf("want length error, got %v", err)
		}
	})
	t.Run("length too large", func(t *testing.T) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], maxFrame+1)
		if _, err := ReadFrame(bytes.NewReader(b[:])); err == nil || !strings.Contains(err.Error(), "bad frame length") {
			t.Fatalf("want length error, got %v", err)
		}
	})
	t.Run("truncated mid-frame", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader(ack[:len(ack)-2])); err == nil || err == io.EOF {
			t.Fatalf("want unexpected-EOF error, got %v", err)
		}
	})
	t.Run("truncated length prefix", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader(ack[:2])); err == nil || err == io.EOF {
			t.Fatalf("want error for torn length prefix, got %v", err)
		}
	})
}

func TestHelloDecode(t *testing.T) {
	for _, h := range []Hello{{Version: Version}, {Version: Version, HasState: true}} {
		got, err := decodeHello(encodeHello(h))
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("hello changed: %+v -> %+v", h, got)
		}
	}
	bad := encodeHello(Hello{Version: Version})
	bad[0] = 'X'
	if _, err := decodeHello(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := decodeHello(encodeHello(Hello{Version: Version + 1})); err == nil {
		t.Fatal("version mismatch accepted")
	}
	flag := encodeHello(Hello{Version: Version})
	flag[len(flag)-1] = 2
	if _, err := decodeHello(flag); err == nil {
		t.Fatal("bad state flag accepted")
	}
	if _, err := decodeHello(nil); err == nil {
		t.Fatal("empty hello accepted")
	}
}

func TestSnapshotDecodeRejects(t *testing.T) {
	good := encodeSnapshot([]ip.Route{{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1}})
	if _, err := decodeSnapshot(good[:len(good)-1]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	short := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(short, 2) // claims 2 routes, carries 1
	if _, err := decodeSnapshot(short); err == nil {
		t.Fatal("count mismatch accepted")
	}
	hostBits := append([]byte(nil), good...)
	hostBits[7] = 1 // 10.0.0.1/8
	if _, err := decodeSnapshot(hostBits); err == nil {
		t.Fatal("host bits accepted")
	}
	badLen := append([]byte(nil), good...)
	badLen[8] = 33
	if _, err := decodeSnapshot(badLen); err == nil {
		t.Fatal("prefix length 33 accepted")
	}
	empty, err := decodeSnapshot(encodeSnapshot(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty snapshot should decode to zero routes, got %v, %v", empty, err)
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	good := encodeBatch(Batch{Head: 3, Records: []ribio.UpdateRecord{
		{At: time.Second, Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
	}})
	if _, err := decodeBatch(good[:len(good)-1]); err == nil {
		t.Fatal("truncated batch accepted")
	}
	kind := append([]byte(nil), good...)
	kind[12] = 7
	if _, err := decodeBatch(kind); err == nil {
		t.Fatal("bad record kind accepted")
	}
	zeroHop := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(zeroHop[12+14:], 0)
	if _, err := decodeBatch(zeroHop); err == nil {
		t.Fatal("announce with zero hop accepted")
	}
	wdHop := encodeBatch(Batch{Records: []ribio.UpdateRecord{
		{Withdraw: true, Prefix: ip.MustParsePrefix("10.0.0.0/8")},
	}})
	wdHop[12+14+3] = 9 // stamp a hop onto the withdraw
	if _, err := decodeBatch(wdHop); err == nil {
		t.Fatal("withdraw with hop accepted")
	}
}

func TestCanonicalHash(t *testing.T) {
	a := []ip.Route{
		{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: ip.MustParsePrefix("192.0.2.0/24"), NextHop: 2},
	}
	if CanonicalHash(a) != CanonicalHash(a) {
		t.Fatal("hash not deterministic")
	}
	b := []ip.Route{a[1], a[0]}
	if CanonicalHash(a) == CanonicalHash(b) {
		t.Fatal("hash ignores order — canonical tables are ordered, the hash must be too")
	}
	c := []ip.Route{a[0], {Prefix: a[1].Prefix, NextHop: 3}}
	if CanonicalHash(a) == CanonicalHash(c) {
		t.Fatal("hash ignores next hops")
	}
	if CanonicalHash(nil) == CanonicalHash(a) {
		t.Fatal("empty table collides with non-empty")
	}
}
