package feed

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"clue/internal/ip"
)

// Applier is the state machine a follower drives: a full reset on
// snapshot, one call per record inside a batch, and the canonical
// compressed table for hash verification. RuntimeApplier adapts the
// serve runtime; tests use lighter implementations.
type Applier interface {
	Reset(routes []ip.Route) error
	Announce(p ip.Prefix, hop ip.NextHop) error
	Withdraw(p ip.Prefix) error
	CanonicalRoutes() []ip.Route
}

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Dial opens a connection to the (current) collector. Indirection
	// rather than a fixed address so chaos tests can repoint a live
	// follower at a restarted collector.
	Dial func() (net.Conn, error)
	// Applier receives the replicated state.
	Applier Applier
	// BackoffMin and BackoffMax bound the reconnect backoff (defaults
	// 10ms and 1s). Backoff doubles per failed attempt and resets
	// after a session that made progress.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// AckEvery acks after every N applied batches (default 1).
	// Snapshots are always acked immediately.
	AckEvery int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.BackoffMin == 0 {
		c.BackoffMin = 10 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.AckEvery == 0 {
		c.AckEvery = 1
	}
	return c
}

// FollowerStats is a point-in-time snapshot of follower progress.
type FollowerStats struct {
	// State is "connecting", "syncing", "streaming" or "closed".
	State string `json:"state"`
	// LastApplied is the last fully applied batch; Head is the
	// collector's head as of the last frame; Lag is their distance.
	LastApplied uint64 `json:"last_applied"`
	Head        uint64 `json:"head"`
	Lag         uint64 `json:"lag"`

	Reconnects     uint64 `json:"reconnects"`
	SnapshotLoads  uint64 `json:"snapshot_loads"`
	Resumes        uint64 `json:"resumes"`
	Batches        uint64 `json:"batches"`
	Records        uint64 `json:"records"`
	HashChecks     uint64 `json:"hash_checks"`
	HashMismatches uint64 `json:"hash_mismatches"`
}

// Follower connects to a collector, bootstraps from a snapshot and
// applies the ordered batch stream, reconnecting with exponential
// backoff and resuming from the last applied batch (or taking a fresh
// snapshot when the collector can no longer replay from there).
type Follower struct {
	cfg  FollowerConfig
	stop chan struct{}
	done chan struct{}

	mu            sync.Mutex
	conn          net.Conn
	state         string
	hasState      bool
	forceSnapshot bool // after a hash mismatch: discard state, re-bootstrap
	stats         FollowerStats
	closed        bool
}

// NewFollower validates cfg and starts the replication loop.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Dial == nil {
		return nil, errors.New("feed: FollowerConfig.Dial is required")
	}
	if cfg.Applier == nil {
		return nil, errors.New("feed: FollowerConfig.Applier is required")
	}
	f := &Follower{
		cfg:   cfg.withDefaults(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		state: "connecting",
	}
	go f.run()
	return f, nil
}

// Stats returns a snapshot of follower progress.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.State = f.state
	if s.Head > s.LastApplied {
		s.Lag = s.Head - s.LastApplied
	}
	return s
}

// WaitSeq blocks until the follower has fully applied batch seq (and
// its containing snapshot is published, since appliers block on
// publication), or the timeout elapses.
func (f *Follower) WaitSeq(seq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		f.mu.Lock()
		applied, closed := f.stats.LastApplied, f.closed
		f.mu.Unlock()
		if applied >= seq {
			return nil
		}
		if closed {
			return errors.New("feed: follower closed")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("feed: batch %d not applied within %s (at %d)", seq, timeout, applied)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// BreakConn severs the current collector connection (if any), forcing
// a reconnect. Chaos tests use it as a deterministic link cut.
func (f *Follower) BreakConn() {
	f.mu.Lock()
	nc := f.conn
	f.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

// Close stops the replication loop and waits for it to exit. The
// applier is left at the last applied state (and is the caller's to
// close).
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done
		return nil
	}
	f.closed = true
	nc := f.conn
	f.mu.Unlock()
	close(f.stop)
	if nc != nil {
		nc.Close()
	}
	<-f.done
	f.mu.Lock()
	f.state = "closed"
	f.mu.Unlock()
	return nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// sleep waits d or until Close, whichever first.
func (f *Follower) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.stop:
		return false
	}
}

func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.BackoffMin
	first := true
	for {
		if f.isClosed() {
			return
		}
		if !first {
			if !f.sleep(backoff) {
				return
			}
		}
		first = false
		f.setState("connecting")
		nc, err := f.cfg.Dial()
		if err != nil {
			backoff = min(backoff*2, f.cfg.BackoffMax)
			continue
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			nc.Close()
			return
		}
		f.conn = nc
		f.mu.Unlock()
		progressed := f.session(nc)
		nc.Close()
		f.mu.Lock()
		f.conn = nil
		closed := f.closed
		if !closed {
			f.stats.Reconnects++
		}
		f.mu.Unlock()
		if closed {
			return
		}
		if progressed {
			backoff = f.cfg.BackoffMin
		} else {
			backoff = min(backoff*2, f.cfg.BackoffMax)
		}
	}
}

func (f *Follower) setState(s string) {
	f.mu.Lock()
	if !f.closed {
		f.state = s
	}
	f.mu.Unlock()
}

// session runs one connection: hello, then apply frames until error or
// stream end. It reports whether any frame was applied (for backoff
// reset).
func (f *Follower) session(nc net.Conn) (progressed bool) {
	f.mu.Lock()
	hello := Hello{Version: Version, HasState: f.hasState && !f.forceSnapshot}
	lastApplied := f.stats.LastApplied
	f.mu.Unlock()
	if err := WriteFrame(nc, Frame{Type: FrameHello, Seq: lastApplied, Payload: encodeHello(hello)}); err != nil {
		return false
	}
	f.setState("syncing")
	resumeCandidate := hello.HasState
	ackDue := 0
	for {
		fr, err := ReadFrame(nc)
		if err != nil {
			return progressed
		}
		switch fr.Type {
		case FrameSnapshot:
			routes, err := decodeSnapshot(fr.Payload)
			if err != nil {
				f.logf("feed: %v", err)
				return progressed
			}
			if err := f.cfg.Applier.Reset(routes); err != nil {
				f.logf("feed: snapshot reset: %v", err)
				return progressed
			}
			f.mu.Lock()
			f.stats.LastApplied = fr.Seq
			if fr.Seq > f.stats.Head {
				f.stats.Head = fr.Seq
			}
			f.stats.SnapshotLoads++
			f.hasState = true
			f.forceSnapshot = false
			f.mu.Unlock()
			resumeCandidate = false
			progressed = true
			f.setState("streaming")
			if err := WriteFrame(nc, Frame{Type: FrameAck, Seq: fr.Seq}); err != nil {
				return progressed
			}
			ackDue = 0
		case FrameUpdates:
			b, err := decodeBatch(fr.Payload)
			if err != nil {
				f.logf("feed: %v", err)
				return progressed
			}
			f.mu.Lock()
			applied := f.stats.LastApplied
			if b.Head > f.stats.Head {
				f.stats.Head = b.Head
			}
			f.mu.Unlock()
			if fr.Seq <= applied {
				continue // replay overlap; already applied
			}
			if fr.Seq != applied+1 {
				f.logf("feed: batch gap: have %d, got %d", applied, fr.Seq)
				return progressed
			}
			if resumeCandidate {
				f.mu.Lock()
				f.stats.Resumes++
				f.mu.Unlock()
				resumeCandidate = false
			}
			for _, u := range b.Records {
				if u.Withdraw {
					err = f.cfg.Applier.Withdraw(u.Prefix)
				} else {
					err = f.cfg.Applier.Announce(u.Prefix, u.NextHop)
				}
				if err != nil {
					f.logf("feed: apply batch %d: %v", fr.Seq, err)
					return progressed
				}
			}
			f.mu.Lock()
			f.stats.LastApplied = fr.Seq
			f.stats.Batches++
			f.stats.Records += uint64(len(b.Records))
			f.mu.Unlock()
			progressed = true
			f.setState("streaming")
			ackDue++
			if ackDue >= f.cfg.AckEvery {
				if err := WriteFrame(nc, Frame{Type: FrameAck, Seq: fr.Seq}); err != nil {
					return progressed
				}
				ackDue = 0
			}
		case FrameHash:
			h, err := decodeHash(fr.Payload)
			if err != nil {
				f.logf("feed: %v", err)
				return progressed
			}
			f.mu.Lock()
			applied := f.stats.LastApplied
			f.mu.Unlock()
			if fr.Seq != applied {
				continue // covers a state we skipped past; nothing to compare
			}
			routes := f.cfg.Applier.CanonicalRoutes()
			got := CanonicalHash(routes)
			f.mu.Lock()
			f.stats.HashChecks++
			mismatch := got != h.Hash
			if mismatch {
				f.stats.HashMismatches++
				f.forceSnapshot = true
			}
			f.mu.Unlock()
			if mismatch {
				f.logf("feed: canonical hash mismatch at batch %d: have %016x over %d routes, want %016x over %d — resynchronising",
					fr.Seq, got, len(routes), h.Hash, h.Routes)
				return progressed
			}
			if resumeCandidate {
				f.mu.Lock()
				f.stats.Resumes++
				f.mu.Unlock()
				resumeCandidate = false
			}
		case FrameBye:
			return progressed
		default:
			f.logf("feed: unexpected frame type 0x%02x", fr.Type)
			return progressed
		}
	}
}
