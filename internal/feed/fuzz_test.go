package feed

import (
	"bytes"
	"io"
	"testing"
	"time"

	"clue/internal/ip"
	"clue/internal/ribio"
)

// FuzzReadFrame checks the frame decoder never panics on arbitrary
// bytes, that an accepted frame re-encodes byte-identically through
// WriteFrame → ReadFrame, and that the typed payload decoders never
// panic on whatever payload survived the CRC.
func FuzzReadFrame(f *testing.F) {
	frame := func(fr Frame) []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, fr); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	seeds := [][]byte{
		frame(Frame{Type: FrameHello, Seq: 3, Payload: encodeHello(Hello{Version: Version, HasState: true})}),
		frame(Frame{Type: FrameSnapshot, Seq: 1, Payload: encodeSnapshot([]ip.Route{
			{Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 1},
		})}),
		frame(Frame{Type: FrameUpdates, Seq: 2, Payload: encodeBatch(Batch{Head: 2, Records: []ribio.UpdateRecord{
			{At: time.Second, Prefix: ip.MustParsePrefix("192.0.2.0/24"), NextHop: 7},
			{At: time.Second, Withdraw: true, Prefix: ip.MustParsePrefix("10.0.0.0/8")},
		}})}),
		frame(Frame{Type: FrameHash, Seq: 2, Payload: encodeHash(HashInfo{Routes: 3, Hash: 12345})}),
		frame(Frame{Type: FrameAck, Seq: 2}),
		frame(Frame{Type: FrameBye}),
		{},
		{0, 0, 0, 13},
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3},
	}
	// Two frames back to back: decoding must consume exactly one.
	seeds = append(seeds, append(append([]byte(nil), seeds[4]...), seeds[5]...))
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r)
		if err != nil {
			return
		}
		// Accepted frames round-trip exactly, and the reader consumed
		// exactly the frame's wire size.
		var b bytes.Buffer
		if err := WriteFrame(&b, fr); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		wire := len(data) - r.Len()
		if !bytes.Equal(b.Bytes(), data[:wire]) {
			t.Fatalf("round trip changed frame bytes:\n%x\n%x", data[:wire], b.Bytes())
		}
		back, err := ReadFrame(&b)
		if err != nil {
			t.Fatalf("re-read of re-encoded frame failed: %v", err)
		}
		if back.Type != fr.Type || back.Seq != fr.Seq || !bytes.Equal(back.Payload, fr.Payload) {
			t.Fatalf("round trip changed frame: %+v -> %+v", fr, back)
		}
		// Typed decoders must reject or accept, never panic; accepted
		// typed payloads re-encode byte-identically.
		switch fr.Type {
		case FrameHello:
			if h, err := decodeHello(fr.Payload); err == nil {
				if !bytes.Equal(encodeHello(h), fr.Payload) {
					t.Fatalf("hello payload round trip changed: %x", fr.Payload)
				}
			}
		case FrameSnapshot:
			if routes, err := decodeSnapshot(fr.Payload); err == nil {
				if !bytes.Equal(encodeSnapshot(routes), fr.Payload) {
					t.Fatalf("snapshot payload round trip changed: %x", fr.Payload)
				}
			}
		case FrameUpdates:
			if batch, err := decodeBatch(fr.Payload); err == nil {
				if !bytes.Equal(encodeBatch(batch), fr.Payload) {
					t.Fatalf("batch payload round trip changed: %x", fr.Payload)
				}
			}
		case FrameHash:
			if h, err := decodeHash(fr.Payload); err == nil {
				if !bytes.Equal(encodeHash(h), fr.Payload) {
					t.Fatalf("hash payload round trip changed: %x", fr.Payload)
				}
			}
		}
	})
}

// FuzzReadFrame must treat a truncated stream as an error, not a
// frame: every strict prefix of a valid frame fails to decode.
func TestReadFramePrefixes(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, Frame{Type: FrameUpdates, Seq: 9, Payload: encodeBatch(Batch{Head: 9, Records: []ribio.UpdateRecord{
		{At: time.Second, Prefix: ip.MustParsePrefix("10.0.0.0/8"), NextHop: 2},
	}})}); err != nil {
		t.Fatal(err)
	}
	full := b.Bytes()
	for n := 1; n < len(full); n++ {
		if _, err := ReadFrame(bytes.NewReader(full[:n])); err == nil || err == io.EOF {
			t.Fatalf("prefix of %d/%d bytes decoded without error (got %v)", n, len(full), err)
		}
	}
}
