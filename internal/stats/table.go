package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for the experiment reports,
// mirroring the rows of the paper's tables and figure series.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells rendered empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v for strings and ints and %.4g for floats.
func (t *Table) AddRowf(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = fmt.Sprintf("%.4g", v)
		case float32:
			strs[i] = fmt.Sprintf("%.4g", v)
		default:
			strs[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(strs...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
