package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSummariseEmpty(t *testing.T) {
	s := Summarise(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummariseBasic(t *testing.T) {
	s := Summarise([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2)", s.Std)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
}

func TestSummarisePercentiles(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarise(xs)
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 {
		t.Errorf("percentiles = %v/%v/%v", s.P50, s.P90, s.P99)
	}
}

func TestSummariseSingle(t *testing.T) {
	s := Summarise([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P99 != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestPolyFitExact(t *testing.T) {
	// y = 2 + 3x - x^2 fit exactly through noiseless points.
	f := func(x float64) float64 { return 2 + 3*x - x*x }
	var xs, ys []float64
	for x := -3.0; x <= 3; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	c, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Errorf("coeff %d = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestPolyFitCubicNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(x float64) float64 { return 1 + x - 2*x*x + 0.5*x*x*x }
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, x)
		ys = append(ys, f(x)+rng.NormFloat64()*0.01)
	}
	c, err := PolyFit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1.5, 0, 0.7, 1.9} {
		if math.Abs(PolyEval(c, x)-f(x)) > 0.05 {
			t.Errorf("fit at %v = %v, want ≈%v", x, PolyEval(c, x), f(x))
		}
	}
}

func TestPolyFitDegreeZero(t *testing.T) {
	c, err := PolyFit([]float64{1, 2, 3}, []float64{5, 5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-5) > 1e-12 {
		t.Errorf("constant fit = %v", c[0])
	}
}

func TestPolyFitValidation(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 5); err == nil {
		t.Error("too few points accepted")
	}
	// Identical x values make the system singular for degree >= 1.
	if _, err := PolyFit([]float64{2, 2, 2}, []float64{1, 2, 3}, 2); err == nil {
		t.Error("singular system accepted")
	}
}

func TestPolyEvalEmpty(t *testing.T) {
	if PolyEval(nil, 3) != 0 {
		t.Error("empty coefficients should evaluate to 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRowf("gamma") // short row padded
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+1+1+3 { // title + header + rule + 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and first row start at same offset for col 2.
	hIdx := strings.Index(lines[1], "value")
	rIdx := strings.Index(lines[3], "1")
	if hIdx != rIdx {
		t.Errorf("columns misaligned: %d vs %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := NewTable("", "only")
	tb.AddRow("a", "b", "c")
	out := tb.String()
	if strings.Contains(out, "b") {
		t.Error("extra cells not dropped")
	}
}
