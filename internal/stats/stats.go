// Package stats provides the small numerical toolkit the experiment
// harness needs: series summaries, least-squares polynomial fitting (the
// paper fits cubic curves through the speedup/hit-rate points of Figure
// 16) and plain-text table rendering for paper-style output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a float series.
type Summary struct {
	Count         int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarise computes a Summary. An empty series yields the zero Summary.
func Summarise(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile reads the q-quantile from an ascending-sorted series using the
// nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// PolyFit fits a degree-d polynomial to (x, y) by least squares and
// returns the coefficients c[0] + c[1]x + ... + c[d]x^d. It needs at
// least d+1 points; the normal equations are solved by Gaussian
// elimination with partial pivoting.
func PolyFit(x, y []float64, degree int) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: x and y lengths differ (%d vs %d)", len(x), len(y))
	}
	if degree < 0 {
		return nil, fmt.Errorf("stats: negative degree %d", degree)
	}
	n := degree + 1
	if len(x) < n {
		return nil, fmt.Errorf("stats: need at least %d points for degree %d, got %d", n, degree, len(x))
	}
	// Normal equations: (V^T V) c = V^T y with Vandermonde V.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	// powSums[k] = sum of x^k for k in [0, 2*degree].
	powSums := make([]float64, 2*n-1)
	for _, xv := range x {
		p := 1.0
		for k := 0; k < len(powSums); k++ {
			powSums[k] += p
			p *= xv
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = powSums[i+j]
		}
	}
	for k, xv := range x {
		p := 1.0
		for i := 0; i < n; i++ {
			b[i] += p * y[k]
			p *= xv
		}
	}
	return solve(a, b)
}

// solve performs Gaussian elimination with partial pivoting in place.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * out[c]
		}
		out[r] = v / a[r][r]
	}
	return out, nil
}

// PolyEval evaluates the PolyFit coefficient vector at x.
func PolyEval(coeffs []float64, x float64) float64 {
	v := 0.0
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = v*x + coeffs[i]
	}
	return v
}
