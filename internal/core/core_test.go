package core

import (
	"math/rand"
	"testing"

	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/tracegen"
	"clue/internal/update"
)

func genRoutes(t *testing.T, n int, seed int64) []ip.Route {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: n})
	if err != nil {
		t.Fatal(err)
	}
	return fib.Routes()
}

func probes(t *testing.T, s *System, n int, seed int64) []ip.Addr {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]ip.Addr, n)
	for i := range out {
		out[i] = ip.Addr(rng.Uint32())
	}
	return out
}

func TestNewAndLookup(t *testing.T) {
	s, err := New(genRoutes(t, 4000, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.TCAMs() != 4 {
		t.Errorf("TCAMs = %d, want 4 (default)", s.TCAMs())
	}
	if s.CompressionRatio() >= 1 || s.CompressionRatio() <= 0 {
		t.Errorf("compression ratio = %v", s.CompressionRatio())
	}
	if err := s.Verify(probes(t, s, 3000, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty table accepted")
	}
	routes := genRoutes(t, 500, 2)[:10]
	if _, err := New(routes, Config{Buckets: 4000}); err == nil {
		t.Error("buckets > table size accepted")
	}
}

func TestAnnounceWithdrawKeepsInvariants(t *testing.T) {
	s, err := New(genRoutes(t, 3000, 3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ttf, err := s.Announce(ip.MustParsePrefix("203.0.113.0/24"), 9)
	if err != nil {
		t.Fatal(err)
	}
	if ttf.Trie <= 0 || ttf.TCAM <= 0 {
		t.Errorf("announce TTF = %+v", ttf)
	}
	hop, ok := s.Lookup(ip.MustParseAddr("203.0.113.5"))
	if !ok || hop != 9 {
		t.Errorf("lookup after announce = (%d, %v), want (9, true)", hop, ok)
	}
	if _, err := s.Withdraw(ip.MustParsePrefix("203.0.113.0/24")); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(probes(t, s, 2000, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestAnnounceRejectsNoRoute(t *testing.T) {
	s, err := New(genRoutes(t, 2000, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Announce(ip.MustParsePrefix("10.0.0.0/8"), 0); err == nil {
		t.Error("NoRoute hop accepted")
	}
}

// TestChurnEndToEnd replays a long update stream through the full system
// and re-verifies all invariants, including lookups against the control
// plane.
func TestChurnEndToEnd(t *testing.T) {
	s, err := New(genRoutes(t, 3000, 5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := tracegen.NewUpdateGen(s.updater.FIB().Clone(), tracegen.UpdateConfig{
		Seed: 5, Messages: 2000, WithdrawFrac: 0.3, NewPrefixFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total update.TTF
	for _, u := range gen.NextN(2000) {
		var ttf update.TTF
		var err error
		if u.Kind == tracegen.Withdraw {
			ttf, err = s.Withdraw(u.Prefix)
		} else {
			ttf, err = s.Announce(u.Prefix, u.Hop)
		}
		if err != nil {
			t.Fatalf("update %v %s: %v", u.Kind, u.Prefix, err)
		}
		total = total.Add(ttf)
	}
	if total.Total() <= 0 {
		t.Error("zero total TTF over 2000 updates")
	}
	if err := s.Verify(probes(t, s, 3000, 5)); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAndUpdatesShareState checks the integration: traffic warms
// DReds, then a withdraw purges the cached prefix everywhere.
func TestEngineAndUpdatesShareState(t *testing.T) {
	s, err := New(genRoutes(t, 3000, 6), Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(s.updater.Table().Routes()),
		tracegen.TrafficConfig{Seed: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Engine().Run(tr.Next, 20000)
	cached := 0
	for i := 0; i < s.DReds().N(); i++ {
		cached += s.DReds().Cache(i).Len()
	}
	if cached == 0 {
		t.Fatal("engine run cached nothing")
	}
	// Withdraw everything the first DRed holds and check purging.
	victims := 0
	for _, r := range s.updater.Table().Routes() {
		if s.DReds().Cache(0).Contains(r.Prefix) {
			// Withdraw the covering FIB content by announcing then
			// withdrawing an exact route — simpler: directly invalidate
			// via a hop change.
			if _, err := s.Announce(r.Prefix, r.NextHop%16+1); err != nil {
				t.Fatal(err)
			}
			victims++
			if victims > 20 {
				break
			}
		}
	}
	if victims == 0 {
		t.Skip("no cached table prefixes to churn")
	}
	if err := s.Verify(probes(t, s, 2000, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestLookupMatchesFIBUnderWorstCaseMapping(t *testing.T) {
	routes := genRoutes(t, 3000, 7)
	mapping := make([]int, 32)
	// Degenerate mapping: everything on TCAM 0 except the last bucket.
	for i := range mapping {
		if i == 31 {
			mapping[i] = 1
		}
	}
	s, err := New(routes, Config{TCAMs: 4, Buckets: 32, Mapping: mapping})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(probes(t, s, 3000, 7)); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceRestoresEvenness(t *testing.T) {
	s, err := New(genRoutes(t, 3000, 8), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Churn the table so chip occupancies drift apart.
	gen, err := tracegen.NewUpdateGen(s.updater.FIB().Clone(), tracegen.UpdateConfig{
		Seed: 8, Messages: 3000, WithdrawFrac: 0.25, NewPrefixFrac: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range gen.NextN(3000) {
		if u.Kind == tracegen.Withdraw {
			_, err = s.Withdraw(u.Prefix)
		} else {
			_, err = s.Announce(u.Prefix, u.Hop)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	minBefore, maxBefore := 1<<30, 0
	for i := 0; i < s.TCAMs(); i++ {
		u := s.Chip(i).Used()
		if u < minBefore {
			minBefore = u
		}
		if u > maxBefore {
			maxBefore = u
		}
	}
	rep, err := s.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != s.TableLen() {
		t.Errorf("report entries %d != table %d", rep.Entries, s.TableLen())
	}
	minAfter, maxAfter := 1<<30, 0
	for i := 0; i < s.TCAMs(); i++ {
		u := s.Chip(i).Used()
		if u < minAfter {
			minAfter = u
		}
		if u > maxAfter {
			maxAfter = u
		}
	}
	if maxAfter-minAfter > maxBefore-minBefore {
		t.Errorf("rebalance worsened spread: %d-%d -> %d-%d", minBefore, maxBefore, minAfter, maxAfter)
	}
	// Everything must still verify after the reload.
	if err := s.Verify(probes(t, s, 3000, 8)); err != nil {
		t.Fatal(err)
	}
	// And updates must keep working against the new layout.
	if _, err := s.Announce(ip.MustParsePrefix("203.0.113.0/24"), 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(probes(t, s, 1000, 9)); err != nil {
		t.Fatal(err)
	}
}
