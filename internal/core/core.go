// Package core integrates the paper's three contributions into one
// operable system — the thing a router vendor would actually deploy:
//
//   - the ONRTC-compressed, non-overlapping table (compression),
//   - the N-TCAM parallel engine with range partitions and reduced
//     dynamic redundancy (lookup),
//   - the incremental update pipeline keeping trie, TCAMs and DReds in
//     sync with announce/withdraw churn, with TTF accounting (update).
//
// The cycle-accurate engine and the update path share the same chips and
// DRed group, so updates immediately affect subsequent lookups, exactly
// as in the paper's architecture (Figure 1 + Figure 6).
package core

import (
	"fmt"

	"clue/internal/dred"
	"clue/internal/engine"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/tcam"
	"clue/internal/trie"
	"clue/internal/update"
)

// Config parameterises a CLUE system. Zero values take the paper's
// defaults.
type Config struct {
	// TCAMs is the number of parallel TCAM chips (default 4).
	TCAMs int
	// Buckets is the number of range partitions the compressed table is
	// split into (default 8 per TCAM, as in Table II).
	Buckets int
	// Mapping assigns buckets to TCAMs (nil = round-robin).
	Mapping []int
	// QueueDepth, DRedSize and LookupClocks configure the engine
	// (defaults 256 / 1024 / 4).
	QueueDepth, DRedSize, LookupClocks int
	// Costs prices update operations for TTF accounting.
	Costs update.CostModel
}

func (c Config) withDefaults() Config {
	if c.TCAMs == 0 {
		c.TCAMs = 4
	}
	if c.Buckets == 0 {
		c.Buckets = 8 * c.TCAMs
	}
	if c.Costs == (update.CostModel{}) {
		c.Costs = update.DefaultCosts()
	}
	return c
}

// System is a running CLUE forwarding engine.
//
// # Concurrency contract
//
// A System is NOT goroutine-safe. Lookup reads the chip state that
// Announce, Withdraw and Rebalance mutate, with no internal locking —
// exactly like the hardware it models, where the control plane owns the
// update bus. Callers must either confine a System to one goroutine or
// provide their own synchronisation. For concurrent serving, wrap the
// System in a serve.Runtime (internal/serve), which gives lock-free
// lookup snapshots (RCU) plus a single writer goroutine that owns all
// mutations.
type System struct {
	cfg     Config
	updater *onrtc.Updater
	sys     *engine.CLUESystem
	eng     *engine.Engine
	// holders tracks which chips store each compressed prefix (a merged
	// prefix spanning several buckets lives on every owning chip).
	holders map[ip.Prefix][]int
}

// New builds a CLUE system from the original (possibly overlapping) FIB
// routes: compresses with ONRTC, partitions into even range buckets,
// loads the chips and stands up the engine.
func New(routes []ip.Route, cfg Config) (*System, error) {
	if len(routes) == 0 {
		return nil, fmt.Errorf("core: empty routing table")
	}
	cfg = cfg.withDefaults()
	fib := trie.FromRoutes(routes)
	updater := onrtc.BuildUpdater(fib)
	table := updater.Table()
	if table.Len() < cfg.Buckets {
		return nil, fmt.Errorf("core: compressed table (%d entries) smaller than bucket count %d", table.Len(), cfg.Buckets)
	}
	sys, err := engine.NewCLUESystem(table, cfg.TCAMs, cfg.Buckets, cfg.Mapping)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(sys, engine.Config{
		QueueDepth:   cfg.QueueDepth,
		DRedSize:     cfg.DRedSize,
		LookupClocks: cfg.LookupClocks,
	})
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		updater: updater,
		sys:     sys,
		eng:     eng,
		holders: make(map[ip.Prefix][]int, table.Len()),
	}
	for _, r := range table.Routes() {
		for i := 0; i < cfg.TCAMs; i++ {
			if sys.Chip(i).Contains(r.Prefix) {
				s.holders[r.Prefix] = append(s.holders[r.Prefix], i)
			}
		}
	}
	return s, nil
}

// Lookup resolves addr directly against the home chip — the data-plane
// answer without queueing delay. Use Engine() for cycle-accurate runs.
//
// Lookup is not safe to call concurrently with Announce, Withdraw or
// Rebalance; see the System concurrency contract.
func (s *System) Lookup(addr ip.Addr) (ip.NextHop, bool) {
	hop, _, ok := s.sys.Chip(s.sys.Home(addr)).Lookup(addr)
	return hop, ok
}

// Engine exposes the cycle-driven simulator sharing this system's chips
// and DReds.
func (s *System) Engine() *engine.Engine { return s.eng }

// DReds exposes the dynamic redundancy group.
func (s *System) DReds() *dred.Group { return s.eng.DReds() }

// CompressedRoutes returns a fresh copy of the compressed table in
// ascending address order (disjoint, so strictly ascending ranges). The
// serve runtime snapshots the table through this on every batch swap;
// the returned slice shares no state with the System.
func (s *System) CompressedRoutes() []ip.Route {
	return s.updater.Table().Routes()
}

// FIBLen returns the original route count; TableLen the compressed count.
func (s *System) FIBLen() int   { return s.updater.FIB().Len() }
func (s *System) TableLen() int { return s.updater.Table().Len() }

// CompressionRatio returns compressed/original.
func (s *System) CompressionRatio() float64 {
	if s.FIBLen() == 0 {
		return 0
	}
	return float64(s.TableLen()) / float64(s.FIBLen())
}

// Chip exposes TCAM i (diagnostics).
func (s *System) Chip(i int) *tcam.Chip { return s.sys.Chip(i) }

// TCAMs returns the chip count.
func (s *System) TCAMs() int { return s.cfg.TCAMs }

// Announce applies a route announcement through the whole pipeline
// (trie → TCAMs → DReds) and returns the update's TTF breakdown.
//
// Announce mutates the trie and chip state and must not run concurrently
// with any other System method; see the System concurrency contract.
func (s *System) Announce(p ip.Prefix, hop ip.NextHop) (update.TTF, error) {
	ttf, _, err := s.AnnounceDiff(p, hop)
	return ttf, err
}

// AnnounceDiff is Announce, additionally returning the compressed-table
// diff the announcement produced. The serve runtime uses the diff to
// propagate targeted invalidations to its per-worker caches.
func (s *System) AnnounceDiff(p ip.Prefix, hop ip.NextHop) (update.TTF, onrtc.Diff, error) {
	if hop == ip.NoRoute {
		return update.TTF{}, onrtc.Diff{}, fmt.Errorf("core: announce %s: next hop must be non-zero", p)
	}
	diff := s.updater.Announce(p, hop)
	ttf, err := s.applyDiff(diff)
	return ttf, diff, err
}

// Withdraw applies a route withdrawal through the whole pipeline.
//
// Withdraw mutates the trie and chip state and must not run concurrently
// with any other System method; see the System concurrency contract.
func (s *System) Withdraw(p ip.Prefix) (update.TTF, error) {
	ttf, _, err := s.WithdrawDiff(p)
	return ttf, err
}

// WithdrawDiff is Withdraw, additionally returning the compressed-table
// diff the withdrawal produced.
func (s *System) WithdrawDiff(p ip.Prefix) (update.TTF, onrtc.Diff, error) {
	diff := s.updater.Withdraw(p)
	ttf, err := s.applyDiff(diff)
	return ttf, diff, err
}

// applyDiff pushes compressed-table ops to the owning chips and fixes the
// DReds, accumulating TTF.
func (s *System) applyDiff(diff onrtc.Diff) (update.TTF, error) {
	ttf := update.TTF{Trie: float64(diff.Visits.Nodes) * s.cfg.Costs.SRAMAccessNs}
	for _, op := range diff.Ops {
		accesses, err := s.applyOp(op)
		if err != nil {
			return ttf, err
		}
		ttf.TCAM += float64(accesses) * s.cfg.Costs.TCAMAccessNs
		switch op.Kind {
		case onrtc.OpDelete:
			s.eng.DReds().Invalidate(op.Route.Prefix)
			ttf.DRed += s.cfg.Costs.TCAMAccessNs
		case onrtc.OpModify:
			for i := 0; i < s.eng.DReds().N(); i++ {
				c := s.eng.DReds().Cache(i)
				if c.Contains(op.Route.Prefix) {
					c.Insert(op.Route)
				}
			}
			ttf.DRed += s.cfg.Costs.TCAMAccessNs
		}
	}
	return ttf, nil
}

// applyOp performs one op on every chip that owns (or must own) the
// prefix and returns the TCAM accesses consumed.
func (s *System) applyOp(op onrtc.Op) (int64, error) {
	p := op.Route.Prefix
	switch op.Kind {
	case onrtc.OpInsert:
		homes := s.sys.HomesForRange(p.First(), p.Last())
		total := 0
		for _, i := range homes {
			moves, err := s.sys.Chip(i).Insert(op.Route)
			if err != nil {
				return 0, fmt.Errorf("core: chip %d: %w", i, err)
			}
			total += moves + 1
		}
		s.holders[p] = homes
		return int64(total), nil
	case onrtc.OpDelete:
		holders, ok := s.holders[p]
		if !ok {
			return 0, fmt.Errorf("core: delete %s: no holder recorded", p)
		}
		total := 0
		for _, i := range holders {
			moves, err := s.sys.Chip(i).Delete(p)
			if err != nil {
				return 0, fmt.Errorf("core: chip %d: %w", i, err)
			}
			total += moves + 1
		}
		delete(s.holders, p)
		return int64(total), nil
	case onrtc.OpModify:
		holders, ok := s.holders[p]
		if !ok {
			return 0, fmt.Errorf("core: modify %s: no holder recorded", p)
		}
		for _, i := range holders {
			if err := s.sys.Chip(i).Modify(op.Route); err != nil {
				return 0, fmt.Errorf("core: chip %d: %w", i, err)
			}
		}
		return int64(len(holders)), nil
	}
	return 0, fmt.Errorf("core: unknown op kind %v", op.Kind)
}

// Verify exhaustively cross-checks the system's invariants: every chip's
// content is disjoint, the chips' union equals the compressed table, and
// home-chip lookups agree with the control-plane FIB on the probes.
// Intended for tests and examples.
func (s *System) Verify(probes []ip.Addr) error {
	total := 0
	for i := 0; i < s.cfg.TCAMs; i++ {
		chip := s.sys.Chip(i)
		if trie.FromRoutes(chip.Routes()).Overlapping() {
			return fmt.Errorf("core: chip %d stores overlapping prefixes", i)
		}
		total += chip.Len()
	}
	// Replicated straddling prefixes make total >= table len.
	if total < s.TableLen() {
		return fmt.Errorf("core: chips store %d entries, table has %d", total, s.TableLen())
	}
	for _, r := range s.updater.Table().Routes() {
		holders := s.holders[r.Prefix]
		if len(holders) == 0 {
			return fmt.Errorf("core: %s has no holder", r.Prefix)
		}
		for _, i := range holders {
			if !s.sys.Chip(i).Contains(r.Prefix) {
				return fmt.Errorf("core: %s missing from recorded holder %d", r.Prefix, i)
			}
		}
	}
	for _, a := range probes {
		want, _ := s.updater.FIB().Lookup(a, nil)
		got, ok := s.Lookup(a)
		if !ok {
			got = ip.NoRoute
		}
		if got != want {
			return fmt.Errorf("core: lookup(%s) = %d, control plane says %d", a, got, want)
		}
	}
	return nil
}

// RebalanceReport summarises a Rebalance run.
type RebalanceReport struct {
	// Entries is the compressed table size reloaded.
	Entries int
	// MaxBefore and MaxAfter are the largest chip occupancy before and
	// after re-partitioning.
	MaxBefore, MaxAfter int
	// Writes is the TCAM write cost of the full reload.
	Writes int64
}

// Rebalance re-partitions the current compressed table into fresh even
// range buckets and reloads the chips. Update churn erodes partition
// evenness (bucket boundaries are fixed at build time while inserts land
// wherever the address space dictates); a maintenance-window rebalance
// restores it. Queues, DRed contents and engine statistics are reset —
// this models a control-plane table reload, not an incremental update.
func (s *System) Rebalance() (RebalanceReport, error) {
	rep := RebalanceReport{Entries: s.TableLen()}
	for i := 0; i < s.cfg.TCAMs; i++ {
		if used := s.sys.Chip(i).Used(); used > rep.MaxBefore {
			rep.MaxBefore = used
		}
	}
	sys, err := engine.NewCLUESystem(s.updater.Table(), s.cfg.TCAMs, s.cfg.Buckets, s.cfg.Mapping)
	if err != nil {
		return rep, fmt.Errorf("core: rebalance: %w", err)
	}
	eng, err := engine.New(sys, engine.Config{
		QueueDepth:   s.cfg.QueueDepth,
		DRedSize:     s.cfg.DRedSize,
		LookupClocks: s.cfg.LookupClocks,
	})
	if err != nil {
		return rep, fmt.Errorf("core: rebalance: %w", err)
	}
	s.sys, s.eng = sys, eng
	s.holders = make(map[ip.Prefix][]int, s.TableLen())
	for _, r := range s.updater.Table().Routes() {
		for i := 0; i < s.cfg.TCAMs; i++ {
			if sys.Chip(i).Contains(r.Prefix) {
				s.holders[r.Prefix] = append(s.holders[r.Prefix], i)
			}
		}
	}
	for i := 0; i < s.cfg.TCAMs; i++ {
		if used := s.sys.Chip(i).Used(); used > rep.MaxAfter {
			rep.MaxAfter = used
		}
		rep.Writes += int64(s.sys.Chip(i).Used())
	}
	return rep, nil
}
