package patricia

import (
	"math/rand"
	"sort"
	"testing"

	"clue/internal/ip"
	"clue/internal/trie"
)

func pfx(s string) ip.Prefix { return ip.MustParsePrefix(s) }
func addr(s string) ip.Addr  { return ip.MustParseAddr(s) }

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	hop, _ := tr.Lookup(addr("1.2.3.4"), nil)
	if hop != ip.NoRoute {
		t.Errorf("lookup in empty = %d", hop)
	}
}

func TestInsertLookupBasic(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("10.1.0.0/16"), 2, nil)
	tr.Insert(pfx("0.0.0.0/0"), 9, nil)

	cases := []struct {
		a    string
		want ip.NextHop
	}{
		{a: "10.1.2.3", want: 2},
		{a: "10.2.0.1", want: 1},
		{a: "11.0.0.1", want: 9},
	}
	for _, c := range cases {
		hop, _ := tr.Lookup(addr(c.a), nil)
		if hop != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.a, hop, c.want)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestInsertForksCompressedEdge(t *testing.T) {
	tr := New()
	// Two /24s sharing 15 bits: the fork lands mid-edge.
	tr.Insert(pfx("10.1.0.0/24"), 1, nil)
	tr.Insert(pfx("10.0.128.0/24"), 2, nil)
	hop, _ := tr.Lookup(addr("10.1.0.5"), nil)
	if hop != 1 {
		t.Errorf("first route lost: %d", hop)
	}
	hop, _ = tr.Lookup(addr("10.0.128.5"), nil)
	if hop != 2 {
		t.Errorf("second route lost: %d", hop)
	}
	hop, _ = tr.Lookup(addr("10.2.0.1"), nil)
	if hop != ip.NoRoute {
		t.Errorf("fork node must not match: %d", hop)
	}
}

func TestInsertSpliceAncestor(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.1.0.0/16"), 1, nil)
	tr.Insert(pfx("10.0.0.0/8"), 2, nil) // ancestor inserted after descendant
	hop, via := tr.Lookup(addr("10.1.0.5"), nil)
	if hop != 1 || via != pfx("10.1.0.0/16") {
		t.Errorf("descendant lookup = (%d, %s)", hop, via)
	}
	hop, _ = tr.Lookup(addr("10.2.0.5"), nil)
	if hop != 2 {
		t.Errorf("ancestor lookup = %d", hop)
	}
}

func TestReplace(t *testing.T) {
	tr := New()
	if prev := tr.Insert(pfx("10.0.0.0/8"), 1, nil); prev != ip.NoRoute {
		t.Errorf("prev = %d", prev)
	}
	if prev := tr.Insert(pfx("10.0.0.0/8"), 5, nil); prev != 1 {
		t.Errorf("replace prev = %d", prev)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), 1, nil)
	tr.Insert(pfx("10.1.0.0/16"), 2, nil)
	if got := tr.Delete(pfx("10.1.0.0/16"), nil); got != 2 {
		t.Errorf("Delete = %d", got)
	}
	hop, _ := tr.Lookup(addr("10.1.2.3"), nil)
	if hop != 1 {
		t.Errorf("lookup after delete = %d", hop)
	}
	if got := tr.Delete(pfx("10.1.0.0/16"), nil); got != ip.NoRoute {
		t.Errorf("double delete = %d", got)
	}
	if got := tr.Delete(pfx("192.168.0.0/16"), nil); got != ip.NoRoute {
		t.Errorf("absent delete = %d", got)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDeleteRootRoute(t *testing.T) {
	tr := New()
	tr.Insert(ip.Prefix{}, 4, nil)
	if got := tr.Delete(ip.Prefix{}, nil); got != 4 {
		t.Errorf("Delete(/0) = %d", got)
	}
	hop, _ := tr.Lookup(addr("8.8.8.8"), nil)
	if hop != ip.NoRoute {
		t.Errorf("lookup after root delete = %d", hop)
	}
}

// TestMatchesUnibitTrieUnderChurn is the central property: Patricia and
// the unibit trie must agree on Len, Routes and LPM after any random
// operation sequence.
func TestMatchesUnibitTrieUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pat := New()
	uni := trie.New()
	universe := make([]ip.Prefix, 0, 128)
	for i := 0; i < 128; i++ {
		universe = append(universe, ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(25)+8))
	}
	universe = append(universe, ip.Prefix{}) // include the default route
	for op := 0; op < 8000; op++ {
		p := universe[rng.Intn(len(universe))]
		if rng.Intn(3) == 0 {
			gp := pat.Delete(p, nil)
			gu := uni.Delete(p, nil)
			if gp != gu {
				t.Fatalf("op %d: Delete(%s) = %d vs %d", op, p, gp, gu)
			}
		} else {
			hop := ip.NextHop(rng.Intn(8) + 1)
			gp := pat.Insert(p, hop, nil)
			gu := uni.Insert(p, hop, nil)
			if gp != gu {
				t.Fatalf("op %d: Insert(%s) = %d vs %d", op, p, gp, gu)
			}
		}
		if pat.Len() != uni.Len() {
			t.Fatalf("op %d: Len %d vs %d", op, pat.Len(), uni.Len())
		}
		if op%500 == 0 {
			for i := 0; i < 200; i++ {
				a := ip.Addr(rng.Uint32())
				hp, pp := pat.Lookup(a, nil)
				hu, pu := uni.Lookup(a, nil)
				if hp != hu || pp != pu {
					t.Fatalf("op %d: Lookup(%s) = (%d,%s) vs (%d,%s)", op, a, hp, pp, hu, pu)
				}
			}
		}
	}
	// Final full comparison.
	rp, ru := pat.Routes(), uni.Routes()
	sort.Slice(rp, func(i, j int) bool { return rp[i].Prefix.Compare(rp[j].Prefix) < 0 })
	if len(rp) != len(ru) {
		t.Fatalf("route counts %d vs %d", len(rp), len(ru))
	}
	for i := range rp {
		if rp[i] != ru[i] {
			t.Fatalf("route %d: %v vs %v", i, rp[i], ru[i])
		}
	}
}

// TestFewerVisitsThanUnibit quantifies the point of the package: on a
// realistic table, Patricia lookups touch several times fewer nodes.
func TestFewerVisitsThanUnibit(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	var routes []ip.Route
	for i := 0; i < 3000; i++ {
		routes = append(routes, ip.Route{
			Prefix:  ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(9)+16),
			NextHop: ip.NextHop(rng.Intn(8) + 1),
		})
	}
	pat := FromRoutes(routes)
	uni := trie.FromRoutes(routes)
	var pv, uv trie.Visits
	// Probe addresses that actually match routes: that is where the
	// unibit trie walks the full prefix depth while Patricia only
	// touches branch points.
	for i := 0; i < 3000; i++ {
		r := routes[rng.Intn(len(routes))]
		span := uint64(r.Prefix.Last()-r.Prefix.First()) + 1
		a := r.Prefix.First() + ip.Addr(rng.Uint64()%span)
		pat.Lookup(a, &pv)
		uni.Lookup(a, &uv)
	}
	if float64(pv.Nodes) >= 0.7*float64(uv.Nodes) {
		t.Errorf("patricia visits %d not well below unibit %d", pv.Nodes, uv.Nodes)
	}
	if pat.NodeCount()*2 >= uni.NodeCount() {
		t.Errorf("patricia nodes %d not well below unibit %d", pat.NodeCount(), uni.NodeCount())
	}
}

func TestHostRoute(t *testing.T) {
	tr := New()
	tr.Insert(pfx("1.2.3.4/32"), 1, nil)
	tr.Insert(pfx("1.2.3.0/24"), 2, nil)
	hop, _ := tr.Lookup(addr("1.2.3.4"), nil)
	if hop != 1 {
		t.Errorf("host route lookup = %d", hop)
	}
	hop, _ = tr.Lookup(addr("1.2.3.5"), nil)
	if hop != 2 {
		t.Errorf("covering lookup = %d", hop)
	}
}
