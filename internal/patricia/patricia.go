// Package patricia implements a path-compressed binary trie (Patricia /
// radix tree) over IPv4 prefixes, API-compatible with the control-plane
// operations of internal/trie.
//
// The paper prices control-plane work in SRAM accesses per touched trie
// node. A unibit trie touches one node per prefix bit (≈24 for a /24);
// path compression touches one node per *branching point*, which on real
// tables is 3–6× fewer. The package exists to quantify that design
// choice (see the control-plane ablation in internal/experiments): CLUE's
// TTF1 disadvantage against plain tries shrinks when the control plane
// stores its trie path-compressed.
//
// Invariants: every node's prefix extends its parent's; a node carries a
// route iff Hop != NoRoute; non-root nodes with fewer than two children
// and no route are merged away (no redundant internal nodes).
package patricia

import (
	"clue/internal/ip"
	"clue/internal/trie"
)

// node is a Patricia node covering the block `prefix`.
type node struct {
	prefix   ip.Prefix
	hop      ip.NextHop
	children [2]*node
}

// Trie is a path-compressed prefix tree with longest-prefix-match
// lookup. The zero value is not usable; call New.
type Trie struct {
	root   *node
	routes int
}

// New returns an empty Patricia trie.
func New() *Trie {
	return &Trie{root: &node{prefix: ip.Prefix{}}}
}

// Len returns the number of stored routes.
func (t *Trie) Len() int { return t.routes }

// visit charges one node touch.
func visit(v *trie.Visits) {
	if v != nil {
		v.Nodes++
	}
}

// commonLen returns the length of the longest common prefix of a and b,
// capped at limit.
func commonLen(a, b ip.Addr, limit int) int {
	x := uint32(a ^ b)
	n := 0
	for n < limit && x&(1<<(31-uint32(n))) == 0 {
		n++
	}
	return n
}

// Insert adds or replaces the route for p, returning the previous hop.
func (t *Trie) Insert(p ip.Prefix, hop ip.NextHop, v *trie.Visits) ip.NextHop {
	n := t.root
	visit(v)
	for {
		if n.prefix == p {
			prev := n.hop
			n.hop = hop
			if prev == ip.NoRoute && hop != ip.NoRoute {
				t.routes++
			}
			return prev
		}
		bit := p.Bits.Bit(int(n.prefix.Len))
		child := n.children[bit]
		if child == nil {
			n.children[bit] = &node{prefix: p, hop: hop}
			t.routes++
			return ip.NoRoute
		}
		visit(v)
		// How far does p agree with the child's prefix?
		limit := int(child.prefix.Len)
		if int(p.Len) < limit {
			limit = int(p.Len)
		}
		cl := commonLen(p.Bits, child.prefix.Bits, limit)
		switch {
		case cl == int(child.prefix.Len):
			// p extends (or equals at deeper loop turn) the child.
			n = child
		case cl == int(p.Len):
			// p is a strict ancestor of the child: splice p in.
			mid := &node{prefix: p, hop: hop}
			mid.children[child.prefix.Bits.Bit(cl)] = child
			n.children[bit] = mid
			t.routes++
			return ip.NoRoute
		default:
			// Paths diverge inside the compressed edge: fork at the
			// common prefix.
			forkPfx := ip.MustPrefix(p.Bits, cl)
			fork := &node{prefix: forkPfx}
			fork.children[child.prefix.Bits.Bit(cl)] = child
			fork.children[p.Bits.Bit(cl)] = &node{prefix: p, hop: hop}
			n.children[bit] = fork
			t.routes++
			return ip.NoRoute
		}
	}
}

// Delete removes the route for p, returning the removed hop (NoRoute if
// absent). Structural nodes left with a single child and no route are
// merged away.
func (t *Trie) Delete(p ip.Prefix, v *trie.Visits) ip.NextHop {
	var parent, grand *node
	n := t.root
	visit(v)
	for n.prefix != p {
		if int(n.prefix.Len) >= int(p.Len) {
			return ip.NoRoute
		}
		bit := p.Bits.Bit(int(n.prefix.Len))
		child := n.children[bit]
		if child == nil || !child.prefix.Covers(p) && child.prefix != p {
			return ip.NoRoute
		}
		if !child.prefix.Covers(p) {
			return ip.NoRoute
		}
		grand, parent, n = parent, n, child
		visit(v)
	}
	prev := n.hop
	if prev == ip.NoRoute {
		return ip.NoRoute
	}
	n.hop = ip.NoRoute
	t.routes--
	t.compact(grand, parent, n)
	return prev
}

// compact removes n if it became redundant, then checks whether its
// parent became redundant too (a delete can cascade one level).
func (t *Trie) compact(grand, parent, n *node) {
	if parent == nil || n.hop != ip.NoRoute {
		return
	}
	l, r := n.children[0], n.children[1]
	switch {
	case l == nil && r == nil:
		// Leaf without route: unlink.
		parent.children[n.prefix.Bits.Bit(int(parent.prefix.Len))] = nil
		// The parent may now itself be a routeless single-child node.
		if grand != nil && parent.hop == ip.NoRoute {
			t.compact(nil, grand, parent) // one more level at most
			// Re-run the single-child merge below for parent.
			t.mergeSingle(grand, parent)
		}
	case l != nil && r != nil:
		// Real branch point: stays.
	default:
		t.mergeSingle(parent, n)
	}
}

// mergeSingle replaces a routeless single-child node with its child.
func (t *Trie) mergeSingle(parent, n *node) {
	if n.hop != ip.NoRoute || parent == nil || n == t.root {
		return
	}
	l, r := n.children[0], n.children[1]
	var only *node
	switch {
	case l != nil && r == nil:
		only = l
	case r != nil && l == nil:
		only = r
	default:
		return
	}
	bit := n.prefix.Bits.Bit(int(parent.prefix.Len))
	if parent.children[bit] == n {
		parent.children[bit] = only
	}
}

// Lookup performs longest-prefix match on addr.
func (t *Trie) Lookup(addr ip.Addr, v *trie.Visits) (ip.NextHop, ip.Prefix) {
	n := t.root
	visit(v)
	best, bestPfx := ip.NoRoute, ip.Prefix{}
	for n != nil {
		if !n.prefix.Contains(addr) {
			break
		}
		if n.hop != ip.NoRoute {
			best, bestPfx = n.hop, n.prefix
		}
		if int(n.prefix.Len) >= ip.AddrBits {
			break
		}
		n = n.children[addr.Bit(int(n.prefix.Len))]
		if n != nil {
			visit(v)
		}
	}
	return best, bestPfx
}

// Routes returns the stored routes in ascending order.
func (t *Trie) Routes() []ip.Route {
	out := make([]ip.Route, 0, t.routes)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.hop != ip.NoRoute {
			out = append(out, ip.Route{Prefix: n.prefix, NextHop: n.hop})
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(t.root)
	return out
}

// NodeCount returns the number of allocated nodes — the SRAM-footprint
// advantage over a unibit trie.
func (t *Trie) NodeCount() int {
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		count++
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(t.root)
	return count
}

// FromRoutes builds a Patricia trie from a route list.
func FromRoutes(routes []ip.Route) *Trie {
	t := New()
	for _, r := range routes {
		t.Insert(r.Prefix, r.NextHop, nil)
	}
	return t
}
