module clue

go 1.22
