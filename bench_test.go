// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (printing the reproduced rows once per run), plus
// micro-benchmarks of the core operations.
//
// Run with:
//
//	go test -bench=. -benchmem
package clue_test

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clue"
	"clue/internal/experiments"
	"clue/internal/feed"
	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/serve"
	"clue/internal/tracegen"
	"clue/internal/trie"
	"clue/internal/update"
)

// benchScale keeps per-iteration work bounded so the full bench suite
// finishes in minutes; raise toward experiments.Full to approach paper
// sizes.
var benchScale = experiments.Scale{
	FIBSize:     10000,
	Packets:     150000,
	Warmup:      40000,
	Updates:     10000,
	Routers:     12,
	RouterScale: 40,
	Seed:        1,
}

// printOnce emits each figure's reproduced rows a single time per run so
// the bench log doubles as the experiment report.
var printGuard sync.Map

func printOnce(key, body string) {
	if _, loaded := printGuard.LoadOrStore(key, true); !loaded {
		fmt.Println(body)
	}
}

func benchFIB(b *testing.B, n int, seed int64) *trie.Trie {
	b.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: n})
	if err != nil {
		b.Fatal(err)
	}
	return fib
}

// --- Per-figure benchmarks -------------------------------------------

func BenchmarkFig8Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8Compression(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig8", res.Render())
		b.ReportMetric(res.MeanRatio, "ratio")
	}
}

func BenchmarkFig9Partition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9Partition(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig9", res.Render())
	}
}

func BenchmarkFig10to14TTF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTTF(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ttf", res.RenderFig10()+"\n"+res.RenderFig11()+"\n"+
			res.RenderFig12()+"\n"+res.RenderFig13()+"\n"+res.RenderFig14())
		b.ReportMetric(res.CLUEMean.Total(), "clue-ttf-ns")
		b.ReportMetric(res.CLPLMean.Total(), "clpl-ttf-ns")
	}
}

func BenchmarkTable2Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table2Workload(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table2", res.Render())
		b.ReportMetric(res.PerTCAMPct[0], "tcam1-pct")
	}
}

func BenchmarkFig15LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15LoadBalance(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig15", res.Render())
		b.ReportMetric(res.Speedup, "speedup")
		b.ReportMetric(res.HitRate, "hitrate")
	}
}

func BenchmarkFig16Fig17DRedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DRedSweep(benchScale, []int{128, 512, 1024, 2048})
		if err != nil {
			b.Fatal(err)
		}
		printOnce("sweep", res.RenderFig16()+"\n"+res.RenderFig17())
	}
}

// --- Core-operation micro-benchmarks ---------------------------------

func BenchmarkONRTCCompress(b *testing.B) {
	fib := benchFIB(b, 50000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onrtc.Compress(fib)
	}
	b.ReportMetric(float64(fib.Len()), "routes")
}

func BenchmarkCompressedLookup(b *testing.B) {
	fib := benchFIB(b, 50000, 4)
	table := onrtc.Compress(fib)
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(table.Routes()), tracegen.TrafficConfig{Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	addrs := traffic.NextN(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Lookup(addrs[i&(1<<16-1)], nil)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	fib := benchFIB(b, 50000, 5)
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(fib.Routes()), tracegen.TrafficConfig{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	addrs := traffic.NextN(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fib.Lookup(addrs[i&(1<<16-1)], nil)
	}
}

// benchUpdates pre-generates a long self-consistent stream.
func benchUpdates(b *testing.B, fib *trie.Trie, n int) []tracegen.Update {
	b.Helper()
	gen, err := tracegen.NewUpdateGen(fib.Clone(), tracegen.UpdateConfig{
		Seed: 6, Messages: n, WithdrawFrac: 0.3, NewPrefixFrac: 0.55,
	})
	if err != nil {
		b.Fatal(err)
	}
	return gen.NextN(n)
}

// benchPipeline drives b.N messages through fresh pipelines, rebuilding
// (off the clock) whenever the stream wraps: replaying a stream against
// an already-churned table would not be self-consistent.
func benchPipeline(b *testing.B, mk func() (update.Pipeline, error)) {
	fib := benchFIB(b, 20000, 6)
	stream := benchUpdates(b, fib, 200000)
	pipe, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		if i == len(stream) {
			b.StopTimer()
			if pipe, err = mk(); err != nil {
				b.Fatal(err)
			}
			i = 0
			b.StartTimer()
		}
		if _, err := pipe.Apply(stream[i]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

func BenchmarkUpdatePipelineCLUE(b *testing.B) {
	benchPipeline(b, func() (update.Pipeline, error) {
		return update.NewCLUEPipeline(benchFIB(b, 20000, 6), 4, 1024, update.DefaultCosts())
	})
}

func BenchmarkUpdatePipelineCLPL(b *testing.B) {
	benchPipeline(b, func() (update.Pipeline, error) {
		return update.NewCLPLPipeline(benchFIB(b, 20000, 6), 4, 1024, update.DefaultCosts())
	})
}

func BenchmarkSystemAnnounceWithdraw(b *testing.B) {
	fib := benchFIB(b, 10000, 7)
	sys, err := clue.New(fib.Routes(), clue.Config{})
	if err != nil {
		b.Fatal(err)
	}
	p := ip.MustParsePrefix("203.0.113.0/24")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Announce(p, clue.NextHop(i%14+1)); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Withdraw(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineStep(b *testing.B) {
	fib := benchFIB(b, 10000, 8)
	sys, err := clue.New(fib.Routes(), clue.Config{})
	if err != nil {
		b.Fatal(err)
	}
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(fib.Routes()), tracegen.TrafficConfig{Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	addrs := traffic.NextN(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Engine().Step(addrs[i&(1<<16-1)], true)
	}
}

// --- Concurrent serving benchmarks ------------------------------------

// benchServe stands up a serve.Runtime plus a probe-address pool drawn
// from the compressed table's traffic model.
func benchServe(b *testing.B, routes int, seed int64, cfg serve.Config) (*serve.Runtime, []ip.Addr) {
	b.Helper()
	fib := benchFIB(b, routes, seed)
	rt, err := serve.New(fib.Routes(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(fib.Routes()), tracegen.TrafficConfig{Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return rt, traffic.NextN(1 << 16)
}

// reportP99 surfaces a runtime-histogram p99 as a benchmark metric so
// the committed baseline (BENCH_serve.json) carries tail latency and CI
// can gate on its regressions, not just on mean ns/op.
func reportP99(b *testing.B, name string, s serve.LatencySummary) {
	b.Helper()
	if s.Count > 0 {
		b.ReportMetric(s.P99, name)
	}
}

// BenchmarkServeSnapshotLookupParallel measures aggregate throughput of
// the RCU read side: every goroutine does atomic-load + binary-search
// lookups with no locks anywhere. The lookups/s metric is the aggregate
// across all procs.
func BenchmarkServeSnapshotLookupParallel(b *testing.B) {
	rt, addrs := benchServe(b, 20000, 9, serve.Config{})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rt.Lookup(addrs[i&(1<<16-1)])
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
	reportP99(b, "p99-ns", rt.Stats().Latency.SnapshotLookup)
}

// BenchmarkServeDispatchParallel measures the partition-worker path:
// range-index dispatch over bounded queues, including divert handling.
func BenchmarkServeDispatchParallel(b *testing.B) {
	rt, addrs := benchServe(b, 20000, 10, serve.Config{})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := rt.Dispatch(addrs[i&(1<<16-1)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
	st := rt.Stats()
	b.ReportMetric(100*st.DivertRate(), "divert-%")
	reportP99(b, "p99-ns", st.Latency.DispatchHome)
	reportP99(b, "divert-p99-ns", st.Latency.DispatchDiverted)
}

// BenchmarkSnapshotLookup pits the stride-indexed fast path against the
// plain full-table binary search on the same large snapshot. The indexed
// sub-benchmark is the acceptance gate for the DIR-24-8-style index: it
// must be at least 3x faster than binary with zero allocations.
func BenchmarkSnapshotLookup(b *testing.B) {
	rt, addrs := benchServe(b, 120000, 13, serve.Config{})
	snap := rt.Snapshot()
	if !snap.Indexed() {
		b.Fatal("large snapshot is not stride-indexed")
	}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap.Lookup(addrs[i&(1<<16-1)])
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap.LookupBinary(addrs[i&(1<<16-1)])
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
	})
}

// BenchmarkSnapshotLookupCold drives the stride index with uniform
// random addresses instead of the skewed traffic model: most probes
// miss, and successive lookups share no index cache lines, so this is
// the memory-bandwidth-bound worst case the DIR-24-8 layout is sized
// for (SnapshotLookup/indexed is the cache-friendly best case). The
// heap-B metric records the snapshot's total slab footprint, so the
// committed baseline also gates the memory cost of index layout
// changes, not just their speed.
func BenchmarkSnapshotLookupCold(b *testing.B) {
	rt, _ := benchServe(b, 120000, 13, serve.Config{})
	snap := rt.Snapshot()
	if !snap.Indexed() {
		b.Fatal("large snapshot is not stride-indexed")
	}
	addrs := make([]ip.Addr, 1<<16)
	rnd := rand.New(rand.NewSource(13))
	for i := range addrs {
		addrs[i] = ip.Addr(rnd.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Lookup(addrs[i&(1<<16-1)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
	b.ReportMetric(float64(snap.HeapBytes()), "heap-B")
}

// BenchmarkServeLookupBatch measures the amortized snapshot read side:
// one atomic snapshot load serves a whole 256-address batch through the
// stride index, reusing the caller's result slice.
func BenchmarkServeLookupBatch(b *testing.B) {
	rt, addrs := benchServe(b, 120000, 13, serve.Config{})
	const batch = 256
	out := make([]serve.LookupResult, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * batch) & (1<<16 - 1)
		if base+batch > 1<<16 {
			base = 0
		}
		out, _ = rt.LookupBatch(addrs[base:base+batch], out)
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkServeDispatchBatchParallel measures grouped worker dispatch:
// each 256-address window is counting-sorted by home partition and
// enqueued as one chunk per worker, versus 256 individual queue hops.
func BenchmarkServeDispatchBatchParallel(b *testing.B) {
	rt, addrs := benchServe(b, 20000, 10, serve.Config{})
	const batch = 256
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var out []serve.Result
		i := 0
		for pb.Next() {
			base := (i * batch) & (1<<16 - 1)
			if base+batch > 1<<16 {
				base = 0
			}
			var err error
			if out, err = rt.DispatchBatch(addrs[base:base+batch], out); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "lookups/s")
	st := rt.Stats()
	b.ReportMetric(100*st.DivertRate(), "divert-%")
	reportP99(b, "p99-ns", st.Latency.DispatchBatch)
}

// BenchmarkServeLookupUnderUpdateStorm measures snapshot-lookup latency
// (p50/p99) while a writer goroutine replays a tracegen update stream
// through the batching pipeline — the paper's fast-update claim restated
// as a service-level objective: read latency must not degrade while the
// table churns.
func BenchmarkServeLookupUnderUpdateStorm(b *testing.B) {
	rt, addrs := benchServe(b, 20000, 11, serve.Config{})
	fib := benchFIB(b, 20000, 11)
	stream := benchUpdates(b, fib, 100000)

	var (
		stop    atomic.Bool
		stormWG sync.WaitGroup
		applied atomic.Int64
	)
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		for i := 0; !stop.Load(); i++ {
			u := stream[i%len(stream)]
			switch u.Kind {
			case tracegen.Announce:
				rt.Announce(u.Prefix, u.Hop)
			case tracegen.Withdraw:
				rt.Withdraw(u.Prefix)
			}
			applied.Add(1)
		}
	}()

	var (
		mu      sync.Mutex
		samples []float64
	)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]float64, 0, 4096)
		i := 0
		for pb.Next() {
			if i%8 == 0 {
				start := time.Now()
				rt.Lookup(addrs[i&(1<<16-1)])
				local = append(local, float64(time.Since(start).Nanoseconds()))
			} else {
				rt.Lookup(addrs[i&(1<<16-1)])
			}
			i++
		}
		mu.Lock()
		samples = append(samples, local...)
		mu.Unlock()
	})
	b.StopTimer()
	stop.Store(true)
	stormWG.Wait()

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
	b.ReportMetric(float64(applied.Load())/b.Elapsed().Seconds(), "updates/s")
	if len(samples) > 0 {
		sort.Float64s(samples)
		b.ReportMetric(samples[len(samples)/2], "p50-ns")
		b.ReportMetric(samples[len(samples)*99/100], "p99-ns")
	}
}

// BenchmarkServeRebalanceConvergence measures one full closed-loop
// repartitioning cycle: a fresh runtime observes an inverted-Zipf
// traffic skew through its worker sketches, then forced rebalance
// passes recut until the movement-bounded weighted carve finds no
// further improvement. ns/op is the observe-and-converge cycle;
// recuts-to-stable and the imbalance drop are the controller's figure
// of merit. Wall-clock shaped (sketch fill dominates), so it is not in
// the bench regression gate.
func BenchmarkServeRebalanceConvergence(b *testing.B) {
	fib := benchFIB(b, 20000, 17)
	routes := fib.Routes()
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(routes),
		tracegen.TrafficConfig{Seed: 17, ZipfS: 1.2, Invert: true})
	if err != nil {
		b.Fatal(err)
	}
	addrs := traffic.NextN(1 << 16)

	var recuts, moved int
	var imbBefore, imbAfter float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rt, err := serve.New(routes, serve.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, a := range addrs {
			rt.Dispatch(a) //nolint:errcheck // runtime is open for the whole loop
		}
		passes := 0
		for {
			res, rerr := rt.Rebalance(true)
			if rerr != nil {
				b.Fatal(rerr)
			}
			if passes == 0 {
				imbBefore += res.ImbalanceBefore
			}
			if !res.Recut || passes >= 16 {
				imbAfter += res.ImbalanceAfter
				break
			}
			passes++
			moved += res.MovedRoutes
		}
		recuts += passes
		b.StopTimer()
		rt.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(recuts)/float64(b.N), "recuts-to-stable")
	b.ReportMetric(float64(moved)/float64(b.N), "moved-routes")
	b.ReportMetric(imbBefore/float64(b.N), "imbalance-before")
	b.ReportMetric(imbAfter/float64(b.N), "imbalance-after")
}

// BenchmarkFeedThroughput measures end-to-end replication: b.N update
// records stream from a collector through the length-prefixed wire
// protocol into a follower applying them to its own serve runtime over
// localhost TCP. Applies are pipelined up to half the replay window
// (past it the collector would trim the log and force a re-snapshot),
// and every 16th batch is applied synchronously to sample the ack
// round-trip tail.
func BenchmarkFeedThroughput(b *testing.B) {
	fib := benchFIB(b, 20000, 13)
	stream := tracegen.Records(benchUpdates(b, fib, 200000))
	const (
		batch  = 8
		window = 1024
	)
	coll, err := feed.NewCollector(feed.CollectorConfig{
		BaseRoutes: fib.Routes(), Window: window, HashEvery: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { coll.Close() })
	addr, err := coll.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	app := feed.NewRuntimeApplier(serve.Config{})
	fl, err := feed.NewFollower(feed.FollowerConfig{
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr.String(), time.Second)
		},
		Applier: app,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fl.Close(); app.Close() })
	for app.Runtime() == nil {
		time.Sleep(time.Millisecond)
	}

	var (
		ackNs []float64
		last  uint64
	)
	b.ResetTimer()
	for sent, nb := 0, 0; sent < b.N; nb++ {
		i := sent % len(stream)
		end := min(min(i+batch, len(stream)), i+b.N-sent)
		seq, err := coll.Apply(stream[i:end])
		if err != nil {
			b.Fatal(err)
		}
		sent += end - i
		last = seq
		if nb%16 == 0 {
			start := time.Now()
			if err := fl.WaitSeq(seq, time.Minute); err != nil {
				b.Fatal(err)
			}
			ackNs = append(ackNs, float64(time.Since(start).Nanoseconds()))
		} else if lag := fl.Stats().Lag; lag > window/2 {
			if err := fl.WaitSeq(seq-window/4, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := fl.WaitSeq(last, time.Minute); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
	if len(ackNs) > 0 {
		sort.Float64s(ackNs)
		b.ReportMetric(ackNs[len(ackNs)*99/100], "p99-ack-ns")
	}
	if st := fl.Stats(); st.HashMismatches != 0 || st.SnapshotLoads != 1 {
		b.Fatalf("replication not clean: %+v", st)
	}
}

// --- Ablation & extension benchmarks ----------------------------------

func BenchmarkAblationDRedRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationDRedRule(benchScale, []int{512, 1024})
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ab-dred", res.Render())
	}
}

func BenchmarkAblationLayouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationLayouts(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ab-layout", res.Render())
	}
}

func BenchmarkAblationPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPower(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ab-power", res.Render())
	}
}

func BenchmarkNSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.NSweep(benchScale, []int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ext-nsweep", res.Render())
	}
}

func BenchmarkSLPLShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SLPLShift(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ext-slpl", res.Render())
	}
}

func BenchmarkAblationControlPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationControlPlane(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ab-cp", res.Render())
	}
}

func BenchmarkUpdateInterruption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.UpdateInterruption(benchScale, []int{0, 5, 20})
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ext-interrupt", res.Render())
	}
}
