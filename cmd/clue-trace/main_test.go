package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFIB(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "fib.txt")
	var out strings.Builder
	if err := run([]string{"fib", "-n", "2000", "-seed", "3", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFIBSubcommand(t *testing.T) {
	dir := t.TempDir()
	path := writeFIB(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines < 2000 {
		t.Errorf("FIB file has %d lines, want >= 2000", lines)
	}
	if !strings.Contains(string(data), "/") {
		t.Error("no prefixes in FIB output")
	}
}

func TestFIBToStdout(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"fib", "-n", "500"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "\n") < 500 {
		t.Error("short stdout FIB")
	}
}

func TestPacketsSubcommand(t *testing.T) {
	dir := t.TempDir()
	fib := writeFIB(t, dir)
	var out strings.Builder
	if err := run([]string{"packets", "-fib", fib, "-n", "1000"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1000 {
		t.Fatalf("got %d packets", len(lines))
	}
	// Every line is a dotted quad.
	if strings.Count(lines[0], ".") != 3 {
		t.Errorf("bad packet line %q", lines[0])
	}
}

func TestUpdatesSubcommand(t *testing.T) {
	dir := t.TempDir()
	fib := writeFIB(t, dir)
	var out strings.Builder
	if err := run([]string{"updates", "-fib", fib, "-n", "500"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "announce") || !strings.Contains(s, "withdraw") {
		t.Errorf("update trace missing kinds:\n%.300s", s)
	}
	if strings.Count(s, "\n") != 500 {
		t.Errorf("got %d lines", strings.Count(s, "\n"))
	}
}

// TestFIBGolden pins the exact FIB a fixed seed generates, so trace
// inputs referenced by experiment docs stay stable across refactors of
// the generator.
func TestFIBGolden(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"fib", "-n", "120", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fib.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("fib -n 120 -seed 9 drifted from golden (got %d bytes, want %d)",
			out.Len(), len(want))
	}
}

// TestTraceDeterministic: every subcommand must emit byte-identical
// output for the same seed and input FIB.
func TestTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	fib := writeFIB(t, dir)
	subcommands := [][]string{
		{"fib", "-n", "800", "-seed", "21"},
		{"packets", "-fib", fib, "-n", "600", "-seed", "21"},
		{"updates", "-fib", fib, "-n", "300", "-seed", "21"},
	}
	for _, args := range subcommands {
		t.Run(args[0], func(t *testing.T) {
			outs := make([]string, 2)
			for i := range outs {
				var out strings.Builder
				if err := run(args, &out); err != nil {
					t.Fatal(err)
				}
				outs[i] = out.String()
			}
			if outs[0] != outs[1] {
				t.Errorf("two runs of %v differ", args)
			}
			if outs[0] == "" {
				t.Errorf("%v produced no output", args)
			}
		})
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"packets", "-n", "10"}, &out); err == nil {
		t.Error("packets without -fib accepted")
	}
	if err := run([]string{"updates", "-fib", "/does/not/exist"}, &out); err == nil {
		t.Error("missing FIB accepted")
	}
	if err := run([]string{"packets", "-fib", "/does/not/exist"}, &out); err == nil {
		t.Error("missing FIB accepted")
	}
	if err := run([]string{"fib", "-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
