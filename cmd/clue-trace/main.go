// Command clue-trace generates workload files for external tooling: a
// synthetic FIB, a destination-address packet trace, or a BGP-style
// update trace.
//
// Usage:
//
//	clue-trace fib     -n 400000 -seed 42 -out fib.txt
//	clue-trace packets -fib fib.txt -n 1000000 [-zipf 1.2] [-repeat 0] -out trace.txt
//	clue-trace updates -fib fib.txt -n 100000 [-withdraw 0.2] -out updates.txt
//
// Formats: the FIB is "prefix next-hop" lines; the packet trace is one
// dotted-quad address per line; the update trace is "announce prefix
// next-hop" / "withdraw prefix" lines with a leading millisecond offset.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"clue/internal/fibgen"
	"clue/internal/ribio"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clue-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: clue-trace fib|packets|updates [flags]")
	}
	switch args[0] {
	case "fib":
		return runFIB(args[1:], out)
	case "packets":
		return runPackets(args[1:], out)
	case "updates":
		return runUpdates(args[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q (want fib, packets or updates)", args[0])
}

// openOut returns the output sink: a file when -out is set, else w.
func openOut(path string, w io.Writer) (io.Writer, func() error, error) {
	if path == "" {
		return w, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	closer := func() error {
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return bw, closer, nil
}

// loadFIB reads the -fib file.
func loadFIB(path string) (*trie.Trie, error) {
	if path == "" {
		return nil, fmt.Errorf("need -fib FILE")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	routes, err := ribio.Read(f)
	if err != nil {
		return nil, err
	}
	return trie.FromRoutes(routes), nil
}

func runFIB(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("clue-trace fib", flag.ContinueOnError)
	n := fs.Int("n", 100000, "route count")
	seed := fs.Int64("seed", 42, "generator seed")
	outFile := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fib, err := fibgen.Generate(fibgen.Config{Seed: *seed, Routes: *n})
	if err != nil {
		return err
	}
	w, done, err := openOut(*outFile, out)
	if err != nil {
		return err
	}
	if err := ribio.Write(w, fib.Routes()); err != nil {
		done()
		return err
	}
	return done()
}

func runPackets(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("clue-trace packets", flag.ContinueOnError)
	fibFile := fs.String("fib", "", "FIB file the destinations are drawn from")
	n := fs.Int("n", 100000, "packet count")
	seed := fs.Int64("seed", 42, "generator seed")
	zipf := fs.Float64("zipf", 1.2, "Zipf skew exponent (>1)")
	repeat := fs.Float64("repeat", 0, "probability of repeating the previous prefix")
	outFile := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fib, err := loadFIB(*fibFile)
	if err != nil {
		return err
	}
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(fib.Routes()),
		tracegen.TrafficConfig{Seed: *seed, ZipfS: *zipf, Repeat: *repeat},
	)
	if err != nil {
		return err
	}
	w, done, err := openOut(*outFile, out)
	if err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		if _, err := fmt.Fprintln(w, traffic.Next()); err != nil {
			done()
			return err
		}
	}
	return done()
}

func runUpdates(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("clue-trace updates", flag.ContinueOnError)
	fibFile := fs.String("fib", "", "FIB file the updates churn")
	n := fs.Int("n", 100000, "message count")
	seed := fs.Int64("seed", 42, "generator seed")
	withdraw := fs.Float64("withdraw", 0.2, "withdraw fraction")
	outFile := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fib, err := loadFIB(*fibFile)
	if err != nil {
		return err
	}
	gen, err := tracegen.NewUpdateGen(fib, tracegen.UpdateConfig{
		Seed: *seed, Messages: *n, WithdrawFrac: *withdraw,
	})
	if err != nil {
		return err
	}
	w, done, err := openOut(*outFile, out)
	if err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		u := gen.Next()
		var line string
		if u.Kind == tracegen.Withdraw {
			line = fmt.Sprintf("%d withdraw %s", u.At.Milliseconds(), u.Prefix)
		} else {
			line = fmt.Sprintf("%d announce %s %d", u.At.Milliseconds(), u.Prefix, u.Hop)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			done()
			return err
		}
	}
	return done()
}
