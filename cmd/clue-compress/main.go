// Command clue-compress compresses a routing table with ONRTC and
// reports the size statistics. The table is read from a file of
// "prefix next-hop" lines (e.g. "10.0.0.0/8 3"), or generated
// synthetically with -gen.
//
// Usage:
//
//	clue-compress -in fib.txt [-out compressed.txt]
//	clue-compress -gen 400000 [-seed 42] [-out compressed.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"clue"
	"clue/internal/fibgen"
	"clue/internal/ribio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clue-compress:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("clue-compress", flag.ContinueOnError)
	in := fs.String("in", "", "input FIB file (prefix next-hop per line)")
	gen := fs.Int("gen", 0, "generate a synthetic FIB of this many routes instead of reading -in")
	seed := fs.Int64("seed", 42, "seed for -gen")
	outFile := fs.String("out", "", "write the compressed table here (default: stats only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var routes []clue.Route
	switch {
	case *gen > 0:
		fib, err := fibgen.Generate(fibgen.Config{Seed: *seed, Routes: *gen})
		if err != nil {
			return err
		}
		routes = fib.Routes()
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		routes, err = ribio.Read(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in FILE or -gen N")
	}

	start := time.Now()
	table, st := clue.Compress(routes)
	elapsed := time.Since(start)
	fmt.Fprintf(out, "original:    %d routes\n", st.Original)
	fmt.Fprintf(out, "compressed:  %d routes (%.1f%% of original)\n", st.Compressed, 100*st.Ratio())
	fmt.Fprintf(out, "leaf-pushed: %d routes (%.1f%% — the naive non-overlap baseline)\n",
		st.LeafPushed, 100*st.ExpansionRatio())
	fmt.Fprintf(out, "time:        %s\n", elapsed.Round(time.Millisecond))

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		if err := ribio.Write(f, table.Routes()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote:       %s\n", *outFile)
	}
	return nil
}
