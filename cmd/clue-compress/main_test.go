package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clue/internal/ribio"
)

func TestRunGenerate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "3000", "-seed", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"original:", "compressed:", "leaf-pushed:", "time:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestRunFileInputAndOutput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "fib.txt")
	outFile := filepath.Join(dir, "compressed.txt")
	fib := "# test FIB\n10.0.0.0/8 1\n10.1.0.0/16 1\n192.0.2.0/25 2\n192.0.2.128/25 2\n"
	if err := os.WriteFile(in, []byte(fib), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", in, "-out", outFile}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	routes, err := ribio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	// 4 routes compress to 2: the redundant /16 vanishes, the /25s merge.
	if len(routes) != 2 {
		t.Errorf("compressed output has %d routes, want 2: %v", len(routes), routes)
	}
}

// TestRunGolden pins the exact compressed output and the stats lines for
// a tiny hand-written FIB. The `time:` line carries a wall-clock duration
// and is excluded from the comparison.
func TestRunGolden(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "compressed.txt")
	var out strings.Builder
	if err := run([]string{"-in", filepath.Join("testdata", "tiny_fib.txt"), "-out", outFile}, &out); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_compressed.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("compressed output drifted from golden:\ngot:\n%swant:\n%s", got, want)
	}

	wantStats := []string{
		"original:    4 routes",
		"compressed:  2 routes (50.0% of original)",
		"leaf-pushed: 11 routes (275.0% — the naive non-overlap baseline)",
	}
	for _, line := range wantStats {
		if !strings.Contains(out.String(), line) {
			t.Errorf("stats missing %q:\n%s", line, out.String())
		}
	}
}

// TestRunGenerateDeterministic: the same -gen/-seed pair must compress to
// byte-identical output across runs.
func TestRunGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	outs := make([]string, 2)
	for i := range outs {
		path := filepath.Join(dir, fmt.Sprintf("out%d.txt", i))
		var stats strings.Builder
		if err := run([]string{"-gen", "2000", "-seed", "17", "-out", path}, &stats); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = string(data)
	}
	if outs[0] != outs[1] {
		t.Error("same -gen/-seed produced different compressed tables")
	}
	if outs[0] == "" {
		t.Error("empty compressed output")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnwritableOut(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-in", filepath.Join("testdata", "tiny_fib.txt"),
		"-out", filepath.Join(t.TempDir(), "no", "such", "dir", "out.txt")}, &out)
	if err == nil {
		t.Error("unwritable -out accepted")
	}
}

func TestRunNoInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-in", "/does/not/exist"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunBadFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(in, []byte("not a route\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", in}, &out); err == nil {
		t.Error("malformed FIB accepted")
	}
}
