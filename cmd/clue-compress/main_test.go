package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clue/internal/ribio"
)

func TestRunGenerate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "3000", "-seed", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"original:", "compressed:", "leaf-pushed:", "time:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestRunFileInputAndOutput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "fib.txt")
	outFile := filepath.Join(dir, "compressed.txt")
	fib := "# test FIB\n10.0.0.0/8 1\n10.1.0.0/16 1\n192.0.2.0/25 2\n192.0.2.128/25 2\n"
	if err := os.WriteFile(in, []byte(fib), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", in, "-out", outFile}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	routes, err := ribio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	// 4 routes compress to 2: the redundant /16 vanishes, the /25s merge.
	if len(routes) != 2 {
		t.Errorf("compressed output has %d routes, want 2: %v", len(routes), routes)
	}
}

func TestRunNoInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-in", "/does/not/exist"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunBadFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(in, []byte("not a route\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", in}, &out); err == nil {
		t.Error("malformed FIB accepted")
	}
}
