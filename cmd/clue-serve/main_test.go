package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"clue/internal/feed"
	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/ribio"
	"clue/internal/serve"
)

// syncBuffer is a mutex-guarded buffer: run() writes from the server
// goroutine while tests poll String().
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServer runs the service on an ephemeral port and returns its base
// URL plus a shutdown func that cancels and waits for a clean exit.
func startServer(t *testing.T, ctx context.Context, cancel context.CancelFunc, extra ...string) (string, *syncBuffer, func() error) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-routes", "4000"}, extra...)
	out := new(syncBuffer)
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, args, out, func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), out, func() error {
			cancel()
			select {
			case err := <-errCh:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("server did not shut down")
			}
		}
	case err := <-errCh:
		t.Fatalf("server failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}
	return "", nil, nil
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

type lookupResp struct {
	NextHop  uint32 `json:"next_hop"`
	Prefix   string `json:"prefix"`
	Found    bool   `json:"found"`
	Path     string `json:"path"`
	Version  uint64 `json:"snapshot_version"`
	Diverted bool   `json:"diverted"`
}

func TestEndToEndLookupAnnounceWithdraw(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	base, _, shutdown := startServer(t, ctx, cancel)
	defer shutdown()

	// A fresh /24 far from the synthetic allocation is initially covered
	// (or not) by the base table; after the announce it must resolve to
	// the announced hop on both lookup paths.
	var before lookupResp
	getJSON(t, base+"/lookup?addr=203.0.113.9", &before)
	if before.Path != "worker" {
		t.Fatalf("default path = %q", before.Path)
	}

	res := postJSON(t, base+"/announce", `{"prefix":"203.0.113.0/24","next_hop":77}`)
	if res["ttf_total_ns"].(float64) <= 0 {
		t.Fatalf("announce TTF: %v", res)
	}

	var after, afterSnap lookupResp
	getJSON(t, base+"/lookup?addr=203.0.113.9", &after)
	getJSON(t, base+"/lookup?addr=203.0.113.9&path=snapshot", &afterSnap)
	if !after.Found || after.NextHop != 77 || after.Prefix != "203.0.113.0/24" {
		t.Fatalf("lookup after announce: %+v", after)
	}
	if !afterSnap.Found || afterSnap.NextHop != 77 || afterSnap.Path != "snapshot" {
		t.Fatalf("snapshot lookup after announce: %+v", afterSnap)
	}
	if after.Version <= before.Version {
		t.Fatalf("snapshot version did not advance: %d -> %d", before.Version, after.Version)
	}

	postJSON(t, base+"/withdraw", `{"prefix":"203.0.113.0/24"}`)
	var reverted lookupResp
	getJSON(t, base+"/lookup?addr=203.0.113.9", &reverted)
	if reverted.Found != before.Found || reverted.NextHop != before.NextHop {
		t.Fatalf("lookup after withdraw %+v, want pre-announce %+v", reverted, before)
	}

	// /stats and /metrics must reflect the traffic.
	var stats map[string]any
	getJSON(t, base+"/stats", &stats)
	if stats["announces"].(float64) != 1 || stats["withdraws"].(float64) != 1 {
		t.Fatalf("stats: %v", stats)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := new(bytes.Buffer)
	mbody.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metrics := mbody.String()
	if len(metrics) == 0 {
		t.Fatal("/metrics is empty")
	}
	for _, want := range []string{"clue_serve_announces_total 1", "clue_serve_dispatched_total", "clue_serve_snapshot_routes"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", hresp.Status)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

type batchItemResp struct {
	Addr     string `json:"addr"`
	NextHop  uint32 `json:"next_hop"`
	Prefix   string `json:"prefix"`
	Found    bool   `json:"found"`
	Worker   int    `json:"worker"`
	Diverted bool   `json:"diverted"`
	CacheHit bool   `json:"cache_hit"`
}

type batchResp struct {
	Count   int             `json:"count"`
	Path    string          `json:"path"`
	Version uint64          `json:"snapshot_version"`
	Results []batchItemResp `json:"results"`
}

func TestLookupBatchEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	base, _, shutdown := startServer(t, ctx, cancel)
	defer shutdown()

	postBatch := func(body string, want int) *batchResp {
		t.Helper()
		resp, err := http.Post(base+"/lookup/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST /lookup/batch %s: got %s want %d", body, resp.Status, want)
		}
		if want != http.StatusOK {
			return nil
		}
		var out batchResp
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}

	// Announce a known route so at least one batch answer is deterministic.
	postJSON(t, base+"/announce", `{"prefix":"203.0.113.0/24","next_hop":77}`)

	body := `{"addrs":["203.0.113.9","203.0.113.200","8.8.8.8"]}`
	worker := postBatch(body, http.StatusOK)
	if worker.Path != "worker" || worker.Count != 3 || len(worker.Results) != 3 {
		t.Fatalf("worker batch: %+v", worker)
	}
	for _, item := range worker.Results[:2] {
		if !item.Found || item.NextHop != 77 || item.Prefix != "203.0.113.0/24" {
			t.Fatalf("worker batch item: %+v", item)
		}
	}

	// The snapshot path must agree item-for-item and report a version.
	snap := postBatch(`{"addrs":["203.0.113.9","203.0.113.200","8.8.8.8"],"path":"snapshot"}`, http.StatusOK)
	if snap.Path != "snapshot" || snap.Version == 0 {
		t.Fatalf("snapshot batch: %+v", snap)
	}
	for i := range snap.Results {
		w, s := worker.Results[i], snap.Results[i]
		if w.Found != s.Found || w.NextHop != s.NextHop || w.Prefix != s.Prefix {
			t.Fatalf("paths disagree at %d: worker %+v, snapshot %+v", i, w, s)
		}
	}

	// Per-item ordering must match the request ordering.
	for i, want := range []string{"203.0.113.9", "203.0.113.200", "8.8.8.8"} {
		if worker.Results[i].Addr != want {
			t.Fatalf("result %d addr = %q, want %q", i, worker.Results[i].Addr, want)
		}
	}

	// Bad inputs: empty array, missing body, bad address, oversized batch.
	postBatch(`{"addrs":[]}`, http.StatusBadRequest)
	postBatch(`not json`, http.StatusBadRequest)
	postBatch(`{"addrs":["not-an-ip"]}`, http.StatusBadRequest)
	huge := `{"addrs":[` + strings.Repeat(`"1.2.3.4",`, maxBatchAddrs) + `"1.2.3.4"]}`
	postBatch(huge, http.StatusBadRequest)

	// Batch traffic must show up in the runtime statistics.
	var stats map[string]any
	getJSON(t, base+"/stats", &stats)
	if stats["dispatch_batches"].(float64) < 1 {
		t.Fatalf("stats missing batch dispatches: %v", stats)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFIBFromRibioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.rib")
	var sb strings.Builder
	sb.WriteString("# test table\n10.0.0.0/8 1\n10.1.0.0/16 2\n")
	// The core system needs at least `buckets` compressed entries, so
	// pad the table with disjoint /24s.
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, "192.168.%d.0/24 %d\n", i, i%14+1)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	base, out, shutdown := startServer(t, ctx, cancel, "-fib", path)
	defer shutdown()

	var res lookupResp
	getJSON(t, base+"/lookup?addr=10.1.2.3", &res)
	if !res.Found || res.NextHop != 2 {
		t.Fatalf("lookup from file-loaded FIB: %+v", res)
	}
	getJSON(t, base+"/lookup?addr=10.200.0.1", &res)
	if !res.Found || res.NextHop != 1 {
		t.Fatalf("lookup under 10/8: %+v", res)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fib "+path) {
		t.Errorf("missing FIB origin in output:\n%s", out.String())
	}
}

func TestRouterProfileAndBadInputs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	base, _, shutdown := startServer(t, ctx, cancel, "-router", "rrc01", "-router-scale", "400")
	defer shutdown()

	// Bad address, bad prefix, missing hop, absent endpoint.
	for _, tc := range []struct {
		method, url, body string
		want              int
	}{
		{"GET", base + "/lookup?addr=notanip", "", http.StatusBadRequest},
		{"GET", base + "/lookup", "", http.StatusBadRequest},
		{"POST", base + "/announce", `{"prefix":"10.0.0.0/33","next_hop":1}`, http.StatusBadRequest},
		{"POST", base + "/announce", `{"prefix":"10.0.0.0/8"}`, http.StatusBadRequest},
		{"POST", base + "/announce", `not json`, http.StatusBadRequest},
		{"GET", base + "/nosuch", "", http.StatusNotFound},
	} {
		var resp *http.Response
		var err error
		if tc.method == "GET" {
			resp, err = http.Get(tc.url)
		} else {
			resp, err = http.Post(tc.url, "application/json", strings.NewReader(tc.body))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: got %d want %d", tc.method, tc.url, resp.StatusCode, tc.want)
		}
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownRouterAndBadFlag(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-router", "nope"}, new(bytes.Buffer), nil); err == nil {
		t.Error("unknown router accepted")
	}
	if err := run(ctx, []string{"-bogus"}, new(bytes.Buffer), nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(ctx, []string{"-fib", "/nonexistent/table.rib"}, new(bytes.Buffer), nil); err == nil {
		t.Error("missing FIB file accepted")
	}
}

// newTestRuntime builds a runtime directly so tests can drive state the
// HTTP surface must report (worker health, Close) without a listener.
func newTestRuntime(t *testing.T, workers int) *serve.Runtime {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: 9, Routes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := serve.New(fib.Routes(), serve.Config{
		Workers: workers, QueueDepth: 64, BatchMax: 16, CacheSize: 256,
		System: serve.SystemConfig{TCAMs: 2, Buckets: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// doReq issues one request and returns the status plus decoded JSON body
// (nil when the body is not JSON).
func doReq(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func adminStates(res map[string]any) []string {
	workers, _ := res["workers"].([]any)
	out := make([]string, len(workers))
	for i, w := range workers {
		m, _ := w.(map[string]any)
		out[i], _ = m["state"].(string)
	}
	return out
}

func TestAdminWorkerEndpoints(t *testing.T) {
	rt := newTestRuntime(t, 3)
	defer rt.Close()
	srv := httptest.NewServer(newHandler(rt, true, nil))
	defer srv.Close()

	status, res := doReq(t, "GET", srv.URL+"/admin/worker", "")
	if status != http.StatusOK {
		t.Fatalf("GET /admin/worker: %d", status)
	}
	if got := adminStates(res); len(got) != 3 || got[0] != "healthy" || got[1] != "healthy" || got[2] != "healthy" {
		t.Fatalf("initial states: %v", got)
	}

	status, res = doReq(t, "POST", srv.URL+"/admin/worker/fail", `{"worker":1}`)
	if status != http.StatusOK {
		t.Fatalf("fail worker 1: %d %v", status, res)
	}
	if got := adminStates(res); got[1] != "failed" {
		t.Fatalf("states after fail: %v", got)
	}

	// Transition conflicts and unknown ids map to 409 and 404.
	for _, tc := range []struct {
		path, body string
		want       int
	}{
		{"/admin/worker/fail", `{"worker":1}`, http.StatusConflict},    // double-fail
		{"/admin/worker/recover", `{"worker":0}`, http.StatusConflict}, // recover-when-healthy
		{"/admin/worker/fail", `{"worker":99}`, http.StatusNotFound},
		{"/admin/worker/fail", `{"worker":-1}`, http.StatusNotFound},
		{"/admin/worker/recover", `{"worker":99}`, http.StatusNotFound},
		{"/admin/worker/fail", `not json`, http.StatusBadRequest},
		{"/admin/worker/fail", `{}`, http.StatusBadRequest},
	} {
		status, res = doReq(t, "POST", srv.URL+tc.path, tc.body)
		if status != tc.want {
			t.Errorf("POST %s %s: got %d want %d (%v)", tc.path, tc.body, status, tc.want, res)
		}
	}

	// Degraded but forwarding: healthz stays 200 and says so.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody := new(bytes.Buffer)
	hbody.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(hbody.String(), "degraded") {
		t.Fatalf("degraded healthz: %s %q", hresp.Status, hbody.String())
	}

	// Lookups keep working around the failed worker.
	status, res = doReq(t, "GET", srv.URL+"/lookup?addr=10.0.0.1", "")
	if status != http.StatusOK {
		t.Fatalf("lookup while degraded: %d %v", status, res)
	}

	status, res = doReq(t, "POST", srv.URL+"/admin/worker/recover", `{"worker":1}`)
	if status != http.StatusOK {
		t.Fatalf("recover worker 1: %d %v", status, res)
	}
	if got := adminStates(res); got[1] != "healthy" {
		t.Fatalf("states after recover: %v", got)
	}
	hresp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody.Reset()
	hbody.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(hbody.String(), "ok") {
		t.Fatalf("recovered healthz: %s %q", hresp.Status, hbody.String())
	}
}

// TestHealthzNoHealthyWorkers drives every worker down via the panic
// path (operator fail refuses the last healthy worker) and checks that
// healthz goes 503, worker-path lookups fail 503, and the snapshot path
// keeps answering.
func TestHealthzNoHealthyWorkers(t *testing.T) {
	rt := newTestRuntime(t, 2)
	defer rt.Close()
	srv := httptest.NewServer(newHandler(rt, true, nil))
	defer srv.Close()

	for id := 0; id < 2; id++ {
		if err := rt.PoisonWorker(id); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		states := rt.WorkerStates()
		if states[0] == serve.WorkerFailed && states[1] == serve.WorkerFailed {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("workers did not fail: %v", states)
		case <-time.After(time.Millisecond):
		}
	}

	status, _ := doReq(t, "GET", srv.URL+"/healthz", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no healthy workers: %d", status)
	}
	status, res := doReq(t, "GET", srv.URL+"/lookup?addr=10.0.0.1", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("worker lookup with no healthy workers: %d %v", status, res)
	}
	status, res = doReq(t, "GET", srv.URL+"/lookup?addr=10.0.0.1&path=snapshot", "")
	if status != http.StatusOK {
		t.Fatalf("snapshot lookup with no healthy workers: %d %v", status, res)
	}

	status, res = doReq(t, "POST", srv.URL+"/admin/worker/recover", `{"worker":0}`)
	if status != http.StatusOK {
		t.Fatalf("recover worker 0: %d %v", status, res)
	}
	status, _ = doReq(t, "GET", srv.URL+"/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("healthz after partial recovery: %d", status)
	}
	status, res = doReq(t, "GET", srv.URL+"/lookup?addr=10.0.0.1", "")
	if status != http.StatusOK {
		t.Fatalf("worker lookup after partial recovery: %d %v", status, res)
	}
}

// TestEndpointsAfterClose checks every mutating endpoint fails 503 once
// the runtime is closed, while the snapshot read side still answers.
func TestEndpointsAfterClose(t *testing.T) {
	rt := newTestRuntime(t, 2)
	srv := httptest.NewServer(newHandler(rt, true, nil))
	defer srv.Close()
	rt.Close()

	for _, tc := range []struct {
		method, path, body string
	}{
		{"GET", "/lookup?addr=10.0.0.1", ""},
		{"POST", "/lookup/batch", `{"addrs":["10.0.0.1"]}`},
		{"POST", "/announce", `{"prefix":"203.0.113.0/24","next_hop":7}`},
		{"POST", "/withdraw", `{"prefix":"203.0.113.0/24"}`},
		{"POST", "/admin/worker/fail", `{"worker":0}`},
	} {
		status, res := doReq(t, tc.method, srv.URL+tc.path, tc.body)
		if status != http.StatusServiceUnavailable {
			t.Errorf("%s %s after Close: got %d want 503 (%v)", tc.method, tc.path, status, res)
		}
	}

	status, res := doReq(t, "GET", srv.URL+"/lookup?addr=10.0.0.1&path=snapshot", "")
	if status != http.StatusOK {
		t.Errorf("snapshot lookup after Close: %d %v", status, res)
	}
	if status, _ := doReq(t, "GET", srv.URL+"/stats", ""); status != http.StatusOK {
		t.Errorf("stats after Close: %d", status)
	}
}

// TestSIGTERMShutdown reproduces main's signal wiring and delivers a real
// SIGTERM to the process, asserting the server drains and exits cleanly —
// the acceptance path for production shutdown.
func TestSIGTERMShutdown(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	base, out, shutdown := startServer(t, ctx, stop)
	_ = shutdown

	var res lookupResp
	getJSON(t, base+"/lookup?addr=10.0.0.1", &res)

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("server did not exit on SIGTERM")
		default:
		}
		if strings.Contains(out.String(), "drained") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown notice:\n%s", out.String())
	}
}

// TestDebugEndpoints covers the observability surface: the latency JSON
// view, the pprof index, and the runtime/trace capture with its
// -debug-trace gate and sec-parameter validation.
func TestDebugEndpoints(t *testing.T) {
	rt := newTestRuntime(t, 2)
	defer rt.Close()
	srv := httptest.NewServer(newHandler(rt, true, nil))
	defer srv.Close()

	status, res := doReq(t, "GET", srv.URL+"/debug/latency", "")
	if status != http.StatusOK {
		t.Fatalf("GET /debug/latency: %d", status)
	}
	for _, key := range []string{"snapshot_lookup", "dispatch_home", "dispatch_diverted",
		"dispatch_cache_hit", "dispatch_batch", "ttf_trie", "ttf_tcam", "ttf_dred",
		"snapshot_swap", "queue_depth"} {
		sub, ok := res[key].(map[string]any)
		if !ok {
			t.Fatalf("/debug/latency missing %q: %v", key, res)
		}
		if _, ok := sub["count"]; !ok {
			t.Fatalf("/debug/latency %q has no count: %v", key, sub)
		}
	}

	presp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pbody := new(bytes.Buffer)
	pbody.ReadFrom(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || !strings.Contains(pbody.String(), "goroutine") {
		t.Fatalf("pprof index: %s %q", presp.Status, pbody.String())
	}

	tresp, err := http.Get(srv.URL + "/debug/trace?sec=1")
	if err != nil {
		t.Fatal(err)
	}
	tbody := new(bytes.Buffer)
	tbody.ReadFrom(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK || tbody.Len() == 0 {
		t.Fatalf("trace capture: %s, %d bytes", tresp.Status, tbody.Len())
	}

	for _, sec := range []string{"bogus", "0", "-3"} {
		status, res = doReq(t, "GET", srv.URL+"/debug/trace?sec="+sec, "")
		if status != http.StatusBadRequest {
			t.Errorf("trace sec=%s: got %d want 400 (%v)", sec, status, res)
		}
	}
}

// TestDebugTraceGated checks the capture endpoint 404s unless the server
// was started with -debug-trace, while pprof and latency stay available.
func TestDebugTraceGated(t *testing.T) {
	rt := newTestRuntime(t, 2)
	defer rt.Close()
	srv := httptest.NewServer(newHandler(rt, false, nil))
	defer srv.Close()

	status, res := doReq(t, "GET", srv.URL+"/debug/trace", "")
	if status != http.StatusNotFound {
		t.Fatalf("trace without -debug-trace: got %d want 404 (%v)", status, res)
	}
	if msg, _ := res["error"].(string); !strings.Contains(msg, "trace capture disabled") {
		t.Fatalf("gating error message: %v", res)
	}
	if status, _ := doReq(t, "GET", srv.URL+"/debug/latency", ""); status != http.StatusOK {
		t.Fatalf("latency view gated by -debug-trace: %d", status)
	}
	presp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("pprof gated by -debug-trace: %s", presp.Status)
	}
}

// TestFollowMode runs the server as a replica of an in-process
// collector: it must bootstrap over the feed, serve lookups, reject
// local writes, expose the feed in stats/metrics/healthz, and track
// updates applied at the collector.
func TestFollowMode(t *testing.T) {
	fib, err := fibgen.Generate(fibgen.Config{Seed: 9, Routes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := feed.NewCollector(feed.CollectorConfig{BaseRoutes: fib.Routes()})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	feedAddr, err := coll.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	url, out, shutdown := startServer(t, ctx, cancel, "-follow", feedAddr.String(), "-workers", "2")

	if !strings.Contains(out.String(), "replica of "+feedAddr.String()) {
		t.Fatalf("startup banner: %q", out.String())
	}

	// Local writes are the collector's job.
	for _, ep := range []string{"/announce", "/withdraw"} {
		status, res := doReq(t, "POST", url+ep, `{"prefix":"10.0.0.0/8","next_hop":3}`)
		if status != http.StatusForbidden {
			t.Fatalf("POST %s on replica: got %d want 403 (%v)", ep, status, res)
		}
	}

	// Replicate a pinned /32 and wait for the replica to apply it.
	seq, err := coll.Apply([]ribio.UpdateRecord{{Prefix: ip.MustParsePrefix("203.0.113.5/32"), NextHop: 77}})
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Feed feed.FollowerStats `json:"feed"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, url+"/stats", &st)
		if st.Feed.LastApplied >= seq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached seq %d: %+v", seq, st.Feed)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Feed.State != "streaming" {
		t.Fatalf("feed state %q, want streaming", st.Feed.State)
	}

	var lr lookupResp
	getJSON(t, url+"/lookup?addr=203.0.113.5", &lr)
	if !lr.Found || lr.NextHop != 77 {
		t.Fatalf("replicated route not served: %+v", lr)
	}

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := new(bytes.Buffer)
	mbody.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"clue_feed_streaming 1", "clue_feed_lag_batches", "clue_feed_snapshot_loads_total 1"} {
		if !strings.Contains(mbody.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mbody.String())
		}
	}

	hresp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody := new(bytes.Buffer)
	hbody.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(hbody.String(), "feed: streaming at seq") {
		t.Fatalf("healthz on live replica: %s %q", hresp.Status, hbody.String())
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestFollowModeRejectsLocalSources: -follow and -fib/-router conflict.
func TestFollowModeRejectsLocalSources(t *testing.T) {
	out := new(syncBuffer)
	err := run(context.Background(), []string{"-follow", "127.0.0.1:1", "-fib", "x.rib"}, out, nil)
	if err == nil || !strings.Contains(err.Error(), "-follow") {
		t.Fatalf("conflicting sources accepted: %v", err)
	}
}
